package riptide

import (
	"time"

	"riptide/internal/perf"
)

// newSyntheticBackend builds an n-connection sampler, a no-op route sink,
// and a fixed clock for agent micro-benchmarks. The batched variant
// exercises the agent's BatchRouteProgrammer fast path.
func newSyntheticBackend(n int, batch bool) (ConnectionSampler, RouteProgrammer, func() time.Duration) {
	var routes RouteProgrammer = perf.NopRoutes{}
	if batch {
		routes = perf.NopBatchRoutes{}
	}
	return perf.StaticSampler(perf.SyntheticObservations(n)), routes, func() time.Duration { return 0 }
}
