package riptide

import (
	"time"

	"riptide/internal/perf"
)

// newSyntheticBackend builds an n-connection sampler, a no-op route sink,
// and a fixed clock for agent micro-benchmarks. The batched variant
// exercises the agent's BatchRouteProgrammer fast path.
func newSyntheticBackend(n int, batch bool) (ConnectionSampler, RouteProgrammer, func() time.Duration) {
	var routes RouteProgrammer = perf.NopRoutes{}
	if batch {
		routes = perf.NopBatchRoutes{}
	}
	return perf.StaticSampler(perf.SyntheticObservations(n)), routes, func() time.Duration { return 0 }
}

// newModeBackend picks the sampler matching a tick-series mode: steady state
// (identical backing slice, the delta tick's cheapest path) or a
// deterministic 1-in-churnFrac per-round window churn.
func newModeBackend(n, churnFrac int) (ConnectionSampler, RouteProgrammer, func() time.Duration) {
	base := perf.SyntheticObservations(n)
	var sampler ConnectionSampler = perf.FixedSampler(base)
	if churnFrac > 0 {
		sampler = perf.NewChurnSampler(base, churnFrac)
	}
	return sampler, perf.NopBatchRoutes{}, func() time.Duration { return 0 }
}
