package riptide

import (
	"net/netip"
	"time"
)

// newSyntheticBackend builds an n-connection sampler, a no-op route sink,
// and a fixed clock for agent micro-benchmarks.
func newSyntheticBackend(n int) (ConnectionSampler, RouteProgrammer, func() time.Duration) {
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		obs = append(obs, Observation{
			Dst:        netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 1}),
			Cwnd:       10 + i%90,
			RTT:        time.Duration(20+i%200) * time.Millisecond,
			BytesAcked: int64(i) * 1500,
		})
	}
	return staticSampler(obs), nopRoutes{}, func() time.Duration { return 0 }
}

type staticSampler []Observation

func (s staticSampler) SampleConnections() ([]Observation, error) { return s, nil }

type nopRoutes struct{}

func (nopRoutes) SetInitCwnd(netip.Prefix, int) error { return nil }
func (nopRoutes) ClearInitCwnd(netip.Prefix) error    { return nil }
