// Command riptide-bench runs every experiment in the reproduction — the
// analytic figures, the cluster evaluation, the design-choice ablations, the
// Section V extensions, and the operational scenarios — and writes a single
// markdown report with the paper-vs-measured comparison. EXPERIMENTS.md and
// docs/REPORT.md are generated from this tool's output.
//
// Independent experiments run concurrently across CPU cores; output order
// stays deterministic.
//
//	riptide-bench -scale quick -o report.md
//	riptide-bench -scale full -series-dir series/   # also dump plottable CSVs
//
// With -perf-json the tool also (or, with -perf-only, exclusively) runs the
// agent hot-path perf harness and writes a machine-readable snapshot:
//
//	riptide-bench -perf-only -perf-json BENCH_5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"riptide/internal/experiments"
	"riptide/internal/perf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("riptide-bench", flag.ContinueOnError)
	var (
		scale      = fs.String("scale", "quick", "scale preset: quick|full")
		out        = fs.String("o", "", "output file (default stdout)")
		seed       = fs.Int64("seed", 1, "random seed")
		n          = fs.Int("n", 200000, "model sample count")
		seriesDir  = fs.String("series-dir", "", "also write each figure's curve data as CSV into this directory")
		workers    = fs.Int("workers", 0, "concurrent experiments (default: CPU count)")
		perfJSON   = fs.String("perf-json", "", "write the agent hot-path perf snapshot (BENCH_<n>.json) to this file")
		perfOnly   = fs.Bool("perf-only", false, "run only the perf harness (requires -perf-json)")
		perfSizes  = fs.String("perf-sizes", "1000,10000,100000", "comma-separated observed-table sizes for the perf series")
		perfTime   = fs.Duration("perf-time", 300*time.Millisecond, "minimum measured time per perf series point")
		gomaxprocs = fs.Int("gomaxprocs", 0, "pin runtime.GOMAXPROCS for the run (0 = host core count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Perf snapshots are only comparable when their parallelism is an
	// explicit, recorded choice. BENCH_5 silently inherited GOMAXPROCS=1
	// from its environment and mismeasured the shard fan-out; pin to the
	// host's core count unless the caller overrides.
	if *gomaxprocs <= 0 {
		*gomaxprocs = runtime.NumCPU()
	}
	runtime.GOMAXPROCS(*gomaxprocs)

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "full":
		s = experiments.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	s.Seed = *seed

	if *perfOnly && *perfJSON == "" {
		return fmt.Errorf("-perf-only requires -perf-json")
	}
	if *perfJSON != "" {
		if err := writePerfSnapshot(*perfJSON, *perfSizes, *perfTime); err != nil {
			return err
		}
		if *perfOnly {
			return nil
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report(w, s, *seed, *n, *seriesDir, *workers)
}

// prePRBaselines are the BenchmarkAgentTick figures measured at commit
// 72995e6, before the sharded single-map hot path landed, on the same
// single-CPU machine class that produced BENCH_5.json. Embedding them makes
// each snapshot carry its own point of comparison for the trajectory.
var prePRBaselines = []perf.Baseline{
	{Name: "AgentTick/dest=1000/pre-shard", NsPerOp: 515779, AllocsPerOp: 1027},
	{Name: "AgentTick/dest=10000/pre-shard", NsPerOp: 6980329, AllocsPerOp: 10142, BytesPerOp: 4309375},
}

// bench5Baselines carry the BENCH_5.json series forward: the full-rescan
// agent before the delta tick landed. They were captured at GOMAXPROCS=1
// (the harness bug this PR fixes), so the shards=8 points measure lock
// striping, not parallelism.
var bench5Baselines = []perf.Baseline{
	{Name: "BENCH_5/AgentTick/dest=1000/shards=1", NsPerOp: 151905.58, AllocsPerOp: 2, BytesPerOp: 72},
	{Name: "BENCH_5/AgentTick/dest=1000/shards=8", NsPerOp: 232044.70, AllocsPerOp: 37, BytesPerOp: 920},
	{Name: "BENCH_5/AgentTick/dest=10000/shards=1", NsPerOp: 1548143.70, AllocsPerOp: 2, BytesPerOp: 72},
	{Name: "BENCH_5/AgentTick/dest=10000/shards=8", NsPerOp: 1709430.61, AllocsPerOp: 37, BytesPerOp: 920},
	{Name: "BENCH_5/AgentTick/dest=100000/shards=1", NsPerOp: 34597534.875, AllocsPerOp: 2, BytesPerOp: 72},
	{Name: "BENCH_5/AgentTick/dest=100000/shards=8", NsPerOp: 33247698.94, AllocsPerOp: 37, BytesPerOp: 920},
	{Name: "BENCH_5/RouteProgram/ops=1024/mode=individual", NsPerOp: 99431.85},
	{Name: "BENCH_5/RouteProgram/ops=1024/mode=batch", NsPerOp: 66711.08},
}

// writePerfSnapshot runs the perf harness over the requested observed-table
// sizes and writes the JSON snapshot to path.
func writePerfSnapshot(path, sizesCSV string, minTime time.Duration) error {
	var sizes []int
	for _, field := range strings.Split(sizesCSV, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -perf-sizes entry %q", field)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("-perf-sizes is empty")
	}
	snap, err := perf.Collect(sizes, minTime)
	if err != nil {
		return err
	}
	// The backend head-to-head runs at the two sizes that bound a production
	// host; the exec points double as embedded baselines so the snapshot
	// records what the netlink backend displaced.
	backends, err := perf.CollectBackends([]int{1000, 10000}, minTime)
	if err != nil {
		return err
	}
	snap.Benchmarks = append(snap.Benchmarks, backends...)
	// The fleet-serving fan-in series at the sizes that bound a converged
	// region (1k) and a worst-case warm fleet (100k); the uncached
	// per-request encodes ride along as live-measured baselines.
	serving, servingBaselines, err := perf.CollectServing([]int{1000, 100000}, minTime)
	if err != nil {
		return err
	}
	snap.Benchmarks = append(snap.Benchmarks, serving...)
	snap.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	snap.Baselines = append(append([]perf.Baseline(nil), prePRBaselines...), bench5Baselines...)
	snap.Baselines = append(snap.Baselines, servingBaselines...)
	for _, b := range backends {
		if strings.Contains(b.Name, "backend=exec") {
			snap.Baselines = append(snap.Baselines, perf.Baseline{
				Name:        "exec-baseline/" + b.Name,
				NsPerOp:     b.NsPerOp,
				AllocsPerOp: b.AllocsPerOp,
				BytesPerOp:  b.BytesPerOp,
			})
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// job is one experiment with its position in the report.
type job struct {
	section string
	run     func() (experiments.Result, error)
	// expand marks runners that return multiple results (ProbeSuite).
	expand func() ([]experiments.Result, error)
}

// outcome carries a finished job's results in report order.
type outcome struct {
	section string
	results []experiments.Result
	err     error
}

func report(w io.Writer, s experiments.Scale, seed int64, n int, seriesDir string, workers int) error {
	popCount := len(s.PoPs)
	if popCount == 0 {
		popCount = 34 // full topology resolved inside the experiments
	}
	fmt.Fprintf(w, "# Riptide reproduction report\n\ngenerated %s, scale: %d PoPs, %v measurement, seed %d\n\n",
		time.Now().UTC().Format(time.RFC3339), popCount, s.Duration, seed)

	jobs := []job{
		{section: "Model figures", run: func() (experiments.Result, error) { return experiments.Fig2FileSizes(seed, n) }},
		{run: func() (experiments.Result, error) { return experiments.Fig3RTTsCDF(seed, n) }},
		{run: experiments.Fig4TheoreticalGain},
		{run: func() (experiments.Result, error) { return experiments.Fig5RTTDistribution(nil) }},
		{run: func() (experiments.Result, error) { return experiments.Fig6TransferTime(nil) }},
		{section: "Cluster evaluation", run: func() (experiments.Result, error) { return experiments.Table2Census(nil), nil }},
		{run: func() (experiments.Result, error) { return experiments.Fig10CwndByCmax(s) }},
		{run: func() (experiments.Result, error) { return experiments.Fig11TrafficProfiles(s) }},
		// Figures 12-16 and the edge cases share one cluster pair.
		{expand: func() ([]experiments.Result, error) { return experiments.ProbeSuite(s) }},
		{run: func() (experiments.Result, error) { return experiments.Headline(s) }},
		{section: "Extensions (Section V)", run: func() (experiments.Result, error) { return experiments.ExtensionTrendReaction(seed) }},
		{run: func() (experiments.Result, error) { return experiments.ExtensionAdvisorShift(seed) }},
		{section: "Fleet sharing", run: func() (experiments.Result, error) { return experiments.FleetWarmStart(s) }},
		{section: "Safety governor", run: func() (experiments.Result, error) { return experiments.GuardCapacityCut(seed) }},
	}
	for i, name := range experiments.ScenarioNames() {
		name := name
		j := job{run: func() (experiments.Result, error) { return experiments.ScenarioImpact(name, s) }}
		if i == 0 {
			j.section = "Operational scenarios"
		}
		jobs = append(jobs, j)
	}
	ablations := []func(experiments.Scale) (experiments.Result, error){
		experiments.AblationCombiners,
		experiments.AblationHistory,
		experiments.AblationGranularity,
		experiments.AblationTTL,
		experiments.AblationUpdateInterval,
	}
	for i, runFn := range ablations {
		runFn := runFn
		j := job{run: func() (experiments.Result, error) { return runFn(s) }}
		if i == 0 {
			j.section = "Ablations"
		}
		jobs = append(jobs, j)
	}

	outcomes := executeJobs(jobs, workers)
	for _, o := range outcomes {
		if o.err != nil {
			return o.err
		}
		if o.section != "" {
			fmt.Fprintf(w, "## %s\n\n", o.section)
		}
		for _, res := range o.results {
			emit(w, res)
			if seriesDir != "" {
				if err := writeSeries(seriesDir, res); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// executeJobs runs all jobs through a bounded worker pool, preserving order.
func executeJobs(jobs []job, workers int) []outcome {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	outcomes := make([]outcome, len(jobs))
	indexes := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				j := jobs[i]
				o := outcome{section: j.section}
				if j.expand != nil {
					o.results, o.err = j.expand()
				} else {
					var res experiments.Result
					res, o.err = j.run()
					o.results = []experiments.Result{res}
				}
				outcomes[i] = o
			}
		}()
	}
	for i := range jobs {
		indexes <- i
	}
	close(indexes)
	wg.Wait()
	return outcomes
}

// emit renders one result as markdown.
func emit(w io.Writer, res experiments.Result) {
	fmt.Fprintf(w, "### %s — %s\n\n", strings.ToUpper(res.ID), res.Title)
	for _, note := range res.Notes {
		fmt.Fprintf(w, "- %s\n", note)
	}
	for _, tbl := range res.Tables {
		fmt.Fprintf(w, "\n%s:\n\n", tbl.Title)
		fmt.Fprintf(w, "| %s |\n", strings.Join(tbl.Header, " | "))
		seps := make([]string, len(tbl.Header))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range tbl.Rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
		}
	}
	fmt.Fprintln(w)
}

// writeSeries dumps each series of a result as <dir>/<id>.csv with columns
// series,x,y — directly plottable with any tool.
func writeSeries(dir string, res experiments.Result) error {
	if len(res.Series) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "series,x,y"); err != nil {
		return err
	}
	for _, series := range res.Series {
		label := strings.ReplaceAll(series.Label, ",", ";")
		for _, p := range series.Points {
			if _, err := fmt.Fprintf(f, "%s,%s,%s\n", label,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return f.Close()
}
