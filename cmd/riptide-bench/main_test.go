package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riptide/internal/experiments"
	"riptide/internal/perf"
)

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "nope"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick report in -short mode")
	}
	out := filepath.Join(t.TempDir(), "report.md")
	var sb strings.Builder
	s := experiments.QuickScale()
	s.Duration = s.Duration / 2
	seriesDir := filepath.Join(t.TempDir(), "series")
	if err := report(&sb, s, 1, 5000, seriesDir, 4); err != nil {
		t.Fatal(err)
	}
	// Series CSVs land for figure-bearing results.
	entries, err := os.ReadDir(seriesDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("series dir: %v entries, err=%v", len(entries), err)
	}
	text := sb.String()
	for _, want := range []string{"FIG2", "FIG10", "FIG16", "ABLATION-TTL", "HEADLINE", "| Europe | 10 |"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPerfOnlyRequiresJSONPath(t *testing.T) {
	if err := run([]string{"-perf-only"}); err == nil {
		t.Error("-perf-only without -perf-json accepted")
	}
}

func TestPerfSnapshotBadSizes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	for _, sizes := range []string{"", "abc", "0", "10,-1"} {
		if err := run([]string{"-perf-only", "-perf-json", path, "-perf-sizes", sizes}); err == nil {
			t.Errorf("sizes %q accepted", sizes)
		}
	}
}

func TestPerfSnapshotWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-perf-only", "-perf-json", path,
		"-perf-sizes", "8, 16", "-perf-time", "1ms"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap perf.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != perf.SnapshotSchema {
		t.Errorf("schema = %q", snap.Schema)
	}
	// 2 sizes x 6 series points + 2 route-programming modes
	// + backend comparisons (2 sizes x 2 sampler backends + 2 route backends,
	// exec points skipped when the host lacks cat/true)
	// + the fleet-serving series (2 fixed sizes x (3 kinds x 2 modes + 304)).
	if n := len(snap.Benchmarks); n < 32 || n > 34 {
		t.Fatalf("benchmarks = %d, want 32..34", n)
	}
	var execBaselines, servingBaselines int
	for _, b := range snap.Baselines {
		if strings.HasPrefix(b.Name, "exec-baseline/") {
			execBaselines++
		}
		if strings.HasPrefix(b.Name, "uncached/Serve") {
			servingBaselines++
		}
	}
	if execBaselines == 0 {
		t.Errorf("no exec-baseline entries recorded in snapshot baselines")
	}
	// 2 sizes x 3 kinds of live-measured uncached serving encodes.
	if servingBaselines != 6 {
		t.Errorf("serving baselines = %d, want 6", servingBaselines)
	}
	if snap.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d not stamped", snap.GOMAXPROCS)
	}
	// Single-core runs must not label a multi-shard series "parallel".
	if snap.GOMAXPROCS == 1 {
		for _, b := range snap.Benchmarks {
			if strings.Contains(b.Name, "parallel") {
				t.Errorf("%s labeled parallel at GOMAXPROCS=1", b.Name)
			}
		}
	}
	for _, b := range snap.Benchmarks {
		if b.NsPerOp <= 0 || b.Iterations < 1 {
			t.Errorf("%s: nsPerOp=%v iterations=%d", b.Name, b.NsPerOp, b.Iterations)
		}
	}
}
