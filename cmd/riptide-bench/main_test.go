package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riptide/internal/experiments"
)

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "nope"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick report in -short mode")
	}
	out := filepath.Join(t.TempDir(), "report.md")
	var sb strings.Builder
	s := experiments.QuickScale()
	s.Duration = s.Duration / 2
	seriesDir := filepath.Join(t.TempDir(), "series")
	if err := report(&sb, s, 1, 5000, seriesDir, 4); err != nil {
		t.Fatal(err)
	}
	// Series CSVs land for figure-bearing results.
	entries, err := os.ReadDir(seriesDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("series dir: %v entries, err=%v", len(entries), err)
	}
	text := sb.String()
	for _, want := range []string{"FIG2", "FIG10", "FIG16", "ABLATION-TTL", "HEADLINE", "| Europe | 10 |"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}
