package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"net/netip"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/fleet"
)

// countingSampler records how many times it was asked to sample.
type countingSampler struct {
	mu    sync.Mutex
	calls int
	obs   []core.Observation
}

func (s *countingSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return append(buf, s.obs...), nil
}

func (s *countingSampler) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// recordingRoutes tracks the currently programmed routes.
type recordingRoutes struct {
	mu  sync.Mutex
	set map[netip.Prefix]int
}

func newRecordingRoutes() *recordingRoutes {
	return &recordingRoutes{set: make(map[netip.Prefix]int)}
}

func (r *recordingRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.set[p] = cwnd
	return nil
}

func (r *recordingRoutes) ClearInitCwnd(p netip.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.set, p)
	return nil
}

func (r *recordingRoutes) get(p netip.Prefix) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.set[p]
	return w, ok
}

// TestWarmStartProgramsRoutesBeforeFirstTick is the restart acceptance
// test: an agent learns routes and persists a snapshot; a second agent
// (the restarted daemon) warm-starts from the file and has the routes
// programmed though its sampler has never run.
func TestWarmStartProgramsRoutesBeforeFirstTick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")

	// First incarnation: learn two destinations, persist, "crash".
	first, err := core.New(core.Config{
		Sampler: &countingSampler{obs: []core.Observation{
			{Dst: netip.MustParseAddr("192.0.2.1"), Cwnd: 40},
			{Dst: netip.MustParseAddr("198.51.100.7"), Cwnd: 80},
		}},
		Routes: newRecordingRoutes(),
		Clock:  func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Tick(); err != nil {
		t.Fatal(err)
	}
	saved := time.Unix(1700000000, 0)
	if err := fleet.Save(path, fleet.FromAgent(first, "host-a", saved)); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Restarted incarnation, 10 seconds later.
	sampler := &countingSampler{}
	routes := newRecordingRoutes()
	second, err := core.New(core.Config{
		Sampler: sampler,
		Routes:  routes,
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := warmStart(second, path, 0, saved.Add(10*time.Second))
	if err != nil {
		t.Fatalf("warmStart: %v", err)
	}
	if stats.Merged != 2 {
		t.Fatalf("merged %d entries, want 2 (stats %+v)", stats.Merged, stats)
	}

	// The routes are back and the sampler has not been consulted: the warm
	// start happened strictly before the first tick. The windows carry the
	// 10s staleness discount (half-life MaxAge/2 = 45s): the excess over
	// CMin=10 is scaled by 2^(-10/45) ≈ 0.857, so 40 → 36 and 80 → 70.
	if sampler.count() != 0 {
		t.Fatalf("sampler ran %d times during warm start", sampler.count())
	}
	if w, ok := routes.get(netip.MustParsePrefix("192.0.2.1/32")); !ok || w != 36 {
		t.Fatalf("route 192.0.2.1/32 = %d,%v; want 36,true", w, ok)
	}
	if w, ok := routes.get(netip.MustParsePrefix("198.51.100.7/32")); !ok || w != 70 {
		t.Fatalf("route 198.51.100.7/32 = %d,%v; want 70,true", w, ok)
	}
	if w, ok := second.Lookup(netip.MustParseAddr("192.0.2.1")); !ok || w != 36 {
		t.Fatalf("Lookup = %d,%v; want 36,true", w, ok)
	}
}

func TestWarmStartMissingFileIsCold(t *testing.T) {
	agent := newTestAgent(t)
	stats, err := warmStart(agent, filepath.Join(t.TempDir(), "nope.json"), 0, time.Now())
	if err != nil {
		t.Fatalf("warmStart on missing file: %v", err)
	}
	if stats.Merged != 0 {
		t.Fatalf("stats = %+v, want nothing merged", stats)
	}
}

// TestWarmStartAgesEntriesByDowntime: a snapshot saved long before the
// restart is judged by its true staleness — entries past MaxAge are
// rejected rather than resurrected.
func TestWarmStartAgesEntriesByDowntime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	first := newTestAgent(t)
	if err := first.Tick(); err != nil {
		t.Fatal(err)
	}
	saved := time.Unix(1700000000, 0)
	if err := fleet.Save(path, fleet.FromAgent(first, "host-a", saved)); err != nil {
		t.Fatal(err)
	}

	second := newTestAgent(t)
	// Restart two hours later: far beyond the default 90s TTL.
	stats, err := warmStart(second, path, 0, saved.Add(2*time.Hour))
	if err != nil {
		t.Fatalf("warmStart: %v", err)
	}
	if stats.Merged != 0 || stats.SkippedStale != 1 {
		t.Fatalf("stats = %+v, want everything skipped as stale", stats)
	}
}

// TestRunWritesSnapshotOnShutdown drives the real daemon (dry-run routes,
// real ss) and checks the final snapshot lands on disk at exit.
func TestRunWritesSnapshotOnShutdown(t *testing.T) {
	if _, err := exec.LookPath("ss"); err != nil {
		t.Skipf("ss not available: %v", err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.json")
	err := run([]string{"-dry-run", "-run-for", "150ms", "-interval", "20ms",
		"-snapshot-file", path, "-snapshot-interval", "1h"})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	if _, _, err := fleet.Load(path, time.Now()); err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
}

// TestRunWithDeadPeerExits: a configured peer that is down must not stall
// the daemon or its shutdown.
func TestRunWithDeadPeerExits(t *testing.T) {
	if _, err := exec.LookPath("ss"); err != nil {
		t.Skipf("ss not available: %v", err)
	}
	err := run([]string{"-dry-run", "-run-for", "150ms", "-interval", "20ms",
		"-peers", "127.0.0.1:1", "-peer-interval", "50ms", "-peer-timeout", "100ms"})
	if err != nil {
		t.Fatalf("daemon with dead peer: %v", err)
	}
}

func TestStatusServesFleetSnapshot(t *testing.T) {
	agent := newTestAgent(t)
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent, nil, &fleetState{Source: "host-a"}, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet/snapshot", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	snap, err := fleet.Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if snap.Source != "host-a" || len(snap.Entries) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestStatusIncludesPeerHealth(t *testing.T) {
	agent := newTestAgent(t)
	puller, err := fleet.NewPuller(fleet.PullerConfig{
		Agent:   agent,
		Peers:   []string{"127.0.0.1:1"}, // nothing listens here
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	puller.PullOnce(context.Background())

	h := newStatusHandler(agent, nil, &fleetState{Source: "host-a", Puller: puller}, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var payload statusPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Fleet == nil || payload.Fleet.Source != "host-a" {
		t.Fatalf("fleet section = %+v", payload.Fleet)
	}
	if len(payload.Fleet.Peers) != 1 || payload.Fleet.Peers[0].Healthy {
		t.Fatalf("peers = %+v, want one unhealthy peer", payload.Fleet.Peers)
	}

	// Without fleet wiring the section is omitted.
	h = newStatusHandler(agent, nil, nil, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var bare map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &bare); err != nil {
		t.Fatal(err)
	}
	if _, ok := bare["fleet"]; ok {
		t.Error("fleet key present without fleet wiring")
	}
}
