package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"riptide/internal/core"
)

// statusPayload is the JSON document served at /status.
type statusPayload struct {
	Entries []core.Entry `json:"entries"`
	Stats   core.Stats   `json:"stats"`
}

// newStatusHandler serves the agent's learned entries and counters for
// operational visibility: /status (JSON) and /healthz (200 once ticking).
func newStatusHandler(agent *core.Agent) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		payload := statusPayload{
			Entries: agent.Entries(),
			Stats:   agent.Stats(),
		}
		if payload.Entries == nil {
			payload.Entries = []core.Entry{}
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, agent)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if agent.Stats().Ticks == 0 {
			http.Error(w, "no ticks yet", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// writeMetrics renders the agent's counters and gauges in Prometheus text
// exposition format.
func writeMetrics(w io.Writer, agent *core.Agent) {
	s := agent.Stats()
	entries := agent.Entries()
	counters := []struct {
		name, help string
		value      uint64
	}{
		{"riptide_ticks_total", "Algorithm 1 rounds executed", s.Ticks},
		{"riptide_observations_total", "Connections sampled across all rounds", s.Observations},
		{"riptide_routes_set_total", "initcwnd routes programmed", s.RoutesSet},
		{"riptide_routes_cleared_total", "initcwnd routes withdrawn", s.RoutesCleared},
		{"riptide_entries_expired_total", "Learned entries dropped by TTL", s.EntriesExpired},
		{"riptide_sample_errors_total", "Failed ss invocations", s.SampleErrors},
		{"riptide_route_errors_total", "Failed ip route invocations", s.RouteErrors},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintf(w, "# HELP riptide_entries Learned destinations currently programmed\n# TYPE riptide_entries gauge\nriptide_entries %d\n", len(entries))
	fmt.Fprintln(w, "# HELP riptide_entry_initcwnd Programmed initial window per destination")
	fmt.Fprintln(w, "# TYPE riptide_entry_initcwnd gauge")
	for _, e := range entries {
		fmt.Fprintf(w, "riptide_entry_initcwnd{prefix=%q} %d\n", e.Prefix, e.Window)
	}
}

// serveStatus runs the status endpoint until ctx is done. Errors other than
// a clean shutdown are returned.
func serveStatus(ctx context.Context, addr string, agent *core.Agent) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           newStatusHandler(agent),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		<-done
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
