package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"riptide/internal/core"
	"riptide/internal/fleet"
	"riptide/internal/guard"
	"riptide/internal/metrics"
)

// statusPayload is the JSON document served at /status.
type statusPayload struct {
	Entries []core.Entry     `json:"entries"`
	Stats   core.Stats       `json:"stats"`
	Retry   *core.RetryStats `json:"retry,omitempty"`
	Fleet   *fleetPayload    `json:"fleet,omitempty"`
	Guard   *guardPayload    `json:"guard,omitempty"`
}

// guardPayload is the safety-governor section of /status: per-state
// destination counts plus every active quarantine.
type guardPayload struct {
	guard.Status
	Quarantines []quarantinePayload `json:"quarantines"`
}

type quarantinePayload struct {
	Prefix string `json:"prefix"`
	Age    string `json:"age"`
}

// fleetPayload is the fleet-sharing section of /status: who we are, how
// each configured peer is doing, and what the serving response cache did.
type fleetPayload struct {
	Source string             `json:"source,omitempty"`
	Peers  []fleet.PeerHealth `json:"peers"`
	Serve  *fleet.ServeStats  `json:"serve,omitempty"`
}

// metricsPayload is the JSON document served at /metrics.json:
//
//	{
//	  "stats":   { ...core.Stats: ticks, observations, routesSet, ... },
//	  "retry":   { ...core.RetryStats: attempts, retries, fallbacks, ... },
//	  "metrics": {
//	    "counters":   { "<name>": <uint64>, ... },
//	    "histograms": { "<name>": { "count": n, "sumNanos": ns,
//	                                "buckets": [ {"upperNanos": ns|-1, "count": n}, ... ] } }
//	  }
//	}
//
// Histogram bucket counts are per-bucket (not cumulative); upperNanos -1
// marks the +Inf bucket.
type metricsPayload struct {
	Stats   core.Stats       `json:"stats"`
	Retry   *core.RetryStats `json:"retry,omitempty"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// newStatusHandler serves the agent's learned entries and counters for
// operational visibility: /status (JSON), /metrics (Prometheus text),
// /metrics.json (full JSON snapshot), /healthz (200 once ticking), and
// /fleet/snapshot (the agent's learned table for fleet peers). retry may be
// nil when the daemon runs without the retry decorator; fl may be nil when
// fleet sharing is not configured; gov may be nil when the governor is off.
func newStatusHandler(agent *core.Agent, retry *core.RetryingRouteProgrammer, fl *fleetState, gov *guard.Governor) http.Handler {
	retryStats := func() *core.RetryStats {
		if retry == nil {
			return nil
		}
		s := retry.Stats()
		return &s
	}
	source, instance := "", ""
	var srv *fleet.Server
	if fl != nil {
		source = fl.Source
		instance = fl.Instance
		srv = fl.Server
	}
	if srv == nil {
		srv = fleet.NewServer(agent, source, instance, nil)
	}
	fleetStatus := func() *fleetPayload {
		if fl == nil || fl.Puller == nil {
			return nil
		}
		p := &fleetPayload{Source: fl.Source, Peers: fl.Puller.Health()}
		stats := srv.Stats()
		p.Serve = &stats
		return p
	}
	guardStatus := func() *guardPayload {
		if gov == nil {
			return nil
		}
		p := &guardPayload{Status: gov.Status(), Quarantines: []quarantinePayload{}}
		for _, q := range gov.Quarantines() {
			p.Quarantines = append(p.Quarantines, quarantinePayload{
				Prefix: q.Prefix.String(),
				Age:    q.Age.String(),
			})
		}
		return p
	}
	mux := http.NewServeMux()
	mux.Handle(fleet.SnapshotPath, srv.SnapshotHandler())
	mux.Handle(fleet.DigestPath, srv.DigestHandler())
	mux.Handle(fleet.DeltaPath, srv.DeltaHandler())
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		payload := statusPayload{
			Entries: agent.Entries(),
			Stats:   agent.Stats(),
			Retry:   retryStats(),
			Fleet:   fleetStatus(),
			Guard:   guardStatus(),
		}
		if payload.Entries == nil {
			payload.Entries = []core.Entry{}
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, agent)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		payload := metricsPayload{
			Stats:   agent.Stats(),
			Retry:   retryStats(),
			Metrics: agent.Metrics().Snapshot(),
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if agent.Stats().Ticks == 0 {
			http.Error(w, "no ticks yet", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// writeMetrics renders the agent's counters and gauges in Prometheus text
// exposition format, followed by everything in the shared metrics registry
// (latency histograms, retry counters, exec counters).
func writeMetrics(w io.Writer, agent *core.Agent) {
	s := agent.Stats()
	entries := agent.Entries()
	counters := []struct {
		name, help string
		value      uint64
	}{
		{"riptide_ticks_total", "Algorithm 1 rounds executed", s.Ticks},
		{"riptide_observations_total", "Connections sampled across all rounds", s.Observations},
		{"riptide_routes_set_total", "initcwnd routes programmed", s.RoutesSet},
		{"riptide_routes_cleared_total", "initcwnd routes withdrawn", s.RoutesCleared},
		{"riptide_entries_expired_total", "Learned entries dropped by TTL", s.EntriesExpired},
		{"riptide_sample_errors_total", "Failed ss invocations", s.SampleErrors},
		{"riptide_route_errors_total", "Failed ip route invocations", s.RouteErrors},
		{"riptide_degraded_ticks_total", "Expiry-only ticks while the sampler breaker was open", s.DegradedTicks},
		{"riptide_breaker_opens_total", "Sampler circuit-breaker open transitions", s.BreakerOpens},
		{"riptide_guard_capped_total", "Route programs whose window the governor reduced", s.GuardCapped},
		{"riptide_guard_vetoed_total", "Route programs skipped on the governor's verdict", s.GuardVetoed},
		{"riptide_guard_quarantined_total", "Governor vetoes that were quarantine decisions", s.GuardQuarantined},
		{"riptide_guard_cleared_total", "Installed routes withdrawn on a governor veto", s.GuardCleared},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintf(w, "# HELP riptide_entries Learned destinations currently programmed\n# TYPE riptide_entries gauge\nriptide_entries %d\n", len(entries))
	fmt.Fprintln(w, "# HELP riptide_entry_initcwnd Programmed initial window per destination")
	fmt.Fprintln(w, "# TYPE riptide_entry_initcwnd gauge")
	for _, e := range entries {
		fmt.Fprintf(w, "riptide_entry_initcwnd{prefix=%q} %d\n", e.Prefix, e.Window)
	}
	writeRegistryMetrics(w, agent.Metrics().Snapshot())
}

// writeRegistryMetrics renders a metrics.Snapshot in Prometheus text format:
// counters gain a _total suffix; histograms emit cumulative _bucket series
// with le in seconds, plus _sum and _count.
func writeRegistryMetrics(w io.Writer, snap metrics.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		cumulative := uint64(0)
		for _, b := range h.Buckets {
			cumulative += b.Count
			le := "+Inf"
			if b.UpperNanos >= 0 {
				le = fmt.Sprintf("%g", time.Duration(b.UpperNanos).Seconds())
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cumulative)
		}
		fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(h.SumNanos).Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

// serveStatus runs the status endpoint until ctx is done. Errors other than
// a clean shutdown are returned.
func serveStatus(ctx context.Context, addr string, agent *core.Agent, retry *core.RetryingRouteProgrammer, fl *fleetState, gov *guard.Governor) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           newStatusHandler(agent, retry, fl, gov),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		<-done
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
