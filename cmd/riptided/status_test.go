package main

import (
	"encoding/json"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
)

type staticSampler []core.Observation

func (s staticSampler) SampleConnections() ([]core.Observation, error) { return s, nil }

type nopRoutes struct{}

func (nopRoutes) SetInitCwnd(netip.Prefix, int) error { return nil }
func (nopRoutes) ClearInitCwnd(netip.Prefix) error    { return nil }

func newTestAgent(t *testing.T) *core.Agent {
	t.Helper()
	agent, err := core.New(core.Config{
		Sampler: staticSampler{{Dst: netip.MustParseAddr("10.0.0.7"), Cwnd: 64}},
		Routes:  nopRoutes{},
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func TestStatusEndpoint(t *testing.T) {
	agent := newTestAgent(t)
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status code = %d", rec.Code)
	}
	var payload statusPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Entries) != 1 || payload.Entries[0].Window != 64 {
		t.Errorf("entries = %+v", payload.Entries)
	}
	if payload.Stats.Ticks != 1 {
		t.Errorf("stats = %+v", payload.Stats)
	}
}

func TestStatusMethodNotAllowed(t *testing.T) {
	h := newStatusHandler(newTestAgent(t))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/status", nil))
	if rec.Code != 405 {
		t.Errorf("code = %d, want 405", rec.Code)
	}
}

func TestHealthzBeforeAndAfterTick(t *testing.T) {
	agent := newTestAgent(t)
	h := newStatusHandler(agent)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("pre-tick healthz = %d, want 503", rec.Code)
	}

	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("post-tick healthz = %d, want 200", rec.Code)
	}
}

func TestStatusEmptyEntriesIsArray(t *testing.T) {
	h := newStatusHandler(newTestAgent(t))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	body := rec.Body.String()
	if want := `"entries":[]`; !strings.Contains(body, want) {
		t.Errorf("body = %s, want %s", body, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	agent := newTestAgent(t)
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"riptide_ticks_total 1",
		"riptide_entries 1",
		`riptide_entry_initcwnd{prefix="10.0.0.7/32"} 64`,
		"# TYPE riptide_routes_set_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
