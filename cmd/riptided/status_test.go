package main

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/guard"
)

type staticSampler []core.Observation

func (s staticSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	return append(buf, s...), nil
}

type nopRoutes struct{}

func (nopRoutes) SetInitCwnd(netip.Prefix, int) error { return nil }
func (nopRoutes) ClearInitCwnd(netip.Prefix) error    { return nil }

func newTestAgent(t *testing.T) *core.Agent {
	t.Helper()
	agent, err := core.New(core.Config{
		Sampler: staticSampler{{Dst: netip.MustParseAddr("10.0.0.7"), Cwnd: 64}},
		Routes:  nopRoutes{},
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func TestStatusEndpoint(t *testing.T) {
	agent := newTestAgent(t)
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent, nil, nil, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status code = %d", rec.Code)
	}
	var payload statusPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Entries) != 1 || payload.Entries[0].Window != 64 {
		t.Errorf("entries = %+v", payload.Entries)
	}
	if payload.Stats.Ticks != 1 {
		t.Errorf("stats = %+v", payload.Stats)
	}
}

func TestStatusMethodNotAllowed(t *testing.T) {
	h := newStatusHandler(newTestAgent(t), nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/status", nil))
	if rec.Code != 405 {
		t.Errorf("code = %d, want 405", rec.Code)
	}
}

func TestHealthzBeforeAndAfterTick(t *testing.T) {
	agent := newTestAgent(t)
	h := newStatusHandler(agent, nil, nil, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("pre-tick healthz = %d, want 503", rec.Code)
	}

	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("post-tick healthz = %d, want 200", rec.Code)
	}
}

func TestStatusEmptyEntriesIsArray(t *testing.T) {
	h := newStatusHandler(newTestAgent(t), nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	body := rec.Body.String()
	if want := `"entries":[]`; !strings.Contains(body, want) {
		t.Errorf("body = %s, want %s", body, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	agent := newTestAgent(t)
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent, nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"riptide_ticks_total 1",
		"riptide_entries 1",
		`riptide_entry_initcwnd{prefix="10.0.0.7/32"} 64`,
		"# TYPE riptide_routes_set_total counter",
		"riptide_degraded_ticks_total 0",
		"riptide_breaker_opens_total 0",
		"# TYPE riptide_tick_duration histogram",
		`riptide_tick_duration_bucket{le="+Inf"} 1`,
		"riptide_tick_duration_count 1",
		"riptide_sample_duration_count 1",
		"riptide_program_duration_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	agent := newTestAgent(t)
	retry, err := core.NewRetryingRouteProgrammer(failOnceRoutes(), core.RetryPolicy{
		Sleep:   func(time.Duration) {},
		Metrics: agent.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exercise one retried operation so the counters are non-zero.
	if err := retry.SetInitCwnd(netip.MustParsePrefix("10.0.0.7/32"), 64); err != nil {
		t.Fatal(err)
	}
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}

	h := newStatusHandler(agent, retry, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var payload metricsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Stats.Ticks != 1 {
		t.Errorf("stats = %+v", payload.Stats)
	}
	if payload.Retry == nil || payload.Retry.Retries != 1 || payload.Retry.Attempts != 2 {
		t.Errorf("retry stats = %+v", payload.Retry)
	}
	if got := payload.Metrics.Counters["riptide_route_retries"]; got != 1 {
		t.Errorf("riptide_route_retries = %d, want 1", got)
	}
	tick, ok := payload.Metrics.Histograms["riptide_tick_duration"]
	if !ok || tick.Count != 1 || len(tick.Buckets) == 0 {
		t.Errorf("tick histogram = %+v", tick)
	}
	if last := tick.Buckets[len(tick.Buckets)-1]; last.UpperNanos != -1 {
		t.Errorf("last bucket = %+v, want +Inf sentinel", last)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics.json", nil))
	if rec.Code != 405 {
		t.Errorf("POST code = %d, want 405", rec.Code)
	}
}

// retryOnceRoutes fails the first SetInitCwnd, then succeeds.
type retryOnceRoutes struct {
	tried bool
}

func failOnceRoutes() *retryOnceRoutes { return &retryOnceRoutes{} }

func (r *retryOnceRoutes) SetInitCwnd(netip.Prefix, int) error {
	if !r.tried {
		r.tried = true
		return errors.New("transient")
	}
	return nil
}

func (r *retryOnceRoutes) ClearInitCwnd(netip.Prefix) error { return nil }

func TestStatusIncludesGuardSection(t *testing.T) {
	agent := newTestAgent(t)
	gov, err := guard.New(guard.Config{Clock: func() time.Duration { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	gov.ObserveSample(netip.MustParsePrefix("10.0.0.7/32"), core.Observation{SegsOut: 100})
	gov.ObserveTick(time.Second)

	h := newStatusHandler(agent, nil, nil, gov)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var payload statusPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Guard == nil || payload.Guard.Healthy != 1 {
		t.Errorf("guard section = %+v, want one healthy destination", payload.Guard)
	}
	if payload.Guard.Quarantines == nil {
		t.Error("quarantines must encode as [], not null")
	}

	// Without the governor the section is omitted entirely.
	h = newStatusHandler(agent, nil, nil, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if strings.Contains(rec.Body.String(), `"guard"`) {
		t.Errorf("guard key present without governor: %s", rec.Body.String())
	}
}

func TestMetricsIncludeGuardCounters(t *testing.T) {
	agent := newTestAgent(t)
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent, nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"riptide_guard_capped_total 0",
		"riptide_guard_vetoed_total 0",
		"riptide_guard_quarantined_total 0",
		"riptide_guard_cleared_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestStatusIncludesRetryStats(t *testing.T) {
	agent := newTestAgent(t)
	retry, err := core.NewRetryingRouteProgrammer(nopRoutes{}, core.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	h := newStatusHandler(agent, retry, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	var payload statusPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Retry == nil {
		t.Error("retry stats missing from /status when the decorator is wired")
	}

	// Without the decorator the field is omitted entirely.
	h = newStatusHandler(agent, nil, nil, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if strings.Contains(rec.Body.String(), `"retry"`) {
		t.Errorf("retry key present without decorator: %s", rec.Body.String())
	}
}
