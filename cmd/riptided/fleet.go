package main

import (
	"context"
	"errors"
	"time"

	"riptide/internal/core"
	"riptide/internal/fleet"
)

// fleetState carries the daemon's fleet-sharing wiring: the snapshot source
// label, this run's gossip instance identity, the shared response-cache
// server behind the fleet endpoints, the optional peer puller (with its
// health state for /status), and the optional on-disk persister.
type fleetState struct {
	Source    string
	Instance  string
	Server    *fleet.Server
	Puller    *fleet.Puller
	Persister *fleet.Persister
}

// warmStart merges an on-disk snapshot into the agent, aged by the downtime
// since it was written, so a restarted daemon programs its previously
// learned routes before the first sampler tick. A missing snapshot file is
// the normal first boot and merges nothing.
func warmStart(agent *core.Agent, path string, maxAge time.Duration, now time.Time) (core.MergeStats, error) {
	snap, elapsed, err := fleet.Load(path, now)
	if errors.Is(err, fleet.ErrNoSnapshot) {
		return core.MergeStats{}, nil
	}
	if err != nil {
		return core.MergeStats{}, err
	}
	return agent.MergeSnapshot(snap.AgedBy(elapsed).CoreEntries(), core.MergePolicy{MaxAge: maxAge})
}

// tickLoop drives the agent's poll loop every UpdateInterval until ctx is
// done. Unlike riptide.Run it does not close the agent — the daemon saves a
// final fleet snapshot first, and Close would wipe the learned table.
func tickLoop(ctx context.Context, agent *core.Agent, onError func(error)) {
	ticker := time.NewTicker(agent.Config().UpdateInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if err := agent.Tick(); err != nil {
				if errors.Is(err, core.ErrClosed) {
					return
				}
				onError(err)
			}
		}
	}
}
