package main

import (
	"net/netip"
	"os/exec"
	"strings"
	"testing"
)

func TestRunUnknownCombiner(t *testing.T) {
	if err := run([]string{"-combiner", "quantum"}); err == nil {
		t.Error("unknown combiner accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnknownBackend(t *testing.T) {
	err := run([]string{"-backend", "quantum"})
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend accepted: %v", err)
	}
}

func TestRunNetlinkBackendDryRun(t *testing.T) {
	// Exercises the netlink sampler against the real kernel where possible;
	// on hosts without NETLINK_SOCK_DIAG access the probe failure is the
	// expected outcome and equally covers the selection path.
	err := run([]string{"-backend", "netlink", "-dry-run", "-run-for", "120ms", "-interval", "20ms"})
	if err != nil && !strings.Contains(err.Error(), "probe") {
		t.Fatalf("netlink dry-run daemon: %v", err)
	}
	if err != nil {
		t.Skipf("netlink unavailable here: %v", err)
	}
}

// logCapture satisfies the dry-run printer.
type logCapture struct{ lines []string }

func (l *logCapture) Printf(format string, args ...any) {
	l.lines = append(l.lines, format)
	_ = args
}

func TestDryRunRoutesPrintInsteadOfExecute(t *testing.T) {
	cap := &logCapture{}
	d := dryRunRoutes{out: cap}
	p := netip.MustParsePrefix("10.0.0.127/32")
	if err := d.SetInitCwnd(p, 80); err != nil {
		t.Fatal(err)
	}
	if err := d.ClearInitCwnd(p); err != nil {
		t.Fatal(err)
	}
	if len(cap.lines) != 2 {
		t.Fatalf("lines = %v", cap.lines)
	}
	if !strings.Contains(cap.lines[0], "DRY-RUN ip route replace") {
		t.Errorf("set line = %q", cap.lines[0])
	}
	if !strings.Contains(cap.lines[1], "DRY-RUN ip route del") {
		t.Errorf("del line = %q", cap.lines[1])
	}
}

func TestRunDryRunForDuration(t *testing.T) {
	if _, err := exec.LookPath("ss"); err != nil {
		t.Skipf("ss not available: %v", err)
	}
	err := run([]string{"-dry-run", "-run-for", "120ms", "-interval", "20ms", "-v"})
	if err != nil {
		t.Fatalf("dry-run daemon: %v", err)
	}
}

func TestRunWithStatusServer(t *testing.T) {
	if _, err := exec.LookPath("ss"); err != nil {
		t.Skipf("ss not available: %v", err)
	}
	err := run([]string{"-dry-run", "-run-for", "150ms", "-interval", "20ms",
		"-status", "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("daemon with status: %v", err)
	}
}
