// Command riptided is the Riptide agent daemon for real Linux hosts: it
// samples the established-connection table every update interval, learns
// per-destination congestion windows, and programs per-route initcwnd
// overrides, exactly as described in the paper's Section III.
//
// The kernel is spoken to through a selectable backend (-backend): netlink
// (NETLINK_SOCK_DIAG dumps and rtnetlink route batches, no fork/exec on
// the hot path), exec (`ss -tin` / `ip route` commands), or auto (the
// default: probe netlink, fall back to exec).
//
// Run with -dry-run to print the route changes instead of applying them
// (sampling still reads the real kernel). Stopping the daemon
// (SIGINT/SIGTERM) withdraws every route it installed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"riptide"
	"riptide/internal/core"
	"riptide/internal/fleet"
	"riptide/internal/guard"
	"riptide/internal/linux"
	"riptide/internal/metrics"
	"riptide/internal/netlink"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// dryRunRoutes prints the route changes riptided would make.
type dryRunRoutes struct {
	out interface{ Printf(string, ...any) }
}

func (d dryRunRoutes) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	d.out.Printf("DRY-RUN ip route replace %s proto static initcwnd %s", prefix, strconv.Itoa(cwnd))
	return nil
}

func (d dryRunRoutes) ClearInitCwnd(prefix netip.Prefix) error {
	d.out.Printf("DRY-RUN ip route del %s proto static", prefix)
	return nil
}

// backend bundles one host-backend selection: how riptided samples the
// connection table and programs routes.
type backend struct {
	name      string
	sampler   core.ConnectionSampler
	routes    riptide.RouteProgrammer // nil in dry-run
	reconcile func() (int, error)     // nil in dry-run
	close     func()                  // nil when nothing to release
}

// buildBackend constructs the selected host backend. "netlink" talks the
// kernel wire protocols directly (no fork/exec on the hot path), "exec"
// shells out to ss/ip, and "auto" probes netlink — interface present and
// privileges sufficient — falling back to exec with a logged reason.
func buildBackend(kind string, reg *metrics.Registry, rcfg linux.RoutesConfig, dryRun bool, logf func(string, ...any)) (*backend, error) {
	switch kind {
	case "netlink":
		return buildNetlinkBackend(rcfg, dryRun)
	case "exec":
		return buildExecBackend(reg, rcfg, dryRun)
	case "auto":
		be, err := buildNetlinkBackend(rcfg, dryRun)
		if err == nil {
			return be, nil
		}
		logf("backend auto: netlink unavailable (%v), falling back to exec", err)
		return buildExecBackend(reg, rcfg, dryRun)
	default:
		return nil, fmt.Errorf("unknown backend %q (want netlink, exec, or auto)", kind)
	}
}

func buildNetlinkBackend(rcfg linux.RoutesConfig, dryRun bool) (*backend, error) {
	s, err := netlink.NewSampler(netlink.SamplerConfig{})
	if err != nil {
		return nil, err
	}
	if err := core.ProbeBackend(s); err != nil {
		_ = s.Close()
		return nil, fmt.Errorf("netlink sampler probe: %w", err)
	}
	be := &backend{name: "netlink", sampler: s, close: func() { _ = s.Close() }}
	if dryRun {
		return be, nil
	}
	r, err := netlink.NewRoutes(netlink.RoutesConfig{RoutesConfig: rcfg})
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	if err := core.ProbeBackend(r); err != nil {
		_ = s.Close()
		_ = r.Close()
		return nil, fmt.Errorf("netlink routes probe: %w", err)
	}
	be.routes = r
	be.reconcile = r.Reconcile
	be.close = func() { _ = s.Close(); _ = r.Close() }
	return be, nil
}

func buildExecBackend(reg *metrics.Registry, rcfg linux.RoutesConfig, dryRun bool) (*backend, error) {
	runner := linux.ExecRunner{Metrics: reg}
	sampler, err := linux.NewSampler(runner)
	if err != nil {
		return nil, err
	}
	be := &backend{name: "exec", sampler: sampler}
	if dryRun {
		return be, nil
	}
	ipRoutes, err := linux.NewRoutes(runner, rcfg)
	if err != nil {
		return nil, err
	}
	be.routes = ipRoutes
	be.reconcile = ipRoutes.Reconcile
	return be, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("riptided", flag.ContinueOnError)
	var (
		device     = fs.String("dev", "", "outgoing device for programmed routes (e.g. eth0)")
		gateway    = fs.String("via", "", "next-hop gateway for programmed routes")
		interval   = fs.Duration("interval", riptide.DefaultUpdateInterval, "update interval i_u")
		ttl        = fs.Duration("ttl", riptide.DefaultTTL, "learned-entry TTL t")
		alpha      = fs.Float64("alpha", riptide.DefaultAlpha, "EWMA weight on historical value")
		cmax       = fs.Int("cmax", riptide.DefaultCMax, "maximum programmed initcwnd")
		cmin       = fs.Int("cmin", riptide.DefaultCMin, "minimum programmed initcwnd")
		prefixBits = fs.Int("prefix-bits", 32, "destination granularity (32=per host, 24=per /24)")
		shards     = fs.Int("shards", 0, "lock-striped state shards for the agent hot path (0 = GOMAXPROCS, capped at 16)")
		initRwnd   = fs.Bool("initrwnd", false, "also set initrwnd on programmed routes")
		backendSel = fs.String("backend", "auto", "host backend: netlink (speak NETLINK_SOCK_DIAG/rtnetlink directly), exec (shell out to ss/ip), auto (probe netlink, fall back to exec)")
		dryRun     = fs.Bool("dry-run", false, "print ip commands instead of executing them")
		combiner   = fs.String("combiner", "average", "combiner: average|max|traffic-weighted")
		verbose    = fs.Bool("v", false, "log each tick's learned entries")
		statusAddr = fs.String("status", "", "serve /status, /metrics, /metrics.json, /healthz on this address (e.g. 127.0.0.1:9090)")
		reconcile  = fs.Bool("reconcile", true, "withdraw leftover riptide routes from a previous run at startup")
		runFor     = fs.Duration("run-for", 0, "exit after this long instead of waiting for a signal (diagnostics)")

		routeAttempts = fs.Int("route-attempts", core.DefaultRetryAttempts, "attempts per ip-route operation (1 disables retries)")
		retryBase     = fs.Duration("retry-base", core.DefaultRetryBaseDelay, "backoff before the first route retry (doubles per retry)")
		retryMax      = fs.Duration("retry-max", core.DefaultRetryMaxDelay, "backoff cap for route retries")
		failureBudget = fs.Int("route-failure-budget", core.DefaultRetryFailureBudget, "consecutive per-destination programming failures before falling back to clearing the route (negative disables)")

		breakerThreshold = fs.Int("breaker-threshold", core.DefaultBreakerThreshold, "consecutive ss failures that open the sampler circuit breaker (negative disables)")
		breakerCooldown  = fs.Duration("breaker-cooldown", core.DefaultBreakerCooldown, "how long the open breaker degrades ticks to expiry-only before probing ss again")

		guardOn       = fs.Bool("guard", false, "enable the loss-feedback safety governor (throttles, then quarantines, destinations whose loss regresses under the programmed window)")
		guardHoldback = fs.Float64("guard-holdback", guard.DefaultHoldback, "fraction of destinations held back at the kernel default as the governor's canary baseline")
		guardQuarTTL  = fs.Duration("guard-quarantine-ttl", guard.DefaultQuarantineTTL, "quarantine cool-down before the governor probes a destination again")

		snapshotFile     = fs.String("snapshot-file", "", "persist the learned table to this file (periodic + on shutdown) and warm-start from it on boot")
		snapshotInterval = fs.Duration("snapshot-interval", time.Minute, "how often to persist the snapshot file")
		peerSpec         = fs.String("peers", "", "comma-separated fleet peers (host:port or URL) to pull snapshots from")
		peerInterval     = fs.Duration("peer-interval", 30*time.Second, "how often to pull peer snapshots")
		peerTimeout      = fs.Duration("peer-timeout", 5*time.Second, "timeout per peer snapshot request")
		fleetMaxAge      = fs.Duration("fleet-max-age", 0, "reject snapshot entries older than this (0 = the TTL)")
		gossipOn         = fs.Bool("gossip", false, "sync peers via the anti-entropy digest/delta ladder instead of full snapshot pulls (falls back per round when a peer lacks the gossip endpoints)")
		gossipInterval   = fs.Duration("gossip-interval", 0, "peer sync cadence when -gossip is on (0 = -peer-interval); digests are cheap, so this can be much shorter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "riptided: ", log.LstdFlags)

	// The shutdown context is created before the route pipeline so the
	// retry decorator can abandon in-flight backoff waits the moment a
	// signal arrives, instead of sleeping through them.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	var comb riptide.Combiner
	switch *combiner {
	case "average":
		comb = riptide.AverageCombiner{}
	case "max":
		comb = riptide.MaxCombiner{}
	case "traffic-weighted":
		comb = riptide.TrafficWeightedCombiner{}
	default:
		return fmt.Errorf("unknown combiner %q", *combiner)
	}

	// One registry spans the agent, the retry decorator, and the exec
	// runner, so /metrics and /metrics.json show the whole pipeline.
	reg := metrics.NewRegistry()

	be, err := buildBackend(*backendSel, reg, linux.RoutesConfig{
		Device:      *device,
		Gateway:     *gateway,
		SetInitRwnd: *initRwnd,
	}, *dryRun, logger.Printf)
	if err != nil {
		return err
	}
	sampler := be.sampler
	var routes riptide.RouteProgrammer
	if *dryRun {
		routes = dryRunRoutes{out: logger}
	} else {
		if *reconcile {
			// A previous incarnation may have died without
			// withdrawing its routes; stale aggressive windows must
			// not outlive their observations (Section III-C).
			removed, err := be.reconcile()
			if err != nil {
				logger.Printf("reconcile: %v", err)
			}
			if removed > 0 {
				logger.Printf("reconcile: withdrew %d stale riptide route(s)", removed)
			}
		}
		routes = be.routes
	}

	// The retry decorator sits between the agent and the backend: bounded
	// backoff for transient ip failures, and a conservative fall-back to
	// clearing the route when a destination keeps failing.
	retry, err := core.NewRetryingRouteProgrammer(routes, core.RetryPolicy{
		MaxAttempts:   *routeAttempts,
		BaseDelay:     *retryBase,
		MaxDelay:      *retryMax,
		FailureBudget: *failureBudget,
		Context:       ctx,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }

	// The governor shares the agent's clock and metrics registry, so its
	// quarantine cool-downs and transition counters line up with the
	// agent's ticks in /metrics.
	var gov *guard.Governor
	if *guardOn {
		gov, err = guard.New(guard.Config{
			Holdback:      *guardHoldback,
			QuarantineTTL: *guardQuarTTL,
			Clock:         clock,
			Metrics:       reg,
		})
		if err != nil {
			return err
		}
	}

	cfg := core.Config{
		Sampler:          sampler,
		Routes:           retry,
		Clock:            clock,
		UpdateInterval:   *interval,
		TTL:              *ttl,
		Alpha:            *alpha,
		CMax:             *cmax,
		CMin:             *cmin,
		PrefixBits:       *prefixBits,
		Shards:           *shards,
		Combiner:         comb,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Metrics:          reg,
	}
	if gov != nil {
		// Assigned only when non-nil: a typed-nil *guard.Governor in the
		// interface field would read as "governor present" to the agent.
		cfg.Guard = gov
	}
	agent, err := core.New(cfg)
	if err != nil {
		return err
	}

	// Fleet sharing: warm-start from the on-disk snapshot before the first
	// sampler tick, then keep persisting, and pull peer snapshots in the
	// background. All of it is optional and advisory — fleet trouble never
	// touches the local learn/program loop.
	source, _ := os.Hostname()
	// The instance identity is fresh per boot: peers use it to notice a
	// restart (version counter reset) and resync divergent digest buckets
	// instead of trusting a stale delta cursor.
	instance := fmt.Sprintf("%s-%d", source, time.Now().UnixNano())
	fl := &fleetState{Source: source, Instance: instance}
	// One shared response-cache server backs all three fleet endpoints, so
	// a converged fleet's identical GETs are answered from one encoded body
	// (or a 304) instead of a fresh table export each.
	fl.Server = fleet.NewServer(agent, source, instance, nil)
	if *snapshotFile != "" {
		stats, err := warmStart(agent, *snapshotFile, *fleetMaxAge, time.Now())
		if err != nil {
			logger.Printf("warm start: %v (starting cold)", err)
		} else if stats.Merged > 0 || stats.SkippedStale > 0 {
			logger.Printf("warm start: merged %d entries, skipped %d stale", stats.Merged, stats.SkippedStale)
		}
		fl.Persister = &fleet.Persister{
			Path:     *snapshotFile,
			Source:   source,
			Agent:    agent,
			Interval: *snapshotInterval,
			Logf:     logger.Printf,
		}
	}
	if *peerSpec != "" {
		pullEvery := *peerInterval
		if *gossipOn && *gossipInterval > 0 {
			pullEvery = *gossipInterval
		}
		fl.Puller, err = fleet.NewPuller(fleet.PullerConfig{
			Agent:    agent,
			Peers:    strings.Split(*peerSpec, ","),
			Interval: pullEvery,
			Timeout:  *peerTimeout,
			Policy:   core.MergePolicy{MaxAge: *fleetMaxAge},
			Gossip:   *gossipOn,
			Logf:     logger.Printf,
		})
		if err != nil {
			return err
		}
	}

	var persistDone chan struct{}
	if fl.Persister != nil {
		persistDone = make(chan struct{})
		go func() {
			fl.Persister.Run(ctx)
			close(persistDone)
		}()
	}
	if fl.Puller != nil {
		go func() {
			// One immediate pull jump-starts from peers at boot; then the
			// periodic loop takes over.
			fl.Puller.PullOnce(ctx)
			fl.Puller.Run(ctx)
		}()
	}

	if *statusAddr != "" {
		go func() {
			if err := serveStatus(ctx, *statusAddr, agent, retry, fl, gov); err != nil {
				logger.Printf("status server: %v", err)
			}
		}()
	}

	logger.Printf("started: backend=%s i_u=%v ttl=%v alpha=%v window=[%d,%d] combiner=%s shards=%d dry-run=%v guard=%v gossip=%v",
		be.name, *interval, *ttl, *alpha, *cmin, *cmax, *combiner, agent.Shards(), *dryRun, *guardOn, *gossipOn)

	if *verbose {
		go func() {
			t := time.NewTicker(10 * *interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					for _, e := range agent.Entries() {
						logger.Printf("entry %s initcwnd=%d obs=%d", e.Prefix, e.Window, e.Observations)
					}
				}
			}
		}()
	}

	tickLoop(ctx, agent, func(tickErr error) {
		logger.Printf("tick: %v", tickErr)
	})
	if persistDone != nil {
		// The persister writes its final snapshot on ctx cancellation;
		// wait for it before Close wipes the learned table.
		<-persistDone
	}
	err = agent.Close()
	if be.close != nil {
		be.close()
	}
	s := agent.Stats()
	rs := retry.Stats()
	logger.Printf("stopped: ticks=%d observations=%d routes-set=%d routes-cleared=%d retries=%d fallbacks=%d degraded-ticks=%d",
		s.Ticks, s.Observations, s.RoutesSet, s.RoutesCleared, rs.Retries, rs.Fallbacks, s.DegradedTicks)
	return err
}
