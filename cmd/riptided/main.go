// Command riptided is the Riptide agent daemon for real Linux hosts: it
// polls `ss -tin` every update interval, learns per-destination congestion
// windows, and programs `ip route ... initcwnd` overrides, exactly as
// described in the paper's Section III.
//
// Run with -dry-run to print the ip commands instead of executing them
// (sampling still uses the real ss). Stopping the daemon (SIGINT/SIGTERM)
// withdraws every route it installed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"riptide"
	"riptide/internal/core"
	"riptide/internal/linux"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// dryRunRoutes prints the route changes riptided would make.
type dryRunRoutes struct {
	out interface{ Printf(string, ...any) }
}

func (d dryRunRoutes) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	d.out.Printf("DRY-RUN ip route replace %s proto static initcwnd %s", prefix, strconv.Itoa(cwnd))
	return nil
}

func (d dryRunRoutes) ClearInitCwnd(prefix netip.Prefix) error {
	d.out.Printf("DRY-RUN ip route del %s proto static", prefix)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("riptided", flag.ContinueOnError)
	var (
		device     = fs.String("dev", "", "outgoing device for programmed routes (e.g. eth0)")
		gateway    = fs.String("via", "", "next-hop gateway for programmed routes")
		interval   = fs.Duration("interval", riptide.DefaultUpdateInterval, "update interval i_u")
		ttl        = fs.Duration("ttl", riptide.DefaultTTL, "learned-entry TTL t")
		alpha      = fs.Float64("alpha", riptide.DefaultAlpha, "EWMA weight on historical value")
		cmax       = fs.Int("cmax", riptide.DefaultCMax, "maximum programmed initcwnd")
		cmin       = fs.Int("cmin", riptide.DefaultCMin, "minimum programmed initcwnd")
		prefixBits = fs.Int("prefix-bits", 32, "destination granularity (32=per host, 24=per /24)")
		initRwnd   = fs.Bool("initrwnd", false, "also set initrwnd on programmed routes")
		dryRun     = fs.Bool("dry-run", false, "print ip commands instead of executing them")
		combiner   = fs.String("combiner", "average", "combiner: average|max|traffic-weighted")
		verbose    = fs.Bool("v", false, "log each tick's learned entries")
		statusAddr = fs.String("status", "", "serve /status and /healthz on this address (e.g. 127.0.0.1:9090)")
		reconcile  = fs.Bool("reconcile", true, "withdraw leftover riptide routes from a previous run at startup")
		runFor     = fs.Duration("run-for", 0, "exit after this long instead of waiting for a signal (diagnostics)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "riptided: ", log.LstdFlags)

	var comb riptide.Combiner
	switch *combiner {
	case "average":
		comb = riptide.AverageCombiner{}
	case "max":
		comb = riptide.MaxCombiner{}
	case "traffic-weighted":
		comb = riptide.TrafficWeightedCombiner{}
	default:
		return fmt.Errorf("unknown combiner %q", *combiner)
	}

	runner := linux.ExecRunner{}
	sampler, err := linux.NewSampler(runner)
	if err != nil {
		return err
	}
	var routes riptide.RouteProgrammer
	if *dryRun {
		routes = dryRunRoutes{out: logger}
	} else {
		ipRoutes, err := linux.NewRoutes(runner, linux.RoutesConfig{
			Device:      *device,
			Gateway:     *gateway,
			SetInitRwnd: *initRwnd,
		})
		if err != nil {
			return err
		}
		if *reconcile {
			// A previous incarnation may have died without
			// withdrawing its routes; stale aggressive windows must
			// not outlive their observations (Section III-C).
			removed, err := ipRoutes.Reconcile()
			if err != nil {
				logger.Printf("reconcile: %v", err)
			}
			if removed > 0 {
				logger.Printf("reconcile: withdrew %d stale riptide route(s)", removed)
			}
		}
		routes = ipRoutes
	}

	start := time.Now()
	agent, err := core.New(core.Config{
		Sampler:        sampler,
		Routes:         routes,
		Clock:          func() time.Duration { return time.Since(start) },
		UpdateInterval: *interval,
		TTL:            *ttl,
		Alpha:          *alpha,
		CMax:           *cmax,
		CMin:           *cmin,
		PrefixBits:     *prefixBits,
		Combiner:       comb,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	if *statusAddr != "" {
		go func() {
			if err := serveStatus(ctx, *statusAddr, agent); err != nil {
				logger.Printf("status server: %v", err)
			}
		}()
	}

	logger.Printf("started: i_u=%v ttl=%v alpha=%v window=[%d,%d] combiner=%s dry-run=%v",
		*interval, *ttl, *alpha, *cmin, *cmax, *combiner, *dryRun)

	if *verbose {
		go func() {
			t := time.NewTicker(10 * *interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					for _, e := range agent.Entries() {
						logger.Printf("entry %s initcwnd=%d obs=%d", e.Prefix, e.Window, e.Observations)
					}
				}
			}
		}()
	}

	err = riptide.Run(ctx, agent, func(tickErr error) {
		logger.Printf("tick: %v", tickErr)
	})
	s := agent.Stats()
	logger.Printf("stopped: ticks=%d observations=%d routes-set=%d routes-cleared=%d",
		s.Ticks, s.Observations, s.RoutesSet, s.RoutesCleared)
	return err
}
