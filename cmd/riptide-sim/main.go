// Command riptide-sim regenerates the paper's cluster-evaluation artefacts
// (Table II and Figures 10–16, plus the Section IV-D edge cases and the
// headline abstract numbers) by simulating the 34-PoP CDN with and without
// Riptide.
//
//	riptide-sim -exp all -scale quick
//	riptide-sim -exp fig10 -duration 30m -seed 3
//
// It also executes declarative YAML scenarios (see docs/scenarios.md):
//
//	riptide-sim run scenarios/guard-capacity-cut.yaml
//	riptide-sim validate scenarios/*.yaml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/experiments"
	"riptide/internal/scenario"
	"riptide/internal/trace"
	"riptide/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenarios(args[1:], true)
		case "validate":
			return runScenarios(args[1:], false)
		}
	}
	return runExperiments(args)
}

// runScenarios parses (and with execute set, runs) each scenario file. The
// report JSON goes to stdout; any parse error or failed assertion makes the
// command exit non-zero.
func runScenarios(paths []string, execute bool) error {
	if len(paths) == 0 {
		verb := "validate"
		if execute {
			verb = "run"
		}
		return fmt.Errorf("usage: riptide-sim %s <scenario.yaml> [more.yaml ...]", verb)
	}
	failed := false
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sp, err := scenario.Parse(src)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if !execute {
			fmt.Fprintf(os.Stderr, "%s: ok (%s: %d events, %d assertions)\n",
				path, sp.Name, len(sp.Events), len(sp.Assertions))
			continue
		}
		start := time.Now()
		rep, err := sp.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		b, err := rep.Encode()
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(b); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s finished in %v\n", sp.Name, time.Since(start).Round(time.Millisecond))
		if !rep.Pass {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: assertions FAILED\n", path)
		}
	}
	if failed {
		return fmt.Errorf("one or more scenarios failed their assertions")
	}
	return nil
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("riptide-sim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: table2|fig10|fig11|fig12|fig13|fig14|fig15|fig16|edge|headline|all")
		scale    = fs.String("scale", "quick", "scale preset: quick|full")
		duration = fs.Duration("duration", 0, "override simulated measurement duration")
		seed     = fs.Int64("seed", 1, "random seed")
		loss     = fs.Float64("loss", 0, "override WAN random loss rate")

		probesCSV  = fs.String("probes-csv", "", "export mode: write probe records to this CSV and exit")
		cwndCSV    = fs.String("cwnd-csv", "", "export mode: write cwnd samples to this CSV and exit")
		exportRipt = fs.Bool("export-riptide", true, "export mode: run with Riptide enabled")
		hosts      = fs.Int("hosts", 1, "export mode: machines per PoP")
		sizesCSV   = fs.String("sizes-csv", "", "export mode: replace the synthetic organic size mix with sizes from this CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "full":
		s = experiments.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick|full)", *scale)
	}
	if *duration != 0 {
		s.Duration = *duration
	}
	if *loss != 0 {
		s.LossRate = *loss
	}
	s.Seed = *seed

	if *probesCSV != "" || *cwndCSV != "" {
		var sizes workload.Sampler
		if *sizesCSV != "" {
			f, err := os.Open(*sizesCSV)
			if err != nil {
				return err
			}
			sizes, err = workload.LoadSizesCSV(f)
			f.Close()
			if err != nil {
				return err
			}
		}
		return exportRun(s, *exportRipt, *hosts, *probesCSV, *cwndCSV, sizes)
	}

	runners := map[string]func() (experiments.Result, error){
		"table2": func() (experiments.Result, error) { return experiments.Table2Census(nil), nil },
		"fig10":  func() (experiments.Result, error) { return experiments.Fig10CwndByCmax(s) },
		"fig11":  func() (experiments.Result, error) { return experiments.Fig11TrafficProfiles(s) },
		"fig12":  func() (experiments.Result, error) { return experiments.ProbeCompletionFigure(12, s) },
		"fig13":  func() (experiments.Result, error) { return experiments.ProbeCompletionFigure(13, s) },
		"fig14":  func() (experiments.Result, error) { return experiments.ProbeCompletionFigure(14, s) },
		"fig15":  func() (experiments.Result, error) { return experiments.GainByPercentileFigure(15, s) },
		"fig16":  func() (experiments.Result, error) { return experiments.GainByPercentileFigure(16, s) },
		"edge":   func() (experiments.Result, error) { return experiments.EdgeCases(s) },
		"headline": func() (experiments.Result, error) {
			return experiments.Headline(s)
		},
		"ext-trend": func() (experiments.Result, error) {
			return experiments.ExtensionTrendReaction(*seed)
		},
		"ext-advisor": func() (experiments.Result, error) {
			return experiments.ExtensionAdvisorShift(*seed)
		},
	}
	for _, name := range experiments.ScenarioNames() {
		name := name
		runners["scenario-"+name] = func() (experiments.Result, error) {
			return experiments.ScenarioImpact(name, s)
		}
	}
	order := []string{"table2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "edge", "headline",
		"ext-trend", "ext-advisor", "scenario-flashcrowd", "scenario-degradation", "scenario-reboots"}

	selected := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			valid := make([]string, 0, len(runners)+1)
			for name := range runners {
				valid = append(valid, name)
			}
			valid = append(valid, "all")
			sort.Strings(valid)
			return fmt.Errorf("unknown experiment %q (valid: %s)", *exp, strings.Join(valid, " "))
		}
		selected = []string{*exp}
	}
	for _, name := range selected {
		start := time.Now()
		res, err := runners[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := experiments.Render(os.Stdout, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s finished in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// exportRun executes one cluster at the given scale and writes its raw
// measurement records as CSV for external analysis/plotting.
func exportRun(s experiments.Scale, riptideEnabled bool, hosts int, probesPath, cwndPath string, sizes workload.Sampler) error {
	cluster, err := cdn.NewCluster(cdn.Config{
		PoPs:        s.PoPs,
		HostsPerPoP: hosts,
		Seed:        s.Seed,
		LossRate:    s.LossRate,
		Riptide:     cdn.RiptideOptions{Enabled: riptideEnabled},
		Traffic: cdn.TrafficOptions{
			ProbeInterval: 4 * time.Minute,
			IdleTimeout:   90 * time.Second,
			OrganicSizes:  sizes,
		},
	})
	if err != nil {
		return err
	}
	cluster.Run(s.WarmUp)
	if cwndPath != "" {
		if err := cluster.StartCwndSampling(time.Minute); err != nil {
			return err
		}
	}
	cluster.Run(s.Duration)
	cluster.Stop()

	if probesPath != "" {
		f, err := os.Create(probesPath)
		if err != nil {
			return err
		}
		if err := trace.WriteProbes(f, cluster.ProbeRecords()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d probe records to %s\n", len(cluster.ProbeRecords()), probesPath)
	}
	if cwndPath != "" {
		f, err := os.Create(cwndPath)
		if err != nil {
			return err
		}
		if err := trace.WriteCwndSamples(f, cluster.CwndSamples()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d cwnd samples to %s\n", len(cluster.CwndSamples()), cwndPath)
	}
	return nil
}
