package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	if err := run([]string{"-exp", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunSingleFigureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	if err := run([]string{"-exp", "fig11", "-scale", "quick", "-duration", "10m"}); err != nil {
		t.Fatal(err)
	}
}

func TestExportMode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	dir := t.TempDir()
	probes := filepath.Join(dir, "probes.csv")
	cwnd := filepath.Join(dir, "cwnd.csv")
	err := run([]string{"-scale", "quick", "-duration", "6m",
		"-probes-csv", probes, "-cwnd-csv", cwnd})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{probes, cwnd} {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestExportWithSizesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	dir := t.TempDir()
	sizes := filepath.Join(dir, "sizes.csv")
	if err := os.WriteFile(sizes, []byte("size\n20480\n51200\n102400\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	probes := filepath.Join(dir, "probes.csv")
	err := run([]string{"-scale", "quick", "-duration", "6m",
		"-probes-csv", probes, "-sizes-csv", sizes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(probes); err != nil {
		t.Fatal(err)
	}
}

func TestExportWithBadSizesCSV(t *testing.T) {
	dir := t.TempDir()
	sizes := filepath.Join(dir, "sizes.csv")
	if err := os.WriteFile(sizes, []byte("garbage\nmore garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-probes-csv", filepath.Join(dir, "p.csv"), "-sizes-csv", sizes})
	if err == nil {
		t.Error("bad sizes csv accepted")
	}
}

func TestUnknownExperimentListsValidNames(t *testing.T) {
	err := run([]string{"-exp", "fig99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"valid:", "fig10", "headline", "scenario-flashcrowd", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestValidateSubcommand(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.yaml")
	if err := os.WriteFile(good, []byte("name: ok\nfleet:\n  pops: [lhr, fra]\nduration: 1m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", good}); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	bad := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: broken\nfleet:\n  pops: [lhr, atlantis]\nduration: 1m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"validate", bad})
	if err == nil {
		t.Fatal("malformed scenario accepted")
	}
	if !strings.Contains(err.Error(), "atlantis") {
		t.Errorf("error %q does not name the bad PoP", err)
	}

	misindented := filepath.Join(dir, "indent.yaml")
	if err := os.WriteFile(misindented, []byte("name: x\nfleet:\n  pops: [lhr, fra]\n bad: 1\nduration: 1m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"validate", misindented})
	if err == nil {
		t.Fatal("misindented scenario accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not carry the line number", err)
	}

	if err := run([]string{"validate"}); err == nil {
		t.Error("validate without a file accepted")
	}
}

func TestRunSubcommandExecutesScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "quick.yaml")
	src := `name: cli-quick
fleet:
  pops: [lhr, fra]
  seed: 2
  riptide:
    enabled: true
  traffic:
    probe_interval: 30s
    probe_sizes_kb: [50]
duration: 2m
assertions:
  - riptide.probes.total >= 1
  - riptide.routes.end > 0
`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", file}); err != nil {
		t.Fatal(err)
	}

	failing := filepath.Join(dir, "failing.yaml")
	if err := os.WriteFile(failing, []byte(strings.Replace(src,
		"riptide.routes.end > 0", "riptide.routes.end < 0", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", failing}); err == nil {
		t.Error("failed assertions did not fail the command")
	}
}
