package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTable2(t *testing.T) {
	if err := run([]string{"-exp", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunSingleFigureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	if err := run([]string{"-exp", "fig11", "-scale", "quick", "-duration", "10m"}); err != nil {
		t.Fatal(err)
	}
}

func TestExportMode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	dir := t.TempDir()
	probes := filepath.Join(dir, "probes.csv")
	cwnd := filepath.Join(dir, "cwnd.csv")
	err := run([]string{"-scale", "quick", "-duration", "6m",
		"-probes-csv", probes, "-cwnd-csv", cwnd})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{probes, cwnd} {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestExportWithSizesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	dir := t.TempDir()
	sizes := filepath.Join(dir, "sizes.csv")
	if err := os.WriteFile(sizes, []byte("size\n20480\n51200\n102400\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	probes := filepath.Join(dir, "probes.csv")
	err := run([]string{"-scale", "quick", "-duration", "6m",
		"-probes-csv", probes, "-sizes-csv", sizes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(probes); err != nil {
		t.Fatal(err)
	}
}

func TestExportWithBadSizesCSV(t *testing.T) {
	dir := t.TempDir()
	sizes := filepath.Join(dir, "sizes.csv")
	if err := os.WriteFile(sizes, []byte("garbage\nmore garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-probes-csv", filepath.Join(dir, "p.csv"), "-sizes-csv", sizes})
	if err == nil {
		t.Error("bad sizes csv accepted")
	}
}
