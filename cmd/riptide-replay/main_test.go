package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/trace"
	"riptide/internal/workload"
)

// writeFixtureCSVs builds probe and cwnd CSVs with a known structure.
func writeFixtureCSVs(t *testing.T) (probes, baseline, cwnd string) {
	t.Helper()
	dir := t.TempDir()
	rng := workload.NewRand(1)

	mkProbes := func(path string, scale time.Duration) string {
		var records []cdn.ProbeRecord
		for i := 0; i < 200; i++ {
			size := workload.ProbeSizes[i%3]
			rtt := time.Duration(20+rng.Intn(300)) * time.Millisecond
			records = append(records, cdn.ProbeRecord{
				Src: "lhr", Dst: "jfk", SizeBytes: size,
				RTT: rtt, Bucket: cdn.BucketFor(rtt),
				Elapsed: scale + rtt*time.Duration(2+i%3),
				Rounds:  2 + i%3, InitCwnd: 10, FreshConn: true,
				At: time.Duration(i) * time.Second,
			})
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteProbes(f, records); err != nil {
			t.Fatal(err)
		}
		return path
	}
	probes = mkProbes(filepath.Join(dir, "probes.csv"), 0)
	baseline = mkProbes(filepath.Join(dir, "baseline.csv"), 300*time.Millisecond)

	cwnd = filepath.Join(dir, "cwnd.csv")
	f, err := os.Create(cwnd)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var samples []cdn.CwndSample
	for i := 0; i < 100; i++ {
		samples = append(samples, cdn.CwndSample{
			Src: "lhr", Dst: "10.11.0.1", Cwnd: 10 + i%90,
			OpenedAfterStart: i%2 == 0, At: time.Duration(i) * time.Minute,
		})
	}
	if err := trace.WriteCwndSamples(f, samples); err != nil {
		t.Fatal(err)
	}
	return probes, baseline, cwnd
}

func TestReplayProbesAndCwnd(t *testing.T) {
	probes, baseline, cwnd := writeFixtureCSVs(t)
	var sb strings.Builder
	err := run(&sb, []string{"-probes", probes, "-baseline", baseline, "-cwnd", cwnd})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"200 probes", "size  10240B", "bucket", "comparison vs baseline", "KS D=", "p75 gain", "cwnd samples", "opened after measurement"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplayNoInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, nil); err == nil {
		t.Error("no inputs accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-probes", "/nonexistent.csv"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReplayBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
