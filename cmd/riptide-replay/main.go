// Command riptide-replay re-analyses measurement CSVs exported by
// riptide-sim without re-running any simulation: per-size and per-bucket
// completion summaries from a probe CSV, and window distributions from a
// cwnd CSV. It also compares two probe CSVs (control vs riptide) with a
// Kolmogorov–Smirnov test and percentile gains.
//
//	riptide-sim -scale full -export-riptide=false -probes-csv control.csv
//	riptide-sim -scale full -export-riptide=true  -probes-csv riptide.csv
//	riptide-replay -probes riptide.csv -baseline control.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"riptide/internal/cdn"
	"riptide/internal/stats"
	"riptide/internal/trace"
	"riptide/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("riptide-replay", flag.ContinueOnError)
	var (
		probesPath   = fs.String("probes", "", "probe CSV to analyse")
		baselinePath = fs.String("baseline", "", "control probe CSV to compare against")
		cwndPath     = fs.String("cwnd", "", "cwnd-sample CSV to analyse")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *probesPath == "" && *cwndPath == "" {
		return fmt.Errorf("nothing to do: pass -probes and/or -cwnd")
	}

	if *probesPath != "" {
		probes, err := loadProbes(*probesPath)
		if err != nil {
			return err
		}
		if err := summarizeProbes(w, *probesPath, probes); err != nil {
			return err
		}
		if *baselinePath != "" {
			baseline, err := loadProbes(*baselinePath)
			if err != nil {
				return err
			}
			if err := compareProbes(w, baseline, probes); err != nil {
				return err
			}
		}
	}
	if *cwndPath != "" {
		if err := summarizeCwnd(w, *cwndPath); err != nil {
			return err
		}
	}
	return nil
}

func loadProbes(path string) ([]cdn.ProbeRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := trace.ReadProbes(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%s: no probe records", path)
	}
	return records, nil
}

func summarizeProbes(w io.Writer, path string, probes []cdn.ProbeRecord) error {
	fmt.Fprintf(w, "== %s: %d probes ==\n", path, len(probes))

	bySize := map[int]*stats.CDF{}
	byBucket := map[cdn.RTTBucket]*stats.CDF{}
	for _, p := range probes {
		c, ok := bySize[p.SizeBytes]
		if !ok {
			c = stats.NewCDF(256)
			bySize[p.SizeBytes] = c
		}
		c.Add(float64(p.Elapsed.Milliseconds()))
		b, ok := byBucket[p.Bucket]
		if !ok {
			b = stats.NewCDF(256)
			byBucket[p.Bucket] = b
		}
		b.Add(float64(p.Elapsed.Milliseconds()))
	}

	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		sum, err := stats.Summarize(bySize[size])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  size %6dB: n=%-5d median=%.0fms p90=%.0fms max=%.0fms\n",
			size, sum.Count, sum.Median, sum.P90, sum.Max)
	}
	for _, bucket := range cdn.AllBuckets() {
		c, ok := byBucket[bucket]
		if !ok {
			continue
		}
		sum, err := stats.Summarize(c)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  bucket %-9s: n=%-5d median=%.0fms p90=%.0fms\n",
			bucket, sum.Count, sum.Median, sum.P90)
	}
	return nil
}

func compareProbes(w io.Writer, baseline, measured []cdn.ProbeRecord) error {
	fmt.Fprintln(w, "== comparison vs baseline ==")
	sizes := map[int]bool{}
	for _, p := range baseline {
		sizes[p.SizeBytes] = true
	}
	ordered := make([]int, 0, len(sizes))
	for s := range sizes {
		ordered = append(ordered, s)
	}
	sort.Ints(ordered)

	for _, size := range ordered {
		base, meas := stats.NewCDF(256), stats.NewCDF(256)
		for _, p := range baseline {
			if p.SizeBytes == size {
				base.Add(float64(p.Elapsed.Milliseconds()))
			}
		}
		for _, p := range measured {
			if p.SizeBytes == size {
				meas.Add(float64(p.Elapsed.Milliseconds()))
			}
		}
		if base.Len() == 0 || meas.Len() == 0 {
			continue
		}
		ks, err := stats.KolmogorovSmirnov(base, meas)
		if err != nil {
			return err
		}
		ci, err := stats.BootstrapGainCI(base, meas, 75, 500, workload.NewRand(1))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  size %6dB: KS D=%.3f p=%.3g; p75 gain %.1f%% (95%% CI %.1f%%..%.1f%%)\n",
			size, ks.Statistic, ks.PValue, 100*ci.Gain, 100*ci.Lo, 100*ci.Hi)
	}
	return nil
}

func summarizeCwnd(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := trace.ReadCwndSamples(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(samples) == 0 {
		return fmt.Errorf("%s: no cwnd samples", path)
	}
	all := stats.NewCDF(len(samples))
	fresh := stats.NewCDF(len(samples))
	for _, s := range samples {
		all.Add(float64(s.Cwnd))
		if s.OpenedAfterStart {
			fresh.Add(float64(s.Cwnd))
		}
	}
	fmt.Fprintf(w, "== %s: %d cwnd samples ==\n", path, len(samples))
	sum, err := stats.Summarize(all)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  all connections:          median=%.0f p90=%.0f max=%.0f\n", sum.Median, sum.P90, sum.Max)
	if fresh.Len() > 0 {
		fs, err := stats.Summarize(fresh)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  opened after measurement: median=%.0f p90=%.0f max=%.0f (paper's population)\n",
			fs.Median, fs.P90, fs.Max)
	}
	return nil
}
