package main

import "testing"

func TestRunAllFigures(t *testing.T) {
	if err := run([]string{"-fig", "all", "-n", "5000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	for _, fig := range []string{"2", "3", "4", "5", "6"} {
		if err := run([]string{"-fig", fig, "-n", "2000"}); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
