// Command riptide-model regenerates the paper's analytical figures
// (Figures 2–6) from the closed-form transfer model and the calibrated
// workload distributions. These are the motivation-section artefacts that
// need no cluster simulation.
//
//	riptide-model -fig all
//	riptide-model -fig 3 -n 500000 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"riptide/internal/experiments"
	"riptide/internal/model"
	"riptide/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("riptide-model", flag.ContinueOnError)
	var (
		fig  = fs.String("fig", "all", "figure to regenerate: 2|3|4|5|6|all")
		n    = fs.Int("n", 200000, "file-size samples for figures 2 and 3")
		seed = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() (experiments.Result, error){
		"1": func() (experiments.Result, error) { return fig1() },
		"2": func() (experiments.Result, error) { return experiments.Fig2FileSizes(*seed, *n) },
		"3": func() (experiments.Result, error) { return experiments.Fig3RTTsCDF(*seed, *n) },
		"4": experiments.Fig4TheoreticalGain,
		"5": func() (experiments.Result, error) { return experiments.Fig5RTTDistribution(nil) },
		"6": func() (experiments.Result, error) { return experiments.Fig6TransferTime(nil) },
	}
	order := []string{"1", "2", "3", "4", "5", "6"}

	selected := order
	if *fig != "all" {
		if _, ok := runners[*fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 1..6 or all)", *fig)
		}
		selected = []string{*fig}
	}
	for _, f := range selected {
		res, err := runners[f]()
		if err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
		if err := experiments.Render(os.Stdout, res); err != nil {
			return err
		}
	}
	return nil
}

// fig1 renders the paper's Figure 1 illustration: a file one segment larger
// than the initial window needs a whole extra round trip.
func fig1() (experiments.Result, error) {
	const fileBytes = 11 * workload.DefaultMSS // one segment over IW10
	timeline, err := model.RenderTimeline(fileBytes, 125*time.Millisecond, workload.DefaultMSS, 10, 11)
	if err != nil {
		return experiments.Result{}, err
	}
	return experiments.Result{
		ID:    "fig1",
		Title: "A file larger than the initial congestion window needs an extra RTT",
		Notes: []string{timeline},
	}, nil
}
