// Package riptide is the public API of the Riptide reproduction: a
// user-space agent that learns per-destination congestion state from live
// TCP connections and jump-starts new connections by programming their
// initial congestion window (initcwnd), after "Riptide: Jump-Starting
// Back-Office Connections in Cloud Systems" (ICDCS 2016).
//
// # Quick start
//
//	agent, err := riptide.NewLinuxAgent(riptide.LinuxOptions{
//		Device:  "eth0",
//		Gateway: "10.0.0.1",
//	})
//	if err != nil { ... }
//	defer agent.Close()
//	err = riptide.Run(ctx, agent) // polls every i_u until ctx is done
//
// Custom backends plug in through the ConnectionSampler and RouteProgrammer
// interfaces; the simulated CDN used by the evaluation harness implements
// the same pair against an in-memory kernel.
package riptide

import (
	"context"
	"time"

	"riptide/internal/core"
	"riptide/internal/linux"
)

// Re-exported core types: the agent's full configuration surface.
type (
	// Agent runs the Riptide algorithm; see core.Agent.
	Agent = core.Agent
	// Config configures an Agent.
	Config = core.Config
	// Observation is one sampled connection (dst, cwnd, rtt, bytes).
	Observation = core.Observation
	// ConnectionSampler supplies the observed table (the `ss` step).
	ConnectionSampler = core.ConnectionSampler
	// RouteProgrammer applies initcwnd overrides (the `ip route` step).
	RouteProgrammer = core.RouteProgrammer
	// BatchRouteProgrammer is the optional batched route-programming
	// extension (one `ip -batch` exec per tick).
	BatchRouteProgrammer = core.BatchRouteProgrammer
	// RouteOp is one element of a batched route-programming request.
	RouteOp = core.RouteOp
	// Combiner reduces a destination's observations to one value.
	Combiner = core.Combiner
	// HistoryPolicy smooths combined values across rounds.
	HistoryPolicy = core.HistoryPolicy
	// Entry is a learned destination snapshot.
	Entry = core.Entry
	// Stats counts agent activity.
	Stats = core.Stats

	// AverageCombiner is the paper's default combiner.
	AverageCombiner = core.AverageCombiner
	// MaxCombiner is the aggressive maximum-window combiner.
	MaxCombiner = core.MaxCombiner
	// TrafficWeightedCombiner weights windows by bytes carried.
	TrafficWeightedCombiner = core.TrafficWeightedCombiner
	// NoHistory reacts instantly to each round.
	NoHistory = core.NoHistory

	// Advisor damps programmed windows with system-level knowledge
	// (paper Section V).
	Advisor = core.Advisor
	// LoadBalanceAdvisor damps windows ahead of traffic shifts.
	LoadBalanceAdvisor = core.LoadBalanceAdvisor
	// TrendHistory snaps the learned window down on observed collapses.
	TrendHistory = core.TrendHistory

	// RetryingRouteProgrammer decorates a RouteProgrammer with bounded
	// exponential backoff and a per-destination failure budget that falls
	// back to clearing the route (the paper's conservative default).
	RetryingRouteProgrammer = core.RetryingRouteProgrammer
	// RetryPolicy configures a RetryingRouteProgrammer.
	RetryPolicy = core.RetryPolicy
	// RetryStats counts retry-decorator activity.
	RetryStats = core.RetryStats

	// Governor is the closed-loop safety hook consulted per planned route
	// program; internal/guard provides the loss-feedback implementation
	// (Config.Guard accepts any Governor).
	Governor = core.Governor
	// GuardAction is a Governor verdict: allow, cap, veto, or quarantine.
	GuardAction = core.GuardAction
	// Quarantine is one destination a Governor is holding out of service.
	Quarantine = core.Quarantine
)

// Paper-default parameters (Sections III-B, IV-A).
const (
	// DefaultUpdateInterval is i_u.
	DefaultUpdateInterval = core.DefaultUpdateInterval
	// DefaultTTL is t, the learned-entry lifetime.
	DefaultTTL = core.DefaultTTL
	// DefaultAlpha is the EWMA history weight.
	DefaultAlpha = core.DefaultAlpha
	// DefaultCMax is the best-performing window cap (Figure 10).
	DefaultCMax = core.DefaultCMax
	// DefaultCMin is the window floor (the kernel default of 10).
	DefaultCMin = core.DefaultCMin
)

// ErrClosed is returned by Tick after Close.
var ErrClosed = core.ErrClosed

// ErrFallbackCleared is returned (wrapped) by RetryingRouteProgrammer when a
// destination exhausted its failure budget and the decorator successfully
// fell back to clearing the route; the agent drops the entry in response.
var ErrFallbackCleared = core.ErrFallbackCleared

// NewRetryingRouteProgrammer wraps inner with retry/backoff/fallback
// behaviour per policy. Zero-value policy fields take the DefaultRetry*
// constants in internal/core.
func NewRetryingRouteProgrammer(inner RouteProgrammer, policy RetryPolicy) (*RetryingRouteProgrammer, error) {
	return core.NewRetryingRouteProgrammer(inner, policy)
}

// New constructs an Agent from an explicit Config. Most callers want
// NewLinuxAgent (production) or the internal simulation harness (research).
func New(cfg Config) (*Agent, error) {
	return core.New(cfg)
}

// NewEWMAHistory returns the paper's exponentially weighted history policy
// with the given weight on the historical value.
func NewEWMAHistory(alpha float64) (HistoryPolicy, error) {
	return core.NewEWMAHistory(alpha)
}

// NewWindowedHistory returns a mean-of-last-n history policy.
func NewWindowedHistory(n int) (HistoryPolicy, error) {
	return core.NewWindowedHistory(n)
}

// NewLoadBalanceAdvisor returns an Advisor that damps windows for
// destinations about to absorb shifted load (paper Section V).
func NewLoadBalanceAdvisor() *LoadBalanceAdvisor {
	return core.NewLoadBalanceAdvisor()
}

// NewTrendHistory returns the Section V trend policy: EWMA smoothing that
// snaps down immediately when observations collapse below collapseFraction
// of the running average.
func NewTrendHistory(alpha, collapseFraction float64) (*TrendHistory, error) {
	return core.NewTrendHistory(alpha, collapseFraction)
}

// LinuxOptions configures a production agent backed by ss(8) and ip(8).
type LinuxOptions struct {
	// Device is the outgoing interface for programmed routes ("eth0").
	Device string
	// Gateway is the next hop for programmed routes ("10.0.0.1"); the
	// installed routes must otherwise mirror the default route.
	Gateway string
	// SetInitRwnd also raises initrwnd on programmed routes so receivers
	// accept the initial burst (paper Section III-C).
	SetInitRwnd bool
	// CommandTimeout bounds each ss/ip invocation (default 5s).
	CommandTimeout time.Duration

	// UpdateInterval, TTL, Alpha, CMax, CMin, PrefixBits, and Shards
	// override the paper defaults when non-zero.
	UpdateInterval time.Duration
	TTL            time.Duration
	Alpha          float64
	CMax, CMin     int
	PrefixBits     int
	Shards         int
}

// NewLinuxAgent builds an Agent wired to the local machine's ss and ip
// utilities — the deployment described in the paper. It requires the
// CAP_NET_ADMIN capability (or root) at Tick time, not at construction.
func NewLinuxAgent(opts LinuxOptions) (*Agent, error) {
	runner := linux.ExecRunner{Timeout: opts.CommandTimeout}
	sampler, err := linux.NewSampler(runner)
	if err != nil {
		return nil, err
	}
	routes, err := linux.NewRoutes(runner, linux.RoutesConfig{
		Device:      opts.Device,
		Gateway:     opts.Gateway,
		SetInitRwnd: opts.SetInitRwnd,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	return core.New(core.Config{
		Sampler:        sampler,
		Routes:         routes,
		Clock:          func() time.Duration { return time.Since(start) },
		UpdateInterval: opts.UpdateInterval,
		TTL:            opts.TTL,
		Alpha:          opts.Alpha,
		CMax:           opts.CMax,
		CMin:           opts.CMin,
		PrefixBits:     opts.PrefixBits,
		Shards:         opts.Shards,
	})
}

// Run drives the agent's poll loop every UpdateInterval until ctx is done,
// then withdraws all programmed routes. Per-tick errors are delivered to
// onError when provided (a failing tick does not stop the loop); the final
// Close error, if any, is returned.
func Run(ctx context.Context, agent *Agent, onError ...func(error)) error {
	ticker := time.NewTicker(agent.Config().UpdateInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return agent.Close()
		case <-ticker.C:
			if err := agent.Tick(); err != nil {
				if err == ErrClosed {
					return nil
				}
				for _, f := range onError {
					f(err)
				}
			}
		}
	}
}
