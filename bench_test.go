// Benchmark harness: one testing.B per table and figure in the paper's
// evaluation, plus the design-choice ablations from DESIGN.md. Each
// benchmark regenerates its artefact end to end and reports the headline
// metric the paper reads off it via b.ReportMetric, so `go test -bench=.`
// doubles as the reproduction report.
//
// Set RIPTIDE_BENCH_SCALE=full to run the full 34-PoP topology at the
// DefaultScale measurement length; the default quick scale keeps the whole
// suite in the low tens of seconds.
package riptide

import (
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"riptide/internal/experiments"
	"riptide/internal/kernel"
)

func benchScale() experiments.Scale {
	if os.Getenv("RIPTIDE_BENCH_SCALE") == "full" {
		return experiments.DefaultScale()
	}
	return experiments.QuickScale()
}

// noteMetric extracts the first number following a marker substring in a
// note, so benchmarks can re-report the experiment's headline figure.
func noteMetric(notes []string, marker string) (float64, bool) {
	for _, n := range notes {
		idx := strings.Index(n, marker)
		if idx < 0 {
			continue
		}
		rest := n[idx+len(marker):]
		var num strings.Builder
		for _, r := range rest {
			if (r >= '0' && r <= '9') || r == '.' || r == '-' || r == '+' {
				num.WriteRune(r)
				continue
			}
			if num.Len() > 0 {
				break
			}
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(num.String(), "+"), 64)
		if err == nil {
			return v, true
		}
	}
	return 0, false
}

func BenchmarkFig2FileSizeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2FileSizes(1, 100000)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, ""); ok && i == b.N-1 {
			b.ReportMetric(v, "%files>IW10")
		}
	}
}

func BenchmarkFig3RTTsCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3RTTsCDF(1, 100000)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, "IW50 completes "); ok && i == b.N-1 {
			b.ReportMetric(v, "%more-1RTT@IW50")
		}
	}
}

func BenchmarkFig4TheoreticalGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4TheoreticalGain(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5RTTDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5RTTDistribution(nil)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, "median inter-PoP RTT "); ok && i == b.N-1 {
			b.ReportMetric(v, "median-rtt-ms")
		}
	}
}

func BenchmarkFig6TransferTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6TransferTime(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2PoPCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2Census(nil)
		if len(r.Tables) != 1 {
			b.Fatal("census produced no table")
		}
	}
}

func BenchmarkFig10CwndByCmax(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10CwndByCmax(s)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, "c_max=100 "); ok && i == b.N-1 {
			b.ReportMetric(v, "median-cwnd@cmax100")
		}
	}
}

func BenchmarkFig11TrafficProfile(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11TrafficProfiles(s); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkProbeCompletion(b *testing.B, fig int) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ProbeCompletionFigure(fig, s)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, "buckets improved"); ok {
			_ = v // presence-checked; per-bucket gains are in the notes
		}
		if i == b.N-1 {
			improved, total := bucketsImproved(r.Notes)
			if total > 0 {
				b.ReportMetric(float64(improved), "buckets-improved")
			}
		}
	}
}

func bucketsImproved(notes []string) (improved, total int) {
	for _, n := range notes {
		var i, t int
		if _, err := fmt.Sscanf(n, "%d/%d RTT buckets improved", &i, &t); err == nil {
			return i, t
		}
	}
	return 0, 0
}

func BenchmarkFig12Probe10K(b *testing.B)  { benchmarkProbeCompletion(b, 12) }
func BenchmarkFig13Probe50K(b *testing.B)  { benchmarkProbeCompletion(b, 13) }
func BenchmarkFig14Probe100K(b *testing.B) { benchmarkProbeCompletion(b, 14) }

func benchmarkGainByPercentile(b *testing.B, fig int) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.GainByPercentileFigure(fig, s)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, "peak percentile gain "); ok && i == b.N-1 {
			b.ReportMetric(v, "%peak-gain")
		}
	}
}

func BenchmarkFig15GainByPercentile50K(b *testing.B)  { benchmarkGainByPercentile(b, 15) }
func BenchmarkFig16GainByPercentile100K(b *testing.B) { benchmarkGainByPercentile(b, 16) }

func BenchmarkEdgeCases(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EdgeCases(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadlineCwndIncrease(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(s)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := noteMetric(r.Notes, "riptide "); ok && i == b.N-1 {
			b.ReportMetric(v, "median-cwnd-riptide")
		}
	}
}

func BenchmarkAblationCombiners(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCombiners(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHistory(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHistory(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGranularity(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGranularity(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTTL(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTTL(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUpdateInterval(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationUpdateInterval(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAgentTick measures the cost of one Riptide poll round over a
// synthetic 1000-connection observed table — the agent's steady-state
// overhead on a busy production host. Kept at its historical shape
// (default shard count, per-op route programming) so the series stays
// comparable across PRs.
func BenchmarkAgentTick(b *testing.B) {
	const conns = 1000
	sampler, routes, clock := newSyntheticBackend(conns, false)
	agent, err := New(Config{Sampler: sampler, Routes: routes, Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agent.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(conns), "conns/tick")
}

// benchmarkAgentTickSeries is the hot-path scaling series: serial (one
// shard) versus sharded planning, crossed with the tick's processing
// modes — full rescan (every state replanned each round), delta steady
// state (identical observation stream), and delta with ~1% window churn —
// all over the batched route-programming surface at a fixed observed-table
// size.
func benchmarkAgentTickSeries(b *testing.B, conns int) {
	for _, sv := range []struct {
		name   string
		shards int
	}{
		{"serial", 1},
		{"sharded", 8},
	} {
		for _, mode := range []struct {
			name       string
			fullRescan bool
			churnFrac  int
		}{
			{"full", true, 0},
			{"delta-steady", false, 0},
			{"delta-churn1pct", false, 100},
		} {
			b.Run(sv.name+"/"+mode.name, func(b *testing.B) {
				sampler, routes, clock := newModeBackend(conns, mode.churnFrac)
				agent, err := New(Config{
					Sampler:    sampler,
					Routes:     routes,
					Clock:      clock,
					Shards:     sv.shards,
					FullRescan: mode.fullRescan,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer func() { _ = agent.Close() }()
				// One warmup tick so pools and learned entries reach
				// steady state before timing.
				if err := agent.Tick(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := agent.Tick(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAgentTick1k(b *testing.B)   { benchmarkAgentTickSeries(b, 1_000) }
func BenchmarkAgentTick10k(b *testing.B)  { benchmarkAgentTickSeries(b, 10_000) }
func BenchmarkAgentTick100k(b *testing.B) { benchmarkAgentTickSeries(b, 100_000) }

// BenchmarkAgentTick1M is the acceptance point for the delta tick: a
// million-destination table at steady state and under churn. The full
// rescan points at this size take hundreds of milliseconds each, so the
// whole series sits behind -short.
func BenchmarkAgentTick1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-destination series skipped in -short mode")
	}
	benchmarkAgentTickSeries(b, 1_000_000)
}

// TestShardedTickNotSlowerThanSerial is the bench-smoke gate for the
// parallel plan stage: with real cores available, sharding the full-rescan
// plan work across 8 shards must not lose to a single shard. On fewer than
// 4 cores the comparison measures lock traffic, not parallelism, so the
// test skips — exactly the configuration the perf harness now refuses to
// label "parallel".
func TestShardedTickNotSlowerThanSerial(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: parallel plan stage needs >=4 cores to beat serial", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("bench smoke skipped in -short mode")
	}
	const conns = 100_000
	tick := func(shards int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			sampler, routes, clock := newModeBackend(conns, 0)
			agent, err := New(Config{
				Sampler:    sampler,
				Routes:     routes,
				Clock:      clock,
				Shards:     shards,
				FullRescan: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = agent.Close() }()
			if err := agent.Tick(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := agent.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	serial := tick(1)
	sharded := tick(8)
	if sharded.NsPerOp() > serial.NsPerOp() {
		t.Errorf("shards=8 tick %v slower than shards=1 %v at GOMAXPROCS=%d",
			time.Duration(sharded.NsPerOp()), time.Duration(serial.NsPerOp()), runtime.GOMAXPROCS(0))
	}
}

// BenchmarkBatchProgram compares per-op route installation against the
// batched ApplyRoutes path on the simulated kernel — the cost model behind
// the agent's BatchRouteProgrammer fast path.
func BenchmarkBatchProgram(b *testing.B) {
	const ops = 1024
	host, err := kernel.NewHost(netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		b.Fatal(err)
	}
	routes := make([]kernel.Route, ops)
	updates := make([]kernel.RouteUpdate, ops)
	for i := range routes {
		routes[i] = kernel.Route{
			Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24),
			InitCwnd: 10 + i%90,
			Proto:    "static",
		}
		updates[i] = kernel.RouteUpdate{Route: routes[i]}
	}
	b.Run("individual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range routes {
				if err := host.AddRoute(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if errs := host.ApplyRoutes(updates); errs != nil {
				b.Fatal(errs)
			}
		}
	})
}

func BenchmarkExtensionTrendReaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionTrendReaction(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionAdvisorShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionAdvisorShift(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkScenario(b *testing.B, name string) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScenarioImpact(name, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioFlashCrowd(b *testing.B)  { benchmarkScenario(b, "flashcrowd") }
func BenchmarkScenarioDegradation(b *testing.B) { benchmarkScenario(b, "degradation") }
func BenchmarkScenarioReboots(b *testing.B)     { benchmarkScenario(b, "reboots") }
