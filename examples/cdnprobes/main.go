// cdnprobes reproduces the paper's core experiment in miniature: a handful
// of globally distributed PoPs exchange 10/50/100 KB diagnostic probes, once
// with Riptide agents on every host and once without, and the example prints
// the per-size median completion times side by side — the data behind
// Figures 12–14.
//
//	go run ./examples/cdnprobes
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// topology picks five well-spread PoPs from the paper's 34-site deployment.
func topology() []cdn.PoP {
	pick := map[string]bool{"lhr": true, "jfk": true, "gru": true, "sin": true, "syd": true}
	var out []cdn.PoP
	for _, p := range cdn.DefaultTopology() {
		if pick[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

// measure runs one cluster for 12 simulated minutes and returns the median
// probe completion time per probe size, skipping a 2-minute warm-up.
func measure(riptideEnabled bool) (map[int]float64, error) {
	cluster, err := cdn.NewCluster(cdn.Config{
		PoPs:     topology(),
		Seed:     7,
		LossRate: 0.002,
		Riptide:  cdn.RiptideOptions{Enabled: riptideEnabled},
		Traffic: cdn.TrafficOptions{
			ProbeInterval: 30 * time.Second,
			OrganicRates:  map[string]float64{"lhr": 2, "jfk": 2},
		},
	})
	if err != nil {
		return nil, err
	}
	cluster.Run(12 * time.Minute)
	cluster.Stop()

	bySize := map[int]*stats.CDF{}
	for _, p := range cluster.ProbeRecords() {
		if p.At < 2*time.Minute {
			continue
		}
		c, ok := bySize[p.SizeBytes]
		if !ok {
			c = stats.NewCDF(256)
			bySize[p.SizeBytes] = c
		}
		c.Add(float64(p.Elapsed.Milliseconds()))
	}
	medians := map[int]float64{}
	for size, c := range bySize {
		m, err := c.Median()
		if err != nil {
			return nil, err
		}
		medians[size] = m
	}
	return medians, nil
}

func run() error {
	fmt.Println("simulating control cluster (default initcwnd 10)...")
	control, err := measure(false)
	if err != nil {
		return err
	}
	fmt.Println("simulating riptide cluster (learned initcwnd, c_max 100)...")
	riptide, err := measure(true)
	if err != nil {
		return err
	}

	sizes := make([]int, 0, len(control))
	for s := range control {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	fmt.Printf("\n%-10s %-16s %-16s %s\n", "probe", "default median", "riptide median", "change")
	for _, size := range sizes {
		c, r := control[size], riptide[size]
		change := "~"
		if c > 0 {
			change = fmt.Sprintf("%+.1f%%", 100*(r-c)/c)
		}
		fmt.Printf("%-10s %-16s %-16s %s\n",
			fmt.Sprintf("%dKB", size/1024),
			fmt.Sprintf("%.0f ms", c),
			fmt.Sprintf("%.0f ms", r),
			change)
	}
	fmt.Println("\nexpected shape (paper Figures 12-14): 10KB unchanged; 50KB and")
	fmt.Println("100KB probes complete whole round trips sooner under Riptide.")
	return nil
}
