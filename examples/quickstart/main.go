// Quickstart: wire a Riptide agent to in-memory backends and watch it turn
// live congestion-window observations into per-destination initial-window
// routes — the whole Algorithm 1 loop in fifty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"riptide"
)

// tableSampler plays back rounds of observations, standing in for `ss -tin`
// on a busy host.
type tableSampler struct {
	rounds [][]riptide.Observation
	i      int
}

func (t *tableSampler) SampleConnections(buf []riptide.Observation) ([]riptide.Observation, error) {
	idx := t.i
	if idx >= len(t.rounds) {
		idx = len(t.rounds) - 1
	}
	t.i++
	return append(buf, t.rounds[idx]...), nil
}

// printRoutes logs what would be `ip route replace/del` on a real machine.
type printRoutes struct{}

func (printRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	fmt.Printf("  ip route replace %-18s proto static initcwnd %d\n", p, cwnd)
	return nil
}

func (printRoutes) ClearInitCwnd(p netip.Prefix) error {
	fmt.Printf("  ip route del     %-18s proto static\n", p)
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	peerA := netip.MustParseAddr("10.0.0.127") // paper's Figure 7/8 example host
	peerB := netip.MustParseAddr("192.0.2.10")

	sampler := &tableSampler{rounds: [][]riptide.Observation{
		// Round 1: two healthy connections to peerA average to 80.
		{{Dst: peerA, Cwnd: 60}, {Dst: peerA, Cwnd: 100}, {Dst: peerB, Cwnd: 30}},
		// Round 2: peerA's windows sag; the EWMA damps the drop.
		{{Dst: peerA, Cwnd: 40}, {Dst: peerB, Cwnd: 34}},
		// Round 3 onward: all connections to both peers have closed.
		{},
	}}

	var clock time.Duration
	agent, err := riptide.New(riptide.Config{
		Sampler: sampler,
		Routes:  printRoutes{},
		Clock:   func() time.Duration { return clock },
		TTL:     90 * time.Second, // paper default: forget after 90s silence
	})
	if err != nil {
		return err
	}
	defer agent.Close()

	for round := 1; round <= 4; round++ {
		fmt.Printf("tick %d (t=%v):\n", round, clock)
		if err := agent.Tick(); err != nil {
			return err
		}
		for _, e := range agent.Entries() {
			fmt.Printf("  learned %-18s -> initcwnd %d (from %d observations)\n",
				e.Prefix, e.Window, e.Observations)
		}
		// Jump the clock so the final tick is past the TTL and the
		// agent reverts both destinations to the kernel default.
		clock += 60 * time.Second
	}

	stats := agent.Stats()
	fmt.Printf("done: %d ticks, %d observations, %d routes set, %d expired\n",
		stats.Ticks, stats.Observations, stats.RoutesSet, stats.EntriesExpired)
	return nil
}
