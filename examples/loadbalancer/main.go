// loadbalancer demonstrates the paper's Section V extension: a cloud
// orchestrator about to shift traffic onto a destination warns Riptide
// through the LoadBalanceAdvisor, which damps the programmed initial window
// so the arriving herd of new connections does not crowd the path; once the
// shift settles, the damping lifts and the window glides back up.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"riptide"
)

// steadySampler reports a constant healthy observation set, like `ss` on a
// host with stable long-haul connections.
type steadySampler struct{ dst netip.Addr }

func (s steadySampler) SampleConnections(buf []riptide.Observation) ([]riptide.Observation, error) {
	return append(buf,
		riptide.Observation{Dst: s.dst, Cwnd: 96, RTT: 120 * time.Millisecond, BytesAcked: 4 << 20},
		riptide.Observation{Dst: s.dst, Cwnd: 104, RTT: 120 * time.Millisecond, BytesAcked: 9 << 20},
	), nil
}

// printRoutes logs the window each tick would program.
type printRoutes struct{ last *int }

func (p printRoutes) SetInitCwnd(_ netip.Prefix, cwnd int) error {
	*p.last = cwnd
	return nil
}

func (p printRoutes) ClearInitCwnd(netip.Prefix) error {
	*p.last = 0
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dst := netip.MustParseAddr("10.42.0.7")
	dstPrefix := netip.PrefixFrom(dst, 32)

	advisor := riptide.NewLoadBalanceAdvisor()
	var programmed int
	var clock time.Duration
	agent, err := riptide.New(riptide.Config{
		Sampler: steadySampler{dst: dst},
		Routes:  printRoutes{last: &programmed},
		Clock:   func() time.Duration { return clock },
		Advisor: advisor,
		Alpha:   0.5, // lighter history so the demo converges quickly
	})
	if err != nil {
		return err
	}
	defer agent.Close()

	tick := func(label string) error {
		if err := agent.Tick(); err != nil {
			return err
		}
		fmt.Printf("t=%-4v %-28s programmed initcwnd=%d\n", clock, label, programmed)
		clock += time.Second
		return nil
	}

	for i := 0; i < 3; i++ {
		if err := tick("steady state"); err != nil {
			return err
		}
	}

	// The orchestrator announces: this destination is about to take over
	// a drained neighbour's traffic. Damp to a quarter.
	if err := advisor.ExpectShift(dstPrefix, 0.25); err != nil {
		return err
	}
	fmt.Println("--- load balancer: shift incoming, damping windows ---")
	for i := 0; i < 4; i++ {
		if err := tick("shift in progress (x0.25)"); err != nil {
			return err
		}
	}

	advisor.ShiftComplete(dstPrefix)
	fmt.Println("--- shift complete, damping lifted ---")
	for i := 0; i < 6; i++ {
		if err := tick("recovering"); err != nil {
			return err
		}
	}
	return nil
}
