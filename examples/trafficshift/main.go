// trafficshift demonstrates Riptide's adaptability design objective
// (Section III-A): when a path degrades mid-run, the learned initial window
// shrinks with the observed congestion windows instead of staying
// dangerously aggressive — and it recovers once the path heals.
//
// Two hosts exchange a steady stream of 200 KB transfers. At t=4m the WAN
// path suffers a 6% loss episode (a congestion event or re-routing); at
// t=8m it heals. The example prints the window Riptide programs each
// 30 seconds, tracking the path's health down and back up.
//
//	go run ./examples/trafficshift
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"riptide/internal/core"
	"riptide/internal/eventsim"
	"riptide/internal/kernel"
	"riptide/internal/netsim"
)

var (
	sender   = netip.MustParseAddr("10.1.0.1")
	receiver = netip.MustParseAddr("10.2.0.1")
)

// kernelSampler adapts the simulated kernel to the agent, like the CDN
// harness does.
type kernelSampler struct{ host *kernel.Host }

func (s kernelSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	for _, c := range s.host.Connections() {
		buf = append(buf, core.Observation{Dst: c.Dst, Cwnd: c.Cwnd, RTT: c.RTT, BytesAcked: c.BytesAcked})
	}
	return buf, nil
}

type kernelRoutes struct{ host *kernel.Host }

func (r kernelRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	return r.host.AddRoute(kernel.Route{Prefix: p, InitCwnd: cwnd, Proto: "static"})
}

func (r kernelRoutes) ClearInitCwnd(p netip.Prefix) error {
	r.host.DelRoute(p)
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	engine := eventsim.NewEngine()
	net, err := netsim.NewNetwork(netsim.Config{Engine: engine, Seed: 11})
	if err != nil {
		return err
	}
	for _, a := range []netip.Addr{sender, receiver} {
		if _, err := net.AddHost(a); err != nil {
			return err
		}
	}
	if err := net.SetBidiPath(sender, receiver, netsim.PathConfig{
		RTT:      90 * time.Millisecond,
		LossRate: 0.001,
	}); err != nil {
		return err
	}
	host, err := net.Host(sender)
	if err != nil {
		return err
	}

	agent, err := core.New(core.Config{
		Sampler: kernelSampler{host: host},
		Routes:  kernelRoutes{host: host},
		Clock:   engine.Now,
		CMax:    100,
	})
	if err != nil {
		return err
	}
	defer agent.Close()

	// Drive the agent every second, like riptided's i_u loop.
	agentTicker, err := eventsim.NewTicker(engine, time.Second, func(time.Duration) { _ = agent.Tick() })
	if err != nil {
		return err
	}
	defer agentTicker.Stop()

	// Steady application traffic. Long-lived worker connections send
	// 200KB objects back to back with a short think time, so the agent's
	// 1 s samples always catch live windows — windows that grow on the
	// healthy path and collapse during the loss episode.
	var pump func(conn *netsim.Conn)
	pump = func(conn *netsim.Conn) {
		err := conn.Transfer(200*1024, func(netsim.TransferResult) {
			engine.MustSchedule(500*time.Millisecond, func() { pump(conn) })
		})
		if err != nil {
			conn.Close()
		}
	}
	for i := 0; i < 3; i++ {
		conn, err := net.Open(sender, receiver)
		if err != nil {
			return err
		}
		pump(conn)
	}

	// Plus churn: a fresh short-lived connection every 2 seconds, the
	// population whose initial window Riptide actually jump-starts.
	traffic, err := eventsim.NewTicker(engine, 2*time.Second, func(time.Duration) {
		conn, err := net.Open(sender, receiver)
		if err != nil {
			return
		}
		_ = conn.Transfer(200*1024, func(netsim.TransferResult) { conn.Close() })
	})
	if err != nil {
		return err
	}
	defer traffic.Stop()

	// Report the learned window every 30 simulated seconds.
	report, err := eventsim.NewTicker(engine, 30*time.Second, func(now time.Duration) {
		w, ok := agent.Lookup(receiver)
		phase := "healthy"
		switch {
		case now > 4*time.Minute && now <= 8*time.Minute:
			phase = "DEGRADED (6% loss)"
		case now > 8*time.Minute:
			phase = "healed"
		}
		if ok {
			fmt.Printf("t=%-6v path=%-18s learned initcwnd=%d\n", now, phase, w)
		} else {
			fmt.Printf("t=%-6v path=%-18s no entry (kernel default 10)\n", now, phase)
		}
	})
	if err != nil {
		return err
	}
	defer report.Stop()

	// The degradation episode.
	engine.MustSchedule(4*time.Minute, func() {
		_ = net.SetPathLoss(sender, receiver, 0.06)
		_ = net.SetPathLoss(receiver, sender, 0.06)
		fmt.Println("--- path degraded: 6% segment loss ---")
	})
	engine.MustSchedule(8*time.Minute, func() {
		_ = net.SetPathLoss(sender, receiver, 0.001)
		_ = net.SetPathLoss(receiver, sender, 0.001)
		fmt.Println("--- path healed ---")
	})

	engine.RunUntil(12 * time.Minute)

	fmt.Println("\nRiptide tracked the path down during the loss episode and back up")
	fmt.Println("afterwards — adaptability without touching the congestion controller.")
	return nil
}
