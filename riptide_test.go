package riptide

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// memSampler and memRoutes are minimal in-memory backends for facade tests.
type memSampler struct {
	mu  sync.Mutex
	obs []Observation
}

func (m *memSampler) SampleConnections(buf []Observation) ([]Observation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append(buf, m.obs...), nil
}

type memRoutes struct {
	mu  sync.Mutex
	set map[netip.Prefix]int
}

func (m *memRoutes) SetInitCwnd(p netip.Prefix, c int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.set == nil {
		m.set = make(map[netip.Prefix]int)
	}
	m.set[p] = c
	return nil
}

func (m *memRoutes) ClearInitCwnd(p netip.Prefix) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.set, p)
	return nil
}

func (m *memRoutes) get(p netip.Prefix) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.set[p]
	return v, ok
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sampler := &memSampler{obs: []Observation{
		{Dst: netip.MustParseAddr("10.0.0.127"), Cwnd: 60},
		{Dst: netip.MustParseAddr("10.0.0.127"), Cwnd: 100},
	}}
	routes := &memRoutes{}
	agent, err := New(Config{
		Sampler: sampler,
		Routes:  routes,
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Tick(); err != nil {
		t.Fatal(err)
	}
	if w, ok := routes.get(netip.MustParsePrefix("10.0.0.127/32")); !ok || w != 80 {
		t.Errorf("programmed window = %d,%v; want 80", w, ok)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := routes.get(netip.MustParsePrefix("10.0.0.127/32")); ok {
		t.Error("route survived Close")
	}
}

func TestDefaultsExported(t *testing.T) {
	if DefaultUpdateInterval != time.Second || DefaultTTL != 90*time.Second {
		t.Error("exported defaults diverge from the paper")
	}
	if DefaultCMax != 100 || DefaultCMin != 10 || DefaultAlpha != 0.75 {
		t.Error("exported window defaults diverge from the paper")
	}
}

func TestHistoryConstructors(t *testing.T) {
	if _, err := NewEWMAHistory(0.5); err != nil {
		t.Error(err)
	}
	if _, err := NewEWMAHistory(2); err == nil {
		t.Error("bad alpha accepted")
	}
	if _, err := NewWindowedHistory(5); err != nil {
		t.Error(err)
	}
	if _, err := NewWindowedHistory(0); err == nil {
		t.Error("bad window accepted")
	}
}

func TestNewLinuxAgentConstructs(t *testing.T) {
	// Construction must not shell out; only Tick touches ss/ip.
	agent, err := NewLinuxAgent(LinuxOptions{Device: "eth0", Gateway: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := agent.Config()
	if cfg.UpdateInterval != DefaultUpdateInterval || cfg.CMax != DefaultCMax {
		t.Errorf("linux agent config = %+v", cfg)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunLoop(t *testing.T) {
	sampler := &memSampler{obs: []Observation{
		{Dst: netip.MustParseAddr("10.0.0.5"), Cwnd: 42},
	}}
	routes := &memRoutes{}
	start := time.Now()
	agent, err := New(Config{
		Sampler:        sampler,
		Routes:         routes,
		Clock:          func() time.Duration { return time.Since(start) },
		UpdateInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := Run(ctx, agent); err != nil {
		t.Fatal(err)
	}
	if agent.Stats().Ticks == 0 {
		t.Error("Run never ticked")
	}
	if _, ok := routes.get(netip.MustParsePrefix("10.0.0.5/32")); ok {
		t.Error("Run did not withdraw routes on exit")
	}
}

type failSampler struct{}

func (failSampler) SampleConnections([]Observation) ([]Observation, error) {
	return nil, errors.New("boom")
}

func TestRunLoopReportsErrors(t *testing.T) {
	start := time.Now()
	agent, err := New(Config{
		Sampler:        failSampler{},
		Routes:         &memRoutes{},
		Clock:          func() time.Duration { return time.Since(start) },
		UpdateInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen int
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if err := Run(ctx, agent, func(error) {
		mu.Lock()
		seen++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Error("tick errors not reported")
	}
}
