package riptide_test

import (
	"fmt"
	"net/netip"
	"time"

	"riptide"
)

// exampleSampler stands in for `ss -tin` output.
type exampleSampler struct{}

func (exampleSampler) SampleConnections(buf []riptide.Observation) ([]riptide.Observation, error) {
	return append(buf,
		riptide.Observation{Dst: netip.MustParseAddr("10.0.0.127"), Cwnd: 60},
		riptide.Observation{Dst: netip.MustParseAddr("10.0.0.127"), Cwnd: 100},
	), nil
}

// exampleRoutes stands in for `ip route` programming.
type exampleRoutes struct{}

func (exampleRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	fmt.Printf("set %v initcwnd %d\n", p, cwnd)
	return nil
}

func (exampleRoutes) ClearInitCwnd(p netip.Prefix) error {
	fmt.Printf("clear %v\n", p)
	return nil
}

// Example runs one Algorithm-1 round: two observed connections to the same
// destination average to a programmed initial window of 80, the paper's
// Figure 7 example.
func Example() {
	agent, err := riptide.New(riptide.Config{
		Sampler: exampleSampler{},
		Routes:  exampleRoutes{},
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := agent.Tick(); err != nil {
		fmt.Println(err)
		return
	}
	if err := agent.Close(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// set 10.0.0.127/32 initcwnd 80
	// clear 10.0.0.127/32
}

// ExampleNewTrendHistory shows the Section V trend policy snapping down on a
// window collapse while smoothing ordinary variation.
func ExampleNewTrendHistory() {
	trend, err := riptide.NewTrendHistory(0.9, 0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	dst := netip.MustParsePrefix("10.0.0.127/32")
	fmt.Println(trend.Update(dst, 100)) // first observation
	fmt.Println(trend.Update(dst, 90))  // smoothed: 0.9*100 + 0.1*90
	fmt.Println(trend.Update(dst, 20))  // collapse below half: snap
	// Output:
	// 100
	// 99
	// 20
}

// ExampleNewLoadBalanceAdvisor shows damping windows ahead of a traffic
// shift.
func ExampleNewLoadBalanceAdvisor() {
	advisor := riptide.NewLoadBalanceAdvisor()
	dst := netip.MustParsePrefix("10.0.0.0/24")
	fmt.Println(advisor.Advise(dst))
	if err := advisor.ExpectShift(dst, 0.25); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(advisor.Advise(dst))
	advisor.ShiftComplete(dst)
	fmt.Println(advisor.Advise(dst))
	// Output:
	// 1
	// 0.25
	// 1
}
