package model

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"riptide/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"valid", Params{MSS: 1448, InitCwnd: 10}, false},
		{"zero mss", Params{MSS: 0, InitCwnd: 10}, true},
		{"negative mss", Params{MSS: -1, InitCwnd: 10}, true},
		{"zero iw", Params{MSS: 1448, InitCwnd: 0}, true},
		{"negative iw", Params{MSS: 1448, InitCwnd: -5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSegments(t *testing.T) {
	tests := []struct {
		bytes int64
		mss   int
		want  int64
	}{
		{0, 1448, 0},
		{-5, 1448, 0},
		{1, 1448, 1},
		{1448, 1448, 1},
		{1449, 1448, 2},
		{14480, 1448, 10},
		{100 * 1024, 1448, 71},
	}
	for _, tt := range tests {
		if got := Segments(tt.bytes, tt.mss); got != tt.want {
			t.Errorf("Segments(%d, %d) = %d, want %d", tt.bytes, tt.mss, got, tt.want)
		}
	}
}

func TestRTTsToComplete(t *testing.T) {
	tests := []struct {
		name  string
		bytes int64
		iw    int
		want  int
	}{
		{"zero bytes", 0, 10, 0},
		{"fits in IW10", 14480, 10, 1},
		{"one byte over IW10", 14481, 10, 2},
		// IW10 slow start delivers 10,30,70,150,... cumulative segments.
		{"needs 3 rounds", 70 * 1448, 10, 3},
		{"needs 4 rounds", 71 * 1448, 10, 4},
		{"100KB at IW10", 100 * 1024, 10, 4}, // 71 segments > 70
		{"100KB at IW25", 100 * 1024, 25, 2}, // 25+50=75 >= 71
		{"100KB at IW50", 100 * 1024, 50, 2},
		{"100KB at IW100", 100 * 1024, 100, 1},
		{"50KB at IW10", 50 * 1024, 10, 3}, // 36 segs; 10+20=30 < 36 <= 70
		{"50KB at IW50", 50 * 1024, 50, 1},
		{"10KB any IW", 10 * 1024, 10, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := RTTsToComplete(tt.bytes, Params{MSS: 1448, InitCwnd: tt.iw})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("RTTsToComplete(%d, iw=%d) = %d, want %d", tt.bytes, tt.iw, got, tt.want)
			}
		})
	}
}

func TestRTTsToCompleteInvalidParams(t *testing.T) {
	if _, err := RTTsToComplete(1000, Params{MSS: 0, InitCwnd: 10}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTransferTime(t *testing.T) {
	p := Params{MSS: 1448, InitCwnd: 10}
	got, err := TransferTime(100*1024, 125*time.Millisecond, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 125 * time.Millisecond; got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	withHS, err := TransferTime(100*1024, 125*time.Millisecond, p, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * 125 * time.Millisecond; withHS != want {
		t.Errorf("TransferTime with handshake = %v, want %v", withHS, want)
	}
}

func TestGain(t *testing.T) {
	// 100KB: IW10 needs 4 RTTs, IW100 needs 1 -> gain 0.75.
	g, err := Gain(100*1024, 1448, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0.75 {
		t.Errorf("Gain = %v, want 0.75", g)
	}
	// Zero-byte files: no gain.
	g, err = Gain(0, 1448, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Errorf("Gain(0 bytes) = %v, want 0", g)
	}
}

func TestGainInvalid(t *testing.T) {
	if _, err := Gain(1000, 1448, 0, 100); err == nil {
		t.Error("invalid baseline accepted")
	}
	if _, err := Gain(1000, 1448, 10, 0); err == nil {
		t.Error("invalid candidate accepted")
	}
}

func TestMaxFirstRTTBytes(t *testing.T) {
	got, err := MaxFirstRTTBytes(Params{MSS: 1448, InitCwnd: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got != 14480 {
		t.Errorf("MaxFirstRTTBytes = %d, want 14480", got)
	}
	if _, err := MaxFirstRTTBytes(Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestPaperFigure3Statistics reproduces the two headline numbers the paper
// reads off Figure 3: raising initcwnd from 10 to 50 lets ~31% more files
// complete in the first RTT, and at initcwnd 100 all but ~15% of files
// complete in the first RTT.
func TestPaperFigure3Statistics(t *testing.T) {
	rng := workload.NewRand(42)
	sizes := workload.CDNFileSizes()
	const n = 100000
	firstRTT := map[int]int{10: 0, 50: 0, 100: 0}
	for i := 0; i < n; i++ {
		f := int64(sizes.Sample(rng))
		for iw := range firstRTT {
			rtts, err := RTTsToComplete(f, Params{MSS: workload.DefaultMSS, InitCwnd: iw})
			if err != nil {
				t.Fatal(err)
			}
			if rtts <= 1 {
				firstRTT[iw]++
			}
		}
	}
	f10 := float64(firstRTT[10]) / n
	f50 := float64(firstRTT[50]) / n
	f100 := float64(firstRTT[100]) / n
	if delta := f50 - f10; delta < 0.20 || delta > 0.42 {
		t.Errorf("IW50 first-RTT improvement = %v, paper reports ~0.31", delta)
	}
	if miss := 1 - f100; miss < 0.05 || miss > 0.30 {
		t.Errorf("IW100 miss fraction = %v, paper reports ~0.15", miss)
	}
	if !(f10 < f50 && f50 < f100) {
		t.Errorf("first-RTT fractions not ordered: %v %v %v", f10, f50, f100)
	}
}

// TestPaperFigure4Band verifies the gain band: improvements concentrate
// between 15KB and 1MB and vanish for very large files.
func TestPaperFigure4Band(t *testing.T) {
	mss := workload.DefaultMSS
	// Below the default window: no gain possible.
	g, err := Gain(10*1024, mss, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Errorf("gain for 10KB = %v, want 0", g)
	}
	// In the band: significant gain.
	g, _ = Gain(100*1024, mss, 10, 100)
	if g < 0.5 {
		t.Errorf("gain for 100KB = %v, want >= 0.5", g)
	}
	// Far above the band: diminishing gain.
	g, _ = Gain(64<<20, mss, 10, 100)
	if g > 0.35 {
		t.Errorf("gain for 64MB = %v, want modest (< 0.35)", g)
	}
}

// Property: more aggressive initial windows never need more RTTs.
func TestRTTsMonotoneInInitCwndProperty(t *testing.T) {
	f := func(bytesRaw uint32, iwRaw uint8) bool {
		fileBytes := int64(bytesRaw)
		iw := int(iwRaw%200) + 1
		a, err1 := RTTsToComplete(fileBytes, Params{MSS: 1448, InitCwnd: iw})
		b, err2 := RTTsToComplete(fileBytes, Params{MSS: 1448, InitCwnd: iw + 1})
		return err1 == nil && err2 == nil && b <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: larger files never need fewer RTTs.
func TestRTTsMonotoneInSizeProperty(t *testing.T) {
	f := func(bytesRaw uint32, extra uint16, iwRaw uint8) bool {
		iw := int(iwRaw%200) + 1
		p := Params{MSS: 1448, InitCwnd: iw}
		a, err1 := RTTsToComplete(int64(bytesRaw), p)
		b, err2 := RTTsToComplete(int64(bytesRaw)+int64(extra), p)
		return err1 == nil && err2 == nil && b >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: gain is always in [0, 1) when candidate >= baseline.
func TestGainBoundedProperty(t *testing.T) {
	f := func(bytesRaw uint32, baseRaw, candRaw uint8) bool {
		base := int(baseRaw%100) + 1
		cand := base + int(candRaw%100)
		g, err := Gain(int64(bytesRaw), 1448, base, cand)
		return err == nil && g >= 0 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeline(t *testing.T) {
	rounds, err := Timeline(100*1024, Params{MSS: 1448, InitCwnd: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("rounds = %d, want 4", len(rounds))
	}
	wantWindows := []int{10, 20, 40, 80}
	var cum int64
	for i, r := range rounds {
		if r.Number != i+1 {
			t.Errorf("round %d numbered %d", i, r.Number)
		}
		if r.WindowSegments != wantWindows[i] {
			t.Errorf("round %d window = %d, want %d", i, r.WindowSegments, wantWindows[i])
		}
		cum += r.SentSegments
		if r.CumulativeSegments != cum {
			t.Errorf("round %d cumulative = %d, want %d", i, r.CumulativeSegments, cum)
		}
	}
	if cum != 71 {
		t.Errorf("total segments = %d, want 71", cum)
	}
	if _, err := Timeline(1000, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTimelineZeroBytes(t *testing.T) {
	rounds, err := Timeline(0, Params{MSS: 1448, InitCwnd: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 0 {
		t.Errorf("rounds = %v, want none", rounds)
	}
}

func TestRenderTimeline(t *testing.T) {
	out, err := RenderTimeline(20*1448, 125*time.Millisecond, 1448, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"20 segments", "initcwnd 10", "initcwnd 25", "saves 1 RTT", "125ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := RenderTimeline(1000, time.Second, 0, 10, 25); err == nil {
		t.Error("invalid mss accepted")
	}
}
