// Package model implements the paper's closed-form transfer model
// (Section II-B): how many round trips an idealized TCP connection needs to
// deliver a file of a given size for a given initial congestion window.
//
// Model assumptions, exactly as stated in the paper: zero serialization
// delay, no delayed ACKs, no loss, and no flow-control bottleneck. Every one
// of those effects would only lengthen real transfers, so the model is a
// lower bound that isolates the initcwnd effect.
package model

import (
	"fmt"
	"time"
)

// Params configures the analytic model.
type Params struct {
	// MSS is the payload bytes per segment. Must be positive.
	MSS int
	// InitCwnd is the initial congestion window in segments. Must be positive.
	InitCwnd int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MSS <= 0 {
		return fmt.Errorf("model: MSS must be positive, got %d", p.MSS)
	}
	if p.InitCwnd <= 0 {
		return fmt.Errorf("model: InitCwnd must be positive, got %d", p.InitCwnd)
	}
	return nil
}

// Segments returns the number of MSS-sized segments needed for fileBytes.
func Segments(fileBytes int64, mss int) int64 {
	if fileBytes <= 0 {
		return 0
	}
	m := int64(mss)
	return (fileBytes + m - 1) / m
}

// RTTsToComplete returns the number of round trips an ideal slow-starting
// sender needs to deliver fileBytes: the window starts at InitCwnd segments
// and doubles every RTT (lossless slow start), so after r rounds
// InitCwnd*(2^r - 1) segments have been delivered.
//
// A file that fits entirely in the initial window costs exactly one RTT; a
// zero-byte file costs zero.
func RTTsToComplete(fileBytes int64, p Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	segs := Segments(fileBytes, p.MSS)
	if segs == 0 {
		return 0, nil
	}
	window := int64(p.InitCwnd)
	var sent int64
	rtts := 0
	for sent < segs {
		sent += window
		window *= 2
		rtts++
	}
	return rtts, nil
}

// TransferTime returns the wall-clock time the model predicts for delivering
// fileBytes over a path with the given round-trip time. When handshake is
// true, one extra RTT is charged for connection establishment (the paper's
// probe measurements reuse idle connections when available, so the default
// experiments exclude it).
func TransferTime(fileBytes int64, rtt time.Duration, p Params, handshake bool) (time.Duration, error) {
	rtts, err := RTTsToComplete(fileBytes, p)
	if err != nil {
		return 0, err
	}
	if handshake {
		rtts++
	}
	return time.Duration(rtts) * rtt, nil
}

// Gain returns the fractional reduction in round trips achieved by using
// initcwnd `candidate` instead of `baseline` for a file of fileBytes:
// (RTTs_baseline - RTTs_candidate) / RTTs_baseline. Zero-byte files have
// zero gain.
func Gain(fileBytes int64, mss, baseline, candidate int) (float64, error) {
	base, err := RTTsToComplete(fileBytes, Params{MSS: mss, InitCwnd: baseline})
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	cand, err := RTTsToComplete(fileBytes, Params{MSS: mss, InitCwnd: candidate})
	if err != nil {
		return 0, fmt.Errorf("candidate: %w", err)
	}
	if base == 0 {
		return 0, nil
	}
	return float64(base-cand) / float64(base), nil
}

// MaxFirstRTTBytes returns the largest file that completes in a single round
// trip for the given parameters.
func MaxFirstRTTBytes(p Params) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return int64(p.InitCwnd) * int64(p.MSS), nil
}
