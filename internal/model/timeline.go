package model

import (
	"fmt"
	"strings"
	"time"
)

// Round is one RTT of an idealized transfer: which segments went out and
// how the window grew — the data behind the paper's Figure 1 illustration.
type Round struct {
	// Number is 1-based.
	Number int
	// WindowSegments is the congestion window during this round.
	WindowSegments int
	// SentSegments is how many segments actually went out (window-capped
	// and remaining-capped).
	SentSegments int64
	// CumulativeSegments counts everything delivered through this round.
	CumulativeSegments int64
}

// Timeline expands a transfer into its per-round schedule under lossless
// slow start, for illustration and debugging.
func Timeline(fileBytes int64, p Params) ([]Round, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	segs := Segments(fileBytes, p.MSS)
	var rounds []Round
	window := int64(p.InitCwnd)
	var sent int64
	for n := 1; sent < segs; n++ {
		burst := window
		if rem := segs - sent; burst > rem {
			burst = rem
		}
		sent += burst
		rounds = append(rounds, Round{
			Number:             n,
			WindowSegments:     int(window),
			SentSegments:       burst,
			CumulativeSegments: sent,
		})
		window *= 2
	}
	return rounds, nil
}

// RenderTimeline formats a side-by-side Figure-1-style comparison of the
// same file transferred under two initial windows over the given RTT.
func RenderTimeline(fileBytes int64, rtt time.Duration, mss int, iwA, iwB int) (string, error) {
	ta, err := Timeline(fileBytes, Params{MSS: mss, InitCwnd: iwA})
	if err != nil {
		return "", err
	}
	tb, err := Timeline(fileBytes, Params{MSS: mss, InitCwnd: iwB})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d-byte file (%d segments), RTT %v\n",
		fileBytes, Segments(fileBytes, mss), rtt)
	render := func(label string, rounds []Round) {
		fmt.Fprintf(&b, "  initcwnd %s:\n", label)
		for _, r := range rounds {
			fmt.Fprintf(&b, "    RTT %d: window %-4d sent %-4d (total %d/%d)\n",
				r.Number, r.WindowSegments, r.SentSegments,
				r.CumulativeSegments, Segments(fileBytes, mss))
		}
		fmt.Fprintf(&b, "    completes at %v\n", time.Duration(len(rounds))*rtt)
	}
	render(fmt.Sprintf("%d", iwA), ta)
	render(fmt.Sprintf("%d", iwB), tb)
	saved := len(ta) - len(tb)
	if saved > 0 {
		fmt.Fprintf(&b, "  initcwnd %d saves %d RTT(s) = %v\n",
			iwB, saved, time.Duration(saved)*rtt)
	}
	return b.String(), nil
}
