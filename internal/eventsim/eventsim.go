// Package eventsim provides a deterministic discrete-event simulation engine:
// a virtual clock and an ordered event queue. All higher-level simulation
// packages (tcpsim, netsim, cdn) schedule their work through an Engine, so an
// entire multi-hour CDN evaluation executes in milliseconds of real time and
// replays identically for a given seed.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrNegativeDelay is returned when scheduling an event in the past.
var ErrNegativeDelay = errors.New("eventsim: negative delay")

// Event is a handle to a scheduled callback. Cancel prevents a pending event
// from firing; cancelling an already-fired or already-cancelled event is a
// no-op.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. It reports whether the event was
// still pending.
func (ev *Event) Cancel() bool {
	if ev == nil || ev.cancelled || ev.fired {
		return false
	}
	ev.cancelled = true
	return true
}

// Time returns the simulated time the event is (or was) scheduled for.
func (ev *Event) Time() time.Duration { return ev.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("eventsim: pushed %T onto event queue", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Engine is not safe for concurrent use: the whole
// point is single-threaded determinism.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed, a cheap progress/debug metric.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued (including cancelled ones not
// yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay of simulated time. It returns a cancellable
// handle, or an error for negative delays. A zero delay fires after the
// currently executing event, in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, ErrNegativeDelay
	}
	if fn == nil {
		return nil, errors.New("eventsim: nil callback")
	}
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// MustSchedule is Schedule for static non-negative delays; it panics on
// error and is intended for internal simulation plumbing where a failure is
// a programming bug.
func (e *Engine) MustSchedule(delay time.Duration, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// step fires the next event. It reports false when the queue is empty or
// only cancelled events remain.
func (e *Engine) step(limit time.Duration, bounded bool) bool {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if bounded && next.at > limit {
			return false
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		next.fired = true
		e.fired++
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. The clock
// ends at the time of the last fired event.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(0, false) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	e.stopped = false
	for !e.stopped && e.step(t, true) {
	}
	if t > e.now {
		e.now = t
	}
}

// Ticker invokes a callback at a fixed simulated interval until stopped,
// mirroring Riptide's i_u poll loop.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func(now time.Duration)
	pending  *Event
	stopped  bool
}

// NewTicker schedules fn every interval, first firing one interval from now.
func NewTicker(engine *Engine, interval time.Duration, fn func(now time.Duration)) (*Ticker, error) {
	if engine == nil {
		return nil, errors.New("eventsim: nil engine")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("eventsim: ticker interval %v must be positive", interval)
	}
	if fn == nil {
		return nil, errors.New("eventsim: nil ticker callback")
	}
	t := &Ticker{engine: engine, interval: interval, fn: fn}
	t.arm()
	return t, nil
}

func (t *Ticker) arm() {
	t.pending = t.engine.MustSchedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop halts future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}
