package eventsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(-time.Second, func() {}); err != ErrNegativeDelay {
		t.Errorf("negative delay err = %v, want ErrNegativeDelay", err)
	}
	if _, err := e.Schedule(time.Second, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestRunFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.MustSchedule(3*time.Second, func() { order = append(order, 3) })
	e.MustSchedule(1*time.Second, func() { order = append(order, 1) })
	e.MustSchedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", e.Fired())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.MustSchedule(time.Second, func() {
		times = append(times, e.Now())
		e.MustSchedule(2*time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Errorf("times = %v, want [1s 3s]", times)
	}
}

func TestZeroDelayFiresAtSameTime(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.MustSchedule(5*time.Second, func() {
		e.MustSchedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 5*time.Second {
		t.Errorf("zero-delay event fired at %v, want 5s", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.MustSchedule(time.Second, func() { fired = true })
	if !ev.Cancel() {
		t.Error("Cancel returned false for pending event")
	}
	if ev.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Errorf("Fired = %d, want 0", e.Fired())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	ev := e.MustSchedule(time.Second, func() {})
	e.Run()
	if ev.Cancel() {
		t.Error("Cancel after firing returned true")
	}
}

func TestCancelNil(t *testing.T) {
	var ev *Event
	if ev.Cancel() {
		t.Error("Cancel on nil event returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		e.MustSchedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2500*time.Millisecond {
		t.Errorf("Now = %v, want 2.5s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 4 {
		t.Errorf("after second RunUntil fired %d, want 4", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Errorf("Now = %v, want 1m", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.MustSchedule(time.Second, func() { count++; e.Stop() })
	e.MustSchedule(2*time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	// Run can resume afterwards.
	e.Run()
	if count != 2 {
		t.Errorf("count after resume = %d, want 2", count)
	}
}

func TestTickerValidation(t *testing.T) {
	e := NewEngine()
	if _, err := NewTicker(nil, time.Second, func(time.Duration) {}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewTicker(e, 0, func(time.Duration) {}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewTicker(e, time.Second, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	tk, err := NewTicker(e, time.Second, func(now time.Duration) {
		ticks = append(ticks, now)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	e.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, want := range []time.Duration{1, 2, 3} {
		if ticks[i] != want*time.Second {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want*time.Second)
		}
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	e := NewEngine()
	tk, err := NewTicker(e, time.Second, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	tk.Stop() // must not panic
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk, err := NewTicker(e, time.Second, func(time.Duration) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(time.Minute)
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// scheduling order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			e.MustSchedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the clock never runs backwards across RunUntil calls.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		e := NewEngine()
		last := time.Duration(0)
		target := time.Duration(0)
		for _, s := range steps {
			target += time.Duration(s) * time.Millisecond
			e.RunUntil(target)
			if e.Now() < last {
				return false
			}
			last = e.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
