package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"riptide/internal/core"
	"riptide/internal/eventsim"
	"riptide/internal/guard"
	"riptide/internal/kernel"
	"riptide/internal/netsim"
)

// GuardCapacityCut is the safety-governor scenario the paper's open-loop
// design cannot handle: a path's bottleneck capacity collapses mid-run,
// long after Riptide learned an aggressive window for it. The ungoverned
// agent keeps programming the stale window — every fresh transfer bursts a
// large first flight into the shrunken pipe and pays for it in retransmits —
// while the governed agent watches the loss regression, quarantines the
// destination within a bounded number of ticks, and leaves the other
// destinations' learned routes untouched.

const (
	// guardDests is the destination count; one of them degrades.
	guardDests = 8
	// guardCutAt is when the degraded path's capacity collapses.
	guardCutAt = 2 * time.Minute
	// guardMeasureFor is the post-cut window for retransmit accounting.
	guardMeasureFor = time.Minute
	// guardCapacityBefore / guardCapacityAfter are the bottleneck
	// capacities (segments per RTT) before and after the cut. The
	// post-cut capacity matches the kernel-default initcwnd: a cleared
	// route's first flight fits, the learned jump-start burst overflows.
	guardCapacityBefore = 400
	guardCapacityAfter  = 10
)

// guardRig is a one-sender, many-destination network with an optional
// governed agent on the sender.
type guardRig struct {
	engine  *eventsim.Engine
	net     *netsim.Network
	host    *kernel.Host
	agent   *core.Agent
	gov     *guard.Governor // nil for the ungoverned control
	src     netip.Addr
	dests   []netip.Addr
	retrans map[netip.Addr]*int64 // cumulative per-destination retransmits
}

func newGuardRig(seed int64, governed bool) (*guardRig, error) {
	engine := eventsim.NewEngine()
	network, err := netsim.NewNetwork(netsim.Config{Engine: engine, Seed: seed})
	if err != nil {
		return nil, err
	}
	src := netip.MustParseAddr("10.1.0.1")
	if _, err := network.AddHost(src); err != nil {
		return nil, err
	}
	rig := &guardRig{
		engine:  engine,
		net:     network,
		src:     src,
		retrans: make(map[netip.Addr]*int64),
	}
	for i := 0; i < guardDests; i++ {
		d := netip.AddrFrom4([4]byte{10, 2, 0, byte(i + 1)})
		if _, err := network.AddHost(d); err != nil {
			return nil, err
		}
		if err := network.SetBidiPath(src, d, netsim.PathConfig{
			RTT:              90 * time.Millisecond,
			LossRate:         0.001,
			CapacitySegments: guardCapacityBefore,
		}); err != nil {
			return nil, err
		}
		rig.dests = append(rig.dests, d)
		rig.retrans[d] = new(int64)
	}
	rig.host, err = network.Host(src)
	if err != nil {
		return nil, err
	}

	var gov core.Governor
	if governed {
		// Holdback 0: with eight destinations a hashed 5% holdback is
		// all-or-nothing per destination, and the scenario needs the
		// degraded one programmed. The long TTL keeps the quarantine
		// in force through the measurement window.
		rig.gov, err = guard.New(guard.Config{
			Holdback:        0,
			MinSegments:     24,
			HysteresisTicks: 2,
			QuarantineTTL:   10 * time.Minute,
			Clock:           engine.Now,
		})
		if err != nil {
			return nil, err
		}
		gov = rig.gov
	}
	rig.agent, err = core.New(core.Config{
		Sampler: &rigSampler{host: rig.host},
		Routes:  rigRoutes{host: rig.host},
		Clock:   engine.Now,
		Guard:   gov,
	})
	if err != nil {
		return nil, err
	}
	if _, err := eventsim.NewTicker(engine, time.Second, func(time.Duration) { _ = rig.agent.Tick() }); err != nil {
		return nil, err
	}

	// Two persistent connections per destination, each pushing a 120 KB
	// transfer every 1.5 s. The gap exceeds the RFC 2861 idle threshold,
	// so every transfer restarts from the route's current initcwnd — the
	// jump-started first flight whose fate the governor judges.
	for _, d := range rig.dests {
		for i := 0; i < 2; i++ {
			conn, err := network.Open(src, d)
			if err != nil {
				return nil, err
			}
			rig.pump(conn, rig.retrans[d])
		}
	}
	return rig, nil
}

func (r *guardRig) pump(conn *netsim.Conn, retrans *int64) {
	err := conn.Transfer(120*1024, func(res netsim.TransferResult) {
		*retrans += res.Retransmits
		r.engine.MustSchedule(1500*time.Millisecond, func() { r.pump(conn, retrans) })
	})
	if err != nil {
		conn.Close()
	}
}

// cut collapses the forward path to the degraded destination.
func (r *guardRig) cut(d netip.Addr) error {
	return r.net.SetPathCapacity(r.src, d, guardCapacityAfter)
}

func (r *guardRig) prefixOf(d netip.Addr) netip.Prefix {
	return netip.PrefixFrom(d, 32)
}

// programmedCount reports how many of the given destinations currently have
// a learned route.
func (r *guardRig) programmedCount(dests []netip.Addr) int {
	n := 0
	for _, d := range dests {
		if _, ok := r.agent.Lookup(d); ok {
			n++
		}
	}
	return n
}

// GuardCapacityCutOutcome carries the scenario's measurements; exported for
// the package tests that assert the acceptance bounds.
type GuardCapacityCutOutcome struct {
	// TicksToQuarantine counts agent ticks from the capacity cut until
	// the governed agent quarantined the degraded destination (0 =
	// never).
	TicksToQuarantine int
	// HealthyProgrammed / HealthyTotal count untouched destinations with
	// live routes at the end of the measurement window.
	HealthyProgrammed int
	HealthyTotal      int
	// GovernedRetrans / UngovernedRetrans are the degraded destination's
	// retransmitted segments during the post-cut measurement window.
	GovernedRetrans   int64
	UngovernedRetrans int64
	// PreCutWindow is the window the agent had learned before the cut.
	PreCutWindow int
}

// RunGuardCapacityCut executes the scenario once and returns the raw
// measurements.
func RunGuardCapacityCut(seed int64) (GuardCapacityCutOutcome, error) {
	var out GuardCapacityCutOutcome

	// Governed run, advanced tick by tick to time the quarantine.
	rig, err := newGuardRig(seed, true)
	if err != nil {
		return out, err
	}
	defer func() { _ = rig.agent.Close() }()
	degraded := rig.dests[0]
	rig.engine.RunUntil(guardCutAt)
	w, ok := rig.agent.Lookup(degraded)
	if !ok {
		return out, fmt.Errorf("experiments: agent never learned a window for %v", degraded)
	}
	out.PreCutWindow = w
	if err := rig.cut(degraded); err != nil {
		return out, err
	}
	govBefore := *rig.retrans[degraded]
	for tick := 1; tick <= int(guardMeasureFor/time.Second); tick++ {
		rig.engine.RunUntil(guardCutAt + time.Duration(tick)*time.Second)
		st, _, tracked := rig.gov.StateOf(rig.prefixOf(degraded))
		if tracked && st == guard.Quarantined && out.TicksToQuarantine == 0 {
			out.TicksToQuarantine = tick
		}
	}
	rig.engine.RunUntil(guardCutAt + guardMeasureFor)
	out.GovernedRetrans = *rig.retrans[degraded] - govBefore
	out.HealthyTotal = len(rig.dests) - 1
	out.HealthyProgrammed = rig.programmedCount(rig.dests[1:])

	// Ungoverned control with the same seed and workload.
	ctl, err := newGuardRig(seed, false)
	if err != nil {
		return out, err
	}
	defer func() { _ = ctl.agent.Close() }()
	ctl.engine.RunUntil(guardCutAt)
	if err := ctl.cut(ctl.dests[0]); err != nil {
		return out, err
	}
	ctlBefore := *ctl.retrans[ctl.dests[0]]
	ctl.engine.RunUntil(guardCutAt + guardMeasureFor)
	out.UngovernedRetrans = *ctl.retrans[ctl.dests[0]] - ctlBefore
	return out, nil
}

// GuardCapacityCut renders the scenario as an experiment Result.
func GuardCapacityCut(seed int64) (Result, error) {
	o, err := RunGuardCapacityCut(seed)
	if err != nil {
		return Result{}, err
	}
	quarantined := "never"
	if o.TicksToQuarantine > 0 {
		quarantined = fmt.Sprintf("%d ticks", o.TicksToQuarantine)
	}
	saved := 0.0
	if o.UngovernedRetrans > 0 {
		saved = 100 * (1 - float64(o.GovernedRetrans)/float64(o.UngovernedRetrans))
	}
	return Result{
		ID:    "guard",
		Title: "Safety governor: mid-run capacity cut, quarantine, and blast radius",
		Tables: []Table{{
			Title:  fmt.Sprintf("Capacity cut %d -> %d segments/RTT at t=%v (degraded destination pre-cut initcwnd %d)", guardCapacityBefore, guardCapacityAfter, guardCutAt, o.PreCutWindow),
			Header: []string{"metric", "governed", "ungoverned"},
			Rows: [][]string{
				{"quarantined after", quarantined, "n/a (no governor)"},
				{fmt.Sprintf("retransmits to degraded destination (%v post-cut)", guardMeasureFor),
					fmt.Sprintf("%d", o.GovernedRetrans), fmt.Sprintf("%d", o.UngovernedRetrans)},
				{"healthy destinations still programmed",
					fmt.Sprintf("%d/%d", o.HealthyProgrammed, o.HealthyTotal), "-"},
			},
		}},
		Notes: []string{
			fmt.Sprintf("governor quarantined the degraded destination %s after the cut", quarantined),
			fmt.Sprintf("governed agent cut post-regression retransmits by %.0f%% (%d vs %d)", saved, o.GovernedRetrans, o.UngovernedRetrans),
			fmt.Sprintf("%d/%d healthy destinations kept their learned routes", o.HealthyProgrammed, o.HealthyTotal),
		},
	}, nil
}
