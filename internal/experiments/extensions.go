package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"riptide/internal/core"
	"riptide/internal/eventsim"
	"riptide/internal/kernel"
	"riptide/internal/netsim"
	"riptide/internal/stats"
)

// Extension experiments quantify the paper's Section V proposals, which the
// paper describes but does not evaluate: trend-based aggressive decrease and
// advisor-damped load shifts.

// twoHostRig is a minimal two-host network with an agent on the sender,
// shared by the extension experiments.
type twoHostRig struct {
	engine *eventsim.Engine
	net    *netsim.Network
	host   *kernel.Host
	agent  *core.Agent
	src    netip.Addr
	dst    netip.Addr
}

type rigSampler struct {
	host  *kernel.Host
	snaps []kernel.ConnSnapshot
}

func (s *rigSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	s.snaps = s.host.AppendConnections(s.snaps[:0])
	for _, c := range s.snaps {
		buf = append(buf, core.Observation{
			Dst: c.Dst, Cwnd: c.Cwnd, RTT: c.RTT, BytesAcked: c.BytesAcked,
			Retrans: c.Retrans, Lost: c.Lost, SegsOut: c.SegsOut, LossEvents: c.LossEvents,
		})
	}
	return buf, nil
}

type rigRoutes struct{ host *kernel.Host }

func (r rigRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	return r.host.AddRoute(kernel.Route{Prefix: p, InitCwnd: cwnd, Proto: "static"})
}

func (r rigRoutes) ClearInitCwnd(p netip.Prefix) error {
	r.host.DelRoute(p)
	return nil
}

// newTwoHostRig wires a sender with a Riptide agent (using the supplied
// history policy and advisor) to a receiver across a 90 ms path, with
// persistent traffic keeping the agent supplied with observations.
func newTwoHostRig(seed int64, history core.HistoryPolicy, advisor core.Advisor, pathCfg netsim.PathConfig) (*twoHostRig, error) {
	engine := eventsim.NewEngine()
	net, err := netsim.NewNetwork(netsim.Config{Engine: engine, Seed: seed})
	if err != nil {
		return nil, err
	}
	src := netip.MustParseAddr("10.1.0.1")
	dst := netip.MustParseAddr("10.2.0.1")
	for _, a := range []netip.Addr{src, dst} {
		if _, err := net.AddHost(a); err != nil {
			return nil, err
		}
	}
	if pathCfg.RTT == 0 {
		pathCfg.RTT = 90 * time.Millisecond
	}
	if err := net.SetBidiPath(src, dst, pathCfg); err != nil {
		return nil, err
	}
	host, err := net.Host(src)
	if err != nil {
		return nil, err
	}
	agent, err := core.New(core.Config{
		Sampler: &rigSampler{host: host},
		Routes:  rigRoutes{host: host},
		Clock:   engine.Now,
		History: history,
		Advisor: advisor,
	})
	if err != nil {
		return nil, err
	}
	if _, err := eventsim.NewTicker(engine, time.Second, func(time.Duration) { _ = agent.Tick() }); err != nil {
		return nil, err
	}
	rig := &twoHostRig{engine: engine, net: net, host: host, agent: agent, src: src, dst: dst}
	rig.pumpTraffic(3)
	return rig, nil
}

// pumpTraffic keeps n persistent connections busy with back-to-back 200KB
// transfers so the agent always has live windows to observe.
func (r *twoHostRig) pumpTraffic(n int) {
	var pump func(conn *netsim.Conn)
	pump = func(conn *netsim.Conn) {
		err := conn.Transfer(200*1024, func(netsim.TransferResult) {
			r.engine.MustSchedule(300*time.Millisecond, func() { pump(conn) })
		})
		if err != nil {
			conn.Close()
		}
	}
	for i := 0; i < n; i++ {
		conn, err := r.net.Open(r.src, r.dst)
		if err != nil {
			return
		}
		pump(conn)
	}
}

// learnedWindow reports the agent's current programmed window for dst.
func (r *twoHostRig) learnedWindow() int {
	w, ok := r.agent.Lookup(r.dst)
	if !ok {
		return 0
	}
	return w
}

// ExtensionTrendReaction compares how quickly the default EWMA and the
// Section V trend policy pull the programmed window down after a sudden
// path degradation, and how both recover.
func ExtensionTrendReaction(seed int64) (Result, error) {
	type outcome struct {
		label          string
		preEpisode     int
		reactionTime   time.Duration
		floorWindow    int
		recoveredAfter time.Duration
	}
	run := func(label string, history core.HistoryPolicy) (outcome, error) {
		rig, err := newTwoHostRig(seed, history, nil, netsim.PathConfig{LossRate: 0.001})
		if err != nil {
			return outcome{}, err
		}
		defer func() { _ = rig.agent.Close() }()

		const (
			degradeAt = 2 * time.Minute
			healAt    = 6 * time.Minute
			endAt     = 12 * time.Minute
		)
		rig.engine.MustSchedule(degradeAt, func() {
			_ = rig.net.SetPathLoss(rig.src, rig.dst, 0.08)
			_ = rig.net.SetPathLoss(rig.dst, rig.src, 0.08)
		})
		rig.engine.MustSchedule(healAt, func() {
			_ = rig.net.SetPathLoss(rig.src, rig.dst, 0.001)
			_ = rig.net.SetPathLoss(rig.dst, rig.src, 0.001)
		})

		rig.engine.RunUntil(degradeAt)
		pre := rig.learnedWindow()
		if pre == 0 {
			return outcome{}, fmt.Errorf("experiments: %s never learned a window", label)
		}

		// Advance second by second, recording when the programmed
		// window first halves and its floor during the episode.
		var reaction time.Duration
		floor := pre
		for t := degradeAt; t < healAt; t += time.Second {
			rig.engine.RunUntil(t)
			w := rig.learnedWindow()
			if w < floor {
				floor = w
			}
			if reaction == 0 && w <= pre/2 {
				reaction = t - degradeAt
			}
		}
		var recovered time.Duration
		for t := healAt; t <= endAt; t += time.Second {
			rig.engine.RunUntil(t)
			if rig.learnedWindow() >= (9*pre)/10 {
				recovered = t - healAt
				break
			}
		}
		return outcome{
			label:          label,
			preEpisode:     pre,
			reactionTime:   reaction,
			floorWindow:    floor,
			recoveredAfter: recovered,
		}, nil
	}

	ewma, err := core.NewEWMAHistory(0.9)
	if err != nil {
		return Result{}, err
	}
	trend, err := core.NewTrendHistory(0.9, 0.5)
	if err != nil {
		return Result{}, err
	}

	tbl := Table{
		Title:  "Reaction to an 8% loss episode: EWMA vs trend detection",
		Header: []string{"policy", "pre-episode window", "time to halve", "floor", "recovery to 90%"},
	}
	notes := make([]string, 0, 2)
	for _, v := range []struct {
		label   string
		history core.HistoryPolicy
	}{
		{"ewma alpha=0.9 (paper default shape)", ewma},
		{"trend alpha=0.9 collapse=0.5 (Section V)", trend},
	} {
		o, err := run(v.label, v.history)
		if err != nil {
			return Result{}, err
		}
		react := "never"
		if o.reactionTime > 0 {
			react = o.reactionTime.String()
		}
		rec := "not within 6m"
		if o.recoveredAfter > 0 {
			rec = o.recoveredAfter.String()
		}
		tbl.Rows = append(tbl.Rows, []string{
			v.label, fmt.Sprintf("%d", o.preEpisode), react,
			fmt.Sprintf("%d", o.floorWindow), rec,
		})
		notes = append(notes, fmt.Sprintf("%s: halved after %s", v.label, react))
	}
	return Result{
		ID:     "ext-trend",
		Title:  "Section V extension: trend-based aggressive decrease",
		Tables: []Table{tbl},
		Notes:  notes,
	}, nil
}

// ExtensionAdvisorShift measures the Section V load-balancing scenario: a
// herd of new connections arrives on a capacity-limited path. With the
// advisor damping the learned window beforehand, the herd induces less
// congestion loss.
func ExtensionAdvisorShift(seed int64) (Result, error) {
	run := func(damp bool) (retrans int64, p95 float64, err error) {
		advisor := core.NewLoadBalanceAdvisor()
		history, err := core.NewEWMAHistory(core.DefaultAlpha)
		if err != nil {
			return 0, 0, err
		}
		rig, err := newTwoHostRig(seed, history, advisor, netsim.PathConfig{
			LossRate:         0.001,
			CapacitySegments: 600,
		})
		if err != nil {
			return 0, 0, err
		}
		defer func() { _ = rig.agent.Close() }()

		const shiftAt = 2 * time.Minute
		if damp {
			// The orchestrator warns Riptide ahead of the shift.
			rig.engine.MustSchedule(shiftAt-30*time.Second, func() {
				_ = advisor.ExpectShift(netip.PrefixFrom(rig.dst, 32), 0.25)
			})
		}

		var total int64
		times := stats.NewCDF(64)
		rig.engine.MustSchedule(shiftAt, func() {
			// Load balancer moves a neighbour PoP's traffic here: 40
			// fresh connections start 200KB transfers at once.
			for i := 0; i < 40; i++ {
				conn, err := rig.net.Open(rig.src, rig.dst)
				if err != nil {
					continue
				}
				_ = conn.Transfer(200*1024, func(r netsim.TransferResult) {
					total += r.Retransmits
					times.Add(float64(r.Elapsed.Milliseconds()))
					conn.Close()
				})
			}
		})
		rig.engine.RunUntil(6 * time.Minute)
		if times.Len() == 0 {
			return 0, 0, fmt.Errorf("experiments: no herd transfers completed")
		}
		p95v, err := times.Percentile(95)
		if err != nil {
			return 0, 0, err
		}
		return total, p95v, nil
	}

	plainRetrans, plainP95, err := run(false)
	if err != nil {
		return Result{}, err
	}
	dampedRetrans, dampedP95, err := run(true)
	if err != nil {
		return Result{}, err
	}

	tbl := Table{
		Title:  "40-connection load shift onto a capacity-limited path",
		Header: []string{"variant", "herd retransmits", "herd p95 (ms)"},
		Rows: [][]string{
			{"no advisor (full learned window)", fmt.Sprintf("%d", plainRetrans), fmt.Sprintf("%.0f", plainP95)},
			{"advisor damping 0.25 (Section V)", fmt.Sprintf("%d", dampedRetrans), fmt.Sprintf("%.0f", dampedP95)},
		},
	}
	return Result{
		ID:     "ext-advisor",
		Title:  "Section V extension: advisor-damped load shift",
		Tables: []Table{tbl},
		Notes: []string{
			fmt.Sprintf("retransmits during the shift: %d without damping vs %d with (lower is safer)",
				plainRetrans, dampedRetrans),
		},
	}, nil
}
