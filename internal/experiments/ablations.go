package experiments

import (
	"fmt"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/core"
	"riptide/internal/stats"
)

// Ablations quantify the design choices Section III-B leaves open: the
// combiner (average vs max vs traffic-weighted), the history policy and its
// weight, destination granularity, the TTL, and the update interval. Each
// ablation runs the same cluster workload, varying exactly one knob, and
// reports the 50 KB probe median/p90 completion times plus route-programming
// effort.

// ablationOutcome is one row of an ablation table.
type ablationOutcome struct {
	label     string
	median    float64
	p90       float64
	routesSet uint64
}

// runAblation executes one cluster with the given Riptide options and
// summarizes its 50 KB probes.
func runAblation(s Scale, label string, opts cdn.RiptideOptions) (ablationOutcome, error) {
	cl, err := cdn.NewCluster(cdn.Config{
		PoPs:     s.PoPs,
		Seed:     s.Seed,
		LossRate: s.LossRate,
		Riptide:  opts,
		Traffic: cdn.TrafficOptions{
			ProbeInterval: 4 * time.Minute,
			IdleTimeout:   90 * time.Second,
			OrganicRates:  organicProfile(s.PoPs),
		},
	})
	if err != nil {
		return ablationOutcome{}, err
	}
	cl.Run(s.WarmUp + s.Duration)

	var routes uint64
	for _, p := range s.PoPs {
		for _, a := range cl.Agents(p.Name) {
			routes += a.Stats().RoutesSet
		}
	}
	cl.Stop()

	c := stats.NewCDF(512)
	for _, p := range cl.ProbeRecords() {
		if p.SizeBytes == 50*1024 && p.At >= s.WarmUp {
			c.Add(float64(p.Elapsed.Milliseconds()))
		}
	}
	if c.Len() == 0 {
		return ablationOutcome{}, fmt.Errorf("experiments: ablation %q produced no probes", label)
	}
	med, err := c.Median()
	if err != nil {
		return ablationOutcome{}, err
	}
	p90, err := c.Percentile(90)
	if err != nil {
		return ablationOutcome{}, err
	}
	return ablationOutcome{label: label, median: med, p90: p90, routesSet: routes}, nil
}

func ablationResult(id, title string, outcomes []ablationOutcome) Result {
	tbl := Table{
		Title:  title,
		Header: []string{"variant", "50KB median (ms)", "50KB p90 (ms)", "routes programmed"},
	}
	for _, o := range outcomes {
		tbl.Rows = append(tbl.Rows, []string{
			o.label,
			fmt.Sprintf("%.0f", o.median),
			fmt.Sprintf("%.0f", o.p90),
			fmt.Sprintf("%d", o.routesSet),
		})
	}
	return Result{ID: id, Title: title, Tables: []Table{tbl}}
}

// AblationCombiners compares the paper's average combiner against the
// aggressive max and conservative traffic-weighted variants.
func AblationCombiners(s Scale) (Result, error) {
	s = s.withDefaults()
	variants := []struct {
		label string
		c     core.Combiner
	}{
		{"average (paper default)", core.AverageCombiner{}},
		{"max (aggressive)", core.MaxCombiner{}},
		{"traffic-weighted (conservative)", core.TrafficWeightedCombiner{}},
	}
	outcomes := make([]ablationOutcome, 0, len(variants)+1)
	baseline, err := runAblation(s, "no riptide (control)", cdn.RiptideOptions{})
	if err != nil {
		return Result{}, err
	}
	outcomes = append(outcomes, baseline)
	for _, v := range variants {
		o, err := runAblation(s, v.label, cdn.RiptideOptions{Enabled: true, Combiner: v.c})
		if err != nil {
			return Result{}, err
		}
		outcomes = append(outcomes, o)
	}
	return ablationResult("ablation-combiners", "Combiner ablation (Section III-B)", outcomes), nil
}

// AlphaSweep lists the EWMA weights the history ablation explores.
var AlphaSweep = []float64{0.25, 0.5, 0.75, 0.9}

// AblationHistory compares EWMA weights and the no-history policy.
func AblationHistory(s Scale) (Result, error) {
	s = s.withDefaults()
	outcomes := make([]ablationOutcome, 0, len(AlphaSweep)+1)
	o, err := runAblation(s, "no history (instant)", cdn.RiptideOptions{Enabled: true, History: core.NoHistory{}})
	if err != nil {
		return Result{}, err
	}
	outcomes = append(outcomes, o)
	for _, alpha := range AlphaSweep {
		o, err := runAblation(s, fmt.Sprintf("ewma alpha=%.2f", alpha),
			cdn.RiptideOptions{Enabled: true, Alpha: alpha})
		if err != nil {
			return Result{}, err
		}
		outcomes = append(outcomes, o)
	}
	return ablationResult("ablation-history", "History-policy ablation (Section III-B)", outcomes), nil
}

// AblationGranularity compares per-host /32 routes against per-PoP /24
// aggregation (the paper's "Destinations as Routes").
func AblationGranularity(s Scale) (Result, error) {
	s = s.withDefaults()
	var outcomes []ablationOutcome
	for _, v := range []struct {
		label string
		bits  int
	}{
		{"/32 per-host routes", 32},
		{"/24 per-PoP routes", 24},
		{"/16 coarse routes", 16},
	} {
		o, err := runAblation(s, v.label, cdn.RiptideOptions{Enabled: true, PrefixBits: v.bits})
		if err != nil {
			return Result{}, err
		}
		outcomes = append(outcomes, o)
	}
	return ablationResult("ablation-granularity", "Route-granularity ablation (Section III-B)", outcomes), nil
}

// TTLSweep lists the entry lifetimes the TTL ablation explores.
var TTLSweep = []time.Duration{30 * time.Second, 90 * time.Second, 5 * time.Minute}

// AblationTTL compares entry lifetimes around the paper's 90 s choice.
func AblationTTL(s Scale) (Result, error) {
	s = s.withDefaults()
	var outcomes []ablationOutcome
	for _, ttl := range TTLSweep {
		o, err := runAblation(s, fmt.Sprintf("ttl=%v", ttl), cdn.RiptideOptions{Enabled: true, TTL: ttl})
		if err != nil {
			return Result{}, err
		}
		outcomes = append(outcomes, o)
	}
	return ablationResult("ablation-ttl", "TTL ablation (paper default 90s)", outcomes), nil
}

// IntervalSweep lists the poll cadences the update-interval ablation
// explores.
var IntervalSweep = []time.Duration{time.Second, 5 * time.Second, 15 * time.Second}

// AblationUpdateInterval compares poll cadences around the paper's i_u = 1 s.
func AblationUpdateInterval(s Scale) (Result, error) {
	s = s.withDefaults()
	var outcomes []ablationOutcome
	for _, iu := range IntervalSweep {
		o, err := runAblation(s, fmt.Sprintf("i_u=%v", iu),
			cdn.RiptideOptions{Enabled: true, UpdateInterval: iu})
		if err != nil {
			return Result{}, err
		}
		outcomes = append(outcomes, o)
	}
	return ablationResult("ablation-interval", "Update-interval ablation (paper default 1s)", outcomes), nil
}
