package experiments

import (
	"fmt"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/kernel"
	"riptide/internal/stats"
	"riptide/internal/workload"
)

// Scale sizes the cluster simulations. The paper measured 12–20 hours on a
// production network; simulated runs compress time (probes every minute
// rather than hourly) so shorter durations observe the same number of probe
// rounds.
type Scale struct {
	// Duration is how long each simulated measurement runs. Zero means
	// DefaultScale's duration.
	Duration time.Duration
	// Seed drives all randomness.
	Seed int64
	// PoPs restricts the topology; empty means the full 34-PoP mesh.
	PoPs []cdn.PoP
	// LossRate is the WAN's random per-segment loss.
	LossRate float64
	// WarmUp discards measurements collected before Riptide has learned
	// the network (default: 2 probe rounds).
	WarmUp time.Duration
}

// DefaultScale is a full-fidelity configuration: the complete topology for
// the equivalent of the paper's measurement windows.
func DefaultScale() Scale {
	return Scale{
		Duration: time.Hour, // ~20 probe rounds/destination
		Seed:     1,
		LossRate: 0.002,
		WarmUp:   5 * time.Minute,
	}
}

// QuickScale is a reduced configuration for unit tests: a 6-PoP mesh and a
// short run.
func QuickScale() Scale {
	pops := cdn.DefaultTopology()
	pick := map[string]bool{"lhr": true, "fra": true, "jfk": true, "lax": true, "nrt": true, "syd": true}
	var subset []cdn.PoP
	for _, p := range pops {
		if pick[p.Name] {
			subset = append(subset, p)
		}
	}
	return Scale{
		Duration: 20 * time.Minute,
		Seed:     1,
		PoPs:     subset,
		LossRate: 0.002,
		WarmUp:   4 * time.Minute,
	}
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Duration == 0 {
		s.Duration = d.Duration
	}
	if s.LossRate == 0 {
		s.LossRate = d.LossRate
	}
	if s.WarmUp == 0 {
		s.WarmUp = d.WarmUp
	}
	if len(s.PoPs) == 0 {
		s.PoPs = cdn.DefaultTopology()
	}
	return s
}

// organicProfile assigns background traffic: every PoP carries a baseline
// of organic transfers (so control-group windows grow as they do in
// production) and a handful of busy PoPs carry much more (so learned
// windows reach c_max on busy paths, the paper's Figure 11 effect).
func organicProfile(pops []cdn.PoP) map[string]float64 {
	busy := map[string]bool{"lhr": true, "fra": true, "jfk": true, "lax": true, "nrt": true}
	rates := make(map[string]float64, len(pops))
	for _, p := range pops {
		if busy[p.Name] {
			rates[p.Name] = 4 // transfers per second
		} else {
			rates[p.Name] = 1
		}
	}
	return rates
}

// runCluster builds and runs one cluster, returning it with all
// measurements collected.
func runCluster(s Scale, riptide cdn.RiptideOptions, organic map[string]float64, sampleCwnd bool) (*cdn.Cluster, error) {
	c, err := cdn.NewCluster(cdn.Config{
		PoPs:     s.PoPs,
		Seed:     s.Seed,
		LossRate: s.LossRate,
		Riptide:  riptide,
		Traffic: cdn.TrafficOptions{
			// Longer than the agent TTL, like the paper's hourly
			// probes: a destination kept alive only by probes
			// must re-learn each round, while organic traffic
			// keeps entries warm continuously (Figure 11).
			ProbeInterval: 4 * time.Minute,
			// Shorter than the probe interval: connections kept
			// alive only by probes do not survive between rounds,
			// as with the paper's hourly probe cadence.
			IdleTimeout:  2 * time.Minute,
			OrganicRates: organic,
		},
	})
	if err != nil {
		return nil, err
	}
	if sampleCwnd {
		// The paper samples windows each minute and counts only
		// connections opened after Riptide started; warm up first. The
		// extra 17 s offsets the sampler from the probe-round boundary so
		// it observes steady-state windows rather than connections caught
		// at the instant they open (still at exactly their initcwnd).
		c.Run(s.WarmUp + 17*time.Second)
		if err := c.StartCwndSampling(time.Minute); err != nil {
			return nil, err
		}
		c.Run(s.Duration)
	} else {
		c.Run(s.WarmUp + s.Duration)
	}
	c.Stop()
	return c, nil
}

// CmaxSweep is the Figure 10 parameter sweep.
var CmaxSweep = []int{50, 100, 150, 200, 250}

// Fig10CwndByCmax reproduces Figure 10: the CDF of observed congestion
// windows while Riptide runs with c_max in {50,100,150,200,250}, plus a
// no-Riptide control, over connections opened after measurement start.
func Fig10CwndByCmax(s Scale) (Result, error) {
	s = s.withDefaults()
	organic := organicProfile(s.PoPs)
	res := Result{ID: "fig10", Title: "Observed congestion windows per c_max (CDF)"}

	collect := func(c *cdn.Cluster) *stats.CDF {
		cdf := stats.NewCDF(1024)
		for _, smp := range c.CwndSamples() {
			if smp.OpenedAfterStart {
				cdf.Add(float64(smp.Cwnd))
			}
		}
		return cdf
	}

	control, err := runCluster(s, cdn.RiptideOptions{}, organic, true)
	if err != nil {
		return Result{}, err
	}
	controlCDF := collect(control)
	if controlCDF.Len() == 0 {
		return Result{}, fmt.Errorf("experiments: control run produced no cwnd samples")
	}
	res.Series = append(res.Series, Series{Label: "default (control)", Points: controlCDF.Curve(curvePoints)})

	medians := map[int]float64{}
	for _, cmax := range CmaxSweep {
		cl, err := runCluster(s, cdn.RiptideOptions{Enabled: true, CMax: cmax}, organic, true)
		if err != nil {
			return Result{}, err
		}
		cdf := collect(cl)
		if cdf.Len() == 0 {
			return Result{}, fmt.Errorf("experiments: c_max=%d run produced no cwnd samples", cmax)
		}
		med, err := cdf.Median()
		if err != nil {
			return Result{}, err
		}
		medians[cmax] = med
		res.Series = append(res.Series, Series{
			Label:  fmt.Sprintf("riptide c_max=%d", cmax),
			Points: cdf.Curve(curvePoints),
		})
	}

	ctrlMed, err := controlCDF.Median()
	if err != nil {
		return Result{}, err
	}
	if ctrlMed > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("median cwnd: control %.0f vs c_max=50 %.0f (+%.0f%%; paper: +100%%)",
				ctrlMed, medians[50], 100*(medians[50]-ctrlMed)/ctrlMed),
			fmt.Sprintf("median cwnd: control %.0f vs c_max=100 %.0f (+%.0f%%; paper headline: +200%%)",
				ctrlMed, medians[100], 100*(medians[100]-ctrlMed)/ctrlMed),
			fmt.Sprintf("knee: c_max=100 yields %.0f, c_max=250 only %.0f — diminishing returns beyond 100",
				medians[100], medians[250]))
	}
	return res, nil
}

// Fig11TrafficProfiles reproduces Figure 11: the window CDF at a PoP running
// only probe traffic versus one of the busiest PoPs.
func Fig11TrafficProfiles(s Scale) (Result, error) {
	s = s.withDefaults()
	busyName, quietName := "lhr", pickQuietPoP(s.PoPs)
	organic := map[string]float64{busyName: 6}

	cl, err := runCluster(s, cdn.RiptideOptions{Enabled: true}, organic, true)
	if err != nil {
		return Result{}, err
	}
	busy, quiet := stats.NewCDF(256), stats.NewCDF(256)
	for _, smp := range cl.CwndSamples() {
		if !smp.OpenedAfterStart {
			continue
		}
		switch smp.Src {
		case busyName:
			busy.Add(float64(smp.Cwnd))
		case quietName:
			quiet.Add(float64(smp.Cwnd))
		}
	}
	if busy.Len() == 0 || quiet.Len() == 0 {
		return Result{}, fmt.Errorf("experiments: missing samples (busy=%d quiet=%d)", busy.Len(), quiet.Len())
	}
	busyMed, err := busy.Median()
	if err != nil {
		return Result{}, err
	}
	quietMed, err := quiet.Median()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:    "fig11",
		Title: "Observed windows: probe-only vs organic-traffic PoP",
		Series: []Series{
			{Label: fmt.Sprintf("probe traffic only (%s)", quietName), Points: quiet.Curve(curvePoints)},
			{Label: fmt.Sprintf("full traffic (%s)", busyName), Points: busy.Curve(curvePoints)},
		},
		Notes: []string{
			fmt.Sprintf("median window: busy %.0f vs probe-only %.0f (paper: organic traffic reaches c_max far more often)",
				busyMed, quietMed),
			fmt.Sprintf("fraction at c_max=100: busy %.0f%%, probe-only %.0f%%",
				100*(1-busy.At(99)), 100*(1-quiet.At(99))),
		},
	}, nil
}

// pickQuietPoP returns a PoP that gets no organic traffic in the default
// profile, preferring the paper-like single South American site.
func pickQuietPoP(pops []cdn.PoP) string {
	organic := organicProfile(pops)
	for _, prefer := range []string{"gru", "syd", "waw"} {
		for _, p := range pops {
			if p.Name == prefer {
				if _, busy := organic[prefer]; !busy {
					return prefer
				}
			}
		}
	}
	for _, p := range pops {
		if _, busy := organic[p.Name]; !busy {
			return p.Name
		}
	}
	return pops[len(pops)-1].Name
}

// probeSizeForFigure maps figure numbers 12-14 to probe sizes.
var probeSizeForFigure = map[int]int{12: 10 * 1024, 13: 50 * 1024, 14: 100 * 1024}

// senderPoPs are the two vantage points the paper measures probes from: one
// European and one North American PoP.
var senderPoPs = []string{"lhr", "jfk"}

// probeRuns holds a matched Riptide/control pair of probe record sets.
type probeRuns struct {
	control, riptide []cdn.ProbeRecord
	warm             time.Duration
}

// runProbePair executes the control and Riptide clusters once and returns
// both probe sets. Figures 12–16 and the edge-case analysis all consume it.
func runProbePair(s Scale) (probeRuns, error) {
	s = s.withDefaults()
	organic := organicProfile(s.PoPs)
	control, err := runCluster(s, cdn.RiptideOptions{}, organic, false)
	if err != nil {
		return probeRuns{}, err
	}
	riptide, err := runCluster(s, cdn.RiptideOptions{Enabled: true}, organic, false)
	if err != nil {
		return probeRuns{}, err
	}
	return probeRuns{
		control: control.ProbeRecords(),
		riptide: riptide.ProbeRecords(),
		warm:    s.WarmUp,
	}, nil
}

// filterProbes selects fresh-connection probes of one size from a sender
// after warm-up, grouped by RTT bucket.
func filterProbes(records []cdn.ProbeRecord, src string, size int, warm time.Duration) map[cdn.RTTBucket]*stats.CDF {
	out := make(map[cdn.RTTBucket]*stats.CDF)
	for _, p := range records {
		if p.Src != src || p.SizeBytes != size || p.At < warm {
			continue
		}
		c, ok := out[p.Bucket]
		if !ok {
			c = stats.NewCDF(128)
			out[p.Bucket] = c
		}
		c.Add(float64(p.Elapsed.Milliseconds()))
	}
	return out
}

// ProbeCompletionFigure reproduces Figures 12 (10 KB), 13 (50 KB), or
// 14 (100 KB): CDFs of probe completion time grouped by destination RTT
// bucket, Riptide versus default, from a single sending PoP.
func ProbeCompletionFigure(fig int, s Scale) (Result, error) {
	size, ok := probeSizeForFigure[fig]
	if !ok {
		return Result{}, fmt.Errorf("experiments: figure %d is not a probe-completion figure", fig)
	}
	runs, err := runProbePair(s)
	if err != nil {
		return Result{}, err
	}
	return probeCompletionFromRuns(fig, size, runs)
}

func probeCompletionFromRuns(fig, size int, runs probeRuns) (Result, error) {
	res := Result{
		ID:    fmt.Sprintf("fig%d", fig),
		Title: fmt.Sprintf("Probe completion time CDFs, %dKB probes, by RTT bucket", size/1024),
	}
	src := senderPoPs[0]
	ctrl := filterProbes(runs.control, src, size, runs.warm)
	ript := filterProbes(runs.riptide, src, size, runs.warm)
	improvedBuckets := 0
	comparable := 0
	for _, b := range cdn.AllBuckets() {
		cc, rc := ctrl[b], ript[b]
		if cc == nil || rc == nil || cc.Len() == 0 || rc.Len() == 0 {
			continue
		}
		comparable++
		res.Series = append(res.Series,
			Series{Label: fmt.Sprintf("%s default", b), Points: cc.Curve(curvePoints)},
			Series{Label: fmt.Sprintf("%s riptide", b), Points: rc.Curve(curvePoints)},
		)
		cMed, err := cc.Median()
		if err != nil {
			return Result{}, err
		}
		rMed, err := rc.Median()
		if err != nil {
			return Result{}, err
		}
		if cMed > 0 {
			gain := 100 * (cMed - rMed) / cMed
			if gain > 1 {
				improvedBuckets++
			}
			res.Notes = append(res.Notes,
				fmt.Sprintf("bucket %s: median default %.0f ms vs riptide %.0f ms (%.1f%% gain)", b, cMed, rMed, gain))
		}
	}
	if comparable == 0 {
		return Result{}, fmt.Errorf("experiments: no comparable probe buckets for fig%d", fig)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("%d/%d RTT buckets improved at the median", improvedBuckets, comparable))

	// Significance: pool all buckets and test whether the riptide and
	// control completion-time distributions differ at all. Figure 12's
	// 10 KB probes should NOT differ; 13 and 14 should, overwhelmingly.
	allCtrl, allRipt := stats.NewCDF(512), stats.NewCDF(512)
	for _, c := range ctrl {
		allCtrl.AddAll(c.Samples())
	}
	for _, c := range ript {
		allRipt.AddAll(c.Samples())
	}
	if ks, err := stats.KolmogorovSmirnov(allCtrl, allRipt); err == nil {
		res.Notes = append(res.Notes,
			fmt.Sprintf("KS two-sample test: D=%.3f p=%.3g (%s)", ks.Statistic, ks.PValue,
				significance(ks.PValue)))
	}
	return res, nil
}

// significance renders a p-value verdict for report notes.
func significance(p float64) string {
	switch {
	case p < 0.001:
		return "distributions differ decisively"
	case p < 0.05:
		return "distributions differ significantly"
	default:
		return "no significant difference"
	}
}

// GainByPercentileFigure reproduces Figures 15 (50 KB) and 16 (100 KB):
// fraction of completion-time gain by percentile, in 5%% steps, for the
// European and North American sender PoPs.
func GainByPercentileFigure(fig int, s Scale) (Result, error) {
	var size int
	switch fig {
	case 15:
		size = 50 * 1024
	case 16:
		size = 100 * 1024
	default:
		return Result{}, fmt.Errorf("experiments: figure %d is not a gain-by-percentile figure", fig)
	}
	runs, err := runProbePair(s)
	if err != nil {
		return Result{}, err
	}
	return gainByPercentileFromRuns(fig, size, runs)
}

func gainByPercentileFromRuns(fig, size int, runs probeRuns) (Result, error) {
	res := Result{
		ID:    fmt.Sprintf("fig%d", fig),
		Title: fmt.Sprintf("Fraction of gain by percentile, %dKB probes", size/1024),
	}
	percentiles := stats.PercentileSteps(5, 95, 5)
	for _, src := range senderPoPs {
		ctrl, ript := stats.NewCDF(512), stats.NewCDF(512)
		for _, p := range runs.control {
			if p.Src == src && p.SizeBytes == size && p.At >= runs.warm {
				ctrl.Add(float64(p.Elapsed.Milliseconds()))
			}
		}
		for _, p := range runs.riptide {
			if p.Src == src && p.SizeBytes == size && p.At >= runs.warm {
				ript.Add(float64(p.Elapsed.Milliseconds()))
			}
		}
		if ctrl.Len() == 0 || ript.Len() == 0 {
			return Result{}, fmt.Errorf("experiments: no probes for sender %s", src)
		}
		gains, err := stats.RelativeGain(ctrl, ript, percentiles)
		if err != nil {
			return Result{}, err
		}
		pts := make([]stats.Point, len(percentiles))
		best := 0.0
		for i := range percentiles {
			pts[i] = stats.Point{X: percentiles[i], Y: gains[i]}
			if gains[i] > best {
				best = gains[i]
			}
		}
		res.Series = append(res.Series, Series{Label: fmt.Sprintf("sender %s", src), Points: pts})
		res.Notes = append(res.Notes, fmt.Sprintf("sender %s: peak percentile gain %.1f%%", src, 100*best))

		// Bootstrap a 95% interval for the paper's headline percentile
		// (p75), so the report carries uncertainty, not just a point.
		ci, err := stats.BootstrapGainCI(ctrl, ript, 75, 500, workload.NewRand(1))
		if err == nil {
			res.Notes = append(res.Notes,
				fmt.Sprintf("sender %s: p75 gain %.1f%% (95%% CI %.1f%%..%.1f%%)",
					src, 100*ci.Gain, 100*ci.Lo, 100*ci.Hi))
		}
	}
	return res, nil
}

// ProbeSuite runs the control/Riptide cluster pair once and derives every
// probe-based artefact from it: Figures 12–14 (completion CDFs), Figures
// 15–16 (gain by percentile), and the Section IV-D edge cases. Use this
// instead of the individual runners when generating a full report.
func ProbeSuite(s Scale) ([]Result, error) {
	runs, err := runProbePair(s)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, 6)
	for _, fig := range []int{12, 13, 14} {
		r, err := probeCompletionFromRuns(fig, probeSizeForFigure[fig], runs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	for fig, size := range map[int]int{15: 50 * 1024, 16: 100 * 1024} {
		r, err := gainByPercentileFromRuns(fig, size, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	edge, err := edgeCasesFromRuns(runs)
	if err != nil {
		return nil, err
	}
	out = append(out, edge)
	// Map iteration above may reorder 15/16; normalize by ID.
	sortResultsByID(out)
	return out, nil
}

func sortResultsByID(rs []Result) {
	order := map[string]int{"fig12": 1, "fig13": 2, "fig14": 3, "fig15": 4, "fig16": 5, "edge": 6}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && order[rs[j].ID] < order[rs[j-1].ID]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// EdgeCases reproduces Section IV-D: best-case (minimum) probe times are
// essentially unchanged by Riptide; worst-case (maximum) times are noisy
// with no consistent trend.
func EdgeCases(s Scale) (Result, error) {
	runs, err := runProbePair(s)
	if err != nil {
		return Result{}, err
	}
	return edgeCasesFromRuns(runs)
}

func edgeCasesFromRuns(runs probeRuns) (Result, error) {
	const size = 100 * 1024
	type key struct{ src, dst string }
	minmax := func(records []cdn.ProbeRecord) (mins, maxs map[key]time.Duration) {
		mins = make(map[key]time.Duration)
		maxs = make(map[key]time.Duration)
		for _, p := range records {
			if p.SizeBytes != size || p.At < runs.warm {
				continue
			}
			// The paper's Section IV-D analyses the two vantage
			// PoPs, not the full mesh.
			if p.Src != senderPoPs[0] && p.Src != senderPoPs[1] {
				continue
			}
			k := key{p.Src, p.Dst}
			if cur, ok := mins[k]; !ok || p.Elapsed < cur {
				mins[k] = p.Elapsed
			}
			if cur, ok := maxs[k]; !ok || p.Elapsed > cur {
				maxs[k] = p.Elapsed
			}
		}
		return mins, maxs
	}
	cMin, cMax := minmax(runs.control)
	rMin, rMax := minmax(runs.riptide)

	tbl := Table{
		Title:  "Per-destination min/max 100KB probe change (riptide vs default)",
		Header: []string{"src", "dst", "min change %", "max change %"},
	}
	var minWithin5, minTotal int
	for k, cm := range cMin {
		rm, ok := rMin[k]
		if !ok || cm == 0 {
			continue
		}
		minTotal++
		minChange := 100 * float64(rm-cm) / float64(cm)
		if minChange >= -5 && minChange <= 5 {
			minWithin5++
		}
		maxChange := 0.0
		if cx, ok := cMax[k]; ok && cx > 0 {
			if rx, ok := rMax[k]; ok {
				maxChange = 100 * float64(rx-cx) / float64(cx)
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			k.src, k.dst,
			fmt.Sprintf("%+.1f", minChange),
			fmt.Sprintf("%+.1f", maxChange),
		})
	}
	if minTotal == 0 {
		return Result{}, fmt.Errorf("experiments: no destinations with both runs")
	}
	return Result{
		ID:     "edge",
		Title:  "Edge cases: best- and worst-case probe times (Section IV-D)",
		Tables: []Table{tbl},
		Notes: []string{
			fmt.Sprintf("%d/%d destinations show best-case change within ±5%% (paper: most unchanged)",
				minWithin5, minTotal),
		},
	}, nil
}

// Headline reproduces the abstract's summary numbers: the median live-cwnd
// increase and the tail-latency reduction for 50KB probes.
func Headline(s Scale) (Result, error) {
	s = s.withDefaults()
	organic := organicProfile(s.PoPs)

	collect := func(riptide bool) (*stats.CDF, []cdn.ProbeRecord, error) {
		cl, err := runCluster(s, cdn.RiptideOptions{Enabled: riptide}, organic, true)
		if err != nil {
			return nil, nil, err
		}
		cdf := stats.NewCDF(1024)
		for _, smp := range cl.CwndSamples() {
			if smp.OpenedAfterStart {
				cdf.Add(float64(smp.Cwnd))
			}
		}
		return cdf, cl.ProbeRecords(), nil
	}
	ctrlCwnd, ctrlProbes, err := collect(false)
	if err != nil {
		return Result{}, err
	}
	riptCwnd, riptProbes, err := collect(true)
	if err != nil {
		return Result{}, err
	}
	cm, err := ctrlCwnd.Median()
	if err != nil {
		return Result{}, err
	}
	rm, err := riptCwnd.Median()
	if err != nil {
		return Result{}, err
	}

	tail := func(records []cdn.ProbeRecord) (*stats.CDF, error) {
		c := stats.NewCDF(512)
		for _, p := range records {
			if p.SizeBytes == 50*1024 && p.At >= s.WarmUp {
				c.Add(float64(p.Elapsed.Milliseconds()))
			}
		}
		if c.Len() == 0 {
			return nil, fmt.Errorf("experiments: no 50KB probes")
		}
		return c, nil
	}
	ct, err := tail(ctrlProbes)
	if err != nil {
		return Result{}, err
	}
	rt, err := tail(riptProbes)
	if err != nil {
		return Result{}, err
	}
	ct75, err := ct.Percentile(75)
	if err != nil {
		return Result{}, err
	}
	rt75, err := rt.Percentile(75)
	if err != nil {
		return Result{}, err
	}

	res := Result{ID: "headline", Title: "Headline results (abstract / Section IV)"}
	if cm > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("median live cwnd: control %.0f vs riptide %.0f (+%.0f%%; paper: +200%%)", cm, rm, 100*(rm-cm)/cm))
	}
	if ct75 > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("50KB probe p75: control %.0f ms vs riptide %.0f ms (-%.0f%%; paper: up to ~30%% at upper percentiles)",
				ct75, rt75, 100*(ct75-rt75)/ct75))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("kernel default initial window: %d segments", kernel.DefaultInitCwnd))
	return res, nil
}
