package experiments

import (
	"testing"
)

// TestFleetWarmStartConvergence is the subsystem's acceptance test: a
// rebooted machine with fleet sharing must reach >=90% of its steady-state
// route coverage in at most 25% of the ticks the cold-start machine needs.
func TestFleetWarmStartConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	s := QuickScale().withDefaults()
	cold, err := fleetWarmStartRun(s, false)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	shared, err := fleetWarmStartRun(s, true)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	t.Logf("cold: steady=%d target=%d ticks=%d; fleet: steady=%d target=%d ticks=%d",
		cold.steady, cold.target, cold.ticks, shared.steady, shared.target, shared.ticks)
	if cold.steady == 0 || shared.steady == 0 {
		t.Fatal("a variant learned nothing at steady state")
	}
	// target is ceil(0.9*steady) by construction; the acceptance bound is
	// on the tick ratio.
	if 4*shared.ticks > cold.ticks {
		t.Fatalf("fleet sharing took %d ticks vs cold %d — more than 25%%", shared.ticks, cold.ticks)
	}
}

func TestFleetWarmStartResult(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	r, err := FleetWarmStart(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fleet-warmstart" {
		t.Errorf("ID = %q", r.ID)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 2 {
		t.Errorf("tables = %+v", r.Tables)
	}
	if len(r.Notes) == 0 {
		t.Error("no notes")
	}
}
