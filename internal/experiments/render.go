package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a human-readable report of a Result: its notes, tables, and
// a compact textual sketch of each series (a few sampled points), in the
// spirit of reading values off the paper's figures.
func Render(w io.Writer, r Result) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if err := renderTable(w, t); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if err := renderSeries(w, s); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func renderTable(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "  table: %s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		b.WriteString("    ")
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad+2))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func renderSeries(w io.Writer, s Series) error {
	if len(s.Points) == 0 {
		_, err := fmt.Fprintf(w, "  series %q: (empty)\n", s.Label)
		return err
	}
	// Sample up to 8 points across the curve.
	const maxPts = 8
	step := 1
	if len(s.Points) > maxPts {
		step = len(s.Points) / maxPts
	}
	var b strings.Builder
	for i := 0; i < len(s.Points); i += step {
		p := s.Points[i]
		fmt.Fprintf(&b, "(%.4g, %.3f) ", p.X, p.Y)
	}
	last := s.Points[len(s.Points)-1]
	fmt.Fprintf(&b, "(%.4g, %.3f)", last.X, last.Y)
	_, err := fmt.Fprintf(w, "  series %q: %s\n", s.Label, b.String())
	return err
}
