package experiments

import (
	"fmt"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/stats"
)

// Scenario experiments measure Riptide through operational incidents — the
// situations Section II argues make persistent connections untenable — by
// splitting probe completions into before/during/after phases around the
// scenario's disruption window.

// scenarioBuilder constructs a fresh Scenario for a cluster run (scenarios
// carry absolute schedule offsets, so both the control and Riptide clusters
// get identical copies).
type scenarioBuilder func() cdn.Scenario

// phase labels for the impact table.
const (
	phaseBefore = "before"
	phaseDuring = "during"
	phaseAfter  = "after"
)

// runScenario executes one cluster with the scenario installed and returns
// 50 KB probe completion CDFs per phase.
func runScenario(s Scale, riptide bool, build scenarioBuilder) (map[string]*stats.CDF, error) {
	cl, err := cdn.NewCluster(cdn.Config{
		PoPs:     s.PoPs,
		Seed:     s.Seed,
		LossRate: s.LossRate,
		Riptide:  cdn.RiptideOptions{Enabled: riptide},
		Traffic: cdn.TrafficOptions{
			ProbeInterval: time.Minute,
			IdleTimeout:   90 * time.Second,
			OrganicRates:  organicProfile(s.PoPs),
		},
	})
	if err != nil {
		return nil, err
	}
	sc := build()
	if err := sc.Apply(cl); err != nil {
		return nil, err
	}
	start, end := sc.Window()
	total := end + s.Duration/2
	if total < s.Duration {
		total = s.Duration
	}
	cl.Run(total)
	cl.Stop()

	// Focus on probes that involve the disrupted sites; mesh-wide pooling
	// would dilute the incident into noise on large topologies.
	affected := map[string]bool{}
	for _, name := range sc.AffectedPoPs() {
		affected[name] = true
	}

	phases := map[string]*stats.CDF{
		phaseBefore: stats.NewCDF(128),
		phaseDuring: stats.NewCDF(128),
		phaseAfter:  stats.NewCDF(128),
	}
	for _, p := range cl.ProbeRecords() {
		if p.SizeBytes != 50*1024 {
			continue
		}
		if !affected[p.Src] && !affected[p.Dst] {
			continue
		}
		switch {
		case p.At < start:
			phases[phaseBefore].Add(float64(p.Elapsed.Milliseconds()))
		case p.At < end:
			phases[phaseDuring].Add(float64(p.Elapsed.Milliseconds()))
		default:
			phases[phaseAfter].Add(float64(p.Elapsed.Milliseconds()))
		}
	}
	return phases, nil
}

// ScenarioImpact runs the named scenario against matched control and
// Riptide clusters and tabulates per-phase 50 KB probe medians.
func ScenarioImpact(name string, s Scale) (Result, error) {
	s = s.withDefaults()
	build, title, err := scenarioByName(name, s)
	if err != nil {
		return Result{}, err
	}

	control, err := runScenario(s, false, build)
	if err != nil {
		return Result{}, err
	}
	riptide, err := runScenario(s, true, build)
	if err != nil {
		return Result{}, err
	}

	tbl := Table{
		Title:  title,
		Header: []string{"phase", "control median (ms)", "riptide median (ms)", "riptide gain"},
	}
	res := Result{ID: "scenario-" + name, Title: "Scenario: " + title}
	for _, phase := range []string{phaseBefore, phaseDuring, phaseAfter} {
		cc, rc := control[phase], riptide[phase]
		if cc.Len() == 0 || rc.Len() == 0 {
			tbl.Rows = append(tbl.Rows, []string{phase, "-", "-", "-"})
			continue
		}
		cm, err := cc.Median()
		if err != nil {
			return Result{}, err
		}
		rm, err := rc.Median()
		if err != nil {
			return Result{}, err
		}
		gain := "-"
		if cm > 0 {
			gain = fmt.Sprintf("%+.1f%%", 100*(cm-rm)/cm)
		}
		tbl.Rows = append(tbl.Rows, []string{
			phase, fmt.Sprintf("%.0f", cm), fmt.Sprintf("%.0f", rm), gain,
		})
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: control %.0f ms vs riptide %.0f ms (%s)", phase, cm, rm, gain))
	}
	res.Tables = []Table{tbl}
	return res, nil
}

// scenarioByName builds the canonical parameterization of each scenario at
// the given scale.
func scenarioByName(name string, s Scale) (scenarioBuilder, string, error) {
	// Anchor the disruption a third of the way into the measurement.
	at := s.Duration / 3
	dur := s.Duration / 3
	switch name {
	case "flashcrowd":
		return func() cdn.Scenario {
			return cdn.FlashCrowd{
				Target:     "lhr",
				At:         at,
				For:        dur,
				RatePerPoP: 2,
			}
		}, "flash crowd onto lhr", nil
	case "degradation":
		return func() cdn.Scenario {
			return cdn.RegionalDegradation{
				PoP:          "nrt",
				At:           at,
				For:          dur,
				LossRate:     0.05,
				BaselineLoss: s.LossRate,
			}
		}, "regional degradation at nrt (5% loss)", nil
	case "reboots":
		pops := make([]string, 0, 2)
		for _, p := range s.PoPs {
			if p.Name == "lhr" || p.Name == "jfk" {
				pops = append(pops, p.Name)
			}
		}
		if len(pops) == 0 {
			return nil, "", fmt.Errorf("experiments: reboot scenario needs lhr/jfk in topology")
		}
		return func() cdn.Scenario {
			return cdn.RollingReboots{
				PoPs:     pops,
				Start:    at,
				Interval: 2 * time.Minute,
			}
		}, "rolling reboots of lhr and jfk", nil
	default:
		return nil, "", fmt.Errorf("experiments: unknown scenario %q (want flashcrowd|degradation|reboots)", name)
	}
}

// ScenarioNames lists the available scenarios in canonical order.
func ScenarioNames() []string { return []string{"flashcrowd", "degradation", "reboots"} }
