package experiments

import (
	"testing"
)

func TestScenarioImpactUnknown(t *testing.T) {
	if _, err := ScenarioImpact("volcano", QuickScale()); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestScenarioNames(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if _, _, err := scenarioByName(n, QuickScale().withDefaults()); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestScenarioImpactAll(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario clusters in -short mode")
	}
	for _, name := range ScenarioNames() {
		r, err := ScenarioImpact(name, QuickScale())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 3 {
			t.Errorf("%s result = %+v", name, r)
		}
	}
}
