package experiments

import (
	"strconv"
	"testing"
)

func firstColumn(t *testing.T, r Result) []string {
	t.Helper()
	if len(r.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(r.Tables))
	}
	var out []string
	for _, row := range r.Tables[0].Rows {
		if len(row) != 4 {
			t.Fatalf("row = %v, want 4 columns", row)
		}
		for _, cell := range row[1:3] {
			if v, err := strconv.ParseFloat(cell, 64); err != nil || v <= 0 {
				t.Fatalf("non-positive metric %q in row %v", cell, row)
			}
		}
		out = append(out, row[0])
	}
	return out
}

func TestAblationCombiners(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs in -short mode")
	}
	r, err := AblationCombiners(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	labels := firstColumn(t, r)
	if len(labels) != 4 {
		t.Fatalf("variants = %v, want control + 3 combiners", labels)
	}
	// Control must be the slowest at the median: any combiner beats it.
	rows := r.Tables[0].Rows
	control, err := strconv.ParseFloat(rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= control {
			t.Errorf("variant %q median %v not better than control %v", row[0], v, control)
		}
	}
}

func TestAblationHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs in -short mode")
	}
	r, err := AblationHistory(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	labels := firstColumn(t, r)
	if len(labels) != 1+len(AlphaSweep) {
		t.Fatalf("variants = %v", labels)
	}
}

func TestAblationGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs in -short mode")
	}
	r, err := AblationGranularity(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Coarser routes must program no more routes than finer ones: route
	// aggregation is the point of prefix granularity.
	r32, err := strconv.ParseUint(rows[0][3], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := strconv.ParseUint(rows[2][3], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r16 > r32 {
		t.Errorf("/16 programmed %d routes vs /32's %d; aggregation should not increase effort", r16, r32)
	}
}

func TestAblationTTLAndInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs in -short mode")
	}
	r, err := AblationTTL(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(firstColumn(t, r)); got != len(TTLSweep) {
		t.Errorf("ttl variants = %d", got)
	}
	r, err = AblationUpdateInterval(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(firstColumn(t, r)); got != len(IntervalSweep) {
		t.Errorf("interval variants = %d", got)
	}
}
