package experiments

import (
	"strings"
	"testing"

	"riptide/internal/cdn"
	"riptide/internal/stats"
)

func TestFig2FileSizes(t *testing.T) {
	if _, err := Fig2FileSizes(1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	r, err := Fig2FileSizes(1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig2" || len(r.Series) != 1 || len(r.Series[0].Points) == 0 {
		t.Fatalf("result = %+v", r)
	}
	// CDF must be monotone and end at 1.
	pts := r.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("fig2 CDF not monotone at %d", i)
		}
	}
	if pts[len(pts)-1].Y < 0.999 {
		t.Errorf("fig2 CDF tail = %v", pts[len(pts)-1].Y)
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "%") {
		t.Errorf("notes = %v", r.Notes)
	}
}

func TestFig3RTTsCDF(t *testing.T) {
	r, err := Fig3RTTsCDF(2, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(InitCwnds) {
		t.Fatalf("series = %d, want %d", len(r.Series), len(InitCwnds))
	}
	// Larger initcwnd curves must dominate (higher CDF at each x): compare
	// fraction completing in <= 1 RTT.
	frac1 := func(s Series) float64 {
		for _, p := range s.Points {
			if p.X >= 1 {
				return p.Y
			}
		}
		return 0
	}
	for i := 1; i < len(r.Series); i++ {
		if frac1(r.Series[i]) < frac1(r.Series[i-1])-0.01 {
			t.Errorf("series %q first-RTT fraction below %q", r.Series[i].Label, r.Series[i-1].Label)
		}
	}
	if len(r.Notes) < 3 {
		t.Errorf("notes = %v", r.Notes)
	}
}

func TestFig4TheoreticalGain(t *testing.T) {
	r, err := Fig4TheoreticalGain()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		sawPositive := false
		for _, p := range s.Points {
			if p.Y < 0 || p.Y >= 1 {
				t.Fatalf("%s gain %v out of [0,1)", s.Label, p.Y)
			}
			if p.Y > 0.3 {
				sawPositive = true
			}
			// Below the default window there is no gain.
			if p.X <= 14480 && p.Y != 0 {
				t.Fatalf("%s gain %v below default window at %v bytes", s.Label, p.Y, p.X)
			}
		}
		if !sawPositive {
			t.Errorf("%s never exceeds 30%% gain", s.Label)
		}
		// Gains must fade for very large files (paper: diminishing beyond ~1MB).
		last := s.Points[len(s.Points)-1]
		if last.Y > 0.5 {
			t.Errorf("%s gain at %v bytes = %v, want fading", s.Label, last.X, last.Y)
		}
	}
}

func TestFig5RTTDistribution(t *testing.T) {
	r, err := Fig5RTTDistribution(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 1 || len(r.Notes) != 1 {
		t.Fatalf("result = %+v", r)
	}
	if _, err := Fig5RTTDistribution(cdn.DefaultTopology()[:1]); err == nil {
		t.Error("single PoP accepted")
	}
}

func TestFig6TransferTime(t *testing.T) {
	r, err := Fig6TransferTime(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(InitCwnds) {
		t.Fatalf("series = %d", len(r.Series))
	}
	if len(r.Notes) != 2 {
		t.Fatalf("notes = %v", r.Notes)
	}
	// The median-gap note must report a positive saving.
	if !strings.Contains(r.Notes[0], "+") {
		t.Errorf("note = %q", r.Notes[0])
	}
}

func TestTable2Census(t *testing.T) {
	r := Table2Census(nil)
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 5 {
		t.Fatalf("tables = %+v", r.Tables)
	}
	want := map[string]string{
		"Europe":        "10",
		"North America": "11",
		"South America": "1",
		"Asia":          "9",
		"Oceania":       "3",
	}
	for _, row := range r.Tables[0].Rows {
		if want[row[0]] != row[1] {
			t.Errorf("census row %v, want %s", row, want[row[0]])
		}
	}
}

func TestFig10CwndByCmaxQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep in -short mode")
	}
	r, err := Fig10CwndByCmax(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 1+len(CmaxSweep) {
		t.Fatalf("series = %d, want control + %d sweeps", len(r.Series), len(CmaxSweep))
	}
	if len(r.Notes) < 3 {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestFig11TrafficProfilesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	r, err := Fig11TrafficProfiles(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
}

func TestProbeCompletionFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	if _, err := ProbeCompletionFigure(9, QuickScale()); err == nil {
		t.Error("bogus figure accepted")
	}
	runs, err := runProbePair(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for fig, size := range probeSizeForFigure {
		r, err := probeCompletionFromRuns(fig, size, runs)
		if err != nil {
			t.Fatalf("fig%d: %v", fig, err)
		}
		if len(r.Series) == 0 {
			t.Errorf("fig%d: no series", fig)
		}
	}
}

func TestGainByPercentileQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	if _, err := GainByPercentileFigure(3, QuickScale()); err == nil {
		t.Error("bogus figure accepted")
	}
	runs, err := runProbePair(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for fig, size := range map[int]int{15: 50 * 1024, 16: 100 * 1024} {
		r, err := gainByPercentileFromRuns(fig, size, runs)
		if err != nil {
			t.Fatalf("fig%d: %v", fig, err)
		}
		if len(r.Series) != 2 {
			t.Errorf("fig%d series = %d, want 2 senders", fig, len(r.Series))
		}
		for _, s := range r.Series {
			if len(s.Points) != 19 {
				t.Errorf("fig%d %s points = %d, want 19 (5%% steps)", fig, s.Label, len(s.Points))
			}
		}
	}
}

func TestEdgeCasesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	runs, err := runProbePair(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	r, err := edgeCasesFromRuns(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) == 0 {
		t.Fatalf("tables = %+v", r.Tables)
	}
}

func TestHeadlineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	r, err := Headline(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) < 2 {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestRender(t *testing.T) {
	r := Result{
		ID:    "test",
		Title: "Test result",
		Notes: []string{"a note"},
		Tables: []Table{{
			Title:  "t",
			Header: []string{"col1", "column2"},
			Rows:   [][]string{{"a", "b"}, {"longer", "x"}},
		}},
		Series: []Series{
			{Label: "empty"},
			{Label: "curve", Points: []stats.Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}}},
		},
	}
	var sb strings.Builder
	if err := Render(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== test:", "a note", "col1", "longer", "empty"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestScaleDefaults(t *testing.T) {
	s := Scale{}.withDefaults()
	if s.Duration == 0 || s.LossRate == 0 || s.WarmUp == 0 || len(s.PoPs) != 34 {
		t.Errorf("defaults = %+v", s)
	}
	q := QuickScale()
	if len(q.PoPs) != 6 {
		t.Errorf("quick scale PoPs = %d", len(q.PoPs))
	}
}

func TestProbeSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	results, err := ProbeSuite(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig12", "fig13", "fig14", "fig15", "fig16", "edge"}
	if len(results) != len(wantIDs) {
		t.Fatalf("results = %d, want %d", len(results), len(wantIDs))
	}
	for i, want := range wantIDs {
		if results[i].ID != want {
			t.Errorf("result %d = %s, want %s (order must be deterministic)", i, results[i].ID, want)
		}
	}
}

func TestEdgeCasesEntryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	r, err := EdgeCases(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "edge" || len(r.Tables) != 1 {
		t.Fatalf("result = %+v", r)
	}
}
