package experiments

import (
	"strconv"
	"testing"
)

func TestExtensionTrendReaction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	r, err := ExtensionTrendReaction(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 2 {
		t.Fatalf("result = %+v", r)
	}
	// The trend policy must react no slower than plain EWMA.
	parse := func(s string) float64 {
		if s == "never" {
			return 1e18
		}
		d, err := strconv.ParseFloat(s[:len(s)-1], 64)
		if err != nil {
			return 1e18
		}
		return d
	}
	_ = parse
	rows := r.Tables[0].Rows
	if rows[1][2] == "never" && rows[0][2] != "never" {
		t.Errorf("trend policy never reacted but EWMA did: %v", rows)
	}
}

func TestExtensionAdvisorShift(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	r, err := ExtensionAdvisorShift(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 2 {
		t.Fatalf("result = %+v", r)
	}
	plain, err := strconv.ParseInt(r.Tables[0].Rows[0][1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	damped, err := strconv.ParseInt(r.Tables[0].Rows[1][1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if damped > plain {
		t.Errorf("advisor damping increased retransmits: %d > %d", damped, plain)
	}
}
