// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment returns a structured Result (series of CDF
// points and/or tables of rows) that the cmd/ tools render as text and the
// benchmark harness regenerates.
//
// Figures 2–6 come from the paper's closed-form transfer model over the
// published distributions; Figure 10 onward come from full cluster
// simulations (internal/cdn) run once with Riptide and once as a control.
package experiments

import (
	"fmt"
	"math"

	"riptide/internal/cdn"
	"riptide/internal/model"
	"riptide/internal/stats"
	"riptide/internal/workload"
)

// Series is one labelled curve (typically a CDF).
type Series struct {
	Label  string        `json:"label"`
	Points []stats.Point `json:"points"`
}

// Table is one labelled grid of rows.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Result is the output of one experiment.
type Result struct {
	// ID is the paper artefact this reproduces ("fig3", "table2", ...).
	ID string `json:"id"`
	// Title describes the artefact.
	Title  string   `json:"title"`
	Series []Series `json:"series,omitempty"`
	Tables []Table  `json:"tables,omitempty"`
	// Notes carry headline statistics for EXPERIMENTS.md ("median +X%").
	Notes []string `json:"notes,omitempty"`
}

// InitCwnds are the initial windows the paper's model figures sweep.
var InitCwnds = []int{10, 25, 50, 100}

// curvePoints is the resolution of rendered CDFs.
const curvePoints = 60

// Fig2FileSizes reproduces Figure 2: the CDF of object sizes in a
// production CDN, with the headline statistic that ~54% of files exceed the
// default 10-segment initial window.
func Fig2FileSizes(seed int64, n int) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("experiments: n %d must be >= 1", n)
	}
	rng := workload.NewRand(seed)
	sizes := workload.CDNFileSizes()
	c := stats.NewCDF(n)
	over := 0
	for i := 0; i < n; i++ {
		v := sizes.Sample(rng)
		c.Add(v)
		if v > float64(workload.DefaultIWBytes) {
			over++
		}
	}
	frac := float64(over) / float64(n)
	return Result{
		ID:     "fig2",
		Title:  "Distribution of file size in a production CDN",
		Series: []Series{{Label: "file size (bytes)", Points: logCurve(c, curvePoints)}},
		Notes: []string{
			fmt.Sprintf("%.1f%% of files exceed the default initial window (%d bytes); paper reports 54%%",
				100*frac, workload.DefaultIWBytes),
		},
	}, nil
}

// Fig3RTTsCDF reproduces Figure 3: the CDF of round trips needed to deliver
// the Figure 2 size mix for initcwnd 10/25/50/100, assuming the paper's
// lossless model.
func Fig3RTTsCDF(seed int64, n int) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("experiments: n %d must be >= 1", n)
	}
	rng := workload.NewRand(seed)
	sizes := workload.CDNFileSizes()
	files := make([]int64, n)
	for i := range files {
		files[i] = int64(sizes.Sample(rng))
	}

	res := Result{ID: "fig3", Title: "RTTs needed to transfer files of various sizes (lossless model)"}
	firstRTT := make(map[int]float64, len(InitCwnds))
	for _, iw := range InitCwnds {
		p := model.Params{MSS: workload.DefaultMSS, InitCwnd: iw}
		c := stats.NewCDF(n)
		ones := 0
		for _, f := range files {
			rtts, err := model.RTTsToComplete(f, p)
			if err != nil {
				return Result{}, err
			}
			c.Add(float64(rtts))
			if rtts <= 1 {
				ones++
			}
		}
		firstRTT[iw] = float64(ones) / float64(n)
		res.Series = append(res.Series, Series{
			Label:  fmt.Sprintf("initcwnd %d", iw),
			Points: c.Curve(curvePoints),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("first-RTT completion: IW10 %.1f%%, IW25 %.1f%%, IW50 %.1f%%, IW100 %.1f%%",
			100*firstRTT[10], 100*firstRTT[25], 100*firstRTT[50], 100*firstRTT[100]),
		fmt.Sprintf("IW50 completes %.1f%% more files in one RTT than IW10 (paper: ~31%%)",
			100*(firstRTT[50]-firstRTT[10])),
		fmt.Sprintf("IW100 leaves %.1f%% needing more than one RTT (paper: ~15%%)",
			100*(1-firstRTT[100])))
	return res, nil
}

// Fig4SizeSteps are the file sizes swept in Figure 4.
func Fig4SizeSteps() []int64 {
	var out []int64
	for kb := int64(1); kb <= 4096; {
		out = append(out, kb*1024)
		switch {
		case kb < 64:
			kb += 3
		case kb < 512:
			kb += 16
		default:
			kb += 128
		}
	}
	return out
}

// Fig4TheoreticalGain reproduces Figure 4: percentage reduction in RTTs
// versus the default window for initcwnd 25/50/100 across file sizes,
// showing the gains concentrate between 15 KB and ~1 MB.
func Fig4TheoreticalGain() (Result, error) {
	res := Result{ID: "fig4", Title: "Theoretical gain (reduction in RTTs) vs initcwnd 10"}
	sizes := Fig4SizeSteps()
	for _, iw := range []int{25, 50, 100} {
		pts := make([]stats.Point, 0, len(sizes))
		for _, sz := range sizes {
			g, err := model.Gain(sz, workload.DefaultMSS, 10, iw)
			if err != nil {
				return Result{}, err
			}
			pts = append(pts, stats.Point{X: float64(sz), Y: g})
		}
		res.Series = append(res.Series, Series{Label: fmt.Sprintf("initcwnd %d", iw), Points: pts})
	}

	// Locate the gain band for the notes.
	g100at100KB, err := model.Gain(100*1024, workload.DefaultMSS, 10, 100)
	if err != nil {
		return Result{}, err
	}
	g100at10KB, err := model.Gain(10*1024, workload.DefaultMSS, 10, 100)
	if err != nil {
		return Result{}, err
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("gain at 10KB: %.0f%% (below default window, no benefit)", 100*g100at10KB),
		fmt.Sprintf("gain at 100KB with IW100: %.0f%% (inside the 15KB-1MB band)", 100*g100at100KB))
	return res, nil
}

// Fig5RTTDistribution reproduces Figure 5: the CDF of RTTs between the
// deployment's datacenters, median above 125 ms.
func Fig5RTTDistribution(pops []cdn.PoP) (Result, error) {
	if len(pops) == 0 {
		pops = cdn.DefaultTopology()
	}
	if len(pops) < 2 {
		return Result{}, fmt.Errorf("experiments: need >= 2 PoPs")
	}
	rtts := cdn.PairRTTs(pops)
	c := stats.NewCDF(len(rtts))
	for _, r := range rtts {
		c.Add(float64(r.Milliseconds()))
	}
	med, err := c.Median()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "fig5",
		Title:  "RTT variation between globally deployed datacenters",
		Series: []Series{{Label: "inter-PoP RTT (ms)", Points: c.Curve(curvePoints)}},
		Notes: []string{
			fmt.Sprintf("median inter-PoP RTT %.0f ms; paper reports 50%% of links > 125 ms", med),
		},
	}, nil
}

// Fig6TransferTime reproduces Figure 6: total transfer time for a 100 KB
// file across the Figure 5 RTT distribution for each initcwnd.
func Fig6TransferTime(pops []cdn.PoP) (Result, error) {
	if len(pops) == 0 {
		pops = cdn.DefaultTopology()
	}
	rtts := cdn.PairRTTs(pops)
	if len(rtts) == 0 {
		return Result{}, fmt.Errorf("experiments: need >= 2 PoPs")
	}
	const fileBytes = 100 * 1024
	res := Result{ID: "fig6", Title: "Total transfer time for a 100KB file over different initcwnds"}
	curves := make(map[int]*stats.CDF, len(InitCwnds))
	for _, iw := range InitCwnds {
		p := model.Params{MSS: workload.DefaultMSS, InitCwnd: iw}
		c := stats.NewCDF(len(rtts))
		for _, rtt := range rtts {
			d, err := model.TransferTime(fileBytes, rtt, p, false)
			if err != nil {
				return Result{}, err
			}
			c.Add(float64(d.Milliseconds()))
		}
		curves[iw] = c
		res.Series = append(res.Series, Series{
			Label:  fmt.Sprintf("initcwnd %d", iw),
			Points: c.Curve(curvePoints),
		})
	}
	med10, err := curves[10].Median()
	if err != nil {
		return Result{}, err
	}
	med100, err := curves[100].Median()
	if err != nil {
		return Result{}, err
	}
	p90of10, err := curves[10].Percentile(90)
	if err != nil {
		return Result{}, err
	}
	p90of100, err := curves[100].Percentile(90)
	if err != nil {
		return Result{}, err
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("median transfer: IW10 %.0f ms vs IW100 %.0f ms (+%.0f ms; paper: ~280 ms)",
			med10, med100, med10-med100),
		fmt.Sprintf("p90 transfer: IW10 %.0f ms vs IW100 %.0f ms (+%.0f ms, %.0f%%; paper: ~290 ms, ~100%%)",
			p90of10, p90of100, p90of10-p90of100, 100*(p90of10-p90of100)/p90of100))
	return res, nil
}

// Table2Census reproduces Table II: PoPs per continent.
func Table2Census(pops []cdn.PoP) Result {
	if len(pops) == 0 {
		pops = cdn.DefaultTopology()
	}
	census := cdn.Census(pops)
	order := []cdn.Continent{cdn.Europe, cdn.NorthAmerica, cdn.SouthAmerica, cdn.Asia, cdn.Oceania}
	tbl := Table{Title: "CDN PoPs with Riptide deployed", Header: []string{"Continent", "PoP Count"}}
	total := 0
	for _, cont := range order {
		tbl.Rows = append(tbl.Rows, []string{cont.String(), fmt.Sprintf("%d", census[cont])})
		total += census[cont]
	}
	return Result{
		ID:     "table2",
		Title:  "CDN PoPs with Riptide deployed (Table II)",
		Tables: []Table{tbl},
		Notes:  []string{fmt.Sprintf("%d PoPs total (paper: 34)", total)},
	}
}

// logCurve renders a CDF against log-spaced X values, which reads better
// for heavy-tailed size distributions.
func logCurve(c *stats.CDF, n int) []stats.Point {
	if c.Len() == 0 || n < 2 {
		return nil
	}
	lo, err := c.Min()
	if err != nil {
		return nil
	}
	hi, err := c.Max()
	if err != nil {
		return nil
	}
	if lo <= 0 {
		lo = 1
	}
	pts := make([]stats.Point, 0, n)
	ratio := hi / lo
	for i := 0; i < n; i++ {
		x := lo * math.Pow(ratio, float64(i)/float64(n-1))
		pts = append(pts, stats.Point{X: x, Y: c.At(x)})
	}
	return pts
}
