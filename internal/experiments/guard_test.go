package experiments

import (
	"testing"
)

// TestGuardCapacityCut asserts the PR's acceptance bounds: the governed
// agent quarantines the degraded destination within 10 ticks of the
// regression, keeps >= 90% of healthy destinations programmed, and beats
// the ungoverned control on post-cut retransmits.
func TestGuardCapacityCut(t *testing.T) {
	o, err := RunGuardCapacityCut(7)
	if err != nil {
		t.Fatal(err)
	}
	if o.PreCutWindow <= 10 {
		t.Errorf("pre-cut learned window = %d, want > kernel default 10 (no jump-start, no scenario)", o.PreCutWindow)
	}
	if o.TicksToQuarantine == 0 {
		t.Fatal("governor never quarantined the degraded destination")
	}
	if o.TicksToQuarantine > 10 {
		t.Errorf("quarantine took %d ticks, want <= 10", o.TicksToQuarantine)
	}
	if o.HealthyTotal == 0 || float64(o.HealthyProgrammed) < 0.9*float64(o.HealthyTotal) {
		t.Errorf("healthy destinations programmed = %d/%d, want >= 90%%", o.HealthyProgrammed, o.HealthyTotal)
	}
	if o.GovernedRetrans >= o.UngovernedRetrans {
		t.Errorf("governed retransmits %d not below ungoverned %d", o.GovernedRetrans, o.UngovernedRetrans)
	}
}

func TestGuardCapacityCutResult(t *testing.T) {
	res, err := GuardCapacityCut(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "guard" || len(res.Tables) != 1 || len(res.Tables[0].Rows) != 3 {
		t.Errorf("result shape = %+v", res)
	}
	if len(res.Notes) != 3 {
		t.Errorf("notes = %v", res.Notes)
	}
}
