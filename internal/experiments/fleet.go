package experiments

import (
	"fmt"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/core"
)

// The fleet warm-start experiment quantifies the cold-start penalty fleet
// sharing (internal/fleet) removes: a machine reboots inside a PoP whose
// sibling machine has a fully learned table, and we count how many agent
// ticks the rebooted agent needs to re-cover its steady-state route set —
// once learning only from its own observations, once also merging its
// sibling's snapshots, as riptided's -peers loop does in production.

// fleetSharingInterval is the simulated peer-exchange cadence; comfortably
// tighter than the probe cadence, as in a real deployment.
const fleetSharingInterval = 5 * time.Second

// fleetOutcome is one variant's convergence measurement.
type fleetOutcome struct {
	// steady is the rebooted machine's programmed-route count just before
	// the reboot; target is the 90%-coverage goal derived from it.
	steady, target int
	// ticks is how many 1 s agent ticks the machine needed after the
	// reboot to program target routes again.
	ticks int
}

// fleetWarmStartRun measures one variant: build a 2-machine-per-PoP cluster
// with probe-only traffic, reach steady state, reboot one machine of the
// measurement PoP, and count ticks until it re-covers 90% of its
// pre-reboot route set.
func fleetWarmStartRun(s Scale, share bool) (fleetOutcome, error) {
	c, err := cdn.NewCluster(cdn.Config{
		PoPs:        s.PoPs,
		HostsPerPoP: 2,
		Seed:        s.Seed,
		LossRate:    s.LossRate,
		// A TTL well above the probe cadence: entries persist between
		// rounds, so recovery speed is set by how fast observations (or
		// peer snapshots) arrive, not by expiry churn.
		Riptide: cdn.RiptideOptions{Enabled: true, TTL: 10 * time.Minute},
		Traffic: cdn.TrafficOptions{
			// Probe-only traffic at a slow cadence is the worst case for
			// cold starts — the paper's hourly-probe regime, compressed.
			ProbeInterval: 2 * time.Minute,
			IdleTimeout:   time.Minute,
		},
	})
	if err != nil {
		return fleetOutcome{}, err
	}
	defer c.Stop()
	if share {
		if err := c.EnableFleetSharing(fleetSharingInterval, core.MergePolicy{}); err != nil {
			return fleetOutcome{}, err
		}
	}

	pop := fleetMeasurementPoP(s.PoPs)
	warm := s.WarmUp
	if warm < 10*time.Minute {
		// At least a few probe rounds so the table is genuinely steady.
		warm = 10 * time.Minute
	}
	c.Run(warm)

	agent := c.AgentAt(pop, 0)
	if agent == nil {
		return fleetOutcome{}, fmt.Errorf("experiments: no agent at %s[0]", pop)
	}
	steady := len(agent.Entries())
	if steady == 0 {
		return fleetOutcome{}, fmt.Errorf("experiments: agent at %s[0] learned nothing during warm-up", pop)
	}
	target := (steady*9 + 9) / 10 // ceil(0.9 * steady)

	if _, err := c.RebootHost(pop, 0); err != nil {
		return fleetOutcome{}, err
	}

	// The agent ticks once per simulated second; advance second by second
	// and count ticks until coverage recovers.
	const maxTicks = 3600
	ticks := 0
	for ticks < maxTicks {
		c.Run(time.Second)
		ticks++
		if len(c.AgentAt(pop, 0).Entries()) >= target {
			return fleetOutcome{steady: steady, target: target, ticks: ticks}, nil
		}
	}
	return fleetOutcome{}, fmt.Errorf("experiments: %s[0] did not re-cover %d/%d routes within %d ticks (share=%v)",
		pop, target, steady, maxTicks, share)
}

// fleetMeasurementPoP picks the PoP whose machine is rebooted: lhr when
// present (matching the other cluster experiments' vantage), else the first.
func fleetMeasurementPoP(pops []cdn.PoP) string {
	for _, p := range pops {
		if p.Name == "lhr" {
			return p.Name
		}
	}
	return pops[0].Name
}

// FleetWarmStart measures restart convergence with and without fleet
// sharing: how many ticks a rebooted machine needs to re-program 90% of its
// steady-state route set when it must re-observe everything itself, versus
// when it merges snapshots from its PoP sibling.
func FleetWarmStart(s Scale) (Result, error) {
	s = s.withDefaults()
	cold, err := fleetWarmStartRun(s, false)
	if err != nil {
		return Result{}, err
	}
	shared, err := fleetWarmStartRun(s, true)
	if err != nil {
		return Result{}, err
	}
	ratio := float64(shared.ticks) / float64(cold.ticks)

	tbl := Table{
		Title:  "Ticks to re-cover 90% of steady-state routes after a machine reboot",
		Header: []string{"variant", "steady routes", "90% target", "ticks to recover"},
		Rows: [][]string{
			{"cold restart", fmt.Sprintf("%d", cold.steady), fmt.Sprintf("%d", cold.target), fmt.Sprintf("%d", cold.ticks)},
			{"fleet sharing", fmt.Sprintf("%d", shared.steady), fmt.Sprintf("%d", shared.target), fmt.Sprintf("%d", shared.ticks)},
		},
	}
	return Result{
		ID:     "fleet-warmstart",
		Title:  "Fleet sharing: restart convergence vs cold start",
		Tables: []Table{tbl},
		Notes: []string{
			fmt.Sprintf("cold restart re-covered %d/%d routes in %d ticks; fleet sharing in %d ticks (%.0f%% of cold)",
				cold.target, cold.steady, cold.ticks, shared.ticks, 100*ratio),
			fmt.Sprintf("fleet sharing reached 90%% coverage in %.1fx fewer ticks", float64(cold.ticks)/float64(shared.ticks)),
		},
	}, nil
}
