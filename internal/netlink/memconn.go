package netlink

import (
	"errors"
	"fmt"
	"net/netip"

	"riptide/internal/core"
)

// DefaultMemConnMTU is how many bytes MemConn packs into one dump response
// datagram, matching the ~32KiB skb batches real kernels send.
const DefaultMemConnMTU = 32 << 10

// errWouldBlock is returned by MemConn.Receive when no response is queued —
// the in-memory analog of a receive timeout.
var errWouldBlock = errors.New("memconn: no pending response (would block)")

// MemConn is an in-memory netlink kernel serving canned responses: sock_diag
// dump requests are answered from Sockets, RTM_GETROUTE dumps from
// InstalledRoutes, and RTM_NEWROUTE/RTM_DELROUTE messages are decoded,
// recorded into Routes, and acked. It lets the full Sampler and Routes
// machinery — encode, syscall-shaped send/receive framing, decode — run on
// any GOOS and under benchmarks without a kernel.
//
// Dump datagrams are encoded once and replayed per request (sequence numbers
// patched during Receive's copy-out), so steady-state sampling through a
// MemConn is allocation-free on both sides of the Conn boundary.
type MemConn struct {
	// Sockets is the connection table served to sock_diag dumps.
	Sockets []core.Observation
	// InstalledRoutes is the routing table served to RTM_GETROUTE dumps.
	InstalledRoutes []RecordedRoute
	// AckErrno, when set, chooses the errno acked for each route message
	// (parsed reports whether the message decoded). Nil acks success for
	// decodable messages and EINVAL otherwise.
	AckErrno func(rt RecordedRoute, parsed bool) Errno
	// DiscardRoutes disables recording into Routes (for benchmarks, which
	// would otherwise grow it unboundedly).
	DiscardRoutes bool
	// MTU caps dump response datagram size; 0 means DefaultMemConnMTU.
	MTU int
	// Routes records every decoded RTM_NEWROUTE/RTM_DELROUTE received.
	Routes []RecordedRoute
	// SendErr / RecvErr, when set, are returned by Send / Receive to
	// exercise conversation-failure paths.
	SendErr error
	RecvErr error

	// dumps caches the encoded per-family sock_diag response datagrams
	// (sequence fields zero, patched at Receive).
	dumps   map[uint8][][]byte
	doneMsg []byte
	// pending is the response queue; head avoids reslicing so the backing
	// array is reused across requests.
	pending [][]byte
	head    int
	ackBuf  []byte
	dumpSeq uint32
	closed  bool
}

// Dialer returns a DialFunc handing out this MemConn for any protocol —
// plug it into SamplerConfig.Dial / RoutesConfig.Dial.
func (m *MemConn) Dialer() DialFunc {
	return func(proto int) (Conn, error) {
		m.closed = false
		return m, nil
	}
}

// Send implements Conn: it parses every message in the request datagram and
// queues the responses a kernel would send.
func (m *MemConn) Send(req []byte) error {
	if m.closed {
		return errors.New("memconn: send on closed conn")
	}
	if m.SendErr != nil {
		return m.SendErr
	}
	if m.head == len(m.pending) {
		m.pending = m.pending[:0]
		m.head = 0
	}
	m.ackBuf = m.ackBuf[:0]
	for len(req) >= nlHdrLen {
		mlen := int(ne.Uint32(req))
		typ := ne.Uint16(req[4:])
		flags := ne.Uint16(req[6:])
		seq := ne.Uint32(req[8:])
		if mlen < nlHdrLen || mlen > len(req) {
			return fmt.Errorf("memconn: malformed request message (len %d of %d)", mlen, len(req))
		}
		payload := req[nlHdrLen:mlen]
		hdr := req[:nlHdrLen]
		req = req[min(nlaAlign(mlen), len(req)):]
		switch typ {
		case sockDiagByFamily:
			if flags&nlmFDump == 0 || len(payload) < diagReqLen {
				return fmt.Errorf("memconn: unsupported sock_diag request (flags %#x)", flags)
			}
			m.dumpSeq = seq
			m.ensureDumps()
			m.pending = append(m.pending, m.dumps[payload[0]]...)
			m.pending = append(m.pending, m.doneMsg)
		case rtmGetRoute:
			if flags&nlmFDump == 0 {
				return fmt.Errorf("memconn: unsupported RTM_GETROUTE request (flags %#x)", flags)
			}
			m.dumpSeq = seq
			m.pending = append(m.pending, m.encodeRouteDump(), m.doneDatagram())
		case rtmNewRoute, rtmDelRoute:
			rt, ok := parseRouteMsg(payload)
			rt.Del = typ == rtmDelRoute
			e := EINVAL
			if ok {
				e = 0
			}
			if m.AckErrno != nil {
				e = m.AckErrno(rt, ok)
			}
			if ok && !m.DiscardRoutes {
				m.Routes = append(m.Routes, rt)
			}
			if flags&nlmFAck != 0 || e != 0 {
				m.ackBuf = appendAck(m.ackBuf, hdr, e)
			}
		default:
			return fmt.Errorf("memconn: unsupported message type %d", typ)
		}
	}
	if len(m.ackBuf) > 0 {
		m.pending = append(m.pending, m.ackBuf)
	}
	return nil
}

// Receive implements Conn: it pops the next queued response datagram into p,
// patching cached zero-sequence messages to the requesting dump's sequence.
func (m *MemConn) Receive(p []byte) (int, error) {
	if m.closed {
		return 0, errors.New("memconn: receive on closed conn")
	}
	if m.RecvErr != nil {
		return 0, m.RecvErr
	}
	if m.head == len(m.pending) {
		return 0, errWouldBlock
	}
	d := m.pending[m.head]
	m.head++
	n := copy(p, d)
	// Patch sequence numbers in the copy only: the cached datagrams encode
	// seq 0 so one encoding serves every request.
	for b := p[:n]; len(b) >= nlHdrLen; {
		mlen := int(ne.Uint32(b))
		if mlen < nlHdrLen || mlen > len(b) {
			break
		}
		if ne.Uint32(b[8:]) == 0 {
			ne.PutUint32(b[8:], m.dumpSeq)
		}
		adv := nlaAlign(mlen)
		if adv > len(b) {
			break
		}
		b = b[adv:]
	}
	return len(d), nil
}

// Close implements Conn. Dialer reopens the conn; queued responses drop.
func (m *MemConn) Close() error {
	m.closed = true
	m.pending = m.pending[:0]
	m.head = 0
	return nil
}

// ensureDumps builds the cached per-family sock_diag response datagrams.
func (m *MemConn) ensureDumps() {
	if m.dumps != nil {
		return
	}
	mtu := m.MTU
	if mtu <= 0 {
		mtu = DefaultMemConnMTU
	}
	m.dumps = make(map[uint8][][]byte)
	for _, family := range []uint8{afInet, afInet6} {
		var datagrams [][]byte
		var cur []byte
		for i := range m.Sockets {
			o := &m.Sockets[i]
			if familyOf(o.Dst) != family {
				continue
			}
			msg := encodeDiagMsg(nil, o)
			if len(cur) > 0 && len(cur)+len(msg) > mtu {
				datagrams = append(datagrams, cur)
				cur = nil
			}
			cur = append(cur, msg...)
		}
		if len(cur) > 0 {
			datagrams = append(datagrams, cur)
		}
		m.dumps[family] = datagrams
	}
	m.doneMsg = m.doneDatagram()
}

// doneDatagram encodes a standalone NLMSG_DONE datagram (seq 0, patched at
// Receive).
func (m *MemConn) doneDatagram() []byte {
	d := make([]byte, nlHdrLen+4)
	putNlHdr(d, len(d), nlmsgDone, nlmFMulti, 0)
	return d
}

// encodeRouteDump renders InstalledRoutes as one RTM_NEWROUTE-per-route dump
// datagram.
func (m *MemConn) encodeRouteDump() []byte {
	var b []byte
	var w routeWire
	for _, rt := range m.InstalledRoutes {
		w.gw = rt.Gateway
		w.oif = uint32(rt.OIF)
		w.initRwnd = rt.InitRwnd > 0
		table := rt.Table
		if table == 0 {
			table = rtTableMain
		}
		w.table = uint8(min(table, 0xff))
		op := core.RouteOp{Prefix: rt.Prefix, Window: rt.InitCwnd}
		start := len(b)
		b = appendRouteReq(b, op, &w, 0)
		// appendRouteReq writes a request; rewrite the header and rtmsg
		// fields into dump-response shape.
		ne.PutUint16(b[start+4:], rtmNewRoute)
		ne.PutUint16(b[start+6:], nlmFMulti)
		msg := b[start+nlHdrLen:]
		msg[5] = rt.Proto
		msg[6] = rt.Scope
	}
	return b
}

// familyOf maps an address to its Linux wire family. v4-mapped-v6 addresses
// are AF_INET6 on the diag wire (Is4 is false for the 4-in-6 form).
func familyOf(a netip.Addr) uint8 {
	if a.Is4() {
		return afInet
	}
	return afInet6
}

// encodeDiagMsg appends one complete SOCK_DIAG_BY_FAMILY message (header,
// inet_diag_msg, INET_DIAG_INFO attribute carrying tcp_info) for o.
func encodeDiagMsg(b []byte, o *core.Observation) []byte {
	start := len(b)
	b = append(b, zeros[:nlHdrLen+diagMsgLen]...)
	msg := b[start+nlHdrLen:]
	msg[0] = familyOf(o.Dst)
	msg[1] = tcpEstablished
	if o.Dst.Is4() {
		a := o.Dst.As4()
		copy(msg[24:], a[:])
	} else {
		a := o.Dst.As16()
		copy(msg[24:], a[:])
	}
	var ti [tcpInfoLen]byte
	ne.PutUint32(ti[tcpiLostOff:], uint32(o.Lost))
	ne.PutUint32(ti[tcpiRttOff:], uint32(o.RTT.Microseconds()))
	ne.PutUint32(ti[tcpiSndCwndOff:], uint32(o.Cwnd))
	ne.PutUint32(ti[tcpiTotalRetransOff:], uint32(o.Retrans))
	ne.PutUint64(ti[tcpiBytesAckedOff:], uint64(o.BytesAcked))
	ne.PutUint32(ti[tcpiSegsOutOff:], uint32(o.SegsOut))
	b = appendAttr(b, inetDiagInfo, ti[:])
	putNlHdr(b[start:], len(b)-start, sockDiagByFamily, nlmFMulti, 0)
	return b
}

// appendAck appends one NLMSG_ERROR ack for the request message whose header
// is hdr, carrying errno e (negated on the wire, 0 for success) and the
// echoed request header, exactly as the kernel acks NLM_F_ACK requests.
func appendAck(b []byte, hdr []byte, e Errno) []byte {
	start := len(b)
	b = append(b, zeros[:nlHdrLen+4]...)
	var errField [4]byte
	ne.PutUint32(errField[:], uint32(-int32(e)))
	copy(b[start+nlHdrLen:], errField[:])
	b = append(b, hdr[:nlHdrLen]...)
	putNlHdr(b[start:], len(b)-start, nlmsgError, 0, ne.Uint32(hdr[8:]))
	return b
}
