//go:build !linux

package netlink

import (
	"errors"
	"fmt"
	"runtime"
)

// Dial is unavailable off Linux: netlink is a Linux kernel interface. The
// portable parts of this package (wire codec, MemConn-backed tests and
// benchmarks) build and run everywhere; riptided's backend auto-selection
// sees errors.ErrUnsupported from this stub and falls back to the exec
// backend.
func Dial(proto int) (Conn, error) {
	return nil, fmt.Errorf("netlink: dial proto %d: %w on %s", proto, errors.ErrUnsupported, runtime.GOOS)
}
