package netlink

// Conn is one netlink socket conversation. Send writes one request datagram
// (which may carry several messages, as a batched route program does);
// Receive reads the next response datagram into p and returns its byte
// count. Implementations: the Linux netlink socket (Dial, conn_linux.go)
// and the in-memory MemConn used by tests and benchmarks.
type Conn interface {
	Send(req []byte) error
	Receive(p []byte) (int, error)
	Close() error
}

// DialFunc opens a netlink conversation for the given protocol (ProtoRoute
// or ProtoSockDiag). The zero value of the Sampler/Routes configs means the
// platform Dial; tests and benchmarks inject MemConn.Dialer().
type DialFunc func(proto int) (Conn, error)
