//go:build linux

package netlink

import (
	"fmt"
	"syscall"
	"time"
)

// dialTimeout bounds each blocking netlink send/receive so a wedged kernel
// conversation surfaces as an error (and a backend fallback) instead of a
// hung tick. Generous relative to real dump latency (microseconds to low
// milliseconds).
const dialTimeout = 3 * time.Second

// Dial opens a netlink socket of the given protocol (ProtoSockDiag or
// ProtoRoute) bound to this process, with send/receive timeouts applied.
func Dial(proto int) (Conn, error) {
	fd, err := syscall.Socket(syscall.AF_NETLINK, syscall.SOCK_RAW|syscall.SOCK_CLOEXEC, proto)
	if err != nil {
		return nil, fmt.Errorf("netlink: socket(AF_NETLINK, proto %d): %w", proto, err)
	}
	if err := syscall.Bind(fd, &syscall.SockaddrNetlink{Family: syscall.AF_NETLINK}); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("netlink: bind(proto %d): %w", proto, err)
	}
	tv := syscall.NsecToTimeval(int64(dialTimeout))
	// Timeouts are best-effort; a kernel that rejects them still works, it
	// just blocks indefinitely on a wedged conversation.
	_ = syscall.SetsockoptTimeval(fd, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv)
	_ = syscall.SetsockoptTimeval(fd, syscall.SOL_SOCKET, syscall.SO_SNDTIMEO, &tv)
	return &socketConn{fd: fd}, nil
}

// socketConn is the real netlink socket. Calls block the OS thread (raw fd,
// not runtime-poller integrated), bounded by the socket timeouts; the agent
// issues at most one sampler and one programmer conversation per tick, so
// this costs one thread, not one per destination.
type socketConn struct {
	fd int
}

// Send implements Conn.
func (c *socketConn) Send(req []byte) error {
	return syscall.Sendto(c.fd, req, 0, &syscall.SockaddrNetlink{Family: syscall.AF_NETLINK})
}

// Receive implements Conn.
func (c *socketConn) Receive(p []byte) (int, error) {
	n, _, err := syscall.Recvfrom(c.fd, p, 0)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Close implements Conn.
func (c *socketConn) Close() error {
	return syscall.Close(c.fd)
}
