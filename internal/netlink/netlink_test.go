package netlink

import (
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
)

// sampleFixture is a mixed-family socket set: v4, v4-mapped-v6, and native
// v6 peers, plus truncated-telemetry and zero-cwnd edge cases.
func sampleFixture() []core.Observation {
	return []core.Observation{
		{Dst: netip.MustParseAddr("10.1.2.3"), Cwnd: 42, RTT: 15 * time.Millisecond,
			BytesAcked: 123456, Retrans: 3, Lost: 1, SegsOut: 900},
		{Dst: netip.MustParseAddr("192.168.7.9"), Cwnd: 10, RTT: 200 * time.Millisecond,
			BytesAcked: 1, SegsOut: 2},
		{Dst: netip.MustParseAddr("::ffff:172.16.0.8"), Cwnd: 77, RTT: 30 * time.Millisecond,
			BytesAcked: 999, Retrans: 1, SegsOut: 50},
		{Dst: netip.MustParseAddr("2001:db8::5"), Cwnd: 33, RTT: 95 * time.Millisecond,
			BytesAcked: 4242, Lost: 2, SegsOut: 777},
	}
}

func newMemSampler(t *testing.T, mem *MemConn, cfg SamplerConfig) *Sampler {
	t.Helper()
	cfg.Dial = mem.Dialer()
	s, err := NewSampler(cfg)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	return s
}

func TestSamplerRoundTrip(t *testing.T) {
	want := sampleFixture()
	s := newMemSampler(t, &MemConn{Sockets: want}, SamplerConfig{})
	got, err := s.SampleConnections(nil)
	if err != nil {
		t.Fatalf("SampleConnections: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Steady state: same result into a reused buffer, same conn.
	again, err := s.SampleConnections(got[:0])
	if err != nil {
		t.Fatalf("second SampleConnections: %v", err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("second sample mismatch: %+v", again)
	}
}

func TestSamplerSkipsZeroCwnd(t *testing.T) {
	socks := []core.Observation{
		{Dst: netip.MustParseAddr("10.0.0.1"), Cwnd: 0, RTT: time.Millisecond},
		{Dst: netip.MustParseAddr("10.0.0.2"), Cwnd: 5, RTT: time.Millisecond},
	}
	s := newMemSampler(t, &MemConn{Sockets: socks}, SamplerConfig{})
	got, err := s.SampleConnections(nil)
	if err != nil {
		t.Fatalf("SampleConnections: %v", err)
	}
	if len(got) != 1 || got[0].Dst != socks[1].Dst {
		t.Fatalf("want only the cwnd>0 socket, got %+v", got)
	}
}

func TestSamplerSplitsDumpAcrossDatagrams(t *testing.T) {
	var socks []core.Observation
	for i := 0; i < 64; i++ {
		socks = append(socks, core.Observation{
			Dst:  netip.AddrFrom4([4]byte{10, 0, byte(i / 250), byte(1 + i%250)}),
			Cwnd: 10 + i,
		})
	}
	// A tiny MTU forces the dump across many datagrams, like real multi-skb
	// kernel dumps.
	s := newMemSampler(t, &MemConn{Sockets: socks, MTU: 600}, SamplerConfig{})
	got, err := s.SampleConnections(nil)
	if err != nil {
		t.Fatalf("SampleConnections: %v", err)
	}
	if len(got) != len(socks) {
		t.Fatalf("got %d observations, want %d", len(got), len(socks))
	}
}

func TestSamplerErrorClosesAndRedials(t *testing.T) {
	mem := &MemConn{Sockets: sampleFixture()}
	s := newMemSampler(t, mem, SamplerConfig{})
	mem.RecvErr = errors.New("boom")
	if _, err := s.SampleConnections(nil); err == nil {
		t.Fatal("want error when receive fails")
	}
	mem.RecvErr = nil
	got, err := s.SampleConnections(nil)
	if err != nil {
		t.Fatalf("sample after re-dial: %v", err)
	}
	if len(got) != len(mem.Sockets) {
		t.Fatalf("got %d observations after re-dial, want %d", len(got), len(mem.Sockets))
	}
}

func newMemRoutes(t *testing.T, mem *MemConn, cfg RoutesConfig) *Routes {
	t.Helper()
	cfg.Dial = mem.Dialer()
	r, err := NewRoutes(cfg)
	if err != nil {
		t.Fatalf("NewRoutes: %v", err)
	}
	return r
}

func TestRoutesProgramRecordsWire(t *testing.T) {
	mem := &MemConn{}
	cfg := RoutesConfig{DeviceIndex: 3}
	cfg.Gateway = "10.0.0.1"
	cfg.SetInitRwnd = true
	r := newMemRoutes(t, mem, cfg)

	ops := []core.RouteOp{
		{Prefix: netip.MustParsePrefix("10.9.8.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("2001:db8::/64"), Window: 12},
		{Prefix: netip.MustParsePrefix("10.9.9.7/32"), Clear: true},
	}
	if errs := r.ProgramRoutes(ops); errs != nil {
		t.Fatalf("ProgramRoutes: %v", errs)
	}
	if len(mem.Routes) != len(ops) {
		t.Fatalf("recorded %d routes, want %d", len(mem.Routes), len(ops))
	}
	set := mem.Routes[0]
	if set.Del || set.Prefix != ops[0].Prefix || set.InitCwnd != 40 || set.InitRwnd != 40 {
		t.Fatalf("install decoded wrong: %+v", set)
	}
	if set.Gateway != netip.MustParseAddr("10.0.0.1") || set.OIF != 3 {
		t.Fatalf("install selectors wrong: %+v", set)
	}
	if set.Proto != rtprotStatic || set.Table != rtTableMain || set.Scope != rtScopeUniverse {
		t.Fatalf("install rtmsg fields wrong: %+v", set)
	}
	if v6 := mem.Routes[1]; v6.Prefix != ops[1].Prefix || v6.InitCwnd != 12 {
		t.Fatalf("v6 install decoded wrong: %+v", v6)
	}
	del := mem.Routes[2]
	if !del.Del || del.Prefix != ops[2].Prefix || del.InitCwnd != 0 {
		t.Fatalf("delete decoded wrong: %+v", del)
	}
	if del.Scope != rtScopeNowhere {
		t.Fatalf("delete must use the wildcard scope, got %d", del.Scope)
	}
}

func TestRoutesLinkScopeWithoutGateway(t *testing.T) {
	mem := &MemConn{}
	r := newMemRoutes(t, mem, RoutesConfig{DeviceIndex: 7})
	if err := r.SetInitCwnd(netip.MustParsePrefix("10.0.1.0/24"), 20); err != nil {
		t.Fatalf("SetInitCwnd: %v", err)
	}
	if got := mem.Routes[0]; got.Scope != rtScopeLink || got.OIF != 7 || got.Gateway.IsValid() {
		t.Fatalf("dev-only route should be link-scoped: %+v", got)
	}
}

func TestRoutesPerOpErrorAttribution(t *testing.T) {
	bad := netip.MustParsePrefix("10.0.0.2/32")
	mem := &MemConn{
		AckErrno: func(rt RecordedRoute, parsed bool) Errno {
			if !parsed {
				return EINVAL
			}
			if rt.Prefix == bad {
				return EEXIST
			}
			return 0
		},
	}
	// BatchSize 2 forces the five ops across three chunks; attribution must
	// survive chunking.
	r := newMemRoutes(t, mem, RoutesConfig{BatchSize: 2})
	ops := []core.RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.1/32"), Window: 10},
		{Prefix: bad, Window: 11},
		{Prefix: netip.MustParsePrefix("10.0.0.3/32"), Window: 12},
		{Prefix: netip.Prefix{}, Window: 13},                      // invalid: fails validation
		{Prefix: netip.MustParsePrefix("10.0.0.5/32"), Window: 0}, // bad window
	}
	errs := r.ProgramRoutes(ops)
	if errs == nil {
		t.Fatal("want per-op errors")
	}
	if len(errs) != len(ops) {
		t.Fatalf("got %d errors, want exactly %d", len(errs), len(ops))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("clean ops must not fail: %v", errs)
	}
	if !errors.Is(errs[1], EEXIST) {
		t.Fatalf("op 1 should carry the kernel errno, got %v", errs[1])
	}
	if errs[3] == nil || !strings.Contains(errs[3].Error(), "invalid prefix") {
		t.Fatalf("op 3 should fail validation, got %v", errs[3])
	}
	if errs[4] == nil || !strings.Contains(errs[4].Error(), "must be >= 1") {
		t.Fatalf("op 4 should fail validation, got %v", errs[4])
	}
}

func TestRoutesConversationFailureFailsUnacked(t *testing.T) {
	mem := &MemConn{}
	r := newMemRoutes(t, mem, RoutesConfig{BatchSize: 8})
	mem.RecvErr = errors.New("wedged")
	ops := []core.RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.1/32"), Window: 10},
		{Prefix: netip.MustParsePrefix("10.0.0.2/32"), Window: 10},
	}
	errs := r.ProgramRoutes(ops)
	if errs == nil || errs[0] == nil || errs[1] == nil {
		t.Fatalf("every op must fail when the conversation breaks: %v", errs)
	}
	// The conn was closed; clearing the fault lets the next batch re-dial.
	mem.RecvErr = nil
	if errs := r.ProgramRoutes(ops); errs != nil {
		t.Fatalf("batch after re-dial: %v", errs)
	}
}

func TestRoutesListAndReconcile(t *testing.T) {
	mem := &MemConn{
		InstalledRoutes: []RecordedRoute{
			{Prefix: netip.MustParsePrefix("10.3.0.0/24"), Proto: rtprotStatic, InitCwnd: 40,
				Gateway: netip.MustParseAddr("10.0.0.1")},
			{Prefix: netip.MustParsePrefix("10.4.0.0/24"), Proto: 2 /* kernel */, InitCwnd: 10},
			{Prefix: netip.MustParsePrefix("10.5.0.0/24"), Proto: rtprotStatic, InitCwnd: 0},
		},
	}
	r := newMemRoutes(t, mem, RoutesConfig{})
	mine, err := r.ListRiptideRoutes()
	if err != nil {
		t.Fatalf("ListRiptideRoutes: %v", err)
	}
	if len(mine) != 1 || mine[0].Prefix != mem.InstalledRoutes[0].Prefix {
		t.Fatalf("want only the proto-static initcwnd route, got %+v", mine)
	}
	if mine[0].InitCwnd != 40 || mine[0].Proto != "static" || mine[0].Gateway != "10.0.0.1" {
		t.Fatalf("installed-route fields wrong: %+v", mine[0])
	}
	removed, err := r.Reconcile()
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if len(mem.Routes) != 1 || !mem.Routes[0].Del || mem.Routes[0].Prefix != mine[0].Prefix {
		t.Fatalf("reconcile should withdraw exactly the stale route: %+v", mem.Routes)
	}
}

func TestRoutesProbe(t *testing.T) {
	// The default MemConn rejects the deliberately malformed probe route
	// with EINVAL — which is exactly the "permitted" verdict.
	r := newMemRoutes(t, &MemConn{}, RoutesConfig{})
	if err := r.Probe(); err != nil {
		t.Fatalf("probe with EINVAL ack should pass: %v", err)
	}
	denied := &MemConn{AckErrno: func(RecordedRoute, bool) Errno { return EPERM }}
	r = newMemRoutes(t, denied, RoutesConfig{})
	err := r.Probe()
	if err == nil || !errors.Is(err, EPERM) {
		t.Fatalf("probe under EPERM must fail with the errno, got %v", err)
	}
}

func TestNewRoutesRejectsBadConfig(t *testing.T) {
	if _, err := NewRoutes(RoutesConfig{Dial: (&MemConn{}).Dialer(), BatchSize: -1}); err == nil {
		t.Fatal("negative batch size must be rejected")
	}
	cfg := RoutesConfig{Dial: (&MemConn{}).Dialer()}
	cfg.Gateway = "not-an-ip"
	if _, err := NewRoutes(cfg); err == nil {
		t.Fatal("unparsable gateway must be rejected")
	}
}

func TestErrnoStrings(t *testing.T) {
	for e, want := range map[Errno]string{
		EPERM:      "EPERM",
		ENOENT:     "ENOENT",
		ESRCH:      "ESRCH",
		EACCES:     "EACCES",
		EEXIST:     "EEXIST",
		EINVAL:     "EINVAL",
		Errno(999): "errno 999",
	} {
		if got := e.Error(); !strings.Contains(got, want) {
			t.Errorf("Errno(%d).Error() = %q, want mention of %q", int32(e), got, want)
		}
	}
}

func TestApplyTCPInfoTruncated(t *testing.T) {
	// Older kernels send shorter tcp_info structs; fields beyond the payload
	// must stay zero rather than read garbage.
	full := make([]byte, tcpInfoLen)
	ne.PutUint32(full[tcpiSndCwndOff:], 55)
	ne.PutUint32(full[tcpiRttOff:], 2000)
	var o core.Observation
	applyTCPInfo(&o, full[:tcpiSndCwndOff+4]) // cut right after snd_cwnd
	if o.Cwnd != 55 || o.RTT != 2*time.Millisecond {
		t.Fatalf("fields within payload must decode: %+v", o)
	}
	if o.Retrans != 0 || o.BytesAcked != 0 || o.SegsOut != 0 {
		t.Fatalf("fields beyond payload must stay zero: %+v", o)
	}
}

func TestProbeBackendHelper(t *testing.T) {
	s := newMemSampler(t, &MemConn{}, SamplerConfig{})
	if err := core.ProbeBackend(s); err != nil {
		t.Fatalf("sampler probe over MemConn: %v", err)
	}
	// A value without a Probe method passes trivially.
	if err := core.ProbeBackend(struct{}{}); err != nil {
		t.Fatalf("probeless value must pass: %v", err)
	}
}
