package netlink

import (
	"net/netip"
	"testing"
	"time"

	"riptide/internal/core"
)

// diagDumpSeed encodes a well-formed sock_diag dump datagram for seeding.
func diagDumpSeed() []byte {
	var b []byte
	for _, o := range []core.Observation{
		{Dst: netip.MustParseAddr("10.1.2.3"), Cwnd: 42, RTT: 15 * time.Millisecond, BytesAcked: 9000, Retrans: 2, Lost: 1, SegsOut: 300},
		{Dst: netip.MustParseAddr("2001:db8::7"), Cwnd: 18, RTT: 40 * time.Millisecond, BytesAcked: 777, SegsOut: 12},
	} {
		b = encodeDiagMsg(b, &o)
	}
	return b
}

// routeMsgSeed encodes a well-formed route-programming batch for seeding.
func routeMsgSeed() []byte {
	w := routeWire{gw: netip.MustParseAddr("10.0.0.1"), oif: 3, initRwnd: true, table: rtTableMain}
	b := appendRouteReq(nil, core.RouteOp{Prefix: netip.MustParsePrefix("10.9.0.0/24"), Window: 40}, &w, 7)
	b = appendRouteReq(b, core.RouteOp{Prefix: netip.MustParsePrefix("2001:db8::/64"), Window: 12}, &w, 8)
	return appendRouteReq(b, core.RouteOp{Prefix: netip.MustParsePrefix("10.9.1.1/32"), Clear: true}, &w, 9)
}

// truncations returns progressively truncated copies of data, cutting
// through headers, fixed structs, and attributes.
func truncations(data []byte) [][]byte {
	cuts := [][]byte{}
	for _, n := range []int{1, nlHdrLen - 1, nlHdrLen, nlHdrLen + 3, nlHdrLen + diagMsgLen - 1, len(data) / 2, len(data) - 1} {
		if n >= 0 && n < len(data) {
			cuts = append(cuts, data[:n])
		}
	}
	return cuts
}

// FuzzParseInetDiagMsg exercises the sock_diag dump decoder with arbitrary
// byte streams: it must never panic, and every observation it does produce
// must carry a valid destination, a positive window, and non-negative
// telemetry — the same invariants the ss text parser is fuzzed for.
func FuzzParseInetDiagMsg(f *testing.F) {
	seed := diagDumpSeed()
	f.Add(seed)
	f.Add([]byte{})
	for _, cut := range truncations(seed) {
		f.Add(cut)
	}
	// Bad attribute length: claims more than the message holds.
	bad := append([]byte(nil), seed...)
	if len(bad) > nlHdrLen+diagMsgLen+2 {
		ne.PutUint16(bad[nlHdrLen+diagMsgLen:], 0xffff)
	}
	f.Add(bad)
	// Zero-length attribute: must not loop forever.
	loop := append([]byte(nil), seed...)
	if len(loop) > nlHdrLen+diagMsgLen+2 {
		ne.PutUint16(loop[nlHdrLen+diagMsgLen:], 0)
	}
	f.Add(loop)
	// Message length lies beyond the datagram.
	lying := append([]byte(nil), seed...)
	ne.PutUint32(lying, uint32(len(lying)+100))
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		obs, _, err := ParseDiagDump(nil, data, 0)
		if err != nil {
			return // NLMSG_ERROR decoding is a legitimate outcome
		}
		for _, o := range obs {
			if !o.Dst.IsValid() {
				t.Fatalf("observation with invalid dst: %+v", o)
			}
			if o.Cwnd <= 0 {
				t.Fatalf("observation with non-positive cwnd: %+v", o)
			}
			if o.RTT < 0 || o.BytesAcked < 0 {
				t.Fatalf("observation with negative metric: %+v", o)
			}
			if o.Retrans < 0 || o.Lost < 0 || o.SegsOut < 0 {
				t.Fatalf("observation with negative loss telemetry: %+v", o)
			}
		}
	})
}

// FuzzParseRouteMsg exercises the route-message decoder (including the
// nested RTA_METRICS walk) with arbitrary byte streams via ParseRouteDump:
// no panics, and every decoded route must be structurally valid.
func FuzzParseRouteMsg(f *testing.F) {
	seed := routeMsgSeed()
	f.Add(seed)
	f.Add([]byte{})
	for _, cut := range truncations(seed) {
		f.Add(cut)
	}
	// Corrupt the nested RTA_METRICS lengths.
	for _, off := range []int{nlHdrLen + rtMsgLen, nlHdrLen + rtMsgLen + 8, len(seed) - 8} {
		if off >= 0 && off+2 <= len(seed) {
			bad := append([]byte(nil), seed...)
			ne.PutUint16(bad[off:], 0xfff0)
			f.Add(bad)
		}
	}
	// dst_len beyond the family's bit length must be rejected.
	badLen := append([]byte(nil), seed...)
	if len(badLen) > nlHdrLen+1 {
		badLen[nlHdrLen+1] = 200
	}
	f.Add(badLen)
	f.Fuzz(func(t *testing.T, data []byte) {
		// ParseRouteDump only decodes RTM_NEWROUTE messages; rewrite route
		// message types so fuzzed RTM_DELROUTE-shaped inputs are walked too.
		mutated := append([]byte(nil), data...)
		for b := mutated; len(b) >= nlHdrLen; {
			mlen := int(ne.Uint32(b))
			if typ := ne.Uint16(b[4:]); typ == rtmDelRoute {
				ne.PutUint16(b[4:], rtmNewRoute)
			}
			if mlen < nlHdrLen || nlaAlign(mlen) > len(b) {
				break
			}
			b = b[nlaAlign(mlen):]
		}
		routes, _, err := ParseRouteDump(nil, mutated, 0)
		if err != nil {
			return
		}
		for _, rt := range routes {
			if !rt.Prefix.IsValid() {
				t.Fatalf("route with invalid prefix: %+v", rt)
			}
			if rt.InitCwnd < 0 || rt.InitRwnd < 0 {
				t.Fatalf("route with negative metric: %+v", rt)
			}
			if rt.OIF < 0 || rt.Table < 0 {
				t.Fatalf("route with negative selector: %+v", rt)
			}
		}
	})
}
