package netlink_test

import (
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"riptide/internal/core"
	"riptide/internal/linux"
	"riptide/internal/netlink"
	"riptide/internal/perf"
)

// benchSockets is the head-to-head sample size: a busy production host.
const benchSockets = 10_000

// catSSRunner forks `cat <fixture>` per sample, standing in for `ss -tin`
// with identical exec cost and deterministic output.
type catSSRunner struct {
	runner linux.ExecRunner
	path   string
}

func (c catSSRunner) Run(name string, args ...string) ([]byte, error) {
	return c.runner.Run("cat", c.path)
}

// trueIPRunner forks `true` in place of `ip -force -batch -`: full exec and
// stdin-pipe cost, no route mutation.
type trueIPRunner struct{ runner linux.ExecRunner }

func (r trueIPRunner) Run(name string, args ...string) ([]byte, error) {
	return r.runner.Run("true")
}

func (r trueIPRunner) RunInput(input []byte, name string, args ...string) ([]byte, error) {
	return r.runner.RunInput(input, "true")
}

func writeSSFixture(tb testing.TB, obs []core.Observation) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "ss.txt")
	if err := os.WriteFile(path, linux.RenderSS(obs), 0o644); err != nil {
		tb.Fatalf("write fixture: %v", err)
	}
	return path
}

// BenchmarkSamplerExecVsNetlink compares one full connection-table sample
// through each backend: the netlink sampler decoding canned INET_DIAG dumps
// from an in-memory conn, and the exec sampler really forking a process
// (`cat` over the equivalent ss text) per sample.
func BenchmarkSamplerExecVsNetlink(b *testing.B) {
	obs := perf.SyntheticObservations(benchSockets)

	b.Run("netlink", func(b *testing.B) {
		mem := &netlink.MemConn{Sockets: obs}
		s, err := netlink.NewSampler(netlink.SamplerConfig{Dial: mem.Dialer()})
		if err != nil {
			b.Fatalf("NewSampler: %v", err)
		}
		var buf []core.Observation
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, err = s.SampleConnections(buf[:0])
			if err != nil {
				b.Fatalf("sample: %v", err)
			}
		}
	})

	b.Run("exec", func(b *testing.B) {
		if _, err := exec.LookPath("cat"); err != nil {
			b.Skip("cat not available")
		}
		s, err := linux.NewSampler(catSSRunner{path: writeSSFixture(b, obs)})
		if err != nil {
			b.Fatalf("NewSampler: %v", err)
		}
		var buf []core.Observation
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, err = s.SampleConnections(buf[:0])
			if err != nil {
				b.Fatalf("sample: %v", err)
			}
		}
	})
}

// BenchmarkProgramExecVsNetlink compares programming a 1024-route batch:
// netlink message batches acked in-memory against the exec backend's
// batch-script render plus fork.
func BenchmarkProgramExecVsNetlink(b *testing.B) {
	const nOps = 1024
	ops := make([]core.RouteOp, nOps)
	for i := range ops {
		ops[i] = core.RouteOp{Prefix: prefix24(i), Window: 10 + i%90}
	}

	b.Run("netlink", func(b *testing.B) {
		mem := &netlink.MemConn{DiscardRoutes: true}
		cfg := netlink.RoutesConfig{Dial: mem.Dialer()}
		cfg.Gateway = "10.0.0.1"
		r, err := netlink.NewRoutes(cfg)
		if err != nil {
			b.Fatalf("NewRoutes: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if errs := r.ProgramRoutes(ops); errs != nil {
				b.Fatalf("program: %v", errs)
			}
		}
	})

	b.Run("exec", func(b *testing.B) {
		if _, err := exec.LookPath("true"); err != nil {
			b.Skip("true not available")
		}
		r, err := linux.NewRoutes(trueIPRunner{}, linux.RoutesConfig{Gateway: "10.0.0.1"})
		if err != nil {
			b.Fatalf("NewRoutes: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if errs := r.ProgramRoutes(ops); errs != nil {
				b.Fatalf("program: %v", errs)
			}
		}
	})
}

func prefix24(i int) (p netip.Prefix) {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24)
}

// TestSamplerAllocationAdvantage pins the acceptance bar: per 10k-socket
// sample, the netlink decoder must allocate at least 5x less than even the
// exec backend's parse step alone (its fork/exec and output-capture
// allocations excluded — the real gap is larger).
func TestSamplerAllocationAdvantage(t *testing.T) {
	obs := perf.SyntheticObservations(benchSockets)
	text := linux.RenderSS(obs)

	mem := &netlink.MemConn{Sockets: obs}
	s, err := netlink.NewSampler(netlink.SamplerConfig{Dial: mem.Dialer()})
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	var nlBuf []core.Observation
	netlinkAllocs := testing.AllocsPerRun(10, func() {
		var err error
		nlBuf, err = s.SampleConnections(nlBuf[:0])
		if err != nil {
			t.Fatalf("netlink sample: %v", err)
		}
	})

	var execBuf []core.Observation
	execAllocs := testing.AllocsPerRun(10, func() {
		var err error
		execBuf, err = linux.AppendParseSS(execBuf[:0], text)
		if err != nil {
			t.Fatalf("parse ss: %v", err)
		}
	})

	if len(nlBuf) != benchSockets || len(execBuf) != benchSockets {
		t.Fatalf("samples incomplete: netlink %d, exec %d", len(nlBuf), len(execBuf))
	}
	t.Logf("allocs per %d-socket sample: netlink=%.0f exec(parse only)=%.0f", benchSockets, netlinkAllocs, execAllocs)
	if netlinkAllocs*5 > execAllocs {
		t.Fatalf("netlink sampling allocates %.0f/sample, want at least 5x under exec's %.0f", netlinkAllocs, execAllocs)
	}
}
