package netlink

import (
	"errors"
	"fmt"
	"net"
	"net/netip"

	"riptide/internal/core"
	"riptide/internal/linux"
)

// DefaultBatchSize is the number of route messages packed into one sendto.
// Each message is ~70 bytes, so a full batch stays an order of magnitude
// under the default netlink socket buffers.
const DefaultBatchSize = 128

// RoutesConfig configures the netlink route programmer. The embedded
// linux.RoutesConfig carries the route-command semantics shared with the
// exec backend — Device, Gateway, SetInitRwnd — so the two backends program
// byte-equivalent routes from one configuration.
type RoutesConfig struct {
	linux.RoutesConfig

	// DeviceIndex is the outgoing interface index; 0 means resolve
	// RoutesConfig.Device by name at construction (when Device is set).
	DeviceIndex int
	// Dial opens the NETLINK_ROUTE conversation; nil means the platform
	// Dial.
	Dial DialFunc
	// BatchSize caps route messages per sendto; 0 means DefaultBatchSize.
	BatchSize int
	// RecvBuf is the ack/dump receive buffer size; 0 means DefaultRecvBuf.
	RecvBuf int
}

// Routes implements core.RouteProgrammer and core.BatchRouteProgrammer over
// NETLINK_ROUTE: RTM_NEWROUTE with NLM_F_CREATE|NLM_F_REPLACE (the `ip
// route replace` semantics), RTM_DELROUTE for withdrawals, RTAX_INITCWND
// (and optionally RTAX_INITRWND) under RTA_METRICS. Batches pack many
// messages into one send and collect one NLMSG_ERROR ack per message, so —
// unlike `ip -force -batch`, whose exit status is all-or-nothing — every
// batch member gets native per-op error attribution.
//
// Routes is not safe for concurrent use; the agent serializes programming
// under its tick lock.
type Routes struct {
	cfg  RoutesConfig
	wire routeWire
	conn Conn
	seq  uint32

	sendBuf []byte
	recv    []byte
	acked   []bool
	one     [1]core.RouteOp
	listBuf []RecordedRoute
}

// NewRoutes returns a netlink route programmer. A configured Device that
// cannot be resolved to an interface index is an error, mirroring how `ip
// route replace ... dev X` would fail later.
func NewRoutes(cfg RoutesConfig) (*Routes, error) {
	if cfg.Dial == nil {
		cfg.Dial = Dial
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("netlink: BatchSize %d must be >= 1", cfg.BatchSize)
	}
	if cfg.RecvBuf == 0 {
		cfg.RecvBuf = DefaultRecvBuf
	}
	r := &Routes{cfg: cfg, recv: make([]byte, cfg.RecvBuf)}
	r.wire.table = rtTableMain
	r.wire.initRwnd = cfg.SetInitRwnd
	if cfg.Gateway != "" {
		gw, err := netip.ParseAddr(cfg.Gateway)
		if err != nil {
			return nil, fmt.Errorf("netlink: gateway %q: %w", cfg.Gateway, err)
		}
		r.wire.gw = gw
	}
	switch {
	case cfg.DeviceIndex > 0:
		r.wire.oif = uint32(cfg.DeviceIndex)
	case cfg.Device != "":
		ifi, err := net.InterfaceByName(cfg.Device)
		if err != nil {
			return nil, fmt.Errorf("netlink: device %q: %w", cfg.Device, err)
		}
		r.wire.oif = uint32(ifi.Index)
	}
	return r, nil
}

var (
	_ core.RouteProgrammer      = (*Routes)(nil)
	_ core.BatchRouteProgrammer = (*Routes)(nil)
)

// SetInitCwnd implements core.RouteProgrammer.
func (r *Routes) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	r.one[0] = core.RouteOp{Prefix: prefix, Window: cwnd}
	return firstError(r.ProgramRoutes(r.one[:]))
}

// ClearInitCwnd implements core.RouteProgrammer.
func (r *Routes) ClearInitCwnd(prefix netip.Prefix) error {
	r.one[0] = core.RouteOp{Prefix: prefix, Clear: true}
	return firstError(r.ProgramRoutes(r.one[:]))
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ProgramRoutes implements core.BatchRouteProgrammer. Ops are validated up
// front with the same rules as the exec backend, encoded into one buffer
// per batch-size chunk, sent with one syscall, and acked individually: the
// kernel answers every NLM_F_ACK message with an NLMSG_ERROR whose sequence
// number identifies the op, so failures are attributed natively instead of
// through the retry decorator's re-drive. Returns nil when everything
// succeeded, otherwise a slice of exactly len(ops) per-op errors.
func (r *Routes) ProgramRoutes(ops []core.RouteOp) []error {
	if len(ops) == 0 {
		return nil
	}
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ops))
		}
		errs[i] = err
	}
	// Validation mirrors linux.Routes.ProgramRoutes.
	valid := make([]core.RouteOp, 0, len(ops))
	validIdx := make([]int, 0, len(ops))
	for i, op := range ops {
		switch {
		case !op.Prefix.IsValid():
			fail(i, errors.New("netlink: invalid prefix"))
		case !op.Clear && op.Window < 1:
			fail(i, fmt.Errorf("netlink: initcwnd %d must be >= 1", op.Window))
		default:
			valid = append(valid, op)
			validIdx = append(validIdx, i)
		}
	}
	for start := 0; start < len(valid); start += r.cfg.BatchSize {
		end := start + r.cfg.BatchSize
		if end > len(valid) {
			end = len(valid)
		}
		if err := r.programChunk(valid[start:end], validIdx[start:end], fail); err != nil {
			// The conversation itself broke: every op not yet acked in this
			// and later chunks failed with it.
			for _, i := range validIdx[start:end] {
				if errs == nil || errs[i] == nil {
					fail(i, err)
				}
			}
			for _, i := range validIdx[end:] {
				fail(i, err)
			}
			r.closeConn()
			return errs
		}
	}
	return errs
}

// programChunk sends one chunk and collects its acks. Per-op kernel errors
// go through fail; a returned error means the conversation broke.
func (r *Routes) programChunk(chunk []core.RouteOp, idx []int, fail func(int, error)) error {
	if r.conn == nil {
		c, err := r.cfg.Dial(ProtoRoute)
		if err != nil {
			return err
		}
		r.conn = c
	}
	// Encode the chunk with consecutive sequence numbers: ack seq - base
	// indexes straight into the chunk.
	base := r.seq + 1
	r.sendBuf = r.sendBuf[:0]
	for _, op := range chunk {
		r.seq++
		if r.seq == 0 {
			r.seq = 1
			base = 1
		}
		r.sendBuf = appendRouteReq(r.sendBuf, op, &r.wire, r.seq)
	}
	if err := r.conn.Send(r.sendBuf); err != nil {
		return fmt.Errorf("netlink: route batch send (%d ops): %w", len(chunk), err)
	}
	if cap(r.acked) < len(chunk) {
		r.acked = make([]bool, len(chunk))
	}
	r.acked = r.acked[:len(chunk)]
	clear(r.acked)
	remaining := len(chunk)
	for remaining > 0 {
		n, err := r.conn.Receive(r.recv)
		if err != nil {
			return fmt.Errorf("netlink: route batch ack receive: %w", err)
		}
		if n > len(r.recv) {
			n = len(r.recv)
		}
		data := r.recv[:n]
		for len(data) >= nlHdrLen {
			mlen := int(ne.Uint32(data))
			typ := ne.Uint16(data[4:])
			if mlen < nlHdrLen || mlen > len(data) {
				break
			}
			payload := data[nlHdrLen:mlen]
			adv := nlaAlign(mlen)
			if adv > len(data) {
				data = nil
			} else {
				data = data[adv:]
			}
			if typ != nlmsgError || len(payload) < 4 {
				continue
			}
			// The echoed request header inside the ack payload carries the
			// sequence number that names the op.
			if len(payload) < 4+nlHdrLen {
				continue
			}
			eseq := ne.Uint32(payload[4+8:])
			k := int(eseq) - int(base)
			if k < 0 || k >= len(chunk) || r.acked[k] {
				continue // stale or duplicate ack
			}
			r.acked[k] = true
			remaining--
			if e := decodeAckErrno(payload); e != 0 {
				fail(idx[k], fmt.Errorf("netlink: route op %s: %w", opString(chunk[k]), e))
			}
		}
	}
	return nil
}

// opString renders an op for error messages.
func opString(op core.RouteOp) string {
	if op.Clear {
		return fmt.Sprintf("del %s", op.Prefix)
	}
	return fmt.Sprintf("replace %s initcwnd %d", op.Prefix, op.Window)
}

// ListRiptideRoutes returns the installed routes a Riptide agent owns —
// main-table proto-static routes carrying an initcwnd metric — decoded from
// an RTM_GETROUTE dump. The netlink analog of linux.Routes.ListRiptideRoutes.
func (r *Routes) ListRiptideRoutes() ([]linux.InstalledRoute, error) {
	if r.conn == nil {
		c, err := r.cfg.Dial(ProtoRoute)
		if err != nil {
			return nil, err
		}
		r.conn = c
	}
	r.seq++
	if r.seq == 0 {
		r.seq = 1
	}
	r.sendBuf = appendRouteDumpReq(r.sendBuf[:0], r.seq)
	if err := r.conn.Send(r.sendBuf); err != nil {
		r.closeConn()
		return nil, fmt.Errorf("netlink: route dump request: %w", err)
	}
	r.listBuf = r.listBuf[:0]
	for {
		n, err := r.conn.Receive(r.recv)
		if err != nil {
			r.closeConn()
			return nil, fmt.Errorf("netlink: route dump receive: %w", err)
		}
		if n > len(r.recv) {
			n = len(r.recv)
		}
		var done bool
		r.listBuf, done, err = ParseRouteDump(r.listBuf, r.recv[:n], r.seq)
		if err != nil {
			r.closeConn()
			return nil, err
		}
		if done {
			break
		}
		if n == 0 {
			r.closeConn()
			return nil, errors.New("netlink: empty datagram mid-dump")
		}
	}
	var mine []linux.InstalledRoute
	for _, rt := range r.listBuf {
		if rt.Proto == rtprotStatic && rt.InitCwnd > 0 && rt.Table == rtTableMain {
			mine = append(mine, linux.InstalledRoute{
				Prefix:   rt.Prefix,
				InitCwnd: rt.InitCwnd,
				Proto:    "static",
				Gateway:  gatewayString(rt.Gateway),
			})
		}
	}
	return mine, nil
}

func gatewayString(gw netip.Addr) string {
	if !gw.IsValid() {
		return ""
	}
	return gw.String()
}

// Reconcile removes every leftover Riptide route from a previous
// incarnation (the netlink analog of linux.Routes.Reconcile), withdrawing
// them in one batch.
func (r *Routes) Reconcile() (removed int, err error) {
	stale, err := r.ListRiptideRoutes()
	if err != nil {
		return 0, err
	}
	if len(stale) == 0 {
		return 0, nil
	}
	ops := make([]core.RouteOp, len(stale))
	for i, route := range stale {
		ops[i] = core.RouteOp{Prefix: route.Prefix, Clear: true}
	}
	errs := r.ProgramRoutes(ops)
	var firstErr error
	for i := range ops {
		var opErr error
		if errs != nil {
			opErr = errs[i]
		}
		if opErr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("netlink: clear stale %v: %w", ops[i].Prefix, opErr)
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}

// Probe implements core.Prober: it sends a deliberately invalid
// RTM_NEWROUTE (see appendProbeReq) and inspects the ack. The kernel checks
// CAP_NET_ADMIN before validating the route, so EINVAL proves this process
// may program routes while EPERM/EACCES means it may not — nothing is
// mutated either way.
func (r *Routes) Probe() error {
	if r.conn == nil {
		c, err := r.cfg.Dial(ProtoRoute)
		if err != nil {
			return err
		}
		r.conn = c
	}
	r.seq++
	if r.seq == 0 {
		r.seq = 1
	}
	r.sendBuf = appendProbeReq(r.sendBuf[:0], r.seq)
	if err := r.conn.Send(r.sendBuf); err != nil {
		r.closeConn()
		return fmt.Errorf("netlink: probe send: %w", err)
	}
	for {
		n, err := r.conn.Receive(r.recv)
		if err != nil {
			r.closeConn()
			return fmt.Errorf("netlink: probe receive: %w", err)
		}
		data := r.recv[:min(n, len(r.recv))]
		for len(data) >= nlHdrLen {
			mlen := int(ne.Uint32(data))
			typ := ne.Uint16(data[4:])
			mseq := ne.Uint32(data[8:])
			if mlen < nlHdrLen || mlen > len(data) {
				break
			}
			payload := data[nlHdrLen:mlen]
			adv := nlaAlign(mlen)
			if adv > len(data) {
				data = nil
			} else {
				data = data[adv:]
			}
			if typ != nlmsgError || mseq != r.seq || len(payload) < 4 {
				continue
			}
			switch e := decodeAckErrno(payload); e {
			case 0, EINVAL, ESRCH:
				return nil
			default:
				return fmt.Errorf("netlink: route programming unavailable: %w", e)
			}
		}
	}
}

// Close releases the netlink socket. The programmer stays usable: the next
// operation re-dials.
func (r *Routes) Close() error {
	r.closeConn()
	return nil
}

func (r *Routes) closeConn() {
	if r.conn != nil {
		_ = r.conn.Close()
		r.conn = nil
	}
}
