// Package netlink is the netlink-native Linux backend for the Riptide
// agent: it implements core.ConnectionSampler and core.BatchRouteProgrammer
// by speaking the kernel's wire protocols directly — NETLINK_SOCK_DIAG
// (INET_DIAG dump requests carrying tcp_info attributes) for the connection
// table, and NETLINK_ROUTE (RTM_NEWROUTE / RTM_DELROUTE with RTAX_INITCWND
// under RTA_METRICS) for route programming — removing fork/exec and text
// parsing from the agent hot path entirely. `ss -tin` and `ip route` render
// exactly the kernel state this package reads and writes in binary.
//
// The package splits at the syscall boundary: everything above Conn — the
// wire codec, Sampler, Routes, and the MemConn in-memory kernel — is
// portable Go that builds and tests on every GOOS, while Dial
// (conn_linux.go) is the only Linux-gated file; the non-Linux stub returns
// errors.ErrUnsupported so backend auto-selection (riptided -backend auto)
// falls back to the exec backend. Wire constants are Linux ABI values
// written out literally, not syscall-package constants, for the same
// reason: syscall.AF_INET6 is 30 on darwin but the wire value is always 10.
//
// Encoding and decoding are hand-rolled over pooled buffers in the
// kernel's native byte order (netlink is a host-endian protocol): a
// steady-state SampleConnections performs no allocations beyond the
// caller's observation buffer, matching the agent's append-into-buffer
// sampler contract.
package netlink

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"time"

	"riptide/internal/core"
)

// ne is the wire byte order: netlink messages are encoded in the byte order
// of the kernel the socket talks to, i.e. the host's.
var ne = binary.NativeEndian

// Netlink protocol numbers (socket(AF_NETLINK, SOCK_RAW, proto)).
const (
	// ProtoRoute is NETLINK_ROUTE: route programming and route dumps.
	ProtoRoute = 0
	// ProtoSockDiag is NETLINK_SOCK_DIAG: socket-table dumps.
	ProtoSockDiag = 4
)

// Linux ABI constants used on the wire. Kept literal so the codec is
// byte-exact when cross-compiled from any GOOS.
const (
	afInet  = 2  // AF_INET
	afInet6 = 10 // AF_INET6

	ipprotoTCP = 6

	// netlink message types
	nlmsgNoop  = 1
	nlmsgError = 2
	nlmsgDone  = 3

	sockDiagByFamily = 20 // SOCK_DIAG_BY_FAMILY

	rtmNewRoute = 24
	rtmDelRoute = 25
	rtmGetRoute = 26

	// nlmsghdr flags
	nlmFRequest = 0x1
	nlmFMulti   = 0x2
	nlmFAck     = 0x4
	nlmFRoot    = 0x100
	nlmFMatch   = 0x200
	nlmFDump    = nlmFRoot | nlmFMatch
	nlmFReplace = 0x100
	nlmFCreate  = 0x400

	// inet_diag request extensions and attributes
	inetDiagInfo = 2 // INET_DIAG_INFO: struct tcp_info payload

	tcpEstablished = 1 // TCP_ESTABLISHED

	// rtmsg fields
	rtprotStatic    = 4
	rtTableMain     = 254
	rtScopeUniverse = 0
	rtScopeLink     = 253
	rtScopeNowhere  = 255
	rtnUnicast      = 1

	// route attributes
	rtaDst     = 1
	rtaOif     = 4
	rtaGateway = 5
	rtaMetrics = 8
	rtaTable   = 15

	// RTA_METRICS nested attributes
	rtaxInitCwnd = 11
	rtaxInitRwnd = 14
)

// Fixed structure sizes.
const (
	nlHdrLen   = 16  // struct nlmsghdr
	diagReqLen = 56  // struct inet_diag_req_v2
	diagMsgLen = 72  // struct inet_diag_msg
	rtMsgLen   = 12  // struct rtmsg
	tcpInfoLen = 144 // struct tcp_info through tcpi_segs_in
)

// tcp_info field offsets (include/uapi/linux/tcp.h). Only the fields the
// Observation carries; decoding tolerates shorter (older-kernel) payloads by
// leaving the missing fields zero.
const (
	tcpiLostOff         = 32  // __u32 tcpi_lost
	tcpiRttOff          = 68  // __u32 tcpi_rtt (microseconds)
	tcpiSndCwndOff      = 80  // __u32 tcpi_snd_cwnd
	tcpiTotalRetransOff = 100 // __u32 tcpi_total_retrans
	tcpiBytesAckedOff   = 120 // __u64 tcpi_bytes_acked
	tcpiSegsOutOff      = 136 // __u32 tcpi_segs_out
)

// zeros backs zero-filling appends without per-call allocation.
var zeros [nlHdrLen + tcpInfoLen]byte

// nlaAlign rounds n up to the 4-byte netlink alignment (NLMSG_ALIGN and
// RTA_ALIGN are both 4).
func nlaAlign(n int) int { return (n + 3) &^ 3 }

// Errno is a Linux errno carried in an NLMSG_ERROR ack. It is its own type
// (rather than syscall.Errno) because NLMSG_ERROR always carries Linux ABI
// numbers, even when this code is compiled for another GOOS where the
// syscall package assigns those numbers different meanings.
type Errno int32

// Linux errno values the backend selection logic distinguishes.
const (
	EPERM  Errno = 1
	ENOENT Errno = 2
	ESRCH  Errno = 3
	EACCES Errno = 13
	EEXIST Errno = 17
	EINVAL Errno = 22
)

// Error implements error.
func (e Errno) Error() string {
	switch e {
	case EPERM:
		return "operation not permitted (EPERM)"
	case ENOENT:
		return "no such file or directory (ENOENT)"
	case ESRCH:
		return "no such process (ESRCH)"
	case EACCES:
		return "permission denied (EACCES)"
	case EEXIST:
		return "file exists (EEXIST)"
	case EINVAL:
		return "invalid argument (EINVAL)"
	}
	return fmt.Sprintf("errno %d", int32(e))
}

// putNlHdr writes a complete nlmsghdr into b[0:16].
func putNlHdr(b []byte, length int, typ, flags uint16, seq uint32) {
	ne.PutUint32(b, uint32(length))
	ne.PutUint16(b[4:], typ)
	ne.PutUint16(b[6:], flags)
	ne.PutUint32(b[8:], seq)
	ne.PutUint32(b[12:], 0) // pid: kernel-addressed
}

// appendAttr appends one rtattr/nlattr with the given payload, padded to
// alignment.
func appendAttr(b []byte, typ uint16, payload []byte) []byte {
	alen := 4 + len(payload)
	var hdr [4]byte
	ne.PutUint16(hdr[:], uint16(alen))
	ne.PutUint16(hdr[2:], typ)
	b = append(b, hdr[:]...)
	b = append(b, payload...)
	if pad := nlaAlign(alen) - alen; pad > 0 {
		b = append(b, zeros[:pad]...)
	}
	return b
}

// appendAttrU32 appends one u32-valued attribute.
func appendAttrU32(b []byte, typ uint16, v uint32) []byte {
	var p [4]byte
	ne.PutUint32(p[:], v)
	return appendAttr(b, typ, p[:])
}

// appendDiagDumpReq appends the complete INET_DIAG dump request for one
// address family: established TCP sockets, with tcp_info requested via the
// INET_DIAG_INFO extension bit.
func appendDiagDumpReq(b []byte, family uint8, seq uint32) []byte {
	start := len(b)
	b = append(b, zeros[:nlHdrLen+diagReqLen]...)
	putNlHdr(b[start:], nlHdrLen+diagReqLen, sockDiagByFamily, nlmFRequest|nlmFDump, seq)
	req := b[start+nlHdrLen:]
	req[0] = family
	req[1] = ipprotoTCP
	req[2] = 1 << (inetDiagInfo - 1) // idiag_ext: request INET_DIAG_INFO
	ne.PutUint32(req[4:], 1<<tcpEstablished)
	// sockid stays zero: dump requests match on states, not on one socket.
	return b
}

// applyTCPInfo decodes the tcp_info fields an Observation carries, tolerant
// of truncated (older-kernel) payloads: fields beyond the payload stay zero.
func applyTCPInfo(o *core.Observation, ti []byte) {
	if len(ti) >= tcpiLostOff+4 {
		o.Lost = int64(ne.Uint32(ti[tcpiLostOff:]))
	}
	if len(ti) >= tcpiRttOff+4 {
		o.RTT = time.Duration(ne.Uint32(ti[tcpiRttOff:])) * time.Microsecond
	}
	if len(ti) >= tcpiSndCwndOff+4 {
		o.Cwnd = int(ne.Uint32(ti[tcpiSndCwndOff:]))
	}
	if len(ti) >= tcpiTotalRetransOff+4 {
		o.Retrans = int64(ne.Uint32(ti[tcpiTotalRetransOff:]))
	}
	if len(ti) >= tcpiBytesAckedOff+8 {
		if v := ne.Uint64(ti[tcpiBytesAckedOff:]); v <= math.MaxInt64 {
			o.BytesAcked = int64(v)
		} else {
			o.BytesAcked = math.MaxInt64
		}
	}
	if len(ti) >= tcpiSegsOutOff+4 {
		o.SegsOut = int64(ne.Uint32(ti[tcpiSegsOutOff:]))
	}
}

// parseInetDiagMsg decodes one SOCK_DIAG_BY_FAMILY message payload into an
// Observation. Mirrors the ss text parser's acceptance rules: established
// sockets with a positive congestion window only.
func parseInetDiagMsg(msg []byte) (core.Observation, bool) {
	var o core.Observation
	if len(msg) < diagMsgLen {
		return o, false
	}
	if msg[1] != tcpEstablished {
		return o, false
	}
	switch msg[0] {
	case afInet:
		o.Dst = netip.AddrFrom4([4]byte(msg[24:28]))
	case afInet6:
		// Kept mapped (no Unmap): ss prints v4-mapped peers as
		// [::ffff:a.b.c.d], which parses back to the 4-in-6 form — the two
		// backends must key destinations identically.
		o.Dst = netip.AddrFrom16([16]byte(msg[24:40]))
	default:
		return o, false
	}
	attrs := msg[diagMsgLen:]
	for off := 0; off+4 <= len(attrs); {
		alen := int(ne.Uint16(attrs[off:]))
		typ := ne.Uint16(attrs[off+2:])
		if alen < 4 || off+alen > len(attrs) {
			break // malformed attribute: stop walking, keep what we have
		}
		if typ == inetDiagInfo {
			applyTCPInfo(&o, attrs[off+4:off+alen])
		}
		off += nlaAlign(alen)
	}
	if o.Cwnd <= 0 {
		return o, false
	}
	return o, true
}

// ParseDiagDump walks one received sock_diag datagram, appending decoded
// observations to obs. done reports that the dump's NLMSG_DONE marker was
// seen. Messages whose sequence number differs from seq are skipped (stale
// responses from an aborted previous dump); seq 0 accepts any. Malformed
// input never panics: unparsable messages and attributes are skipped, a
// truncated tail ends the walk.
func ParseDiagDump(obs []core.Observation, data []byte, seq uint32) (_ []core.Observation, done bool, err error) {
	for len(data) >= nlHdrLen {
		mlen := int(ne.Uint32(data))
		typ := ne.Uint16(data[4:])
		mseq := ne.Uint32(data[8:])
		if mlen < nlHdrLen || mlen > len(data) {
			break // truncated or malformed: end of usable datagram
		}
		payload := data[nlHdrLen:mlen]
		adv := nlaAlign(mlen)
		if adv > len(data) {
			data = nil
		} else {
			data = data[adv:]
		}
		if seq != 0 && mseq != seq {
			continue
		}
		switch typ {
		case nlmsgDone:
			return obs, true, nil
		case nlmsgError:
			if len(payload) < 4 {
				return obs, true, fmt.Errorf("netlink: truncated NLMSG_ERROR")
			}
			if e := decodeAckErrno(payload); e != 0 {
				return obs, true, fmt.Errorf("netlink: sock_diag dump: %w", e)
			}
		case sockDiagByFamily:
			if o, ok := parseInetDiagMsg(payload); ok {
				obs = append(obs, o)
			}
		}
	}
	return obs, false, nil
}

// decodeAckErrno reads the errno of an NLMSG_ERROR payload. The kernel
// stores the negated errno; 0 is a success ack.
func decodeAckErrno(payload []byte) Errno {
	e := int32(ne.Uint32(payload))
	if e < 0 {
		e = -e
	}
	return Errno(e)
}

// RecordedRoute is one route-programming message as decoded off the wire:
// what MemConn records for assertions and what RTM_GETROUTE dumps decode
// into.
type RecordedRoute struct {
	// Del marks an RTM_DELROUTE (route withdrawal).
	Del bool
	// Prefix is the destination (rtmsg dst_len + RTA_DST).
	Prefix netip.Prefix
	// Gateway is the RTA_GATEWAY next hop; invalid when absent.
	Gateway netip.Addr
	// OIF is the RTA_OIF outgoing interface index; 0 when absent.
	OIF int
	// Table is the routing table (rtmsg field, overridden by RTA_TABLE).
	Table int
	// Proto and Scope are the raw rtmsg fields.
	Proto uint8
	Scope uint8
	// InitCwnd / InitRwnd are the RTAX_INITCWND / RTAX_INITRWND metrics
	// under RTA_METRICS; 0 when absent.
	InitCwnd int
	InitRwnd int
}

// parseRouteMsg decodes one RTM_NEWROUTE/RTM_DELROUTE/route-dump message
// payload (rtmsg + attributes). Reports false for payloads that do not
// decode to a structurally valid route.
func parseRouteMsg(payload []byte) (RecordedRoute, bool) {
	var rt RecordedRoute
	if len(payload) < rtMsgLen {
		return rt, false
	}
	family := payload[0]
	dstLen := int(payload[1])
	rt.Table = int(payload[4])
	rt.Proto = payload[5]
	rt.Scope = payload[6]
	var dst netip.Addr
	switch family {
	case afInet:
		dst = netip.IPv4Unspecified()
	case afInet6:
		dst = netip.IPv6Unspecified()
	default:
		return rt, false
	}
	attrs := payload[rtMsgLen:]
	for off := 0; off+4 <= len(attrs); {
		alen := int(ne.Uint16(attrs[off:]))
		typ := ne.Uint16(attrs[off+2:])
		if alen < 4 || off+alen > len(attrs) {
			break
		}
		val := attrs[off+4 : off+alen]
		switch typ {
		case rtaDst:
			switch {
			case family == afInet && len(val) >= 4:
				dst = netip.AddrFrom4([4]byte(val[:4]))
			case family == afInet6 && len(val) >= 16:
				dst = netip.AddrFrom16([16]byte(val[:16]))
			default:
				return rt, false
			}
		case rtaGateway:
			switch {
			case family == afInet && len(val) >= 4:
				rt.Gateway = netip.AddrFrom4([4]byte(val[:4]))
			case family == afInet6 && len(val) >= 16:
				rt.Gateway = netip.AddrFrom16([16]byte(val[:16]))
			}
		case rtaOif:
			if len(val) >= 4 {
				rt.OIF = int(ne.Uint32(val))
			}
		case rtaTable:
			if len(val) >= 4 {
				rt.Table = int(ne.Uint32(val))
			}
		case rtaMetrics:
			for moff := 0; moff+4 <= len(val); {
				mlen := int(ne.Uint16(val[moff:]))
				mtyp := ne.Uint16(val[moff+2:])
				if mlen < 4 || moff+mlen > len(val) {
					break
				}
				if mv := val[moff+4 : moff+mlen]; len(mv) >= 4 {
					switch mtyp {
					case rtaxInitCwnd:
						rt.InitCwnd = int(ne.Uint32(mv))
					case rtaxInitRwnd:
						rt.InitRwnd = int(ne.Uint32(mv))
					}
				}
				moff += nlaAlign(mlen)
			}
		}
		off += nlaAlign(alen)
	}
	if dstLen < 0 || dstLen > dst.BitLen() {
		return rt, false
	}
	rt.Prefix = netip.PrefixFrom(dst, dstLen)
	return rt, true
}

// ParseRouteDump walks one RTM_GETROUTE dump response datagram, appending
// decoded routes. done reports the NLMSG_DONE marker. Same tolerance rules
// as ParseDiagDump; seq 0 accepts any sequence number.
func ParseRouteDump(routes []RecordedRoute, data []byte, seq uint32) (_ []RecordedRoute, done bool, err error) {
	for len(data) >= nlHdrLen {
		mlen := int(ne.Uint32(data))
		typ := ne.Uint16(data[4:])
		mseq := ne.Uint32(data[8:])
		if mlen < nlHdrLen || mlen > len(data) {
			break
		}
		payload := data[nlHdrLen:mlen]
		adv := nlaAlign(mlen)
		if adv > len(data) {
			data = nil
		} else {
			data = data[adv:]
		}
		if seq != 0 && mseq != seq {
			continue
		}
		switch typ {
		case nlmsgDone:
			return routes, true, nil
		case nlmsgError:
			if len(payload) < 4 {
				return routes, true, fmt.Errorf("netlink: truncated NLMSG_ERROR")
			}
			if e := decodeAckErrno(payload); e != 0 {
				return routes, true, fmt.Errorf("netlink: route dump: %w", e)
			}
		case rtmNewRoute:
			if rt, ok := parseRouteMsg(payload); ok {
				routes = append(routes, rt)
			}
		}
	}
	return routes, false, nil
}

// routeWire is the resolved per-programmer route-command shape: the netlink
// rendering of the exec backend's `dev ... via ... initrwnd` selectors.
type routeWire struct {
	gw       netip.Addr // invalid when unset
	oif      uint32
	initRwnd bool
	table    uint8
}

// appendRouteReq appends one RTM_NEWROUTE (replace) or RTM_DELROUTE request
// for op, mirroring linux.Routes.SetCommand / DelCommand semantics:
// replace-style installs (NLM_F_CREATE|NLM_F_REPLACE), proto static, the
// configured dev/via selectors on both install and delete, and
// RTAX_INITCWND (plus RTAX_INITRWND when configured) on installs only.
// Deletes use the wildcard scope RT_SCOPE_NOWHERE exactly as `ip route del`
// does.
func appendRouteReq(b []byte, op core.RouteOp, w *routeWire, seq uint32) []byte {
	typ := uint16(rtmNewRoute)
	flags := uint16(nlmFRequest | nlmFAck | nlmFCreate | nlmFReplace)
	if op.Clear {
		typ = rtmDelRoute
		flags = nlmFRequest | nlmFAck
	}
	start := len(b)
	b = append(b, zeros[:nlHdrLen+rtMsgLen]...)
	m := b[start+nlHdrLen:]
	addr := op.Prefix.Masked().Addr()
	if addr.Is4() {
		m[0] = afInet
	} else {
		m[0] = afInet6
	}
	m[1] = byte(op.Prefix.Bits())
	m[4] = w.table
	m[5] = rtprotStatic
	if op.Clear {
		m[6] = rtScopeNowhere // wildcard: match any scope, like ip route del
	} else {
		m[7] = rtnUnicast
		if !w.gw.IsValid() && w.oif != 0 {
			m[6] = rtScopeLink // directly-attached route, ip's default without via
		} else {
			m[6] = rtScopeUniverse
		}
	}
	if addr.Is4() {
		a := addr.As4()
		b = appendAttr(b, rtaDst, a[:])
	} else {
		a := addr.As16()
		b = appendAttr(b, rtaDst, a[:])
	}
	if w.gw.IsValid() {
		if w.gw.Is4() {
			a := w.gw.As4()
			b = appendAttr(b, rtaGateway, a[:])
		} else {
			a := w.gw.As16()
			b = appendAttr(b, rtaGateway, a[:])
		}
	}
	if w.oif != 0 {
		b = appendAttrU32(b, rtaOif, w.oif)
	}
	if !op.Clear {
		mStart := len(b)
		b = append(b, zeros[:4]...)
		b = appendAttrU32(b, rtaxInitCwnd, uint32(op.Window))
		if w.initRwnd {
			b = appendAttrU32(b, rtaxInitRwnd, uint32(op.Window))
		}
		ne.PutUint16(b[mStart:], uint16(len(b)-mStart))
		ne.PutUint16(b[mStart+2:], rtaMetrics)
	}
	putNlHdr(b[start:], len(b)-start, typ, flags, seq)
	return b
}

// appendRouteDumpReq appends the RTM_GETROUTE dump request covering every
// family and table.
func appendRouteDumpReq(b []byte, seq uint32) []byte {
	start := len(b)
	b = append(b, zeros[:nlHdrLen+rtMsgLen]...)
	putNlHdr(b[start:], nlHdrLen+rtMsgLen, rtmGetRoute, nlmFRequest|nlmFDump, seq)
	return b
}

// appendProbeReq appends a deliberately invalid RTM_NEWROUTE (IPv4 with
// dst_len 33). The kernel checks CAP_NET_ADMIN before it parses the route,
// so the ack distinguishes permission from validity without mutating
// anything: EPERM means this process may not program routes, EINVAL means
// it may (the request reached the validator).
func appendProbeReq(b []byte, seq uint32) []byte {
	start := len(b)
	b = append(b, zeros[:nlHdrLen+rtMsgLen]...)
	m := b[start+nlHdrLen:]
	m[0] = afInet
	m[1] = 33 // > 32: guaranteed -EINVAL from rtm_to_fib_config
	m[4] = rtTableMain
	m[5] = rtprotStatic
	m[7] = rtnUnicast
	putNlHdr(b[start:], len(b)-start, rtmNewRoute, nlmFRequest|nlmFAck|nlmFCreate|nlmFReplace, seq)
	return b
}
