package netlink

import (
	"errors"
	"fmt"

	"riptide/internal/core"
)

// DefaultRecvBuf is the per-datagram receive buffer size. Kernel sock_diag
// dumps fill each response skb to ~32KiB; a generous buffer means no
// silent truncation even on kernels with larger dump batches.
const DefaultRecvBuf = 256 << 10

// SamplerConfig configures a netlink connection sampler.
type SamplerConfig struct {
	// Dial opens the NETLINK_SOCK_DIAG conversation; nil means the
	// platform Dial.
	Dial DialFunc
	// RecvBuf is the receive buffer size in bytes; 0 means DefaultRecvBuf.
	RecvBuf int
	// Families are the address families to dump; nil means IPv4 then IPv6.
	// Values are Linux AF_* numbers.
	Families []uint8
}

// Sampler implements core.ConnectionSampler over NETLINK_SOCK_DIAG: one
// INET_DIAG dump per address family per tick, decoded straight out of the
// receive buffer into the agent's pooled observation buffer. No fork, no
// exec, no text; steady-state sampling allocates nothing.
//
// The netlink socket persists across ticks and is re-dialed on the tick
// after any conversation error, so a transiently wedged dump cannot poison
// its successors (sequence numbers fence off stale responses as well).
//
// Sampler is not safe for concurrent use; the agent serializes sampling
// under its tick lock.
type Sampler struct {
	cfg  SamplerConfig
	conn Conn
	seq  uint32
	recv []byte
	req  []byte
}

// NewSampler returns a netlink-backed sampler.
func NewSampler(cfg SamplerConfig) (*Sampler, error) {
	if cfg.Dial == nil {
		cfg.Dial = Dial
	}
	if cfg.RecvBuf == 0 {
		cfg.RecvBuf = DefaultRecvBuf
	}
	if cfg.RecvBuf < nlHdrLen {
		return nil, fmt.Errorf("netlink: RecvBuf %d too small", cfg.RecvBuf)
	}
	if cfg.Families == nil {
		cfg.Families = []uint8{afInet, afInet6}
	}
	return &Sampler{cfg: cfg, recv: make([]byte, cfg.RecvBuf)}, nil
}

var _ core.ConnectionSampler = (*Sampler)(nil)

// SampleConnections implements core.ConnectionSampler: observations are
// appended to buf per the pooled-buffer contract. On any conversation error
// the socket is closed (to be re-dialed next call) and nil, err returned,
// matching the exec sampler's behavior.
func (s *Sampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	obs := buf
	for _, family := range s.cfg.Families {
		var err error
		obs, err = s.dump(family, obs)
		if err != nil {
			s.closeConn()
			return nil, err
		}
	}
	return obs, nil
}

// dump runs one full INET_DIAG dump for family, appending observations.
func (s *Sampler) dump(family uint8, obs []core.Observation) ([]core.Observation, error) {
	if s.conn == nil {
		c, err := s.cfg.Dial(ProtoSockDiag)
		if err != nil {
			return nil, err
		}
		s.conn = c
	}
	s.seq++
	if s.seq == 0 {
		s.seq = 1 // 0 is the parser's accept-any sentinel; never send it
	}
	s.req = appendDiagDumpReq(s.req[:0], family, s.seq)
	if err := s.conn.Send(s.req); err != nil {
		return nil, fmt.Errorf("netlink: sock_diag dump request (family %d): %w", family, err)
	}
	for {
		n, err := s.conn.Receive(s.recv)
		if err != nil {
			return nil, fmt.Errorf("netlink: sock_diag dump receive (family %d): %w", family, err)
		}
		if n == 0 {
			return nil, errors.New("netlink: empty datagram mid-dump")
		}
		if n > len(s.recv) {
			n = len(s.recv) // kernel reported truncation; parse what arrived
		}
		var done bool
		obs, done, err = ParseDiagDump(obs, s.recv[:n], s.seq)
		if err != nil {
			return nil, err
		}
		if done {
			return obs, nil
		}
	}
}

// Probe implements core.Prober: one throwaway dump proves the kernel
// supports NETLINK_SOCK_DIAG and this process may read it.
func (s *Sampler) Probe() error {
	_, err := s.SampleConnections(nil)
	return err
}

// Close releases the netlink socket. The sampler stays usable: the next
// sample re-dials.
func (s *Sampler) Close() error {
	s.closeConn()
	return nil
}

func (s *Sampler) closeConn() {
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}
