package netlink

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/linux"
)

// equivalenceFixture is the socket set both backends observe, as rounds of
// samples. v4 sockets precede v6 because the netlink sampler dumps per
// family (IPv4 then IPv6) while the exec sampler takes the text in file
// order — same ordering in the fixture means same observation order, which
// matters because the combiner folds observations in order. RTTs are whole
// milliseconds so the ss decimal rendering round-trips exactly; each round
// has destinations with several connections so combining actually runs.
func equivalenceFixture() [][]core.Observation {
	base := []core.Observation{
		{Dst: netip.MustParseAddr("10.1.0.1"), Cwnd: 40, RTT: 12 * time.Millisecond, BytesAcked: 9000, SegsOut: 80},
		{Dst: netip.MustParseAddr("10.1.0.1"), Cwnd: 20, RTT: 14 * time.Millisecond, BytesAcked: 100, SegsOut: 10},
		{Dst: netip.MustParseAddr("10.1.0.2"), Cwnd: 64, RTT: 9 * time.Millisecond, BytesAcked: 50000, Retrans: 2, SegsOut: 400},
		{Dst: netip.MustParseAddr("172.16.5.5"), Cwnd: 12, RTT: 180 * time.Millisecond, BytesAcked: 777, Lost: 1, SegsOut: 33},
		{Dst: netip.MustParseAddr("::ffff:192.0.2.7"), Cwnd: 28, RTT: 45 * time.Millisecond, BytesAcked: 1234, SegsOut: 55},
		{Dst: netip.MustParseAddr("2001:db8::9"), Cwnd: 50, RTT: 22 * time.Millisecond, BytesAcked: 31000, SegsOut: 210},
		{Dst: netip.MustParseAddr("2001:db8::9"), Cwnd: 70, RTT: 21 * time.Millisecond, BytesAcked: 64000, Retrans: 1, SegsOut: 500},
	}
	// Round 2 moves some windows so the agents must reprogram; round 3
	// repeats it so the steady state is compared too.
	moved := append([]core.Observation(nil), base...)
	for i := range moved {
		if i%2 == 0 {
			moved[i].Cwnd += 25
			moved[i].BytesAcked += 5000
		}
	}
	return [][]core.Observation{base, moved, moved}
}

// ssRunner serves canned `ss -tin` text to the exec sampler.
type ssRunner struct{ out []byte }

func (r *ssRunner) Run(name string, args ...string) ([]byte, error) {
	if name != "ss" {
		return nil, fmt.Errorf("unexpected command %q", name)
	}
	return r.out, nil
}

// swapSampler lets the test hand the agent a different sampler each round.
type swapSampler struct{ inner core.ConnectionSampler }

func (s *swapSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	return s.inner.SampleConnections(buf)
}

// planRecorder captures every route batch the agent commits.
type planRecorder struct{ batches [][]core.RouteOp }

func (p *planRecorder) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	p.batches = append(p.batches, []core.RouteOp{{Prefix: prefix, Window: cwnd}})
	return nil
}

func (p *planRecorder) ClearInitCwnd(prefix netip.Prefix) error {
	p.batches = append(p.batches, []core.RouteOp{{Prefix: prefix, Clear: true}})
	return nil
}

func (p *planRecorder) ProgramRoutes(ops []core.RouteOp) []error {
	batch := append([]core.RouteOp(nil), ops...)
	// The batch is one atomic plan; ordering within it is not part of the
	// contract, so normalize before comparing across backends.
	sort.Slice(batch, func(i, j int) bool {
		return batch[i].Prefix.String() < batch[j].Prefix.String()
	})
	p.batches = append(p.batches, batch)
	return nil
}

// TestBackendEquivalence drives two complete agents — one sampling through
// the exec backend's text parser, one through the netlink binary decoder —
// over the same socket set and requires byte-identical outcomes: the same
// observations, the same committed route plans, the same learned tables.
func TestBackendEquivalence(t *testing.T) {
	rounds := equivalenceFixture()

	execSwap, nlSwap := &swapSampler{}, &swapSampler{}
	execRec, nlRec := &planRecorder{}, &planRecorder{}
	newAgent := func(s core.ConnectionSampler, r *planRecorder) *core.Agent {
		agent, err := core.New(core.Config{
			Sampler: s,
			Routes:  r,
			Clock:   func() time.Duration { return 0 },
			Shards:  4,
		})
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		return agent
	}
	execAgent := newAgent(execSwap, execRec)
	nlAgent := newAgent(nlSwap, nlRec)

	for round, socks := range rounds {
		execSampler, err := linux.NewSampler(&ssRunner{out: linux.RenderSS(socks)})
		if err != nil {
			t.Fatalf("round %d: linux.NewSampler: %v", round, err)
		}
		mem := &MemConn{Sockets: socks}
		nlSampler, err := NewSampler(SamplerConfig{Dial: mem.Dialer()})
		if err != nil {
			t.Fatalf("round %d: netlink.NewSampler: %v", round, err)
		}

		// The samplers themselves must agree before the agents run: same
		// observations, same order, every field.
		fromText, err := execSampler.SampleConnections(nil)
		if err != nil {
			t.Fatalf("round %d: exec sample: %v", round, err)
		}
		fromWire, err := nlSampler.SampleConnections(nil)
		if err != nil {
			t.Fatalf("round %d: netlink sample: %v", round, err)
		}
		if !reflect.DeepEqual(fromText, fromWire) {
			t.Fatalf("round %d: observation streams diverge:\n exec %+v\n  netlink %+v", round, fromText, fromWire)
		}

		execSwap.inner, nlSwap.inner = execSampler, nlSampler
		if err := execAgent.Tick(); err != nil {
			t.Fatalf("round %d: exec tick: %v", round, err)
		}
		if err := nlAgent.Tick(); err != nil {
			t.Fatalf("round %d: netlink tick: %v", round, err)
		}
	}

	if !reflect.DeepEqual(execRec.batches, nlRec.batches) {
		t.Fatalf("committed plans diverge:\n exec    %+v\n netlink %+v", execRec.batches, nlRec.batches)
	}
	if len(execRec.batches) == 0 {
		t.Fatal("fixture produced no route plans; the equivalence check is vacuous")
	}
	execEntries, nlEntries := execAgent.Entries(), nlAgent.Entries()
	sortEntries := func(es []core.Entry) {
		sort.Slice(es, func(i, j int) bool { return es[i].Prefix.String() < es[j].Prefix.String() })
	}
	sortEntries(execEntries)
	sortEntries(nlEntries)
	if !reflect.DeepEqual(execEntries, nlEntries) {
		t.Fatalf("learned tables diverge:\n exec    %+v\n netlink %+v", execEntries, nlEntries)
	}
	if len(execEntries) == 0 {
		t.Fatal("fixture produced no learned entries")
	}
}
