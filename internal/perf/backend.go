package perf

import (
	"fmt"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"riptide/internal/core"
	"riptide/internal/linux"
	"riptide/internal/netlink"
)

// catRunner backs the exec-sampler benchmark: it satisfies linux.Runner by
// really forking a process per sample — `cat <fixture>` standing in for
// `ss -tin` — so the measurement carries the exec backend's true per-tick
// cost (fork/exec, pipe copy, text parse) against a deterministic fixture.
type catRunner struct {
	runner linux.ExecRunner
	path   string
}

func (c catRunner) Run(name string, args ...string) ([]byte, error) {
	return c.runner.Run("cat", c.path)
}

// trueRunner backs the exec route-programming benchmark: a BatchRunner that
// forks `true` in place of `ip -force -batch -`, keeping the full exec cost
// (fork/exec plus batch-script rendering and stdin pipe) while programming
// nothing.
type trueRunner struct {
	runner linux.ExecRunner
}

func (t trueRunner) Run(name string, args ...string) ([]byte, error) {
	return t.runner.Run("true")
}

func (t trueRunner) RunInput(input []byte, name string, args ...string) ([]byte, error) {
	return t.runner.RunInput(input, "true")
}

// CollectBackends measures the sampling and route-programming backends
// head to head: the netlink backend against an in-memory kernel serving
// canned INET_DIAG dumps, the exec backend forking a real process per
// operation over the equivalent text fixture. The exec points are skipped
// (not failed) on hosts without the stand-in binaries.
func CollectBackends(sizes []int, minTime time.Duration) ([]Benchmark, error) {
	var out []Benchmark
	haveCat := commandAvailable("cat")
	haveTrue := commandAvailable("true")
	for _, size := range sizes {
		obs := SyntheticObservations(size)

		mem := &netlink.MemConn{Sockets: obs}
		nlSampler, err := netlink.NewSampler(netlink.SamplerConfig{Dial: mem.Dialer()})
		if err != nil {
			return nil, err
		}
		var buf []core.Observation
		b, err := Measure(fmt.Sprintf("SamplerBackend/socks=%d/backend=netlink", size), minTime, func() error {
			buf, err = nlSampler.SampleConnections(buf[:0])
			return err
		})
		if err != nil {
			return nil, err
		}
		b.Destinations = size
		out = append(out, b)

		if !haveCat {
			continue
		}
		dir, err := os.MkdirTemp("", "riptide-bench")
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, "ss.txt")
		if err := os.WriteFile(path, linux.RenderSS(obs), 0o644); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		execSampler, err := linux.NewSampler(catRunner{path: path})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		b, err = Measure(fmt.Sprintf("SamplerBackend/socks=%d/backend=exec", size), minTime, func() error {
			buf, err = execSampler.SampleConnections(buf[:0])
			return err
		})
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		b.Destinations = size
		out = append(out, b)
	}

	ops := syntheticRouteOps(routeProgramOps)
	mem := &netlink.MemConn{DiscardRoutes: true}
	nlRoutes, err := netlink.NewRoutes(netlink.RoutesConfig{
		Dial: mem.Dialer(),
		RoutesConfig: linux.RoutesConfig{
			Gateway: "10.0.0.1",
		},
	})
	if err != nil {
		return nil, err
	}
	b, err := Measure(fmt.Sprintf("RouteProgramBackend/ops=%d/backend=netlink", routeProgramOps), minTime, func() error {
		if errs := nlRoutes.ProgramRoutes(ops); errs != nil {
			return fmt.Errorf("perf: netlink route errors: %v", errs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, b)

	if haveTrue {
		execRoutes, err := linux.NewRoutes(trueRunner{}, linux.RoutesConfig{Gateway: "10.0.0.1"})
		if err != nil {
			return nil, err
		}
		b, err := Measure(fmt.Sprintf("RouteProgramBackend/ops=%d/backend=exec", routeProgramOps), minTime, func() error {
			if errs := execRoutes.ProgramRoutes(ops); errs != nil {
				return fmt.Errorf("perf: exec route errors: %v", errs)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// syntheticRouteOps builds n install ops over distinct /24s.
func syntheticRouteOps(n int) []core.RouteOp {
	ops := make([]core.RouteOp, n)
	for i := range ops {
		ops[i] = core.RouteOp{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24),
			Window: 10 + i%90,
		}
	}
	return ops
}

func commandAvailable(name string) bool {
	_, err := exec.LookPath(name)
	return err == nil
}
