// Package perf is the perf-trajectory harness for the Riptide agent hot
// path. It builds synthetic sampling backends at controlled sizes, runs the
// agent's Tick loop under a Go-bench-style measuring loop, and serialises
// the results as machine-readable JSON (BENCH_<n>.json artefacts) so that
// successive PRs can be compared number-for-number.
//
// The harness lives outside _test.go files on purpose: cmd/riptide-bench
// links it into a plain binary, so perf snapshots can be produced on hosts
// where `go test` tooling is unavailable.
package perf

import (
	"fmt"
	"net/netip"
	"runtime"
	"time"

	"riptide/internal/core"
	"riptide/internal/kernel"
)

// SyntheticObservations builds an n-connection observed table spanning many
// /24 destination prefixes with varied windows, RTTs, and byte counts — the
// shape of a busy production host's `ss -tin` output.
func SyntheticObservations(n int) []core.Observation {
	obs := make([]core.Observation, 0, n)
	for i := 0; i < n; i++ {
		obs = append(obs, core.Observation{
			Dst:        netip.AddrFrom4([4]byte{10, byte(i / 250 % 250), byte(i % 250), 1}),
			Cwnd:       10 + i%90,
			RTT:        time.Duration(20+i%200) * time.Millisecond,
			BytesAcked: int64(i) * 1500,
		})
	}
	return obs
}

// StaticSampler replays a fixed observation set, appending into the
// caller's pooled buffer per the ConnectionSampler contract.
type StaticSampler []core.Observation

// SampleConnections implements core.ConnectionSampler.
func (s StaticSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	return append(buf, s...), nil
}

// NopRoutes discards route programs; it measures the agent alone.
type NopRoutes struct{}

// SetInitCwnd implements core.RouteProgrammer.
func (NopRoutes) SetInitCwnd(netip.Prefix, int) error { return nil }

// ClearInitCwnd implements core.RouteProgrammer.
func (NopRoutes) ClearInitCwnd(netip.Prefix) error { return nil }

// NopBatchRoutes is NopRoutes plus a no-op batch surface, exercising the
// agent's batched programming path.
type NopBatchRoutes struct{ NopRoutes }

// ProgramRoutes implements core.BatchRouteProgrammer.
func (NopBatchRoutes) ProgramRoutes([]core.RouteOp) []error { return nil }

var (
	_ core.ConnectionSampler    = StaticSampler(nil)
	_ core.RouteProgrammer      = NopRoutes{}
	_ core.BatchRouteProgrammer = NopBatchRoutes{}
)

// NewTickAgent builds an agent over a synthetic conns-connection backend,
// ready for steady-state Tick measurement. The clock is pinned at zero so
// TTL expiry never fires mid-measurement; with static observations every
// post-warmup tick re-learns the same windows and programs nothing, which
// isolates the sample/plan/commit pipeline the benchmarks target. With
// batch true the route sink exposes the batched programming surface.
func NewTickAgent(conns, shards int, batch bool) (*core.Agent, error) {
	var routes core.RouteProgrammer = NopRoutes{}
	if batch {
		routes = NopBatchRoutes{}
	}
	return core.New(core.Config{
		Sampler: StaticSampler(SyntheticObservations(conns)),
		Routes:  routes,
		Clock:   func() time.Duration { return 0 },
		Shards:  shards,
	})
}

// Benchmark is one measured series point.
type Benchmark struct {
	Name         string  `json:"name"`
	Destinations int     `json:"destinations,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"nsPerOp"`
	AllocsPerOp  float64 `json:"allocsPerOp"`
	BytesPerOp   float64 `json:"bytesPerOp"`
}

// Baseline pins a pre-optimisation reference measurement so a snapshot
// carries its own point of comparison.
type Baseline struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
}

// Snapshot is the BENCH_<n>.json artefact: environment provenance plus the
// measured series.
type Snapshot struct {
	Schema      string      `json:"schema"`
	GeneratedAt string      `json:"generatedAt,omitempty"`
	GoVersion   string      `json:"goVersion"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Baselines   []Baseline  `json:"baselines,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// SnapshotSchema identifies the artefact layout for downstream tooling.
const SnapshotSchema = "riptide/perf-snapshot/v1"

// Measure runs fn in a calibrated loop until the measured batch takes at
// least minTime, then reports per-op wall time and allocation figures
// (mirroring testing.B's ns/op, allocs/op, B/op).
func Measure(name string, minTime time.Duration, fn func() error) (Benchmark, error) {
	if minTime <= 0 {
		minTime = 300 * time.Millisecond
	}
	// Warm up once so pools and maps reach steady state before timing.
	if err := fn(); err != nil {
		return Benchmark{}, fmt.Errorf("perf: %s warmup: %w", name, err)
	}
	var ms runtime.MemStats
	for iters := 1; ; iters *= 2 {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startMallocs, startBytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return Benchmark{}, fmt.Errorf("perf: %s: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if elapsed >= minTime || iters >= 1<<24 {
			n := float64(iters)
			return Benchmark{
				Name:        name,
				Iterations:  iters,
				NsPerOp:     float64(elapsed.Nanoseconds()) / n,
				AllocsPerOp: float64(ms.Mallocs-startMallocs) / n,
				BytesPerOp:  float64(ms.TotalAlloc-startBytes) / n,
			}, nil
		}
	}
}

// shardVariants returns the shard counts worth tracking on this machine:
// the serial reference (1) and the parallel default; on single-CPU hosts an
// 8-shard point is added so the sharded code path stays measured.
func shardVariants() []int {
	variants := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		variants = append(variants, p)
	} else {
		variants = append(variants, 8)
	}
	return variants
}

// Collect measures the agent-tick scaling series at the given observed-table
// sizes (serial and sharded variants, batched route programming) plus the
// batched-vs-individual route programming comparison, and returns the
// snapshot. minTime bounds each measured batch, not the whole run.
func Collect(sizes []int, minTime time.Duration) (Snapshot, error) {
	snap := Snapshot{
		Schema:     SnapshotSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, size := range sizes {
		for _, shards := range shardVariants() {
			agent, err := NewTickAgent(size, shards, true)
			if err != nil {
				return Snapshot{}, err
			}
			name := fmt.Sprintf("AgentTick/dest=%d/shards=%d", size, shards)
			b, err := Measure(name, minTime, agent.Tick)
			if err != nil {
				return Snapshot{}, err
			}
			b.Destinations = size
			b.Shards = shards
			snap.Benchmarks = append(snap.Benchmarks, b)
			if err := agent.Close(); err != nil {
				return Snapshot{}, err
			}
		}
	}
	progs, err := collectRoutePrograms(minTime)
	if err != nil {
		return Snapshot{}, err
	}
	snap.Benchmarks = append(snap.Benchmarks, progs...)
	return snap, nil
}

// routeProgramOps is the batch size for the route-programming comparison:
// roughly the per-tick route churn of a large agent.
const routeProgramOps = 1024

// collectRoutePrograms compares per-op route installation against the
// batched ApplyRoutes path on the simulated kernel.
func collectRoutePrograms(minTime time.Duration) ([]Benchmark, error) {
	host, err := kernel.NewHost(netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		return nil, err
	}
	routes := make([]kernel.Route, routeProgramOps)
	updates := make([]kernel.RouteUpdate, routeProgramOps)
	for i := range routes {
		routes[i] = kernel.Route{
			Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24),
			InitCwnd: 10 + i%90,
			Proto:    "static",
		}
		updates[i] = kernel.RouteUpdate{Route: routes[i]}
	}
	individual, err := Measure(fmt.Sprintf("RouteProgram/ops=%d/mode=individual", routeProgramOps), minTime, func() error {
		for _, r := range routes {
			if err := host.AddRoute(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	batched, err := Measure(fmt.Sprintf("RouteProgram/ops=%d/mode=batch", routeProgramOps), minTime, func() error {
		if errs := host.ApplyRoutes(updates); errs != nil {
			return fmt.Errorf("perf: batch route errors: %v", errs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Benchmark{individual, batched}, nil
}
