// Package perf is the perf-trajectory harness for the Riptide agent hot
// path. It builds synthetic sampling backends at controlled sizes, runs the
// agent's Tick loop under a Go-bench-style measuring loop, and serialises
// the results as machine-readable JSON (BENCH_<n>.json artefacts) so that
// successive PRs can be compared number-for-number.
//
// The harness lives outside _test.go files on purpose: cmd/riptide-bench
// links it into a plain binary, so perf snapshots can be produced on hosts
// where `go test` tooling is unavailable.
package perf

import (
	"fmt"
	"net/netip"
	"runtime"
	"time"

	"riptide/internal/core"
	"riptide/internal/kernel"
)

// SyntheticObservations builds an n-connection observed table spanning many
// destination addresses with varied windows, RTTs, and byte counts — the
// shape of a busy production host's `ss -tin` output. Addresses are unique
// up to 250^3 connections (the previous encoding silently wrapped at 62 500,
// so larger "destination counts" re-observed the same hosts), and hosts fill
// /24s densely so prefix-aggregation runs see realistic covering groups.
func SyntheticObservations(n int) []core.Observation {
	obs := make([]core.Observation, 0, n)
	for i := 0; i < n; i++ {
		obs = append(obs, core.Observation{
			Dst:        netip.AddrFrom4([4]byte{10, byte(i / 62500 % 250), byte(i / 250 % 250), byte(1 + i%250)}),
			Cwnd:       10 + i%90,
			RTT:        time.Duration(20+i%200) * time.Millisecond,
			BytesAcked: int64(i) * 1500,
		})
	}
	return obs
}

// StaticSampler replays a fixed observation set, appending into the
// caller's pooled buffer per the ConnectionSampler contract. Because the
// copy lands in the agent's own (ping-ponged) buffers, successive rounds
// present equal observations in distinct backing arrays — the delta tick's
// element-compare path, not its identical-slice path.
type StaticSampler []core.Observation

// SampleConnections implements core.ConnectionSampler.
func (s StaticSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	return append(buf, s...), nil
}

// FixedSampler returns the same backing slice every round — the shape of a
// sampler with a stable connection table and its own buffer. The delta tick
// recognises the identical slice and skips ingest and regrouping entirely.
type FixedSampler []core.Observation

// SampleConnections implements core.ConnectionSampler.
func (s FixedSampler) SampleConnections([]core.Observation) ([]core.Observation, error) {
	return s, nil
}

// ChurnSampler replays a fixed table with a deterministic ~1 in frac of the
// entries' windows mutated each round, modelling steady-state sampling where
// a small slice of destinations is actually changing. The base table stays
// pristine and every round diverges from the previous one at ~2/frac of the
// indices. It alternates between two internal copies of the table — the
// slice handed out last round stays frozen while the other is repaired
// (its stale mutations reverted from base) and re-mutated, so the caller
// sees a fresh backing array each round without paying a full table copy.
type ChurnSampler struct {
	base []core.Observation
	bufs [2][]core.Observation
	muts [2][]int // positions mutated in each buffer, reverted on reuse
	frac int
	tick int
}

// NewChurnSampler builds a ChurnSampler mutating 1 in frac entries per
// round (frac <= 0 means 100, i.e. 1% churn).
func NewChurnSampler(base []core.Observation, frac int) *ChurnSampler {
	if frac <= 0 {
		frac = 100
	}
	return &ChurnSampler{base: base, frac: frac}
}

// SampleConnections implements core.ConnectionSampler.
func (s *ChurnSampler) SampleConnections([]core.Observation) ([]core.Observation, error) {
	cur := s.tick & 1
	out := s.bufs[cur]
	if out == nil {
		out = append([]core.Observation(nil), s.base...)
	}
	for _, i := range s.muts[cur] {
		out[i] = s.base[i]
	}
	muts := s.muts[cur][:0]
	s.tick++
	n := len(out)
	for j := 0; j < n/s.frac; j++ {
		i := (j*9973 + s.tick*31337) % n
		o := &out[i]
		o.Cwnd = 10 + (o.Cwnd+s.tick+j)%90
		muts = append(muts, i)
	}
	s.bufs[cur] = out
	s.muts[cur] = muts
	return out, nil
}

// NopRoutes discards route programs; it measures the agent alone.
type NopRoutes struct{}

// SetInitCwnd implements core.RouteProgrammer.
func (NopRoutes) SetInitCwnd(netip.Prefix, int) error { return nil }

// ClearInitCwnd implements core.RouteProgrammer.
func (NopRoutes) ClearInitCwnd(netip.Prefix) error { return nil }

// NopBatchRoutes is NopRoutes plus a no-op batch surface, exercising the
// agent's batched programming path.
type NopBatchRoutes struct{ NopRoutes }

// ProgramRoutes implements core.BatchRouteProgrammer.
func (NopBatchRoutes) ProgramRoutes([]core.RouteOp) []error { return nil }

var (
	_ core.ConnectionSampler    = StaticSampler(nil)
	_ core.RouteProgrammer      = NopRoutes{}
	_ core.BatchRouteProgrammer = NopBatchRoutes{}
)

// NewTickAgent builds an agent over a synthetic conns-connection backend,
// ready for steady-state Tick measurement. The clock is pinned at zero so
// TTL expiry never fires mid-measurement; with static observations every
// post-warmup tick re-learns the same windows and programs nothing, which
// isolates the sample/plan/commit pipeline the benchmarks target. With
// batch true the route sink exposes the batched programming surface.
func NewTickAgent(conns, shards int, batch bool) (*core.Agent, error) {
	return newTickAgent(StaticSampler(SyntheticObservations(conns)), shards, batch, false)
}

// newTickAgent is the measurement-agent constructor behind the series:
// any sampler, optional batch surface, and optional full-rescan mode (the
// pre-delta baseline the delta series are compared against).
func newTickAgent(sampler core.ConnectionSampler, shards int, batch, fullRescan bool) (*core.Agent, error) {
	var routes core.RouteProgrammer = NopRoutes{}
	if batch {
		routes = NopBatchRoutes{}
	}
	return core.New(core.Config{
		Sampler:    sampler,
		Routes:     routes,
		Clock:      func() time.Duration { return 0 },
		Shards:     shards,
		FullRescan: fullRescan,
	})
}

// Benchmark is one measured series point.
type Benchmark struct {
	Name         string  `json:"name"`
	Destinations int     `json:"destinations,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Mode         string  `json:"mode,omitempty"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"nsPerOp"`
	AllocsPerOp  float64 `json:"allocsPerOp"`
	BytesPerOp   float64 `json:"bytesPerOp"`
}

// Baseline pins a pre-optimisation reference measurement so a snapshot
// carries its own point of comparison.
type Baseline struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
}

// Snapshot is the BENCH_<n>.json artefact: environment provenance plus the
// measured series.
type Snapshot struct {
	Schema      string      `json:"schema"`
	GeneratedAt string      `json:"generatedAt,omitempty"`
	GoVersion   string      `json:"goVersion"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Baselines   []Baseline  `json:"baselines,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// SnapshotSchema identifies the artefact layout for downstream tooling.
const SnapshotSchema = "riptide/perf-snapshot/v1"

// Measure runs fn in a calibrated loop until the measured batch takes at
// least minTime, then reports per-op wall time and allocation figures
// (mirroring testing.B's ns/op, allocs/op, B/op).
func Measure(name string, minTime time.Duration, fn func() error) (Benchmark, error) {
	if minTime <= 0 {
		minTime = 300 * time.Millisecond
	}
	// Warm up once so pools and maps reach steady state before timing.
	if err := fn(); err != nil {
		return Benchmark{}, fmt.Errorf("perf: %s warmup: %w", name, err)
	}
	var ms runtime.MemStats
	for iters := 1; ; iters *= 2 {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startMallocs, startBytes := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return Benchmark{}, fmt.Errorf("perf: %s: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if elapsed >= minTime || iters >= 1<<24 {
			n := float64(iters)
			return Benchmark{
				Name:        name,
				Iterations:  iters,
				NsPerOp:     float64(elapsed.Nanoseconds()) / n,
				AllocsPerOp: float64(ms.Mallocs-startMallocs) / n,
				BytesPerOp:  float64(ms.TotalAlloc-startBytes) / n,
			}, nil
		}
	}
}

// multiShards returns the multi-shard count worth tracking on this machine
// — GOMAXPROCS clamped to the agent's documented default-shard cap (the
// unclamped value used to make the label and the effective shard count
// diverge on >16-core hosts) — plus the honest label for its series: a
// multi-shard run only counts as "parallel" when more than one core is
// actually available; at GOMAXPROCS=1 the same configuration is merely
// lock-striped and must not be sold as a parallelism measurement.
func multiShards() (shards int, label string) {
	shards = 8
	if p := runtime.GOMAXPROCS(0); p > 1 {
		shards = p
		if shards > core.MaxDefaultShards {
			shards = core.MaxDefaultShards
		}
		return shards, "parallel"
	}
	return shards, "striped"
}

// measureTick runs one agent-tick series point and stamps its dimensions.
func measureTick(name string, size, shards int, mode string, minTime time.Duration, sampler core.ConnectionSampler, fullRescan bool) (Benchmark, error) {
	agent, err := newTickAgent(sampler, shards, true, fullRescan)
	if err != nil {
		return Benchmark{}, err
	}
	b, err := Measure(name, minTime, agent.Tick)
	if err != nil {
		_ = agent.Close()
		return Benchmark{}, err
	}
	b.Destinations = size
	b.Shards = shards
	b.Mode = mode
	return b, agent.Close()
}

// Collect measures the agent-tick scaling series at the given observed-table
// sizes plus the batched-vs-individual route programming comparison, and
// returns the snapshot. Each size gets six points: the serial full-rescan
// baseline, the multi-shard full rescan (labeled parallel or striped per
// the host), and the delta steady state (identical stream, ingest skipped)
// and delta under ~1% churn at both shards=1 and the multi-shard count —
// the serial delta points are the like-for-like comparison against the
// serial full-rescan baseline on single-core hosts, where multi-shard runs
// pay striping overhead without any parallel payoff. minTime bounds each
// measured batch, not the whole run.
func Collect(sizes []int, minTime time.Duration) (Snapshot, error) {
	snap := Snapshot{
		Schema:     SnapshotSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	multi, multiLabel := multiShards()
	for _, size := range sizes {
		base := SyntheticObservations(size)
		points := []struct {
			name       string
			shards     int
			mode       string
			sampler    core.ConnectionSampler
			fullRescan bool
		}{
			{fmt.Sprintf("AgentTick/dest=%d/shards=1/mode=full", size),
				1, "full", StaticSampler(base), true},
			{fmt.Sprintf("AgentTick/dest=%d/shards=%d/mode=full/%s", size, multi, multiLabel),
				multi, "full/" + multiLabel, StaticSampler(base), true},
			{fmt.Sprintf("AgentTick/dest=%d/shards=1/mode=delta/steady", size),
				1, "delta/steady", FixedSampler(base), false},
			{fmt.Sprintf("AgentTick/dest=%d/shards=1/mode=delta/churn=1%%", size),
				1, "delta/churn=1%", NewChurnSampler(base, 100), false},
			{fmt.Sprintf("AgentTick/dest=%d/shards=%d/mode=delta/steady", size, multi),
				multi, "delta/steady", FixedSampler(base), false},
			{fmt.Sprintf("AgentTick/dest=%d/shards=%d/mode=delta/churn=1%%", size, multi),
				multi, "delta/churn=1%", NewChurnSampler(base, 100), false},
		}
		for _, pt := range points {
			b, err := measureTick(pt.name, size, pt.shards, pt.mode, minTime, pt.sampler, pt.fullRescan)
			if err != nil {
				return Snapshot{}, err
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	progs, err := collectRoutePrograms(minTime)
	if err != nil {
		return Snapshot{}, err
	}
	snap.Benchmarks = append(snap.Benchmarks, progs...)
	return snap, nil
}

// routeProgramOps is the batch size for the route-programming comparison:
// roughly the per-tick route churn of a large agent.
const routeProgramOps = 1024

// collectRoutePrograms compares per-op route installation against the
// batched ApplyRoutes path on the simulated kernel.
func collectRoutePrograms(minTime time.Duration) ([]Benchmark, error) {
	host, err := kernel.NewHost(netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		return nil, err
	}
	routes := make([]kernel.Route, routeProgramOps)
	updates := make([]kernel.RouteUpdate, routeProgramOps)
	for i := range routes {
		routes[i] = kernel.Route{
			Prefix:   netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24),
			InitCwnd: 10 + i%90,
			Proto:    "static",
		}
		updates[i] = kernel.RouteUpdate{Route: routes[i]}
	}
	individual, err := Measure(fmt.Sprintf("RouteProgram/ops=%d/mode=individual", routeProgramOps), minTime, func() error {
		for _, r := range routes {
			if err := host.AddRoute(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	batched, err := Measure(fmt.Sprintf("RouteProgram/ops=%d/mode=batch", routeProgramOps), minTime, func() error {
		if errs := host.ApplyRoutes(updates); errs != nil {
			return fmt.Errorf("perf: batch route errors: %v", errs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Benchmark{individual, batched}, nil
}
