package perf

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"net/url"
	"time"

	"riptide/internal/core"
	"riptide/internal/fleet"
	"riptide/internal/gossip"
)

// Fleet-serving series: what one gossip GET costs the serving agent. The
// cached points measure fleet.Server (this PR's encode-once response
// cache); the uncached points re-export and re-encode per request — the
// pre-cache handlers' cost, kept as live-measured baselines so every
// BENCH_<n>.json carries its own point of comparison.

// nullResponseWriter keeps one header map alive and discards bodies, so
// the serving measurement excludes any recorder bookkeeping.
type nullResponseWriter struct {
	h    http.Header
	n    int64
	code int
}

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}

func (w *nullResponseWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func (w *nullResponseWriter) WriteHeader(code int) { w.code = code }

// servingAgent builds an agent holding n merged entries over no-op
// backends, the serving-side fixture.
func servingAgent(n int) (*core.Agent, error) {
	a, err := core.New(core.Config{
		Sampler: StaticSampler(nil),
		Routes:  NopBatchRoutes{},
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		return nil, err
	}
	seed := make([]core.SnapshotEntry, n)
	for i := range seed {
		seed[i] = core.SnapshotEntry{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 62500 % 250), byte(i / 250 % 250), byte(1 + i%250)}), 32),
			Window:  10 + i%90,
			Samples: 50,
		}
	}
	if _, err := a.MergeSnapshot(seed, core.MergePolicy{}); err != nil {
		_ = a.Close()
		return nil, err
	}
	return a, nil
}

// servingKinds maps the measured endpoint kinds to their URL paths.
var servingKinds = []struct {
	kind string
	path string
}{
	{"Digest", fleet.DigestPath},
	{"Delta", fleet.DeltaPath},
	{"Snapshot", fleet.SnapshotPath},
}

// uncachedServingOp renders one endpoint body the way the pre-cache
// handlers did: a fresh export, encode, and gzip writer per request.
func uncachedServingOp(a *core.Agent, kind string) func() error {
	nl := []byte{'\n'}
	return func() error {
		var data []byte
		var err error
		switch kind {
		case "Digest":
			data, err = gossip.EncodeDigest(gossip.TableDigest(a, "bench", "boot-1"))
		case "Delta":
			data, err = gossip.EncodeDelta(gossip.TableDelta(a, "bench", "boot-1", 0))
		case "Snapshot":
			snap := fleet.FromAgent(a, "bench", time.Unix(1, 0))
			snap.Instance = "boot-1"
			data, err = fleet.Encode(snap)
		}
		if err != nil {
			return err
		}
		zw := gzip.NewWriter(io.Discard)
		if _, err := zw.Write(data); err != nil {
			return err
		}
		if _, err := zw.Write(nl); err != nil {
			return err
		}
		return zw.Close()
	}
}

// CollectServing measures the fleet-serving fan-in series at the given
// table sizes: per endpoint kind, the converged steady state (every request
// a cache hit), the churn upper bound (the cache invalidated before every
// request, so each GET pays a full rebuild), and the 304 revalidation path.
// It returns the measured points plus the uncached per-request encodes as
// baselines.
func CollectServing(sizes []int, minTime time.Duration) ([]Benchmark, []Baseline, error) {
	var out []Benchmark
	var baselines []Baseline
	for _, size := range sizes {
		a, err := servingAgent(size)
		if err != nil {
			return nil, nil, err
		}
		srv := fleet.NewServer(a, "bench", "boot-1", func() time.Time { return time.Unix(1, 0) })
		handlers := map[string]http.Handler{
			"Digest":   srv.DigestHandler(),
			"Delta":    srv.DeltaHandler(),
			"Snapshot": srv.SnapshotHandler(),
		}
		for _, k := range servingKinds {
			h := handlers[k.kind]
			req := &http.Request{
				Method: http.MethodGet,
				URL:    &url.URL{Path: k.path},
				Header: http.Header{"Accept-Encoding": []string{"gzip"}},
			}
			w := &nullResponseWriter{}
			serve := func() error {
				w.code = 0
				h.ServeHTTP(w, req)
				if w.code != 0 && w.code != http.StatusOK {
					return fmt.Errorf("perf: serve %s: status %d", k.path, w.code)
				}
				return nil
			}

			b, err := Measure(fmt.Sprintf("Serve%s/entries=%d/mode=converged", k.kind, size), minTime, serve)
			if err != nil {
				_ = a.Close()
				return nil, nil, err
			}
			b.Destinations = size
			out = append(out, b)

			b, err = Measure(fmt.Sprintf("Serve%s/entries=%d/mode=churning", k.kind, size), minTime, func() error {
				srv.Remint("boot-1") // drop the cache: this GET pays the full rebuild
				return serve()
			})
			if err != nil {
				_ = a.Close()
				return nil, nil, err
			}
			b.Destinations = size
			out = append(out, b)

			ub, err := Measure(fmt.Sprintf("Serve%s/entries=%d/mode=uncached", k.kind, size), minTime, uncachedServingOp(a, k.kind))
			if err != nil {
				_ = a.Close()
				return nil, nil, err
			}
			baselines = append(baselines, Baseline{
				Name:        "uncached/" + ub.Name,
				NsPerOp:     ub.NsPerOp,
				AllocsPerOp: ub.AllocsPerOp,
				BytesPerOp:  ub.BytesPerOp,
			})
		}

		// The 304 revalidation path, measured once per size on the digest
		// endpoint (the converged fleet's every-interval request).
		h := handlers["Digest"]
		req := &http.Request{
			Method: http.MethodGet,
			URL:    &url.URL{Path: fleet.DigestPath},
			Header: http.Header{"Accept-Encoding": []string{"gzip"}},
		}
		w := &nullResponseWriter{}
		h.ServeHTTP(w, req)
		req.Header.Set("If-None-Match", w.Header().Get("ETag"))
		b, err := Measure(fmt.Sprintf("ServeDigest/entries=%d/mode=not-modified", size), minTime, func() error {
			w.code = 0
			h.ServeHTTP(w, req)
			if w.code != http.StatusNotModified {
				return fmt.Errorf("perf: revalidation: status %d, want 304", w.code)
			}
			return nil
		})
		if err != nil {
			_ = a.Close()
			return nil, nil, err
		}
		b.Destinations = size
		out = append(out, b)

		if err := a.Close(); err != nil {
			return nil, nil, err
		}
	}
	return out, baselines, nil
}
