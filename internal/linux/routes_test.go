package linux

import (
	"errors"
	"strings"
	"testing"
)

const ipRouteFixture = `default via 10.0.0.1 dev eth0 proto dhcp metric 100
10.0.0.0/24 dev eth0 proto kernel scope link src 10.0.0.5
10.0.0.127 dev eth0 proto static initcwnd 80 via 10.0.0.1
10.1.0.0/16 dev eth0 proto static initcwnd 50
192.168.9.9 via 10.0.0.1 dev eth0 proto static
garbage line that is not a route
2001:db8::/32 dev eth0 proto static initcwnd 40
`

func TestParseIPRouteShow(t *testing.T) {
	routes := ParseIPRouteShow([]byte(ipRouteFixture))
	if len(routes) != 6 {
		t.Fatalf("parsed %d routes, want 6: %+v", len(routes), routes)
	}

	byPrefix := map[string]InstalledRoute{}
	for _, r := range routes {
		byPrefix[r.Prefix.String()] = r
	}

	def, ok := byPrefix["0.0.0.0/0"]
	if !ok || def.Proto != "dhcp" || def.Gateway != "10.0.0.1" {
		t.Errorf("default route = %+v", def)
	}

	host, ok := byPrefix["10.0.0.127/32"]
	if !ok {
		t.Fatal("bare host route missing (should parse as /32)")
	}
	if host.InitCwnd != 80 || host.Proto != "static" || host.Gateway != "10.0.0.1" || host.Device != "eth0" {
		t.Errorf("host route = %+v", host)
	}

	prefix, ok := byPrefix["10.1.0.0/16"]
	if !ok || prefix.InitCwnd != 50 {
		t.Errorf("prefix route = %+v", prefix)
	}

	plain, ok := byPrefix["192.168.9.9/32"]
	if !ok || plain.InitCwnd != 0 {
		t.Errorf("plain static route = %+v", plain)
	}

	v6, ok := byPrefix["2001:db8::/32"]
	if !ok || v6.InitCwnd != 40 {
		t.Errorf("ipv6 route = %+v", v6)
	}
}

func TestParseIPRouteShowEmpty(t *testing.T) {
	if routes := ParseIPRouteShow(nil); len(routes) != 0 {
		t.Errorf("routes = %v", routes)
	}
	if routes := ParseIPRouteShow([]byte("\n\n")); len(routes) != 0 {
		t.Errorf("routes = %v", routes)
	}
}

func TestParseIPRouteShowTruncatedAttrs(t *testing.T) {
	// Trailing key with no value must not panic or invent data.
	routes := ParseIPRouteShow([]byte("10.0.0.1 proto static initcwnd\n"))
	if len(routes) != 1 || routes[0].InitCwnd != 0 {
		t.Errorf("routes = %+v", routes)
	}
}

func TestListRiptideRoutes(t *testing.T) {
	r := &fakeRunner{out: []byte(ipRouteFixture)}
	routes, err := NewRoutes(r, RoutesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mine, err := routes.ListRiptideRoutes()
	if err != nil {
		t.Fatal(err)
	}
	// static + initcwnd: 10.0.0.127/32, 10.1.0.0/16, 2001:db8::/32.
	if len(mine) != 3 {
		t.Fatalf("riptide routes = %+v", mine)
	}
	if got := strings.Join(r.calls[0], " "); got != "ip route show proto static" {
		t.Errorf("list command = %q", got)
	}
}

func TestListRiptideRoutesError(t *testing.T) {
	r := &fakeRunner{err: errors.New("boom")}
	routes, _ := NewRoutes(r, RoutesConfig{})
	if _, err := routes.ListRiptideRoutes(); err == nil {
		t.Error("runner error swallowed")
	}
}

// reconcileRunner serves the listing then records deletions.
type reconcileRunner struct {
	listing []byte
	calls   [][]string
	failOn  string
}

func (f *reconcileRunner) Run(name string, args ...string) ([]byte, error) {
	call := append([]string{name}, args...)
	f.calls = append(f.calls, call)
	joined := strings.Join(call, " ")
	if f.failOn != "" && strings.Contains(joined, f.failOn) {
		return nil, errors.New("injected failure")
	}
	if strings.Contains(joined, "route show") {
		return f.listing, nil
	}
	return nil, nil
}

func TestReconcileRemovesStaleRoutes(t *testing.T) {
	r := &reconcileRunner{listing: []byte(ipRouteFixture)}
	routes, err := NewRoutes(r, RoutesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := routes.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Errorf("removed = %d, want 3", removed)
	}
	dels := 0
	for _, call := range r.calls {
		if len(call) > 2 && call[1] == "route" && call[2] == "del" {
			dels++
		}
	}
	if dels != 3 {
		t.Errorf("delete commands = %d, want 3", dels)
	}
}

func TestReconcilePartialFailure(t *testing.T) {
	r := &reconcileRunner{listing: []byte(ipRouteFixture), failOn: "10.1.0.0/16"}
	routes, _ := NewRoutes(r, RoutesConfig{})
	removed, err := routes.Reconcile()
	if err == nil {
		t.Error("deletion failure swallowed")
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2 (the others must still be attempted)", removed)
	}
}

func TestParseRouteTarget(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"default", "0.0.0.0/0", true},
		{"10.0.0.0/24", "10.0.0.0/24", true},
		{"10.0.0.9", "10.0.0.9/32", true},
		{"::1", "::1/128", true},
		{"10.0.0.9/8", "10.0.0.0/8", true}, // masked
		{"unreachable", "", false},
		{"", "", false},
	}
	for _, tt := range tests {
		got, ok := parseRouteTarget(tt.in)
		if ok != tt.ok {
			t.Errorf("parseRouteTarget(%q) ok = %v, want %v", tt.in, ok, tt.ok)
			continue
		}
		if ok && got.String() != tt.want {
			t.Errorf("parseRouteTarget(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
