package linux

import "testing"

// FuzzParseSS exercises the ss parser with arbitrary input: it must never
// panic and never produce an observation without a valid destination and a
// positive window.
func FuzzParseSS(f *testing.F) {
	f.Add([]byte(ssFixture))
	f.Add([]byte(""))
	f.Add([]byte("ESTAB 0 0 1.2.3.4:1 5.6.7.8:2\n\t cwnd:"))
	f.Add([]byte("\t cubic cwnd:10\n"))
	f.Add([]byte("ESTAB 0 0 [::1]:1 [::2]:2\n\t rtt:-5/1 cwnd:-3 bytes_acked:x\n"))
	// Wrapped multi-line TCP info: attributes spread over several
	// indented continuation lines belonging to one socket.
	f.Add([]byte(wrappedSSFixture))
	f.Add([]byte("ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n\t cubic rto:204 rtt:1.5/0.75\n\t mss:1448\n\t cwnd:42\n\t bytes_acked:81091\n"))
	// IPv6 zone-scoped peers.
	f.Add([]byte("ESTAB 0 0 [fe80::1%eth0]:22 [fe80::1%eth0]:443\n\t cwnd:15 rtt:5/2\n"))
	f.Add([]byte("ESTAB 0 0 [fe80::1%en0.123]:22 [fe80::2%br-lan]:443\n\t cwnd:7\n"))
	// Non-ESTAB interleavings: info-bearing sockets in other states mixed
	// between established ones must not contribute observations.
	f.Add([]byte("ESTAB 0 0 1.2.3.4:1 5.6.7.8:2\n\t cwnd:10\nTIME-WAIT 0 0 1.2.3.4:2 9.9.9.9:443\nESTAB 0 0 1.2.3.4:3 8.8.8.8:443\n\t cwnd:11\nSYN-SENT 0 1 1.2.3.4:4 7.7.7.7:443\n\t cwnd:99\nFIN-WAIT-1 0 0 1.2.3.4:5 6.6.6.6:443\n\t cwnd:98\n"))
	f.Add([]byte("LISTEN 0 128 0.0.0.0:22 0.0.0.0:*\nESTAB 0 0 10.0.0.5:1 10.0.0.6:443\nCLOSE-WAIT 1 0 10.0.0.5:2 10.0.0.7:443\n\t cwnd:5\n"))
	// Loss telemetry: retrans:<inflight>/<total>, lost:N, segs_out:N as
	// modern ss renders them.
	f.Add([]byte(lossySSFixture))
	f.Add([]byte("ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n\t cubic cwnd:42 retrans:0/12 lost:3 segs_out:4096\n"))
	// Older ss renders a bare retransmit count without the slash.
	f.Add([]byte("ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n\t cwnd:42 retrans:12\n"))
	// Reordered fields: loss tokens before cwnd, split across lines.
	f.Add([]byte("ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n\t segs_out:900 retrans:2/7\n\t lost:1 cwnd:42 rtt:1.5/0.75\n"))
	// Malformed loss values must zero-fill, never panic.
	f.Add([]byte("ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n\t cwnd:42 retrans:/ lost:-4 segs_out:1e9 retrans:x/y\n"))
	f.Add([]byte("ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n\t cwnd:42 retrans:9999999999999999999999/9999999999999999999999 lost:99999999999999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		obs, err := ParseSS(data)
		if err != nil {
			t.Fatalf("ParseSS returned error on arbitrary input: %v", err)
		}
		for _, o := range obs {
			if !o.Dst.IsValid() {
				t.Fatalf("observation with invalid dst: %+v", o)
			}
			if o.Cwnd <= 0 {
				t.Fatalf("observation with non-positive cwnd: %+v", o)
			}
			if o.RTT < 0 || o.BytesAcked < 0 {
				t.Fatalf("observation with negative metric: %+v", o)
			}
			if o.Retrans < 0 || o.Lost < 0 || o.SegsOut < 0 {
				t.Fatalf("observation with negative loss telemetry: %+v", o)
			}
		}
	})
}

// FuzzParseIPRouteShow: the route parser must never panic and every parsed
// route must carry a valid prefix.
func FuzzParseIPRouteShow(f *testing.F) {
	f.Add([]byte(ipRouteFixture))
	f.Add([]byte("default via"))
	f.Add([]byte("10.0.0.1 initcwnd"))
	f.Add([]byte("10.0.0.0/33 proto static\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, r := range ParseIPRouteShow(data) {
			if !r.Prefix.IsValid() {
				t.Fatalf("route with invalid prefix: %+v", r)
			}
			if r.InitCwnd < 0 {
				t.Fatalf("route with negative initcwnd: %+v", r)
			}
		}
	})
}
