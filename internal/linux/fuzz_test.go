package linux

import "testing"

// FuzzParseSS exercises the ss parser with arbitrary input: it must never
// panic and never produce an observation without a valid destination and a
// positive window.
func FuzzParseSS(f *testing.F) {
	f.Add([]byte(ssFixture))
	f.Add([]byte(""))
	f.Add([]byte("ESTAB 0 0 1.2.3.4:1 5.6.7.8:2\n\t cwnd:"))
	f.Add([]byte("\t cubic cwnd:10\n"))
	f.Add([]byte("ESTAB 0 0 [::1]:1 [::2]:2\n\t rtt:-5/1 cwnd:-3 bytes_acked:x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		obs, err := ParseSS(data)
		if err != nil {
			t.Fatalf("ParseSS returned error on arbitrary input: %v", err)
		}
		for _, o := range obs {
			if !o.Dst.IsValid() {
				t.Fatalf("observation with invalid dst: %+v", o)
			}
			if o.Cwnd <= 0 {
				t.Fatalf("observation with non-positive cwnd: %+v", o)
			}
			if o.RTT < 0 || o.BytesAcked < 0 {
				t.Fatalf("observation with negative metric: %+v", o)
			}
		}
	})
}

// FuzzParseIPRouteShow: the route parser must never panic and every parsed
// route must carry a valid prefix.
func FuzzParseIPRouteShow(f *testing.F) {
	f.Add([]byte(ipRouteFixture))
	f.Add([]byte("default via"))
	f.Add([]byte("10.0.0.1 initcwnd"))
	f.Add([]byte("10.0.0.0/33 proto static\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, r := range ParseIPRouteShow(data) {
			if !r.Prefix.IsValid() {
				t.Fatalf("route with invalid prefix: %+v", r)
			}
			if r.InitCwnd < 0 {
				t.Fatalf("route with negative initcwnd: %+v", r)
			}
		}
	})
}
