package linux

import (
	"bytes"
	"strconv"

	"riptide/internal/core"
)

// RenderSS renders observations as the `ss -tin` text this package's parser
// consumes — the inverse of AppendParseSS for the fields an Observation
// carries. It exists for cross-backend testing: the same socket set can be
// served to the exec sampler as text and to the netlink sampler as an
// INET_DIAG binary dump, and the two pipelines compared end to end.
//
// Rendering mirrors ss faithfully: IPv6 peers are bracketed, rtt is
// milliseconds as `srtt/rttvar`, retrans is `inflight/total`. RTT values
// with sub-microsecond components do not survive the decimal rendering
// exactly; fixtures wanting byte-identical cross-backend plans should stick
// to whole-microsecond (ideally whole-millisecond) RTTs, which round-trip.
func RenderSS(obs []core.Observation) []byte {
	var b bytes.Buffer
	b.WriteString("State Recv-Q Send-Q Local Address:Port Peer Address:Port\n")
	for i := range obs {
		o := &obs[i]
		b.WriteString("ESTAB 0 0 10.0.0.5:44312 ")
		if o.Dst.Is4() {
			b.WriteString(o.Dst.String())
		} else {
			b.WriteByte('[')
			b.WriteString(o.Dst.String())
			b.WriteByte(']')
		}
		b.WriteString(":443\n")
		b.WriteString("\t cubic wscale:7,7 rto:204 mss:1448 rtt:")
		ms := float64(o.RTT.Microseconds()) / 1000
		b.WriteString(strconv.FormatFloat(ms, 'g', -1, 64))
		b.WriteByte('/')
		b.WriteString(strconv.FormatFloat(ms/2, 'g', -1, 64))
		b.WriteString(" cwnd:")
		b.WriteString(strconv.Itoa(o.Cwnd))
		b.WriteString(" bytes_acked:")
		b.WriteString(strconv.FormatInt(o.BytesAcked, 10))
		b.WriteString(" segs_out:")
		b.WriteString(strconv.FormatInt(o.SegsOut, 10))
		b.WriteString(" retrans:0/")
		b.WriteString(strconv.FormatInt(o.Retrans, 10))
		b.WriteString(" lost:")
		b.WriteString(strconv.FormatInt(o.Lost, 10))
		b.WriteByte('\n')
	}
	return b.Bytes()
}
