package linux

import (
	"errors"
	"net/netip"
	"os/exec"
	"reflect"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/metrics"
)

func TestRenderSSRoundTrip(t *testing.T) {
	want := []core.Observation{
		{Dst: netip.MustParseAddr("10.1.2.3"), Cwnd: 42, RTT: 15 * time.Millisecond,
			BytesAcked: 123456, Retrans: 3, Lost: 1, SegsOut: 900},
		{Dst: netip.MustParseAddr("::ffff:172.16.0.8"), Cwnd: 77, RTT: 30 * time.Millisecond,
			BytesAcked: 999, Retrans: 1, SegsOut: 50},
		{Dst: netip.MustParseAddr("2001:db8::5"), Cwnd: 33, RTT: 95 * time.Millisecond,
			BytesAcked: 4242, Lost: 2, SegsOut: 777},
	}
	got, err := ParseSS(RenderSS(want))
	if err != nil {
		t.Fatalf("ParseSS: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("render/parse round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRenderSSFractionalRTT(t *testing.T) {
	// Sub-millisecond RTTs render as decimal milliseconds and must survive
	// the round trip at microsecond granularity.
	want := []core.Observation{
		{Dst: netip.MustParseAddr("10.0.0.9"), Cwnd: 10, RTT: 1500 * time.Microsecond},
	}
	got, err := ParseSS(RenderSS(want))
	if err != nil {
		t.Fatalf("ParseSS: %v", err)
	}
	if len(got) != 1 || got[0].RTT != want[0].RTT {
		t.Fatalf("fractional RTT mangled: got %+v want %+v", got, want)
	}
}

func TestExecRunnerClassifiesTimeouts(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("sleep not available")
	}
	reg := metrics.NewRegistry()
	r := ExecRunner{Timeout: 30 * time.Millisecond, Metrics: reg}
	_, err := r.Run("sleep", "5")
	if err == nil {
		t.Fatal("want error from deadline kill")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline kill must wrap ErrTimeout, got %v", err)
	}
	if got := reg.Counter("exec_timeouts_sleep").Value(); got != 1 {
		t.Fatalf("exec_timeouts_sleep = %d, want 1", got)
	}
	if got := reg.Counter("exec_errors_sleep").Value(); got != 0 {
		t.Fatalf("exec_errors_sleep = %d, want 0 (timeouts are classified separately)", got)
	}
}

func TestExecRunnerGenericFailureIsNotTimeout(t *testing.T) {
	if _, err := exec.LookPath("false"); err != nil {
		t.Skip("false not available")
	}
	reg := metrics.NewRegistry()
	r := ExecRunner{Metrics: reg}
	_, err := r.Run("false")
	if err == nil {
		t.Fatal("want error from failing command")
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("exit-status failure must not read as a timeout: %v", err)
	}
	if got := reg.Counter("exec_errors_false").Value(); got != 1 {
		t.Fatalf("exec_errors_false = %d, want 1", got)
	}
	if got := reg.Counter("exec_timeouts_false").Value(); got != 0 {
		t.Fatalf("exec_timeouts_false = %d, want 0", got)
	}
}
