package linux

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/metrics"
)

// fakeRunner records commands and returns canned output.
type fakeRunner struct {
	out   []byte
	err   error
	calls [][]string
}

func (f *fakeRunner) Run(name string, args ...string) ([]byte, error) {
	call := append([]string{name}, args...)
	f.calls = append(f.calls, call)
	return f.out, f.err
}

// ssFixture is representative `ss -tin` output: header, IPv4 and IPv6
// established sockets with info lines, a listening socket, and a socket in
// TIME-WAIT that must be ignored.
const ssFixture = `State       Recv-Q Send-Q        Local Address:Port          Peer Address:Port
ESTAB       0      0                10.0.0.5:44312            10.0.0.127:443
	 cubic wscale:7,7 rto:204 rtt:1.5/0.75 ato:40 mss:1448 pmtu:1500 rcvmss:536 advmss:1448 cwnd:42 ssthresh:28 bytes_sent:81090 bytes_acked:81091 segs_out:63 segs_in:34 send 324Mbps lastsnd:4 lastrcv:4 lastack:4 pacing_rate 648Mbps delivery_rate 231Mbps delivered:64 app_limited busy:200ms rcv_space:14480 rcv_ssthresh:64088 minrtt:1.2
ESTAB       0      0           192.168.1.10:55000            203.0.113.9:8443
	 cubic rto:304 rtt:125.25/12.5 mss:1448 cwnd:80 bytes_acked:123456789 rcv_space:14480
TIME-WAIT   0      0                10.0.0.5:39000             10.0.0.88:443
ESTAB       0      0      [2001:db8::1]:4433            [2001:db8::2]:443
	 cubic rto:204 rtt:10/5 mss:1428 cwnd:20 bytes_acked:555
ESTAB       0      0                10.0.0.5:50000             10.0.0.99:443
LISTEN      0      128               0.0.0.0:22                  0.0.0.0:*
`

// lossySSFixture covers the loss-telemetry tokens a regressing path
// produces: retrans:<inflight>/<total>, lost:N, segs_out:N — including a
// reordered variant (loss tokens before cwnd, wrapped across lines), an
// older-ss bare retrans count, and a socket with no loss fields at all.
const lossySSFixture = `State       Recv-Q Send-Q        Local Address:Port          Peer Address:Port
ESTAB       0      0                10.0.0.5:44312            10.0.0.127:443
	 cubic wscale:7,7 rto:204 rtt:1.5/0.75 mss:1448 cwnd:42 bytes_acked:81091 segs_out:4096 segs_in:34 retrans:2/12 lost:3 rcv_space:14480
ESTAB       0      0                10.0.0.5:44313            10.0.0.128:443
	 cubic segs_out:900 retrans:0/7
	 lost:1 cwnd:30 rtt:2/1 bytes_acked:555
ESTAB       0      0                10.0.0.5:44314            10.0.0.129:443
	 cubic cwnd:20 retrans:5 rtt:3/1
ESTAB       0      0                10.0.0.5:44315            10.0.0.130:443
	 cubic cwnd:11 rtt:4/2 bytes_acked:77
`

func TestParseSSLossTelemetry(t *testing.T) {
	obs, err := ParseSS([]byte(lossySSFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 4 {
		t.Fatalf("parsed %d observations, want 4: %+v", len(obs), obs)
	}

	// retrans:<inflight>/<total> — the cumulative total is the signal.
	first := obs[0]
	if first.Retrans != 12 || first.Lost != 3 || first.SegsOut != 4096 {
		t.Errorf("first = retrans %d lost %d segs_out %d, want 12/3/4096",
			first.Retrans, first.Lost, first.SegsOut)
	}

	// Reordered and line-wrapped tokens parse the same.
	second := obs[1]
	if second.Cwnd != 30 || second.Retrans != 7 || second.Lost != 1 || second.SegsOut != 900 {
		t.Errorf("reordered = %+v, want cwnd 30 retrans 7 lost 1 segs_out 900", second)
	}

	// Older ss: bare retrans count without the slash.
	third := obs[2]
	if third.Retrans != 5 {
		t.Errorf("bare retrans = %d, want 5", third.Retrans)
	}

	// Missing loss fields zero-fill.
	fourth := obs[3]
	if fourth.Retrans != 0 || fourth.Lost != 0 || fourth.SegsOut != 0 {
		t.Errorf("missing telemetry = %+v, want zero-filled", fourth)
	}
	if fourth.Cwnd != 11 {
		t.Errorf("cwnd = %d, want 11", fourth.Cwnd)
	}
}

func TestParseSSMalformedLossTokens(t *testing.T) {
	// Broken values must zero-fill, never panic or go negative.
	out := "ESTAB 0 0 10.0.0.5:1 10.0.0.6:443\n" +
		"\t cwnd:42 retrans:/ lost:-4 segs_out:1e9 retrans:x/y retrans:3/-8 lost:abc\n"
	obs, err := ParseSS([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("parsed %d observations, want 1", len(obs))
	}
	o := obs[0]
	if o.Retrans != 0 || o.Lost != 0 || o.SegsOut != 0 {
		t.Errorf("malformed tokens produced %+v, want zero-filled telemetry", o)
	}
}

func TestParseSS(t *testing.T) {
	obs, err := ParseSS([]byte(ssFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Fatalf("parsed %d observations, want 3: %+v", len(obs), obs)
	}

	first := obs[0]
	if first.Dst != netip.MustParseAddr("10.0.0.127") {
		t.Errorf("dst = %v", first.Dst)
	}
	if first.Cwnd != 42 {
		t.Errorf("cwnd = %d, want 42", first.Cwnd)
	}
	if first.RTT != 1500*time.Microsecond {
		t.Errorf("rtt = %v, want 1.5ms", first.RTT)
	}
	if first.BytesAcked != 81091 {
		t.Errorf("bytes_acked = %d", first.BytesAcked)
	}

	second := obs[1]
	if second.Dst != netip.MustParseAddr("203.0.113.9") {
		t.Errorf("dst = %v", second.Dst)
	}
	if second.Cwnd != 80 || second.RTT != 125250*time.Microsecond {
		t.Errorf("second = %+v", second)
	}

	third := obs[2]
	if third.Dst != netip.MustParseAddr("2001:db8::2") {
		t.Errorf("ipv6 dst = %v", third.Dst)
	}
	if third.Cwnd != 20 {
		t.Errorf("ipv6 cwnd = %d", third.Cwnd)
	}
}

func TestParseSSSkipsNonEstablished(t *testing.T) {
	obs, err := ParseSS([]byte(ssFixture))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Dst == netip.MustParseAddr("10.0.0.88") {
			t.Error("TIME-WAIT socket was parsed")
		}
	}
}

func TestParseSSEstabWithoutInfoSkipped(t *testing.T) {
	// 10.0.0.99 has no info line -> no cwnd -> must be skipped.
	obs, _ := ParseSS([]byte(ssFixture))
	for _, o := range obs {
		if o.Dst == netip.MustParseAddr("10.0.0.99") {
			t.Error("socket without TCP info was parsed")
		}
	}
}

func TestParseSSEmpty(t *testing.T) {
	obs, err := ParseSS(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Errorf("obs = %v", obs)
	}
}

func TestParseSSGarbage(t *testing.T) {
	obs, err := ParseSS([]byte("complete\n\tgarbage:::\nnot ss output at all\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Errorf("garbage produced observations: %v", obs)
	}
}

func TestParseSSScopedIPv6(t *testing.T) {
	input := "ESTAB 0 0 [fe80::1%eth0]:22 [fe80::2%eth0]:443\n\t cubic rtt:5/2 cwnd:15 bytes_acked:10\n"
	obs, err := ParseSS([]byte(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Dst != netip.MustParseAddr("fe80::2") {
		t.Errorf("obs = %+v", obs)
	}
}

func TestSplitHostPort(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"10.0.0.1:443", "10.0.0.1", false},
		{"[::1]:80", "::1", false},
		{"[fe80::1%eth0]:22", "fe80::1", false},
		{"nonsense", "", true},
		{":443", "", true},
		{"abc:def", "", true},
	}
	for _, tt := range tests {
		got, err := splitHostPort(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("splitHostPort(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != netip.MustParseAddr(tt.want) {
			t.Errorf("splitHostPort(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil); err == nil {
		t.Error("nil runner accepted")
	}
}

func TestSamplerRunsSS(t *testing.T) {
	r := &fakeRunner{out: []byte(ssFixture)}
	s, err := NewSampler(r)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := s.SampleConnections(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Errorf("obs = %d", len(obs))
	}
	if len(r.calls) != 1 || strings.Join(r.calls[0], " ") != "ss -tin" {
		t.Errorf("calls = %v", r.calls)
	}
}

func TestSamplerPropagatesError(t *testing.T) {
	r := &fakeRunner{err: errors.New("boom")}
	s, _ := NewSampler(r)
	if _, err := s.SampleConnections(nil); err == nil {
		t.Error("runner error swallowed")
	}
}

func TestNewRoutesValidation(t *testing.T) {
	if _, err := NewRoutes(nil, RoutesConfig{}); err == nil {
		t.Error("nil runner accepted")
	}
}

func TestSetCommandMatchesPaperFigure8(t *testing.T) {
	r := &fakeRunner{}
	routes, err := NewRoutes(r, RoutesConfig{Device: "eth0", Gateway: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(routes.SetCommand(netip.MustParsePrefix("10.0.0.127/32"), 80), " ")
	want := "route replace 10.0.0.127/32 dev eth0 proto static initcwnd 80 via 10.0.0.1"
	if got != want {
		t.Errorf("SetCommand = %q, want %q", got, want)
	}
}

func TestSetCommandMinimal(t *testing.T) {
	r := &fakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{})
	got := strings.Join(routes.SetCommand(netip.MustParsePrefix("10.1.0.0/16"), 50), " ")
	want := "route replace 10.1.0.0/16 proto static initcwnd 50"
	if got != want {
		t.Errorf("SetCommand = %q, want %q", got, want)
	}
}

func TestSetCommandWithInitRwnd(t *testing.T) {
	r := &fakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{SetInitRwnd: true})
	got := strings.Join(routes.SetCommand(netip.MustParsePrefix("10.0.0.1/32"), 100), " ")
	if !strings.Contains(got, "initrwnd 100") {
		t.Errorf("SetCommand = %q, want initrwnd (paper Section III-C)", got)
	}
}

func TestSetInitCwndExecutes(t *testing.T) {
	r := &fakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{Gateway: "10.0.0.1"})
	if err := routes.SetInitCwnd(netip.MustParsePrefix("10.0.0.127/32"), 80); err != nil {
		t.Fatal(err)
	}
	if len(r.calls) != 1 || r.calls[0][0] != "ip" {
		t.Errorf("calls = %v", r.calls)
	}
}

func TestSetInitCwndValidation(t *testing.T) {
	r := &fakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{})
	if err := routes.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 0); err == nil {
		t.Error("zero cwnd accepted")
	}
	if err := routes.SetInitCwnd(netip.Prefix{}, 10); err == nil {
		t.Error("invalid prefix accepted")
	}
	if len(r.calls) != 0 {
		t.Error("invalid input reached the runner")
	}
}

func TestClearInitCwnd(t *testing.T) {
	r := &fakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{})
	if err := routes.ClearInitCwnd(netip.MustParsePrefix("10.0.0.127/32")); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(r.calls[0], " ")
	if got != "ip route del 10.0.0.127/32 proto static" {
		t.Errorf("del command = %q", got)
	}
	if err := routes.ClearInitCwnd(netip.Prefix{}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestDelCommandMirrorsSetSelectors(t *testing.T) {
	// On a multi-interface host the delete must carry the same dev/via
	// selectors as the replace, or `ip route del` can miss Riptide's
	// route — or remove a same-prefix route on another interface.
	r := &fakeRunner{}
	routes, err := NewRoutes(r, RoutesConfig{Device: "eth0", Gateway: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(routes.DelCommand(netip.MustParsePrefix("10.0.0.127/32")), " ")
	want := "route del 10.0.0.127/32 dev eth0 proto static via 10.0.0.1"
	if got != want {
		t.Errorf("DelCommand = %q, want %q", got, want)
	}
}

func TestDelCommandDeviceOnly(t *testing.T) {
	r := &fakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{Device: "bond0"})
	got := strings.Join(routes.DelCommand(netip.MustParsePrefix("10.1.0.0/16")), " ")
	want := "route del 10.1.0.0/16 dev bond0 proto static"
	if got != want {
		t.Errorf("DelCommand = %q, want %q", got, want)
	}
}

func TestClearPropagatesError(t *testing.T) {
	r := &fakeRunner{err: errors.New("no such route")}
	routes, _ := NewRoutes(r, RoutesConfig{})
	if err := routes.ClearInitCwnd(netip.MustParsePrefix("10.0.0.1/32")); err == nil {
		t.Error("runner error swallowed")
	}
}

func TestExecRunnerRealCommand(t *testing.T) {
	out, err := ExecRunner{}.Run("echo", "hello")
	if err != nil {
		t.Skipf("echo unavailable: %v", err)
	}
	if strings.TrimSpace(string(out)) != "hello" {
		t.Errorf("out = %q", out)
	}
}

func TestExecRunnerFailure(t *testing.T) {
	if _, err := (ExecRunner{Timeout: time.Second}).Run("false"); err == nil {
		t.Error("failing command returned nil error")
	}
	if _, err := (ExecRunner{Timeout: time.Second}).Run("/nonexistent-binary-xyz"); err == nil {
		t.Error("missing binary returned nil error")
	}
}

func TestExecRunnerRecordsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	runner := ExecRunner{Timeout: time.Second, Metrics: reg}
	if _, err := runner.Run("echo", "hi"); err != nil {
		t.Skipf("echo unavailable: %v", err)
	}
	_, _ = runner.Run("/nonexistent-binary-xyz")

	snap := reg.Snapshot()
	if got := snap.Histograms["exec_duration_echo"].Count; got != 1 {
		t.Errorf("echo duration observations = %d, want 1", got)
	}
	if got := snap.Counters["exec_errors_echo"]; got != 0 {
		t.Errorf("echo errors = %d, want 0", got)
	}
	if got := snap.Counters["exec_errors_/nonexistent-binary-xyz"]; got != 1 {
		t.Errorf("missing-binary errors = %d, want 1", got)
	}
}

// wrappedSSFixture exercises `ss -tin` output where one socket's TCP info is
// wrapped across several indented continuation lines (common on narrow
// terminals and some ss builds), interleaved with non-ESTAB sockets.
const wrappedSSFixture = `State       Recv-Q Send-Q        Local Address:Port          Peer Address:Port
ESTAB       0      0                10.0.0.5:44312            10.0.0.127:443
	 cubic wscale:7,7 rto:204 rtt:1.5/0.75 ato:40 mss:1448
	 cwnd:42 ssthresh:28 bytes_acked:81091
	 segs_out:63 segs_in:34 rcv_space:14480
SYN-SENT    0      1                10.0.0.5:39001             10.0.0.88:443
ESTAB       0      0      [fe80::1%eth0]:4433        [fe80::2%eth0]:443
	 cubic rto:204 rtt:10/5
	 mss:1428 cwnd:20
	 bytes_acked:555
CLOSE-WAIT  1      0                10.0.0.5:39002             10.0.0.89:443
	 cubic cwnd:99
`

func TestParseSSWrappedInfoLines(t *testing.T) {
	obs, err := ParseSS([]byte(wrappedSSFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("parsed %d observations, want 2: %+v", len(obs), obs)
	}
	first := obs[0]
	if first.Dst != netip.MustParseAddr("10.0.0.127") || first.Cwnd != 42 || first.BytesAcked != 81091 {
		t.Errorf("wrapped IPv4 socket = %+v", first)
	}
	if first.RTT != 1500*time.Microsecond {
		t.Errorf("rtt from first continuation line = %v", first.RTT)
	}
	second := obs[1]
	if second.Dst != netip.MustParseAddr("fe80::2") || second.Cwnd != 20 || second.BytesAcked != 555 {
		t.Errorf("zone-scoped IPv6 socket = %+v", second)
	}
	// The CLOSE-WAIT socket's info must not leak into an observation.
	for _, o := range obs {
		if o.Cwnd == 99 {
			t.Error("non-ESTAB socket's info line produced an observation")
		}
	}
}

// batchFakeRunner is fakeRunner plus a stdin surface; each batch script is
// recorded verbatim so tests can assert on the rendered `ip -batch` input.
type batchFakeRunner struct {
	fakeRunner
	inputs [][]byte
	inErr  error
}

func (b *batchFakeRunner) RunInput(input []byte, name string, args ...string) ([]byte, error) {
	b.calls = append(b.calls, append([]string{name}, args...))
	b.inputs = append(b.inputs, append([]byte(nil), input...))
	return b.out, b.inErr
}

func TestBatchScriptRendersOneCommandPerLine(t *testing.T) {
	routes, err := NewRoutes(&fakeRunner{}, RoutesConfig{Device: "eth0", Gateway: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	script := string(routes.BatchScript([]core.RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Clear: true},
	}))
	want := "route replace 10.0.0.0/24 dev eth0 proto static initcwnd 40 via 10.0.0.1\n" +
		"route del 10.0.1.0/24 dev eth0 proto static via 10.0.0.1\n"
	if script != want {
		t.Errorf("BatchScript = %q, want %q", script, want)
	}
	if strings.Contains(script, "ip ") {
		t.Error("batch script must not carry the leading `ip` (ip -batch supplies it)")
	}
}

func TestProgramRoutesSingleBatchExec(t *testing.T) {
	r := &batchFakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{Device: "eth0"})
	ops := []core.RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Window: 20},
		{Prefix: netip.MustParsePrefix("10.0.2.0/24"), Clear: true},
	}
	if errs := routes.ProgramRoutes(ops); errs != nil {
		t.Fatalf("ProgramRoutes = %v, want nil", errs)
	}
	if len(r.calls) != 1 {
		t.Fatalf("calls = %v, want one exec for the whole set", r.calls)
	}
	if got := strings.Join(r.calls[0], " "); got != "ip -force -batch -" {
		t.Errorf("argv = %q, want %q", got, "ip -force -batch -")
	}
	if got, want := string(r.inputs[0]), string(routes.BatchScript(ops)); got != want {
		t.Errorf("stdin script = %q, want %q", got, want)
	}
}

func TestProgramRoutesRejectsInvalidOpsUpFront(t *testing.T) {
	r := &batchFakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{})
	ops := []core.RouteOp{
		{Prefix: netip.Prefix{}, Window: 40},                        // invalid prefix
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 0},   // window < 1
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Window: 28},  // valid
		{Prefix: netip.MustParsePrefix("10.0.2.0/24"), Clear: true}, // valid (window ignored)
	}
	errs := routes.ProgramRoutes(ops)
	if errs == nil {
		t.Fatal("invalid ops accepted")
	}
	if errs[0] == nil || errs[1] == nil {
		t.Errorf("invalid ops not rejected: %v", errs)
	}
	if errs[2] != nil || errs[3] != nil {
		t.Errorf("valid ops failed: %v", errs)
	}
	if len(r.inputs) != 1 {
		t.Fatalf("batch execs = %d, want 1", len(r.inputs))
	}
	script := string(r.inputs[0])
	if strings.Contains(script, "initcwnd 0") || strings.Count(script, "\n") != 2 {
		t.Errorf("invalid ops leaked into the batch script: %q", script)
	}
}

func TestProgramRoutesBatchFailureMarksAllScriptedOps(t *testing.T) {
	r := &batchFakeRunner{inErr: errors.New("exit status 1")}
	routes, _ := NewRoutes(r, RoutesConfig{})
	ops := []core.RouteOp{
		{Prefix: netip.Prefix{}, Window: 40}, // validation error, not batch error
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Clear: true},
	}
	errs := routes.ProgramRoutes(ops)
	if errs == nil {
		t.Fatal("batch failure not reported")
	}
	for i := 1; i < len(ops); i++ {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "ip -batch (2 route ops)") {
			t.Errorf("errs[%d] = %v, want unattributable batch error over 2 ops", i, errs[i])
		}
	}
	if strings.Contains(errs[0].Error(), "ip -batch") {
		t.Errorf("validation error replaced by batch error: %v", errs[0])
	}
}

func TestProgramRoutesDegradesWithoutBatchRunner(t *testing.T) {
	r := &fakeRunner{} // Runner only: no RunInput
	routes, _ := NewRoutes(r, RoutesConfig{})
	ops := []core.RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Clear: true},
	}
	if errs := routes.ProgramRoutes(ops); errs != nil {
		t.Fatalf("ProgramRoutes = %v, want nil", errs)
	}
	if len(r.calls) != 2 {
		t.Fatalf("calls = %v, want one exec per op", r.calls)
	}
	if r.calls[0][1] != "route" || r.calls[0][2] != "replace" {
		t.Errorf("first per-op call = %v", r.calls[0])
	}
	if r.calls[1][2] != "del" {
		t.Errorf("second per-op call = %v", r.calls[1])
	}
}

func TestProgramRoutesEmptySetNoExec(t *testing.T) {
	r := &batchFakeRunner{}
	routes, _ := NewRoutes(r, RoutesConfig{})
	if errs := routes.ProgramRoutes(nil); errs != nil {
		t.Fatalf("ProgramRoutes(nil) = %v", errs)
	}
	if len(r.calls) != 0 {
		t.Errorf("empty set reached the runner: %v", r.calls)
	}
}

func TestRunInputFeedsStdin(t *testing.T) {
	out, err := ExecRunner{}.RunInput([]byte("hello batch\n"), "cat")
	if err != nil {
		t.Skipf("cat unavailable: %v", err)
	}
	if string(out) != "hello batch\n" {
		t.Errorf("RunInput output = %q", out)
	}
}

func TestAppendParseSSReusesCallerBuffer(t *testing.T) {
	parsed, err := ParseSS([]byte(ssFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) == 0 {
		t.Fatal("fixture parsed to nothing")
	}
	buf := make([]core.Observation, 0, len(parsed)+4)
	out, err := AppendParseSS(buf, []byte(ssFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(parsed) {
		t.Fatalf("len = %d, want %d", len(out), len(parsed))
	}
	if &out[0] != &buf[0:1][0] {
		t.Error("AppendParseSS reallocated despite sufficient capacity")
	}
}

func TestSamplerAppendsToCallerBuffer(t *testing.T) {
	r := &fakeRunner{out: []byte(ssFixture)}
	s, err := NewSampler(r)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := core.Observation{Dst: netip.MustParseAddr("192.0.2.1"), Cwnd: 7}
	buf := make([]core.Observation, 0, 32)
	buf = append(buf, sentinel)
	out, err := s.SampleConnections(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 2 || out[0] != sentinel {
		t.Fatalf("sampler did not append to the caller's buffer: %v", out[:1])
	}
	if &out[0] != &buf[0] {
		t.Error("sampler reallocated despite sufficient capacity")
	}
}
