package linux

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// InstalledRoute is one route parsed from `ip route show`, restricted to the
// fields Riptide cares about.
type InstalledRoute struct {
	// Prefix is the route's destination. Host routes printed without a
	// mask ("10.0.0.127") parse as /32 (or /128 for IPv6).
	Prefix netip.Prefix
	// InitCwnd is the route's initcwnd attribute, 0 when absent.
	InitCwnd int
	// Proto is the route's protocol label ("static", "kernel", ...).
	Proto string
	// Device and Gateway mirror the dev/via attributes when present.
	Device  string
	Gateway string
}

// ParseIPRouteShow parses `ip route show` output. Lines that do not look
// like routes are skipped rather than failing the whole listing, matching
// how defensive a production agent must be against iproute2 variations.
func ParseIPRouteShow(out []byte) []InstalledRoute {
	var routes []InstalledRoute
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		prefix, ok := parseRouteTarget(fields[0])
		if !ok {
			continue
		}
		r := InstalledRoute{Prefix: prefix}
		for i := 1; i+1 < len(fields); i++ {
			key, val := fields[i], fields[i+1]
			switch key {
			case "proto":
				r.Proto = val
				i++
			case "dev":
				r.Device = val
				i++
			case "via":
				r.Gateway = val
				i++
			case "initcwnd":
				if v, err := strconv.Atoi(val); err == nil && v > 0 {
					r.InitCwnd = v
				}
				i++
			}
		}
		routes = append(routes, r)
	}
	return routes
}

// parseRouteTarget parses the leading destination token of an ip-route line:
// "default", "10.0.0.0/24", or a bare host address.
func parseRouteTarget(tok string) (netip.Prefix, bool) {
	if tok == "default" {
		return netip.PrefixFrom(netip.IPv4Unspecified(), 0), true
	}
	if p, err := netip.ParsePrefix(tok); err == nil {
		return p.Masked(), true
	}
	if a, err := netip.ParseAddr(tok); err == nil {
		return netip.PrefixFrom(a, a.BitLen()), true
	}
	return netip.Prefix{}, false
}

// ListRiptideRoutes returns the routes a previous Riptide incarnation left
// behind: proto-static routes that carry an initcwnd attribute.
func (r *Routes) ListRiptideRoutes() ([]InstalledRoute, error) {
	out, err := r.runner.Run("ip", "route", "show", "proto", "static")
	if err != nil {
		return nil, fmt.Errorf("linux: list routes: %w", err)
	}
	var mine []InstalledRoute
	for _, route := range ParseIPRouteShow(out) {
		if route.InitCwnd > 0 {
			mine = append(mine, route)
		}
	}
	return mine, nil
}

// Reconcile removes every leftover Riptide route (static + initcwnd) from a
// previous run, returning how many were withdrawn. A restarting agent calls
// this before its first Tick so stale aggressive windows from before a crash
// or reboot cannot outlive the observations that justified them.
func (r *Routes) Reconcile() (removed int, err error) {
	stale, err := r.ListRiptideRoutes()
	if err != nil {
		return 0, err
	}
	var firstErr error
	for _, route := range stale {
		if err := r.ClearInitCwnd(route.Prefix); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("linux: clear stale %v: %w", route.Prefix, err)
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}
