// Package linux adapts the Riptide agent to a real Linux host using the two
// standard utilities the paper relies on:
//
//   - ss(8): `ss -tin` lists established TCP sockets with their congestion
//     window, smoothed RTT, and bytes acknowledged — the observed table.
//   - ip(8): `ip route replace <dst> ... initcwnd N` programs a
//     per-destination initial congestion window; `ip route del` withdraws it
//     (Linux >= 3.2 per the paper's footnote).
//
// Commands run through a pluggable Runner so the parsers and command
// builders are fully unit-testable against recorded fixtures, and a
// deployment can interpose rate limiting or auditing.
package linux

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/netip"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"riptide/internal/core"
	"riptide/internal/metrics"
)

// ErrTimeout marks a command killed by the ExecRunner deadline, as opposed
// to one that ran and failed. Callers distinguish the two with errors.Is:
// timeouts usually mean the host is overloaded (retry later, or fall back),
// while genuine failures mean the command or its arguments are wrong.
var ErrTimeout = errors.New("linux: command timed out")

// Runner executes an external command and returns its combined stdout.
type Runner interface {
	Run(name string, args ...string) ([]byte, error)
}

// BatchRunner is an optional Runner extension for commands fed via stdin —
// `ip -batch -` reads one route command per line. Runners that implement it
// unlock the batched route-programming path.
type BatchRunner interface {
	Runner
	RunInput(input []byte, name string, args ...string) ([]byte, error)
}

// ExecRunner runs commands with os/exec under a timeout.
type ExecRunner struct {
	// Timeout bounds each command; defaults to 5s when zero.
	Timeout time.Duration
	// Metrics, when set, receives per-command latency histograms
	// (exec_duration_<cmd>) and failure counters: deadline kills count in
	// exec_timeouts_<cmd>, every other failure in exec_errors_<cmd>. The
	// two are disjoint so a dashboard can tell "host too slow" from
	// "command broken" at a glance.
	Metrics *metrics.Registry
}

// Run implements Runner.
func (r ExecRunner) Run(name string, args ...string) ([]byte, error) {
	return r.run(nil, name, args...)
}

// RunInput implements BatchRunner: like Run, with input piped to stdin.
func (r ExecRunner) RunInput(input []byte, name string, args ...string) ([]byte, error) {
	return r.run(input, name, args...)
}

func (r ExecRunner) run(input []byte, name string, args ...string) (out []byte, err error) {
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	if r.Metrics != nil {
		start := time.Now()
		defer func() {
			r.Metrics.Histogram("exec_duration_" + name).Observe(time.Since(start))
			switch {
			case errors.Is(err, ErrTimeout):
				r.Metrics.Counter("exec_timeouts_" + name).Inc()
			case err != nil:
				r.Metrics.Counter("exec_errors_" + name).Inc()
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, name, args...)
	if input != nil {
		cmd.Stdin = bytes.NewReader(input)
	}
	out, err = cmd.Output()
	if err != nil {
		// A deadline kill surfaces as "signal: killed" from the child, which
		// looks identical to an OOM kill; the context verdict is what tells
		// them apart, so classify on it rather than the exec error.
		if ctx.Err() == context.DeadlineExceeded {
			return nil, fmt.Errorf("linux: %s %s: %w after %v",
				name, strings.Join(args, " "), ErrTimeout, timeout)
		}
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			return nil, fmt.Errorf("linux: %s %s: %w (stderr: %s)",
				name, strings.Join(args, " "), err, bytes.TrimSpace(exitErr.Stderr))
		}
		return nil, fmt.Errorf("linux: %s %s: %w", name, strings.Join(args, " "), err)
	}
	return out, nil
}

var _ BatchRunner = ExecRunner{}

// Sampler implements core.ConnectionSampler by parsing `ss -tin`.
type Sampler struct {
	runner Runner
}

// NewSampler returns a Sampler using the given runner.
func NewSampler(runner Runner) (*Sampler, error) {
	if runner == nil {
		return nil, errors.New("linux: nil runner")
	}
	return &Sampler{runner: runner}, nil
}

// SampleConnections implements core.ConnectionSampler: parsed observations
// are appended to buf, so the agent's pooled buffer absorbs the per-tick
// slice growth.
func (s *Sampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	out, err := s.runner.Run("ss", "-tin")
	if err != nil {
		return nil, err
	}
	return AppendParseSS(buf, out)
}

var _ core.ConnectionSampler = (*Sampler)(nil)

// ParseSS parses `ss -tin` output into observations. Sockets without a
// parsable peer address or cwnd are skipped; only ESTAB sockets are
// reported, since only established connections carry meaningful windows.
func ParseSS(out []byte) ([]core.Observation, error) {
	return AppendParseSS(nil, out)
}

// AppendParseSS is ParseSS into a caller-provided buffer: parsed
// observations are appended to buf and the grown slice returned. Beyond the
// buffer's own growth it allocates nothing, so a steady-state sampling loop
// stays allocation-free.
func AppendParseSS(buf []core.Observation, out []byte) ([]core.Observation, error) {
	obs := buf
	var cur core.Observation
	live := false
	rest := string(out)
	for len(rest) > 0 {
		line, tail, _ := strings.Cut(rest, "\n")
		rest = tail
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if isSocketLine(line) {
			// Flush the previous socket if it had TCP info.
			if live && cur.Cwnd > 0 {
				obs = append(obs, cur)
			}
			live = false
			if !strings.HasPrefix(trimmed, "ESTAB") {
				continue
			}
			fields := strings.Fields(trimmed)
			if len(fields) < 5 || fields[0] != "ESTAB" {
				continue
			}
			peer, err := splitHostPort(fields[4])
			if err != nil {
				continue
			}
			cur = core.Observation{Dst: peer}
			live = true
			continue
		}
		// Indented continuation: TCP info for the current socket.
		if !live {
			continue
		}
		parseInfoLine(trimmed, &cur)
	}
	if live && cur.Cwnd > 0 {
		obs = append(obs, cur)
	}
	return obs, nil
}

// isSocketLine reports whether the raw line starts a socket entry (ss prints
// info lines indented under the socket line).
func isSocketLine(raw string) bool {
	if raw == "" {
		return false
	}
	return raw[0] != ' ' && raw[0] != '\t'
}

// splitHostPort parses ss's ADDR:PORT rendering, handling IPv6 brackets and
// interface scopes.
func splitHostPort(s string) (netip.Addr, error) {
	idx := strings.LastIndex(s, ":")
	if idx <= 0 {
		return netip.Addr{}, fmt.Errorf("linux: malformed address %q", s)
	}
	host := s[:idx]
	host = strings.TrimPrefix(host, "[")
	host = strings.TrimSuffix(host, "]")
	if pct := strings.IndexByte(host, '%'); pct >= 0 {
		host = host[:pct]
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("linux: parse address %q: %w", s, err)
	}
	return addr, nil
}

// parseInfoLine extracts cwnd, rtt, bytes_acked, and the loss-telemetry
// tokens (retrans, lost, segs_out) from an ss TCP info line like:
//
//	cubic wscale:7,7 rto:204 rtt:1.5/0.75 mss:1448 cwnd:42 bytes_acked:123 segs_out:90 retrans:0/3 lost:1
//
// Missing fields stay zero — the governor treats absent loss telemetry as
// "no evidence", never as data.
func parseInfoLine(line string, o *core.Observation) {
	for _, tok := range strings.Fields(line) {
		key, val, ok := strings.Cut(tok, ":")
		if !ok {
			continue
		}
		switch key {
		case "cwnd":
			if v, err := strconv.Atoi(val); err == nil && v > 0 {
				o.Cwnd = v
			}
		case "rtt":
			// rtt:<srtt>/<rttvar> in milliseconds.
			srtt, _, _ := strings.Cut(val, "/")
			if v, err := strconv.ParseFloat(srtt, 64); err == nil && v >= 0 {
				o.RTT = time.Duration(v * float64(time.Millisecond))
			}
		case "bytes_acked":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil && v >= 0 {
				o.BytesAcked = v
			}
		case "retrans":
			// retrans:<inflight>/<total>; the cumulative total is the
			// loss signal. Older ss renders a bare count — accept both.
			_, total, slash := strings.Cut(val, "/")
			if !slash {
				total = val
			}
			if v, err := strconv.ParseInt(total, 10, 64); err == nil && v >= 0 {
				o.Retrans = v
			}
		case "lost":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil && v >= 0 {
				o.Lost = v
			}
		case "segs_out":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil && v >= 0 {
				o.SegsOut = v
			}
		}
	}
}

// RoutesConfig configures the ip-route programmer.
type RoutesConfig struct {
	// Device is the outgoing interface (`dev eth0`). Optional.
	Device string
	// Gateway is the next hop (`via 10.0.0.1`). Optional, but most
	// deployments need it: the route Riptide adds must otherwise mirror
	// the default route (paper Section III-C).
	Gateway string
	// SetInitRwnd, when true, also sets initrwnd so the receive window
	// can absorb the initial burst (paper Section III-C).
	SetInitRwnd bool
}

// Routes implements core.RouteProgrammer with ip(8).
type Routes struct {
	runner Runner
	cfg    RoutesConfig
}

// NewRoutes returns a Routes programmer.
func NewRoutes(runner Runner, cfg RoutesConfig) (*Routes, error) {
	if runner == nil {
		return nil, errors.New("linux: nil runner")
	}
	return &Routes{runner: runner, cfg: cfg}, nil
}

var _ core.RouteProgrammer = (*Routes)(nil)

// SetCommand returns the argv (without the leading "ip") that SetInitCwnd
// will execute, mirroring the paper's Figure 8:
//
//	ip route replace 10.0.0.127/32 dev eth0 proto static initcwnd 80 via 10.0.0.1
//
// `replace` rather than `add` makes reprogramming idempotent.
func (r *Routes) SetCommand(prefix netip.Prefix, cwnd int) []string {
	args := []string{"route", "replace", prefix.String()}
	if r.cfg.Device != "" {
		args = append(args, "dev", r.cfg.Device)
	}
	args = append(args, "proto", "static", "initcwnd", strconv.Itoa(cwnd))
	if r.cfg.SetInitRwnd {
		args = append(args, "initrwnd", strconv.Itoa(cwnd))
	}
	if r.cfg.Gateway != "" {
		args = append(args, "via", r.cfg.Gateway)
	}
	return args
}

// DelCommand returns the argv (without the leading "ip") that ClearInitCwnd
// will execute. It mirrors SetCommand's dev/via selectors: without them, on
// a multi-interface host `ip route del` can refuse to match the route
// Riptide installed — or worse, delete a same-prefix route on another
// interface.
func (r *Routes) DelCommand(prefix netip.Prefix) []string {
	args := []string{"route", "del", prefix.String()}
	if r.cfg.Device != "" {
		args = append(args, "dev", r.cfg.Device)
	}
	args = append(args, "proto", "static")
	if r.cfg.Gateway != "" {
		args = append(args, "via", r.cfg.Gateway)
	}
	return args
}

// SetInitCwnd implements core.RouteProgrammer.
func (r *Routes) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	if cwnd < 1 {
		return fmt.Errorf("linux: initcwnd %d must be >= 1", cwnd)
	}
	if !prefix.IsValid() {
		return errors.New("linux: invalid prefix")
	}
	_, err := r.runner.Run("ip", r.SetCommand(prefix, cwnd)...)
	return err
}

// ClearInitCwnd implements core.RouteProgrammer.
func (r *Routes) ClearInitCwnd(prefix netip.Prefix) error {
	if !prefix.IsValid() {
		return errors.New("linux: invalid prefix")
	}
	_, err := r.runner.Run("ip", r.DelCommand(prefix)...)
	return err
}

// BatchScript renders the `ip -batch` stdin script for ops: one route
// command per line, without the leading "ip" (ip -batch supplies it).
func (r *Routes) BatchScript(ops []core.RouteOp) []byte {
	var b bytes.Buffer
	for _, op := range ops {
		var args []string
		if op.Clear {
			args = r.DelCommand(op.Prefix)
		} else {
			args = r.SetCommand(op.Prefix, op.Window)
		}
		b.WriteString(strings.Join(args, " "))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// ProgramRoutes implements core.BatchRouteProgrammer: the whole route set is
// applied with a single `ip -force -batch -` exec, the script fed via stdin.
// `-force` keeps ip processing past individual command failures, so one bad
// route cannot abort the rest of the batch — but the nonzero exit status
// cannot say which member failed, so on error every scripted op is reported
// failed with the batch error; the retry decorator then re-drives members
// individually to recover attribution. Invalid ops are rejected up front
// with per-op errors and never reach the script. A runner without stdin
// support (no BatchRunner) degrades to per-op commands.
func (r *Routes) ProgramRoutes(ops []core.RouteOp) []error {
	if len(ops) == 0 {
		return nil
	}
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(ops))
		}
		errs[i] = err
	}
	br, hasBatch := r.runner.(BatchRunner)
	if !hasBatch {
		for i, op := range ops {
			var err error
			if op.Clear {
				err = r.ClearInitCwnd(op.Prefix)
			} else {
				err = r.SetInitCwnd(op.Prefix, op.Window)
			}
			if err != nil {
				fail(i, err)
			}
		}
		return errs
	}
	valid := make([]core.RouteOp, 0, len(ops))
	validIdx := make([]int, 0, len(ops))
	for i, op := range ops {
		switch {
		case !op.Prefix.IsValid():
			fail(i, errors.New("linux: invalid prefix"))
		case !op.Clear && op.Window < 1:
			fail(i, fmt.Errorf("linux: initcwnd %d must be >= 1", op.Window))
		default:
			valid = append(valid, op)
			validIdx = append(validIdx, i)
		}
	}
	if len(valid) == 0 {
		return errs
	}
	if _, err := br.RunInput(r.BatchScript(valid), "ip", "-force", "-batch", "-"); err != nil {
		batchErr := fmt.Errorf("linux: ip -batch (%d route ops): %w", len(valid), err)
		for _, i := range validIdx {
			fail(i, batchErr)
		}
	}
	return errs
}

var _ core.BatchRouteProgrammer = (*Routes)(nil)
