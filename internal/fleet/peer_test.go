package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"riptide/internal/core"
)

func TestHandlerServesSnapshot(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	srv := httptest.NewServer(Handler(a, "host-a", "", func() time.Time { return time.Unix(1700000000, 0) }))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	snap, err := Decode(buf[:n])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(snap.Entries) != 1 || snap.Entries[0].Prefix != "192.0.2.1/32" || snap.Source != "host-a" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHandlerRejectsNonGET(t *testing.T) {
	a, _, _ := newTestAgent(t, nil)
	srv := httptest.NewServer(Handler(a, "", "", nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %s, want 405", resp.Status)
	}
}

func TestPullerMergesFromPeer(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	srv := httptest.NewServer(Handler(src, "host-a", "", nil))
	defer srv.Close()

	dst, dstRoutes, _ := newTestAgent(t, nil)
	p, err := NewPuller(PullerConfig{Agent: dst, Peers: []string{srv.URL}})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}

	if merged := p.PullOnce(context.Background()); merged != 2 {
		t.Fatalf("PullOnce merged %d, want 2", merged)
	}
	if dstRoutes.count() != 2 {
		t.Fatalf("routes programmed = %d, want 2", dstRoutes.count())
	}
	h := p.Health()
	if len(h) != 1 || !h[0].Healthy || h[0].Pulls != 1 || h[0].Merged != 2 {
		t.Fatalf("health = %+v", h)
	}

	// A second pull finds the same entries already present locally: nothing
	// new merges, the peer stays healthy.
	if merged := p.PullOnce(context.Background()); merged != 0 {
		t.Fatalf("second PullOnce merged %d, want 0", merged)
	}
	if h := p.Health(); !h[0].Healthy || h[0].Pulls != 2 {
		t.Fatalf("health after second pull = %+v", h)
	}
}

func TestPullerPeerDownDegradesToLocalOnly(t *testing.T) {
	// A peer that is down: the server is closed before the first pull.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	sampler := &stubSampler{obs: []core.Observation{obs(t, "192.0.2.1", 40)}}
	clk := &simClock{}
	routes := newMemRoutes()
	a, err := core.New(core.Config{Sampler: sampler, Routes: routes, Clock: clk.Now})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}

	now := time.Unix(1700000000, 0)
	p, err := NewPuller(PullerConfig{
		Agent:    a,
		Peers:    []string{url},
		Interval: 10 * time.Second,
		Timeout:  time.Second,
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}

	start := time.Now()
	if merged := p.PullOnce(context.Background()); merged != 0 {
		t.Fatalf("PullOnce merged %d from a dead peer", merged)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("pull from dead peer took %v", took)
	}
	h := p.Health()
	if len(h) != 1 || h[0].Healthy || h[0].Failures != 1 || h[0].LastError == "" {
		t.Fatalf("health = %+v, want unhealthy with 1 failure", h)
	}

	// Local operation is unaffected: the agent still ticks and learns.
	if err := a.Tick(); err != nil {
		t.Fatalf("Tick with dead peer: %v", err)
	}
	if _, ok := routes.get(pfx(t, "192.0.2.1/32")); !ok {
		t.Fatal("local learning did not program the route")
	}

	// Backoff: the peer is not retried until its backoff lapses.
	if merged := p.PullOnce(context.Background()); merged != 0 {
		t.Fatal("backoff did not suppress the retry")
	}
	if h := p.Health(); h[0].Failures != 1 {
		t.Fatalf("peer retried during backoff: %+v", h[0])
	}
	now = now.Add(11 * time.Second) // past the 10s backoff
	p.PullOnce(context.Background())
	if h := p.Health(); h[0].Failures != 2 {
		t.Fatalf("peer not retried after backoff: %+v", h[0])
	}
}

func TestPullerBackoffGrowsAndCaps(t *testing.T) {
	a, _, _ := newTestAgent(t, nil)
	p, err := NewPuller(PullerConfig{
		Agent:      a,
		Interval:   10 * time.Second,
		MaxBackoff: 40 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 40 * time.Second, 40 * time.Second}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestPullerRejectsMalformedSnapshot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"version": 99}`))
	}))
	defer srv.Close()

	a, routes, _ := newTestAgent(t, nil)
	p, err := NewPuller(PullerConfig{Agent: a, Peers: []string{srv.URL}})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}
	if merged := p.PullOnce(context.Background()); merged != 0 {
		t.Fatalf("merged %d from malformed snapshot", merged)
	}
	if routes.count() != 0 {
		t.Fatal("malformed snapshot programmed routes")
	}
	if h := p.Health(); h[0].Healthy {
		t.Fatalf("peer serving garbage reported healthy: %+v", h[0])
	}
}

func TestPullerRunStopsOnCancel(t *testing.T) {
	a, _, _ := newTestAgent(t, nil)
	p, err := NewPuller(PullerConfig{Agent: a, Interval: time.Millisecond})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Run(ctx)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestNewPullerValidation(t *testing.T) {
	if _, err := NewPuller(PullerConfig{}); err == nil {
		t.Fatal("NewPuller accepted nil Agent")
	}
	a, _, _ := newTestAgent(t, nil)
	if _, err := NewPuller(PullerConfig{Agent: a, Interval: -time.Second}); err == nil {
		t.Fatal("NewPuller accepted negative interval")
	}
	// Blank peer specs are dropped.
	p, err := NewPuller(PullerConfig{Agent: a, Peers: []string{"", "  ", "peer:1"}})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}
	if h := p.Health(); len(h) != 1 {
		t.Fatalf("peers = %+v, want 1", h)
	}
}
