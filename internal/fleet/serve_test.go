package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"riptide/internal/core"
	gossippkg "riptide/internal/gossip"
)

// serveGet performs one GET against a handler, optionally with
// If-None-Match, and returns the recorded response.
func serveGet(h http.Handler, target, ifNoneMatch string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// uncachedBodies renders the three kinds the way the pre-cache handlers
// did — a fresh export and encode per call — for byte-identity comparison.
func uncachedBodies(t *testing.T, a *core.Agent, source, instance string, created time.Time) (digest, delta, snapshot []byte) {
	t.Helper()
	dg, err := gossippkg.EncodeDigest(gossippkg.TableDigest(a, source, instance))
	if err != nil {
		t.Fatalf("EncodeDigest: %v", err)
	}
	dl, err := gossippkg.EncodeDelta(gossippkg.TableDelta(a, source, instance, 0))
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	snap := FromAgent(a, source, created)
	snap.Instance = instance
	sn, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	nl := []byte{'\n'}
	return append(dg, nl...), append(dl, nl...), append(sn, nl...)
}

// TestServeCacheByteIdentical pins the cached bodies byte-for-byte against
// the uncached encodes — cold, warm, and again after the table moves — with
// concurrent requesters racing the commits (run under -race in CI).
func TestServeCacheByteIdentical(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
		obs(t, "203.0.113.9", 24),
	})
	created := time.Unix(1700000000, 0)
	s := NewServer(a, "host-a", "boot-1", func() time.Time { return created })
	handlers := map[string]http.Handler{
		DigestPath:   s.DigestHandler(),
		DeltaPath:    s.DeltaHandler(),
		SnapshotPath: s.SnapshotHandler(),
	}

	check := func(stage string) {
		t.Helper()
		wantDigest, wantDelta, wantSnap := uncachedBodies(t, a, "host-a", "boot-1", created)
		for path, want := range map[string][]byte{
			DigestPath:   wantDigest,
			DeltaPath:    wantDelta,
			SnapshotPath: wantSnap,
		} {
			// Twice: a (possible) miss fill, then a guaranteed cache hit.
			for round := 0; round < 2; round++ {
				w := serveGet(handlers[path], path, "")
				if w.Code != http.StatusOK {
					t.Fatalf("%s %s round %d: status %d", stage, path, round, w.Code)
				}
				if got := w.Body.Bytes(); !bytes.Equal(got, want) {
					t.Fatalf("%s %s round %d: cached body differs from uncached encode:\n got %s\nwant %s",
						stage, path, round, got, want)
				}
				if w.Header().Get("ETag") == "" {
					t.Fatalf("%s %s: no ETag", stage, path)
				}
			}
		}
	}

	check("cold")

	// Concurrent requesters race a stream of commits; every response must
	// decode (we cannot pin bytes mid-race, but nothing may tear).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{DigestPath, DeltaPath, SnapshotPath} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					w := serveGet(handlers[path], path, "")
					if w.Code != http.StatusOK {
						panic(fmt.Sprintf("%s: status %d", path, w.Code))
					}
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		seed := []core.SnapshotEntry{{
			Prefix: netip.MustParsePrefix(fmt.Sprintf("198.18.0.%d/32", i+1)),
			Window: 16 + i, Samples: 3, Age: time.Second,
		}}
		if _, err := a.MergeSnapshot(seed, core.MergePolicy{}); err != nil {
			t.Fatalf("MergeSnapshot: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	check("after-commits")

	st := s.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", st)
	}
}

// TestServeNotModified covers the revalidation flow: a response's ETag
// replayed as If-None-Match earns 304 with no body; a table change retires
// the validator and the next conditional request gets a full body with a
// new ETag.
func TestServeNotModified(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	s := NewServer(a, "host-a", "boot-1", nil)
	h := s.DigestHandler()

	w := serveGet(h, DigestPath, "")
	if w.Code != http.StatusOK {
		t.Fatalf("unconditional GET: status %d", w.Code)
	}
	etag := w.Header().Get("ETag")
	if !strings.HasPrefix(etag, `"boot-1/`) {
		t.Fatalf("ETag = %q, want \"boot-1/<version>\" form", etag)
	}

	w = serveGet(h, DigestPath, etag)
	if w.Code != http.StatusNotModified {
		t.Fatalf("conditional GET: status %d, want 304", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Fatalf("304 carried a %d-byte body", w.Body.Len())
	}
	if got := w.Header().Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}
	if st := s.Stats(); st.NotModified != 1 {
		t.Fatalf("stats = %+v, want 1 notModified", st)
	}

	// The table moves: the old validator must stop matching.
	seed := []core.SnapshotEntry{{
		Prefix: netip.MustParsePrefix("198.18.0.1/32"), Window: 32, Samples: 3, Age: time.Second,
	}}
	if _, err := a.MergeSnapshot(seed, core.MergePolicy{}); err != nil {
		t.Fatalf("MergeSnapshot: %v", err)
	}
	w = serveGet(h, DigestPath, etag)
	if w.Code != http.StatusOK {
		t.Fatalf("post-commit conditional GET: status %d, want 200", w.Code)
	}
	if w.Body.Len() == 0 {
		t.Fatal("post-commit conditional GET: empty body")
	}
	if got := w.Header().Get("ETag"); got == etag {
		t.Fatalf("ETag unchanged across a commit: %q", got)
	}
	// A matching validator earns 304 even before any body is cached for
	// the new version — revalidation never requires a rebuild.
	s2 := NewServer(a, "host-a", "boot-1", nil)
	w = serveGet(s2.DigestHandler(), DigestPath, w.Header().Get("ETag"))
	if w.Code != http.StatusNotModified {
		t.Fatalf("cold-cache conditional GET: status %d, want 304", w.Code)
	}
	if st := s2.Stats(); st.Misses != 0 {
		t.Fatalf("cold-cache 304 rebuilt a body: %+v", st)
	}
}

// TestServeRemintDropsCache: after an in-process agent reboot the server is
// reminted; the old life's validators must stop matching and the cache must
// not serve the old life's bodies.
func TestServeRemintDropsCache(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	s := NewServer(a, "host-a", "boot-1", nil)
	h := s.DigestHandler()

	w := serveGet(h, DigestPath, "")
	oldETag := w.Header().Get("ETag")
	oldBody := append([]byte(nil), w.Body.Bytes()...)

	s.Remint("boot-2")

	w = serveGet(h, DigestPath, oldETag)
	if w.Code != http.StatusOK {
		t.Fatalf("post-remint conditional GET: status %d, want 200 (old validator must not match)", w.Code)
	}
	newETag := w.Header().Get("ETag")
	if newETag == oldETag {
		t.Fatalf("ETag survived remint: %q", newETag)
	}
	if !strings.HasPrefix(newETag, `"boot-2/`) {
		t.Fatalf("post-remint ETag = %q, want boot-2 scope", newETag)
	}
	if bytes.Equal(w.Body.Bytes(), oldBody) {
		t.Fatal("post-remint body identical to old life's (instance field must differ)")
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (remint dropped the cache)", st)
	}
}

// TestServePlainPeerGetsFullBody: a peer that never sends If-None-Match
// (pre-gossip builds, curl) gets complete bodies on every request — the
// cache is invisible to it.
func TestServePlainPeerGetsFullBody(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	srv := gossipServer(a, "host-a", "boot-1")
	defer srv.Close()

	for _, path := range []string{DigestPath, DeltaPath, SnapshotPath} {
		for round := 0; round < 3; round++ {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s round %d: status %d", path, round, resp.StatusCode)
			}
			if len(body) == 0 {
				t.Fatalf("%s round %d: empty body for unconditional request", path, round)
			}
		}
	}
}

// TestServeEntryBodyFreshnessBound: cached delta/snapshot bodies embed ages
// measured at encode time, so they are re-encoded once they age past TTL/4
// even at a constant table version. The digest hashes no ages and stays
// cached.
func TestServeEntryBodyFreshnessBound(t *testing.T) {
	clk := &simClock{}
	routes := newMemRoutes()
	a, err := core.New(core.Config{
		Sampler: &stubSampler{obs: []core.Observation{obs(t, "192.0.2.1", 40)}},
		Routes:  routes,
		Clock:   clk.Now,
		TTL:     time.Minute, // freshness bound: 15s
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	defer a.Close()
	if err := a.Tick(); err != nil {
		t.Fatalf("Tick: %v", err)
	}

	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	s := NewServer(a, "host-a", "boot-1", func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	dh, sh := s.DigestHandler(), s.SnapshotHandler()

	serveGet(sh, SnapshotPath, "")
	serveGet(dh, DigestPath, "")
	serveGet(sh, SnapshotPath, "")
	serveGet(dh, DigestPath, "")
	if st := s.Stats(); st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("warm stats = %+v, want 2 misses + 2 hits", st)
	}

	advance(16 * time.Second) // past TTL/4, version unchanged
	serveGet(sh, SnapshotPath, "")
	serveGet(dh, DigestPath, "")
	st := s.Stats()
	if st.Misses != 3 {
		t.Fatalf("aged stats = %+v, want the snapshot re-encoded (3 misses)", st)
	}
	if st.Hits != 3 {
		t.Fatalf("aged stats = %+v, want the digest still cached (3 hits)", st)
	}
}

// TestParseBucketsDedupesAndCaps: repeated indices collapse and oversized
// lists are rejected outright, closing the response-amplification lever
// where "0,0,0,..." multiplied the filtered payload per mention.
func TestParseBucketsDedupesAndCaps(t *testing.T) {
	got, err := parseBuckets("3,1,3,1,3")
	if err != nil {
		t.Fatalf("parseBuckets: %v", err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("parseBuckets = %v, want [3 1]", got)
	}

	huge := strings.TrimSuffix(strings.Repeat("0,", gossippkg.NumBuckets+1), ",")
	if _, err := parseBuckets(huge); err == nil {
		t.Fatalf("parseBuckets accepted a %d-entry list", gossippkg.NumBuckets+1)
	}

	// The full valid range still parses.
	all := make([]string, gossippkg.NumBuckets)
	for i := range all {
		all[i] = fmt.Sprint(i)
	}
	got, err = parseBuckets(strings.Join(all, ","))
	if err != nil {
		t.Fatalf("parseBuckets(all): %v", err)
	}
	if len(got) != gossippkg.NumBuckets {
		t.Fatalf("parseBuckets(all) = %d entries, want %d", len(got), gossippkg.NumBuckets)
	}
}

// TestPullerNotModifiedRound: once a puller has a validator, a converged
// round is answered 304 — zero body bytes, counted distinctly in health and
// metrics, cursor intact — and a table change breaks back out of it.
func TestPullerNotModifiedRound(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	srv := gossipServer(src, "host-a", "boot-1")
	defer srv.Close()

	dst, _, _ := newTestAgent(t, nil)
	p := newGossipPuller(t, dst, srv.URL)
	ctx := context.Background()

	// Round 1: first contact, full transfer (the digest response arms the
	// validator).
	if merged := p.PullOnce(ctx); merged != 2 {
		t.Fatalf("round 1 merged %d, want 2", merged)
	}

	// Round 2: converged with a validator — 304, nothing on the wire.
	if merged := p.PullOnce(ctx); merged != 0 {
		t.Fatalf("round 2 merged %d, want 0", merged)
	}
	h := p.Health()[0]
	if h.Mode != ModeDigest || h.NotModified != 1 {
		t.Fatalf("round 2 health = %+v, want a 304 digest round", h)
	}
	if h.LastBytes != 0 {
		t.Fatalf("round 2 moved %d body bytes, want 0 (headers only)", h.LastBytes)
	}
	if m := dst.Metrics().Snapshot().Counters; m["riptide_gossip_not_modified"] != 1 {
		t.Fatalf("metrics = %v, want riptide_gossip_not_modified=1", m)
	}

	// The source learns a new destination: the validator stops matching
	// and the next round is a delta again.
	seed := []core.SnapshotEntry{{
		Prefix: netip.MustParsePrefix("198.18.0.1/32"), Window: 32, Samples: 3, Age: time.Second,
	}}
	if _, err := src.MergeSnapshot(seed, core.MergePolicy{}); err != nil {
		t.Fatalf("MergeSnapshot: %v", err)
	}
	if merged := p.PullOnce(ctx); merged != 1 {
		t.Fatalf("round 3 merged %d, want 1", merged)
	}
	h = p.Health()[0]
	if h.Mode != ModeDelta {
		t.Fatalf("round 3 health = %+v, want a delta round", h)
	}

	// Round 4: converged again at the new version.
	p.PullOnce(ctx)
	h = p.Health()[0]
	if h.NotModified != 2 {
		t.Fatalf("round 4 health = %+v, want notModified=2", h)
	}
}
