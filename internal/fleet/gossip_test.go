package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"riptide/internal/core"
	gossippkg "riptide/internal/gossip"
)

// gossipServer mounts the full v3 endpoint set for one agent, the way
// riptided does.
func gossipServer(a *core.Agent, source, instance string) *httptest.Server {
	mux := http.NewServeMux()
	mux.Handle(SnapshotPath, Handler(a, source, instance, func() time.Time { return time.Unix(1, 0) }))
	mux.Handle(DigestPath, DigestHandler(a, source, instance))
	mux.Handle(DeltaPath, DeltaHandler(a, source, instance))
	return httptest.NewServer(mux)
}

func newGossipPuller(t *testing.T, dst *core.Agent, peer string) *Puller {
	t.Helper()
	p, err := NewPuller(PullerConfig{Agent: dst, Peers: []string{peer}, Gossip: true})
	if err != nil {
		t.Fatalf("NewPuller: %v", err)
	}
	return p
}

// TestGossipConvergedRoundIsDigestOnly is the O(1) acceptance criterion:
// once two peers are in sync, a gossip round exchanges only the digest — no
// entries move, the round's bytes stay fixed-size, and the metrics
// distinguish the digest-only round from delta and full transfers.
func TestGossipConvergedRoundIsDigestOnly(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	srv := gossipServer(src, "host-a", "boot-1")
	defer srv.Close()

	dst, dstRoutes, _ := newTestAgent(t, nil)
	p := newGossipPuller(t, dst, srv.URL)

	// Round 1: first contact — a full transfer over the delta endpoint.
	if merged := p.PullOnce(context.Background()); merged != 2 {
		t.Fatalf("round 1 merged %d, want 2", merged)
	}
	h := p.Health()[0]
	if h.Mode != ModeFull || h.FullPulls != 1 {
		t.Fatalf("round 1 health = %+v, want a full transfer", h)
	}
	if dstRoutes.count() != 2 {
		t.Fatalf("routes = %d, want 2", dstRoutes.count())
	}
	fullBytes := h.LastBytes

	// Round 2: converged — digest only.
	if merged := p.PullOnce(context.Background()); merged != 0 {
		t.Fatalf("round 2 merged %d, want 0", merged)
	}
	h = p.Health()[0]
	if h.Mode != ModeDigest || h.DigestHits != 1 || h.FullPulls != 1 {
		t.Fatalf("round 2 health = %+v, want a digest hit", h)
	}
	if h.DeltaPulls != 0 || h.SnapshotPulls != 0 {
		t.Fatalf("round 2 health = %+v: converged round used a transfer mode", h)
	}
	if h.LastBytes >= fullBytes {
		t.Fatalf("digest round moved %d bytes, full moved %d — no saving", h.LastBytes, fullBytes)
	}
	digestBytes := h.LastBytes

	// Rounds 3..5: still converged — the cost does not grow with rounds
	// or with table size (it is the fixed digest, every time).
	for i := 0; i < 3; i++ {
		p.PullOnce(context.Background())
	}
	h = p.Health()[0]
	if h.DigestHits != 4 || h.LastBytes != digestBytes {
		t.Fatalf("steady state health = %+v, want 4 digest hits at %d bytes each", h, digestBytes)
	}

	// The client-side metrics expose the same distinction.
	m := dst.Metrics().Snapshot().Counters
	if m["riptide_gossip_rounds_digest"] != 4 || m["riptide_gossip_rounds_full"] != 1 {
		t.Fatalf("metrics = %v, want 4 digest rounds and 1 full", m)
	}
	if m["riptide_gossip_bytes_received"] == 0 {
		t.Fatal("no gossip bytes accounted")
	}
}

// TestGossipDeltaRoundCarriesOnlyChanges: after the source learns one more
// destination, the next round is a delta bearing exactly the new entry.
func TestGossipDeltaRoundCarriesOnlyChanges(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	srv := gossipServer(src, "host-a", "boot-1")
	defer srv.Close()

	dst, dstRoutes, _ := newTestAgent(t, nil)
	p := newGossipPuller(t, dst, srv.URL)
	p.PullOnce(context.Background()) // full
	p.PullOnce(context.Background()) // digest

	// The source learns a new destination.
	if _, err := src.MergeSnapshot([]core.SnapshotEntry{{
		Prefix: netip.MustParsePrefix("203.0.113.9/32"), Window: 33, Samples: 4, Age: time.Second,
	}}, core.MergePolicy{MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}

	if merged := p.PullOnce(context.Background()); merged != 1 {
		t.Fatalf("delta round merged %d, want 1", merged)
	}
	h := p.Health()[0]
	if h.Mode != ModeDelta || h.DeltaPulls != 1 {
		t.Fatalf("health = %+v, want a delta round", h)
	}
	if w, ok := dstRoutes.get(pfx(t, "203.0.113.9/32")); !ok || w != 33 {
		t.Fatalf("new destination not merged: %d,%v", w, ok)
	}

	// And the round after is converged again.
	p.PullOnce(context.Background())
	if h := p.Health()[0]; h.Mode != ModeDigest {
		t.Fatalf("post-delta round = %+v, want digest", h)
	}
}

// TestGossipRestartBucketResync: when the peer restarts (new instance,
// version counter reset) the puller does not re-fetch the whole table — it
// diffs the remembered digest and fetches only the divergent buckets. The
// restart is driven through one server whose agent and instance are
// swappable behind a stable URL.
func TestGossipRestartBucketResync(t *testing.T) {
	observations := []core.Observation{}
	for i := 0; i < 40; i++ {
		observations = append(observations, obs(t, fmt.Sprintf("10.9.%d.1", i), 20+i))
	}
	src1, _, _ := newTestAgent(t, observations)

	var current http.Handler
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.ServeHTTP(w, r)
	}))
	defer srv.Close()

	mount := func(a *core.Agent, instance string) http.Handler {
		mux := http.NewServeMux()
		mux.Handle(SnapshotPath, Handler(a, "host-a", instance, nil))
		mux.Handle(DigestPath, DigestHandler(a, "host-a", instance))
		mux.Handle(DeltaPath, DeltaHandler(a, "host-a", instance))
		return mux
	}
	current = mount(src1, "boot-1")

	dst, dstRoutes, _ := newTestAgent(t, nil)
	p := newGossipPuller(t, dst, srv.URL)
	p.PullOnce(context.Background()) // full
	if dstRoutes.count() != 40 {
		t.Fatalf("routes = %d, want 40", dstRoutes.count())
	}
	fullBytes := p.Health()[0].LastBytes

	// Restart: same content except one destination, new instance.
	observations[7] = obs(t, "10.9.7.1", 55)
	src2, _, _ := newTestAgent(t, observations)
	current = mount(src2, "boot-2")

	p.PullOnce(context.Background())
	h := p.Health()[0]
	if h.Mode != ModeBuckets || h.BucketPulls != 1 {
		t.Fatalf("post-restart round = %+v, want a bucket resync", h)
	}
	if h.LastBytes >= fullBytes {
		t.Fatalf("bucket resync moved %d bytes, full moved %d — no narrowing", h.LastBytes, fullBytes)
	}

	// Next round: converged against the new instance.
	p.PullOnce(context.Background())
	if h := p.Health()[0]; h.Mode != ModeDigest {
		t.Fatalf("post-resync round = %+v, want digest", h)
	}
}

// TestGossipConvergenceEquivalence is the tentpole acceptance criterion: a
// receiver syncing via the digest→delta ladder converges to a byte-identical
// exported table to a receiver syncing via full snapshots, across a
// multi-round schedule with source churn between rounds.
func TestGossipConvergenceEquivalence(t *testing.T) {
	observations := []core.Observation{}
	for i := 0; i < 25; i++ {
		observations = append(observations, obs(t, fmt.Sprintf("10.8.%d.1", i), 15+i))
	}
	src, _, _ := newTestAgent(t, observations)
	srv := gossipServer(src, "host-a", "boot-1")
	defer srv.Close()

	viaGossip, _, _ := newTestAgent(t, nil)
	viaFull, _, _ := newTestAgent(t, nil)
	gp := newGossipPuller(t, viaGossip, srv.URL)
	fp, err := NewPuller(PullerConfig{Agent: viaFull, Peers: []string{srv.URL}, Gossip: false})
	if err != nil {
		t.Fatal(err)
	}

	churn := func(round int) {
		if _, err := src.MergeSnapshot([]core.SnapshotEntry{{
			Prefix:  netip.MustParsePrefix(fmt.Sprintf("203.0.113.%d/32", round)),
			Window:  20 + round,
			Samples: 3,
			Age:     time.Second,
		}}, core.MergePolicy{MaxAge: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= 5; round++ {
		gp.PullOnce(context.Background())
		fp.PullOnce(context.Background())
		churn(round)
	}
	// One final settle round after the last churn.
	gp.PullOnce(context.Background())
	fp.PullOnce(context.Background())

	normalize := func(a *core.Agent) []core.SnapshotEntry {
		entries := a.ExportSnapshot()
		for i := range entries {
			// Versions and ages are receiver-local bookkeeping (stamped at
			// merge time); the learned content is what must match.
			entries[i].Version = 0
			entries[i].Age = 0
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Prefix.String() < entries[j].Prefix.String() })
		return entries
	}
	g, f := normalize(viaGossip), normalize(viaFull)
	if !reflect.DeepEqual(g, f) {
		t.Fatalf("tables diverge:\ngossip: %+v\nfull:   %+v", g, f)
	}
	if len(g) != 30 {
		t.Fatalf("converged table has %d entries, want 30", len(g))
	}
	// Sanity: the gossip receiver actually used the cheap rungs.
	h := gp.Health()[0]
	if h.DeltaPulls == 0 {
		t.Fatalf("gossip receiver never used a delta: %+v", h)
	}
}

// TestSnapshotHandlerServesGzip: the legacy endpoint satisfies the gzip
// satellite — compressed when asked, identity otherwise, same payload.
func TestSnapshotHandlerServesGzip(t *testing.T) {
	observations := []core.Observation{}
	for i := 0; i < 50; i++ {
		observations = append(observations, obs(t, fmt.Sprintf("10.7.%d.1", i), 20))
	}
	a, _, _ := newTestAgent(t, observations)
	srv := gossipServer(a, "host-a", "boot-1")
	defer srv.Close()

	get := func(gz bool) (hdr string, body []byte, raw int) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+SnapshotPath, nil)
		if gz {
			req.Header.Set("Accept-Encoding", "gzip")
		} else {
			req.Header.Set("Accept-Encoding", "identity")
		}
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		rawBody, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		hdr = resp.Header.Get("Content-Encoding")
		body = rawBody
		if hdr == "gzip" {
			zr, err := gzip.NewReader(bytes.NewReader(rawBody))
			if err != nil {
				t.Fatal(err)
			}
			body, err = io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
		}
		return hdr, body, len(rawBody)
	}

	plainHdr, plainBody, plainRaw := get(false)
	if plainHdr != "" {
		t.Fatalf("identity request got Content-Encoding %q", plainHdr)
	}
	gzHdr, gzBody, gzRaw := get(true)
	if gzHdr != "gzip" {
		t.Fatalf("gzip request got Content-Encoding %q", gzHdr)
	}
	if !bytes.Equal(plainBody, gzBody) {
		t.Fatal("gzip and identity payloads differ")
	}
	if gzRaw >= plainRaw {
		t.Fatalf("gzip wire size %d >= identity %d", gzRaw, plainRaw)
	}
	if _, err := Decode(bytes.TrimSpace(gzBody)); err != nil {
		t.Fatalf("decompressed snapshot does not decode: %v", err)
	}
}

// TestReadBodyCapsDecompressedSize: a tiny compressed body expanding past
// the cap is rejected — the decompressed-size bound, not just the wire
// bound, protects the puller.
func TestReadBodyCapsDecompressedSize(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	chunk := bytes.Repeat([]byte{'a'}, 64<<10)
	for written := 0; written < 4<<20; written += len(chunk) {
		zw.Write(chunk)
	}
	zw.Close()

	resp := &http.Response{
		Header: http.Header{"Content-Encoding": []string{"gzip"}},
		Body:   io.NopCloser(bytes.NewReader(buf.Bytes())),
	}
	if _, _, err := readBody(resp, 1<<20); err == nil {
		t.Fatal("readBody accepted a 4 MiB decompression against a 1 MiB cap")
	}

	// Within the cap it round-trips.
	var small bytes.Buffer
	zw = gzip.NewWriter(&small)
	zw.Write([]byte(`{"ok":true}`))
	zw.Close()
	resp = &http.Response{
		Header: http.Header{"Content-Encoding": []string{"gzip"}},
		Body:   io.NopCloser(bytes.NewReader(small.Bytes())),
	}
	data, wire, err := readBody(resp, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("data = %q", data)
	}
	if wire != int64(small.Len()) {
		t.Fatalf("wire bytes = %d, want %d", wire, small.Len())
	}
}

// TestJitterShortensBackoffOnly: jitter subtracts up to Jitter×d and never
// extends a backoff.
func TestJitterShortensBackoffOnly(t *testing.T) {
	a, _, _ := newTestAgent(t, nil)
	mk := func(jitter float64, r func() float64) *Puller {
		p, err := NewPuller(PullerConfig{
			Agent:     a,
			Interval:  10 * time.Second,
			Jitter:    jitter,
			randFloat: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Max draw: the full jitter slice comes off.
	p := mk(0.2, func() float64 { return 0.999 })
	got := p.jittered(10 * time.Second)
	if got > 10*time.Second || got < 8*time.Second {
		t.Fatalf("jittered(10s) = %v, want within [8s, 10s]", got)
	}
	// Zero draw: unchanged.
	p = mk(0.2, func() float64 { return 0 })
	if got := p.jittered(10 * time.Second); got != 10*time.Second {
		t.Fatalf("zero draw moved the backoff: %v", got)
	}
	// Jitter disabled.
	p = mk(-1, func() float64 { return 0.999 })
	if got := p.jittered(10 * time.Second); got != 10*time.Second {
		t.Fatalf("disabled jitter moved the backoff: %v", got)
	}
	// Distribution sanity: different draws give different schedules (the
	// anti-stampede property).
	seen := map[time.Duration]bool{}
	for _, draw := range []float64{0.1, 0.5, 0.9} {
		d := draw
		p = mk(0.2, func() float64 { return d })
		seen[p.jittered(40*time.Second)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("three draws produced %d distinct backoffs", len(seen))
	}
}

// TestGossipEndpointsRejectBadRequests covers the delta endpoint's
// validation surface.
func TestGossipEndpointsRejectBadRequests(t *testing.T) {
	a, _, _ := newTestAgent(t, nil)
	srv := gossipServer(a, "host-a", "boot-1")
	defer srv.Close()

	for _, bad := range []string{
		DeltaPath + "?since=not-a-number",
		DeltaPath + "?buckets=1,frog",
		DeltaPath + "?buckets=-1",
		DeltaPath + "?buckets=9999",
	} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %s, want 400", bad, resp.Status)
		}
	}

	// POSTs are refused on all three.
	for _, path := range []string{SnapshotPath, DigestPath, DeltaPath} {
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %s, want 405", path, resp.Status)
		}
	}

	// A digest round-trips through the real endpoint.
	resp, err := http.Get(srv.URL + DigestPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gossippkg.DecodeDigest(bytes.TrimSpace(data)); err != nil {
		t.Fatalf("served digest does not decode: %v", err)
	}
}
