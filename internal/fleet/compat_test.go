package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"riptide/internal/core"
)

// encodeAnyVersion marshals a snapshot without Encode's current-version
// check, standing in for what an older build's encoder produced.
func encodeAnyVersion(s Snapshot) ([]byte, error) { return json.Marshal(s) }

// TestDecodeWireVersions pins snapshot wire-format compatibility across the
// version history: v1 (pre-governor), v2 (quarantine markers), and v3
// (gossip versioning) payloads all decode, with absent fields taking their
// documented meanings; versions outside 1..3 are rejected.
func TestDecodeWireVersions(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantErr bool
		check   func(t *testing.T, s Snapshot)
	}{
		{
			name: "v1 plain entry",
			payload: `{"version": 1, "source": "old", "createdUnixNano": 1,
				"entries": [{"prefix": "192.0.2.1/32", "window": 40, "samples": 9, "ageNanos": 1000000000}]}`,
			check: func(t *testing.T, s Snapshot) {
				if s.TableVersion != 0 || s.Instance != "" {
					t.Errorf("v1 snapshot grew gossip fields: %+v", s)
				}
				e := s.Entries[0]
				if e.Quarantined || e.ModVersion != 0 {
					t.Errorf("v1 entry grew newer fields: %+v", e)
				}
				if e.Window != 40 || e.Samples != 9 {
					t.Errorf("v1 entry = %+v", e)
				}
			},
		},
		{
			name: "v2 quarantine marker",
			payload: `{"version": 2, "createdUnixNano": 1,
				"entries": [{"prefix": "192.0.2.1/32", "quarantined": true, "ageNanos": 5}]}`,
			check: func(t *testing.T, s Snapshot) {
				if !s.Entries[0].Quarantined {
					t.Error("v2 quarantine marker lost")
				}
				if s.TableVersion != 0 {
					t.Errorf("v2 snapshot grew a table version: %+v", s)
				}
			},
		},
		{
			name: "v3 gossip versioned",
			payload: `{"version": 3, "source": "new", "instance": "boot-7", "tableVersion": 42,
				"createdUnixNano": 1,
				"entries": [{"prefix": "192.0.2.1/32", "window": 40, "samples": 9, "ageNanos": 5, "modVersion": 41}]}`,
			check: func(t *testing.T, s Snapshot) {
				if s.Instance != "boot-7" || s.TableVersion != 42 {
					t.Errorf("v3 gossip fields lost: %+v", s)
				}
				if s.Entries[0].ModVersion != 41 {
					t.Errorf("v3 entry mod version lost: %+v", s.Entries[0])
				}
			},
		},
		{name: "v0 rejected", payload: `{"version": 0, "entries": []}`, wantErr: true},
		{name: "v4 rejected", payload: `{"version": 4, "entries": []}`, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Decode([]byte(tc.payload))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Decode accepted %s", tc.payload)
				}
				return
			}
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			tc.check(t, s)
		})
	}
}

// TestV3EncoderRoundTrips: a current (v3) snapshot survives encode/decode
// with the gossip fields intact.
func TestV3EncoderRoundTrips(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	snap := FromAgent(src, "host-a", time.Unix(1, 0))
	snap.Instance = "boot-1"
	if snap.Version != 3 {
		t.Fatalf("Version = %d, want 3", snap.Version)
	}
	if snap.TableVersion == 0 {
		t.Fatal("FromAgent exported no table version")
	}
	if snap.Entries[0].ModVersion == 0 {
		t.Fatal("exported entry carries no mod version")
	}
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TableVersion != snap.TableVersion || got.Instance != "boot-1" {
		t.Fatalf("round trip lost gossip fields: %+v", got)
	}
	if got.Entries[0] != snap.Entries[0] {
		t.Fatalf("entry round trip: %+v != %+v", got.Entries[0], snap.Entries[0])
	}
}

// v2Handler simulates a pre-gossip peer: it serves a version-2 snapshot on
// the snapshot path and knows nothing of the digest/delta endpoints.
func v2Handler(t *testing.T, a *core.Agent) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(SnapshotPath, func(w http.ResponseWriter, r *http.Request) {
		snap := FromAgent(a, "v2-peer", time.Unix(1, 0))
		snap.Version = 2
		snap.Instance = ""
		snap.TableVersion = 0
		for i := range snap.Entries {
			snap.Entries[i].ModVersion = 0
		}
		// Encode is strict about the current version; marshal the v2 shape
		// by hand the way an old build would.
		data, err := encodeAnyVersion(snap)
		if err != nil {
			t.Errorf("encode v2: %v", err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	return mux
}

// TestGossipPullerFallsBackToV2Peer: a gossip-enabled (v3) puller syncing
// from a v2 peer — no digest endpoint, version-2 snapshots — degrades to
// legacy full snapshot pulls and still merges everything.
func TestGossipPullerFallsBackToV2Peer(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	srv := httptest.NewServer(v2Handler(t, src))
	defer srv.Close()

	dst, dstRoutes, _ := newTestAgent(t, nil)
	p, err := NewPuller(PullerConfig{Agent: dst, Peers: []string{srv.URL}, Gossip: true})
	if err != nil {
		t.Fatal(err)
	}
	if merged := p.PullOnce(context.Background()); merged != 2 {
		t.Fatalf("merged %d from v2 peer, want 2", merged)
	}
	if dstRoutes.count() != 2 {
		t.Fatalf("routes = %d, want 2", dstRoutes.count())
	}
	h := p.Health()
	if h[0].Mode != ModeSnapshot || h[0].SnapshotPulls != 1 {
		t.Fatalf("health = %+v, want a legacy snapshot round", h[0])
	}

	// Every subsequent round keeps working the same way — the puller does
	// not wedge on the missing gossip endpoints.
	if p.PullOnce(context.Background()); p.Health()[0].SnapshotPulls != 2 {
		t.Fatalf("second round = %+v, want another snapshot pull", p.Health()[0])
	}
}
