package fleet

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"riptide/internal/core"
)

// stubSampler returns its observations once, then nothing: one poll round's
// worth of connections.
type stubSampler struct {
	mu  sync.Mutex
	obs []core.Observation
}

func (s *stubSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf = append(buf, s.obs...)
	s.obs = nil
	return buf, nil
}

// memRoutes records programmed routes in memory.
type memRoutes struct {
	mu  sync.Mutex
	set map[netip.Prefix]int
}

func newMemRoutes() *memRoutes { return &memRoutes{set: make(map[netip.Prefix]int)} }

func (r *memRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.set[p] = cwnd
	return nil
}

func (r *memRoutes) ClearInitCwnd(p netip.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.set, p)
	return nil
}

func (r *memRoutes) get(p netip.Prefix) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.set[p]
	return w, ok
}

func (r *memRoutes) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.set)
}

// simClock is a manually advanced monotonic clock.
type simClock struct {
	mu sync.Mutex
	d  time.Duration
}

func (c *simClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.d
}

func (c *simClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.d += d
	c.mu.Unlock()
}

func obs(t *testing.T, addr string, cwnd int) core.Observation {
	t.Helper()
	a, err := netip.ParseAddr(addr)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", addr, err)
	}
	return core.Observation{Dst: a, Cwnd: cwnd}
}

func pfx(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

// newTestAgent builds an agent over in-memory fakes. If observations are
// given, one tick folds them in so the agent has learned entries.
func newTestAgent(t *testing.T, observations []core.Observation) (*core.Agent, *memRoutes, *simClock) {
	t.Helper()
	clk := &simClock{}
	routes := newMemRoutes()
	a, err := core.New(core.Config{
		Sampler: &stubSampler{obs: observations},
		Routes:  routes,
		Clock:   clk.Now,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	if observations != nil {
		if err := a.Tick(); err != nil {
			t.Fatalf("Tick: %v", err)
		}
	}
	return a, routes, clk
}

func TestSnapshotRoundTrip(t *testing.T) {
	src, _, _ := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})

	created := time.Unix(1700000000, 0)
	snap := FromAgent(src, "host-a", created)
	if snap.Version != Version {
		t.Fatalf("Version = %d, want %d", snap.Version, Version)
	}
	if snap.Source != "host-a" {
		t.Fatalf("Source = %q", snap.Source)
	}
	if snap.CreatedUnixNano != created.UnixNano() {
		t.Fatalf("CreatedUnixNano = %d, want %d", snap.CreatedUnixNano, created.UnixNano())
	}
	if len(snap.Entries) != 2 {
		t.Fatalf("Entries = %+v, want 2", snap.Entries)
	}

	data, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Entries) != len(snap.Entries) || got.Source != snap.Source {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, snap)
	}
	for i := range got.Entries {
		if got.Entries[i] != snap.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], snap.Entries[i])
		}
	}

	// Merging the decoded snapshot into a fresh agent programs the routes.
	dst, dstRoutes, _ := newTestAgent(t, nil)
	stats, err := dst.MergeSnapshot(got.CoreEntries(), core.MergePolicy{})
	if err != nil {
		t.Fatalf("MergeSnapshot: %v", err)
	}
	if stats.Merged != 2 {
		t.Fatalf("Merged = %d, want 2; stats %+v", stats.Merged, stats)
	}
	if w, ok := dstRoutes.get(pfx(t, "192.0.2.1/32")); !ok || w != 40 {
		t.Fatalf("route 192.0.2.1/32 = %d,%v; want 40,true", w, ok)
	}
	if w, ok := dstRoutes.get(pfx(t, "198.51.100.7/32")); !ok || w != 80 {
		t.Fatalf("route 198.51.100.7/32 = %d,%v; want 80,true", w, ok)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":         `{"version": 1,`,
		"zero version":    `{"entries": []}`,
		"future version":  `{"version": 4, "entries": []}`,
		"wrong json type": `[1, 2, 3]`,
	}
	for name, data := range cases {
		if _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, data)
		}
	}
}

func TestEncodeRejectsWrongVersion(t *testing.T) {
	if _, err := Encode(Snapshot{Version: 0}); err == nil {
		t.Fatal("Encode accepted version 0")
	}
}

// TestDecodeAcceptsV1Snapshots: the v2 bump (quarantine markers) must not
// orphan fleets mid-upgrade — a v1 snapshot from an older agent decodes and
// merges exactly as before, with no entry treated as quarantined.
func TestDecodeAcceptsV1Snapshots(t *testing.T) {
	v1 := `{
		"version": 1,
		"source": "old-agent",
		"createdUnixNano": 1700000000000000000,
		"entries": [
			{"prefix": "192.0.2.1/32", "window": 40, "samples": 9, "ageNanos": 1000000000}
		]
	}`
	snap, err := Decode([]byte(v1))
	if err != nil {
		t.Fatalf("Decode(v1): %v", err)
	}
	if snap.Version != 1 || snap.Source != "old-agent" {
		t.Fatalf("snapshot = %+v", snap)
	}
	entries := snap.CoreEntries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Quarantined {
		t.Error("v1 entry decoded as quarantined")
	}
	if e.Window != 40 || e.Samples != 9 || e.Age != time.Second {
		t.Errorf("entry = %+v", e)
	}
}

// TestQuarantineMarkerRoundTrip: a v2 snapshot carries quarantine markers
// through encode/decode, and the receiving agent refuses to warm-start them.
func TestQuarantineMarkerRoundTrip(t *testing.T) {
	src := Snapshot{
		Version: Version,
		Source:  "guarded-agent",
		Entries: []Entry{
			{Prefix: "192.0.2.1/32", Window: 40, Samples: 9, AgeNanos: int64(time.Second)},
			{Prefix: "198.51.100.7/32", Quarantined: true, AgeNanos: int64(30 * time.Second)},
		},
	}
	data, err := Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	routes := newMemRoutes()
	agent, err := core.New(core.Config{
		Sampler: &stubSampler{},
		Routes:  routes,
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	stats, err := agent.MergeSnapshot(got.CoreEntries(), core.MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 1 || stats.SkippedQuarantined != 1 {
		t.Fatalf("stats = %+v, want 1 merged + 1 skipped-quarantined", stats)
	}
	if _, ok := routes.get(pfx(t, "198.51.100.7/32")); ok {
		t.Error("quarantined destination warm-started from snapshot")
	}
	if w, ok := routes.get(pfx(t, "192.0.2.1/32")); !ok || w != 40 {
		t.Errorf("healthy entry = %d,%v; want 40,true", w, ok)
	}
}

func TestCoreEntriesSkipsMalformedPrefix(t *testing.T) {
	s := Snapshot{
		Version: Version,
		Entries: []Entry{
			{Prefix: "not-a-prefix", Window: 40, Samples: 1},
			{Prefix: "192.0.2.0/24", Window: 50, Samples: 1},
		},
	}
	ce := s.CoreEntries()
	if len(ce) != 2 {
		t.Fatalf("CoreEntries len = %d, want 2", len(ce))
	}
	if ce[0].Prefix.IsValid() {
		t.Fatal("malformed prefix parsed as valid")
	}
	if !ce[1].Prefix.IsValid() {
		t.Fatal("valid prefix lost")
	}

	// The merge skips the malformed entry and accepts the valid one.
	a, _, _ := newTestAgent(t, nil)
	stats, err := a.MergeSnapshot(ce, core.MergePolicy{})
	if err != nil {
		t.Fatalf("MergeSnapshot: %v", err)
	}
	if stats.Merged != 1 || stats.SkippedStale != 1 {
		t.Fatalf("stats = %+v, want 1 merged / 1 skipped-stale", stats)
	}
}

func TestAgedBy(t *testing.T) {
	s := Snapshot{
		Version: Version,
		Entries: []Entry{{Prefix: "192.0.2.0/24", Window: 40, AgeNanos: int64(10 * time.Second)}},
	}
	aged := s.AgedBy(5 * time.Second)
	if got := time.Duration(aged.Entries[0].AgeNanos); got != 15*time.Second {
		t.Fatalf("aged entry age = %v, want 15s", got)
	}
	// The original is untouched (AgedBy copies).
	if got := time.Duration(s.Entries[0].AgeNanos); got != 10*time.Second {
		t.Fatalf("original mutated: age = %v, want 10s", got)
	}
	// Non-positive aging is a no-op.
	if same := s.AgedBy(0); time.Duration(same.Entries[0].AgeNanos) != 10*time.Second {
		t.Fatal("AgedBy(0) changed ages")
	}
	if same := s.AgedBy(-time.Second); time.Duration(same.Entries[0].AgeNanos) != 10*time.Second {
		t.Fatal("AgedBy(-1s) changed ages")
	}
}

func TestNormalizePeerURL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"10.0.0.2:7600", "http://10.0.0.2:7600/fleet/snapshot"},
		{"peer-b:7600", "http://peer-b:7600/fleet/snapshot"},
		{"http://peer-b:7600", "http://peer-b:7600/fleet/snapshot"},
		{"http://peer-b:7600/", "http://peer-b:7600/fleet/snapshot"},
		{"http://peer-b:7600/custom/path", "http://peer-b:7600/custom/path"},
		{"https://peer-b", "https://peer-b/fleet/snapshot"},
		{"  peer-b:1 ", "http://peer-b:1/fleet/snapshot"},
		{"", ""},
		{"   ", ""},
	}
	for _, c := range cases {
		if got := NormalizePeerURL(c.in); got != c.want {
			t.Errorf("NormalizePeerURL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
