package fleet

import (
	"fmt"
	"net/http"
	"net/netip"
	"net/url"
	"testing"
	"time"

	"riptide/internal/core"
)

// benchResponseWriter discards the body and keeps one header map alive
// across requests, so the measurement is the serving path, not the test
// recorder's bookkeeping.
type benchResponseWriter struct {
	h    http.Header
	n    int64
	code int
}

func (w *benchResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}

func (w *benchResponseWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func (w *benchResponseWriter) WriteHeader(code int) { w.code = code }

// benchAgent builds an agent holding n merged entries over no-op backends.
func benchAgent(b *testing.B, n int) *core.Agent {
	b.Helper()
	a, err := core.New(core.Config{
		Sampler: &stubSampler{},
		Routes:  newMemRoutes(),
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		b.Fatalf("core.New: %v", err)
	}
	b.Cleanup(func() { a.Close() })
	seed := make([]core.SnapshotEntry, n)
	for i := range seed {
		seed[i] = core.SnapshotEntry{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 62500 % 250), byte(i / 250 % 250), byte(1 + i%250)}), 32),
			Window:  10 + i%90,
			Samples: 50,
		}
	}
	if _, err := a.MergeSnapshot(seed, core.MergePolicy{}); err != nil {
		b.Fatalf("MergeSnapshot: %v", err)
	}
	return a
}

func benchRequest(path string) *http.Request {
	return &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: path},
		Header: http.Header{"Accept-Encoding": []string{"gzip"}},
	}
}

// benchServe measures one serving kind. churn forces a full cache
// invalidation before every request (the upper bound where the table moves
// between every pair of requests); without it every request after the first
// is a cache hit — the converged-fleet steady state.
func benchServe(b *testing.B, kindPath string, entries int, churn bool) {
	a := benchAgent(b, entries)
	s := NewServer(a, "bench", "boot-1", func() time.Time { return time.Unix(1, 0) })
	var h http.Handler
	switch kindPath {
	case DigestPath:
		h = s.DigestHandler()
	case DeltaPath:
		h = s.DeltaHandler()
	case SnapshotPath:
		h = s.SnapshotHandler()
	}
	req := benchRequest(kindPath)
	w := &benchResponseWriter{}
	h.ServeHTTP(w, req) // warm the cache and the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if churn {
			s.Remint("boot-1")
		}
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
}

func BenchmarkServeDigestConverged(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchServe(b, DigestPath, n, false) })
	}
}

func BenchmarkServeDigestChurning(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchServe(b, DigestPath, n, true) })
	}
}

func BenchmarkServeDeltaConverged(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchServe(b, DeltaPath, n, false) })
	}
}

func BenchmarkServeDeltaChurning(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchServe(b, DeltaPath, n, true) })
	}
}

func BenchmarkServeSnapshotConverged(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchServe(b, SnapshotPath, n, false) })
	}
}

func BenchmarkServeSnapshotChurning(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchServe(b, SnapshotPath, n, true) })
	}
}

// BenchmarkServeNotModified measures the 304 path: a converged peer
// presenting a matching validator costs header work only.
func BenchmarkServeNotModified(b *testing.B) {
	a := benchAgent(b, 100000)
	s := NewServer(a, "bench", "boot-1", func() time.Time { return time.Unix(1, 0) })
	h := s.DigestHandler()
	req := benchRequest(DigestPath)
	w := &benchResponseWriter{}
	h.ServeHTTP(w, req)
	req.Header.Set("If-None-Match", w.Header().Get("ETag"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != http.StatusNotModified {
			b.Fatalf("status %d, want 304", w.code)
		}
	}
}

// TestServeConvergedHitAllocs pins the cache-hit path's allocation budget:
// a converged-round request must not scale its allocations with table size
// — only the handful of header-map slices stdlib requires.
func TestServeConvergedHitAllocs(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	seed := make([]core.SnapshotEntry, 5000)
	for i := range seed {
		seed[i] = core.SnapshotEntry{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 9, byte(i / 250), byte(1 + i%250)}), 32),
			Window:  20,
			Samples: 50,
		}
	}
	if _, err := a.MergeSnapshot(seed, core.MergePolicy{}); err != nil {
		t.Fatalf("MergeSnapshot: %v", err)
	}
	s := NewServer(a, "bench", "boot-1", func() time.Time { return time.Unix(1, 0) })
	for _, tc := range []struct {
		name string
		h    http.Handler
		path string
	}{
		{"digest", s.DigestHandler(), DigestPath},
		{"delta", s.DeltaHandler(), DeltaPath},
		{"snapshot", s.SnapshotHandler(), SnapshotPath},
	} {
		req := benchRequest(tc.path)
		w := &benchResponseWriter{}
		tc.h.ServeHTTP(w, req) // fill
		allocs := testing.AllocsPerRun(200, func() {
			tc.h.ServeHTTP(w, req)
		})
		// Two header Sets (Content-Type, ETag, Content-Encoding) allocate a
		// small []string each; everything else must come from the cache.
		if allocs > 6 {
			t.Errorf("%s converged hit: %.1f allocs/op, want <= 6 (table-size-independent)", tc.name, allocs)
		}
	}

	// The 304 path is cheaper still.
	req := benchRequest(DigestPath)
	w := &benchResponseWriter{}
	s.DigestHandler().ServeHTTP(w, req)
	req.Header.Set("If-None-Match", w.Header().Get("ETag"))
	allocs := testing.AllocsPerRun(200, func() {
		s.DigestHandler().ServeHTTP(w, req)
	})
	if allocs > 6 {
		t.Errorf("304 path: %.1f allocs/op, want <= 6", allocs)
	}
}
