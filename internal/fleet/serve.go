package fleet

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"riptide/internal/core"
	"riptide/internal/gossip"
	"riptide/internal/metrics"
)

// Encode-once serving. A converged fleet asks every peer the same question
// every interval — "what is your digest?" — and before this file every
// answer re-scanned the table, re-encoded JSON, and re-gzipped identical
// bytes. Server caches the encoded (and gzipped) digest, full-delta, and
// full-snapshot bodies keyed by the agent's content token (table version +
// quarantine-marker fold) under this run's instance, so serving N converged
// peers costs one encode per table change, not N per interval. On top of
// the cache sits HTTP revalidation: responses carry a strong ETag derived
// from the same token, and a request presenting it via If-None-Match gets
// 304 Not Modified — converged peers exchange headers only, no body at all.

// ServeStats counts what the response cache did, for /status.
type ServeStats struct {
	// Hits served a cached body without touching the agent's table.
	Hits uint64 `json:"hits"`
	// Misses rebuilt (encoded + gzipped) a body because the table moved,
	// the cache was cold, or an entry-bearing body aged out.
	Misses uint64 `json:"misses"`
	// NotModified answered 304 to a matching If-None-Match — no body.
	NotModified uint64 `json:"notModified"`
}

// Cache slots, one encoded body retained per kind — the cache's memory
// bound is three plain+gzipped encodings of the table, regardless of peer
// count or request rate.
const (
	kindDigest = iota
	kindDelta
	kindSnapshot
	numKinds
)

// cachedBody is one encoded response: the JSON body (with trailing
// newline), its gzipped form, and the content token it was built at.
type cachedBody struct {
	valid    bool
	version  uint64
	markers  uint64
	etag     string
	filledAt time.Time
	plain    []byte
	gz       []byte
}

// Server serves the three fleet endpoints (digest, delta, snapshot) for one
// agent with version-keyed response caching. Construct with NewServer and
// mount the *Handler methods; the free functions DigestHandler /
// DeltaHandler / Handler remain as single-endpoint conveniences.
//
// Correctness note: entry-bearing bodies (delta, snapshot) embed per-entry
// ages measured at encode time, and ages keep growing while the version
// stands still. Cached bodies are therefore reused only while younger than
// a quarter of the agent's TTL — bounded staleness, invisible at gossip
// cadence, and the conservative merge policy discounts by age anyway.
// Digest bodies hash no ages and are reused until the content token moves.
type Server struct {
	agent  *core.Agent
	source string
	now    func() time.Time
	maxAge time.Duration

	hits        atomic.Uint64
	misses      atomic.Uint64
	notModified atomic.Uint64

	// mu guards the instance identity, the cache slots, and the pooled
	// encode scratch. Miss-path rebuilds run under it, so concurrent
	// requests for the same cold body encode once, not once each.
	mu       sync.Mutex
	instance string
	bodies   [numKinds]cachedBody

	// Rendered ETag for the current content token, so converged-round
	// requests (the overwhelming majority) reuse one string instead of
	// formatting it per request.
	etagVer  uint64
	etagMark uint64
	etagStr  string
	etagOK   bool

	// Encode scratch reused across misses (mu): the exported core entries
	// and their wire conversions, so steady-churn serving re-encodes into
	// the same backing arrays instead of growing fresh ones per request.
	coreBuf []core.SnapshotEntry
	wireBuf []gossip.Entry
}

// NewServer builds a Server for one agent. source labels exported
// snapshots; instance is this run's identity (ETags are scoped to it); now
// stamps snapshots and drives the entry-body freshness bound, nil meaning
// time.Now.
func NewServer(agent *core.Agent, source, instance string, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	maxAge := agent.Config().TTL / 4
	if maxAge <= 0 {
		maxAge = time.Second
	}
	return &Server{agent: agent, source: source, instance: instance, now: now, maxAge: maxAge}
}

// Stats returns the cache counters.
func (s *Server) Stats() ServeStats {
	return ServeStats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		NotModified: s.notModified.Load(),
	}
}

// Instance returns the identity ETags are currently scoped to.
func (s *Server) Instance() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instance
}

// Remint replaces the server's instance identity and drops every cached
// body. An embedding that reboots its agent in-process (simulators, tests)
// must remint: the new life's ETags must not validate against the old
// life's, and a cached body would resurrect withdrawn knowledge.
func (s *Server) Remint(instance string) {
	s.mu.Lock()
	s.instance = instance
	s.bodies = [numKinds]cachedBody{}
	s.etagOK = false
	s.mu.Unlock()
}

// etagFor renders the content token as a strong ETag. The documented shape
// is "<instance>/<version>"; a non-zero quarantine-marker fold appends a
// third segment so governor transitions that move no table version still
// invalidate (ETags are opaque to clients, so the extension is safe).
func etagFor(instance string, version, markers uint64) string {
	e := `"` + instance + `/` + strconv.FormatUint(version, 10)
	if markers != 0 {
		e += `/` + strconv.FormatUint(markers, 16)
	}
	return e + `"`
}

// etagMatch reports whether an If-None-Match header names etag (exact
// entity-tag match over the comma-separated list, plus the * wildcard).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// DigestHandler serves GET /fleet/digest from the cache.
func (s *Server) DigestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.serveCached(w, r, kindDigest)
	})
}

// SnapshotHandler serves GET /fleet/snapshot from the cache.
func (s *Server) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.serveCached(w, r, kindSnapshot)
	})
}

// DeltaHandler serves GET /fleet/delta: the full-table form from the cache,
// versioned deltas and bucket resyncs encoded per request (they are
// request-shaped, rare, and answered with pooled scratch).
func (s *Server) DeltaHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.RawQuery == "" {
			// The common converged-fleet request; skip query parsing (which
			// allocates) on the hot path.
			s.serveCached(w, r, kindDelta)
			return
		}
		q := r.URL.Query()
		if bs := q.Get("buckets"); bs != "" {
			buckets, err := parseBuckets(bs)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			s.serveBuckets(w, r, buckets)
			return
		}
		var since uint64
		if str := q.Get("since"); str != "" {
			v, err := strconv.ParseUint(str, 10, 64)
			if err != nil {
				http.Error(w, "bad since "+strconv.Quote(str), http.StatusBadRequest)
				return
			}
			since = v
		}
		if want := q.Get("instance"); want != "" && want != s.Instance() {
			// The cursor belongs to a previous life of this agent; its
			// versions are meaningless now. Serve everything.
			since = 0
		}
		if since == 0 {
			// The full-table delta is identical for every asker at a given
			// content token: cache-eligible.
			s.serveCached(w, r, kindDelta)
			return
		}
		s.serveSince(w, r, since)
	})
}

// serveCached answers one of the cache-eligible kinds: 304 on a matching
// If-None-Match (before any table work), the cached body when the content
// token still matches, a rebuild otherwise.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, kind int) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	version, markers := s.agent.ContentToken()

	s.mu.Lock()
	if !s.etagOK || s.etagVer != version || s.etagMark != markers {
		s.etagStr = etagFor(s.instance, version, markers)
		s.etagVer, s.etagMark, s.etagOK = version, markers, true
	}
	etag := s.etagStr
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.mu.Unlock()
		s.notModified.Add(1)
		s.counter("riptide_fleet_serve_not_modified").Inc()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	b := &s.bodies[kind]
	fresh := b.valid && b.version == version && b.markers == markers
	if fresh && kind != kindDigest && s.now().Sub(b.filledAt) > s.maxAge {
		// Entry ages have drifted too far from the cached stamp; re-encode
		// even though the version stands still.
		fresh = false
	}
	if !fresh {
		if err := s.fillLocked(kind, version, markers, etag); err != nil {
			s.mu.Unlock()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.misses.Add(1)
		s.counter("riptide_fleet_serve_misses").Inc()
	} else {
		s.hits.Add(1)
		s.counter("riptide_fleet_serve_hits").Inc()
	}
	// Cached slices are immutable once published (rebuilds replace them),
	// so the writes below safely run outside mu.
	plain, gz := b.plain, b.gz
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	var n int
	if gz != nil && acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		n, _ = w.Write(gz)
	} else {
		n, _ = w.Write(plain)
	}
	s.counter("riptide_gossip_bytes_sent").Add(uint64(n))
}

// fillLocked rebuilds one cache slot under mu. The token was read before
// the export below, so a commit racing the rebuild can only store current
// bytes under a stale token — the next request re-reads the token,
// mismatches, and rebuilds; never serves stale.
func (s *Server) fillLocked(kind int, version, markers uint64, etag string) error {
	var data []byte
	var err error
	switch kind {
	case kindDigest:
		data, err = gossip.EncodeDigest(gossip.TableDigest(s.agent, s.source, s.instance))
	case kindDelta:
		entries, ver := s.agent.ExportDeltaAppend(s.coreBuf[:0], 0)
		s.coreBuf = entries
		s.wireBuf = gossip.AppendFromCore(s.wireBuf[:0], entries)
		data, err = gossip.EncodeDelta(gossip.Delta{
			Version:      gossip.WireVersion,
			Source:       s.source,
			Instance:     s.instance,
			TableVersion: ver,
			Full:         true,
			Entries:      s.wireBuf,
		})
	case kindSnapshot:
		entries, ver := s.agent.ExportDeltaAppend(s.coreBuf[:0], 0)
		s.coreBuf = entries
		s.wireBuf = gossip.AppendFromCore(s.wireBuf[:0], entries)
		data, err = Encode(Snapshot{
			Version:         Version,
			Source:          s.source,
			Instance:        s.instance,
			TableVersion:    ver,
			CreatedUnixNano: s.now().UnixNano(),
			Entries:         s.wireBuf,
		})
	}
	if err != nil {
		return err
	}
	plain := make([]byte, 0, len(data)+1)
	plain = append(plain, data...)
	plain = append(plain, '\n')
	gz, err := gzipBytes(plain)
	if err != nil {
		// Compression is an optimization; serve plain only.
		gz = nil
	}
	s.bodies[kind] = cachedBody{
		valid:    true,
		version:  version,
		markers:  markers,
		etag:     etag,
		filledAt: s.now(),
		plain:    plain,
		gz:       gz,
	}
	return nil
}

// serveSince answers a versioned delta (since > 0) with pooled scratch.
func (s *Server) serveSince(w http.ResponseWriter, r *http.Request, since uint64) {
	s.mu.Lock()
	if since > s.agent.TableVersion() {
		// The cursor is from a previous life of this agent (or a peer
		// confusion); it cannot be interpreted. Send everything.
		s.mu.Unlock()
		s.serveCached(w, r, kindDelta)
		return
	}
	entries, ver := s.agent.ExportDeltaAppend(s.coreBuf[:0], since)
	s.coreBuf = entries
	s.wireBuf = gossip.AppendFromCore(s.wireBuf[:0], entries)
	data, err := gossip.EncodeDelta(gossip.Delta{
		Version:      gossip.WireVersion,
		Source:       s.source,
		Instance:     s.instance,
		TableVersion: ver,
		Since:        since,
		Entries:      s.wireBuf,
	})
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n := writeJSON(w, r, data)
	s.counter("riptide_gossip_bytes_sent").Add(uint64(n))
}

// serveBuckets answers a bucket resync with pooled scratch.
func (s *Server) serveBuckets(w http.ResponseWriter, r *http.Request, buckets []int) {
	s.mu.Lock()
	entries, ver := s.agent.ExportDeltaAppend(s.coreBuf[:0], 0)
	s.coreBuf = entries
	s.wireBuf = gossip.AppendFromCore(s.wireBuf[:0], entries)
	data, err := gossip.EncodeDelta(gossip.Delta{
		Version:      gossip.WireVersion,
		Source:       s.source,
		Instance:     s.instance,
		TableVersion: ver,
		Entries:      gossip.FilterBuckets(s.wireBuf, buckets),
	})
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n := writeJSON(w, r, data)
	s.counter("riptide_gossip_bytes_sent").Add(uint64(n))
}

func (s *Server) counter(name string) *metrics.Counter {
	return s.agent.Metrics().Counter(name)
}
