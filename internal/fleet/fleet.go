// Package fleet lets riptide agents share learned initcwnd state: a
// versioned JSON snapshot format, atomic on-disk persistence for restart
// warm-starts, and an HTTP peer-exchange layer (serve your snapshot, pull
// your peers').
//
// Sharing is strictly advisory. A snapshot entry carries a relative age, not
// a timestamp, so it survives machines with different wall clocks and the
// simulator's virtual time; the receiving agent re-validates every entry
// against its own merge policy (core.MergePolicy), and fresh local
// observations always beat remote hints. A peer being down, slow, or
// malformed degrades to local-only operation — the agent's own poll loop
// never waits on fleet machinery.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"riptide/internal/core"
)

// Version is the current snapshot wire-format version. Version 2 added
// quarantine markers (Entry.Quarantined); decoders accept v1 snapshots —
// every v1 field keeps its meaning and absent markers simply mean the source
// predates the governor — and reject anything newer rather than guessing at
// field semantics.
const Version = 2

// minVersion is the oldest wire format Decode still accepts.
const minVersion = 1

// Entry is one learned destination on the wire.
type Entry struct {
	// Prefix is the destination prefix in CIDR text form ("203.0.113.7/32").
	Prefix string `json:"prefix"`
	// Window is the initcwnd the source agent had programmed.
	Window int `json:"window"`
	// Samples is the cumulative observation count behind the window.
	Samples uint64 `json:"samples"`
	// AgeNanos is how long before the snapshot was created the entry was
	// last refreshed, in nanoseconds. Ages are relative so snapshots are
	// meaningful across machines with unsynchronized clocks.
	AgeNanos int64 `json:"ageNanos"`
	// Quarantined marks a destination the source's safety governor
	// withdrew after a loss regression (wire v2); the receiving agent
	// must not warm-start it. Quarantine markers carry Window 0.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Snapshot is the versioned wire format exchanged between agents and
// persisted to disk.
type Snapshot struct {
	// Version is the wire-format version; see the package constant.
	Version int `json:"version"`
	// Source identifies the producing agent (hostname, sim node name);
	// informational.
	Source string `json:"source,omitempty"`
	// CreatedUnixNano is the producer's wall-clock time at export. It is
	// used only by the producer itself (load-and-age across a restart);
	// consumers on other machines must rely on the per-entry ages.
	CreatedUnixNano int64 `json:"createdUnixNano"`
	// Entries is the learned table, sorted by prefix.
	Entries []Entry `json:"entries"`
}

// FromAgent exports the agent's learned table as a wire snapshot.
func FromAgent(a *core.Agent, source string, created time.Time) Snapshot {
	exported := a.ExportSnapshot()
	entries := make([]Entry, 0, len(exported))
	for _, se := range exported {
		entries = append(entries, Entry{
			Prefix:      se.Prefix.String(),
			Window:      se.Window,
			Samples:     se.Samples,
			AgeNanos:    int64(se.Age),
			Quarantined: se.Quarantined,
		})
	}
	return Snapshot{
		Version:         Version,
		Source:          source,
		CreatedUnixNano: created.UnixNano(),
		Entries:         entries,
	}
}

// CoreEntries converts the snapshot to the form core.Agent.MergeSnapshot
// consumes. Entries whose prefix does not parse are passed through as
// invalid prefixes, which the merge counts as skipped-stale — one malformed
// entry never poisons the rest of a snapshot.
func (s Snapshot) CoreEntries() []core.SnapshotEntry {
	out := make([]core.SnapshotEntry, 0, len(s.Entries))
	for _, e := range s.Entries {
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			p = netip.Prefix{} // invalid; MergeSnapshot skips it
		}
		out = append(out, core.SnapshotEntry{
			Prefix:      p,
			Window:      e.Window,
			Samples:     e.Samples,
			Age:         time.Duration(e.AgeNanos),
			Quarantined: e.Quarantined,
		})
	}
	return out
}

// AgedBy returns a copy of the snapshot with d added to every entry's age.
// It implements load-and-age: a snapshot written before a restart is aged by
// the downtime, so the merge policy judges its entries by how stale they
// really are, not how stale they were at save time. Non-positive d returns
// the snapshot unchanged.
func (s Snapshot) AgedBy(d time.Duration) Snapshot {
	if d <= 0 {
		return s
	}
	entries := make([]Entry, len(s.Entries))
	copy(entries, s.Entries)
	for i := range entries {
		entries[i].AgeNanos += int64(d)
	}
	s.Entries = entries
	return s
}

// Encode serializes the snapshot as JSON.
func Encode(s Snapshot) ([]byte, error) {
	if s.Version != Version {
		return nil, fmt.Errorf("riptide/fleet: encode version %d, want %d", s.Version, Version)
	}
	return json.Marshal(s)
}

// Decode parses a wire snapshot, rejecting unknown versions.
func Decode(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("riptide/fleet: decode snapshot: %w", err)
	}
	if s.Version < minVersion || s.Version > Version {
		return Snapshot{}, fmt.Errorf("riptide/fleet: snapshot version %d, want %d..%d", s.Version, minVersion, Version)
	}
	return s, nil
}
