// Package fleet lets riptide agents share learned initcwnd state: a
// versioned JSON snapshot format, atomic on-disk persistence for restart
// warm-starts, and an HTTP peer-exchange layer (serve your snapshot, pull
// your peers').
//
// Sharing is strictly advisory. A snapshot entry carries a relative age, not
// a timestamp, so it survives machines with different wall clocks and the
// simulator's virtual time; the receiving agent re-validates every entry
// against its own merge policy (core.MergePolicy), and fresh local
// observations always beat remote hints. A peer being down, slow, or
// malformed degrades to local-only operation — the agent's own poll loop
// never waits on fleet machinery.
package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"riptide/internal/core"
	"riptide/internal/gossip"
)

// Version is the current snapshot wire-format version. Version 2 added
// quarantine markers (Entry.Quarantined); version 3 added gossip versioning
// (Snapshot.TableVersion, Snapshot.Instance, Entry.ModVersion) so a full
// snapshot can seed a delta cursor. Decoders accept v1 and v2 snapshots —
// every older field keeps its meaning, absent markers mean the source
// predates the governor, and absent versions mean the source cannot serve
// deltas — and reject anything newer rather than guessing at field
// semantics.
const Version = 3

// minVersion is the oldest wire format Decode still accepts.
const minVersion = 1

// Entry is one learned destination on the wire. It is the same entry the
// gossip digest/delta formats carry, so full snapshots and deltas merge
// through identical code paths.
type Entry = gossip.Entry

// Snapshot is the versioned wire format exchanged between agents and
// persisted to disk.
type Snapshot struct {
	// Version is the wire-format version; see the package constant.
	Version int `json:"version"`
	// Source identifies the producing agent (hostname, sim node name);
	// informational.
	Source string `json:"source,omitempty"`
	// Instance identifies one run of the producing agent (wire v3). A
	// restart picks a new instance, invalidating peers' delta cursors.
	// Empty on persisted snapshots: a table version is meaningless across
	// the producer's own restart.
	Instance string `json:"instance,omitempty"`
	// TableVersion is the producer's monotone table version the snapshot
	// is current through (wire v3); a gossip-aware puller seeds its delta
	// cursor from it so the round after a full pull is already a delta.
	TableVersion uint64 `json:"tableVersion,omitempty"`
	// CreatedUnixNano is the producer's wall-clock time at export. It is
	// used only by the producer itself (load-and-age across a restart);
	// consumers on other machines must rely on the per-entry ages.
	CreatedUnixNano int64 `json:"createdUnixNano"`
	// Entries is the learned table, sorted by prefix.
	Entries []Entry `json:"entries"`
}

// FromAgent exports the agent's learned table as a wire snapshot.
func FromAgent(a *core.Agent, source string, created time.Time) Snapshot {
	exported, version := a.ExportDelta(0)
	return Snapshot{
		Version:         Version,
		Source:          source,
		TableVersion:    version,
		CreatedUnixNano: created.UnixNano(),
		Entries:         gossip.FromCore(exported),
	}
}

// CoreEntries converts the snapshot to the form core.Agent.MergeSnapshot
// consumes. Entries whose prefix does not parse are passed through as
// invalid prefixes, which the merge counts as skipped-stale — one malformed
// entry never poisons the rest of a snapshot.
func (s Snapshot) CoreEntries() []core.SnapshotEntry {
	return gossip.ToCore(s.Entries)
}

// AgedBy returns a copy of the snapshot with d added to every entry's age.
// It implements load-and-age: a snapshot written before a restart is aged by
// the downtime, so the merge policy judges its entries by how stale they
// really are, not how stale they were at save time. Non-positive d returns
// the snapshot unchanged.
func (s Snapshot) AgedBy(d time.Duration) Snapshot {
	if d <= 0 {
		return s
	}
	entries := make([]Entry, len(s.Entries))
	copy(entries, s.Entries)
	for i := range entries {
		entries[i].AgeNanos += int64(d)
	}
	s.Entries = entries
	return s
}

// Encode serializes the snapshot as JSON.
func Encode(s Snapshot) ([]byte, error) {
	if s.Version != Version {
		return nil, fmt.Errorf("riptide/fleet: encode version %d, want %d", s.Version, Version)
	}
	return json.Marshal(s)
}

// Decode parses a wire snapshot, rejecting unknown versions.
func Decode(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("riptide/fleet: decode snapshot: %w", err)
	}
	if s.Version < minVersion || s.Version > Version {
		return Snapshot{}, fmt.Errorf("riptide/fleet: snapshot version %d, want %d..%d", s.Version, minVersion, Version)
	}
	return s, nil
}
