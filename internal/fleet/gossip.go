package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"riptide/internal/core"
	"riptide/internal/gossip"
)

// HTTP endpoints for the gossip sync ladder. The snapshot endpoint
// (peer.go) predates these and stays the universal fallback; digest and
// delta are what let a converged fleet idle at O(1) bytes per peer pair.

// DigestPath is the URL path riptided serves its table digest on.
const DigestPath = "/fleet/digest"

// DeltaPath is the URL path riptided serves versioned deltas and bucket
// resyncs on. Query parameters:
//
//	since=<version>   entries committed after <version> (0 or absent: full)
//	instance=<id>     the instance the cursor belongs to; a mismatch means
//	                  the server restarted since, so it serves a full table
//	buckets=a,b,c     digest bucket indices to fetch in full (post-restart
//	                  resync); mutually exclusive with since
const DeltaPath = "/fleet/delta"

// DigestHandler serves the agent's table digest as JSON on GET.
func DigestHandler(agent *core.Agent, source, instance string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := gossip.EncodeDigest(gossip.TableDigest(agent, source, instance))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		n := writeJSON(w, r, data)
		agent.Metrics().Counter("riptide_gossip_bytes_sent").Add(uint64(n))
	})
}

// DeltaHandler serves versioned deltas, bucket resyncs, and full tables as
// JSON on GET (see DeltaPath for the request forms).
func DeltaHandler(agent *core.Agent, source, instance string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		var d gossip.Delta
		if bs := q.Get("buckets"); bs != "" {
			buckets, err := parseBuckets(bs)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			d = gossip.TableBuckets(agent, source, instance, buckets)
		} else {
			var since uint64
			if s := q.Get("since"); s != "" {
				v, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					http.Error(w, fmt.Sprintf("bad since %q", s), http.StatusBadRequest)
					return
				}
				since = v
			}
			if want := q.Get("instance"); want != "" && want != instance {
				// The cursor belongs to a previous life of this agent;
				// its versions are meaningless now. Serve everything.
				since = 0
			}
			d = gossip.TableDelta(agent, source, instance, since)
		}
		data, err := gossip.EncodeDelta(d)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		n := writeJSON(w, r, data)
		agent.Metrics().Counter("riptide_gossip_bytes_sent").Add(uint64(n))
	})
}

// parseBuckets parses a comma-separated bucket index list, rejecting
// out-of-range indices and unparseable input.
func parseBuckets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad bucket %q", part)
		}
		if b < 0 || b >= gossip.NumBuckets {
			return nil, fmt.Errorf("bucket %d out of range [0,%d)", b, gossip.NumBuckets)
		}
		out = append(out, b)
	}
	return out, nil
}
