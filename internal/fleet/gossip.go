package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"riptide/internal/core"
	"riptide/internal/gossip"
)

// HTTP endpoints for the gossip sync ladder. The snapshot endpoint
// (peer.go) predates these and stays the universal fallback; digest and
// delta are what let a converged fleet idle at O(1) bytes per peer pair.

// DigestPath is the URL path riptided serves its table digest on.
const DigestPath = "/fleet/digest"

// DeltaPath is the URL path riptided serves versioned deltas and bucket
// resyncs on. Query parameters:
//
//	since=<version>   entries committed after <version> (0 or absent: full)
//	instance=<id>     the instance the cursor belongs to; a mismatch means
//	                  the server restarted since, so it serves a full table
//	buckets=a,b,c     digest bucket indices to fetch in full (post-restart
//	                  resync); mutually exclusive with since
const DeltaPath = "/fleet/delta"

// DigestHandler serves the agent's table digest as JSON on GET. It is a
// single-endpoint convenience over Server; embeddings that mount all three
// fleet endpoints should share one NewServer so the response cache is
// shared too.
func DigestHandler(agent *core.Agent, source, instance string) http.Handler {
	return NewServer(agent, source, instance, nil).DigestHandler()
}

// DeltaHandler serves versioned deltas, bucket resyncs, and full tables as
// JSON on GET (see DeltaPath for the request forms). Single-endpoint
// convenience over Server.
func DeltaHandler(agent *core.Agent, source, instance string) http.Handler {
	return NewServer(agent, source, instance, nil).DeltaHandler()
}

// parseBuckets parses a comma-separated bucket index list, rejecting
// out-of-range indices, unparseable input, and oversized lists, and
// deduplicating repeats. Without the cap and dedupe, "0,0,0,..." repeated
// thousands of times would make the server filter (and a malicious digest
// could make a puller request) the same bucket's entries once per mention —
// a response-amplification lever. A valid list never needs more than one
// mention of each of the NumBuckets indices.
func parseBuckets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) > gossip.NumBuckets {
		return nil, fmt.Errorf("bucket list has %d entries, max %d", len(parts), gossip.NumBuckets)
	}
	var seen [gossip.NumBuckets]bool
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad bucket %q", part)
		}
		if b < 0 || b >= gossip.NumBuckets {
			return nil, fmt.Errorf("bucket %d out of range [0,%d)", b, gossip.NumBuckets)
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out, nil
}
