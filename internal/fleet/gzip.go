package fleet

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Wire compression for the fleet endpoints: responses are gzipped when the
// client asks (Accept-Encoding: gzip) and reads are bounded on the
// DECOMPRESSED size, so a peer cannot smuggle a memory bomb past the
// on-the-wire cap inside a tiny compressed body. The puller sets
// Accept-Encoding itself, which also disables net/http's transparent
// decompression — every byte that crosses the limit does so visibly here.

// acceptsGzip reports whether the request advertises gzip support. The two
// fast paths cover nearly every real request — the puller sends exactly
// "gzip", plain clients send nothing — without the split's allocation.
func acceptsGzip(r *http.Request) bool {
	h := r.Header.Get("Accept-Encoding")
	if h == "" {
		return false
	}
	if h == "gzip" {
		return true
	}
	for _, part := range strings.Split(h, ",") {
		enc := strings.TrimSpace(part)
		if enc == "gzip" || strings.HasPrefix(enc, "gzip;") {
			return true
		}
	}
	return false
}

// Gzip scratch pools: fleet endpoints compress every response a peer asks
// gzipped, and a converged fleet asks every interval — allocating a fresh
// 800KB-state gzip.Writer (plus an output buffer) per response is pure
// churn. Writers are Reset between uses; buffers hand their bytes to the
// caller via copy so the pool never aliases live data.
var (
	gzipWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	gzipBufPool    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// gzipBytes compresses body into a freshly allocated slice using pooled
// compression scratch. Used to fill response caches, where the output is
// retained indefinitely and must not alias pooled memory.
func gzipBytes(body []byte) ([]byte, error) {
	buf := gzipBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(buf)
	_, werr := zw.Write(body)
	cerr := zw.Close()
	gzipWriterPool.Put(zw)
	if werr == nil {
		werr = cerr
	}
	out := append([]byte(nil), buf.Bytes()...)
	gzipBufPool.Put(buf)
	if werr != nil {
		return nil, werr
	}
	return out, nil
}

// writeJSON writes data (plus a trailing newline) as application/json,
// gzip-compressed when the client accepts it, and returns the bytes that
// went on the wire. Compression scratch comes from the pools above.
func writeJSON(w http.ResponseWriter, r *http.Request, data []byte) int {
	w.Header().Set("Content-Type", "application/json")
	if acceptsGzip(r) {
		buf := gzipBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		zw := gzipWriterPool.Get().(*gzip.Writer)
		zw.Reset(buf)
		zw.Write(data)
		zw.Write([]byte{'\n'})
		err := zw.Close()
		gzipWriterPool.Put(zw)
		if err == nil {
			w.Header().Set("Content-Encoding", "gzip")
			n, _ := w.Write(buf.Bytes())
			gzipBufPool.Put(buf)
			return n
		}
		gzipBufPool.Put(buf)
	}
	n, _ := w.Write(data)
	m, _ := w.Write([]byte{'\n'})
	return n + m
}

// countingReader counts the raw (wire) bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readBody reads an HTTP response body, transparently decompressing a gzip
// Content-Encoding, enforcing `limit` on the decompressed size, and
// reporting how many bytes actually crossed the wire (the compressed count
// when gzipped).
func readBody(resp *http.Response, limit int64) (data []byte, wireBytes int64, err error) {
	cr := &countingReader{r: io.LimitReader(resp.Body, limit)}
	var r io.Reader = cr
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		zr, zerr := gzip.NewReader(cr)
		if zerr != nil {
			return nil, cr.n, fmt.Errorf("gzip response: %w", zerr)
		}
		defer zr.Close()
		r = zr
	}
	data, err = io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, cr.n, err
	}
	if int64(len(data)) > limit {
		return nil, cr.n, fmt.Errorf("response exceeds %d decompressed bytes", limit)
	}
	return data, cr.n, nil
}
