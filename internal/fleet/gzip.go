package fleet

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Wire compression for the fleet endpoints: responses are gzipped when the
// client asks (Accept-Encoding: gzip) and reads are bounded on the
// DECOMPRESSED size, so a peer cannot smuggle a memory bomb past the
// on-the-wire cap inside a tiny compressed body. The puller sets
// Accept-Encoding itself, which also disables net/http's transparent
// decompression — every byte that crosses the limit does so visibly here.

// acceptsGzip reports whether the request advertises gzip support.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		if enc == "gzip" || strings.HasPrefix(enc, "gzip;") {
			return true
		}
	}
	return false
}

// writeJSON writes data (plus a trailing newline) as application/json,
// gzip-compressed when the client accepts it, and returns the bytes that
// went on the wire.
func writeJSON(w http.ResponseWriter, r *http.Request, data []byte) int {
	body := make([]byte, 0, len(data)+1)
	body = append(body, data...)
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	if acceptsGzip(r) {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(body)
		if err := zw.Close(); err == nil {
			w.Header().Set("Content-Encoding", "gzip")
			n, _ := w.Write(buf.Bytes())
			return n
		}
	}
	n, _ := w.Write(body)
	return n
}

// countingReader counts the raw (wire) bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readBody reads an HTTP response body, transparently decompressing a gzip
// Content-Encoding, enforcing `limit` on the decompressed size, and
// reporting how many bytes actually crossed the wire (the compressed count
// when gzipped).
func readBody(resp *http.Response, limit int64) (data []byte, wireBytes int64, err error) {
	cr := &countingReader{r: io.LimitReader(resp.Body, limit)}
	var r io.Reader = cr
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		zr, zerr := gzip.NewReader(cr)
		if zerr != nil {
			return nil, cr.n, fmt.Errorf("gzip response: %w", zerr)
		}
		defer zr.Close()
		r = zr
	}
	data, err = io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, cr.n, err
	}
	if int64(len(data)) > limit {
		return nil, cr.n, fmt.Errorf("response exceeds %d decompressed bytes", limit)
	}
	return data, cr.n, nil
}
