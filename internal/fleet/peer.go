package fleet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"riptide/internal/core"
	"riptide/internal/gossip"
)

// SnapshotPath is the URL path riptided serves its fleet snapshot on.
const SnapshotPath = "/fleet/snapshot"

// maxSnapshotBytes bounds how much of a peer's response the puller will
// read — decompressed, when the response is gzipped — so a misbehaving peer
// cannot balloon this agent's memory. 10k entries are well under 1 MiB;
// 16 MiB leaves generous headroom.
const maxSnapshotBytes = 16 << 20

// Round modes: how one successful pull round synced, cheapest first.
const (
	// ModeDigest: the digest matched — the peers are converged and the
	// round moved no entries at all.
	ModeDigest = "digest"
	// ModeDelta: entries committed since the last round were fetched.
	ModeDelta = "delta"
	// ModeBuckets: the peer restarted; only divergent digest buckets were
	// fetched.
	ModeBuckets = "buckets"
	// ModeFull: the whole table came over the gossip delta endpoint.
	ModeFull = "full"
	// ModeSnapshot: the whole table came over the legacy snapshot
	// endpoint (gossip disabled, or the peer predates it).
	ModeSnapshot = "snapshot"
)

// Handler serves the agent's current snapshot as JSON on GET, gzipped when
// the client accepts it. now supplies the CreatedUnixNano stamp; nil means
// time.Now. instance stamps the snapshot with this agent run's identity so
// gossip-aware pullers can seed their delta cursors from a full pull; pass
// "" for none (persisted snapshots never carry one).
func Handler(agent *core.Agent, source, instance string, now func() time.Time) http.Handler {
	return NewServer(agent, source, instance, now).SnapshotHandler()
}

// NormalizePeerURL turns a peer spec from the -peers flag into a snapshot
// URL: a bare host:port gets the http scheme and the snapshot path; a URL
// with an explicit path is used as given.
func NormalizePeerURL(peer string) string {
	p := strings.TrimSpace(peer)
	if p == "" {
		return ""
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	// Split off scheme://host and check whether a path was given.
	rest := p[strings.Index(p, "://")+3:]
	if i := strings.IndexByte(rest, '/'); i < 0 {
		p += SnapshotPath
	} else if rest[i:] == "/" {
		p = p[:len(p)-1] + SnapshotPath
	}
	return p
}

// PeerHealth is the observable state of one peer, exposed via /status.
type PeerHealth struct {
	// URL is the peer's snapshot URL.
	URL string `json:"url"`
	// Healthy is true when the most recent pull succeeded.
	Healthy bool `json:"healthy"`
	// Failures counts consecutive failed pulls; reset on success.
	Failures int `json:"failures"`
	// LastError describes the most recent failure, empty when healthy.
	LastError string `json:"lastError,omitempty"`
	// Pulls and Merged count successful pulls and entries merged from this
	// peer over the puller's lifetime.
	Pulls  uint64 `json:"pulls"`
	Merged uint64 `json:"merged"`
	// LastSuccessUnixNano is the wall-clock time of the most recent
	// successful pull; 0 before the first.
	LastSuccessUnixNano int64 `json:"lastSuccessUnixNano,omitempty"`
	// LastBytes is how many bytes the most recent successful round moved
	// on the wire (compressed size when gzipped).
	LastBytes int64 `json:"lastBytes,omitempty"`
	// Mode is how the most recent successful round synced: one of the
	// Mode* constants ("digest", "delta", "buckets", "full", "snapshot").
	Mode string `json:"mode,omitempty"`
	// Per-mode round counts over the puller's lifetime.
	DigestHits    uint64 `json:"digestHits,omitempty"`
	DeltaPulls    uint64 `json:"deltaPulls,omitempty"`
	BucketPulls   uint64 `json:"bucketPulls,omitempty"`
	FullPulls     uint64 `json:"fullPulls,omitempty"`
	SnapshotPulls uint64 `json:"snapshotPulls,omitempty"`
	// NotModified counts digest rounds answered 304 — the cheapest form of
	// DigestHits, where not even the digest body crossed the wire.
	NotModified uint64 `json:"notModified,omitempty"`
}

// peerCursor is the gossip sync position against one peer: which instance
// of the peer it refers to, the table version synced through, and the
// digest of the peer's content as of the last sync.
type peerCursor struct {
	instance string
	version  uint64
	digest   *gossip.Digest
	// etag is the validator from the peer's last digest response, replayed
	// as If-None-Match so a converged peer can answer 304 with no body.
	etag string
}

// peerState is a peer plus its backoff bookkeeping and gossip cursor.
type peerState struct {
	health      PeerHealth
	nextAttempt time.Time // zero means eligible immediately
	// gossipBase is the peer's scheme://host root for the digest/delta
	// endpoints, derived from the snapshot URL; empty when the peer spec
	// used a custom path (legacy-only peer).
	gossipBase string
	cursor     peerCursor
}

// PullerConfig configures a Puller.
type PullerConfig struct {
	// Agent receives merged snapshots; required.
	Agent *core.Agent
	// Peers are the snapshot URLs to pull (pass through NormalizePeerURL).
	Peers []string
	// Interval between pull rounds. 0 means 30 seconds.
	Interval time.Duration
	// MaxBackoff caps the per-peer retry backoff. 0 means 8× Interval.
	MaxBackoff time.Duration
	// Timeout bounds each HTTP request. 0 means 5 seconds.
	Timeout time.Duration
	// Policy is applied to every merge; the zero value uses the agent's
	// TTL-derived defaults.
	Policy core.MergePolicy
	// Client is the HTTP client; nil means a default client (the per-pull
	// timeout still applies via request contexts).
	Client *http.Client
	// Now supplies time for backoff scheduling; nil means time.Now.
	Now func() time.Time
	// Logf, if set, receives pull errors; pulling continues regardless.
	Logf func(format string, args ...any)
	// Gossip enables the digest→delta→full sync ladder against peers
	// whose spec uses the standard snapshot path. Peers that cannot answer
	// the gossip endpoints (pre-gossip builds, custom-path specs) are
	// pulled as legacy full snapshots either way.
	Gossip bool
	// Jitter is the fraction of each retry backoff randomly subtracted so
	// a healed partition does not synchronize the whole fleet's retries
	// onto one instant. 0 means the default 0.2 (a 40s backoff retries
	// after 32–40s); negative disables jitter. Jitter only ever shortens
	// a backoff, never extends it.
	Jitter float64
	// randFloat supplies jitter randomness in [0,1); nil means math/rand.
	// A test seam.
	randFloat func() float64
}

// Puller periodically fetches snapshots from fleet peers and merges them
// into the local agent. Each peer fails independently: a down peer backs
// off exponentially (up to MaxBackoff) while the others keep being pulled,
// and the agent's own tick loop is never involved — peer trouble degrades
// to local-only learning, not to stalls.
type Puller struct {
	cfg PullerConfig

	mu    sync.Mutex
	peers []*peerState
}

// NewPuller validates the config and returns a Puller.
func NewPuller(cfg PullerConfig) (*Puller, error) {
	if cfg.Agent == nil {
		return nil, fmt.Errorf("riptide/fleet: PullerConfig.Agent is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("riptide/fleet: Interval %v must be positive", cfg.Interval)
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 8 * cfg.Interval
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.2
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 1 {
		return nil, fmt.Errorf("riptide/fleet: Jitter %v must be at most 1", cfg.Jitter)
	}
	if cfg.randFloat == nil {
		cfg.randFloat = rand.Float64
	}
	p := &Puller{cfg: cfg}
	for _, raw := range cfg.Peers {
		u := NormalizePeerURL(raw)
		if u == "" {
			continue
		}
		p.peers = append(p.peers, &peerState{
			health:     PeerHealth{URL: u},
			gossipBase: strings.TrimSuffix(u, SnapshotPath),
		})
	}
	for _, ps := range p.peers {
		if ps.gossipBase == ps.health.URL {
			// The spec carried a custom path: there is nowhere sensible
			// to derive the gossip endpoints from.
			ps.gossipBase = ""
		}
	}
	return p, nil
}

// Health returns a snapshot of every peer's state, sorted by URL.
func (p *Puller) Health() []PeerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerHealth, 0, len(p.peers))
	for _, ps := range p.peers {
		out = append(out, ps.health)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Run pulls every Interval until ctx is canceled.
func (p *Puller) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.PullOnce(ctx)
		}
	}
}

// PullOnce attempts one pull round: every peer whose backoff has lapsed is
// fetched and merged. It returns the number of entries merged this round.
func (p *Puller) PullOnce(ctx context.Context) int {
	now := p.cfg.Now()

	p.mu.Lock()
	due := make([]*peerState, 0, len(p.peers))
	for _, ps := range p.peers {
		if !ps.nextAttempt.After(now) {
			due = append(due, ps)
		}
	}
	p.mu.Unlock()

	merged := 0
	for _, ps := range due {
		if ctx.Err() != nil {
			return merged
		}
		stats, round, cursor, err := p.pullPeer(ctx, ps)
		p.mu.Lock()
		if err != nil {
			ps.health.Healthy = false
			ps.health.Failures++
			ps.health.LastError = err.Error()
			ps.nextAttempt = p.cfg.Now().Add(p.jittered(p.backoff(ps.health.Failures)))
			p.mu.Unlock()
			p.cfg.Agent.Metrics().Counter("riptide_peer_pull_errors").Inc()
			if p.cfg.Logf != nil {
				p.cfg.Logf("fleet: pull %s: %v", ps.health.URL, err)
			}
			continue
		}
		ps.health.Healthy = true
		ps.health.Failures = 0
		ps.health.LastError = ""
		ps.health.Pulls++
		ps.health.Merged += uint64(stats.Merged)
		ps.health.LastSuccessUnixNano = p.cfg.Now().UnixNano()
		ps.health.LastBytes = round.bytes
		ps.health.Mode = round.mode
		switch round.mode {
		case ModeDigest:
			ps.health.DigestHits++
		case ModeDelta:
			ps.health.DeltaPulls++
		case ModeBuckets:
			ps.health.BucketPulls++
		case ModeFull:
			ps.health.FullPulls++
		case ModeSnapshot:
			ps.health.SnapshotPulls++
		}
		if round.notModified {
			ps.health.NotModified++
		}
		ps.cursor = cursor
		ps.nextAttempt = time.Time{}
		p.mu.Unlock()
		m := p.cfg.Agent.Metrics()
		m.Counter("riptide_peer_pulls").Inc()
		m.Counter("riptide_gossip_bytes_received").Add(uint64(round.bytes))
		m.Counter("riptide_gossip_rounds_" + round.mode).Inc()
		if round.notModified {
			m.Counter("riptide_gossip_not_modified").Inc()
		}
		merged += stats.Merged
	}
	return merged
}

// backoff returns the wait after `failures` consecutive failures: the pull
// interval doubled per extra failure, capped at MaxBackoff.
func (p *Puller) backoff(failures int) time.Duration {
	d := p.cfg.Interval
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			return p.cfg.MaxBackoff
		}
	}
	if d > p.cfg.MaxBackoff {
		d = p.cfg.MaxBackoff
	}
	return d
}

// jittered subtracts a random slice of up to Jitter×d from a backoff, so
// peers that failed in unison (a partition) do not all retry in unison
// (a stampede onto the healed peer). Subtractive jitter never extends the
// backoff, so retry-latency expectations are upper-bounded by backoff().
func (p *Puller) jittered(d time.Duration) time.Duration {
	if p.cfg.Jitter <= 0 || d <= 0 {
		return d
	}
	return d - time.Duration(p.cfg.randFloat()*p.cfg.Jitter*float64(d))
}

// roundResult describes one successful pull round for health/metrics.
type roundResult struct {
	mode  string
	bytes int64
	// notModified marks a digest round that was answered 304 — converged,
	// with only headers on the wire.
	notModified bool
}

// pullPeer syncs from one peer, walking the gossip ladder when enabled and
// falling back to the legacy full snapshot whenever a gossip rung cannot be
// climbed (the peer predates gossip, restarted mid-round, or returned
// something unusable). The returned cursor is the caller's to store on
// success; pullPeer itself never mutates ps.
func (p *Puller) pullPeer(ctx context.Context, ps *peerState) (core.MergeStats, roundResult, peerCursor, error) {
	p.mu.Lock()
	base := ps.gossipBase
	cursor := ps.cursor
	snapURL := ps.health.URL
	p.mu.Unlock()

	var round roundResult
	if p.cfg.Gossip && base != "" {
		stats, gossipRound, next, err := p.pullGossip(ctx, base, cursor)
		round.bytes += gossipRound.bytes
		if err == nil {
			round.mode = gossipRound.mode
			round.notModified = gossipRound.notModified
			return stats, round, next, nil
		}
		if ctx.Err() != nil {
			return core.MergeStats{}, round, cursor, err
		}
		// The gossip rungs are an optimization; the snapshot endpoint is
		// the protocol floor. Any gossip failure falls through to it
		// within the same round (counting the bytes already spent).
		if p.cfg.Logf != nil {
			p.cfg.Logf("fleet: gossip %s: %v (falling back to full snapshot)", base, err)
		}
	}

	data, n, err := p.fetch(ctx, snapURL)
	round.bytes += n
	if err != nil {
		return core.MergeStats{}, round, cursor, err
	}
	snap, err := Decode(data)
	if err != nil {
		return core.MergeStats{}, round, cursor, err
	}
	stats := p.merge(snap.CoreEntries(), snapURL)
	round.mode = ModeSnapshot
	next := peerCursor{}
	if snap.Instance != "" {
		// A v3 snapshot seeds the gossip cursor: the next round can open
		// with a digest compare and a delta instead of another full pull.
		digest := gossip.Compute(snap.Entries, snap.Source, snap.Instance, snap.TableVersion)
		next = peerCursor{instance: snap.Instance, version: snap.TableVersion, digest: &digest}
	}
	return stats, round, next, nil
}

// pullGossip walks the ladder: digest first, then whichever of
// delta/buckets/full the digest says is needed.
func (p *Puller) pullGossip(ctx context.Context, base string, cursor peerCursor) (core.MergeStats, roundResult, peerCursor, error) {
	var round roundResult
	data, n, respETag, notModified, err := p.fetchCond(ctx, base+DigestPath, cursor.etag)
	round.bytes += n
	if err != nil {
		return core.MergeStats{}, round, cursor, err
	}
	if notModified {
		// The validator matched: the peer's content is exactly what the
		// cursor already describes, and only headers crossed the wire. The
		// cursor stands as-is.
		round.mode = ModeDigest
		round.notModified = true
		return core.MergeStats{}, round, cursor, nil
	}
	d, err := gossip.DecodeDigest(data)
	if err != nil {
		return core.MergeStats{}, round, cursor, err
	}

	if cursor.digest != nil && gossip.ContentEqual(d, *cursor.digest) {
		// Converged: the round cost one digest, no entries moved. The
		// cursor fast-forwards even across an instance change — identical
		// content needs nothing fetched, whatever the counter says.
		round.mode = ModeDigest
		return core.MergeStats{}, round, peerCursor{instance: d.Instance, version: d.TableVersion, digest: &d, etag: respETag}, nil
	}

	deltaURL := base + DeltaPath
	mode := ModeFull
	switch {
	case d.Instance != "" && d.Instance == cursor.instance && cursor.version > 0:
		// Same instance, known position: ask only for what changed.
		deltaURL += "?since=" + strconv.FormatUint(cursor.version, 10) +
			"&instance=" + url.QueryEscape(cursor.instance)
		mode = ModeDelta
	case cursor.digest != nil:
		// The peer restarted (or first contact carried a digest from a
		// persisted snapshot): fetch only the buckets that diverge from
		// what we remember of its content.
		diff := gossip.DiffBuckets(*cursor.digest, d)
		deltaURL += "?buckets=" + bucketList(diff)
		mode = ModeBuckets
	}
	data, n, err = p.fetch(ctx, deltaURL)
	round.bytes += n
	if err != nil {
		return core.MergeStats{}, round, cursor, err
	}
	delta, err := gossip.DecodeDelta(data)
	if err != nil {
		return core.MergeStats{}, round, cursor, err
	}
	if delta.Full {
		// The peer judged our cursor unusable (instance mismatch raced
		// between the two requests, version compacted, ...).
		mode = ModeFull
	}
	stats := p.merge(gossip.ToCore(delta.Entries), deltaURL)
	round.mode = mode

	// The ETag travels with the digest it validated: if the table moved
	// between the digest and delta fetches it is already stale, and the
	// mismatch next round just costs one digest body — never correctness.
	next := peerCursor{instance: delta.Instance, version: delta.TableVersion, etag: respETag}
	if mode == ModeFull {
		// A full table is complete knowledge: recompute the digest from
		// it rather than trusting the pre-transfer digest (the table may
		// have moved between the two requests; being conservative here
		// only costs a delta next round, never correctness).
		digest := gossip.Compute(delta.Entries, delta.Source, delta.Instance, delta.TableVersion)
		next.digest = &digest
	} else {
		// Deltas and bucket fetches do not reveal the whole table; the
		// served digest is the best content summary available.
		next.digest = &d
	}
	return stats, round, next, nil
}

// merge folds received entries into the agent, logging (not failing) route
// programming errors: they are the agent's problem, not the peer's — the
// pull itself succeeded.
func (p *Puller) merge(entries []core.SnapshotEntry, from string) core.MergeStats {
	stats, err := p.cfg.Agent.MergeSnapshot(entries, p.cfg.Policy)
	if err != nil && p.cfg.Logf != nil {
		p.cfg.Logf("fleet: merge from %s: %v", from, err)
	}
	return stats
}

// fetch GETs a fleet endpoint, advertising gzip and enforcing the
// decompressed-size cap, and reports the payload plus wire bytes moved.
func (p *Puller) fetch(ctx context.Context, url string) ([]byte, int64, error) {
	data, n, _, _, err := p.fetchCond(ctx, url, "")
	return data, n, err
}

// fetchCond is fetch plus conditional-request support: a non-empty etag is
// sent as If-None-Match, and a 304 answer comes back as notModified=true
// with no payload. The response's own ETag (when present) is returned so
// the caller can arm the next round's validator.
func (p *Puller) fetchCond(ctx context.Context, url, etag string) (data []byte, wireBytes int64, respETag string, notModified bool, err error) {
	reqCtx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, "", false, err
	}
	// Setting the header explicitly (rather than letting net/http add it)
	// disables the transport's transparent decompression, so the
	// decompressed-size cap in readBody sees every byte.
	req.Header.Set("Accept-Encoding", "gzip")
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, "", false, err
	}
	defer resp.Body.Close()
	respETag = resp.Header.Get("ETag")
	if etag != "" && resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, respETag, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, "", false, fmt.Errorf("status %s", resp.Status)
	}
	data, wireBytes, err = readBody(resp, maxSnapshotBytes)
	return data, wireBytes, respETag, false, err
}

// bucketList renders bucket indices as the comma-separated form the delta
// endpoint parses.
func bucketList(buckets []int) string {
	var b strings.Builder
	for i, idx := range buckets {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}
