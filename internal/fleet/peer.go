package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"riptide/internal/core"
)

// SnapshotPath is the URL path riptided serves its fleet snapshot on.
const SnapshotPath = "/fleet/snapshot"

// maxSnapshotBytes bounds how much of a peer's response the puller will
// read: a misbehaving peer cannot balloon this agent's memory. 10k entries
// are well under 1 MiB; 16 MiB leaves generous headroom.
const maxSnapshotBytes = 16 << 20

// Handler serves the agent's current snapshot as JSON on GET. now supplies
// the CreatedUnixNano stamp; nil means time.Now.
func Handler(agent *core.Agent, source string, now func() time.Time) http.Handler {
	if now == nil {
		now = time.Now
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := Encode(FromAgent(agent, source, now()))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
}

// NormalizePeerURL turns a peer spec from the -peers flag into a snapshot
// URL: a bare host:port gets the http scheme and the snapshot path; a URL
// with an explicit path is used as given.
func NormalizePeerURL(peer string) string {
	p := strings.TrimSpace(peer)
	if p == "" {
		return ""
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	// Split off scheme://host and check whether a path was given.
	rest := p[strings.Index(p, "://")+3:]
	if i := strings.IndexByte(rest, '/'); i < 0 {
		p += SnapshotPath
	} else if rest[i:] == "/" {
		p = p[:len(p)-1] + SnapshotPath
	}
	return p
}

// PeerHealth is the observable state of one peer, exposed via /status.
type PeerHealth struct {
	// URL is the peer's snapshot URL.
	URL string `json:"url"`
	// Healthy is true when the most recent pull succeeded.
	Healthy bool `json:"healthy"`
	// Failures counts consecutive failed pulls; reset on success.
	Failures int `json:"failures"`
	// LastError describes the most recent failure, empty when healthy.
	LastError string `json:"lastError,omitempty"`
	// Pulls and Merged count successful pulls and entries merged from this
	// peer over the puller's lifetime.
	Pulls  uint64 `json:"pulls"`
	Merged uint64 `json:"merged"`
}

// peerState is a peer plus its backoff bookkeeping.
type peerState struct {
	health      PeerHealth
	nextAttempt time.Time // zero means eligible immediately
}

// PullerConfig configures a Puller.
type PullerConfig struct {
	// Agent receives merged snapshots; required.
	Agent *core.Agent
	// Peers are the snapshot URLs to pull (pass through NormalizePeerURL).
	Peers []string
	// Interval between pull rounds. 0 means 30 seconds.
	Interval time.Duration
	// MaxBackoff caps the per-peer retry backoff. 0 means 8× Interval.
	MaxBackoff time.Duration
	// Timeout bounds each HTTP request. 0 means 5 seconds.
	Timeout time.Duration
	// Policy is applied to every merge; the zero value uses the agent's
	// TTL-derived defaults.
	Policy core.MergePolicy
	// Client is the HTTP client; nil means a default client (the per-pull
	// timeout still applies via request contexts).
	Client *http.Client
	// Now supplies time for backoff scheduling; nil means time.Now.
	Now func() time.Time
	// Logf, if set, receives pull errors; pulling continues regardless.
	Logf func(format string, args ...any)
}

// Puller periodically fetches snapshots from fleet peers and merges them
// into the local agent. Each peer fails independently: a down peer backs
// off exponentially (up to MaxBackoff) while the others keep being pulled,
// and the agent's own tick loop is never involved — peer trouble degrades
// to local-only learning, not to stalls.
type Puller struct {
	cfg PullerConfig

	mu    sync.Mutex
	peers []*peerState
}

// NewPuller validates the config and returns a Puller.
func NewPuller(cfg PullerConfig) (*Puller, error) {
	if cfg.Agent == nil {
		return nil, fmt.Errorf("riptide/fleet: PullerConfig.Agent is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("riptide/fleet: Interval %v must be positive", cfg.Interval)
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 8 * cfg.Interval
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Puller{cfg: cfg}
	for _, raw := range cfg.Peers {
		u := NormalizePeerURL(raw)
		if u == "" {
			continue
		}
		p.peers = append(p.peers, &peerState{health: PeerHealth{URL: u}})
	}
	return p, nil
}

// Health returns a snapshot of every peer's state, sorted by URL.
func (p *Puller) Health() []PeerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerHealth, 0, len(p.peers))
	for _, ps := range p.peers {
		out = append(out, ps.health)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Run pulls every Interval until ctx is canceled.
func (p *Puller) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.PullOnce(ctx)
		}
	}
}

// PullOnce attempts one pull round: every peer whose backoff has lapsed is
// fetched and merged. It returns the number of entries merged this round.
func (p *Puller) PullOnce(ctx context.Context) int {
	now := p.cfg.Now()

	p.mu.Lock()
	due := make([]*peerState, 0, len(p.peers))
	for _, ps := range p.peers {
		if !ps.nextAttempt.After(now) {
			due = append(due, ps)
		}
	}
	p.mu.Unlock()

	merged := 0
	for _, ps := range due {
		if ctx.Err() != nil {
			return merged
		}
		stats, err := p.pullPeer(ctx, ps.health.URL)
		p.mu.Lock()
		if err != nil {
			ps.health.Healthy = false
			ps.health.Failures++
			ps.health.LastError = err.Error()
			ps.nextAttempt = p.cfg.Now().Add(p.backoff(ps.health.Failures))
			p.mu.Unlock()
			p.cfg.Agent.Metrics().Counter("riptide_peer_pull_errors").Inc()
			if p.cfg.Logf != nil {
				p.cfg.Logf("fleet: pull %s: %v", ps.health.URL, err)
			}
			continue
		}
		ps.health.Healthy = true
		ps.health.Failures = 0
		ps.health.LastError = ""
		ps.health.Pulls++
		ps.health.Merged += uint64(stats.Merged)
		ps.nextAttempt = time.Time{}
		p.mu.Unlock()
		p.cfg.Agent.Metrics().Counter("riptide_peer_pulls").Inc()
		merged += stats.Merged
	}
	return merged
}

// backoff returns the wait after `failures` consecutive failures: the pull
// interval doubled per extra failure, capped at MaxBackoff.
func (p *Puller) backoff(failures int) time.Duration {
	d := p.cfg.Interval
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			return p.cfg.MaxBackoff
		}
	}
	if d > p.cfg.MaxBackoff {
		d = p.cfg.MaxBackoff
	}
	return d
}

// pullPeer fetches one peer's snapshot and merges it into the agent.
func (p *Puller) pullPeer(ctx context.Context, url string) (core.MergeStats, error) {
	reqCtx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return core.MergeStats{}, err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return core.MergeStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return core.MergeStats{}, fmt.Errorf("status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return core.MergeStats{}, err
	}
	snap, err := Decode(data)
	if err != nil {
		return core.MergeStats{}, err
	}
	stats, err := p.cfg.Agent.MergeSnapshot(snap.CoreEntries(), p.cfg.Policy)
	if err != nil {
		// Route-programming failures are the agent's problem, not the
		// peer's; the pull itself succeeded. Surface via log only.
		if p.cfg.Logf != nil {
			p.cfg.Logf("fleet: merge from %s: %v", url, err)
		}
	}
	return stats, nil
}
