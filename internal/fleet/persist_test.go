package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	path := filepath.Join(t.TempDir(), "snapshot.json")
	created := time.Unix(1700000000, 0)

	if err := Save(path, FromAgent(a, "host-a", created)); err != nil {
		t.Fatalf("Save: %v", err)
	}

	loaded, elapsed, err := Load(path, created.Add(42*time.Second))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if elapsed != 42*time.Second {
		t.Fatalf("elapsed = %v, want 42s", elapsed)
	}
	if len(loaded.Entries) != 1 || loaded.Entries[0].Prefix != "192.0.2.1/32" || loaded.Entries[0].Window != 40 {
		t.Fatalf("loaded = %+v", loaded)
	}

	// No temp files left behind.
	dir, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, de := range dir {
		if strings.Contains(de.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", de.Name())
		}
	}
}

func TestLoadClampsBackwardsClock(t *testing.T) {
	a, _, _ := newTestAgent(t, nil)
	path := filepath.Join(t.TempDir(), "snapshot.json")
	created := time.Unix(1700000000, 0)
	if err := Save(path, FromAgent(a, "", created)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	_, elapsed, err := Load(path, created.Add(-time.Hour))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if elapsed != 0 {
		t.Fatalf("elapsed = %v, want 0 for a backwards clock", elapsed)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "nope.json"), time.Now())
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	if err := os.WriteFile(path, []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path, time.Now()); err == nil {
		t.Fatal("Load accepted corrupt file")
	}
}

func TestSaveReplacesAtomically(t *testing.T) {
	a1, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	a2, _, _ := newTestAgent(t, []core.Observation{obs(t, "198.51.100.7", 80)})
	path := filepath.Join(t.TempDir(), "snapshot.json")

	if err := Save(path, FromAgent(a1, "", time.Unix(1, 0))); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	if err := Save(path, FromAgent(a2, "", time.Unix(2, 0))); err != nil {
		t.Fatalf("Save 2: %v", err)
	}
	loaded, _, err := Load(path, time.Unix(3, 0))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded.Entries) != 1 || loaded.Entries[0].Prefix != "198.51.100.7/32" {
		t.Fatalf("loaded = %+v, want only the second agent's entry", loaded)
	}
}

func TestPersisterFinalSaveOnCancel(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	path := filepath.Join(t.TempDir(), "snapshot.json")
	p := &Persister{
		Path:     path,
		Source:   "host-a",
		Agent:    a,
		Interval: time.Hour, // only the final save can fire
		Now:      func() time.Time { return time.Unix(1700000000, 0) },
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Run(ctx)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Persister.Run did not return after cancel")
	}

	loaded, _, err := Load(path, time.Unix(1700000001, 0))
	if err != nil {
		t.Fatalf("Load after final save: %v", err)
	}
	if len(loaded.Entries) != 1 || loaded.Source != "host-a" {
		t.Fatalf("final snapshot = %+v", loaded)
	}
}

func TestPersisterSaveNow(t *testing.T) {
	a, _, _ := newTestAgent(t, []core.Observation{obs(t, "192.0.2.1", 40)})
	path := filepath.Join(t.TempDir(), "snapshot.json")
	p := &Persister{Path: path, Agent: a}
	if err := p.SaveNow(); err != nil {
		t.Fatalf("SaveNow: %v", err)
	}
	if _, _, err := Load(path, time.Now()); err != nil {
		t.Fatalf("Load: %v", err)
	}
}
