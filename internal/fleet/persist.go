package fleet

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"riptide/internal/core"
)

// ErrNoSnapshot is returned by Load when the snapshot file does not exist —
// the normal first-boot case, distinct from a corrupt or unreadable file.
var ErrNoSnapshot = errors.New("riptide/fleet: no snapshot file")

// Save writes the snapshot to path atomically: the bytes land in a temporary
// file in the same directory, are synced, and replace path with a rename. A
// crash mid-write leaves the previous snapshot intact; readers never observe
// a partial file.
func Save(path string, s Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("riptide/fleet: create temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("riptide/fleet: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("riptide/fleet: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("riptide/fleet: close snapshot: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("riptide/fleet: chmod snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("riptide/fleet: rename snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot from path and returns it along with the wall-clock
// time elapsed since it was written (clamped to zero if the clock went
// backwards). Callers age the snapshot by the elapsed time before merging,
// so entries saved before a long downtime are judged appropriately stale.
// A missing file returns ErrNoSnapshot.
func Load(path string, now time.Time) (Snapshot, time.Duration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Snapshot{}, 0, ErrNoSnapshot
		}
		return Snapshot{}, 0, fmt.Errorf("riptide/fleet: read snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return Snapshot{}, 0, err
	}
	elapsed := now.Sub(time.Unix(0, s.CreatedUnixNano))
	if elapsed < 0 {
		elapsed = 0
	}
	return s, elapsed, nil
}

// Persister periodically saves an agent's snapshot to disk.
type Persister struct {
	// Path is the snapshot file; required.
	Path string
	// Source labels the snapshots (typically the hostname).
	Source string
	// Agent is the agent to snapshot; required.
	Agent *core.Agent
	// Interval between periodic saves. 0 means one minute.
	Interval time.Duration
	// Now supplies wall-clock time; nil means time.Now.
	Now func() time.Time
	// Logf, if set, receives save errors (periodic saves keep going).
	Logf func(format string, args ...any)
}

func (p *Persister) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

func (p *Persister) interval() time.Duration {
	if p.Interval > 0 {
		return p.Interval
	}
	return time.Minute
}

// SaveNow writes one snapshot immediately.
func (p *Persister) SaveNow() error {
	return Save(p.Path, FromAgent(p.Agent, p.Source, p.now()))
}

// Run saves periodically until ctx is canceled, then writes one final
// snapshot so shutdown state survives the restart. Call it before closing
// the agent — Close wipes the learned table.
func (p *Persister) Run(ctx context.Context) {
	t := time.NewTicker(p.interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			if err := p.SaveNow(); err != nil && p.Logf != nil {
				p.Logf("fleet: final snapshot save: %v", err)
			}
			return
		case <-t.C:
			if err := p.SaveNow(); err != nil && p.Logf != nil {
				p.Logf("fleet: snapshot save: %v", err)
			}
		}
	}
}
