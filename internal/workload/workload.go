// Package workload generates the synthetic traffic that stands in for the
// paper's production CDN workload: object-size distributions (Figure 2),
// request arrival processes, and deterministic random-number streams.
//
// The paper reports that 54% of files in the production CDN exceed the 15 KB
// that fit in Linux's default initial window of 10 segments, and that the
// benefit of larger initial windows is concentrated between 15 KB and 1 MB
// (Figure 4). CDNFileSizes is calibrated to those published statistics.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Sampler draws values from some distribution using the provided source of
// randomness. Implementations must not retain rng.
type Sampler interface {
	Sample(rng *rand.Rand) float64
}

// NewRand returns a deterministic *rand.Rand for the given seed. Every
// experiment takes explicit seeds so runs reproduce bit-for-bit.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Constant always returns the same value.
type Constant float64

// Sample implements Sampler.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Sampler.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// LogNormal draws from a log-normal distribution: exp(N(Mu, Sigma^2)).
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Sampler.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Quantile returns the value at probability p in (0,1) using the normal
// quantile of the underlying Gaussian. Used by tests to validate calibration.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*normQuantile(p))
}

// Pareto draws from a Pareto distribution with scale Xm > 0 and shape
// Alpha > 0 (heavy tail for small Alpha).
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Sampler.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Exponential draws from an exponential distribution with the given Mean.
type Exponential struct {
	Mean float64
}

// Sample implements Sampler.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.Mean
}

// Truncated clamps another sampler's output to [Lo, Hi].
type Truncated struct {
	Inner  Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (t Truncated) Sample(rng *rand.Rand) float64 {
	v := t.Inner.Sample(rng)
	if v < t.Lo {
		return t.Lo
	}
	if v > t.Hi {
		return t.Hi
	}
	return v
}

// Component is one weighted member of a Mixture.
type Component struct {
	Weight  float64
	Sampler Sampler
}

// Mixture draws from one of several component distributions chosen with
// probability proportional to its weight.
type Mixture struct {
	components []Component
	total      float64
}

// NewMixture builds a mixture from components with positive weights.
func NewMixture(components ...Component) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("workload: mixture needs at least one component")
	}
	total := 0.0
	for i, c := range components {
		if c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			return nil, fmt.Errorf("workload: component %d weight %v must be positive and finite", i, c.Weight)
		}
		if c.Sampler == nil {
			return nil, fmt.Errorf("workload: component %d has nil sampler", i)
		}
		total += c.Weight
	}
	cs := make([]Component, len(components))
	copy(cs, components)
	return &Mixture{components: cs, total: total}, nil
}

// Sample implements Sampler.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	target := rng.Float64() * m.total
	acc := 0.0
	for _, c := range m.components {
		acc += c.Weight
		if target < acc {
			return c.Sampler.Sample(rng)
		}
	}
	return m.components[len(m.components)-1].Sampler.Sample(rng)
}

// Empirical resamples from a fixed set of observations (inverse-CDF with
// interpolation), letting experiments replay a measured distribution.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from a copy of samples.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("workload: empirical distribution needs samples")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &Empirical{sorted: s}, nil
}

// Sample implements Sampler: draws a uniform quantile and interpolates.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	if len(e.sorted) == 1 {
		return e.sorted[0]
	}
	rank := rng.Float64() * float64(len(e.sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo >= len(e.sorted)-1 {
		return e.sorted[len(e.sorted)-1]
	}
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// DefaultMSS is the maximum segment size assumed throughout the repo,
// matching the paper's 1500-byte packets (20 B IP + 32 B TCP w/ options).
const DefaultMSS = 1448

// DefaultIWBytes is the number of payload bytes that fit in Linux's default
// initial window of 10 segments, the paper's "15KB" threshold.
const DefaultIWBytes = 10 * DefaultMSS

// CDNFileSizes returns the object-size distribution standing in for the
// paper's Figure 2. It is a truncated log-normal calibrated so that ~54% of
// objects exceed DefaultIWBytes (the 10-segment initial window), with mass
// concentrated in the 15 KB–1 MB band where the paper finds the gains, plus
// a heavy Pareto tail of large objects (video segments, software downloads)
// so that "very large files" exist but "do not dominate the distribution".
func CDNFileSizes() Sampler {
	// Calibration: P(LogNormal > 14480 B) = 0.56 before mixing; the 8%
	// small-object component dilutes that to ~0.54 overall, discussed in
	// TestCDNFileSizesMatchesPaperStatistic.
	body := LogNormal{Mu: math.Log(float64(DefaultIWBytes)) + 0.151*1.9, Sigma: 1.9}
	tail := Pareto{Xm: 1 << 20, Alpha: 1.3} // >= 1 MB, heavy tail
	tiny := Uniform{Lo: 200, Hi: 2000}      // beacons, redirects, tiny APIs
	m, err := NewMixture(
		Component{Weight: 0.87, Sampler: body},
		Component{Weight: 0.05, Sampler: tail},
		Component{Weight: 0.08, Sampler: tiny},
	)
	if err != nil {
		// Static weights: failure is a programming error, not runtime input.
		panic(err)
	}
	return Truncated{Inner: m, Lo: 100, Hi: 256 << 20}
}

// ProbeSizes are the diagnostic probe payloads used by the paper's
// measurement infrastructure (Section IV-A), in bytes.
var ProbeSizes = []int{10 * 1024, 50 * 1024, 100 * 1024}

// normQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9). p must be in (0, 1).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := [5]float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := [6]float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := [4]float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// LoadSizesCSV reads an object-size distribution from CSV or
// newline-separated text: one positive size in bytes per line (a header
// line and blank lines are skipped). The result resamples the empirical
// distribution, letting experiments replay real traffic instead of the
// synthetic Figure 2 mix.
func LoadSizesCSV(r io.Reader) (Sampler, error) {
	scanner := bufio.NewScanner(r)
	var sizes []float64
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		// Take the first comma-separated field so both bare lists and
		// single-column CSVs work.
		if idx := strings.IndexByte(text, ','); idx >= 0 {
			text = text[:idx]
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("workload: line %d: size %v must be positive and finite", line, v)
		}
		sizes = append(sizes, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: read sizes: %w", err)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("workload: no sizes in input")
	}
	return NewEmpirical(sizes)
}
