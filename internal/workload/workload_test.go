package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"riptide/internal/stats"
)

func TestConstant(t *testing.T) {
	rng := NewRand(1)
	c := Constant(42)
	for i := 0; i < 10; i++ {
		if got := c.Sample(rng); got != 42 {
			t.Fatalf("Constant.Sample = %v, want 42", got)
		}
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRand(2)
	u := Uniform{Lo: 5, Hi: 10}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform sample %v outside [5,10)", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := NewRand(3)
	l := LogNormal{Mu: math.Log(100), Sigma: 0.5}
	c := stats.NewCDF(20000)
	for i := 0; i < 20000; i++ {
		c.Add(l.Sample(rng))
	}
	med, err := c.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med < 90 || med > 110 {
		t.Errorf("LogNormal median = %v, want ~100", med)
	}
}

func TestLogNormalQuantile(t *testing.T) {
	l := LogNormal{Mu: 0, Sigma: 1}
	if got := l.Quantile(0.5); math.Abs(got-1) > 1e-6 {
		t.Errorf("Quantile(0.5) = %v, want 1", got)
	}
	// 84.13th percentile of standard lognormal is e^1.
	if got := l.Quantile(0.8413); math.Abs(got-math.E) > 0.01 {
		t.Errorf("Quantile(0.8413) = %v, want e", got)
	}
	if !math.IsNaN(l.Quantile(0)) || !math.IsNaN(l.Quantile(1)) {
		t.Error("Quantile at 0/1 should be NaN")
	}
}

func TestParetoLowerBound(t *testing.T) {
	rng := NewRand(4)
	p := Pareto{Xm: 1000, Alpha: 1.5}
	for i := 0; i < 1000; i++ {
		if v := p.Sample(rng); v < 1000 {
			t.Fatalf("Pareto sample %v below Xm", v)
		}
	}
}

func TestParetoTailHeaviness(t *testing.T) {
	rng := NewRand(5)
	p := Pareto{Xm: 1, Alpha: 1.2}
	n, over := 50000, 0
	for i := 0; i < n; i++ {
		if p.Sample(rng) > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.2 ~= 0.063.
	frac := float64(over) / float64(n)
	if frac < 0.05 || frac > 0.08 {
		t.Errorf("Pareto tail fraction = %v, want ~0.063", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(6)
	e := Exponential{Mean: 250}
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	mean := sum / n
	if mean < 240 || mean > 260 {
		t.Errorf("Exponential mean = %v, want ~250", mean)
	}
}

func TestTruncated(t *testing.T) {
	rng := NewRand(7)
	tr := Truncated{Inner: Uniform{Lo: -100, Hi: 100}, Lo: 0, Hi: 10}
	for i := 0; i < 1000; i++ {
		v := tr.Sample(rng)
		if v < 0 || v > 10 {
			t.Fatalf("Truncated sample %v outside [0,10]", v)
		}
	}
}

func TestNewMixtureValidation(t *testing.T) {
	if _, err := NewMixture(); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture(Component{Weight: 0, Sampler: Constant(1)}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewMixture(Component{Weight: -1, Sampler: Constant(1)}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewMixture(Component{Weight: 1, Sampler: nil}); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := NewMixture(Component{Weight: math.Inf(1), Sampler: Constant(1)}); err == nil {
		t.Error("infinite weight accepted")
	}
}

func TestMixtureProportions(t *testing.T) {
	m, err := NewMixture(
		Component{Weight: 3, Sampler: Constant(1)},
		Component{Weight: 1, Sampler: Constant(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(8)
	ones := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if m.Sample(rng) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if frac < 0.73 || frac > 0.77 {
		t.Errorf("component-1 fraction = %v, want ~0.75", frac)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty empirical accepted")
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e, err := NewEmpirical([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(9)
	for i := 0; i < 10; i++ {
		if v := e.Sample(rng); v != 7 {
			t.Fatalf("Sample = %v, want 7", v)
		}
	}
}

func TestEmpiricalStaysWithinRange(t *testing.T) {
	e, err := NewEmpirical([]float64{10, 30, 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(10)
	for i := 0; i < 5000; i++ {
		v := e.Sample(rng)
		if v < 10 || v > 30 {
			t.Fatalf("Empirical sample %v outside [10,30]", v)
		}
	}
}

func TestEmpiricalIsACopy(t *testing.T) {
	src := []float64{1, 2, 3}
	e, err := NewEmpirical(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 1e9
	rng := NewRand(11)
	for i := 0; i < 1000; i++ {
		if v := e.Sample(rng); v > 3 {
			t.Fatalf("Empirical affected by caller mutation: %v", v)
		}
	}
}

// TestCDNFileSizesMatchesPaperStatistic validates the Figure 2 calibration:
// the paper states 54% of production-CDN files are too large for the default
// 10-segment initial window (~15 KB).
func TestCDNFileSizesMatchesPaperStatistic(t *testing.T) {
	rng := NewRand(12)
	sizes := CDNFileSizes()
	const n = 200000
	over := 0
	for i := 0; i < n; i++ {
		if sizes.Sample(rng) > float64(DefaultIWBytes) {
			over++
		}
	}
	frac := float64(over) / n
	if frac < 0.51 || frac > 0.57 {
		t.Errorf("fraction over default IW = %v, want ~0.54 (paper Fig 2)", frac)
	}
}

// TestCDNFileSizesMassBand checks the "gains band": the majority of
// over-IW files fall between 15 KB and 1 MB (Figure 4's improvement band),
// and very large files do not dominate.
func TestCDNFileSizesMassBand(t *testing.T) {
	rng := NewRand(13)
	sizes := CDNFileSizes()
	const n = 100000
	inBand, huge := 0, 0
	for i := 0; i < n; i++ {
		v := sizes.Sample(rng)
		if v > float64(DefaultIWBytes) && v <= 1<<20 {
			inBand++
		}
		if v > 10<<20 {
			huge++
		}
	}
	if frac := float64(inBand) / n; frac < 0.30 {
		t.Errorf("15KB-1MB band fraction = %v, want >= 0.30", frac)
	}
	if frac := float64(huge) / n; frac > 0.10 {
		t.Errorf(">10MB fraction = %v, want <= 0.10 (large files must not dominate)", frac)
	}
}

func TestCDNFileSizesBounds(t *testing.T) {
	rng := NewRand(14)
	sizes := CDNFileSizes()
	for i := 0; i < 10000; i++ {
		v := sizes.Sample(rng)
		if v < 100 || v > 256<<20 {
			t.Fatalf("file size %v outside truncation bounds", v)
		}
	}
}

func TestProbeSizes(t *testing.T) {
	want := []int{10240, 51200, 102400}
	if len(ProbeSizes) != len(want) {
		t.Fatalf("ProbeSizes = %v", ProbeSizes)
	}
	for i := range want {
		if ProbeSizes[i] != want[i] {
			t.Errorf("ProbeSizes[%d] = %d, want %d", i, ProbeSizes[i], want[i])
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	// Standard normal CDF via erfc for verification.
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := normQuantile(p)
		if got := cdf(x); math.Abs(got-p) > 1e-6 {
			t.Errorf("cdf(normQuantile(%v)) = %v", p, got)
		}
	}
}

func TestDeterministicSeeds(t *testing.T) {
	s := CDNFileSizes()
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		if va, vb := s.Sample(a), s.Sample(b); va != vb {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, va, vb)
		}
	}
}

// Property: mixtures only emit values one of their components can emit.
func TestMixtureEmitsComponentValuesProperty(t *testing.T) {
	f := func(seed int64, w1, w2 uint8) bool {
		m, err := NewMixture(
			Component{Weight: float64(w1) + 1, Sampler: Constant(1)},
			Component{Weight: float64(w2) + 1, Sampler: Constant(2)},
		)
		if err != nil {
			return false
		}
		rng := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := m.Sample(rng)
			if v != 1 && v != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadSizesCSV(t *testing.T) {
	input := "size_bytes\n1024\n2048,extra,columns\n\n4096\n"
	s, err := LoadSizesCSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(50)
	for i := 0; i < 1000; i++ {
		v := s.Sample(rng)
		if v < 1024 || v > 4096 {
			t.Fatalf("sample %v outside loaded range", v)
		}
	}
}

func TestLoadSizesCSVBareList(t *testing.T) {
	s, err := LoadSizesCSV(strings.NewReader("100\n200\n300\n"))
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(51)
	if v := s.Sample(rng); v < 100 || v > 300 {
		t.Errorf("sample %v", v)
	}
}

func TestLoadSizesCSVErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"header\n",          // header only
		"100\nnot-a-size\n", // garbage mid-file
		"100\n-5\n",         // negative
		"100\n0\n",          // zero
	}
	for _, in := range cases {
		if _, err := LoadSizesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
