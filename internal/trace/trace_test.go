package trace

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/cdn"
)

func sampleProbes() []cdn.ProbeRecord {
	return []cdn.ProbeRecord{
		{
			Src: "lhr", Dst: "jfk",
			SrcHost: netip.MustParseAddr("10.1.0.1"), DstHost: netip.MustParseAddr("10.11.0.2"),
			SizeBytes: 51200,
			RTT:       80 * time.Millisecond, Bucket: cdn.BucketMedium,
			Elapsed: 320 * time.Millisecond, Rounds: 4, InitCwnd: 80,
			FreshConn: true, At: 5 * time.Minute,
		},
		{
			Src: "jfk", Dst: "nrt", SizeBytes: 102400,
			RTT: 190 * time.Millisecond, Bucket: cdn.BucketVeryFar,
			Elapsed: 380 * time.Millisecond, Rounds: 2, InitCwnd: 100,
			FreshConn: false, At: 6 * time.Minute,
		},
	}
}

func TestProbeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProbes(&buf, sampleProbes()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProbes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleProbes()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteProbesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProbes(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "src,") {
		t.Errorf("empty export = %q", buf.String())
	}
	got, err := ReadProbes(strings.NewReader(buf.String()))
	if err != nil || len(got) != 0 {
		t.Errorf("round trip of empty export = %v, %v", got, err)
	}
}

func TestReadProbesEmptyInput(t *testing.T) {
	got, err := ReadProbes(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty input = %v, %v", got, err)
	}
}

func TestReadProbesBadHeader(t *testing.T) {
	if _, err := ReadProbes(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestReadProbesBadRow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProbes(&buf, sampleProbes()[:1]); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), "51200", "not-a-number", 1)
	if _, err := ReadProbes(strings.NewReader(corrupted)); err == nil {
		t.Error("corrupted row accepted")
	}
}

func TestReadProbesRecomputesBucket(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleProbes()[:1]
	recs[0].Bucket = cdn.BucketVeryFar // wrong on purpose; RTT says medium
	if err := WriteProbes(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProbes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Bucket != cdn.BucketMedium {
		t.Errorf("bucket = %v, want recomputed medium", got[0].Bucket)
	}
}

func sampleCwnd() []cdn.CwndSample {
	return []cdn.CwndSample{
		{Src: "lhr", Host: netip.MustParseAddr("10.1.0.1"), Dst: "10.11.0.1", Cwnd: 100, OpenedAfterStart: true, At: 3 * time.Minute},
		{Src: "gru", Dst: "10.1.0.1", Cwnd: 12, OpenedAfterStart: false, At: 4 * time.Minute},
	}
}

func TestCwndRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCwndSamples(&buf, sampleCwnd()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCwndSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleCwnd()
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadCwndBadInput(t *testing.T) {
	if _, err := ReadCwndSamples(strings.NewReader("x,y\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCwndSamples(strings.NewReader("src,host,dst,cwnd,opened_after_start,at_ms\nlhr,10.1.0.1,x,NaN,true,1\n")); err == nil {
		t.Error("bad cwnd accepted")
	}
	got, err := ReadCwndSamples(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty input = %v, %v", got, err)
	}
}
