package trace

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/cdn"
)

// TestProbeRoundTripQuoting pins CSV escaping: PoP labels with commas,
// quotes, and newlines must survive a write/read cycle byte-for-byte.
func TestProbeRoundTripQuoting(t *testing.T) {
	recs := []cdn.ProbeRecord{{
		Src: `lhr, "west"`, Dst: "jfk\nannex",
		RTT: 10 * time.Millisecond, Bucket: cdn.BucketFor(10 * time.Millisecond),
		At: time.Second,
	}}
	var buf bytes.Buffer
	if err := WriteProbes(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProbes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != recs[0] {
		t.Errorf("round trip = %+v, want %+v", got, recs)
	}
}

func TestReadProbesShortRow(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProbes(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// A truncated data row must be rejected, not silently zero-filled.
	if _, err := ReadProbes(strings.NewReader(buf.String() + "lhr,jfk\n")); err == nil {
		t.Error("short row accepted")
	}
}

// FuzzReadProbes asserts two invariants on arbitrary input: the parser
// never panics, and anything it accepts can be re-serialized and read
// back (write-what-we-read closure).
func FuzzReadProbes(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteProbes(&valid, []cdn.ProbeRecord{{
		Src: "lhr", Dst: "jfk",
		SrcHost: netip.MustParseAddr("10.1.0.1"),
		RTT:     80 * time.Millisecond, Bucket: cdn.BucketMedium,
		Elapsed: 320 * time.Millisecond, Rounds: 4, InitCwnd: 80,
		FreshConn: true, At: 5 * time.Minute,
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	header := "src,dst,src_host,dst_host,size_bytes,rtt_ms,bucket,elapsed_ms,rounds,initcwnd,fresh_conn,at_ms\n"
	f.Add("")
	f.Add(header)
	f.Add("a,b,c\n")
	f.Add(header + "lhr,jfk\n")                                                    // short row
	f.Add(header + "lhr,jfk,bogus-addr,,x,y,near,z,q,w,maybe,n\n")                 // junk fields
	f.Add(header + "lhr,jfk,10.1.0.1,,1,2,near,3,4,5,true,99999999999999999999\n") // overflow
	f.Add(header + `"unterminated`)                                                // broken quoting
	f.Add(header + "lhr,jfk,10.1.0.1,10.2.0.1,1,-5,near,-1,0,0,false,-9\n")        // negative values

	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadProbes(strings.NewReader(s))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteProbes(&out, recs); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, err := ReadProbes(&out)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}

// FuzzReadCwndSamples mirrors FuzzReadProbes for the window-sample schema.
func FuzzReadCwndSamples(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteCwndSamples(&valid, []cdn.CwndSample{{
		Src: "lhr", Host: netip.MustParseAddr("10.1.0.1"), Dst: "10.11.0.1",
		Cwnd: 100, OpenedAfterStart: true, At: 3 * time.Minute,
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	header := "src,host,dst,cwnd,opened_after_start,at_ms\n"
	f.Add("")
	f.Add(header)
	f.Add("x,y\n")
	f.Add(header + "lhr,not-an-ip,d,1,true,1\n")
	f.Add(header + "lhr,10.1.0.1,d,NaN,true,1\n")
	f.Add(header + "lhr,10.1.0.1,d,1,perhaps,1\n")
	f.Add(header + "lhr,10.1.0.1,d,1,true\n") // short row
	f.Add(header + `",,`)

	f.Fuzz(func(t *testing.T, s string) {
		samples, err := ReadCwndSamples(strings.NewReader(s))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCwndSamples(&out, samples); err != nil {
			t.Fatalf("accepted samples failed to serialize: %v", err)
		}
		again, err := ReadCwndSamples(&out)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed sample count: %d -> %d", len(samples), len(again))
		}
	})
}
