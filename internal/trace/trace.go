// Package trace serializes the reproduction's measurement records — probe
// completions and congestion-window samples — as CSV for external analysis
// (plotting the paper's figures with any tool), and loads them back for
// offline re-analysis.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"time"

	"riptide/internal/cdn"
)

// probeHeader is the CSV schema for probe records.
var probeHeader = []string{
	"src", "dst", "src_host", "dst_host", "size_bytes", "rtt_ms", "bucket",
	"elapsed_ms", "rounds", "initcwnd", "fresh_conn", "at_ms",
}

// WriteProbes writes probe records as CSV with a header row.
func WriteProbes(w io.Writer, records []cdn.ProbeRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(probeHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, r := range records {
		row := []string{
			r.Src,
			r.Dst,
			addrString(r.SrcHost),
			addrString(r.DstHost),
			strconv.Itoa(r.SizeBytes),
			strconv.FormatInt(r.RTT.Milliseconds(), 10),
			r.Bucket.String(),
			strconv.FormatInt(r.Elapsed.Milliseconds(), 10),
			strconv.Itoa(r.Rounds),
			strconv.Itoa(r.InitCwnd),
			strconv.FormatBool(r.FreshConn),
			strconv.FormatInt(r.At.Milliseconds(), 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadProbes parses CSV written by WriteProbes. The bucket column is
// recomputed from the RTT, so hand-edited files stay consistent.
func ReadProbes(r io.Reader) ([]cdn.ProbeRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if len(rows[0]) != len(probeHeader) || rows[0][0] != "src" {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	records := make([]cdn.ProbeRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		rec, err := parseProbeRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+2, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func parseProbeRow(row []string) (cdn.ProbeRecord, error) {
	if len(row) != len(probeHeader) {
		return cdn.ProbeRecord{}, fmt.Errorf("want %d columns, got %d", len(probeHeader), len(row))
	}
	srcHost, err := parseAddr(row[2])
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("src_host: %w", err)
	}
	dstHost, err := parseAddr(row[3])
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("dst_host: %w", err)
	}
	size, err := strconv.Atoi(row[4])
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("size: %w", err)
	}
	rttMs, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("rtt: %w", err)
	}
	elapsedMs, err := strconv.ParseInt(row[7], 10, 64)
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("elapsed: %w", err)
	}
	rounds, err := strconv.Atoi(row[8])
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("rounds: %w", err)
	}
	initCwnd, err := strconv.Atoi(row[9])
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("initcwnd: %w", err)
	}
	fresh, err := strconv.ParseBool(row[10])
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("fresh: %w", err)
	}
	atMs, err := strconv.ParseInt(row[11], 10, 64)
	if err != nil {
		return cdn.ProbeRecord{}, fmt.Errorf("at: %w", err)
	}
	rtt := time.Duration(rttMs) * time.Millisecond
	return cdn.ProbeRecord{
		Src:       row[0],
		Dst:       row[1],
		SrcHost:   srcHost,
		DstHost:   dstHost,
		SizeBytes: size,
		RTT:       rtt,
		Bucket:    cdn.BucketFor(rtt),
		Elapsed:   time.Duration(elapsedMs) * time.Millisecond,
		Rounds:    rounds,
		InitCwnd:  initCwnd,
		FreshConn: fresh,
		At:        time.Duration(atMs) * time.Millisecond,
	}, nil
}

// addrString renders an address, using "" for the zero value so files stay
// readable when host detail is absent.
func addrString(a netip.Addr) string {
	if !a.IsValid() {
		return ""
	}
	return a.String()
}

// parseAddr is the inverse of addrString.
func parseAddr(s string) (netip.Addr, error) {
	if s == "" {
		return netip.Addr{}, nil
	}
	return netip.ParseAddr(s)
}

// cwndHeader is the CSV schema for window samples.
var cwndHeader = []string{"src", "host", "dst", "cwnd", "opened_after_start", "at_ms"}

// WriteCwndSamples writes window samples as CSV with a header row.
func WriteCwndSamples(w io.Writer, samples []cdn.CwndSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(cwndHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, s := range samples {
		row := []string{
			s.Src,
			addrString(s.Host),
			s.Dst,
			strconv.Itoa(s.Cwnd),
			strconv.FormatBool(s.OpenedAfterStart),
			strconv.FormatInt(s.At.Milliseconds(), 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write sample %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCwndSamples parses CSV written by WriteCwndSamples.
func ReadCwndSamples(r io.Reader) ([]cdn.CwndSample, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if len(rows[0]) != len(cwndHeader) || rows[0][3] != "cwnd" {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	samples := make([]cdn.CwndSample, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(cwndHeader) {
			return nil, fmt.Errorf("trace: row %d: want %d columns, got %d", i+2, len(cwndHeader), len(row))
		}
		host, err := parseAddr(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d host: %w", i+2, err)
		}
		cwnd, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d cwnd: %w", i+2, err)
		}
		opened, err := strconv.ParseBool(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d opened: %w", i+2, err)
		}
		atMs, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d at: %w", i+2, err)
		}
		samples = append(samples, cdn.CwndSample{
			Src:              row[0],
			Host:             host,
			Dst:              row[2],
			Cwnd:             cwnd,
			OpenedAfterStart: opened,
			At:               time.Duration(atMs) * time.Millisecond,
		})
	}
	return samples, nil
}
