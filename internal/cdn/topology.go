// Package cdn simulates the production content-delivery network the paper
// evaluates Riptide on: 34 globally distributed points of presence
// (Table II), inter-PoP WAN paths whose RTTs follow the published
// distribution (Figure 5, median > 125 ms), the hourly 10/50/100 KB
// diagnostic probe infrastructure (Section IV-A), per-PoP organic traffic
// profiles (Figure 11), and a Riptide agent on every sending host.
package cdn

import (
	"fmt"
	"math"
	"net/netip"
	"time"
)

// Continent labels a PoP's region, for the Table II census.
type Continent int

// Continents in Table II order.
const (
	Europe Continent = iota + 1
	NorthAmerica
	SouthAmerica
	Asia
	Oceania
)

// String returns the Table II name of the continent.
func (c Continent) String() string {
	switch c {
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case SouthAmerica:
		return "South America"
	case Asia:
		return "Asia"
	case Oceania:
		return "Oceania"
	default:
		return fmt.Sprintf("Continent(%d)", int(c))
	}
}

// PoP is one point of presence.
type PoP struct {
	// Name is a short site code ("lhr", "lax").
	Name string
	// City is the metro the PoP serves.
	City string
	// Continent is the Table II region.
	Continent Continent
	// Lat/Lon position the PoP for great-circle RTT estimation.
	Lat, Lon float64
	// Addr is the PoP's representative host address; each PoP owns a /24.
	Addr netip.Addr
}

// Prefix returns the PoP's /24.
func (p PoP) Prefix() netip.Prefix {
	return netip.PrefixFrom(p.Addr, 24).Masked()
}

// DefaultTopology returns the 34-PoP deployment matching the paper's
// Table II census: Europe 10, North America 11, South America 1, Asia 9,
// Oceania 3. City placements are representative of a global CDN; the paper
// does not name its sites, so any placement reproducing the continent
// counts and the Figure 5 RTT distribution is faithful.
func DefaultTopology() []PoP {
	mk := func(i int, name, city string, cont Continent, lat, lon float64) PoP {
		return PoP{
			Name:      name,
			City:      city,
			Continent: cont,
			Lat:       lat,
			Lon:       lon,
			Addr:      netip.AddrFrom4([4]byte{10, byte(i), 0, 1}),
		}
	}
	return []PoP{
		// Europe (10).
		mk(1, "lhr", "London", Europe, 51.51, -0.13),
		mk(2, "fra", "Frankfurt", Europe, 50.11, 8.68),
		mk(3, "ams", "Amsterdam", Europe, 52.37, 4.90),
		mk(4, "cdg", "Paris", Europe, 48.86, 2.35),
		mk(5, "mad", "Madrid", Europe, 40.42, -3.70),
		mk(6, "mxp", "Milan", Europe, 45.46, 9.19),
		mk(7, "arn", "Stockholm", Europe, 59.33, 18.07),
		mk(8, "waw", "Warsaw", Europe, 52.23, 21.01),
		mk(9, "vie", "Vienna", Europe, 48.21, 16.37),
		mk(10, "hel", "Helsinki", Europe, 60.17, 24.94),
		// North America (11).
		mk(11, "jfk", "New York", NorthAmerica, 40.71, -74.01),
		mk(12, "iad", "Ashburn", NorthAmerica, 39.04, -77.49),
		mk(13, "atl", "Atlanta", NorthAmerica, 33.75, -84.39),
		mk(14, "mia", "Miami", NorthAmerica, 25.76, -80.19),
		mk(15, "ord", "Chicago", NorthAmerica, 41.88, -87.63),
		mk(16, "dfw", "Dallas", NorthAmerica, 32.78, -96.80),
		mk(17, "den", "Denver", NorthAmerica, 39.74, -104.99),
		mk(18, "sea", "Seattle", NorthAmerica, 47.61, -122.33),
		mk(19, "sjc", "San Jose", NorthAmerica, 37.34, -121.89),
		mk(20, "lax", "Los Angeles", NorthAmerica, 34.05, -118.24),
		mk(21, "yyz", "Toronto", NorthAmerica, 43.65, -79.38),
		// South America (1).
		mk(22, "gru", "Sao Paulo", SouthAmerica, -23.55, -46.63),
		// Asia (9).
		mk(23, "nrt", "Tokyo", Asia, 35.68, 139.69),
		mk(24, "kix", "Osaka", Asia, 34.69, 135.50),
		mk(25, "icn", "Seoul", Asia, 37.57, 126.98),
		mk(26, "hkg", "Hong Kong", Asia, 22.32, 114.17),
		mk(27, "sin", "Singapore", Asia, 1.35, 103.82),
		mk(28, "bom", "Mumbai", Asia, 19.08, 72.88),
		mk(29, "maa", "Chennai", Asia, 13.08, 80.27),
		mk(30, "tpe", "Taipei", Asia, 25.03, 121.57),
		mk(31, "kul", "Kuala Lumpur", Asia, 3.14, 101.69),
		// Oceania (3).
		mk(32, "syd", "Sydney", Oceania, -33.87, 151.21),
		mk(33, "mel", "Melbourne", Oceania, -37.81, 144.96),
		mk(34, "akl", "Auckland", Oceania, -36.85, 174.76),
	}
}

// Census counts PoPs per continent — the data behind Table II.
func Census(pops []PoP) map[Continent]int {
	out := make(map[Continent]int)
	for _, p := range pops {
		out[p.Continent]++
	}
	return out
}

// Speed-of-light propagation model constants.
const (
	earthRadiusKm = 6371.0
	// fiberKmPerMs is light speed in fiber (~2/3 c) in km per millisecond.
	fiberKmPerMs = 200.0
	// pathStretch inflates great-circle distance to account for real
	// fiber routing, which rarely follows geodesics. 1.7 calibrates the
	// Figure 5 distribution (median inter-PoP RTT > 125 ms).
	pathStretch = 1.7
	// minRTT floors same-metro / short-haul paths.
	minRTT = 2 * time.Millisecond
)

// haversineKm returns the great-circle distance between two coordinates.
func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	dLat := (lat2 - lat1) * deg
	dLon := (lon2 - lon1) * deg
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*deg)*math.Cos(lat2*deg)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// RTTBetween estimates the round-trip time between two PoPs from fiber
// propagation over the stretched great-circle distance.
func RTTBetween(a, b PoP) time.Duration {
	km := haversineKm(a.Lat, a.Lon, b.Lat, b.Lon)
	oneWayMs := km * pathStretch / fiberKmPerMs
	rtt := time.Duration(2 * oneWayMs * float64(time.Millisecond))
	if rtt < minRTT {
		return minRTT
	}
	return rtt
}

// RTTBucket classifies an RTT into the paper's Figure 12–14 groups.
type RTTBucket int

// Buckets in paper order: (a) < 50 ms, (b) 51–100 ms, (c) 101–150 ms,
// (d) > 150 ms.
const (
	BucketClose RTTBucket = iota + 1
	BucketMedium
	BucketFar
	BucketVeryFar
)

// String names the bucket like the paper's subfigure captions.
func (b RTTBucket) String() string {
	switch b {
	case BucketClose:
		return "<50ms"
	case BucketMedium:
		return "51-100ms"
	case BucketFar:
		return "101-150ms"
	case BucketVeryFar:
		return ">150ms"
	default:
		return fmt.Sprintf("RTTBucket(%d)", int(b))
	}
}

// BucketFor classifies rtt.
func BucketFor(rtt time.Duration) RTTBucket {
	switch {
	case rtt <= 50*time.Millisecond:
		return BucketClose
	case rtt <= 100*time.Millisecond:
		return BucketMedium
	case rtt <= 150*time.Millisecond:
		return BucketFar
	default:
		return BucketVeryFar
	}
}

// AllBuckets lists the buckets in display order.
func AllBuckets() []RTTBucket {
	return []RTTBucket{BucketClose, BucketMedium, BucketFar, BucketVeryFar}
}

// PairRTTs returns the RTT of every unordered PoP pair — the data behind
// Figure 5.
func PairRTTs(pops []PoP) []time.Duration {
	var out []time.Duration
	for i := range pops {
		for j := i + 1; j < len(pops); j++ {
			out = append(out, RTTBetween(pops[i], pops[j]))
		}
	}
	return out
}
