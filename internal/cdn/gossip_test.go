package cdn

import (
	"testing"
	"time"

	"riptide/internal/core"
)

func newGossipCluster(t *testing.T, mode GossipMode) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		PoPs:        smallTopology(),
		HostsPerPoP: 2,
		Seed:        1,
		LossRate:    0.001,
		Riptide:     RiptideOptions{Enabled: true, TTL: 10 * time.Minute},
		Traffic: TrafficOptions{
			ProbeInterval: 30 * time.Second,
			IdleTimeout:   time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mode != "" {
		if err := c.EnableGossipSharing(5*time.Second, core.MergePolicy{}, mode); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestEnableGossipSharingValidation(t *testing.T) {
	c := newGossipCluster(t, "")
	defer c.Stop()
	if err := c.EnableGossipSharing(0, core.MergePolicy{}, GossipLadder); err == nil {
		t.Error("zero interval accepted")
	}
	if err := c.EnableGossipSharing(5*time.Second, core.MergePolicy{}, "telepathy"); err == nil {
		t.Error("unknown mode accepted")
	}

	noRiptide, err := NewCluster(Config{PoPs: smallTopology(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer noRiptide.Stop()
	if err := noRiptide.EnableGossipSharing(5*time.Second, core.MergePolicy{}, GossipLadder); err == nil {
		t.Error("gossip sharing without riptide accepted")
	}
}

// TestGossipLadderConverges: with ladder gossip on, agents hold entries
// beyond their own observations (cross-PoP dissemination works), and once
// the fleet is converged the rounds are overwhelmingly digest-only.
func TestGossipLadderConverges(t *testing.T) {
	c := newGossipCluster(t, GossipLadder)
	defer c.Stop()
	c.Run(5 * time.Minute)

	if s := c.AgentAt("lhr", 0).Stats(); s.FleetMerged == 0 {
		t.Errorf("stats = %+v, want FleetMerged > 0 (gossip delivered entries)", s)
	}
	gs := c.GossipStats()
	if gs.Rounds == 0 || gs.BytesOnWire == 0 {
		t.Fatalf("stats = %+v, want accounted rounds and bytes", gs)
	}
	if gs.DigestRounds == 0 {
		t.Fatalf("stats = %+v: the ladder never had a digest-only round", gs)
	}
	if gs.FullRounds == 0 {
		t.Fatalf("stats = %+v: first contact should have been a full round", gs)
	}
	if got := gs.DigestRounds + gs.DeltaRounds + gs.BucketRounds + gs.FullRounds; got != gs.Rounds {
		t.Fatalf("per-mode rounds sum to %d, total says %d", got, gs.Rounds)
	}
	// Probes refresh entries constantly, but refreshes do not bump versions:
	// converged edges must dominate between real table changes.
	if gs.DigestRounds < gs.Rounds/2 {
		t.Errorf("stats = %+v: digest-only rounds are not the steady state", gs)
	}
}

// TestGossipLadderBeatsFullOnBytes is the cost claim: same fleet, same
// schedule, the ladder moves far fewer bytes than full-table rounds. The
// fleets carry a realistically sized warm table (a long-lived back-office
// fleet accumulates hundreds of destinations) — that is the regime the
// ladder is built for: digests are O(1) in table size, full snapshots are
// O(n), and on a freshly started toy table the two costs are comparable.
func TestGossipLadderBeatsFullOnBytes(t *testing.T) {
	ladder := newGossipCluster(t, GossipLadder)
	defer ladder.Stop()
	full := newGossipCluster(t, GossipFull)
	defer full.Stop()
	for _, c := range []*Cluster{ladder, full} {
		if err := c.SeedWarmEntries(400, core.MergePolicy{}); err != nil {
			t.Fatal(err)
		}
	}
	ladder.Run(5 * time.Minute)
	full.Run(5 * time.Minute)

	lb, fb := ladder.GossipStats().BytesOnWire, full.GossipStats().BytesOnWire
	if lb == 0 || fb == 0 {
		t.Fatalf("bytes ladder=%d full=%d, want both accounted", lb, fb)
	}
	if lb*2 >= fb {
		t.Errorf("ladder moved %d bytes vs full %d — expected well under half", lb, fb)
	}
	if ladder.GossipStats().EntriesMoved >= full.GossipStats().EntriesMoved {
		t.Errorf("ladder moved %d entries vs full %d — deltas should carry less",
			ladder.GossipStats().EntriesMoved, full.GossipStats().EntriesMoved)
	}
}

// TestGossipSeedsRebootedHost: a rebooted machine regains entries from
// gossip within a couple of intervals, and its peers' restart detection
// (instance change + cursor drop) keeps the edges flowing rather than
// reading stale cursors as "converged".
func TestGossipSeedsRebootedHost(t *testing.T) {
	c := newGossipCluster(t, GossipLadder)
	defer c.Stop()
	c.Run(5 * time.Minute)

	if got := len(c.AgentAt("lhr", 0).Entries()); got == 0 {
		t.Fatal("no steady-state entries")
	}
	preBuckets := c.GossipStats().BucketRounds
	if _, err := c.RebootHost("lhr", 0); err != nil {
		t.Fatal(err)
	}

	// Two gossip intervals, well inside the 30 s probe cadence.
	c.Run(10 * time.Second)
	agent := c.AgentAt("lhr", 0)
	if got := len(agent.Entries()); got == 0 {
		t.Fatal("gossip did not seed the rebooted agent")
	}
	if s := agent.Stats(); s.FleetMerged == 0 {
		t.Errorf("stats = %+v, want FleetMerged > 0", s)
	}
	// Peers of the rebooted machine saw its instance change and resynced
	// divergent buckets instead of re-pulling whole tables.
	if got := c.GossipStats().BucketRounds; got <= preBuckets {
		t.Errorf("bucket rounds %d -> %d: restart did not trigger a bucket resync", preBuckets, got)
	}
}
