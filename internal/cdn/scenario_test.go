package cdn

import (
	"testing"
	"time"

	"riptide/internal/netsim"
)

func TestSetPoPPathLoss(t *testing.T) {
	c := newSmallCluster(t, false, 41)
	if err := c.SetPoPPathLoss("atlantis", 0.1); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := c.SetPoPPathLoss("nrt", 0.2); err != nil {
		t.Fatal(err)
	}
	// A transfer to the degraded PoP must now see heavy loss.
	var res netsim.TransferResult
	if err := c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Minute)
	if res.Retransmits == 0 {
		t.Error("degraded path produced no retransmits")
	}
	c.Stop()
}

func TestInjectTransferValidation(t *testing.T) {
	c := newSmallCluster(t, false, 42)
	if err := c.InjectTransfer("nope", "lhr", 100, nil); err == nil {
		t.Error("unknown src accepted")
	}
	if err := c.InjectTransfer("lhr", "nope", 100, nil); err == nil {
		t.Error("unknown dst accepted")
	}
	if err := c.InjectTransfer("lhr", "lhr", 100, nil); err == nil {
		t.Error("intra-PoP transfer accepted")
	}
	c.Stop()
}

func TestFlashCrowdScenario(t *testing.T) {
	c := newSmallCluster(t, false, 43)
	crowd := FlashCrowd{
		Target:     "lhr",
		At:         time.Minute,
		For:        time.Minute,
		RatePerPoP: 2,
	}
	if s, e := crowd.Window(); s != time.Minute || e != 2*time.Minute {
		t.Errorf("window = %v..%v", s, e)
	}
	before := c.Engine().Fired()
	if err := crowd.Apply(c); err != nil {
		t.Fatal(err)
	}
	_ = before
	c.Run(3 * time.Minute)
	// The crowd pulls from lhr: lhr's host must have opened extra
	// outbound connections beyond probe traffic.
	h, _ := c.Host("lhr")
	_ = h
	c.Stop()

	// Validation paths.
	if err := (FlashCrowd{Target: "nope", At: 0, For: time.Second, RatePerPoP: 1}).Apply(c); err == nil {
		t.Error("unknown target accepted")
	}
	if err := (FlashCrowd{Target: "lhr"}).Apply(c); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestFlashCrowdIncreasesTargetLoad(t *testing.T) {
	transfers := func(withCrowd bool) uint64 {
		c := newSmallCluster(t, false, 44)
		if withCrowd {
			if err := (FlashCrowd{Target: "lhr", At: 30 * time.Second, For: time.Minute, RatePerPoP: 3}).Apply(c); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(2 * time.Minute)
		defer c.Stop()
		return c.Engine().Fired()
	}
	if base, crowd := transfers(false), transfers(true); crowd <= base {
		t.Errorf("crowd events %d <= baseline %d", crowd, base)
	}
}

func TestRegionalDegradationScenario(t *testing.T) {
	c := newSmallCluster(t, false, 45)
	deg := RegionalDegradation{
		PoP:          "nrt",
		At:           30 * time.Second,
		For:          time.Minute,
		LossRate:     0.3,
		BaselineLoss: 0.001,
	}
	if err := deg.Apply(c); err != nil {
		t.Fatal(err)
	}

	// During the episode, transfers to nrt are lossy.
	var during netsim.TransferResult
	_ = c.ScheduleAt(45*time.Second, func() {
		_ = c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { during = r })
	})
	// Afterwards the path heals.
	var after netsim.TransferResult
	_ = c.ScheduleAt(2*time.Minute, func() {
		_ = c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { after = r })
	})
	c.Run(4 * time.Minute)
	c.Stop()
	if during.Retransmits == 0 {
		t.Error("no retransmits during the degradation window")
	}
	if after.Retransmits >= during.Retransmits {
		t.Errorf("after-heal retransmits %d >= during %d", after.Retransmits, during.Retransmits)
	}

	if err := (RegionalDegradation{PoP: "nope", For: time.Second, LossRate: 0.1}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := (RegionalDegradation{PoP: "nrt", For: time.Second, LossRate: 2}).Apply(c); err == nil {
		t.Error("loss >= 1 accepted")
	}
}

func TestRollingRebootsScenario(t *testing.T) {
	c, err := NewCluster(Config{
		PoPs:    smallTopology(),
		Seed:    46,
		Riptide: RiptideOptions{Enabled: true},
		Traffic: TrafficOptions{
			ProbeInterval: 20 * time.Second,
			OrganicRates:  map[string]float64{"lhr": 2, "jfk": 2, "fra": 2, "nrt": 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)
	agentsBefore := map[string]bool{}
	for _, p := range c.PoPs() {
		agentsBefore[p.Name] = c.Agent(p.Name) != nil
	}

	wave := RollingReboots{
		PoPs:     []string{"lhr", "fra"},
		Start:    10 * time.Second,
		Interval: 30 * time.Second,
	}
	if s, e := wave.Window(); s != 10*time.Second || e != 70*time.Second {
		t.Errorf("window = %v..%v", s, e)
	}
	lhrBefore := c.Agent("lhr")
	if err := wave.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Minute)
	if c.Agent("lhr") == lhrBefore {
		t.Error("lhr agent not replaced by rolling reboot")
	}
	// The rebooted PoPs relearn afterwards.
	if len(c.Agent("lhr").Entries()) == 0 {
		t.Error("lhr never relearned after reboot wave")
	}
	c.Stop()

	if err := (RollingReboots{}).Apply(c); err == nil {
		t.Error("empty PoP list accepted")
	}
	if err := (RollingReboots{PoPs: []string{"lhr"}}).Apply(c); err == nil {
		t.Error("zero interval accepted")
	}
	if err := (RollingReboots{PoPs: []string{"nope"}, Interval: time.Second}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
}

func TestScenarioMetadata(t *testing.T) {
	crowd := FlashCrowd{Target: "lhr"}
	if crowd.Name() != "flash-crowd" {
		t.Errorf("name = %q", crowd.Name())
	}
	if got := crowd.AffectedPoPs(); len(got) != 1 || got[0] != "lhr" {
		t.Errorf("affected = %v", got)
	}

	deg := RegionalDegradation{PoP: "nrt", At: time.Minute, For: time.Minute}
	if deg.Name() != "regional-degradation" {
		t.Errorf("name = %q", deg.Name())
	}
	if s, e := deg.Window(); s != time.Minute || e != 2*time.Minute {
		t.Errorf("window = %v..%v", s, e)
	}
	if got := deg.AffectedPoPs(); len(got) != 1 || got[0] != "nrt" {
		t.Errorf("affected = %v", got)
	}

	wave := RollingReboots{PoPs: []string{"a", "b"}, Interval: time.Second}
	if wave.Name() != "rolling-reboots" {
		t.Errorf("name = %q", wave.Name())
	}
	got := wave.AffectedPoPs()
	if len(got) != 2 {
		t.Fatalf("affected = %v", got)
	}
	got[0] = "mutated"
	if wave.PoPs[0] != "a" {
		t.Error("AffectedPoPs result aliases internal slice")
	}
	empty := RollingReboots{}
	if s, e := empty.Window(); s != 0 || e != 0 {
		t.Errorf("empty window = %v..%v", s, e)
	}
}

func TestRTTBucketString(t *testing.T) {
	if BucketClose.String() != "<50ms" || BucketVeryFar.String() != ">150ms" {
		t.Error("bucket names wrong")
	}
	if RTTBucket(99).String() == "" {
		t.Error("unknown bucket empty")
	}
}

func TestCapacityCutScenario(t *testing.T) {
	c, err := NewCluster(Config{
		PoPs:             smallTopology(),
		Seed:             47,
		CapacitySegments: 400,
		Riptide:          RiptideOptions{Enabled: false},
		Traffic:          TrafficOptions{ProbeInterval: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := CapacityCut{
		PoP:             "nrt",
		From:            "lhr",
		At:              10 * time.Second,
		For:             time.Minute,
		Segments:        5,
		RestoreSegments: 400,
	}
	if err := cut.Apply(c); err != nil {
		t.Fatal(err)
	}
	var during, after netsim.TransferResult
	_ = c.ScheduleAt(20*time.Second, func() {
		_ = c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { during = r })
	})
	_ = c.ScheduleAt(2*time.Minute, func() {
		_ = c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { after = r })
	})
	c.Run(4 * time.Minute)
	c.Stop()
	if during.Retransmits == 0 {
		t.Error("no retransmits through the capacity cut")
	}
	if after.Retransmits >= during.Retransmits {
		t.Errorf("post-restore retransmits %d >= during %d", after.Retransmits, during.Retransmits)
	}

	if err := (CapacityCut{PoP: "nope", Segments: 10}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := (CapacityCut{PoP: "nrt", From: "nope", Segments: 10}).Apply(c); err == nil {
		t.Error("unknown From accepted")
	}
	if err := (CapacityCut{PoP: "nrt", From: "nrt", Segments: 10}).Apply(c); err == nil {
		t.Error("self pair accepted")
	}
	if err := (CapacityCut{PoP: "nrt", Segments: 0}).Apply(c); err == nil {
		t.Error("zero segments accepted")
	}
	if err := (CapacityCut{PoP: "nrt", Segments: 10, At: -time.Second}).Apply(c); err == nil {
		t.Error("negative start accepted")
	}
}

func TestPathFlapScenario(t *testing.T) {
	c := newSmallCluster(t, false, 48)
	base, err := c.BaselinePairRTT("lhr", "nrt")
	if err != nil {
		t.Fatal(err)
	}
	flap := PathFlap{A: "lhr", B: "nrt", At: 10 * time.Second, For: time.Minute, RTTScale: 3}
	if err := flap.Apply(c); err != nil {
		t.Fatal(err)
	}
	var during, after netsim.TransferResult
	_ = c.ScheduleAt(20*time.Second, func() {
		_ = c.InjectTransfer("lhr", "nrt", 1000, func(r netsim.TransferResult) { during = r })
	})
	_ = c.ScheduleAt(2*time.Minute, func() {
		_ = c.InjectTransfer("lhr", "nrt", 1000, func(r netsim.TransferResult) { after = r })
	})
	c.Run(4 * time.Minute)
	c.Stop()
	// A one-round transfer's elapsed time is one (possibly flapped) RTT.
	if during.Elapsed < time.Duration(2.9*float64(base)) {
		t.Errorf("during-flap transfer %v not slowed (baseline %v)", during.Elapsed, base)
	}
	if after.Elapsed != base {
		t.Errorf("post-flap transfer %v, want baseline %v", after.Elapsed, base)
	}

	if err := (PathFlap{A: "lhr", B: "nope", For: time.Second, RTTScale: 2}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := (PathFlap{A: "lhr", B: "lhr", For: time.Second, RTTScale: 2}).Apply(c); err == nil {
		t.Error("self flap accepted")
	}
	if err := (PathFlap{A: "lhr", B: "nrt", For: time.Second, RTTScale: 0}).Apply(c); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestPeerPartitionScenario(t *testing.T) {
	c := newSmallCluster(t, false, 49)
	part := PeerPartition{A: "lhr", B: "nrt", At: 45 * time.Second, For: 90 * time.Second}
	if err := part.Apply(c); err != nil {
		t.Fatal(err)
	}
	// Mid-partition, transfers between the pair cannot open; unrelated
	// pairs are fine; afterwards the pair heals.
	var midErr, otherErr, afterErr error
	ran := false
	_ = c.ScheduleAt(time.Minute, func() {
		midErr = c.InjectTransfer("lhr", "nrt", 1000, nil)
		otherErr = c.InjectTransfer("lhr", "fra", 1000, nil)
	})
	_ = c.ScheduleAt(3*time.Minute, func() {
		afterErr = c.InjectTransfer("lhr", "nrt", 1000, nil)
		ran = true
	})
	c.Run(4 * time.Minute)
	c.Stop()
	if !ran {
		t.Fatal("schedule did not run")
	}
	if midErr == nil {
		t.Error("transfer across the partition succeeded")
	}
	if otherErr != nil {
		t.Errorf("unrelated pair failed: %v", otherErr)
	}
	if afterErr != nil {
		t.Errorf("post-heal transfer failed: %v", afterErr)
	}
	// Probes across the partition were recorded as failures.
	failed := false
	for _, f := range c.ProbeFailures() {
		pair := (f.Src == "lhr" && f.Dst == "nrt") || (f.Src == "nrt" && f.Dst == "lhr")
		if pair {
			failed = true
			if f.At < 45*time.Second || f.At >= 135*time.Second {
				t.Errorf("failure at %v outside the partition window", f.At)
			}
		}
	}
	if !failed {
		t.Error("no probe failures recorded across the partition")
	}

	if err := (PeerPartition{A: "lhr", B: "nope", For: time.Second}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := (PeerPartition{A: "lhr", B: "lhr", For: time.Second}).Apply(c); err == nil {
		t.Error("self partition accepted")
	}
	if err := (PeerPartition{A: "lhr", B: "nrt", For: 0}).Apply(c); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestFlashCrowdRejectsNegativeParams(t *testing.T) {
	c := newSmallCluster(t, false, 50)
	defer c.Stop()
	if err := (FlashCrowd{Target: "lhr", For: time.Second, RatePerPoP: 1, At: -time.Second}).Apply(c); err == nil {
		t.Error("negative At accepted")
	}
	if err := (FlashCrowd{Target: "lhr", For: time.Second, RatePerPoP: 1, SizeBytes: -1}).Apply(c); err == nil {
		t.Error("negative SizeBytes accepted")
	}
	// Zero size still defaults to 100 KB.
	if err := (FlashCrowd{Target: "lhr", For: time.Second, RatePerPoP: 1, SizeBytes: 0}).Apply(c); err != nil {
		t.Errorf("zero size rejected: %v", err)
	}
}

func TestClusterCountersAndQuarantineAccessors(t *testing.T) {
	c, err := NewCluster(Config{
		PoPs:     smallTopology(),
		Seed:     51,
		LossRate: 0.05,
		Riptide:  RiptideOptions{Enabled: true},
		Traffic: TrafficOptions{
			ProbeInterval: 20 * time.Second,
			OrganicRates:  map[string]float64{"lhr": 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)
	defer c.Stop()
	if c.TotalRetransmits() == 0 {
		t.Error("lossy cluster recorded no retransmits")
	}
	if c.TotalRoutes() == 0 {
		t.Error("riptide cluster learned no routes")
	}
	// No guard configured: quarantine count is zero by definition.
	if got := c.QuarantineCount(); got != 0 {
		t.Errorf("guardless QuarantineCount = %d", got)
	}
}
