package cdn

import (
	"testing"
	"time"

	"riptide/internal/netsim"
)

func TestSetPoPPathLoss(t *testing.T) {
	c := newSmallCluster(t, false, 41)
	if err := c.SetPoPPathLoss("atlantis", 0.1); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := c.SetPoPPathLoss("nrt", 0.2); err != nil {
		t.Fatal(err)
	}
	// A transfer to the degraded PoP must now see heavy loss.
	var res netsim.TransferResult
	if err := c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Minute)
	if res.Retransmits == 0 {
		t.Error("degraded path produced no retransmits")
	}
	c.Stop()
}

func TestInjectTransferValidation(t *testing.T) {
	c := newSmallCluster(t, false, 42)
	if err := c.InjectTransfer("nope", "lhr", 100, nil); err == nil {
		t.Error("unknown src accepted")
	}
	if err := c.InjectTransfer("lhr", "nope", 100, nil); err == nil {
		t.Error("unknown dst accepted")
	}
	if err := c.InjectTransfer("lhr", "lhr", 100, nil); err == nil {
		t.Error("intra-PoP transfer accepted")
	}
	c.Stop()
}

func TestFlashCrowdScenario(t *testing.T) {
	c := newSmallCluster(t, false, 43)
	crowd := FlashCrowd{
		Target:     "lhr",
		At:         time.Minute,
		For:        time.Minute,
		RatePerPoP: 2,
	}
	if s, e := crowd.Window(); s != time.Minute || e != 2*time.Minute {
		t.Errorf("window = %v..%v", s, e)
	}
	before := c.Engine().Fired()
	if err := crowd.Apply(c); err != nil {
		t.Fatal(err)
	}
	_ = before
	c.Run(3 * time.Minute)
	// The crowd pulls from lhr: lhr's host must have opened extra
	// outbound connections beyond probe traffic.
	h, _ := c.Host("lhr")
	_ = h
	c.Stop()

	// Validation paths.
	if err := (FlashCrowd{Target: "nope", At: 0, For: time.Second, RatePerPoP: 1}).Apply(c); err == nil {
		t.Error("unknown target accepted")
	}
	if err := (FlashCrowd{Target: "lhr"}).Apply(c); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestFlashCrowdIncreasesTargetLoad(t *testing.T) {
	transfers := func(withCrowd bool) uint64 {
		c := newSmallCluster(t, false, 44)
		if withCrowd {
			if err := (FlashCrowd{Target: "lhr", At: 30 * time.Second, For: time.Minute, RatePerPoP: 3}).Apply(c); err != nil {
				t.Fatal(err)
			}
		}
		c.Run(2 * time.Minute)
		defer c.Stop()
		return c.Engine().Fired()
	}
	if base, crowd := transfers(false), transfers(true); crowd <= base {
		t.Errorf("crowd events %d <= baseline %d", crowd, base)
	}
}

func TestRegionalDegradationScenario(t *testing.T) {
	c := newSmallCluster(t, false, 45)
	deg := RegionalDegradation{
		PoP:          "nrt",
		At:           30 * time.Second,
		For:          time.Minute,
		LossRate:     0.3,
		BaselineLoss: 0.001,
	}
	if err := deg.Apply(c); err != nil {
		t.Fatal(err)
	}

	// During the episode, transfers to nrt are lossy.
	var during netsim.TransferResult
	_ = c.ScheduleAt(45*time.Second, func() {
		_ = c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { during = r })
	})
	// Afterwards the path heals.
	var after netsim.TransferResult
	_ = c.ScheduleAt(2*time.Minute, func() {
		_ = c.InjectTransfer("lhr", "nrt", 512*1024, func(r netsim.TransferResult) { after = r })
	})
	c.Run(4 * time.Minute)
	c.Stop()
	if during.Retransmits == 0 {
		t.Error("no retransmits during the degradation window")
	}
	if after.Retransmits >= during.Retransmits {
		t.Errorf("after-heal retransmits %d >= during %d", after.Retransmits, during.Retransmits)
	}

	if err := (RegionalDegradation{PoP: "nope", For: time.Second, LossRate: 0.1}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
	if err := (RegionalDegradation{PoP: "nrt", For: time.Second, LossRate: 2}).Apply(c); err == nil {
		t.Error("loss >= 1 accepted")
	}
}

func TestRollingRebootsScenario(t *testing.T) {
	c, err := NewCluster(Config{
		PoPs:    smallTopology(),
		Seed:    46,
		Riptide: RiptideOptions{Enabled: true},
		Traffic: TrafficOptions{
			ProbeInterval: 20 * time.Second,
			OrganicRates:  map[string]float64{"lhr": 2, "jfk": 2, "fra": 2, "nrt": 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Minute)
	agentsBefore := map[string]bool{}
	for _, p := range c.PoPs() {
		agentsBefore[p.Name] = c.Agent(p.Name) != nil
	}

	wave := RollingReboots{
		PoPs:     []string{"lhr", "fra"},
		Start:    10 * time.Second,
		Interval: 30 * time.Second,
	}
	if s, e := wave.Window(); s != 10*time.Second || e != 70*time.Second {
		t.Errorf("window = %v..%v", s, e)
	}
	lhrBefore := c.Agent("lhr")
	if err := wave.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Minute)
	if c.Agent("lhr") == lhrBefore {
		t.Error("lhr agent not replaced by rolling reboot")
	}
	// The rebooted PoPs relearn afterwards.
	if len(c.Agent("lhr").Entries()) == 0 {
		t.Error("lhr never relearned after reboot wave")
	}
	c.Stop()

	if err := (RollingReboots{}).Apply(c); err == nil {
		t.Error("empty PoP list accepted")
	}
	if err := (RollingReboots{PoPs: []string{"lhr"}}).Apply(c); err == nil {
		t.Error("zero interval accepted")
	}
	if err := (RollingReboots{PoPs: []string{"nope"}, Interval: time.Second}).Apply(c); err == nil {
		t.Error("unknown PoP accepted")
	}
}

func TestScenarioMetadata(t *testing.T) {
	crowd := FlashCrowd{Target: "lhr"}
	if crowd.Name() != "flash-crowd" {
		t.Errorf("name = %q", crowd.Name())
	}
	if got := crowd.AffectedPoPs(); len(got) != 1 || got[0] != "lhr" {
		t.Errorf("affected = %v", got)
	}

	deg := RegionalDegradation{PoP: "nrt", At: time.Minute, For: time.Minute}
	if deg.Name() != "regional-degradation" {
		t.Errorf("name = %q", deg.Name())
	}
	if s, e := deg.Window(); s != time.Minute || e != 2*time.Minute {
		t.Errorf("window = %v..%v", s, e)
	}
	if got := deg.AffectedPoPs(); len(got) != 1 || got[0] != "nrt" {
		t.Errorf("affected = %v", got)
	}

	wave := RollingReboots{PoPs: []string{"a", "b"}, Interval: time.Second}
	if wave.Name() != "rolling-reboots" {
		t.Errorf("name = %q", wave.Name())
	}
	got := wave.AffectedPoPs()
	if len(got) != 2 {
		t.Fatalf("affected = %v", got)
	}
	got[0] = "mutated"
	if wave.PoPs[0] != "a" {
		t.Error("AffectedPoPs result aliases internal slice")
	}
	empty := RollingReboots{}
	if s, e := empty.Window(); s != 0 || e != 0 {
		t.Errorf("empty window = %v..%v", s, e)
	}
}

func TestRTTBucketString(t *testing.T) {
	if BucketClose.String() != "<50ms" || BucketVeryFar.String() != ">150ms" {
		t.Error("bucket names wrong")
	}
	if RTTBucket(99).String() == "" {
		t.Error("unknown bucket empty")
	}
}
