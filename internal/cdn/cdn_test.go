package cdn

import (
	"sort"
	"testing"
	"time"

	"riptide/internal/kernel"
	"riptide/internal/stats"
)

func TestDefaultTopologyMatchesTableII(t *testing.T) {
	pops := DefaultTopology()
	if len(pops) != 34 {
		t.Fatalf("PoP count = %d, want 34", len(pops))
	}
	census := Census(pops)
	want := map[Continent]int{
		Europe:       10,
		NorthAmerica: 11,
		SouthAmerica: 1,
		Asia:         9,
		Oceania:      3,
	}
	for cont, n := range want {
		if census[cont] != n {
			t.Errorf("%v = %d PoPs, want %d (Table II)", cont, census[cont], n)
		}
	}
}

func TestTopologyUniqueNamesAndAddrs(t *testing.T) {
	pops := DefaultTopology()
	names := make(map[string]bool)
	addrs := make(map[string]bool)
	for _, p := range pops {
		if names[p.Name] {
			t.Errorf("duplicate PoP name %q", p.Name)
		}
		names[p.Name] = true
		if addrs[p.Addr.String()] {
			t.Errorf("duplicate PoP addr %v", p.Addr)
		}
		addrs[p.Addr.String()] = true
		if !p.Addr.IsValid() {
			t.Errorf("PoP %s has invalid addr", p.Name)
		}
		if p.Prefix().Bits() != 24 {
			t.Errorf("PoP %s prefix = %v, want /24", p.Name, p.Prefix())
		}
	}
}

func TestContinentString(t *testing.T) {
	if Europe.String() != "Europe" || NorthAmerica.String() != "North America" {
		t.Error("continent names wrong")
	}
	if Continent(99).String() == "" {
		t.Error("unknown continent empty")
	}
}

// TestRTTDistributionMatchesFigure5 checks the headline statistic: 50% of
// inter-PoP links have RTT > 125 ms.
func TestRTTDistributionMatchesFigure5(t *testing.T) {
	rtts := PairRTTs(DefaultTopology())
	if len(rtts) != 34*33/2 {
		t.Fatalf("pair count = %d", len(rtts))
	}
	vals := make([]float64, len(rtts))
	for i, r := range rtts {
		vals[i] = float64(r.Milliseconds())
	}
	c := stats.FromSamples(vals)
	med, err := c.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med <= 125 {
		t.Errorf("median inter-PoP RTT = %vms, paper reports > 125ms", med)
	}
	if med > 250 {
		t.Errorf("median inter-PoP RTT = %vms, implausibly high", med)
	}
}

func TestRTTBetweenSymmetricAndPositive(t *testing.T) {
	pops := DefaultTopology()
	a, b := pops[0], pops[23] // London <-> Tokyo
	ab, ba := RTTBetween(a, b), RTTBetween(b, a)
	if ab != ba {
		t.Errorf("RTT asymmetric: %v vs %v", ab, ba)
	}
	if ab < 100*time.Millisecond || ab > 500*time.Millisecond {
		t.Errorf("London-Tokyo RTT = %v, implausible", ab)
	}
	if self := RTTBetween(a, a); self < minRTT {
		t.Errorf("self RTT = %v below floor", self)
	}
}

func TestBucketFor(t *testing.T) {
	tests := []struct {
		rtt  time.Duration
		want RTTBucket
	}{
		{10 * time.Millisecond, BucketClose},
		{50 * time.Millisecond, BucketClose},
		{51 * time.Millisecond, BucketMedium},
		{100 * time.Millisecond, BucketMedium},
		{101 * time.Millisecond, BucketFar},
		{150 * time.Millisecond, BucketFar},
		{151 * time.Millisecond, BucketVeryFar},
		{400 * time.Millisecond, BucketVeryFar},
	}
	for _, tt := range tests {
		if got := BucketFor(tt.rtt); got != tt.want {
			t.Errorf("BucketFor(%v) = %v, want %v", tt.rtt, got, tt.want)
		}
	}
	if len(AllBuckets()) != 4 {
		t.Error("AllBuckets != 4")
	}
}

// smallTopology returns a 4-PoP subset for fast cluster tests, spanning all
// RTT buckets.
func smallTopology() []PoP {
	pops := DefaultTopology()
	pick := map[string]bool{"lhr": true, "fra": true, "jfk": true, "nrt": true}
	var out []PoP
	for _, p := range pops {
		if pick[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

func newSmallCluster(t *testing.T, riptide bool, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		PoPs:     smallTopology(),
		Seed:     seed,
		LossRate: 0.001,
		Riptide:  RiptideOptions{Enabled: riptide},
		Traffic: TrafficOptions{
			ProbeInterval: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{PoPs: smallTopology()[:1]}); err == nil {
		t.Error("single-PoP cluster accepted")
	}
	if _, err := NewCluster(Config{PoPs: smallTopology(), Traffic: TrafficOptions{ProbeInterval: -1}}); err == nil {
		t.Error("negative probe interval accepted")
	}
	if _, err := NewCluster(Config{PoPs: smallTopology(), Traffic: TrafficOptions{CloseAfterTransferProb: 2}}); err == nil {
		t.Error("probability > 1 accepted")
	}
	dup := smallTopology()
	dup[1].Name = dup[0].Name
	if _, err := NewCluster(Config{PoPs: dup}); err == nil {
		t.Error("duplicate PoP accepted")
	}
}

func TestClusterProbesRecorded(t *testing.T) {
	c := newSmallCluster(t, false, 1)
	c.Run(5 * time.Minute)
	c.Stop()
	probes := c.ProbeRecords()
	if len(probes) == 0 {
		t.Fatal("no probes recorded")
	}
	// 4 PoPs, 12 ordered pairs, 3 sizes, ~10 rounds in 5min.
	if len(probes) < 12*3*5 {
		t.Errorf("probe count = %d, want >= 180", len(probes))
	}
	sizes := map[int]bool{}
	for _, p := range probes {
		sizes[p.SizeBytes] = true
		if p.Elapsed <= 0 {
			t.Fatalf("probe with non-positive elapsed: %+v", p)
		}
		if p.Rounds < 1 {
			t.Fatalf("probe with zero rounds: %+v", p)
		}
		if p.Bucket != BucketFor(p.RTT) {
			t.Fatalf("bucket mismatch: %+v", p)
		}
	}
	for _, s := range []int{10240, 51200, 102400} {
		if !sizes[s] {
			t.Errorf("no probes of size %d", s)
		}
	}
}

func TestControlClusterUsesDefaultIW(t *testing.T) {
	c := newSmallCluster(t, false, 2)
	c.Run(3 * time.Minute)
	c.Stop()
	for _, p := range c.ProbeRecords() {
		if p.InitCwnd != kernel.DefaultInitCwnd {
			t.Fatalf("control probe with initcwnd %d: %+v", p.InitCwnd, p)
		}
	}
}

func TestRiptideClusterLearnsWindows(t *testing.T) {
	c := newSmallCluster(t, true, 3)
	c.Run(10 * time.Minute)

	// Agents must have learned entries for active destinations. Inspect
	// before Stop: closing an agent withdraws its routes and entries.
	agent := c.Agent("lhr")
	if agent == nil {
		t.Fatal("no agent for lhr")
	}
	if entries := agent.Entries(); len(entries) == 0 {
		t.Error("lhr agent learned nothing")
	}
	c.Stop()

	// Some fresh connections must have started above the default window.
	raised := 0
	fresh := 0
	for _, p := range c.ProbeRecords() {
		if !p.FreshConn {
			continue
		}
		fresh++
		if p.InitCwnd > kernel.DefaultInitCwnd {
			raised++
		}
	}
	if fresh == 0 {
		t.Fatal("no fresh connections (pool churn broken)")
	}
	if raised == 0 {
		t.Error("riptide never raised an initial window on a fresh connection")
	}
}

func TestRiptideImprovesLargeProbes(t *testing.T) {
	meanElapsed := func(riptide bool) map[int]float64 {
		c := newSmallCluster(t, riptide, 4)
		c.Run(15 * time.Minute)
		c.Stop()
		sums := map[int]float64{}
		counts := map[int]float64{}
		for _, p := range c.ProbeRecords() {
			// Skip the first 2 minutes: Riptide warm-up.
			if p.At < 2*time.Minute || !p.FreshConn {
				continue
			}
			sums[p.SizeBytes] += float64(p.Elapsed.Milliseconds())
			counts[p.SizeBytes]++
		}
		out := map[int]float64{}
		for s := range sums {
			out[s] = sums[s] / counts[s]
		}
		return out
	}
	control, riptide := meanElapsed(false), meanElapsed(true)
	if riptide[102400] >= control[102400] {
		t.Errorf("100KB probes: riptide %.1fms >= control %.1fms", riptide[102400], control[102400])
	}
	// 10KB probes fit in the default window: no effect expected (Fig 12).
	if control[10240] > 0 {
		ratio := riptide[10240] / control[10240]
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("10KB probes changed by ratio %.2f, want ~1.0 (paper Fig 12)", ratio)
		}
	}
}

func TestCwndSampling(t *testing.T) {
	c := newSmallCluster(t, true, 5)
	if err := c.StartCwndSampling(0); err == nil {
		t.Error("zero interval accepted")
	}
	if err := c.StartCwndSampling(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Minute)
	c.Stop()
	samples := c.CwndSamples()
	if len(samples) == 0 {
		t.Fatal("no cwnd samples")
	}
	for _, s := range samples {
		if s.Cwnd < 1 {
			t.Fatalf("sample with cwnd %d", s.Cwnd)
		}
	}
}

func TestClusterDeterministicReplay(t *testing.T) {
	run := func() (int, time.Duration) {
		c := newSmallCluster(t, true, 42)
		c.Run(5 * time.Minute)
		c.Stop()
		var total time.Duration
		probes := c.ProbeRecords()
		for _, p := range probes {
			total += p.Elapsed
		}
		return len(probes), total
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Errorf("replay diverged: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
}

func TestOrganicTrafficRaisesWindows(t *testing.T) {
	// Figure 11: a PoP with organic traffic should learn larger windows
	// than a probe-only PoP.
	c, err := NewCluster(Config{
		PoPs:     smallTopology(),
		Seed:     6,
		LossRate: 0.001,
		Riptide:  RiptideOptions{Enabled: true},
		Traffic: TrafficOptions{
			ProbeInterval: 30 * time.Second,
			OrganicRates:  map[string]float64{"lhr": 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = c.StartCwndSampling(time.Minute)
	c.Run(15 * time.Minute)
	c.Stop()

	byPoP := map[string][]float64{}
	for _, s := range c.CwndSamples() {
		if s.OpenedAfterStart {
			byPoP[s.Src] = append(byPoP[s.Src], float64(s.Cwnd))
		}
	}
	busy, quiet := byPoP["lhr"], byPoP["jfk"]
	if len(busy) == 0 || len(quiet) == 0 {
		t.Fatalf("missing samples: busy=%d quiet=%d", len(busy), len(quiet))
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if mean(busy) <= mean(quiet) {
		t.Errorf("busy PoP mean cwnd %.1f <= probe-only %.1f (paper Fig 11 expects higher)", mean(busy), mean(quiet))
	}
}

func TestHostAndAgentAccessors(t *testing.T) {
	c := newSmallCluster(t, false, 7)
	if _, err := c.Host("lhr"); err != nil {
		t.Error(err)
	}
	if _, err := c.Host("nope"); err == nil {
		t.Error("unknown PoP accepted")
	}
	if c.Agent("lhr") != nil {
		t.Error("control cluster has agent")
	}
	if len(c.PoPs()) != 4 {
		t.Error("PoPs accessor wrong")
	}
	c.Stop()
}

func TestPairRTTsSorted(t *testing.T) {
	rtts := PairRTTs(smallTopology())
	if len(rtts) != 6 {
		t.Fatalf("pairs = %d, want 6", len(rtts))
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	if rtts[0] <= 0 {
		t.Error("non-positive RTT")
	}
}

func TestMultiHostPoPs(t *testing.T) {
	c, err := NewCluster(Config{
		PoPs:        smallTopology(),
		HostsPerPoP: 3,
		Seed:        21,
		Riptide:     RiptideOptions{Enabled: true},
		Traffic:     TrafficOptions{ProbeInterval: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := c.Hosts("lhr")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Fatalf("hosts = %d, want 3", len(hs))
	}
	seen := map[string]bool{}
	for _, h := range hs {
		if seen[h.Addr().String()] {
			t.Fatalf("duplicate host address %v", h.Addr())
		}
		seen[h.Addr().String()] = true
	}
	if c.HostsPerPoP() != 3 {
		t.Errorf("HostsPerPoP = %d", c.HostsPerPoP())
	}
	if got := len(c.Agents("lhr")); got != 3 {
		t.Errorf("agents = %d, want 3", got)
	}

	c.Run(5 * time.Minute)
	// Every machine probes: 3 hosts x 3 dests x 3 sizes per round.
	probes := c.ProbeRecords()
	if len(probes) == 0 {
		t.Fatal("no probes with multi-host PoPs")
	}
	srcHosts := map[string]bool{}
	for _, p := range probes {
		if p.Src == "lhr" {
			srcHosts[p.SrcHost.String()] = true
		}
	}
	if len(srcHosts) != 3 {
		t.Errorf("probing source hosts = %d, want 3", len(srcHosts))
	}
	c.Stop()
}

func TestMultiHostValidation(t *testing.T) {
	if _, err := NewCluster(Config{PoPs: smallTopology(), HostsPerPoP: -1}); err == nil {
		t.Error("negative hosts accepted")
	}
	if _, err := NewCluster(Config{PoPs: smallTopology(), HostsPerPoP: 300}); err == nil {
		t.Error("oversized hosts accepted")
	}
}

func TestPrefixAggregationAcrossHosts(t *testing.T) {
	// With /24 granularity, one agent aggregates its observations of all
	// machines in a remote PoP into a single route — the paper's
	// "Destinations as Routes" example becomes observable only with
	// multiple hosts per PoP.
	c, err := NewCluster(Config{
		PoPs:        smallTopology(),
		HostsPerPoP: 2,
		Seed:        22,
		Riptide:     RiptideOptions{Enabled: true, PrefixBits: 24},
		Traffic:     TrafficOptions{ProbeInterval: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Minute)
	agent := c.Agent("lhr")
	if agent == nil {
		t.Fatal("no agent")
	}
	for _, e := range agent.Entries() {
		if e.Prefix.Bits() != 24 {
			t.Errorf("entry %v not aggregated to /24", e.Prefix)
		}
	}
	if len(agent.Entries()) == 0 {
		t.Error("agent learned nothing")
	}
	c.Stop()
}

func TestRebootPoPKillsStateAndRecovers(t *testing.T) {
	c, err := NewCluster(Config{
		PoPs:    smallTopology(),
		Seed:    31,
		Riptide: RiptideOptions{Enabled: true},
		Traffic: TrafficOptions{
			ProbeInterval: 30 * time.Second,
			OrganicRates:  map[string]float64{"lhr": 3, "jfk": 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Minute)

	jfkAgent := c.Agent("jfk")
	if len(jfkAgent.Entries()) == 0 {
		t.Fatal("jfk agent learned nothing before reboot")
	}
	jfkHost, _ := c.Host("jfk")
	if jfkHost.RouteCount() == 0 {
		t.Fatal("no routes before reboot")
	}

	closed, err := c.RebootPoP("jfk")
	if err != nil {
		t.Fatal(err)
	}
	if closed == 0 {
		t.Error("reboot closed no connections")
	}
	if jfkHost.ConnCount() != 0 {
		t.Errorf("jfk still has %d connections after reboot", jfkHost.ConnCount())
	}
	if jfkHost.RouteCount() != 0 {
		t.Errorf("jfk still has %d routes after reboot", jfkHost.RouteCount())
	}
	fresh := c.Agent("jfk")
	if fresh == jfkAgent {
		t.Error("agent not replaced by reboot")
	}
	if len(fresh.Entries()) != 0 {
		t.Errorf("fresh agent has %d entries", len(fresh.Entries()))
	}

	// The PoP relearns from post-reboot traffic.
	c.Run(5 * time.Minute)
	if len(fresh.Entries()) == 0 {
		t.Error("rebooted PoP never relearned")
	}
	c.Stop()
}

func TestRebootUnknownPoP(t *testing.T) {
	c := newSmallCluster(t, true, 32)
	if _, err := c.RebootPoP("atlantis"); err == nil {
		t.Error("unknown PoP accepted")
	}
	c.Stop()
}

func TestRebootControlClusterNoAgents(t *testing.T) {
	c := newSmallCluster(t, false, 33)
	c.Run(2 * time.Minute)
	if _, err := c.RebootPoP("lhr"); err != nil {
		t.Fatalf("reboot without agents: %v", err)
	}
	c.Stop()
}
