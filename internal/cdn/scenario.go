package cdn

import (
	"fmt"
	"time"

	"riptide/internal/netsim"
)

// This file provides operational scenarios — scripted fault and traffic
// events layered onto a running Cluster — so experiments can measure how
// Riptide behaves through the incidents the paper's Section II motivates:
// load shifts, path congestion, and state-destroying maintenance.

// SetPoPPathLoss sets the random loss rate on every path into and out of
// the named PoP, the blast radius of a regional network degradation.
func (c *Cluster) SetPoPPathLoss(name string, lossRate float64) error {
	hs, ok := c.hosts[name]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", name)
	}
	for _, other := range c.pops {
		if other.Name == name {
			continue
		}
		for _, h := range hs {
			for _, oh := range c.hosts[other.Name] {
				if err := c.net.SetPathLoss(h.Addr(), oh.Addr(), lossRate); err != nil {
					return err
				}
				if err := c.net.SetPathLoss(oh.Addr(), h.Addr(), lossRate); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// InjectTransfer sends one application transfer between PoPs through the
// cluster's connection pools, exactly like organic traffic. done may be nil.
func (c *Cluster) InjectTransfer(srcPoP, dstPoP string, bytes int64, done func(netsim.TransferResult)) error {
	src, ok := c.byName[srcPoP]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", srcPoP)
	}
	dst, ok := c.byName[dstPoP]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", dstPoP)
	}
	if src.Name == dst.Name {
		return fmt.Errorf("cdn: transfer within PoP %q", srcPoP)
	}
	srcHost := c.pickHost(src)
	dstHost := c.pickHost(dst)
	conn, _, err := c.grabConn(srcHost.Addr(), dstHost.Addr())
	if err != nil {
		return err
	}
	err = conn.Transfer(bytes, func(r netsim.TransferResult) {
		if done != nil {
			done(r)
		}
		c.releaseConn(conn)
	})
	if err != nil {
		conn.Close()
		return err
	}
	return nil
}

// ScheduleAt runs fn at the given offset from the current simulated time.
func (c *Cluster) ScheduleAt(after time.Duration, fn func()) error {
	_, err := c.engine.Schedule(after, fn)
	return err
}

// Scenario is a scripted sequence of events applied to a cluster before it
// runs. Apply installs the events; the caller then drives Cluster.Run.
type Scenario interface {
	// Name identifies the scenario in reports.
	Name() string
	// Apply schedules the scenario's events onto the cluster.
	Apply(c *Cluster) error
	// Window returns when the disruption is active, for phase-based
	// analysis: [start, end) in simulated time from Apply.
	Window() (start, end time.Duration)
	// AffectedPoPs names the sites the disruption touches, so analyses
	// can focus on traffic involving them.
	AffectedPoPs() []string
}

// FlashCrowd models a sudden burst of extra transfers from every PoP toward
// one target PoP — a viral object or a failed-over tenant.
type FlashCrowd struct {
	// Target is the PoP absorbing the crowd.
	Target string
	// At is when the crowd arrives; For is how long it lasts.
	At, For time.Duration
	// RatePerPoP is extra transfers per second from each other PoP.
	RatePerPoP float64
	// SizeBytes is the object size fetched; defaults to 100 KB.
	SizeBytes int64
}

// Name implements Scenario.
func (f FlashCrowd) Name() string { return "flash-crowd" }

// Window implements Scenario.
func (f FlashCrowd) Window() (time.Duration, time.Duration) { return f.At, f.At + f.For }

// AffectedPoPs implements Scenario.
func (f FlashCrowd) AffectedPoPs() []string { return []string{f.Target} }

// Apply implements Scenario.
func (f FlashCrowd) Apply(c *Cluster) error {
	if _, ok := c.byName[f.Target]; !ok {
		return fmt.Errorf("cdn: flash crowd target %q unknown", f.Target)
	}
	if f.RatePerPoP <= 0 || f.For <= 0 {
		return fmt.Errorf("cdn: flash crowd needs positive rate and duration")
	}
	size := f.SizeBytes
	if size == 0 {
		size = 100 * 1024
	}
	// Fixed-interval injections approximate the burst deterministically.
	gap := time.Duration(float64(time.Second) / f.RatePerPoP)
	for _, src := range c.pops {
		if src.Name == f.Target {
			continue
		}
		srcName := src.Name
		for off := f.At; off < f.At+f.For; off += gap {
			if err := c.ScheduleAt(off, func() {
				// Fetch FROM the target: the crowd pulls the
				// object, so the hot data flows target -> edge.
				_ = c.InjectTransfer(f.Target, srcName, size, nil)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// RegionalDegradation raises loss on every path touching one PoP for a
// window, then restores the baseline.
type RegionalDegradation struct {
	// PoP is the degraded site.
	PoP string
	// At / For bound the episode.
	At, For time.Duration
	// LossRate is the degraded per-segment loss.
	LossRate float64
	// BaselineLoss is restored afterwards (the cluster's configured WAN
	// loss rate).
	BaselineLoss float64
}

// Name implements Scenario.
func (d RegionalDegradation) Name() string { return "regional-degradation" }

// Window implements Scenario.
func (d RegionalDegradation) Window() (time.Duration, time.Duration) { return d.At, d.At + d.For }

// AffectedPoPs implements Scenario.
func (d RegionalDegradation) AffectedPoPs() []string { return []string{d.PoP} }

// Apply implements Scenario.
func (d RegionalDegradation) Apply(c *Cluster) error {
	if _, ok := c.byName[d.PoP]; !ok {
		return fmt.Errorf("cdn: degradation PoP %q unknown", d.PoP)
	}
	if d.For <= 0 || d.LossRate <= 0 || d.LossRate >= 1 {
		return fmt.Errorf("cdn: degradation needs positive duration and loss in (0,1)")
	}
	if err := c.ScheduleAt(d.At, func() {
		_ = c.SetPoPPathLoss(d.PoP, d.LossRate)
	}); err != nil {
		return err
	}
	return c.ScheduleAt(d.At+d.For, func() {
		_ = c.SetPoPPathLoss(d.PoP, d.BaselineLoss)
	})
}

// RollingReboots reboots a list of PoPs one after another — a maintenance
// wave, the paper's Section II-A state-loss event at fleet scale.
type RollingReboots struct {
	// PoPs reboot in order.
	PoPs []string
	// Start is the first reboot; Interval separates subsequent ones.
	Start, Interval time.Duration
}

// Name implements Scenario.
func (r RollingReboots) Name() string { return "rolling-reboots" }

// Window implements Scenario.
func (r RollingReboots) Window() (time.Duration, time.Duration) {
	if len(r.PoPs) == 0 {
		return r.Start, r.Start
	}
	return r.Start, r.Start + time.Duration(len(r.PoPs)-1)*r.Interval + r.Interval
}

// AffectedPoPs implements Scenario.
func (r RollingReboots) AffectedPoPs() []string {
	out := make([]string, len(r.PoPs))
	copy(out, r.PoPs)
	return out
}

// Apply implements Scenario.
func (r RollingReboots) Apply(c *Cluster) error {
	if len(r.PoPs) == 0 {
		return fmt.Errorf("cdn: rolling reboots needs at least one PoP")
	}
	if r.Interval <= 0 {
		return fmt.Errorf("cdn: rolling reboots needs a positive interval")
	}
	for i, name := range r.PoPs {
		if _, ok := c.byName[name]; !ok {
			return fmt.Errorf("cdn: reboot PoP %q unknown", name)
		}
		name := name
		if err := c.ScheduleAt(r.Start+time.Duration(i)*r.Interval, func() {
			_, _ = c.RebootPoP(name)
		}); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ Scenario = FlashCrowd{}
	_ Scenario = RegionalDegradation{}
	_ Scenario = RollingReboots{}
)
