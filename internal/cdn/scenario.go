package cdn

import (
	"fmt"
	"time"

	"riptide/internal/kernel"
	"riptide/internal/netsim"
)

// This file provides operational scenarios — scripted fault and traffic
// events layered onto a running Cluster — so experiments can measure how
// Riptide behaves through the incidents the paper's Section II motivates:
// load shifts, path congestion, and state-destroying maintenance.

// SetPoPPathLoss sets the random loss rate on every path into and out of
// the named PoP, the blast radius of a regional network degradation.
func (c *Cluster) SetPoPPathLoss(name string, lossRate float64) error {
	hs, ok := c.hosts[name]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", name)
	}
	for _, other := range c.pops {
		if other.Name == name {
			continue
		}
		for _, h := range hs {
			for _, oh := range c.hosts[other.Name] {
				if err := c.net.SetPathLoss(h.Addr(), oh.Addr(), lossRate); err != nil {
					return err
				}
				if err := c.net.SetPathLoss(oh.Addr(), h.Addr(), lossRate); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SetPoPPathCapacity sets the bottleneck capacity (segments per RTT, 0 =
// unlimited) on every path into and out of the named PoP — a capacity cut
// with site-wide blast radius, such as a backbone failure at the site's edge.
func (c *Cluster) SetPoPPathCapacity(name string, segments int) error {
	hs, ok := c.hosts[name]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", name)
	}
	for _, other := range c.pops {
		if other.Name == name {
			continue
		}
		for _, h := range hs {
			for _, oh := range c.hosts[other.Name] {
				if err := c.net.SetPathCapacity(h.Addr(), oh.Addr(), segments); err != nil {
					return err
				}
				if err := c.net.SetPathCapacity(oh.Addr(), h.Addr(), segments); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pairHosts resolves two distinct PoPs to their machine lists.
func (c *Cluster) pairHosts(a, b string) (ha, hb []*kernel.Host, err error) {
	ha, ok := c.hosts[a]
	if !ok {
		return nil, nil, fmt.Errorf("cdn: unknown PoP %q", a)
	}
	hb, ok = c.hosts[b]
	if !ok {
		return nil, nil, fmt.Errorf("cdn: unknown PoP %q", b)
	}
	if a == b {
		return nil, nil, fmt.Errorf("cdn: PoP pair needs two distinct PoPs, got %q twice", a)
	}
	return ha, hb, nil
}

// SetPoPPairCapacity sets the bottleneck capacity on every path between two
// PoPs, in both directions — a cut confined to one inter-site link.
func (c *Cluster) SetPoPPairCapacity(a, b string, segments int) error {
	ha, hb, err := c.pairHosts(a, b)
	if err != nil {
		return err
	}
	for _, x := range ha {
		for _, y := range hb {
			if err := c.net.SetPathCapacity(x.Addr(), y.Addr(), segments); err != nil {
				return err
			}
			if err := c.net.SetPathCapacity(y.Addr(), x.Addr(), segments); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetPoPPairRTT sets the round-trip time on every path between two PoPs, in
// both directions — a route flap onto a longer (or shorter) backbone path.
func (c *Cluster) SetPoPPairRTT(a, b string, rtt time.Duration) error {
	ha, hb, err := c.pairHosts(a, b)
	if err != nil {
		return err
	}
	for _, x := range ha {
		for _, y := range hb {
			if err := c.net.SetPathRTT(x.Addr(), y.Addr(), rtt); err != nil {
				return err
			}
			if err := c.net.SetPathRTT(y.Addr(), x.Addr(), rtt); err != nil {
				return err
			}
		}
	}
	return nil
}

// BaselinePairRTT returns the topology-derived RTT between two PoPs — the
// value paths between them were built with, and the one flaps restore.
func (c *Cluster) BaselinePairRTT(a, b string) (time.Duration, error) {
	pa, ok := c.byName[a]
	if !ok {
		return 0, fmt.Errorf("cdn: unknown PoP %q", a)
	}
	pb, ok := c.byName[b]
	if !ok {
		return 0, fmt.Errorf("cdn: unknown PoP %q", b)
	}
	return RTTBetween(pa, pb), nil
}

// PartitionPoPs blocks (or unblocks) every path between two PoPs. Blocking
// also force-closes the connections currently crossing the partition, like a
// real split kills established flows; it returns how many closed.
func (c *Cluster) PartitionPoPs(a, b string, blocked bool) (int, error) {
	ha, hb, err := c.pairHosts(a, b)
	if err != nil {
		return 0, err
	}
	closed := 0
	for _, x := range ha {
		for _, y := range hb {
			if err := c.net.SetPathBlocked(x.Addr(), y.Addr(), blocked); err != nil {
				return closed, err
			}
			if err := c.net.SetPathBlocked(y.Addr(), x.Addr(), blocked); err != nil {
				return closed, err
			}
			if blocked {
				closed += c.net.CloseConnsBetween(x.Addr(), y.Addr())
			}
		}
	}
	return closed, nil
}

// InjectTransfer sends one application transfer between PoPs through the
// cluster's connection pools, exactly like organic traffic. done may be nil.
func (c *Cluster) InjectTransfer(srcPoP, dstPoP string, bytes int64, done func(netsim.TransferResult)) error {
	src, ok := c.byName[srcPoP]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", srcPoP)
	}
	dst, ok := c.byName[dstPoP]
	if !ok {
		return fmt.Errorf("cdn: unknown PoP %q", dstPoP)
	}
	if src.Name == dst.Name {
		return fmt.Errorf("cdn: transfer within PoP %q", srcPoP)
	}
	srcHost := c.pickHost(src)
	dstHost := c.pickHost(dst)
	conn, _, err := c.grabConn(srcHost.Addr(), dstHost.Addr())
	if err != nil {
		return err
	}
	err = conn.Transfer(bytes, func(r netsim.TransferResult) {
		if done != nil {
			done(r)
		}
		c.releaseConn(conn)
	})
	if err != nil {
		conn.Close()
		return err
	}
	return nil
}

// ScheduleAt runs fn at the given offset from the current simulated time.
func (c *Cluster) ScheduleAt(after time.Duration, fn func()) error {
	_, err := c.engine.Schedule(after, fn)
	return err
}

// Scenario is a scripted sequence of events applied to a cluster before it
// runs. Apply installs the events; the caller then drives Cluster.Run.
type Scenario interface {
	// Name identifies the scenario in reports.
	Name() string
	// Apply schedules the scenario's events onto the cluster.
	Apply(c *Cluster) error
	// Window returns when the disruption is active, for phase-based
	// analysis: [start, end) in simulated time from Apply.
	Window() (start, end time.Duration)
	// AffectedPoPs names the sites the disruption touches, so analyses
	// can focus on traffic involving them.
	AffectedPoPs() []string
}

// FlashCrowd models a sudden burst of extra transfers from every PoP toward
// one target PoP — a viral object or a failed-over tenant.
type FlashCrowd struct {
	// Target is the PoP absorbing the crowd.
	Target string
	// At is when the crowd arrives; For is how long it lasts.
	At, For time.Duration
	// RatePerPoP is extra transfers per second from each other PoP.
	RatePerPoP float64
	// SizeBytes is the object size fetched; defaults to 100 KB.
	SizeBytes int64
}

// Name implements Scenario.
func (f FlashCrowd) Name() string { return "flash-crowd" }

// Window implements Scenario.
func (f FlashCrowd) Window() (time.Duration, time.Duration) { return f.At, f.At + f.For }

// AffectedPoPs implements Scenario.
func (f FlashCrowd) AffectedPoPs() []string { return []string{f.Target} }

// Apply implements Scenario.
func (f FlashCrowd) Apply(c *Cluster) error {
	if _, ok := c.byName[f.Target]; !ok {
		return fmt.Errorf("cdn: flash crowd target %q unknown", f.Target)
	}
	if f.RatePerPoP <= 0 || f.For <= 0 {
		return fmt.Errorf("cdn: flash crowd needs positive rate and duration")
	}
	if f.At < 0 {
		return fmt.Errorf("cdn: flash crowd start %v must not be negative", f.At)
	}
	if f.SizeBytes < 0 {
		return fmt.Errorf("cdn: flash crowd size %d bytes must not be negative", f.SizeBytes)
	}
	size := f.SizeBytes
	if size == 0 {
		size = 100 * 1024
	}
	// Fixed-interval injections approximate the burst deterministically.
	gap := time.Duration(float64(time.Second) / f.RatePerPoP)
	for _, src := range c.pops {
		if src.Name == f.Target {
			continue
		}
		srcName := src.Name
		for off := f.At; off < f.At+f.For; off += gap {
			if err := c.ScheduleAt(off, func() {
				// Fetch FROM the target: the crowd pulls the
				// object, so the hot data flows target -> edge.
				_ = c.InjectTransfer(f.Target, srcName, size, nil)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// RegionalDegradation raises loss on every path touching one PoP for a
// window, then restores the baseline.
type RegionalDegradation struct {
	// PoP is the degraded site.
	PoP string
	// At / For bound the episode.
	At, For time.Duration
	// LossRate is the degraded per-segment loss.
	LossRate float64
	// BaselineLoss is restored afterwards (the cluster's configured WAN
	// loss rate).
	BaselineLoss float64
}

// Name implements Scenario.
func (d RegionalDegradation) Name() string { return "regional-degradation" }

// Window implements Scenario.
func (d RegionalDegradation) Window() (time.Duration, time.Duration) { return d.At, d.At + d.For }

// AffectedPoPs implements Scenario.
func (d RegionalDegradation) AffectedPoPs() []string { return []string{d.PoP} }

// Apply implements Scenario.
func (d RegionalDegradation) Apply(c *Cluster) error {
	if _, ok := c.byName[d.PoP]; !ok {
		return fmt.Errorf("cdn: degradation PoP %q unknown", d.PoP)
	}
	if d.For <= 0 || d.LossRate <= 0 || d.LossRate >= 1 {
		return fmt.Errorf("cdn: degradation needs positive duration and loss in (0,1)")
	}
	if err := c.ScheduleAt(d.At, func() {
		_ = c.SetPoPPathLoss(d.PoP, d.LossRate)
	}); err != nil {
		return err
	}
	return c.ScheduleAt(d.At+d.For, func() {
		_ = c.SetPoPPathLoss(d.PoP, d.BaselineLoss)
	})
}

// RollingReboots reboots a list of PoPs one after another — a maintenance
// wave, the paper's Section II-A state-loss event at fleet scale.
type RollingReboots struct {
	// PoPs reboot in order.
	PoPs []string
	// Start is the first reboot; Interval separates subsequent ones.
	Start, Interval time.Duration
}

// Name implements Scenario.
func (r RollingReboots) Name() string { return "rolling-reboots" }

// Window implements Scenario.
func (r RollingReboots) Window() (time.Duration, time.Duration) {
	if len(r.PoPs) == 0 {
		return r.Start, r.Start
	}
	return r.Start, r.Start + time.Duration(len(r.PoPs)-1)*r.Interval + r.Interval
}

// AffectedPoPs implements Scenario.
func (r RollingReboots) AffectedPoPs() []string {
	out := make([]string, len(r.PoPs))
	copy(out, r.PoPs)
	return out
}

// Apply implements Scenario.
func (r RollingReboots) Apply(c *Cluster) error {
	if len(r.PoPs) == 0 {
		return fmt.Errorf("cdn: rolling reboots needs at least one PoP")
	}
	if r.Interval <= 0 {
		return fmt.Errorf("cdn: rolling reboots needs a positive interval")
	}
	for i, name := range r.PoPs {
		if _, ok := c.byName[name]; !ok {
			return fmt.Errorf("cdn: reboot PoP %q unknown", name)
		}
		name := name
		if err := c.ScheduleAt(r.Start+time.Duration(i)*r.Interval, func() {
			_, _ = c.RebootPoP(name)
		}); err != nil {
			return err
		}
	}
	return nil
}

// CapacityCut collapses the bottleneck capacity of the WAN paths touching
// one PoP — the mid-run event the safety governor exists for. With From set
// the cut is confined to the From<->PoP pair; otherwise every path in and out
// of the PoP shrinks. A zero For makes the cut permanent.
type CapacityCut struct {
	// PoP is the site whose paths are cut.
	PoP string
	// From, when non-empty, restricts the cut to the From<->PoP pair.
	From string
	// At is when capacity collapses; For is how long (0 = permanent).
	At, For time.Duration
	// Segments is the post-cut capacity (segments per RTT, >= 1).
	Segments int
	// RestoreSegments is reinstated at At+For when For > 0 (0 = unlimited).
	RestoreSegments int
}

// Name implements Scenario.
func (cc CapacityCut) Name() string { return "capacity-cut" }

// Window implements Scenario.
func (cc CapacityCut) Window() (time.Duration, time.Duration) { return cc.At, cc.At + cc.For }

// AffectedPoPs implements Scenario.
func (cc CapacityCut) AffectedPoPs() []string {
	if cc.From != "" {
		return []string{cc.PoP, cc.From}
	}
	return []string{cc.PoP}
}

func (cc CapacityCut) set(c *Cluster, segments int) error {
	if cc.From != "" {
		return c.SetPoPPairCapacity(cc.From, cc.PoP, segments)
	}
	return c.SetPoPPathCapacity(cc.PoP, segments)
}

// Apply implements Scenario.
func (cc CapacityCut) Apply(c *Cluster) error {
	if _, ok := c.byName[cc.PoP]; !ok {
		return fmt.Errorf("cdn: capacity cut PoP %q unknown", cc.PoP)
	}
	if cc.From != "" {
		if _, ok := c.byName[cc.From]; !ok {
			return fmt.Errorf("cdn: capacity cut PoP %q unknown", cc.From)
		}
		if cc.From == cc.PoP {
			return fmt.Errorf("cdn: capacity cut pair needs two distinct PoPs, got %q twice", cc.PoP)
		}
	}
	if cc.At < 0 || cc.For < 0 {
		return fmt.Errorf("cdn: capacity cut times must not be negative")
	}
	if cc.Segments < 1 {
		return fmt.Errorf("cdn: capacity cut to %d segments/RTT must be >= 1", cc.Segments)
	}
	if cc.RestoreSegments < 0 {
		return fmt.Errorf("cdn: capacity restore %d segments/RTT must be >= 0", cc.RestoreSegments)
	}
	if err := c.ScheduleAt(cc.At, func() {
		_ = cc.set(c, cc.Segments)
	}); err != nil {
		return err
	}
	if cc.For == 0 {
		return nil
	}
	return c.ScheduleAt(cc.At+cc.For, func() {
		_ = cc.set(c, cc.RestoreSegments)
	})
}

// PathFlap models a route change between two PoPs: for a window, the paths
// between them run at a multiple of their topology RTT (traffic detoured onto
// a longer backbone route), then snap back.
type PathFlap struct {
	// A and B are the PoPs whose interconnect flaps.
	A, B string
	// At / For bound the episode.
	At, For time.Duration
	// RTTScale multiplies the pair's baseline RTT during the window
	// (e.g. 2.0 = detour twice as long). Must be positive.
	RTTScale float64
}

// Name implements Scenario.
func (f PathFlap) Name() string { return "path-flap" }

// Window implements Scenario.
func (f PathFlap) Window() (time.Duration, time.Duration) { return f.At, f.At + f.For }

// AffectedPoPs implements Scenario.
func (f PathFlap) AffectedPoPs() []string { return []string{f.A, f.B} }

// Apply implements Scenario.
func (f PathFlap) Apply(c *Cluster) error {
	base, err := c.BaselinePairRTT(f.A, f.B)
	if err != nil {
		return err
	}
	if f.A == f.B {
		return fmt.Errorf("cdn: path flap needs two distinct PoPs, got %q twice", f.A)
	}
	if f.At < 0 || f.For <= 0 {
		return fmt.Errorf("cdn: path flap needs a non-negative start and positive duration")
	}
	if f.RTTScale <= 0 {
		return fmt.Errorf("cdn: path flap RTT scale %v must be positive", f.RTTScale)
	}
	flapped := time.Duration(float64(base) * f.RTTScale)
	if flapped <= 0 {
		return fmt.Errorf("cdn: path flap RTT scale %v underflows the %v baseline", f.RTTScale, base)
	}
	if err := c.ScheduleAt(f.At, func() {
		_ = c.SetPoPPairRTT(f.A, f.B, flapped)
	}); err != nil {
		return err
	}
	return c.ScheduleAt(f.At+f.For, func() {
		_ = c.SetPoPPairRTT(f.A, f.B, base)
	})
}

// PeerPartition severs connectivity between two PoPs for a window: existing
// connections between them die, new opens fail, and traffic resumes when the
// partition heals.
type PeerPartition struct {
	// A and B are the partitioned PoPs.
	A, B string
	// At / For bound the partition.
	At, For time.Duration
}

// Name implements Scenario.
func (p PeerPartition) Name() string { return "peer-partition" }

// Window implements Scenario.
func (p PeerPartition) Window() (time.Duration, time.Duration) { return p.At, p.At + p.For }

// AffectedPoPs implements Scenario.
func (p PeerPartition) AffectedPoPs() []string { return []string{p.A, p.B} }

// Apply implements Scenario.
func (p PeerPartition) Apply(c *Cluster) error {
	if _, _, err := c.pairHosts(p.A, p.B); err != nil {
		return err
	}
	if p.At < 0 || p.For <= 0 {
		return fmt.Errorf("cdn: peer partition needs a non-negative start and positive duration")
	}
	if err := c.ScheduleAt(p.At, func() {
		_, _ = c.PartitionPoPs(p.A, p.B, true)
	}); err != nil {
		return err
	}
	return c.ScheduleAt(p.At+p.For, func() {
		_, _ = c.PartitionPoPs(p.A, p.B, false)
	})
}

var (
	_ Scenario = FlashCrowd{}
	_ Scenario = RegionalDegradation{}
	_ Scenario = RollingReboots{}
	_ Scenario = CapacityCut{}
	_ Scenario = PathFlap{}
	_ Scenario = PeerPartition{}
)
