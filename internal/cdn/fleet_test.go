package cdn

import (
	"testing"
	"time"

	"riptide/internal/core"
)

func newFleetCluster(t *testing.T, share bool) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		PoPs:        smallTopology(),
		HostsPerPoP: 2,
		Seed:        1,
		LossRate:    0.001,
		Riptide:     RiptideOptions{Enabled: true, TTL: 10 * time.Minute},
		Traffic: TrafficOptions{
			ProbeInterval: 30 * time.Second,
			IdleTimeout:   time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if share {
		if err := c.EnableFleetSharing(5*time.Second, core.MergePolicy{}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestEnableFleetSharingValidation(t *testing.T) {
	c := newFleetCluster(t, false)
	defer c.Stop()
	if err := c.EnableFleetSharing(0, core.MergePolicy{}); err == nil {
		t.Error("zero interval accepted")
	}

	noRiptide, err := NewCluster(Config{PoPs: smallTopology(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer noRiptide.Stop()
	if err := noRiptide.EnableFleetSharing(5*time.Second, core.MergePolicy{}); err == nil {
		t.Error("fleet sharing without riptide accepted")
	}
}

func TestRebootHostValidation(t *testing.T) {
	c := newFleetCluster(t, false)
	defer c.Stop()
	if _, err := c.RebootHost("atlantis", 0); err == nil {
		t.Error("unknown PoP accepted")
	}
	if _, err := c.RebootHost("lhr", 9); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if _, err := c.RebootHost("lhr", -1); err == nil {
		t.Error("negative machine accepted")
	}
}

// TestRebootHostWipesOneMachine: rebooting machine 0 clears its agent state
// and routes while machine 1 of the same PoP keeps its learned table.
func TestRebootHostWipesOneMachine(t *testing.T) {
	c := newFleetCluster(t, false)
	defer c.Stop()
	c.Run(5 * time.Minute)

	before0 := len(c.AgentAt("lhr", 0).Entries())
	before1 := len(c.AgentAt("lhr", 1).Entries())
	if before0 == 0 || before1 == 0 {
		t.Fatalf("agents learned nothing (m0=%d m1=%d)", before0, before1)
	}

	if _, err := c.RebootHost("lhr", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(c.AgentAt("lhr", 0).Entries()); got != 0 {
		t.Errorf("rebooted agent still has %d entries", got)
	}
	hosts, err := c.Hosts("lhr")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(hosts[0].Routes()); got != 0 {
		t.Errorf("rebooted kernel still has %d routes", got)
	}
	if got := len(c.AgentAt("lhr", 1).Entries()); got != before1 {
		t.Errorf("sibling agent entries = %d, want %d (untouched)", got, before1)
	}

	// The swapped-in agent keeps learning through the existing ticker.
	c.Run(2 * time.Minute)
	if got := len(c.AgentAt("lhr", 0).Entries()); got == 0 {
		t.Error("rebooted agent never relearned")
	}
}

// TestFleetSharingSeedsSibling: with sharing on, a rebooted machine regains
// entries from its sibling within a couple of exchange intervals — far
// before the next probe round could have re-taught it.
func TestFleetSharingSeedsSibling(t *testing.T) {
	c := newFleetCluster(t, true)
	defer c.Stop()
	c.Run(5 * time.Minute)

	steady := len(c.AgentAt("lhr", 0).Entries())
	if steady == 0 {
		t.Fatal("no steady-state entries")
	}
	if _, err := c.RebootHost("lhr", 0); err != nil {
		t.Fatal(err)
	}

	// Two exchange intervals, well inside the 30 s probe cadence.
	c.Run(10 * time.Second)
	agent := c.AgentAt("lhr", 0)
	got := len(agent.Entries())
	if got == 0 {
		t.Fatal("fleet sharing did not seed the rebooted agent")
	}
	if s := agent.Stats(); s.FleetMerged == 0 {
		t.Errorf("stats = %+v, want FleetMerged > 0", s)
	}
}

// TestFleetSharingLocalWins: merged hints never displace locally observed
// entries — after a full probe round, the sibling's repeated snapshots must
// not overwrite what the agent sees itself.
func TestFleetSharingLocalWins(t *testing.T) {
	c := newFleetCluster(t, true)
	defer c.Stop()
	c.Run(5 * time.Minute)

	agent := c.AgentAt("lhr", 0)
	s := agent.Stats()
	// Sharing runs every 5s against a sibling with overlapping coverage:
	// the overwhelming majority of remote entries must be rejected in
	// favour of local state.
	if s.FleetSkippedLocal == 0 {
		t.Errorf("stats = %+v, want FleetSkippedLocal > 0 (local observations win)", s)
	}
}
