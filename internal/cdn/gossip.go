package cdn

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"net/netip"
	"time"

	"riptide/internal/core"
	"riptide/internal/eventsim"
	"riptide/internal/gossip"
)

// GossipMode selects how EnableGossipSharing moves tables between peers.
type GossipMode string

const (
	// GossipLadder syncs via the anti-entropy ladder: a fixed-size digest
	// every round, a versioned delta (or divergent-bucket pull after a peer
	// restart) only when the digest shows divergence.
	GossipLadder GossipMode = "ladder"
	// GossipFull is the control arm: every round ships the peer's whole
	// table, the cost model of riptided's legacy full-snapshot pulls.
	GossipFull GossipMode = "full"
)

// GossipStats aggregates the wire cost of fleet gossip across the cluster.
// Rounds counts (receiver, peer) exchanges; exactly one of the per-mode
// counters increments per round. BytesOnWire is the gzip-compressed size of
// everything exchanged — the number the anti-entropy ladder exists to
// shrink.
type GossipStats struct {
	Rounds       int64
	DigestRounds int64
	DeltaRounds  int64
	BucketRounds int64
	FullRounds   int64
	BytesOnWire  int64
	EntriesMoved int64
	// NotModifiedRounds counts the digest rounds where the receiver's
	// validator (its cursor's instance+version+content) matched server-side
	// and the exchange was an HTTP 304 — headers only, not even the digest
	// body. Always a subset of DigestRounds.
	NotModifiedRounds int64
}

// notModifiedWireBytes is the modeled wire cost of a 304 exchange: the
// request's If-None-Match plus the response's status line and ETag — headers
// only, no body. Matches the order of magnitude of riptided's real headers;
// the exact constant matters less than being charged per round instead of
// per table size.
const notModifiedWireBytes = 120

// gossipPair is one directed sync edge: receiver pulls from peer.
type gossipPair struct{ receiver, peer netip.Addr }

// gossipCursor is what a receiver remembers about one peer between rounds:
// the peer's boot identity, its table version, and its last served digest.
type gossipCursor struct {
	instance string
	version  uint64
	digest   gossip.Digest
}

// EnableGossipSharing starts periodic anti-entropy table sync over a
// deterministic peer topology: every machine pulls from its same-PoP peers
// and from one machine of every other PoP, so a cold region re-learns the
// fleet's table without waiting for its own probes. Unlike
// EnableFleetSharing (same-PoP full-table merges with no cost model), every
// exchange here is encoded to its real gzip wire size and accounted in
// GossipStats, and GossipLadder spends only a fixed-size digest per round on
// converged peers. Call before Run; requires Riptide to be enabled.
func (c *Cluster) EnableGossipSharing(interval time.Duration, policy core.MergePolicy, mode GossipMode) error {
	if interval <= 0 {
		return fmt.Errorf("cdn: gossip interval %v must be positive", interval)
	}
	if !c.cfg.Riptide.Enabled {
		return fmt.Errorf("cdn: gossip sharing requires Riptide to be enabled")
	}
	if mode != GossipLadder && mode != GossipFull {
		return fmt.Errorf("cdn: unknown gossip mode %q (want %q or %q)", mode, GossipLadder, GossipFull)
	}
	pairs := c.gossipPairs()
	tk, err := eventsim.NewTicker(c.engine, interval, func(time.Duration) {
		for _, pr := range pairs {
			c.gossipExchange(pr, policy, mode)
		}
	})
	if err != nil {
		return err
	}
	c.tickers = append(c.tickers, tk)
	return nil
}

// GossipStats returns the cumulative gossip wire accounting.
func (c *Cluster) GossipStats() GossipStats { return c.gossipStats }

// SeedWarmEntries pre-populates every agent's table with n synthetic warm
// destinations, modeling a long-lived back-office fleet whose accumulated
// table dwarfs what a short simulation's own probes can learn. The table
// size is what the anti-entropy ladder's byte economics hinge on: a digest
// is O(1) in table size while a full snapshot is O(n), so a freshly
// started toy fleet understates the ladder's advantage badly. Call before
// Run; requires Riptide to be enabled.
func (c *Cluster) SeedWarmEntries(n int, policy core.MergePolicy) error {
	if n <= 0 {
		return fmt.Errorf("cdn: seed entry count %d must be positive", n)
	}
	if !c.cfg.Riptide.Enabled {
		return fmt.Errorf("cdn: seeding warm entries requires Riptide to be enabled")
	}
	seed := make([]core.SnapshotEntry, n)
	for i := range seed {
		// 198.18.0.0/15 (RFC 2544 benchmarking range) cannot collide with
		// the 10.0.0.0/8 addresses the simulated PoPs probe.
		seed[i] = core.SnapshotEntry{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{198, byte(18 + i/65536), byte(i / 256 % 256), byte(i % 256)}), 32),
			Window:  10 + i%20,
			Samples: 50,
		}
	}
	for _, p := range c.pops {
		for _, h := range c.hosts[p.Name] {
			slot, ok := c.agents[h.Addr()]
			if !ok || slot.agent == nil {
				continue
			}
			if _, err := slot.agent.MergeSnapshot(seed, policy); err != nil {
				return fmt.Errorf("cdn: seed %s: %w", h.Addr(), err)
			}
		}
	}
	return nil
}

// gossipPairs builds the sync topology in topology order (map iteration
// would break run reproducibility): machine i of each PoP pulls from every
// other machine of its PoP and from machine i of every other PoP.
func (c *Cluster) gossipPairs() []gossipPair {
	var out []gossipPair
	for pi, p := range c.pops {
		hs := c.hosts[p.Name]
		for i, h := range hs {
			for j, peer := range hs {
				if j != i {
					out = append(out, gossipPair{h.Addr(), peer.Addr()})
				}
			}
			for qi, q := range c.pops {
				if qi == pi {
					continue
				}
				qh := c.hosts[q.Name]
				out = append(out, gossipPair{h.Addr(), qh[i%len(qh)].Addr()})
			}
		}
	}
	return out
}

// gossipExchange runs one receiver<-peer sync round, walking the ladder in
// GossipLadder mode and shipping the full table in GossipFull mode. Entries
// merged here are stamped by the receiver's own version counter, so they
// ride the receiver's next delta to its peers — epidemic dissemination.
func (c *Cluster) gossipExchange(pr gossipPair, policy core.MergePolicy, mode GossipMode) {
	recv, ok := c.agents[pr.receiver]
	peer, ok2 := c.agents[pr.peer]
	if !ok || !ok2 || recv.agent == nil || peer.agent == nil {
		return
	}
	src := pr.peer.String()
	c.gossipStats.Rounds++

	if mode == GossipFull {
		delta := gossip.TableDelta(peer.agent, src, peer.instance, 0)
		c.gossipStats.FullRounds++
		c.accountDelta(delta)
		c.mergeDelta(recv.agent, delta, policy)
		return
	}

	d := gossip.TableDigest(peer.agent, src, peer.instance)
	cur, haveCur := c.gossipCursors[pr]
	if haveCur && cur.instance == d.Instance && cur.version == d.TableVersion &&
		gossip.ContentEqual(d, cur.digest) {
		// The receiver's validator (cursor instance+version, which is what
		// riptided's ETag encodes) matches server-side: the exchange is an
		// HTTP 304 and not even the digest body crosses the wire.
		c.gossipStats.DigestRounds++
		c.gossipStats.NotModifiedRounds++
		c.gossipStats.BytesOnWire += notModifiedWireBytes
		return
	}
	c.accountWire(gossip.EncodeDigest(d))
	if haveCur && gossip.ContentEqual(d, cur.digest) {
		// Converged content under a moved counter (or across an instance
		// change): the validator missed, so the digest body was served —
		// and it was the whole round's traffic. The cursor fast-forwards.
		c.gossipStats.DigestRounds++
		c.gossipCursors[pr] = gossipCursor{instance: d.Instance, version: d.TableVersion, digest: d}
		return
	}

	var delta gossip.Delta
	switch {
	case haveCur && cur.instance == d.Instance && cur.version > 0:
		// Same boot: pull only entries committed since our cursor.
		delta = gossip.TableDelta(peer.agent, src, peer.instance, cur.version)
		if delta.Full {
			c.gossipStats.FullRounds++
		} else {
			c.gossipStats.DeltaRounds++
		}
	case haveCur:
		// Peer restarted (version counter reset): pull only the buckets
		// whose content hash diverged from what we remember.
		delta = gossip.TableBuckets(peer.agent, src, peer.instance, gossip.DiffBuckets(d, cur.digest))
		c.gossipStats.BucketRounds++
	default:
		// First contact: full table.
		delta = gossip.TableDelta(peer.agent, src, peer.instance, 0)
		c.gossipStats.FullRounds++
	}
	c.accountDelta(delta)
	c.mergeDelta(recv.agent, delta, policy)
	// The exchange is synchronous in simulated time, so the served digest
	// exactly describes the state the delta brought us to.
	c.gossipCursors[pr] = gossipCursor{instance: d.Instance, version: d.TableVersion, digest: d}
}

// accountDelta adds a delta's gzip wire size and entry count to the stats.
func (c *Cluster) accountDelta(d gossip.Delta) {
	c.accountWire(gossip.EncodeDelta(d))
	c.gossipStats.EntriesMoved += int64(len(d.Entries))
}

// accountWire counts one encoded message at its gzip-compressed size, the
// transfer encoding riptided's fleet endpoints negotiate.
func (c *Cluster) accountWire(data []byte, err error) {
	if err != nil {
		return // encoding our own structs cannot fail; keep the stats honest
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	_, _ = zw.Write(data)
	_ = zw.Close()
	c.gossipStats.BytesOnWire += int64(buf.Len())
}

// mergeDelta folds a delta into the receiving agent. The simulated kernel
// cannot fail route programming; merges against a just-rebooted (closed)
// agent are rejected by the agent itself.
func (c *Cluster) mergeDelta(a *core.Agent, d gossip.Delta, policy core.MergePolicy) {
	if len(d.Entries) == 0 {
		return
	}
	_, _ = a.MergeSnapshot(gossip.ToCore(d.Entries), policy)
}

// nextInstance mints a fresh gossip boot identity for a machine. Instances
// must change across reboots — peers use the change to fall back from their
// stale delta cursor to a bucket resync.
func (c *Cluster) nextInstance(addr netip.Addr) string {
	c.instanceSeq++
	return fmt.Sprintf("%v#%d", addr, c.instanceSeq)
}

// dropGossipCursors forgets everything a rebooted receiver remembered about
// its peers. Its merged table is gone with the old agent; keeping the
// cursors would let a matching digest read as "converged" and skip the
// re-merge forever.
func (c *Cluster) dropGossipCursors(receiver netip.Addr) {
	for pr := range c.gossipCursors {
		if pr.receiver == receiver {
			delete(c.gossipCursors, pr)
		}
	}
}
