package cdn

import (
	"errors"
	"fmt"
	"time"

	"riptide/internal/core"
	"riptide/internal/eventsim"
)

// EnableFleetSharing starts periodic snapshot exchange between the machines
// of each PoP: every interval, each agent merges its same-PoP peers'
// exported tables under the given merge policy. Machines in one PoP serve
// the same remote destinations over the same WAN paths, so a peer's learned
// window is directly applicable — this is the simulated analogue of
// riptided's -peers pull loop. Call before Run; requires Riptide to be
// enabled.
func (c *Cluster) EnableFleetSharing(interval time.Duration, policy core.MergePolicy) error {
	if interval <= 0 {
		return fmt.Errorf("cdn: fleet-sharing interval %v must be positive", interval)
	}
	if !c.cfg.Riptide.Enabled {
		return errors.New("cdn: fleet sharing requires Riptide to be enabled")
	}
	tk, err := eventsim.NewTicker(c.engine, interval, func(time.Duration) {
		for _, p := range c.pops {
			hs := c.hosts[p.Name]
			if len(hs) < 2 {
				continue
			}
			// Export every machine's table first, so each merge sees its
			// peers' pre-round state rather than entries that already
			// travelled one hop this round.
			agents := make([]*core.Agent, len(hs))
			snaps := make([][]core.SnapshotEntry, len(hs))
			for i, h := range hs {
				if slot, ok := c.agents[h.Addr()]; ok && slot.agent != nil {
					agents[i] = slot.agent
					snaps[i] = slot.agent.ExportSnapshot()
				}
			}
			for i, a := range agents {
				if a == nil {
					continue
				}
				for j, snap := range snaps {
					if j == i || len(snap) == 0 {
						continue
					}
					// The simulated kernel cannot fail route programming;
					// merges against a just-rebooted (closed) agent are
					// skipped by the agent itself.
					_, _ = a.MergeSnapshot(snap, policy)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	c.tickers = append(c.tickers, tk)
	return nil
}

// RebootHost simulates a single-machine maintenance reboot: machine idx of
// the named PoP loses all its connections (both ends), its kernel route
// table, and its Riptide agent's learned state, while the PoP's other
// machines keep running — the scenario fleet sharing exists to absorb. It
// returns the number of connections that died.
func (c *Cluster) RebootHost(name string, idx int) (int, error) {
	hs, ok := c.hosts[name]
	if !ok {
		return 0, fmt.Errorf("cdn: unknown PoP %q", name)
	}
	if idx < 0 || idx >= len(hs) {
		return 0, fmt.Errorf("cdn: PoP %s has no machine %d", name, idx)
	}
	h := hs[idx]
	closed := c.net.CloseConnsInvolving(h.Addr())
	for _, r := range h.Routes() {
		h.DelRoute(r.Prefix)
	}
	if slot, ok := c.agents[h.Addr()]; ok {
		_ = slot.agent.Close()
		fresh, gov, err := c.newAgentForHost(h)
		if err != nil {
			return closed, fmt.Errorf("cdn: restart agent for %s[%d]: %w", name, idx, err)
		}
		slot.agent = fresh
		slot.gov = gov
		slot.instance = c.nextInstance(h.Addr())
		c.dropGossipCursors(h.Addr())
	}
	return closed, nil
}

// AgentAt returns the Riptide agent of machine idx of the named PoP (nil
// when Riptide is disabled or the index is out of range).
func (c *Cluster) AgentAt(name string, idx int) *core.Agent {
	hs := c.hosts[name]
	if idx < 0 || idx >= len(hs) {
		return nil
	}
	slot, ok := c.agents[hs[idx].Addr()]
	if !ok {
		return nil
	}
	return slot.agent
}
