package cdn

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"riptide/internal/core"
	"riptide/internal/eventsim"
	"riptide/internal/guard"
	"riptide/internal/kernel"
	"riptide/internal/netsim"
	"riptide/internal/workload"
)

// hostSampler adapts a simulated kernel's connection table to the agent's
// ConnectionSampler — the `ss` of the simulated world. The snapshot buffer
// is reused across ticks, so a steady connection set samples without
// allocating.
type hostSampler struct {
	host  *kernel.Host
	snaps []kernel.ConnSnapshot
}

// SampleConnections implements core.ConnectionSampler.
func (s *hostSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	s.snaps = s.host.AppendConnections(s.snaps[:0])
	for _, c := range s.snaps {
		buf = append(buf, core.Observation{
			Dst:        c.Dst,
			Cwnd:       c.Cwnd,
			RTT:        c.RTT,
			BytesAcked: c.BytesAcked,
			Retrans:    c.Retrans,
			Lost:       c.Lost,
			SegsOut:    c.SegsOut,
			LossEvents: c.LossEvents,
		})
	}
	return buf, nil
}

// hostRoutes adapts a simulated kernel's route table to the agent's
// RouteProgrammer — the `ip route` of the simulated world. The update
// buffer backs the batched path and is reused across ticks.
type hostRoutes struct {
	host    *kernel.Host
	updates []kernel.RouteUpdate
}

// SetInitCwnd implements core.RouteProgrammer.
func (r *hostRoutes) SetInitCwnd(prefix netip.Prefix, cwnd int) error {
	return r.host.AddRoute(kernel.Route{Prefix: prefix, InitCwnd: cwnd, Proto: "static"})
}

// ClearInitCwnd implements core.RouteProgrammer.
func (r *hostRoutes) ClearInitCwnd(prefix netip.Prefix) error {
	r.host.DelRoute(prefix)
	return nil
}

// ProgramRoutes implements core.BatchRouteProgrammer: the whole route set
// lands in the simulated kernel under one lock acquisition.
func (r *hostRoutes) ProgramRoutes(ops []core.RouteOp) []error {
	r.updates = r.updates[:0]
	for _, op := range ops {
		r.updates = append(r.updates, kernel.RouteUpdate{
			Route:  kernel.Route{Prefix: op.Prefix, InitCwnd: op.Window, Proto: "static"},
			Delete: op.Clear,
		})
	}
	return r.host.ApplyRoutes(r.updates)
}

var (
	_ core.ConnectionSampler    = (*hostSampler)(nil)
	_ core.BatchRouteProgrammer = (*hostRoutes)(nil)
)

// RiptideOptions tunes the per-host agents.
type RiptideOptions struct {
	// Enabled turns Riptide on; when false the cluster is the paper's
	// control group.
	Enabled bool
	// CMax / CMin clamp programmed windows (paper sweeps CMax 50..250).
	CMax, CMin int
	// Alpha is the EWMA history weight.
	Alpha float64
	// UpdateInterval is i_u; defaults to the paper's 1 s.
	UpdateInterval time.Duration
	// TTL is t; defaults to the paper's 90 s.
	TTL time.Duration
	// PrefixBits is route granularity (32 = per host, 24 = per PoP).
	PrefixBits int
	// Combiner / History override the paper defaults for ablations.
	Combiner core.Combiner
	History  core.HistoryPolicy
	// Guard, when set, gives every host's agent a closed-loop safety
	// governor built from this configuration (the Clock field is
	// overridden with the simulation clock). A host reboot rebuilds the
	// governor empty, like the rest of the agent's learned state.
	Guard *guard.Config
}

// TrafficOptions shapes the synthetic workload.
type TrafficOptions struct {
	// ProbeInterval is how often each machine probes every other PoP. The
	// paper probes hourly from many machines per PoP; simulated runs
	// compress the interval (default 60 s) to preserve the observation
	// density Riptide sees.
	ProbeInterval time.Duration
	// ProbeSizes are the probe payloads (default 10/50/100 KB).
	ProbeSizes []int
	// CloseAfterTransferProb is the chance a connection closes once its
	// transfer completes — the paper's application restarts, errors, and
	// load-balancer churn that force fresh connections. Default 0.5.
	CloseAfterTransferProb float64
	// IdleTimeout closes pooled connections idle this long. Default 5 m.
	IdleTimeout time.Duration
	// OrganicRates gives selected PoPs background traffic: transfers per
	// second sent from each machine of that PoP to other PoPs
	// (Figure 11's "busy" profile). PoPs absent from the map carry probe
	// traffic only.
	OrganicRates map[string]float64
	// OrganicSizes draws organic object sizes; defaults to the Figure 2
	// distribution.
	OrganicSizes workload.Sampler
}

// Config assembles a Cluster.
type Config struct {
	// PoPs lists the deployment; defaults to DefaultTopology().
	PoPs []PoP
	// HostsPerPoP is how many machines each PoP runs (default 1). Each
	// machine gets its own kernel, its own Riptide agent, and its own
	// probe schedule, like the paper's deployment.
	HostsPerPoP int
	// Seed drives all randomness.
	Seed int64
	// LossRate is the baseline random per-segment loss on WAN paths.
	LossRate float64
	// RTTJitter adds per-round queueing-delay variation on WAN paths
	// (netsim.PathConfig.RTTJitter). Zero keeps rounds exact.
	RTTJitter float64
	// CapacitySegments bounds each path's per-RTT load; 0 = unlimited.
	CapacitySegments int
	// Riptide configures the agents.
	Riptide RiptideOptions
	// Traffic shapes probes and organic load.
	Traffic TrafficOptions
}

// ProbeRecord is one completed diagnostic probe.
type ProbeRecord struct {
	// Src and Dst are PoP names; SrcHost/DstHost the machine addresses.
	Src, Dst         string
	SrcHost, DstHost netip.Addr
	SizeBytes        int
	RTT              time.Duration
	Bucket           RTTBucket
	Elapsed          time.Duration
	Rounds           int
	InitCwnd         int
	// FreshConn reports whether the probe opened a new connection (the
	// population Riptide affects) rather than reusing an idle one.
	FreshConn bool
	// At is the simulated completion time.
	At time.Duration
}

// ProbeFailure records one probe that could not even open its connection —
// the fingerprint of a partition or a torn-down path.
type ProbeFailure struct {
	// Src and Dst are PoP names.
	Src, Dst string
	// At is the simulated time the open failed.
	At time.Duration
}

// CwndSample is one periodic `ss` observation of a live connection.
type CwndSample struct {
	// Src is the sampling machine's PoP; Host its address.
	Src  string
	Host netip.Addr
	Dst  string
	Cwnd int
	// OpenedAfterStart reports whether the connection was created after
	// the measurement epoch began (the paper only counts those).
	OpenedAfterStart bool
	At               time.Duration
}

// Cluster is the simulated CDN.
type Cluster struct {
	cfg    Config
	engine *eventsim.Engine
	net    *netsim.Network
	rng    *rand.Rand

	pops    []PoP
	byName  map[string]PoP
	hosts   map[string][]*kernel.Host // per PoP, in machine order
	agents  map[netip.Addr]*agentSlot
	tickers []*eventsim.Ticker

	// Gossip sharing state (EnableGossipSharing): per-edge sync cursors,
	// cumulative wire accounting, and the boot-identity counter.
	gossipCursors map[gossipPair]gossipCursor
	gossipStats   GossipStats
	instanceSeq   int

	pools map[poolKey][]*pooledConn

	probes      []ProbeRecord
	probeFailed []ProbeFailure
	cwndSamples []CwndSample
	epoch       time.Duration
}

// agentSlot indirects agent access so a PoP reboot can swap in a fresh
// agent while the per-host ticker keeps firing. gov is the agent's safety
// governor when RiptideOptions.Guard is set (nil otherwise); it is rebuilt
// together with the agent on reboot. instance is the gossip boot identity,
// reminted on reboot so peers notice the version-counter reset.
type agentSlot struct {
	agent    *core.Agent
	gov      *guard.Governor
	instance string
}

type poolKey struct{ src, dst netip.Addr }

type pooledConn struct {
	conn     *netsim.Conn
	idleFrom time.Duration
}

// NewCluster builds the simulated CDN: hosts, full-mesh paths, traffic
// processes, samplers, and (optionally) a Riptide agent per host.
func NewCluster(cfg Config) (*Cluster, error) {
	if len(cfg.PoPs) == 0 {
		cfg.PoPs = DefaultTopology()
	}
	if len(cfg.PoPs) < 2 {
		return nil, errors.New("cdn: need at least two PoPs")
	}
	if cfg.HostsPerPoP == 0 {
		cfg.HostsPerPoP = 1
	}
	if cfg.HostsPerPoP < 1 || cfg.HostsPerPoP > 200 {
		return nil, fmt.Errorf("cdn: hosts per PoP %d out of [1,200]", cfg.HostsPerPoP)
	}
	if cfg.Traffic.ProbeInterval == 0 {
		cfg.Traffic.ProbeInterval = 60 * time.Second
	}
	if cfg.Traffic.ProbeInterval < 0 {
		return nil, fmt.Errorf("cdn: probe interval %v must be positive", cfg.Traffic.ProbeInterval)
	}
	if len(cfg.Traffic.ProbeSizes) == 0 {
		cfg.Traffic.ProbeSizes = append([]int(nil), workload.ProbeSizes...)
	}
	if cfg.Traffic.CloseAfterTransferProb == 0 {
		cfg.Traffic.CloseAfterTransferProb = 0.5
	}
	if cfg.Traffic.CloseAfterTransferProb < 0 || cfg.Traffic.CloseAfterTransferProb > 1 {
		return nil, fmt.Errorf("cdn: close probability %v out of [0,1]", cfg.Traffic.CloseAfterTransferProb)
	}
	if cfg.Traffic.IdleTimeout == 0 {
		cfg.Traffic.IdleTimeout = 5 * time.Minute
	}
	if cfg.Traffic.OrganicSizes == nil {
		cfg.Traffic.OrganicSizes = workload.CDNFileSizes()
	}

	engine := eventsim.NewEngine()
	net, err := netsim.NewNetwork(netsim.Config{Engine: engine, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		engine: engine,
		net:    net,
		rng:    workload.NewRand(cfg.Seed + 1),
		pops:   cfg.PoPs,
		byName: make(map[string]PoP, len(cfg.PoPs)),
		hosts:  make(map[string][]*kernel.Host, len(cfg.PoPs)),
		agents: make(map[netip.Addr]*agentSlot),
		pools:  make(map[poolKey][]*pooledConn),

		gossipCursors: make(map[gossipPair]gossipCursor),
	}

	for _, p := range cfg.PoPs {
		if _, dup := c.byName[p.Name]; dup {
			return nil, fmt.Errorf("cdn: duplicate PoP name %q", p.Name)
		}
		c.byName[p.Name] = p
		for i := 0; i < cfg.HostsPerPoP; i++ {
			addr, err := hostAddr(p, i)
			if err != nil {
				return nil, err
			}
			h, err := net.AddHost(addr)
			if err != nil {
				return nil, fmt.Errorf("cdn: add host %s[%d]: %w", p.Name, i, err)
			}
			c.hosts[p.Name] = append(c.hosts[p.Name], h)
		}
	}

	for i := range cfg.PoPs {
		for j := i + 1; j < len(cfg.PoPs); j++ {
			a, b := cfg.PoPs[i], cfg.PoPs[j]
			pc := netsim.PathConfig{
				RTT:              RTTBetween(a, b),
				LossRate:         cfg.LossRate,
				RTTJitter:        cfg.RTTJitter,
				CapacitySegments: cfg.CapacitySegments,
			}
			for _, ha := range c.hosts[a.Name] {
				for _, hb := range c.hosts[b.Name] {
					if err := net.SetBidiPath(ha.Addr(), hb.Addr(), pc); err != nil {
						return nil, fmt.Errorf("cdn: path %s<->%s: %w", a.Name, b.Name, err)
					}
				}
			}
		}
	}

	if cfg.Riptide.Enabled {
		if err := c.startRiptide(); err != nil {
			return nil, err
		}
	}
	c.startProbes()
	c.startOrganic()
	c.startPoolSweeper()
	return c, nil
}

// hostAddr assigns machine i of a PoP the address base+i within the PoP's
// /24 (base is conventionally .1).
func hostAddr(p PoP, i int) (netip.Addr, error) {
	if !p.Addr.Is4() {
		return netip.Addr{}, fmt.Errorf("cdn: PoP %s address %v must be IPv4", p.Name, p.Addr)
	}
	b := p.Addr.As4()
	host := int(b[3]) + i
	if host > 254 {
		return netip.Addr{}, fmt.Errorf("cdn: PoP %s cannot host machine %d in a /24", p.Name, i)
	}
	b[3] = byte(host)
	return netip.AddrFrom4(b), nil
}

// newAgentForHost builds a Riptide agent bound to one simulated machine,
// returning the agent and its governor (nil when guarding is off).
func (c *Cluster) newAgentForHost(h *kernel.Host) (*core.Agent, *guard.Governor, error) {
	r := c.cfg.Riptide
	var g *guard.Governor
	var gov core.Governor
	if r.Guard != nil {
		gcfg := *r.Guard
		gcfg.Clock = c.engine.Now
		var err error
		g, err = guard.New(gcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("cdn: guard for %v: %w", h.Addr(), err)
		}
		gov = g
	}
	agent, err := core.New(core.Config{
		Guard:          gov,
		Sampler:        &hostSampler{host: h},
		Routes:         &hostRoutes{host: h},
		Clock:          c.engine.Now,
		UpdateInterval: r.UpdateInterval,
		TTL:            r.TTL,
		Alpha:          r.Alpha,
		CMax:           r.CMax,
		CMin:           r.CMin,
		PrefixBits:     r.PrefixBits,
		Combiner:       r.Combiner,
		History:        r.History,
	})
	if err != nil {
		return nil, nil, err
	}
	return agent, g, nil
}

func (c *Cluster) startRiptide() error {
	// Iterate in topology order: ticker creation order decides event
	// ordering at equal timestamps, and map iteration would make runs
	// irreproducible across identical seeds.
	for _, p := range c.pops {
		for _, h := range c.hosts[p.Name] {
			agent, gov, err := c.newAgentForHost(h)
			if err != nil {
				return fmt.Errorf("cdn: riptide agent for %s/%v: %w", p.Name, h.Addr(), err)
			}
			slot := &agentSlot{agent: agent, gov: gov, instance: c.nextInstance(h.Addr())}
			c.agents[h.Addr()] = slot
			interval := agent.Config().UpdateInterval
			tk, err := eventsim.NewTicker(c.engine, interval, func(time.Duration) {
				// Route programming against the simulated kernel
				// cannot fail; sampling likewise. Read through the
				// slot: a reboot may have swapped the agent.
				if slot.agent != nil {
					_ = slot.agent.Tick()
				}
			})
			if err != nil {
				return err
			}
			c.tickers = append(c.tickers, tk)
		}
	}
	return nil
}

// RebootPoP simulates the paper's Section II-A maintenance event: every
// machine of the PoP reboots, killing all connections to and from it (both
// ends lose their learned-window feedstock), wiping its kernel route table,
// and restarting its Riptide agent with empty state. It returns the number
// of connections that died.
func (c *Cluster) RebootPoP(name string) (int, error) {
	hs, ok := c.hosts[name]
	if !ok {
		return 0, fmt.Errorf("cdn: unknown PoP %q", name)
	}
	closed := 0
	for _, h := range hs {
		closed += c.net.CloseConnsInvolving(h.Addr())
		for _, r := range h.Routes() {
			h.DelRoute(r.Prefix)
		}
		if slot, ok := c.agents[h.Addr()]; ok {
			_ = slot.agent.Close()
			fresh, gov, err := c.newAgentForHost(h)
			if err != nil {
				return closed, fmt.Errorf("cdn: restart agent for %s/%v: %w", name, h.Addr(), err)
			}
			slot.agent = fresh
			slot.gov = gov
			slot.instance = c.nextInstance(h.Addr())
			c.dropGossipCursors(h.Addr())
		}
	}
	return closed, nil
}

// startProbes schedules the measurement infrastructure: every ProbeInterval,
// every machine sends each probe size to (one machine of) every other PoP,
// reusing an idle connection when one exists (Section IV-A).
func (c *Cluster) startProbes() {
	if c.cfg.Traffic.ProbeInterval == 0 {
		return
	}
	tk, err := eventsim.NewTicker(c.engine, c.cfg.Traffic.ProbeInterval, func(time.Duration) {
		for _, src := range c.pops {
			for _, srcHost := range c.hosts[src.Name] {
				for _, dst := range c.pops {
					if src.Name == dst.Name {
						continue
					}
					dstHost := c.pickHost(dst)
					for _, size := range c.cfg.Traffic.ProbeSizes {
						c.sendProbe(src, srcHost, dst, dstHost, size)
					}
				}
			}
		}
	})
	if err != nil {
		// Interval was validated in NewCluster; a failure here is a bug.
		panic(err)
	}
	c.tickers = append(c.tickers, tk)
}

// pickHost selects a machine of the destination PoP, uniformly — the
// paper's front-end load balancing.
func (c *Cluster) pickHost(p PoP) *kernel.Host {
	hs := c.hosts[p.Name]
	if len(hs) == 1 {
		return hs[0]
	}
	return hs[c.rng.Intn(len(hs))]
}

// sendProbe transfers size bytes from srcHost to dstHost and records the
// result.
func (c *Cluster) sendProbe(src PoP, srcHost *kernel.Host, dst PoP, dstHost *kernel.Host, size int) {
	conn, fresh, err := c.grabConn(srcHost.Addr(), dstHost.Addr())
	if err != nil {
		c.probeFailed = append(c.probeFailed, ProbeFailure{
			Src: src.Name, Dst: dst.Name, At: c.engine.Now(),
		})
		return
	}
	rtt, _ := c.net.PathRTT(srcHost.Addr(), dstHost.Addr())
	err = conn.Transfer(int64(size), func(r netsim.TransferResult) {
		// A probe is a request/response exchange: one RTT to deliver the
		// GET, then the data rounds. Both the Riptide and control groups
		// pay the request round, as in the paper's measurement.
		c.probes = append(c.probes, ProbeRecord{
			Src:       src.Name,
			Dst:       dst.Name,
			SrcHost:   srcHost.Addr(),
			DstHost:   dstHost.Addr(),
			SizeBytes: size,
			RTT:       rtt,
			Bucket:    BucketFor(rtt),
			Elapsed:   r.Elapsed + rtt,
			Rounds:    r.Rounds,
			InitCwnd:  r.InitCwnd,
			FreshConn: fresh,
			At:        c.engine.Now(),
		})
		c.releaseConn(conn)
	})
	if err != nil {
		conn.Close()
	}
}

// startOrganic schedules background transfers for busy PoPs, in topology
// order for reproducibility.
func (c *Cluster) startOrganic() {
	for _, src := range c.pops {
		rate, ok := c.cfg.Traffic.OrganicRates[src.Name]
		if !ok || rate <= 0 {
			continue
		}
		for _, h := range c.hosts[src.Name] {
			// Poisson process per machine: exponential gaps with
			// mean 1/rate, destination chosen uniformly.
			c.scheduleOrganic(src, h, rate)
		}
	}
}

func (c *Cluster) scheduleOrganic(src PoP, srcHost *kernel.Host, rate float64) {
	gap := time.Duration(c.rng.ExpFloat64() / rate * float64(time.Second))
	if gap < time.Millisecond {
		gap = time.Millisecond
	}
	c.engine.MustSchedule(gap, func() {
		dst := c.pops[c.rng.Intn(len(c.pops))]
		if dst.Name != src.Name {
			dstHost := c.pickHost(dst)
			size := int64(c.cfg.Traffic.OrganicSizes.Sample(c.rng))
			if conn, _, err := c.grabConn(srcHost.Addr(), dstHost.Addr()); err == nil {
				err = conn.Transfer(size, func(netsim.TransferResult) {
					c.releaseConn(conn)
				})
				if err != nil {
					conn.Close()
				}
			}
		}
		c.scheduleOrganic(src, srcHost, rate)
	})
}

// startPoolSweeper closes pooled connections idle beyond IdleTimeout.
func (c *Cluster) startPoolSweeper() {
	tk, err := eventsim.NewTicker(c.engine, 30*time.Second, func(now time.Duration) {
		for key, pool := range c.pools {
			kept := pool[:0]
			for _, pc := range pool {
				if now-pc.idleFrom >= c.cfg.Traffic.IdleTimeout {
					pc.conn.Close()
					continue
				}
				kept = append(kept, pc)
			}
			c.pools[key] = kept
		}
	})
	if err != nil {
		panic(err)
	}
	c.tickers = append(c.tickers, tk)
}

// grabConn returns an idle pooled connection src->dst or opens a fresh one.
func (c *Cluster) grabConn(src, dst netip.Addr) (conn *netsim.Conn, fresh bool, err error) {
	key := poolKey{src, dst}
	pool := c.pools[key]
	for len(pool) > 0 {
		pc := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		c.pools[key] = pool
		if !pc.conn.Closed() {
			return pc.conn, false, nil
		}
	}
	cn, err := c.net.Open(src, dst)
	if err != nil {
		return nil, false, err
	}
	return cn, true, nil
}

// releaseConn returns a connection to the pool or closes it, modelling
// application churn.
func (c *Cluster) releaseConn(conn *netsim.Conn) {
	if conn.Closed() {
		return
	}
	if c.rng.Float64() < c.cfg.Traffic.CloseAfterTransferProb {
		conn.Close()
		return
	}
	key := poolKey{conn.Src(), conn.Dst()}
	c.pools[key] = append(c.pools[key], &pooledConn{conn: conn, idleFrom: c.engine.Now()})
}

// StartCwndSampling begins periodic `ss`-style sampling of every host's
// connections (Section IV-B1 samples each minute). Connections opened
// before the first call are marked accordingly so experiments can exclude
// them, as the paper does.
func (c *Cluster) StartCwndSampling(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("cdn: sampling interval %v must be positive", interval)
	}
	c.epoch = c.engine.Now()
	tk, err := eventsim.NewTicker(c.engine, interval, func(now time.Duration) {
		for _, p := range c.pops {
			for _, h := range c.hosts[p.Name] {
				for _, snap := range h.Connections() {
					c.cwndSamples = append(c.cwndSamples, CwndSample{
						Src:              p.Name,
						Host:             h.Addr(),
						Dst:              snap.Dst.String(),
						Cwnd:             snap.Cwnd,
						OpenedAfterStart: snap.Opened >= c.epoch,
						At:               now,
					})
				}
			}
		}
	})
	if err != nil {
		return err
	}
	c.tickers = append(c.tickers, tk)
	return nil
}

// Run advances the simulation by d.
func (c *Cluster) Run(d time.Duration) {
	c.engine.RunUntil(c.engine.Now() + d)
}

// Stop cancels all periodic activity (probes, agents, samplers, sweepers)
// and shuts the agents down, withdrawing their routes.
func (c *Cluster) Stop() {
	for _, tk := range c.tickers {
		tk.Stop()
	}
	for _, slot := range c.agents {
		if slot.agent != nil {
			_ = slot.agent.Close()
		}
	}
}

// Engine exposes the simulation clock.
func (c *Cluster) Engine() *eventsim.Engine { return c.engine }

// PoPs returns the deployment.
func (c *Cluster) PoPs() []PoP { return c.pops }

// HostsPerPoP reports the configured machines per PoP.
func (c *Cluster) HostsPerPoP() int { return c.cfg.HostsPerPoP }

// Host returns the named PoP's first machine.
func (c *Cluster) Host(name string) (*kernel.Host, error) {
	hs, ok := c.hosts[name]
	if !ok || len(hs) == 0 {
		return nil, fmt.Errorf("cdn: unknown PoP %q", name)
	}
	return hs[0], nil
}

// Hosts returns all machines of the named PoP.
func (c *Cluster) Hosts(name string) ([]*kernel.Host, error) {
	hs, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("cdn: unknown PoP %q", name)
	}
	out := make([]*kernel.Host, len(hs))
	copy(out, hs)
	return out, nil
}

// Agent returns the Riptide agent of the named PoP's first machine (nil
// when Riptide is disabled).
func (c *Cluster) Agent(name string) *core.Agent {
	hs := c.hosts[name]
	if len(hs) == 0 {
		return nil
	}
	slot, ok := c.agents[hs[0].Addr()]
	if !ok {
		return nil
	}
	return slot.agent
}

// Agents returns every Riptide agent of the named PoP, in machine order.
func (c *Cluster) Agents(name string) []*core.Agent {
	hs := c.hosts[name]
	out := make([]*core.Agent, 0, len(hs))
	for _, h := range hs {
		if slot, ok := c.agents[h.Addr()]; ok && slot.agent != nil {
			out = append(out, slot.agent)
		}
	}
	return out
}

// ProbeRecords returns all completed probes so far.
func (c *Cluster) ProbeRecords() []ProbeRecord {
	out := make([]ProbeRecord, len(c.probes))
	copy(out, c.probes)
	return out
}

// CwndSamples returns all collected samples so far.
func (c *Cluster) CwndSamples() []CwndSample {
	out := make([]CwndSample, len(c.cwndSamples))
	copy(out, c.cwndSamples)
	return out
}

// ProbeFailures returns every probe that failed to open a connection so far.
func (c *Cluster) ProbeFailures() []ProbeFailure {
	out := make([]ProbeFailure, len(c.probeFailed))
	copy(out, c.probeFailed)
	return out
}

// TotalRetransmits reports the cumulative segments retransmitted across the
// whole network since construction. Sampled at phase boundaries it yields a
// deterministic per-window retransmit count.
func (c *Cluster) TotalRetransmits() int64 { return c.net.Retransmitted() }

// TotalRoutes sums the learned route entries of every live agent, in
// topology order — the fleet's programmed-route footprint.
func (c *Cluster) TotalRoutes() int {
	n := 0
	for _, p := range c.pops {
		for _, h := range c.hosts[p.Name] {
			if slot, ok := c.agents[h.Addr()]; ok && slot.agent != nil {
				n += len(slot.agent.Entries())
			}
		}
	}
	return n
}

// QuarantineCount sums the currently quarantined destinations across every
// agent's safety governor. It is zero when RiptideOptions.Guard is unset.
func (c *Cluster) QuarantineCount() int {
	n := 0
	for _, p := range c.pops {
		for _, h := range c.hosts[p.Name] {
			if slot, ok := c.agents[h.Addr()]; ok && slot.gov != nil {
				n += len(slot.gov.Quarantines())
			}
		}
	}
	return n
}
