package guard

import (
	"math"
	"net/netip"
	"strings"
	"testing"
	"time"

	"riptide/internal/core"
	"riptide/internal/metrics"
)

func pfx(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testClock is a manually advanced monotonic clock.
type testClock struct{ now time.Duration }

func (c *testClock) Now() time.Duration { return c.now }

func newGovernor(t testing.TB, cfg Config, clk *testClock) *Governor {
	t.Helper()
	cfg.Clock = clk.Now
	if cfg.MinSegments == 0 {
		cfg.MinSegments = 1
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// feed simulates one tick of sampling: cumulative counters for one
// destination, then the tick close.
func feed(g *Governor, clk *testClock, dst netip.Prefix, retrans, segs int64) {
	g.ObserveSample(dst, core.Observation{Retrans: retrans, SegsOut: segs})
	clk.now += time.Second
	g.ObserveTick(clk.now)
}

// driveToState feeds constant-rate traffic until the destination reaches
// want, or fails after maxTicks.
func driveToState(t *testing.T, g *Governor, clk *testClock, dst netip.Prefix, perTickRetrans, perTickSegs int64, want State, maxTicks int) int {
	t.Helper()
	var cumR, cumS int64
	for i := 1; i <= maxTicks; i++ {
		cumR += perTickRetrans
		cumS += perTickSegs
		feed(g, clk, dst, cumR, cumS)
		if st, _, ok := g.StateOf(dst); ok && st == want {
			return i
		}
	}
	st, _, _ := g.StateOf(dst)
	t.Fatalf("destination never reached %v in %d ticks (state %v)", want, maxTicks, st)
	return 0
}

func TestEscalationHealthyToQuarantined(t *testing.T) {
	clk := &testClock{}
	reg := metrics.NewRegistry()
	g := newGovernor(t, Config{Metrics: reg}, clk)
	d := pfx(t, "10.0.0.1/32")

	// 50% first-flight loss: the canonical capacity-cut regression.
	ticks := driveToState(t, g, clk, d, 50, 100, Quarantined, 10)
	if ticks > 10 {
		t.Errorf("quarantine took %d ticks, want <= 10", ticks)
	}

	// Throttled was a mandatory waypoint (hysteresis on each hop).
	if got := reg.Counter("riptide_guard_throttles").Value(); got != 1 {
		t.Errorf("throttles = %d, want 1", got)
	}
	if got := reg.Counter("riptide_guard_quarantines").Value(); got != 1 {
		t.Errorf("quarantines = %d, want 1", got)
	}

	// Review vetoes with the quarantine action.
	if w, action := g.Review(d, 80); action != core.GuardQuarantine || w != 0 {
		t.Errorf("Review = (%d, %v), want (0, quarantine)", w, action)
	}
	qs := g.Quarantines()
	if len(qs) != 1 || qs[0].Prefix != d {
		t.Fatalf("Quarantines = %v, want [%v]", qs, d)
	}
	if qs[0].Age < 0 {
		t.Errorf("quarantine age %v negative", qs[0].Age)
	}
}

func TestThrottledCapsWindow(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	d := pfx(t, "10.0.0.1/32")

	// Loss above the throttle threshold but below quarantine: 2.5% with
	// the default floor of 2% throttling and 3% quarantining.
	driveToState(t, g, clk, d, 25, 1000, Throttled, 10)

	if w, action := g.Review(d, 80); action != core.GuardCap || w != 40 {
		t.Errorf("Review = (%d, %v), want (40, cap)", w, action)
	}
	// The cap never returns less than one segment.
	if w, _ := g.Review(d, 1); w != 1 {
		t.Errorf("Review cap of window 1 = %d, want 1", w)
	}
	// A throttled destination holding mid-band loss stays throttled.
	if st, _, _ := g.StateOf(d); st != Throttled {
		t.Errorf("state = %v, want throttled", st)
	}
}

func TestQuarantineExpiresIntoProbingThenRecovers(t *testing.T) {
	clk := &testClock{}
	reg := metrics.NewRegistry()
	g := newGovernor(t, Config{QuarantineTTL: 30 * time.Second, Metrics: reg}, clk)
	d := pfx(t, "10.0.0.1/32")
	driveToState(t, g, clk, d, 50, 100, Quarantined, 10)

	// Cool-down: ticks inside the TTL stay quarantined.
	clk.now += 20 * time.Second
	g.ObserveTick(clk.now)
	if st, _, _ := g.StateOf(d); st != Quarantined {
		t.Fatalf("state before TTL = %v, want quarantined", st)
	}

	// TTL elapses: probing, programmed again at half window.
	clk.now += 15 * time.Second
	g.ObserveTick(clk.now)
	if st, _, _ := g.StateOf(d); st != Probing {
		t.Fatalf("state after TTL = %v, want probing", st)
	}
	if w, action := g.Review(d, 80); action != core.GuardCap || w != 40 {
		t.Errorf("probing Review = (%d, %v), want (40, cap)", w, action)
	}
	if got := reg.Counter("riptide_guard_probes").Value(); got != 1 {
		t.Errorf("probes = %d, want 1", got)
	}

	// Clean traffic through the probe window recovers to healthy.
	driveToState(t, g, clk, d, 0, 100, Healthy, 10)
	if w, action := g.Review(d, 80); action != core.GuardAllow || w != 80 {
		t.Errorf("recovered Review = (%d, %v), want (80, allow)", w, action)
	}
	if got := reg.Counter("riptide_guard_recoveries").Value(); got != 1 {
		t.Errorf("recoveries = %d, want 1", got)
	}
	if len(g.Quarantines()) != 0 {
		t.Error("recovered destination still listed in Quarantines")
	}
}

func TestProbeRegressionRequarantines(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{QuarantineTTL: 10 * time.Second}, clk)
	d := pfx(t, "10.0.0.1/32")
	driveToState(t, g, clk, d, 50, 100, Quarantined, 10)
	clk.now += 11 * time.Second
	g.ObserveTick(clk.now)
	if st, _, _ := g.StateOf(d); st != Probing {
		t.Fatalf("state = %v, want probing", st)
	}

	// The regression is still there: the probe re-quarantines without
	// passing through throttled.
	driveToState(t, g, clk, d, 50, 100, Quarantined, 10)
}

func TestHysteresisAbsorbsOneLossyTick(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	d := pfx(t, "10.0.0.1/32")

	// One moderately lossy tick (6%, above the 2% throttle threshold)
	// between clean ones: the EWMA dips back under threshold before the
	// HysteresisTicks=2 requirement is met, so the destination must stay
	// healthy. (A catastrophic spike is different: its EWMA stays above
	// threshold across ticks and legitimately escalates.)
	var cumR, cumS int64
	rates := []int64{0, 0, 6, 0, 0, 0}
	for _, r := range rates {
		cumR += r
		cumS += 100
		feed(g, clk, d, cumR, cumS)
	}
	if st, _, _ := g.StateOf(d); st != Healthy {
		t.Errorf("state after one lossy tick = %v, want healthy", st)
	}
}

func TestCanaryVetoedAndPooledIntoBaseline(t *testing.T) {
	clk := &testClock{}
	// Holdback ~1: every destination is a canary.
	g := newGovernor(t, Config{Holdback: 0.999}, clk)
	d := pfx(t, "10.0.0.1/32")

	var cumR, cumS int64
	for i := 0; i < 4; i++ {
		cumR += 10
		cumS += 100
		feed(g, clk, d, cumR, cumS)
	}
	if w, action := g.Review(d, 80); action != core.GuardVeto || w != 0 {
		t.Errorf("canary Review = (%d, %v), want (0, veto)", w, action)
	}
	st := g.Status()
	if st.Canaries != 1 {
		t.Errorf("Canaries = %d, want 1", st.Canaries)
	}
	// The canary's 10% loss becomes the baseline estimate.
	if st.BaselineLoss < 0.05 || st.BaselineLoss > 0.15 {
		t.Errorf("BaselineLoss = %v, want ~0.1", st.BaselineLoss)
	}
	// An unknown destination is still judged by the deterministic hash.
	if _, action := g.Review(pfx(t, "10.9.9.9/32"), 80); action != core.GuardVeto {
		t.Errorf("unseen destination Review = %v, want veto (Holdback ~1)", action)
	}
}

func TestUnknownDestinationAllowed(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	if w, action := g.Review(pfx(t, "10.0.0.1/32"), 64); action != core.GuardAllow || w != 64 {
		t.Errorf("Review = (%d, %v), want (64, allow)", w, action)
	}
	if _, _, ok := g.StateOf(pfx(t, "10.0.0.1/32")); ok {
		t.Error("Review must not create destination state")
	}
}

func TestCanaryAssignmentDeterministicAndProportional(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{Holdback: 0.2}, clk)
	g2 := newGovernor(t, Config{Holdback: 0.2}, clk)
	canaries := 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 32)
		c1, c2 := g.isCanary(p), g2.isCanary(p)
		if c1 != c2 {
			t.Fatalf("canary assignment for %v differs between instances", p)
		}
		if c1 {
			canaries++
		}
	}
	frac := float64(canaries) / n
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("canary fraction = %v, want ~0.2", frac)
	}
}

func TestConnectionChurnResetsDeltaAnchor(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	d := pfx(t, "10.0.0.1/32")

	// Build up a large cumulative total, then "churn": the lossy
	// connections close and the sums collapse. The negative delta must
	// not be judged (a naive implementation would see loss rate > 1 or
	// corrupt the EWMA).
	feed(g, clk, d, 500, 1000)
	feed(g, clk, d, 900, 2000)
	feed(g, clk, d, 5, 100) // churn: totals went backwards
	feed(g, clk, d, 5, 200) // clean traffic resumes
	feed(g, clk, d, 5, 300)
	if st, _, _ := g.StateOf(d); st == Quarantined {
		t.Error("churned counters quarantined a clean destination")
	}
}

func TestEvidenceAccumulatesAcrossSmallTicks(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{MinSegments: 100}, clk)
	d := pfx(t, "10.0.0.1/32")

	// 10 segments per tick: no single tick meets MinSegments, but the
	// pending deltas accumulate and eventually judge the 50% loss.
	driveToState(t, g, clk, d, 5, 10, Quarantined, 60)
}

func TestMissingTelemetryIsNoEvidence(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	d := pfx(t, "10.0.0.1/32")
	// A sampler with no loss telemetry reports zeros: segs never reach
	// MinSegments, so no judgment ever happens and the destination stays
	// healthy (never spuriously throttled by rate 0/0).
	for i := 0; i < 10; i++ {
		feed(g, clk, d, 0, 0)
	}
	if st, _, _ := g.StateOf(d); st != Healthy {
		t.Errorf("state = %v, want healthy with zero telemetry", st)
	}
	if w, action := g.Review(d, 64); action != core.GuardAllow || w != 64 {
		t.Errorf("Review = (%d, %v), want (64, allow)", w, action)
	}
}

func TestStatusCounts(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	healthy := pfx(t, "10.0.0.1/32")
	lossy := pfx(t, "10.0.0.2/32")
	var cumR, cumS int64
	for i := 0; i < 8; i++ {
		cumR += 50
		cumS += 100
		g.ObserveSample(healthy, core.Observation{Retrans: 0, SegsOut: cumS})
		g.ObserveSample(lossy, core.Observation{Retrans: cumR, SegsOut: cumS})
		clk.now += time.Second
		g.ObserveTick(clk.now)
	}
	st := g.Status()
	if st.Healthy != 1 || st.Quarantined != 1 {
		t.Errorf("Status = %+v, want 1 healthy + 1 quarantined", st)
	}
}

func TestConfigValidation(t *testing.T) {
	clk := &testClock{}
	cases := map[string]Config{
		"no clock":             {},
		"holdback negative":    {Clock: clk.Now, Holdback: -0.1},
		"holdback 1":           {Clock: clk.Now, Holdback: 1},
		"holdback NaN":         {Clock: clk.Now, Holdback: math.NaN()},
		"alpha > 1":            {Clock: clk.Now, Alpha: 1.5},
		"alpha negative":       {Clock: clk.Now, Alpha: -0.5},
		"loss floor inf":       {Clock: clk.Now, LossFloor: math.Inf(1)},
		"loss floor 1":         {Clock: clk.Now, LossFloor: 1},
		"fallback negative":    {Clock: clk.Now, BaselineFallback: -0.1},
		"ratio order":          {Clock: clk.Now, ThrottleRatio: 5, QuarantineRatio: 3},
		"recover >= throttle":  {Clock: clk.Now, RecoverRatio: 3, ThrottleRatio: 3},
		"min segments < 1":     {Clock: clk.Now, MinSegments: -1},
		"hysteresis < 1":       {Clock: clk.Now, HysteresisTicks: -1},
		"quarantine TTL < 0":   {Clock: clk.Now, QuarantineTTL: -time.Second},
		"throttle ratio NaN":   {Clock: clk.Now, ThrottleRatio: math.NaN()},
		"quarantine ratio inf": {Clock: clk.Now, QuarantineRatio: math.Inf(1)},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}

	g, err := New(Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	eff := g.Config()
	if eff.Alpha != DefaultAlpha || eff.QuarantineTTL != DefaultQuarantineTTL ||
		eff.MinSegments != DefaultMinSegments || eff.HysteresisTicks != DefaultHysteresisTicks {
		t.Errorf("defaults not applied: %+v", eff)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Healthy: "healthy", Throttled: "throttled",
		Quarantined: "quarantined", Probing: "probing", State(99): "unknown",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
	for _, a := range []core.GuardAction{core.GuardAllow, core.GuardCap, core.GuardVeto, core.GuardQuarantine, core.GuardAction(99)} {
		if a.String() == "" || strings.ContainsRune(a.String(), ' ') {
			t.Errorf("GuardAction(%d).String() = %q", a, a.String())
		}
	}
}

func TestClampRate(t *testing.T) {
	for in, want := range map[float64]float64{
		-1: 0, 0: 0, 0.5: 0.5, 1: 1, 2: 1,
	} {
		if got := clampRate(in); got != want {
			t.Errorf("clampRate(%v) = %v, want %v", in, got, want)
		}
	}
	if got := clampRate(math.NaN()); got != 0 {
		t.Errorf("clampRate(NaN) = %v, want 0", got)
	}
	if got := clampRate(math.Inf(1)); got != 1 {
		t.Errorf("clampRate(+Inf) = %v, want 1", got)
	}
}
