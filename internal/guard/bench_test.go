package guard

import (
	"net/netip"
	"testing"
	"time"

	"riptide/internal/core"
)

// BenchmarkGovernorObserve measures the per-sample hot path for a
// destination the governor already tracks — the case every sample after the
// first hits. It must not allocate.
func BenchmarkGovernorObserve(b *testing.B) {
	clk := &testClock{}
	g := newGovernor(b, Config{}, clk)
	d := pfx(b, "10.0.0.1/32")
	o := core.Observation{Dst: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Cwnd: 40, Retrans: 3, SegsOut: 1000}
	g.ObserveSample(d, o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ObserveSample(d, o)
	}
}

// TestObserveSampleAllocationFree asserts the benchmark's claim in the
// regular test suite, so an accidental allocation fails CI rather than just
// moving a benchmark number.
func TestObserveSampleAllocationFree(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	d := pfx(t, "10.0.0.1/32")
	o := core.Observation{Retrans: 3, SegsOut: 1000}
	g.ObserveSample(d, o) // first sample may allocate the destination record
	if allocs := testing.AllocsPerRun(100, func() {
		g.ObserveSample(d, o)
	}); allocs > 1 {
		t.Errorf("ObserveSample allocates %v objects per call for a known destination, want <= 1", allocs)
	}
}

// TestObserveTickSteadyStateAllocationFree: closing a round over known
// destinations is also allocation-free (Quarantines and Status may allocate;
// the per-tick loop must not).
func TestObserveTickSteadyStateAllocationFree(t *testing.T) {
	clk := &testClock{}
	g := newGovernor(t, Config{}, clk)
	for i := 0; i < 16; i++ {
		d := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 1}), 32)
		g.ObserveSample(d, core.Observation{Retrans: 1, SegsOut: 500})
	}
	clk.now += time.Second
	g.ObserveTick(clk.now)
	if allocs := testing.AllocsPerRun(100, func() {
		clk.now += time.Second
		g.ObserveTick(clk.now)
	}); allocs > 1 {
		t.Errorf("ObserveTick allocates %v objects per call in steady state, want <= 1", allocs)
	}
}
