package guard

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"riptide/internal/core"
)

// FuzzGovernorObserve throws arbitrary (including adversarial) telemetry at
// the governor: cumulative counters that jump, go negative, or overflow must
// never panic, never produce a NaN loss estimate, and never push Review
// outside its contract.
func FuzzGovernorObserve(f *testing.F) {
	f.Add(int64(0), int64(0), int64(10), uint8(1), uint8(3))
	f.Add(int64(50), int64(100), int64(1), uint8(2), uint8(10))
	f.Add(int64(-5), int64(-100), int64(7), uint8(0), uint8(1))
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MinInt64), uint8(4), uint8(20))
	f.Add(int64(1)<<62, int64(3), int64(0), uint8(8), uint8(5))

	f.Fuzz(func(t *testing.T, retrans, segs, step int64, nDests, ticks uint8) {
		clk := &testClock{}
		g, err := New(Config{Clock: clk.Now, MinSegments: 1, Holdback: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		dests := make([]netip.Prefix, int(nDests%8)+1)
		for i := range dests {
			dests[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 1}), 32)
		}
		r, s := retrans, segs
		for tick := 0; tick < int(ticks%32)+1; tick++ {
			for _, d := range dests {
				g.ObserveSample(d, core.Observation{Retrans: r, SegsOut: s})
			}
			clk.now += time.Second
			g.ObserveTick(clk.now)
			r += step
			s += step / 2
		}
		for _, d := range dests {
			w, action := g.Review(d, 64)
			switch action {
			case core.GuardAllow:
				if w != 64 {
					t.Errorf("allow returned window %d, want 64", w)
				}
			case core.GuardCap:
				if w < 1 || w > 64 {
					t.Errorf("cap returned window %d outside [1,64]", w)
				}
			case core.GuardVeto, core.GuardQuarantine:
				if w != 0 {
					t.Errorf("%v returned window %d, want 0", action, w)
				}
			default:
				t.Errorf("unknown action %v", action)
			}
		}
		st := g.Status()
		if math.IsNaN(st.BaselineLoss) || math.IsInf(st.BaselineLoss, 0) ||
			st.BaselineLoss < 0 || st.BaselineLoss > 1 {
			t.Errorf("BaselineLoss = %v, want finite in [0,1]", st.BaselineLoss)
		}
		for _, q := range g.Quarantines() {
			if q.Age < 0 {
				t.Errorf("quarantine age %v negative", q.Age)
			}
		}
	})
}
