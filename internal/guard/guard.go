// Package guard is Riptide's closed-loop safety governor.
//
// The paper's agent is open-loop: it learns per-destination congestion
// windows and programs them as route initcwnds, but never looks at what the
// jump-started connections experience. If a path's capacity shrinks after the
// window was learned, every new connection bursts a large first flight into
// loss — exactly the behaviour slow start exists to avoid — and the agent
// keeps re-programming the aggressive window as long as surviving
// connections still report large cwnds.
//
// The governor closes the loop. It watches the retransmit telemetry of
// sampled connections (ss's retrans:/segs_out: counters, or their simulated
// equivalents), maintains a per-destination EWMA of the observed loss rate on
// programmed routes, and compares it against a baseline measured on a
// holdback fraction of destinations deliberately left at the kernel-default
// initcwnd (the canary control group). When a destination's loss regresses
// past hysteresis-guarded thresholds, the governor steps in:
//
//	healthy ──(loss ≥ throttle threshold)──▶ throttled   (window halved)
//	throttled ──(loss ≥ quarantine threshold)──▶ quarantined (route cleared)
//	quarantined ──(cool-down TTL elapses)──▶ probing     (window halved)
//	probing ──(loss stays low)──▶ healthy   /  ──(loss again)──▶ quarantined
//
// Every transition requires HysteresisTicks consecutive ticks of evidence,
// so a single lossy round never flaps a route.
//
// The governor plugs into the agent through core.Governor: ObserveSample and
// ObserveTick run during stage 1 of the agent's tick (lock-free), Review is
// consulted under the agent's state lock for every planned route program,
// and Quarantines feeds fleet snapshot export so peers never warm-start a
// quarantined destination.
package guard

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"sync"
	"time"

	"riptide/internal/core"
	"riptide/internal/metrics"
)

// Defaults for Config fields left zero.
const (
	// DefaultHoldback leaves 5% of destinations at the kernel default as
	// the canary control group.
	DefaultHoldback = 0.05
	// DefaultAlpha is the EWMA weight on the historical loss estimate.
	DefaultAlpha = 0.5
	// DefaultThrottleRatio throttles a destination whose loss exceeds
	// this multiple of the canary baseline.
	DefaultThrottleRatio = 3.0
	// DefaultQuarantineRatio quarantines a throttled destination whose
	// loss exceeds this multiple of the canary baseline.
	DefaultQuarantineRatio = 6.0
	// DefaultRecoverRatio is the multiple of the baseline a throttled or
	// probing destination must stay under to recover to healthy.
	DefaultRecoverRatio = 1.5
	// DefaultLossFloor is the absolute loss rate below which the governor
	// never escalates, however clean the baseline: ~2% loss is within
	// normal WAN noise and not worth withdrawing a route over.
	DefaultLossFloor = 0.02
	// DefaultBaselineFallback stands in for the canary baseline until the
	// holdback group has produced enough evidence (or when Holdback is 0).
	DefaultBaselineFallback = 0.005
	// DefaultMinSegments is the minimum segments-sent evidence required
	// before one loss-rate judgment; smaller windows accumulate across
	// ticks instead of producing noisy rates.
	DefaultMinSegments = 32
	// DefaultHysteresisTicks is how many consecutive ticks of evidence a
	// state transition requires.
	DefaultHysteresisTicks = 2
	// DefaultQuarantineTTL is the cool-down before a quarantined
	// destination is probed again.
	DefaultQuarantineTTL = 2 * time.Minute
)

// Config configures a Governor. The zero value of every field except Clock
// gets a sensible default.
type Config struct {
	// Holdback is the fraction of destinations (chosen by a deterministic
	// hash of the prefix) held back as canaries: never programmed, their
	// loss pooled into the baseline. Must be in [0, 1). 0 disables the
	// control group and the baseline stays at BaselineFallback.
	Holdback float64
	// Alpha is the EWMA weight on the historical loss estimate, in (0, 1].
	Alpha float64
	// ThrottleRatio, QuarantineRatio, RecoverRatio are the baseline
	// multiples for the three thresholds; each must be >= 1 and
	// RecoverRatio < ThrottleRatio <= QuarantineRatio.
	ThrottleRatio   float64
	QuarantineRatio float64
	RecoverRatio    float64
	// LossFloor is the absolute loss rate below which the governor never
	// escalates. Must be in (0, 1).
	LossFloor float64
	// BaselineFallback is the assumed baseline loss until canaries have
	// produced evidence. Must be in (0, 1).
	BaselineFallback float64
	// MinSegments is the per-judgment evidence requirement in segments.
	MinSegments int64
	// HysteresisTicks is the consecutive-tick requirement for
	// transitions. Must be >= 1.
	HysteresisTicks int
	// QuarantineTTL is the quarantine cool-down. Must be positive.
	QuarantineTTL time.Duration
	// Clock supplies monotonic time, matching the owning agent's clock.
	// Required.
	Clock func() time.Duration
	// Metrics, when set, receives transition counters
	// (riptide_guard_throttles, riptide_guard_quarantines,
	// riptide_guard_recoveries, riptide_guard_probes).
	Metrics *metrics.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.Clock == nil {
		return c, fmt.Errorf("guard: Config.Clock is required")
	}
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Alpha, DefaultAlpha)
	def(&c.ThrottleRatio, DefaultThrottleRatio)
	def(&c.QuarantineRatio, DefaultQuarantineRatio)
	def(&c.RecoverRatio, DefaultRecoverRatio)
	def(&c.LossFloor, DefaultLossFloor)
	def(&c.BaselineFallback, DefaultBaselineFallback)
	if c.MinSegments == 0 {
		c.MinSegments = DefaultMinSegments
	}
	if c.HysteresisTicks == 0 {
		c.HysteresisTicks = DefaultHysteresisTicks
	}
	if c.QuarantineTTL == 0 {
		c.QuarantineTTL = DefaultQuarantineTTL
	}
	for name, v := range map[string]float64{
		"Holdback": c.Holdback, "Alpha": c.Alpha,
		"ThrottleRatio": c.ThrottleRatio, "QuarantineRatio": c.QuarantineRatio,
		"RecoverRatio": c.RecoverRatio, "LossFloor": c.LossFloor,
		"BaselineFallback": c.BaselineFallback,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return c, fmt.Errorf("guard: Config.%s %v must be finite", name, v)
		}
	}
	if c.Holdback < 0 || c.Holdback >= 1 {
		return c, fmt.Errorf("guard: Config.Holdback %v must be in [0,1)", c.Holdback)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return c, fmt.Errorf("guard: Config.Alpha %v must be in (0,1]", c.Alpha)
	}
	if c.RecoverRatio < 1 || c.ThrottleRatio <= c.RecoverRatio || c.QuarantineRatio < c.ThrottleRatio {
		return c, fmt.Errorf("guard: ratios must satisfy 1 <= RecoverRatio < ThrottleRatio <= QuarantineRatio (got %v, %v, %v)",
			c.RecoverRatio, c.ThrottleRatio, c.QuarantineRatio)
	}
	if c.LossFloor <= 0 || c.LossFloor >= 1 {
		return c, fmt.Errorf("guard: Config.LossFloor %v must be in (0,1)", c.LossFloor)
	}
	if c.BaselineFallback <= 0 || c.BaselineFallback >= 1 {
		return c, fmt.Errorf("guard: Config.BaselineFallback %v must be in (0,1)", c.BaselineFallback)
	}
	if c.MinSegments < 1 {
		return c, fmt.Errorf("guard: Config.MinSegments %d must be >= 1", c.MinSegments)
	}
	if c.HysteresisTicks < 1 {
		return c, fmt.Errorf("guard: Config.HysteresisTicks %d must be >= 1", c.HysteresisTicks)
	}
	if c.QuarantineTTL <= 0 {
		return c, fmt.Errorf("guard: Config.QuarantineTTL %v must be positive", c.QuarantineTTL)
	}
	return c, nil
}

// State is a destination's position in the governor's state machine.
type State int

// Governor states.
const (
	// Healthy destinations are programmed as planned.
	Healthy State = iota
	// Throttled destinations are programmed at half the planned window.
	Throttled
	// Quarantined destinations are vetoed and their routes cleared until
	// the cool-down TTL elapses.
	Quarantined
	// Probing destinations finished their cool-down and run at half
	// window while the governor watches for the regression to return.
	Probing
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Throttled:
		return "throttled"
	case Quarantined:
		return "quarantined"
	case Probing:
		return "probing"
	default:
		return "unknown"
	}
}

// destState is the governor's per-destination record.
type destState struct {
	state  State
	canary bool

	// Current-tick accumulation: sums of the cumulative counters of the
	// connections sampled this tick.
	tickRetrans int64
	tickSegs    int64
	sampled     bool

	// Previous tick's sums, for delta computation. Connection churn makes
	// the sums non-monotonic; negative deltas reset the anchor.
	prevRetrans int64
	prevSegs    int64
	havePrev    bool

	// Deltas accumulated until MinSegments of evidence supports a
	// judgment.
	pendRetrans int64
	pendSegs    int64

	// EWMA of judged loss rates.
	loss     float64
	haveLoss bool

	// Hysteresis counters: consecutive ticks of escalation / recovery
	// evidence.
	hotTicks  int
	coolTicks int

	quarantinedAt time.Duration
	// queued marks membership in the governor's quarantine timer list, so
	// re-quarantining a destination never double-enters it.
	queued bool
}

// Governor implements core.Governor: a per-destination loss-regression
// state machine fed by the agent's sampling loop.
type Governor struct {
	cfg Config

	mu    sync.Mutex
	dests map[netip.Prefix]*destState

	// Delta index: ObserveTick touches only destinations that actually
	// produced evidence this round (sampledList, rebuilt each tick by
	// ObserveSample) plus quarantine timers that may have fired (quarList,
	// consulted only once nextProbe — the earliest cool-down deadline —
	// has been reached). A tick with no samples and no due timers does no
	// per-destination work at all.
	sampledList []*destState
	quarList    []*destState
	nextProbe   time.Duration

	// Canary baseline: pooled deltas and their EWMA loss rate.
	basePendRetrans int64
	basePendSegs    int64
	baseLoss        float64
	haveBase        bool
}

// noProbe is the nextProbe sentinel while no quarantine timer is pending.
const noProbe = time.Duration(math.MaxInt64)

var _ core.Governor = (*Governor)(nil)

// New constructs a Governor.
func New(cfg Config) (*Governor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Governor{
		cfg:       cfg,
		dests:     make(map[netip.Prefix]*destState),
		nextProbe: noProbe,
	}, nil
}

// Config returns the effective configuration (defaults applied).
func (g *Governor) Config() Config { return g.cfg }

// isCanary deterministically assigns a destination to the holdback group:
// an FNV-1a hash of the prefix mapped to [0,1) and compared to Holdback.
// Deterministic assignment keeps the control group stable across restarts
// and identical on every agent in a fleet.
func (g *Governor) isCanary(dst netip.Prefix) bool {
	if g.cfg.Holdback <= 0 {
		return false
	}
	h := fnv.New64a()
	b := dst.Addr().As16()
	h.Write(b[:])
	h.Write([]byte{byte(dst.Bits())})
	u := h.Sum64() >> 11 // 53 significant bits
	return float64(u)/float64(1<<53) < g.cfg.Holdback
}

// ObserveSample implements core.Governor: it folds one sampled connection's
// cumulative telemetry into the destination's current-tick sums. The path is
// allocation-free for destinations the governor already tracks.
func (g *Governor) ObserveSample(dst netip.Prefix, o core.Observation) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ds, ok := g.dests[dst]
	if !ok {
		ds = &destState{canary: g.isCanary(dst)}
		g.dests[dst] = ds
	}
	ds.tickRetrans += o.Retrans
	ds.tickSegs += o.SegsOut
	if !ds.sampled {
		ds.sampled = true
		g.sampledList = append(g.sampledList, ds)
	}
}

// ObserveTick implements core.Governor: it closes one sampling round,
// converting each destination's per-tick telemetry deltas into loss-rate
// judgments and advancing the state machines. Only destinations sampled this
// round are visited — an unsampled destination contributes no evidence and
// its state machine cannot move — plus the quarantine timer list when the
// earliest cool-down deadline has been reached.
func (g *Governor) ObserveTick(now time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()

	// Fold canary evidence into the baseline first, so this tick's
	// judgments compare against this tick's baseline.
	for _, ds := range g.sampledList {
		if !ds.canary {
			continue
		}
		if dR, dS, ok := ds.takeDelta(); ok {
			g.basePendRetrans += dR
			g.basePendSegs += dS
		}
	}
	if g.basePendSegs >= g.cfg.MinSegments {
		rate := clampRate(float64(g.basePendRetrans) / float64(g.basePendSegs))
		g.baseLoss = g.ewma(g.baseLoss, rate, g.haveBase)
		g.haveBase = true
		g.basePendRetrans, g.basePendSegs = 0, 0
	}

	base := g.cfg.BaselineFallback
	if g.haveBase {
		base = g.baseLoss
	}
	throttleAt := math.Max(g.cfg.LossFloor, g.cfg.ThrottleRatio*base)
	quarantineAt := math.Max(g.cfg.LossFloor, g.cfg.QuarantineRatio*base)
	recoverAt := math.Min(math.Max(g.cfg.LossFloor/2, g.cfg.RecoverRatio*base), throttleAt)

	for _, ds := range g.sampledList {
		ds.sampled = false
		if ds.canary {
			continue
		}

		judged := false
		if dR, dS, ok := ds.takeDelta(); ok {
			ds.pendRetrans += dR
			ds.pendSegs += dS
		}
		if ds.pendSegs >= g.cfg.MinSegments {
			rate := clampRate(float64(ds.pendRetrans) / float64(ds.pendSegs))
			ds.loss = g.ewma(ds.loss, rate, ds.haveLoss)
			ds.haveLoss = true
			ds.pendRetrans, ds.pendSegs = 0, 0
			judged = true
		}
		if !judged {
			continue
		}

		switch ds.state {
		case Healthy:
			if ds.loss >= throttleAt {
				ds.hotTicks++
			} else {
				ds.hotTicks = 0
			}
			if ds.hotTicks >= g.cfg.HysteresisTicks {
				ds.transition(Throttled)
				g.count("riptide_guard_throttles")
			}
		case Throttled:
			switch {
			case ds.loss >= quarantineAt:
				ds.hotTicks++
				ds.coolTicks = 0
			case ds.loss < recoverAt:
				ds.coolTicks++
				ds.hotTicks = 0
			default:
				ds.hotTicks, ds.coolTicks = 0, 0
			}
			if ds.hotTicks >= g.cfg.HysteresisTicks {
				ds.transition(Quarantined)
				g.pushQuarantine(ds, now)
			} else if ds.coolTicks >= g.cfg.HysteresisTicks {
				ds.transition(Healthy)
				g.count("riptide_guard_recoveries")
			}
		case Quarantined:
			// Loss seen during quarantine is kernel-default traffic; it
			// neither extends nor shortens the cool-down. The timer list
			// below owns the release.
		case Probing:
			switch {
			case ds.loss >= throttleAt:
				ds.hotTicks++
				ds.coolTicks = 0
			case ds.loss < recoverAt:
				ds.coolTicks++
				ds.hotTicks = 0
			default:
				ds.hotTicks, ds.coolTicks = 0, 0
			}
			if ds.hotTicks >= g.cfg.HysteresisTicks {
				ds.transition(Quarantined)
				g.pushQuarantine(ds, now)
			} else if ds.coolTicks >= g.cfg.HysteresisTicks {
				ds.transition(Healthy)
				g.count("riptide_guard_recoveries")
			}
		}
	}
	g.sampledList = g.sampledList[:0]

	// Release quarantines whose cool-down lapsed. nextProbe is a lazy lower
	// bound on the earliest deadline, so ticks before it skip the list
	// entirely; the scan recomputes the bound from the survivors. The EWMA
	// restarts fresh when probing begins so stale pre-quarantine loss
	// cannot trigger instant re-quarantine.
	if now >= g.nextProbe {
		next := noProbe
		kept := g.quarList[:0]
		for _, ds := range g.quarList {
			if ds.state != Quarantined {
				ds.queued = false
				continue
			}
			if now-ds.quarantinedAt >= g.cfg.QuarantineTTL {
				ds.transition(Probing)
				ds.haveLoss = false
				ds.loss = 0
				ds.pendRetrans, ds.pendSegs = 0, 0
				ds.queued = false
				g.count("riptide_guard_probes")
				continue
			}
			kept = append(kept, ds)
			if deadline := ds.quarantinedAt + g.cfg.QuarantineTTL; deadline < next {
				next = deadline
			}
		}
		g.quarList = kept
		g.nextProbe = next
	}
}

// pushQuarantine records a quarantine entry: it stamps the cool-down start,
// enters the destination into the timer list (once), folds the release
// deadline into nextProbe, and counts the transition. Called with mu held at
// both quarantine-entry sites.
func (g *Governor) pushQuarantine(ds *destState, now time.Duration) {
	ds.quarantinedAt = now
	if !ds.queued {
		ds.queued = true
		g.quarList = append(g.quarList, ds)
	}
	if deadline := now + g.cfg.QuarantineTTL; deadline < g.nextProbe {
		g.nextProbe = deadline
	}
	g.count("riptide_guard_quarantines")
}

// takeDelta converts the destination's current-tick sums into deltas against
// the previous tick and re-anchors. It returns ok=false when there is no
// previous anchor yet or when connection churn made the sums go backwards
// (the anchor resets and judgment resumes next tick).
func (ds *destState) takeDelta() (dR, dS int64, ok bool) {
	tR, tS := ds.tickRetrans, ds.tickSegs
	ds.tickRetrans, ds.tickSegs = 0, 0
	if !ds.havePrev {
		ds.prevRetrans, ds.prevSegs = tR, tS
		ds.havePrev = true
		return 0, 0, false
	}
	dR, dS = tR-ds.prevRetrans, tS-ds.prevSegs
	ds.prevRetrans, ds.prevSegs = tR, tS
	if dR < 0 || dS < 0 {
		return 0, 0, false
	}
	return dR, dS, true
}

// transition moves to a new state and clears the hysteresis counters.
func (ds *destState) transition(to State) {
	ds.state = to
	ds.hotTicks, ds.coolTicks = 0, 0
}

// ewma folds one judged rate into the estimate.
func (g *Governor) ewma(prev, rate float64, havePrev bool) float64 {
	if !havePrev {
		return rate
	}
	return g.cfg.Alpha*prev + (1-g.cfg.Alpha)*rate
}

// clampRate bounds a judged loss rate to [0, 1] and rejects non-finite
// values (impossible with the integer pipeline above, but the governor's
// thresholds must never see NaN).
func clampRate(r float64) float64 {
	if math.IsNaN(r) || r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// count bumps a metrics counter when a registry is configured.
func (g *Governor) count(name string) {
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter(name).Inc()
	}
}

// Review implements core.Governor: the planner's pre-program check.
func (g *Governor) Review(dst netip.Prefix, window int) (int, core.GuardAction) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ds, ok := g.dests[dst]
	if !ok {
		// Never-sampled destination (e.g. a fleet merge): only the
		// canary decision applies — it is deterministic and needs no
		// state.
		if g.isCanary(dst) {
			return 0, core.GuardVeto
		}
		return window, core.GuardAllow
	}
	if ds.canary {
		return 0, core.GuardVeto
	}
	switch ds.state {
	case Throttled, Probing:
		capped := window / 2
		if capped < 1 {
			capped = 1
		}
		return capped, core.GuardCap
	case Quarantined:
		return 0, core.GuardQuarantine
	default:
		return window, core.GuardAllow
	}
}

// Quarantines implements core.Governor: the currently quarantined
// destinations with their ages, for snapshot export.
func (g *Governor) Quarantines() []core.Quarantine {
	now := g.cfg.Clock()
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []core.Quarantine
	for p, ds := range g.dests {
		if ds.state != Quarantined {
			continue
		}
		age := now - ds.quarantinedAt
		if age < 0 {
			age = 0
		}
		out = append(out, core.Quarantine{Prefix: p, Age: age})
	}
	return out
}

// Status is a point-in-time summary for the /status endpoint.
type Status struct {
	// Healthy, Throttled, Quarantined, Probing count tracked (non-canary)
	// destinations per state.
	Healthy     int `json:"healthy"`
	Throttled   int `json:"throttled"`
	Quarantined int `json:"quarantined"`
	Probing     int `json:"probing"`
	// Canaries counts destinations held back as the control group.
	Canaries int `json:"canaries"`
	// BaselineLoss is the canary pool's EWMA loss rate (the configured
	// fallback until canaries have produced evidence).
	BaselineLoss float64 `json:"baselineLoss"`
}

// Status returns a summary of the governor's current state.
func (g *Governor) Status() Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Status{BaselineLoss: g.cfg.BaselineFallback}
	if g.haveBase {
		st.BaselineLoss = g.baseLoss
	}
	for _, ds := range g.dests {
		if ds.canary {
			st.Canaries++
			continue
		}
		switch ds.state {
		case Healthy:
			st.Healthy++
		case Throttled:
			st.Throttled++
		case Quarantined:
			st.Quarantined++
		case Probing:
			st.Probing++
		}
	}
	return st
}

// StateOf reports the tracked state of one destination; ok is false for
// destinations the governor has never sampled. Canary destinations report
// Healthy with canary=true.
func (g *Governor) StateOf(dst netip.Prefix) (state State, canary, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ds, present := g.dests[dst]
	if !present {
		return Healthy, false, false
	}
	return ds.state, ds.canary, true
}
