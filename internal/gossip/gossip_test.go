package gossip

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"riptide/internal/core"
)

type stubSampler struct {
	mu  sync.Mutex
	obs []core.Observation
}

func (s *stubSampler) SampleConnections(buf []core.Observation) ([]core.Observation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf = append(buf, s.obs...)
	s.obs = nil
	return buf, nil
}

type memRoutes struct {
	mu  sync.Mutex
	set map[netip.Prefix]int
}

func newMemRoutes() *memRoutes { return &memRoutes{set: make(map[netip.Prefix]int)} }

func (r *memRoutes) SetInitCwnd(p netip.Prefix, cwnd int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.set[p] = cwnd
	return nil
}

func (r *memRoutes) ClearInitCwnd(p netip.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.set, p)
	return nil
}

func obs(t *testing.T, addr string, cwnd int) core.Observation {
	t.Helper()
	a, err := netip.ParseAddr(addr)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", addr, err)
	}
	return core.Observation{Dst: a, Cwnd: cwnd}
}

func newTestAgent(t *testing.T, observations []core.Observation) *core.Agent {
	t.Helper()
	a, err := core.New(core.Config{
		Sampler: &stubSampler{obs: observations},
		Routes:  newMemRoutes(),
		Clock:   func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	if observations != nil {
		if err := a.Tick(); err != nil {
			t.Fatalf("Tick: %v", err)
		}
	}
	return a
}

func entries(n int) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Entry{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 32).String(),
			Window:  10 + i%50,
			Samples: uint64(i + 1),
		})
	}
	return out
}

// TestDigestOrderIndependent: the digest is a pure function of the entry
// set — shuffling the slice, or differing sample counts / ages / mod
// versions, must not change it.
func TestDigestOrderIndependent(t *testing.T) {
	base := entries(200)
	d1 := Compute(base, "a", "i1", 7)

	shuffled := append([]Entry(nil), base...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	churned := make([]Entry, len(shuffled))
	copy(churned, shuffled)
	for i := range churned {
		churned[i].Samples += 1000
		churned[i].AgeNanos += int64(time.Minute)
		churned[i].ModVersion += 99
	}
	d2 := Compute(churned, "b", "i2", 900)
	if !ContentEqual(d1, d2) {
		t.Fatal("digest changed under shuffle + samples/age/version churn")
	}

	// Durable content changes do move it: a window change...
	mod := append([]Entry(nil), base...)
	mod[17].Window++
	if ContentEqual(d1, Compute(mod, "a", "i1", 7)) {
		t.Fatal("window change not reflected in digest")
	}
	// ...a quarantine flip...
	mod = append([]Entry(nil), base...)
	mod[17].Quarantined = true
	if ContentEqual(d1, Compute(mod, "a", "i1", 7)) {
		t.Fatal("quarantine flip not reflected in digest")
	}
	// ...and a removed entry.
	if ContentEqual(d1, Compute(base[1:], "a", "i1", 7)) {
		t.Fatal("removed entry not reflected in digest")
	}
}

func TestDiffBucketsIsolatesChange(t *testing.T) {
	base := entries(300)
	d1 := Compute(base, "", "", 0)

	mod := append([]Entry(nil), base...)
	mod[123].Window += 5
	d2 := Compute(mod, "", "", 0)

	diff := DiffBuckets(d1, d2)
	if len(diff) != 1 {
		t.Fatalf("diff = %v, want exactly one bucket", diff)
	}
	if want := BucketOf(base[123].Prefix); diff[0] != want {
		t.Fatalf("diff bucket %d, want %d", diff[0], want)
	}

	// Fetching the divergent bucket returns the changed entry.
	got := FilterBuckets(mod, diff)
	found := false
	for _, e := range got {
		if e.Prefix == mod[123].Prefix && e.Window == mod[123].Window {
			found = true
		}
	}
	if !found {
		t.Fatalf("FilterBuckets(%v) = %d entries, changed entry missing", diff, len(got))
	}
	if len(got) >= len(mod) {
		t.Fatalf("bucket fetch returned %d of %d entries — no narrowing", len(got), len(mod))
	}

	if d := DiffBuckets(d1, d1); len(d) != 0 {
		t.Fatalf("self-diff = %v, want empty", d)
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := Compute(entries(10), "host-a", "inst-1", 42)
	data, err := EncodeDigest(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !ContentEqual(d, got) || got.Instance != "inst-1" || got.TableVersion != 42 || got.Source != "host-a" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeDigestRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{"version": 1,`,
		"zero version":   `{"buckets": []}`,
		"future version": `{"version": 2, "buckets": []}`,
		"short buckets":  `{"version": 1, "buckets": [1, 2, 3]}`,
		"long buckets":   `{"version": 1, "count": 1, "buckets": [` + longBuckets(NumBuckets+1) + `]}`,
		"negative count": `{"version": 1, "count": -1, "buckets": [` + longBuckets(NumBuckets) + `]}`,
		"wrong type":     `[1, 2]`,
	}
	for name, data := range cases {
		if _, err := DecodeDigest([]byte(data)); err == nil {
			t.Errorf("%s: DecodeDigest accepted %q", name, data)
		}
	}
}

func longBuckets(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ","
		}
		s += "0"
	}
	return s
}

func TestDeltaRoundTrip(t *testing.T) {
	d := Delta{
		Version:      WireVersion,
		Source:       "host-a",
		Instance:     "inst-1",
		TableVersion: 42,
		Since:        40,
		Entries:      entries(3),
	}
	data, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TableVersion != 42 || got.Since != 40 || len(got.Entries) != 3 || got.Full {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range got.Entries {
		if got.Entries[i] != d.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], d.Entries[i])
		}
	}
}

func TestDecodeDeltaRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{"version": 1,`,
		"zero version":   `{"entries": []}`,
		"future version": `{"version": 2, "entries": []}`,
		"wrong type":     `"delta"`,
	}
	for name, data := range cases {
		if _, err := DecodeDelta([]byte(data)); err == nil {
			t.Errorf("%s: DecodeDelta accepted %q", name, data)
		}
	}
}

// TestTableDeltaSince: versioned deltas carry only entries committed after
// the cursor, and an unusable cursor degrades to a full table.
func TestTableDeltaSince(t *testing.T) {
	a := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "192.0.2.2", 50),
	})
	v1 := a.TableVersion()
	if v1 == 0 {
		t.Fatal("table version did not advance on first programs")
	}

	full := TableDelta(a, "src", "inst", 0)
	if !full.Full || len(full.Entries) != 2 || full.TableVersion != v1 {
		t.Fatalf("full delta = %+v", full)
	}

	// Nothing changed: a delta from v1 is empty.
	empty := TableDelta(a, "src", "inst", v1)
	if empty.Full || len(empty.Entries) != 0 || empty.Since != v1 {
		t.Fatalf("empty delta = %+v", empty)
	}

	// One more destination learned: the delta carries exactly it.
	if _, err := a.MergeSnapshot([]core.SnapshotEntry{{
		Prefix:  netip.MustParsePrefix("198.51.100.9/32"),
		Window:  30,
		Samples: 5,
		Age:     time.Second,
	}}, core.MergePolicy{MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	delta := TableDelta(a, "src", "inst", v1)
	if delta.Full || len(delta.Entries) != 1 || delta.Entries[0].Prefix != "198.51.100.9/32" {
		t.Fatalf("delta = %+v, want just 198.51.100.9/32", delta)
	}
	if delta.TableVersion <= v1 {
		t.Fatalf("delta version %d did not advance past %d", delta.TableVersion, v1)
	}

	// A cursor from the future (a previous life of this agent) cannot be
	// interpreted: serve the full table.
	reset := TableDelta(a, "src", "inst", delta.TableVersion+1000)
	if !reset.Full || len(reset.Entries) != 3 {
		t.Fatalf("future-cursor delta = %+v, want full table", reset)
	}
}

// TestTableDigestMatchesWireContent: the digest an agent serves equals the
// digest computed over the entries it would serve — the invariant the
// puller's converged-detection depends on.
func TestTableDigestMatchesWireContent(t *testing.T) {
	a := newTestAgent(t, []core.Observation{
		obs(t, "192.0.2.1", 40),
		obs(t, "198.51.100.7", 80),
	})
	d := TableDigest(a, "src", "inst")
	full := TableDelta(a, "src", "inst", 0)
	recomputed := Compute(full.Entries, "src", "inst", full.TableVersion)
	if !ContentEqual(d, recomputed) {
		t.Fatal("served digest does not match served content")
	}
	if d.Count != 2 {
		t.Fatalf("digest count = %d, want 2", d.Count)
	}
}
