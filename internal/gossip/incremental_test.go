package gossip

import (
	"bytes"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"riptide/internal/core"
)

// scriptedGovernor is a Governor test double whose quarantine set is driven
// by the test: Review quarantines exactly the scripted prefixes, and
// Quarantines reports them as markers. Lifting a prefix out of the set
// models the time-based quarantine→probing transition, which changes digest
// content without any agent commit.
type scriptedGovernor struct {
	mu          sync.Mutex
	quarantined map[netip.Prefix]bool
}

func newScriptedGovernor() *scriptedGovernor {
	return &scriptedGovernor{quarantined: make(map[netip.Prefix]bool)}
}

func (g *scriptedGovernor) set(p netip.Prefix, on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if on {
		g.quarantined[p] = true
	} else {
		delete(g.quarantined, p)
	}
}

func (g *scriptedGovernor) ObserveSample(netip.Prefix, core.Observation) {}
func (g *scriptedGovernor) ObserveTick(time.Duration)                    {}

func (g *scriptedGovernor) Review(dst netip.Prefix, window int) (int, core.GuardAction) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.quarantined[dst] {
		return 0, core.GuardQuarantine
	}
	return window, core.GuardAllow
}

func (g *scriptedGovernor) Quarantines() []core.Quarantine {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]core.Quarantine, 0, len(g.quarantined))
	for p := range g.quarantined {
		out = append(out, core.Quarantine{Prefix: p})
	}
	return out
}

// requireDigestMatch pins the incremental digest (TableDigest, fed by the
// agent's per-commit XOR patches) byte-identical to the full rescan
// (Compute over ExportDelta(0)) — encoded bytes and all.
func requireDigestMatch(t *testing.T, a *core.Agent, stage string) {
	t.Helper()
	got := TableDigest(a, "src", "inst")
	entries, version := a.ExportDelta(0)
	want := Compute(FromCore(entries), "src", "inst", version)
	gb, err := EncodeDigest(got)
	if err != nil {
		t.Fatalf("%s: encode incremental digest: %v", stage, err)
	}
	wb, err := EncodeDigest(want)
	if err != nil {
		t.Fatalf("%s: encode rescan digest: %v", stage, err)
	}
	if !bytes.Equal(gb, wb) {
		if got.Count != want.Count {
			t.Fatalf("%s: incremental count %d, rescan count %d", stage, got.Count, want.Count)
		}
		for i := range want.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("%s: bucket %d incremental %#x, rescan %#x", stage, i, got.Buckets[i], want.Buckets[i])
			}
		}
		t.Fatalf("%s: digests differ:\n  incremental %s\n  rescan      %s", stage, gb, wb)
	}
}

// TestIncrementalDigestMatchesRescan drives every commit kind that can move
// digest content — tick route programs (install + window change), fleet
// merge seeds, TTL expiry, and guard quarantine transitions (both the
// route-clearing onset and the commit-free recovery) — at shard counts
// 1/2/4/8, comparing the incremental digest against a full rescan after
// each, with a concurrent digest reader racing the churn (run under -race
// in CI's race-stress step).
func TestIncrementalDigestMatchesRescan(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var clockMu sync.Mutex
			now := time.Duration(0)
			sampler := &stubSampler{}
			gov := newScriptedGovernor()
			a, err := core.New(core.Config{
				Sampler: sampler,
				Routes:  newMemRoutes(),
				Shards:  shards,
				Guard:   gov,
				TTL:     time.Minute,
				Clock: func() time.Duration {
					clockMu.Lock()
					defer clockMu.Unlock()
					return now
				},
			})
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			defer a.Close()
			advance := func(d time.Duration) {
				clockMu.Lock()
				now += d
				clockMu.Unlock()
			}
			feed := func(observations []core.Observation) {
				sampler.mu.Lock()
				sampler.obs = observations
				sampler.mu.Unlock()
				if err := a.Tick(); err != nil {
					t.Fatalf("Tick: %v", err)
				}
			}
			dst := func(i int) string {
				return fmt.Sprintf("10.1.%d.%d", i/250, i%250+1)
			}

			// A reader hammers the incremental digest throughout, so -race
			// exercises the accumulator against every patch site.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = TableDigest(a, "src", "inst")
					}
				}
			}()

			// Commit kind: tick route programs (fresh installs).
			install := make([]core.Observation, 0, 300)
			for i := 0; i < 300; i++ {
				install = append(install, obs(t, dst(i), 12+i%30))
			}
			feed(install)
			requireDigestMatch(t, a, "program-install")

			// Commit kind: tick route programs (window changes on installed
			// routes; the EWMA moves, so a subset reprograms).
			changed := make([]core.Observation, 0, 100)
			for i := 0; i < 100; i++ {
				changed = append(changed, obs(t, dst(i), 60))
			}
			advance(time.Second)
			feed(changed)
			requireDigestMatch(t, a, "program-change")

			// Commit kind: fleet merge seeds (prefixes this agent has not
			// observed itself).
			seeds := make([]core.SnapshotEntry, 0, 50)
			for i := 0; i < 50; i++ {
				p := netip.MustParsePrefix(fmt.Sprintf("192.0.%d.%d/32", i/200, i%200+1))
				seeds = append(seeds, core.SnapshotEntry{
					Prefix: p, Window: 20 + i%10, Samples: 5, Age: time.Second,
				})
			}
			if _, err := a.MergeSnapshot(seeds, core.MergePolicy{}); err != nil {
				t.Fatalf("MergeSnapshot: %v", err)
			}
			requireDigestMatch(t, a, "merge-seed")

			// Commit kind: quarantine onset — the governor's verdict clears
			// the installed route and a marker appears in exports.
			qKey := netip.MustParsePrefix(dst(3) + "/32")
			gov.set(qKey, true)
			advance(time.Second)
			feed([]core.Observation{obs(t, dst(3), 40)})
			requireDigestMatch(t, a, "quarantine-onset")

			// Governor-clock transition: the quarantine lapses with no agent
			// commit at all; only the read-time marker overlay can see it.
			gov.set(qKey, false)
			requireDigestMatch(t, a, "quarantine-recovery")

			// Commit kind: TTL expiry (nothing refreshed for a full TTL).
			advance(2 * time.Minute)
			feed(nil)
			requireDigestMatch(t, a, "expiry")

			// Re-install after the wipe, racing the reader the whole way.
			reinstall := make([]core.Observation, 0, 120)
			for i := 0; i < 120; i++ {
				reinstall = append(reinstall, obs(t, dst(i), 8+i%20))
			}
			feed(reinstall)
			requireDigestMatch(t, a, "reinstall")

			close(stop)
			wg.Wait()
			requireDigestMatch(t, a, "quiesced")
		})
	}
}

// TestIncrementalDigestMatchesRescanAggregation covers the aggregation
// commit kinds — child absorption into a covering route, split-back on
// window divergence, and dissolve via expiry — which withdraw and install
// routes through their own plan paths.
func TestIncrementalDigestMatchesRescanAggregation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var clockMu sync.Mutex
			now := time.Duration(0)
			sampler := &stubSampler{}
			a, err := core.New(core.Config{
				Sampler:       sampler,
				Routes:        newMemRoutes(),
				Shards:        shards,
				TTL:           time.Minute,
				AggregateBits: 24,
				Clock: func() time.Duration {
					clockMu.Lock()
					defer clockMu.Unlock()
					return now
				},
			})
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			defer a.Close()
			feed := func(observations []core.Observation) {
				sampler.mu.Lock()
				sampler.obs = observations
				sampler.mu.Unlock()
				if err := a.Tick(); err != nil {
					t.Fatalf("Tick: %v", err)
				}
			}

			// Eight same-window children of one /24: the covering route
			// forms and absorbs them (absorption withdraws child routes).
			converged := make([]core.Observation, 0, 8)
			for i := 0; i < 8; i++ {
				converged = append(converged, obs(t, fmt.Sprintf("10.9.9.%d", i+1), 24))
			}
			for round := 0; round < 4; round++ {
				clockMu.Lock()
				now += time.Second
				clockMu.Unlock()
				feed(append([]core.Observation(nil), converged...))
				requireDigestMatch(t, a, fmt.Sprintf("aggregate-round-%d", round))
			}

			// One child diverges hard: its specific route splits back out.
			diverged := append([]core.Observation(nil), converged...)
			diverged[0] = obs(t, "10.9.9.1", 90)
			clockMu.Lock()
			now += time.Second
			clockMu.Unlock()
			feed(diverged)
			requireDigestMatch(t, a, "aggregate-split")

			// Expire everything: absorbed children and the covering route go
			// together.
			clockMu.Lock()
			now += 3 * time.Minute
			clockMu.Unlock()
			feed(nil)
			requireDigestMatch(t, a, "aggregate-expiry")
		})
	}
}
