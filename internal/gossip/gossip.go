// Package gossip implements the anti-entropy layer of fleet sharing: a
// compact per-bucket table digest so converged peers exchange O(1) bytes, a
// versioned delta format so divergent peers transfer only what changed, and
// the shared wire Entry both ride on (the same entry the full-snapshot
// format uses — internal/fleet aliases it).
//
// The sync ladder a puller walks each round, cheapest rung first:
//
//  1. digest — fetch the peer's Digest. If the buckets match the digest
//     remembered from the last sync, the peer has nothing new: the round
//     cost one small fixed-size message.
//  2. delta — same peer instance as last time: fetch entries committed
//     after the table version seen last round (`since`).
//  3. buckets — the peer restarted (instance changed, version counter
//     reset) but a digest from its previous life is remembered: fetch only
//     the buckets whose hashes diverge.
//  4. full — first contact, or the peer cannot answer the above: fetch the
//     whole table (the delta endpoint with Full set, or the legacy
//     /fleet/snapshot for pre-gossip peers).
//
// Digests are deterministic and order-independent: each entry hashes its
// durable content (prefix, window, quarantined — NOT samples, age, or mod
// version, which churn every round without changing what a peer would
// learn), and a bucket's hash is the XOR of its entries' hashes. Two tables
// with the same durable content produce the same digest regardless of entry
// order, merge history, or which instance computed it.
package gossip

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"riptide/internal/core"
)

// WireVersion is the digest/delta wire-format version. Decoders reject
// anything else rather than guessing at field semantics.
const WireVersion = 1

// NumBuckets is the fixed digest width. 64 buckets keep the digest near
// half a kilobyte of JSON while still isolating a single changed entry to
// 1/64th of the table on a post-restart resync. Changing it is a wire
// format change (digests of different widths never compare equal). The
// value is canonical in internal/core, which maintains the same bucket
// hashes incrementally at each commit (core.DigestBuckets).
const NumBuckets = core.DigestBuckets

// Entry is one learned destination on the wire. It is shared with the
// full-snapshot format (fleet.Entry is an alias), so a delta entry and a
// snapshot entry are the same thing and merge through the same policy.
type Entry struct {
	// Prefix is the destination prefix in CIDR text form ("203.0.113.7/32").
	Prefix string `json:"prefix"`
	// Window is the initcwnd the source agent had programmed.
	Window int `json:"window"`
	// Samples is the cumulative observation count behind the window.
	Samples uint64 `json:"samples"`
	// AgeNanos is how long before the snapshot was created the entry was
	// last refreshed, in nanoseconds. Ages are relative so snapshots are
	// meaningful across machines with unsynchronized clocks.
	AgeNanos int64 `json:"ageNanos"`
	// Quarantined marks a destination the source's safety governor
	// withdrew after a loss regression (snapshot wire v2); the receiving
	// agent must not warm-start it. Quarantine markers carry Window 0.
	Quarantined bool `json:"quarantined,omitempty"`
	// ModVersion is the source's table version at the entry's last commit
	// (snapshot wire v3). A peer passes the highest version it has seen as
	// `since` to receive only newer entries. Quarantine markers are
	// unversioned (0): they ride every delta.
	ModVersion uint64 `json:"modVersion,omitempty"`
}

// FromCore converts exported agent entries to wire entries.
func FromCore(entries []core.SnapshotEntry) []Entry {
	return AppendFromCore(make([]Entry, 0, len(entries)), entries)
}

// AppendFromCore is FromCore appending into dst (which may be nil) — the
// pooled-buffer form hot serving paths use to avoid re-allocating the wire
// slice on every encode.
func AppendFromCore(dst []Entry, entries []core.SnapshotEntry) []Entry {
	for _, se := range entries {
		dst = append(dst, Entry{
			Prefix:      se.Prefix.String(),
			Window:      se.Window,
			Samples:     se.Samples,
			AgeNanos:    int64(se.Age),
			Quarantined: se.Quarantined,
			ModVersion:  se.Version,
		})
	}
	return dst
}

// ToCore converts wire entries to the form core.Agent.MergeSnapshot
// consumes. Entries whose prefix does not parse are passed through as
// invalid prefixes, which the merge counts as skipped-stale — one malformed
// entry never poisons the rest of a payload.
func ToCore(entries []Entry) []core.SnapshotEntry {
	out := make([]core.SnapshotEntry, 0, len(entries))
	for _, e := range entries {
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			p = netip.Prefix{} // invalid; MergeSnapshot skips it
		}
		out = append(out, core.SnapshotEntry{
			Prefix:      p,
			Window:      e.Window,
			Samples:     e.Samples,
			Age:         time.Duration(e.AgeNanos),
			Quarantined: e.Quarantined,
			Version:     e.ModVersion,
		})
	}
	return out
}

// BucketOf maps a prefix (CIDR text form) to its digest bucket.
func BucketOf(prefix string) int {
	return core.DigestBucketOf(prefix)
}

// entryHash hashes an entry's durable content: the fields a peer would
// actually learn from it. Samples, age, and mod version are deliberately
// excluded — they change every round (sample counts grow, ages tick, the
// version counter resets across restarts) and including any of them would
// make two content-identical tables digest differently, defeating the
// converged-peers-pay-O(1) property. The implementation is canonical in
// internal/core so the agent's incremental accumulator and this full
// recompute can never drift apart.
func entryHash(e Entry) uint64 {
	return core.DigestEntryHash(e.Prefix, e.Window, e.Quarantined)
}

// Digest is the compact table summary exchanged before any entries move.
type Digest struct {
	// Version is the digest/delta wire-format version (WireVersion).
	Version int `json:"version"`
	// Source identifies the producing agent; informational.
	Source string `json:"source,omitempty"`
	// Instance identifies one run of the producing agent. A restart picks
	// a new instance, telling peers the table version counter reset and
	// their `since` cursors are meaningless (rung 3 of the ladder).
	Instance string `json:"instance,omitempty"`
	// TableVersion is the producer's table version when the digest was
	// computed. A peer whose digest matches fast-forwards its cursor here.
	TableVersion uint64 `json:"tableVersion"`
	// Count is the number of entries folded into the digest.
	Count int `json:"count"`
	// Buckets holds the NumBuckets XOR-folded entry hashes.
	Buckets []uint64 `json:"buckets"`
}

// Compute builds the digest of a table.
func Compute(entries []Entry, source, instance string, tableVersion uint64) Digest {
	buckets := make([]uint64, NumBuckets)
	for _, e := range entries {
		buckets[BucketOf(e.Prefix)] ^= entryHash(e)
	}
	return Digest{
		Version:      WireVersion,
		Source:       source,
		Instance:     instance,
		TableVersion: tableVersion,
		Count:        len(entries),
		Buckets:      buckets,
	}
}

// ContentEqual reports whether two digests summarize identical durable
// content. Table version and instance are ignored: a version can move
// without content changing (an entry cleared and re-learned identically),
// and content equality is what decides whether any bytes need to move.
func ContentEqual(a, b Digest) bool {
	if a.Count != b.Count || len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

// DiffBuckets returns the bucket indices whose hashes differ, in order.
// Digests of different widths (a future wire format) are wholly
// incomparable: every bucket is returned.
func DiffBuckets(a, b Digest) []int {
	if len(a.Buckets) != len(b.Buckets) {
		all := make([]int, len(b.Buckets))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var diff []int
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			diff = append(diff, i)
		}
	}
	return diff
}

// FilterBuckets returns the entries falling in the given buckets, preserving
// order. A nil or empty bucket set selects nothing.
func FilterBuckets(entries []Entry, buckets []int) []Entry {
	if len(buckets) == 0 {
		return nil
	}
	want := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		want[b] = true
	}
	var out []Entry
	for _, e := range entries {
		if want[BucketOf(e.Prefix)] {
			out = append(out, e)
		}
	}
	return out
}

// EncodeDigest serializes a digest.
func EncodeDigest(d Digest) ([]byte, error) {
	if d.Version != WireVersion {
		return nil, fmt.Errorf("riptide/gossip: encode digest version %d, want %d", d.Version, WireVersion)
	}
	if len(d.Buckets) != NumBuckets {
		return nil, fmt.Errorf("riptide/gossip: encode digest with %d buckets, want %d", len(d.Buckets), NumBuckets)
	}
	return json.Marshal(d)
}

// DecodeDigest parses a wire digest, rejecting unknown versions and
// malformed bucket arrays.
func DecodeDigest(data []byte) (Digest, error) {
	var d Digest
	if err := json.Unmarshal(data, &d); err != nil {
		return Digest{}, fmt.Errorf("riptide/gossip: decode digest: %w", err)
	}
	if d.Version != WireVersion {
		return Digest{}, fmt.Errorf("riptide/gossip: digest version %d, want %d", d.Version, WireVersion)
	}
	if len(d.Buckets) != NumBuckets {
		return Digest{}, fmt.Errorf("riptide/gossip: digest has %d buckets, want %d", len(d.Buckets), NumBuckets)
	}
	if d.Count < 0 {
		return Digest{}, fmt.Errorf("riptide/gossip: digest count %d is negative", d.Count)
	}
	return d, nil
}

// Delta is the entry-bearing response: a versioned delta, a bucket resync,
// or a full table, distinguished by Full and the request that produced it.
type Delta struct {
	// Version is the digest/delta wire-format version (WireVersion).
	Version int `json:"version"`
	// Source identifies the producing agent; informational.
	Source string `json:"source,omitempty"`
	// Instance identifies one run of the producing agent (see Digest).
	Instance string `json:"instance,omitempty"`
	// TableVersion is the table version the payload is current through;
	// the receiver's next `since` cursor.
	TableVersion uint64 `json:"tableVersion"`
	// Since echoes the request cursor a versioned delta was computed
	// against; 0 for full tables and bucket resyncs.
	Since uint64 `json:"since,omitempty"`
	// Full marks a complete table (the request's cursor was unusable, the
	// instance changed, or the peer asked for everything).
	Full bool `json:"full,omitempty"`
	// Entries holds the changed (or requested, or complete) entries plus
	// every current quarantine marker, sorted by prefix.
	Entries []Entry `json:"entries"`
}

// EncodeDelta serializes a delta.
func EncodeDelta(d Delta) ([]byte, error) {
	if d.Version != WireVersion {
		return nil, fmt.Errorf("riptide/gossip: encode delta version %d, want %d", d.Version, WireVersion)
	}
	return json.Marshal(d)
}

// DecodeDelta parses a wire delta, rejecting unknown versions.
func DecodeDelta(data []byte) (Delta, error) {
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return Delta{}, fmt.Errorf("riptide/gossip: decode delta: %w", err)
	}
	if d.Version != WireVersion {
		return Delta{}, fmt.Errorf("riptide/gossip: delta version %d, want %d", d.Version, WireVersion)
	}
	return d, nil
}

// TableDigest returns an agent's current digest from its incrementally
// maintained bucket hashes — O(1) table work, no export scan (the agent
// XOR-patches the affected bucket at every committing mutation; see
// core.Agent.ContentDigest). The table version is read before the buckets,
// so a commit racing the read can only make the version conservative (the
// affected entry is re-sent, never skipped). TestIncrementalDigestMatchesRescan
// pins this byte-identical to the full rescan
// Compute(FromCore(ExportDelta(0))) across every commit kind.
func TableDigest(a *core.Agent, source, instance string) Digest {
	version, count, buckets := a.ContentDigest()
	return Digest{
		Version:      WireVersion,
		Source:       source,
		Instance:     instance,
		TableVersion: version,
		Count:        count,
		Buckets:      buckets,
	}
}

// TableDelta exports an agent's entries committed after `since` as a wire
// delta. since 0 exports the full table with Full set — the same payload a
// first-contact peer or an unusable cursor gets.
func TableDelta(a *core.Agent, source, instance string, since uint64) Delta {
	if since > a.TableVersion() {
		// The cursor is from a previous life of this agent (or a peer
		// confusion); it cannot be interpreted. Send everything.
		since = 0
	}
	entries, version := a.ExportDelta(since)
	return Delta{
		Version:      WireVersion,
		Source:       source,
		Instance:     instance,
		TableVersion: version,
		Since:        since,
		Full:         since == 0,
		Entries:      FromCore(entries),
	}
}

// TableBuckets exports the full-table entries falling in the given buckets
// as a wire delta for a post-restart resync. Quarantine markers are content
// like any entry: they bucket by prefix, so a divergent marker shows up in
// its bucket's diff and is fetched with it.
func TableBuckets(a *core.Agent, source, instance string, buckets []int) Delta {
	entries, version := a.ExportDelta(0)
	wire := FromCore(entries)
	kept := FilterBuckets(wire, buckets)
	return Delta{
		Version:      WireVersion,
		Source:       source,
		Instance:     instance,
		TableVersion: version,
		Entries:      kept,
	}
}
