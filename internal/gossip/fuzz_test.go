package gossip

import (
	"testing"
)

// FuzzDecodeDigest: the digest decoder must reject or accept arbitrary
// bytes without panicking, and whatever it accepts must re-encode.
func FuzzDecodeDigest(f *testing.F) {
	if seed, err := EncodeDigest(Compute(entriesFuzz(5), "host", "inst", 9)); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"version": 1, "buckets": []}`))
	f.Add([]byte(`{"version": 1,`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDigest(data)
		if err != nil {
			return
		}
		if len(d.Buckets) != NumBuckets {
			t.Fatalf("decoded digest with %d buckets", len(d.Buckets))
		}
		if _, err := EncodeDigest(d); err != nil {
			t.Fatalf("accepted digest does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeDelta: same contract for the delta decoder.
func FuzzDecodeDelta(f *testing.F) {
	if seed, err := EncodeDelta(Delta{
		Version:      WireVersion,
		Source:       "host",
		Instance:     "inst",
		TableVersion: 9,
		Since:        3,
		Entries:      entriesFuzz(5),
	}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"version": 1, "entries": [{"prefix": "not-a-prefix", "window": -4}]}`))
	f.Add([]byte(`{"version": 1,`))
	f.Add([]byte(`0`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if _, err := EncodeDelta(d); err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
		// Conversion to merge form never panics, whatever the entries hold;
		// malformed prefixes surface as invalid (the merge skips them).
		_ = ToCore(d.Entries)
	})
}

func entriesFuzz(n int) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Entry{
			Prefix:  "10.0.0.1/32",
			Window:  10 + i,
			Samples: uint64(i),
		})
	}
	return out
}
