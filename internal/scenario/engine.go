package scenario

import (
	"fmt"
	"math"
	"time"

	"riptide/internal/cdn"
	"riptide/internal/core"
	"riptide/internal/eventsim"
	"riptide/internal/guard"
	"riptide/internal/stats"
	"riptide/internal/workload"
)

// Run executes the scenario: the main run, the control run when a compare
// block is present, and the assertions over both runs' metrics. The report
// is deterministic — the same spec and seed always produce the same bytes.
func (sp *Spec) Run() (*Report, error) {
	rep := &Report{
		Schema:      ReportSchema,
		Scenario:    sp.Name,
		Description: sp.Description,
		Seed:        sp.Fleet.Seed,
		Duration:    sp.Duration.String(),
	}
	start, end := sp.phaseWindow()
	rep.Phases = PhaseBounds{
		Before: phaseSpan(0, start),
		During: phaseSpan(start, end),
		After:  phaseSpan(end, sp.Duration),
	}

	metrics := make(map[string]float64)
	mainName := "riptide"
	if !sp.Fleet.Riptide.Enabled {
		mainName = "control"
	}
	mainMetrics, err := sp.executeRun(runOverrides{})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %s run: %w", sp.Name, mainName, err)
	}
	rep.Runs = append(rep.Runs, RunReport{Name: mainName, Metrics: sortMetrics(mainName, mainMetrics, metrics)})

	if sp.Compare != nil {
		ctl, err := sp.executeRun(runOverrides{
			riptide: sp.Compare.Riptide,
			guard:   sp.Compare.Guard,
			gossip:  sp.Compare.Gossip,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: control run: %w", sp.Name, err)
		}
		rep.Runs = append(rep.Runs, RunReport{Name: "control", Metrics: sortMetrics("control", ctl, metrics)})
	}

	rep.Pass = true
	for _, a := range sp.Assertions {
		res := a.Eval(metrics)
		rep.Assertions = append(rep.Assertions, res)
		if !res.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// phaseWindow resolves the "during" phase: the explicit window block when
// present, otherwise the union of the events' disruption windows, otherwise
// the whole run.
func (sp *Spec) phaseWindow() (time.Duration, time.Duration) {
	if sp.Window != nil {
		return sp.Window.Start, sp.Window.End
	}
	start, end := time.Duration(-1), time.Duration(-1)
	for _, ev := range sp.Events {
		s, e := ev.Payload.window(ev.At, sp.Duration)
		if s == 0 && e == 0 {
			continue
		}
		if start < 0 || s < start {
			start = s
		}
		if e > end {
			end = e
		}
	}
	if start < 0 {
		return 0, sp.Duration
	}
	if end > sp.Duration {
		end = sp.Duration
	}
	return start, end
}

// affectedPoPs unions the events' blast radii; empty means "no filter".
func (sp *Spec) affectedPoPs() map[string]bool {
	out := make(map[string]bool)
	for _, ev := range sp.Events {
		for _, p := range ev.Payload.affected() {
			out[p] = true
		}
	}
	return out
}

// runOverrides derives the control run from the main spec.
type runOverrides struct {
	riptide *bool
	guard   *bool
	gossip  *bool
}

// runState accumulates per-run observations that the event callbacks and the
// metrics ticker write.
type runState struct {
	winStart, winEnd time.Duration

	// Retransmit / probe-failure counters sampled at phase boundaries.
	retransAtStart, retransAtEnd int64
	sawStart, sawEnd             bool

	// Gossip wire bytes sampled at the same boundaries (gossipOn is set
	// when an enable_gossip_sharing event actually started the exchange).
	gossipOn                   bool
	gossipAtStart, gossipAtEnd int64

	// Safety-governor observations.
	guardOn    bool
	quarMax    int
	quarSeen   bool
	quarSeenAt time.Duration
	// Route-recovery tracking (first tracked reboot event).
	tracking     bool
	rebootAt     time.Duration
	targetRoutes int
	recovered    bool
	recoveryTick int
}

func (sp *Spec) executeRun(ov runOverrides) (map[string]float64, error) {
	fleet := sp.Fleet
	riptideOn := fleet.Riptide.Enabled
	if ov.riptide != nil {
		riptideOn = *ov.riptide
	}
	guardSpec := fleet.Riptide.Guard
	if ov.guard != nil && !*ov.guard {
		guardSpec = nil
	}
	pops, err := fleet.ResolvePoPs()
	if err != nil {
		return nil, err
	}

	cfg := cdn.Config{
		PoPs:             pops,
		HostsPerPoP:      fleet.HostsPerPoP,
		Seed:             fleet.Seed,
		LossRate:         fleet.LossRate,
		RTTJitter:        fleet.RTTJitter,
		CapacitySegments: fleet.CapacitySegments,
		Riptide: cdn.RiptideOptions{
			Enabled:        riptideOn,
			CMax:           fleet.Riptide.CMax,
			CMin:           fleet.Riptide.CMin,
			Alpha:          fleet.Riptide.Alpha,
			UpdateInterval: fleet.Riptide.UpdateInterval,
			TTL:            fleet.Riptide.TTL,
			PrefixBits:     fleet.Riptide.PrefixBits,
		},
		Traffic: cdn.TrafficOptions{
			ProbeInterval:          fleet.Traffic.ProbeInterval,
			CloseAfterTransferProb: fleet.Traffic.CloseAfterTransferProb,
			IdleTimeout:            fleet.Traffic.IdleTimeout,
		},
	}
	if riptideOn && guardSpec != nil {
		cfg.Riptide.Guard = &guard.Config{
			Holdback:        guardSpec.Holdback,
			MinSegments:     guardSpec.MinSegments,
			HysteresisTicks: guardSpec.HysteresisTicks,
			QuarantineTTL:   guardSpec.QuarantineTTL,
		}
	}
	for _, kb := range fleet.Traffic.ProbeSizesKB {
		cfg.Traffic.ProbeSizes = append(cfg.Traffic.ProbeSizes, kb*1024)
	}
	if len(fleet.Traffic.Organic) > 0 {
		cfg.Traffic.OrganicRates = make(map[string]float64, len(fleet.Traffic.Organic))
		for _, o := range fleet.Traffic.Organic {
			cfg.Traffic.OrganicRates[o.PoP] = o.Rate
		}
	}
	if fleet.Traffic.OrganicSizeKB > 0 {
		cfg.Traffic.OrganicSizes = workload.Constant(fleet.Traffic.OrganicSizeKB * 1024)
	}

	c, err := cdn.NewCluster(cfg)
	if err != nil {
		return nil, err
	}

	st := &runState{guardOn: riptideOn && guardSpec != nil}
	st.winStart, st.winEnd = sp.phaseWindow()

	gossipFull := ov.gossip != nil && !*ov.gossip
	for _, ev := range sp.Events {
		if err := applyEvent(c, ev, st, riptideOn, gossipFull, fleet.LossRate); err != nil {
			return nil, fmt.Errorf("event at %v (%s): %w", ev.At, ev.Kind, err)
		}
	}

	// Phase-boundary samples of the cumulative counters. Boundaries at the
	// very start or end of the run are read directly instead of scheduled.
	if st.winStart > 0 && st.winStart < sp.Duration {
		if err := c.ScheduleAt(st.winStart, func() {
			st.retransAtStart = c.TotalRetransmits()
			st.gossipAtStart = c.GossipStats().BytesOnWire
			st.sawStart = true
		}); err != nil {
			return nil, err
		}
	}
	if st.winEnd > 0 && st.winEnd < sp.Duration {
		if err := c.ScheduleAt(st.winEnd, func() {
			st.retransAtEnd = c.TotalRetransmits()
			st.gossipAtEnd = c.GossipStats().BytesOnWire
			st.sawEnd = true
		}); err != nil {
			return nil, err
		}
	}

	// The 1 s observer drives quarantine and route-recovery bookkeeping.
	// It is created after the cluster's own tickers, so at equal timestamps
	// the agents have already ticked when it looks.
	tick, err := eventsim.NewTicker(c.Engine(), time.Second, func(now time.Duration) {
		if st.guardOn && !st.quarSeen {
			if n := c.QuarantineCount(); n > 0 {
				st.quarSeen = true
				st.quarSeenAt = now
			}
		}
		if st.guardOn {
			if n := c.QuarantineCount(); n > st.quarMax {
				st.quarMax = n
			}
		}
		if st.tracking && !st.recovered && now >= st.rebootAt {
			if c.TotalRoutes() >= st.targetRoutes {
				st.recovered = true
				st.recoveryTick = int((now - st.rebootAt) / time.Second)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	defer tick.Stop()

	c.Run(sp.Duration)

	metrics := sp.collect(c, st)
	c.Stop()
	return metrics, nil
}

// applyEvent schedules one parsed event onto the cluster. Recovery-tracking
// snapshots are scheduled before the event itself so the FIFO order at equal
// timestamps reads the pre-reboot route count.
func applyEvent(c *cdn.Cluster, ev Event, st *runState, riptideOn, gossipFull bool, baselineLoss float64) error {
	switch p := ev.Payload.(type) {
	case *CapacityCutEvent:
		return cdn.CapacityCut{
			PoP: p.PoP, From: p.From, At: ev.At, For: p.For,
			Segments: p.Segments, RestoreSegments: p.RestoreSegments,
		}.Apply(c)
	case *HostRebootEvent:
		if p.TrackRecovery > 0 {
			if err := scheduleRecoverySnapshot(c, st, ev.At, p.TrackRecovery); err != nil {
				return err
			}
		}
		return c.ScheduleAt(ev.At, func() {
			_, _ = c.RebootHost(p.PoP, p.Host)
		})
	case *RollingRebootsEvent:
		if p.TrackRecovery > 0 {
			if err := scheduleRecoverySnapshot(c, st, ev.At, p.TrackRecovery); err != nil {
				return err
			}
		}
		return cdn.RollingReboots{PoPs: p.PoPs, Start: ev.At, Interval: p.Interval}.Apply(c)
	case *FlashCrowdEvent:
		return cdn.FlashCrowd{
			Target: p.Target, At: ev.At, For: p.For,
			RatePerPoP: p.RatePerPoP, SizeBytes: int64(p.SizeKB) * 1024,
		}.Apply(c)
	case *PathFlapEvent:
		return cdn.PathFlap{A: p.A, B: p.B, At: ev.At, For: p.For, RTTScale: p.RTTScale}.Apply(c)
	case *PeerPartitionEvent:
		return cdn.PeerPartition{A: p.A, B: p.B, At: ev.At, For: p.For}.Apply(c)
	case *DegradationEvent:
		return cdn.RegionalDegradation{
			PoP: p.PoP, At: ev.At, For: p.For,
			LossRate: p.LossRate, BaselineLoss: baselineLoss,
		}.Apply(c)
	case *FleetSharingEvent:
		if !riptideOn {
			return nil // a control run without agents has nothing to share
		}
		return c.EnableFleetSharing(p.Interval, core.MergePolicy{})
	case *GossipSharingEvent:
		if !riptideOn {
			return nil // a control run without agents has nothing to sync
		}
		if p.SeedEntries > 0 {
			if err := c.SeedWarmEntries(p.SeedEntries, core.MergePolicy{}); err != nil {
				return err
			}
		}
		mode := cdn.GossipMode(p.Mode)
		if gossipFull {
			mode = cdn.GossipFull
		}
		if err := c.EnableGossipSharing(p.Interval, core.MergePolicy{}, mode); err != nil {
			return err
		}
		st.gossipOn = true
		return nil
	case *KnobEvent:
		return c.ScheduleAt(ev.At, func() { applyKnob(c, p) })
	}
	return fmt.Errorf("unhandled event kind %q", ev.Kind)
}

func scheduleRecoverySnapshot(c *cdn.Cluster, st *runState, at time.Duration, frac float64) error {
	if st.tracking {
		return fmt.Errorf("track_recovery set on more than one event")
	}
	st.tracking = true
	st.rebootAt = at
	return c.ScheduleAt(at, func() {
		st.targetRoutes = int(math.Ceil(frac * float64(c.TotalRoutes())))
	})
}

func applyKnob(c *cdn.Cluster, k *KnobEvent) {
	switch k.Knob {
	case KnobPoPLoss:
		_ = c.SetPoPPathLoss(k.PoP, k.Value)
	case KnobPoPCapacity:
		_ = c.SetPoPPathCapacity(k.PoP, int(k.Value))
	case KnobPairCapacity:
		_ = c.SetPoPPairCapacity(k.A, k.B, int(k.Value))
	case KnobPairRTTMs:
		_ = c.SetPoPPairRTT(k.A, k.B, time.Duration(k.Value*float64(time.Millisecond)))
	}
}

// collect turns the run's raw observations into the flat metric map the
// assertions evaluate against.
func (sp *Spec) collect(c *cdn.Cluster, st *runState) map[string]float64 {
	m := make(map[string]float64)

	// Retransmits by phase, from the cumulative counter's boundary samples.
	total := c.TotalRetransmits()
	atStart, atEnd := st.retransAtStart, st.retransAtEnd
	if !st.sawStart {
		if st.winStart <= 0 {
			atStart = 0
		} else {
			atStart = total // window started at/after the end of the run
		}
	}
	if !st.sawEnd {
		if st.winEnd >= sp.Duration {
			atEnd = total
		} else {
			atEnd = atStart
		}
	}
	m["retrans.before"] = float64(atStart)
	m["retrans.during"] = float64(atEnd - atStart)
	m["retrans.after"] = float64(total - atEnd)
	m["retrans.total"] = float64(total)

	// Probe completion CDFs by phase, filtered to the blast radius.
	affected := sp.affectedPoPs()
	phases := map[string]*stats.CDF{
		"before": stats.NewCDF(0), "during": stats.NewCDF(0), "after": stats.NewCDF(0), "total": stats.NewCDF(0),
	}
	for _, pr := range c.ProbeRecords() {
		if len(affected) > 0 && !affected[pr.Src] && !affected[pr.Dst] {
			continue
		}
		if sp.ProbeFilter.SizeKB > 0 && pr.SizeBytes != sp.ProbeFilter.SizeKB*1024 {
			continue
		}
		if sp.ProbeFilter.FreshOnly && !pr.FreshConn {
			continue
		}
		ms := float64(pr.Elapsed) / float64(time.Millisecond)
		phases[sp.phaseOf(pr.At)].Add(ms)
		phases["total"].Add(ms)
	}
	for name, cdf := range phases {
		m["probes."+name] = float64(cdf.Len())
		if cdf.Len() == 0 {
			continue
		}
		m["probe_ms.p50."+name] = cdf.MustPercentile(50)
		m["probe_ms.p90."+name] = cdf.MustPercentile(90)
		m["probe_ms.p99."+name] = cdf.MustPercentile(99)
		if mean, err := cdf.Mean(); err == nil {
			m["probe_ms.mean."+name] = mean
		}
	}

	// Probe open failures by phase — the partition fingerprint.
	fails := map[string]float64{"before": 0, "during": 0, "after": 0}
	for _, f := range c.ProbeFailures() {
		if len(affected) > 0 && !affected[f.Src] && !affected[f.Dst] {
			continue
		}
		fails[sp.phaseOf(f.At)]++
	}
	for name, n := range fails {
		m["probe_failures."+name] = n
	}
	m["probe_failures.total"] = fails["before"] + fails["during"] + fails["after"]

	m["routes.end"] = float64(c.TotalRoutes())

	// Gossip wire accounting, with bytes split by phase the same way as
	// retransmits so assertions can price the steady state separately from
	// the incident window.
	if st.gossipOn {
		gs := c.GossipStats()
		gAtStart, gAtEnd := st.gossipAtStart, st.gossipAtEnd
		if !st.sawStart {
			if st.winStart <= 0 {
				gAtStart = 0
			} else {
				gAtStart = gs.BytesOnWire
			}
		}
		if !st.sawEnd {
			if st.winEnd >= sp.Duration {
				gAtEnd = gs.BytesOnWire
			} else {
				gAtEnd = gAtStart
			}
		}
		m["gossip.bytes.before"] = float64(gAtStart)
		m["gossip.bytes.during"] = float64(gAtEnd - gAtStart)
		m["gossip.bytes.after"] = float64(gs.BytesOnWire - gAtEnd)
		m["gossip.bytes.total"] = float64(gs.BytesOnWire)
		m["gossip.rounds.total"] = float64(gs.Rounds)
		m["gossip.rounds.digest"] = float64(gs.DigestRounds)
		m["gossip.rounds.delta"] = float64(gs.DeltaRounds)
		m["gossip.rounds.buckets"] = float64(gs.BucketRounds)
		m["gossip.rounds.full"] = float64(gs.FullRounds)
		m["gossip.rounds.not_modified"] = float64(gs.NotModifiedRounds)
		m["gossip.entries_moved"] = float64(gs.EntriesMoved)
	}

	if st.guardOn {
		m["quarantines"] = float64(st.quarMax)
		if st.quarSeen {
			ticks := (st.quarSeenAt - st.winStart) / time.Second
			if ticks < 1 {
				ticks = 1
			}
			m["quarantine_ticks"] = float64(ticks)
		}
	}
	if st.tracking {
		if st.recovered {
			m["recovery_ticks"] = float64(st.recoveryTick)
		} else {
			// Censored: recovery had not completed when the run ended.
			m["recovery_ticks"] = float64((sp.Duration - st.rebootAt) / time.Second)
			m["recovery_censored"] = 1
		}
	}
	return m
}

func (sp *Spec) phaseOf(at time.Duration) string {
	start, end := sp.phaseWindow()
	switch {
	case at < start:
		return "before"
	case at < end:
		return "during"
	default:
		return "after"
	}
}
