package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"riptide/internal/cdn"
)

// eventKinds names every supported event, for error messages.
var eventKinds = []string{
	"capacity_cut", "degradation", "enable_fleet_sharing", "enable_gossip_sharing",
	"flash_crowd", "host_reboot", "path_flap", "peer_partition", "rolling_reboots",
	"set_knob",
}

// parseEvents decodes and validates the event stream. Events must be listed
// in non-decreasing At order so the file reads like the incident timeline it
// is.
func parseEvents(n *Node, pops map[string]bool, total time.Duration) ([]Event, error) {
	if n.Kind != SeqNode {
		return nil, fmt.Errorf("line %d: events must be a sequence", n.Line)
	}
	var out []Event
	for _, item := range n.Items {
		ev, err := parseEvent(item, pops, total)
		if err != nil {
			return nil, err
		}
		if len(out) > 0 && ev.At < out[len(out)-1].At {
			return nil, fmt.Errorf("line %d: event at %v listed after one at %v (events must be in time order)",
				ev.Line, ev.At, out[len(out)-1].At)
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseEvent(n *Node, pops map[string]bool, total time.Duration) (Event, error) {
	var ev Event
	if err := needMap(n, "event"); err != nil {
		return ev, err
	}
	ev.Line = n.Line
	atNode := n.Get("at")
	if atNode == nil {
		return ev, fmt.Errorf("line %d: event needs an at time", n.Line)
	}
	at, err := atNode.Duration()
	if err != nil {
		return ev, err
	}
	if at < 0 || at >= total {
		return ev, fmt.Errorf("line %d: event at %v outside the run [0, %v)", atNode.Line, at, total)
	}
	ev.At = at
	for i, key := range n.Keys {
		if key == "at" {
			continue
		}
		if ev.Payload != nil {
			return ev, fmt.Errorf("line %d: event has two kinds (%q and %q); one per entry", n.KeyLines[i], ev.Kind, key)
		}
		payload, err := parsePayload(key, n.Vals[i])
		if err != nil {
			return ev, err
		}
		ev.Kind = key
		ev.Payload = payload
	}
	if ev.Payload == nil {
		return ev, fmt.Errorf("line %d: event needs a kind (valid: %s)", n.Line, strings.Join(eventKinds, " "))
	}
	if err := ev.Payload.validate(pops, ev.At, total); err != nil {
		return ev, fmt.Errorf("line %d: %s: %w", ev.Line, ev.Kind, err)
	}
	return ev, nil
}

func parsePayload(kind string, n *Node) (EventPayload, error) {
	switch kind {
	case "capacity_cut":
		return parseCapacityCut(n)
	case "host_reboot":
		return parseHostReboot(n)
	case "rolling_reboots":
		return parseRollingReboots(n)
	case "flash_crowd":
		return parseFlashCrowd(n)
	case "path_flap":
		return parsePathFlap(n)
	case "peer_partition":
		return parsePeerPartition(n)
	case "degradation":
		return parseDegradation(n)
	case "enable_fleet_sharing":
		return parseFleetSharing(n)
	case "enable_gossip_sharing":
		return parseGossipSharing(n)
	case "set_knob":
		return parseKnob(n)
	}
	return nil, fmt.Errorf("line %d: unknown event kind %q (valid: %s)", n.Line, kind, strings.Join(eventKinds, " "))
}

// Field helpers shared by the payload parsers.

func getStr(n *Node, key string, dst *string) error {
	if v := n.Get(key); v != nil {
		s, err := v.Str()
		if err != nil {
			return err
		}
		*dst = s
	}
	return nil
}

func getDur(n *Node, key string, dst *time.Duration) error {
	if v := n.Get(key); v != nil {
		d, err := v.Duration()
		if err != nil {
			return err
		}
		*dst = d
	}
	return nil
}

func getInt(n *Node, key string, dst *int) error {
	if v := n.Get(key); v != nil {
		iv, err := v.Int()
		if err != nil {
			return err
		}
		*dst = int(iv)
	}
	return nil
}

func getFloat(n *Node, key string, dst *float64) error {
	if v := n.Get(key); v != nil {
		f, err := v.Float()
		if err != nil {
			return err
		}
		*dst = f
	}
	return nil
}

func knownPoP(pops map[string]bool, name string) error {
	if !pops[name] {
		names := make([]string, 0, len(pops))
		for p := range pops {
			names = append(names, p)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown PoP %q (fleet: %s)", name, strings.Join(names, " "))
	}
	return nil
}

// capacity_cut

func parseCapacityCut(n *Node) (EventPayload, error) {
	if err := needMap(n, "capacity_cut"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "pop", "from", "for", "segments", "restore_segments"); err != nil {
		return nil, err
	}
	e := &CapacityCutEvent{}
	for _, step := range []error{
		getStr(n, "pop", &e.PoP), getStr(n, "from", &e.From),
		getDur(n, "for", &e.For), getInt(n, "segments", &e.Segments),
		getInt(n, "restore_segments", &e.RestoreSegments),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *CapacityCutEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if err := knownPoP(pops, e.PoP); err != nil {
		return err
	}
	if e.From != "" {
		if err := knownPoP(pops, e.From); err != nil {
			return err
		}
		if e.From == e.PoP {
			return fmt.Errorf("pop and from must differ, got %q twice", e.PoP)
		}
	}
	if e.Segments < 1 {
		return fmt.Errorf("segments %d must be >= 1", e.Segments)
	}
	if e.RestoreSegments < 0 {
		return fmt.Errorf("restore_segments %d must be >= 0", e.RestoreSegments)
	}
	if e.For < 0 {
		return fmt.Errorf("for %v must not be negative", e.For)
	}
	return nil
}

func (e *CapacityCutEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	if e.For == 0 {
		return at, total
	}
	return at, at + e.For
}

func (e *CapacityCutEvent) affected() []string {
	if e.From != "" {
		return []string{e.PoP, e.From}
	}
	return []string{e.PoP}
}

// host_reboot

func parseHostReboot(n *Node) (EventPayload, error) {
	if err := needMap(n, "host_reboot"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "pop", "host", "for", "track_recovery"); err != nil {
		return nil, err
	}
	e := &HostRebootEvent{}
	for _, step := range []error{
		getStr(n, "pop", &e.PoP), getInt(n, "host", &e.Host),
		getDur(n, "for", &e.For), getFloat(n, "track_recovery", &e.TrackRecovery),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *HostRebootEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if err := knownPoP(pops, e.PoP); err != nil {
		return err
	}
	if e.Host < 0 {
		return fmt.Errorf("host index %d must not be negative", e.Host)
	}
	if e.For < 0 {
		return fmt.Errorf("for %v must not be negative", e.For)
	}
	if e.TrackRecovery < 0 || e.TrackRecovery > 1 {
		return fmt.Errorf("track_recovery %v out of [0,1]", e.TrackRecovery)
	}
	return nil
}

func (e *HostRebootEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	if e.For == 0 {
		return at, total
	}
	return at, at + e.For
}

func (e *HostRebootEvent) affected() []string { return []string{e.PoP} }

// rolling_reboots

func parseRollingReboots(n *Node) (EventPayload, error) {
	if err := needMap(n, "rolling_reboots"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "pops", "interval", "track_recovery"); err != nil {
		return nil, err
	}
	e := &RollingRebootsEvent{}
	if v := n.Get("pops"); v != nil {
		var err error
		if e.PoPs, err = v.StrSeq(); err != nil {
			return nil, err
		}
	}
	for _, step := range []error{
		getDur(n, "interval", &e.Interval), getFloat(n, "track_recovery", &e.TrackRecovery),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *RollingRebootsEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if len(e.PoPs) == 0 {
		return fmt.Errorf("needs at least one PoP")
	}
	for _, p := range e.PoPs {
		if err := knownPoP(pops, p); err != nil {
			return err
		}
	}
	if e.Interval <= 0 {
		return fmt.Errorf("interval %v must be positive", e.Interval)
	}
	if e.TrackRecovery < 0 || e.TrackRecovery > 1 {
		return fmt.Errorf("track_recovery %v out of [0,1]", e.TrackRecovery)
	}
	return nil
}

func (e *RollingRebootsEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return at, at + time.Duration(len(e.PoPs))*e.Interval
}

func (e *RollingRebootsEvent) affected() []string { return e.PoPs }

// flash_crowd

func parseFlashCrowd(n *Node) (EventPayload, error) {
	if err := needMap(n, "flash_crowd"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "target", "for", "rate_per_pop", "size_kb"); err != nil {
		return nil, err
	}
	e := &FlashCrowdEvent{}
	for _, step := range []error{
		getStr(n, "target", &e.Target), getDur(n, "for", &e.For),
		getFloat(n, "rate_per_pop", &e.RatePerPoP), getInt(n, "size_kb", &e.SizeKB),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *FlashCrowdEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if err := knownPoP(pops, e.Target); err != nil {
		return err
	}
	if e.For <= 0 || e.RatePerPoP <= 0 {
		return fmt.Errorf("needs positive for and rate_per_pop")
	}
	if e.SizeKB < 0 {
		return fmt.Errorf("size_kb %d must not be negative", e.SizeKB)
	}
	return nil
}

func (e *FlashCrowdEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return at, at + e.For
}

func (e *FlashCrowdEvent) affected() []string { return []string{e.Target} }

// path_flap

func parsePathFlap(n *Node) (EventPayload, error) {
	if err := needMap(n, "path_flap"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "a", "b", "for", "rtt_scale"); err != nil {
		return nil, err
	}
	e := &PathFlapEvent{}
	for _, step := range []error{
		getStr(n, "a", &e.A), getStr(n, "b", &e.B),
		getDur(n, "for", &e.For), getFloat(n, "rtt_scale", &e.RTTScale),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *PathFlapEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if err := knownPoP(pops, e.A); err != nil {
		return err
	}
	if err := knownPoP(pops, e.B); err != nil {
		return err
	}
	if e.A == e.B {
		return fmt.Errorf("a and b must differ, got %q twice", e.A)
	}
	if e.For <= 0 {
		return fmt.Errorf("for %v must be positive", e.For)
	}
	if e.RTTScale <= 0 {
		return fmt.Errorf("rtt_scale %v must be positive", e.RTTScale)
	}
	return nil
}

func (e *PathFlapEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return at, at + e.For
}

func (e *PathFlapEvent) affected() []string { return []string{e.A, e.B} }

// peer_partition

func parsePeerPartition(n *Node) (EventPayload, error) {
	if err := needMap(n, "peer_partition"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "a", "b", "for"); err != nil {
		return nil, err
	}
	e := &PeerPartitionEvent{}
	for _, step := range []error{
		getStr(n, "a", &e.A), getStr(n, "b", &e.B), getDur(n, "for", &e.For),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *PeerPartitionEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if err := knownPoP(pops, e.A); err != nil {
		return err
	}
	if err := knownPoP(pops, e.B); err != nil {
		return err
	}
	if e.A == e.B {
		return fmt.Errorf("a and b must differ, got %q twice", e.A)
	}
	if e.For <= 0 {
		return fmt.Errorf("for %v must be positive", e.For)
	}
	return nil
}

func (e *PeerPartitionEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return at, at + e.For
}

func (e *PeerPartitionEvent) affected() []string { return []string{e.A, e.B} }

// degradation

func parseDegradation(n *Node) (EventPayload, error) {
	if err := needMap(n, "degradation"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "pop", "for", "loss_rate"); err != nil {
		return nil, err
	}
	e := &DegradationEvent{}
	for _, step := range []error{
		getStr(n, "pop", &e.PoP), getDur(n, "for", &e.For), getFloat(n, "loss_rate", &e.LossRate),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *DegradationEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if err := knownPoP(pops, e.PoP); err != nil {
		return err
	}
	if e.For <= 0 {
		return fmt.Errorf("for %v must be positive", e.For)
	}
	if e.LossRate <= 0 || e.LossRate >= 1 {
		return fmt.Errorf("loss_rate %v out of (0,1)", e.LossRate)
	}
	return nil
}

func (e *DegradationEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return at, at + e.For
}

func (e *DegradationEvent) affected() []string { return []string{e.PoP} }

// enable_fleet_sharing

func parseFleetSharing(n *Node) (EventPayload, error) {
	if err := needMap(n, "enable_fleet_sharing"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "interval"); err != nil {
		return nil, err
	}
	e := &FleetSharingEvent{}
	if err := getDur(n, "interval", &e.Interval); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *FleetSharingEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if e.Interval <= 0 {
		return fmt.Errorf("interval %v must be positive", e.Interval)
	}
	if at != 0 {
		return fmt.Errorf("must fire at 0s (sharing starts with the run)")
	}
	return nil
}

func (e *FleetSharingEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return 0, 0 // not a disruption
}

func (e *FleetSharingEvent) affected() []string { return nil }

// enable_gossip_sharing

func parseGossipSharing(n *Node) (EventPayload, error) {
	if err := needMap(n, "enable_gossip_sharing"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "interval", "mode", "seed_entries"); err != nil {
		return nil, err
	}
	e := &GossipSharingEvent{Mode: string(cdn.GossipLadder)}
	for _, step := range []error{
		getDur(n, "interval", &e.Interval), getStr(n, "mode", &e.Mode),
		getInt(n, "seed_entries", &e.SeedEntries),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *GossipSharingEvent) validate(pops map[string]bool, at, total time.Duration) error {
	if e.Interval <= 0 {
		return fmt.Errorf("interval %v must be positive", e.Interval)
	}
	if m := cdn.GossipMode(e.Mode); m != cdn.GossipLadder && m != cdn.GossipFull {
		return fmt.Errorf("mode %q unknown (valid: %s %s)", e.Mode, cdn.GossipFull, cdn.GossipLadder)
	}
	if e.SeedEntries < 0 {
		return fmt.Errorf("seed_entries %d must not be negative", e.SeedEntries)
	}
	if at != 0 {
		return fmt.Errorf("must fire at 0s (gossip starts with the run)")
	}
	return nil
}

func (e *GossipSharingEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return 0, 0 // not a disruption
}

func (e *GossipSharingEvent) affected() []string { return nil }

// set_knob

func parseKnob(n *Node) (EventPayload, error) {
	if err := needMap(n, "set_knob"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "knob", "pop", "a", "b", "value"); err != nil {
		return nil, err
	}
	e := &KnobEvent{}
	for _, step := range []error{
		getStr(n, "knob", &e.Knob), getStr(n, "pop", &e.PoP),
		getStr(n, "a", &e.A), getStr(n, "b", &e.B), getFloat(n, "value", &e.Value),
	} {
		if step != nil {
			return nil, step
		}
	}
	return e, nil
}

func (e *KnobEvent) validate(pops map[string]bool, at, total time.Duration) error {
	switch e.Knob {
	case KnobPoPLoss, KnobPoPCapacity:
		if err := knownPoP(pops, e.PoP); err != nil {
			return err
		}
		if e.A != "" || e.B != "" {
			return fmt.Errorf("knob %q takes pop, not a/b", e.Knob)
		}
	case KnobPairCapacity, KnobPairRTTMs:
		if err := knownPoP(pops, e.A); err != nil {
			return err
		}
		if err := knownPoP(pops, e.B); err != nil {
			return err
		}
		if e.A == e.B {
			return fmt.Errorf("a and b must differ, got %q twice", e.A)
		}
		if e.PoP != "" {
			return fmt.Errorf("knob %q takes a/b, not pop", e.Knob)
		}
	default:
		return fmt.Errorf("unknown knob %q (valid: %s %s %s %s)",
			e.Knob, KnobPairCapacity, KnobPairRTTMs, KnobPoPCapacity, KnobPoPLoss)
	}
	switch e.Knob {
	case KnobPoPLoss:
		if e.Value < 0 || e.Value >= 1 {
			return fmt.Errorf("value %v out of [0,1)", e.Value)
		}
	case KnobPoPCapacity, KnobPairCapacity:
		if e.Value < 0 || e.Value != float64(int(e.Value)) {
			return fmt.Errorf("value %v must be a non-negative integer segment count", e.Value)
		}
	case KnobPairRTTMs:
		if e.Value <= 0 {
			return fmt.Errorf("value %v must be a positive RTT in milliseconds", e.Value)
		}
	}
	return nil
}

func (e *KnobEvent) window(at, total time.Duration) (time.Duration, time.Duration) {
	return 0, 0 // raw knobs carry no implied window; use the window block
}

func (e *KnobEvent) affected() []string {
	if e.PoP != "" {
		return []string{e.PoP}
	}
	return []string{e.A, e.B}
}
