package scenario

import (
	"strings"
	"testing"
)

func TestDecodeYAMLBasics(t *testing.T) {
	src := `
# a scenario-shaped document
name: demo
count: 42
ratio: 0.5   # trailing comment
flag: true
quoted: "a: b # not a comment"
fleet:
  pops: [lhr, fra, jfk]
  riptide: {enabled: true, cmax: 100}
events:
  - at: 10s
    flash_crowd:
      target: lhr
  - at: 20s
    note: second
plain_list:
  - one
  - two
`
	n, err := DecodeYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := n.Get("name").Str(); got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got, _ := n.Get("count").Int(); got != 42 {
		t.Errorf("count = %d", got)
	}
	if got, _ := n.Get("ratio").Float(); got != 0.5 {
		t.Errorf("ratio = %v", got)
	}
	if got, _ := n.Get("flag").Bool(); !got {
		t.Error("flag = false")
	}
	if got, _ := n.Get("quoted").Str(); got != "a: b # not a comment" {
		t.Errorf("quoted = %q", got)
	}
	pops, err := n.Get("fleet").Get("pops").StrSeq()
	if err != nil || len(pops) != 3 || pops[0] != "lhr" || pops[2] != "jfk" {
		t.Errorf("pops = %v, %v", pops, err)
	}
	if got, _ := n.Get("fleet").Get("riptide").Get("cmax").Int(); got != 100 {
		t.Errorf("flow-map cmax = %d", got)
	}
	events := n.Get("events")
	if events.Kind != SeqNode || len(events.Items) != 2 {
		t.Fatalf("events = %+v", events)
	}
	ev := events.Items[0]
	if got, _ := ev.Get("at").Duration(); got.Seconds() != 10 {
		t.Errorf("at = %v", got)
	}
	if got, _ := ev.Get("flash_crowd").Get("target").Str(); got != "lhr" {
		t.Errorf("target = %q", got)
	}
	if ev.Line != 12 {
		t.Errorf("first event line = %d, want 12", ev.Line)
	}
	plain, _ := n.Get("plain_list").StrSeq()
	if len(plain) != 2 || plain[1] != "two" {
		t.Errorf("plain_list = %v", plain)
	}
}

func TestDecodeYAMLErrorsCarryLines(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab indent", "a: 1\n\tb: 2", "line 2"},
		{"duplicate key", "a: 1\na: 2", "line 2"},
		{"bare scalar mid-doc", "a: 1\nnot a mapping entry!\n", "line 2"},
		{"unterminated flow", "a: [1, 2", "line 1"},
		{"seq in map", "a: 1\n- b", "line 2"},
		{"dedent too far", "a:\n    b: 1\n  c: 2", "line 3"},
		{"empty", "", "empty"},
	}
	for _, tc := range cases {
		_, err := DecodeYAML([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeYAMLDepthLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < maxYAMLDepth+2; i++ {
		b.WriteString(strings.Repeat("  ", i))
		b.WriteString("k:\n")
	}
	b.WriteString(strings.Repeat("  ", maxYAMLDepth+2))
	b.WriteString("v: 1\n")
	if _, err := DecodeYAML([]byte(b.String())); err == nil {
		t.Error("deeply nested document accepted")
	}
}
