package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// quickScenario is small enough to execute in tests: four PoPs, a partition
// and a reboot, both run groups.
const quickScenario = `
name: engine-test
fleet:
  pops: [lhr, fra, jfk, nrt]
  seed: 11
  loss_rate: 0.001
  riptide:
    enabled: true
  traffic:
    probe_interval: 30s
    probe_sizes_kb: [50]
duration: 4m
compare:
  riptide: false
events:
  - at: 90s
    peer_partition:
      a: lhr
      b: jfk
      for: 60s
assertions:
  - riptide.probe_failures.during >= 1
  - riptide.probe_failures.after == 0
  - riptide.routes.end > 0
  - control.routes.end == 0
`

func runQuick(t *testing.T, src string) *Report {
	t.Helper()
	sp, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEngineEndToEnd(t *testing.T) {
	rep := runQuick(t, quickScenario)
	if len(rep.Runs) != 2 || rep.Runs[0].Name != "riptide" || rep.Runs[1].Name != "control" {
		t.Fatalf("runs = %+v", rep.Runs)
	}
	if !rep.Pass {
		b, _ := rep.Encode()
		t.Fatalf("assertions failed:\n%s", b)
	}
	if rep.Phases.During != "1m30s..2m30s" {
		t.Errorf("during phase = %q", rep.Phases.During)
	}
}

// TestDeterminismPin is the format's core promise: the same file with the
// same seed produces byte-identical reports, and changing only the seed
// changes them.
func TestDeterminismPin(t *testing.T) {
	enc := func(src string) []byte {
		rep := runQuick(t, src)
		b, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := enc(quickScenario)
	b := enc(quickScenario)
	if !bytes.Equal(a, b) {
		t.Fatalf("same scenario, same seed, different reports:\n%s\n---\n%s", a, b)
	}
	reseeded := strings.Replace(quickScenario, "seed: 11", "seed: 12", 1)
	c := enc(reseeded)
	if bytes.Equal(a, c) {
		t.Fatal("changing the seed did not change the report")
	}
}

func TestEngineRecoveryTracking(t *testing.T) {
	src := `
name: reboot-test
fleet:
  pops: [lhr, fra, jfk]
  hosts_per_pop: 2
  seed: 3
  riptide:
    enabled: true
  traffic:
    probe_interval: 20s
    probe_sizes_kb: [10]
duration: 4m
events:
  - at: 0s
    enable_fleet_sharing:
      interval: 5s
  - at: 1m59s
    host_reboot:
      pop: lhr
      host: 0
      track_recovery: 0.9
assertions:
  - riptide.recovery_ticks <= 60
  - riptide.recovery_ticks >= 1
`
	rep := runQuick(t, src)
	if !rep.Pass {
		b, _ := rep.Encode()
		t.Fatalf("recovery assertions failed:\n%s", b)
	}
}

func TestEngineKnobAndWindow(t *testing.T) {
	src := `
name: knob-test
fleet:
  pops: [lhr, jfk]
  seed: 5
  capacity_segments: 400
  riptide:
    enabled: true
  traffic:
    probe_interval: 30s
    probe_sizes_kb: [100]
duration: 3m
window:
  start: 90s
  end: 2m
events:
  - at: 90s
    set_knob:
      knob: pair_capacity
      a: lhr
      b: jfk
      value: 8
assertions:
  - riptide.retrans.during + riptide.retrans.after > riptide.retrans.before
`
	rep := runQuick(t, src)
	if !rep.Pass {
		b, _ := rep.Encode()
		t.Fatalf("knob assertions failed:\n%s", b)
	}
	if rep.Phases.During != "1m30s..2m0s" {
		t.Errorf("explicit window ignored: during = %q", rep.Phases.During)
	}
}
