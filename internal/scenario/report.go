package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// ReportSchema versions the report format for downstream tooling.
const ReportSchema = "riptide/scenario-report/v1"

// Report is the machine-readable outcome of one scenario execution. It is
// built only from structs and sorted slices — never maps — so encoding it is
// byte-for-byte deterministic for a given spec and seed.
type Report struct {
	Schema      string `json:"schema"`
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	// Duration is the simulated run length.
	Duration string `json:"duration"`
	// Phases spells out the before/during/after boundaries used by the
	// phase metrics.
	Phases PhaseBounds `json:"phases"`
	// Runs holds each executed run's metrics: the main run first, then the
	// control run when the scenario has a compare block.
	Runs []RunReport `json:"runs"`
	// Assertions are the evaluated checks, in file order.
	Assertions []AssertionResult `json:"assertions,omitempty"`
	// Pass is true when every assertion held.
	Pass bool `json:"pass"`
}

// PhaseBounds renders each phase as "start..end".
type PhaseBounds struct {
	Before string `json:"before"`
	During string `json:"during"`
	After  string `json:"after"`
}

func phaseSpan(start, end time.Duration) string {
	return fmt.Sprintf("%v..%v", start, end)
}

// RunReport is one run's flat metric list, sorted by name.
type RunReport struct {
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// Metric is one named measurement.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// sortMetrics flattens a run's metric map into a name-sorted slice and also
// registers each metric under "<run>.<name>" in the combined map the
// assertions evaluate against.
func sortMetrics(run string, m map[string]float64, combined map[string]float64) []Metric {
	out := make([]Metric, 0, len(m))
	for k, v := range m {
		out = append(out, Metric{Name: k, Value: v})
		combined[run+"."+k] = v
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Encode renders the report as indented JSON with a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
