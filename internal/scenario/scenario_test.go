package scenario

import (
	"strings"
	"testing"
	"time"
)

const validScenario = `
name: unit-test
description: parse-layer exercise
fleet:
  pops: [lhr, fra, jfk, nrt]
  hosts_per_pop: 2
  seed: 7
  loss_rate: 0.001
  capacity_segments: 400
  riptide:
    enabled: true
    cmax: 100
    guard:
      min_segments: 24
      hysteresis_ticks: 2
      quarantine_ttl: 10m
  traffic:
    probe_interval: 30s
    probe_sizes_kb: [50]
    organic:
      lhr: 2.0
duration: 6m
compare:
  guard: false
events:
  - at: 0s
    enable_fleet_sharing:
      interval: 5s
  - at: 2m
    capacity_cut:
      pop: jfk
      from: lhr
      for: 2m
      segments: 10
      restore_segments: 400
  - at: 3m
    flash_crowd:
      target: fra
      for: 30s
      rate_per_pop: 1.0
assertions:
  - riptide.quarantines >= 1
  - riptide.retrans.during < control.retrans.during
  - riptide.probe_ms.p99.during / riptide.probe_ms.p99.before <= 10
`

func TestParseValidScenario(t *testing.T) {
	sp, err := Parse([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "unit-test" {
		t.Errorf("name = %q", sp.Name)
	}
	if sp.Duration != 6*time.Minute {
		t.Errorf("duration = %v", sp.Duration)
	}
	if len(sp.Events) != 3 {
		t.Fatalf("events = %d", len(sp.Events))
	}
	if sp.Events[1].Kind != "capacity_cut" {
		t.Errorf("event[1] kind = %q", sp.Events[1].Kind)
	}
	cc, ok := sp.Events[1].Payload.(*CapacityCutEvent)
	if !ok || cc.PoP != "jfk" || cc.From != "lhr" || cc.Segments != 10 {
		t.Errorf("capacity cut payload = %+v", sp.Events[1].Payload)
	}
	if sp.Fleet.Riptide.Guard == nil || sp.Fleet.Riptide.Guard.MinSegments != 24 {
		t.Errorf("guard = %+v", sp.Fleet.Riptide.Guard)
	}
	if len(sp.Assertions) != 3 {
		t.Fatalf("assertions = %d", len(sp.Assertions))
	}
	if sp.Compare == nil || sp.Compare.Guard == nil || *sp.Compare.Guard {
		t.Errorf("compare = %+v", sp.Compare)
	}
	// The during window is the union of the cut and the crowd.
	start, end := sp.phaseWindow()
	if start != 2*time.Minute || end != 4*time.Minute {
		t.Errorf("window = [%v, %v)", start, end)
	}
	pops, err := sp.Fleet.ResolvePoPs()
	if err != nil || len(pops) != 4 {
		t.Errorf("pops = %v, %v", pops, err)
	}
}

// mutate applies a line-level edit to the valid scenario, for error-path
// coverage without repeating the whole document.
func mutate(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(validScenario, old) {
		t.Fatalf("fixture does not contain %q", old)
	}
	return strings.Replace(validScenario, old, new, 1)
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown top key", mutate(t, "description:", "descriptoin:"), "unknown key"},
		{"unknown pop", mutate(t, "pops: [lhr, fra, jfk, nrt]", "pops: [lhr, fra, jfk, xxx]"), `unknown PoP "xxx"`},
		{"missing name", mutate(t, "name: unit-test", "description2: x"), "unknown key"},
		{"missing duration", mutate(t, "duration: 6m", "duration2: 6m"), "unknown key"},
		{"bad duration", mutate(t, "duration: 6m", "duration: six"), "not a duration"},
		{"event out of order", mutate(t, "  - at: 3m\n    flash_crowd:", "  - at: 1m\n    flash_crowd:"), "time order"},
		{"event after end", mutate(t, "at: 3m", "at: 3h"), "outside the run"},
		{"unknown event kind", mutate(t, "flash_crowd:", "flashcrowd:"), "unknown event kind"},
		{"two kinds in one event", mutate(t, "    flash_crowd:", "    degradation: {pop: lhr, for: 1s, loss_rate: 0.1}\n    flash_crowd:"), "two kinds"},
		{"cut self pair", mutate(t, "from: lhr", "from: jfk"), "must differ"},
		{"cut zero segments", mutate(t, "segments: 10", "segments: 0"), ">= 1"},
		{"bad assertion op", mutate(t, "riptide.quarantines >= 1", "riptide.quarantines ~ 1"), "no comparison"},
		{"unqualified metric", mutate(t, "riptide.quarantines >= 1", "quarantines >= 1"), "run-qualified"},
		{"organic unknown pop", mutate(t, "      lhr: 2.0", "      syd: 2.0"), `unknown PoP "syd"`},
		{"guard without riptide", mutate(t, "enabled: true", "enabled: false"), "guard needs riptide"},
		{"compare without knob", mutate(t, "compare:\n  guard: false", "compare: {}"), "sets no knob"},
		{"sharing not at zero", mutate(t, "  - at: 0s\n    enable_fleet_sharing:", "  - at: 0s\n    peer_partition: {a: lhr, b: fra, for: 10s}\n  - at: 1s\n    enable_fleet_sharing:"), "at 0s"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseErrorsAreLineNumbered(t *testing.T) {
	// An unknown key deep in the document must point at its own line.
	src := "name: x\nfleet:\n  pops: [lhr, fra]\n  riptide:\n    enabled: true\n    cmaxx: 5\nduration: 1m\n"
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "line 6") {
		t.Errorf("error %q does not carry line 6", err)
	}
}

func TestRegionSelection(t *testing.T) {
	f := FleetSpec{Regions: []string{"oceania"}}
	pops, err := f.ResolvePoPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pops) != 3 {
		t.Errorf("oceania = %d PoPs, want 3", len(pops))
	}
	f = FleetSpec{Regions: []string{"atlantis"}}
	if _, err := f.ResolvePoPs(); err == nil || !strings.Contains(err.Error(), "unknown region") {
		t.Errorf("atlantis: %v", err)
	}
	// PoPs and regions union without duplicates.
	f = FleetSpec{PoPs: []string{"syd", "lhr"}, Regions: []string{"oceania"}}
	pops, err = f.ResolvePoPs()
	if err != nil || len(pops) != 4 {
		t.Errorf("union = %v, %v", pops, err)
	}
}

func TestAssertionEval(t *testing.T) {
	metrics := map[string]float64{
		"riptide.p99.during": 300,
		"riptide.p99.before": 200,
		"riptide.zero":       0,
	}
	cases := []struct {
		src  string
		pass bool
	}{
		{"riptide.p99.during / riptide.p99.before <= 1.5", true},
		{"riptide.p99.during / riptide.p99.before <= 1.4", false},
		{"riptide.p99.during - riptide.p99.before == 100", true},
		{"riptide.p99.during > 299", true},
		{"riptide.p99.before * 2 >= 400", true},
		{"riptide.p99.during/riptide.p99.before <= 1.5", true}, // no spaces
		{"riptide.p99.during / riptide.zero < 10", false},      // division by zero fails
		{"riptide.missing < 10", false},                        // missing metric fails
	}
	for _, tc := range cases {
		a, err := ParseAssertion(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		res := a.Eval(metrics)
		if res.Pass != tc.pass {
			t.Errorf("%q: pass = %v (detail %q)", tc.src, res.Pass, res.Detail)
		}
		if !res.Pass && res.Detail == "" {
			t.Errorf("%q: failed without detail", tc.src)
		}
	}
}

func TestAssertionMissingMetricSuggests(t *testing.T) {
	a, err := ParseAssertion("riptide.probe_ms.p99.durin <= 1")
	if err != nil {
		t.Fatal(err)
	}
	res := a.Eval(map[string]float64{"riptide.probe_ms.p99.during": 1, "control.retrans.total": 2})
	if res.Pass {
		t.Fatal("passed with missing metric")
	}
	if !strings.Contains(res.Detail, "riptide.probe_ms.p99.during") {
		t.Errorf("detail %q does not suggest the close metric", res.Detail)
	}
}
