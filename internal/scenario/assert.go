package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Assertion is one parsed comparison from the assertions block:
//
//	term [arith term] cmp term [arith term]
//
// where a term is a metric name (run-qualified dotted path, e.g.
// riptide.probe_ms.p99.during) or a numeric literal, arith is one of
// + - * /, and cmp is one of <= < >= > ==. The grammar covers the phase
// ratios the format exists for (p99_during / p99_before <= 1.5) without
// growing into a calculator.
type Assertion struct {
	// Source is the assertion as written.
	Source string
	// Line is where it appears in the file.
	Line int

	lhs, rhs expr
	cmp      string
}

type expr struct {
	// terms has one or two entries; op joins them when there are two.
	terms []term
	op    string
}

type term struct {
	metric  string
	literal float64
}

var cmpOps = []string{"<=", ">=", "==", "<", ">"} // two-char ops first
var arithOps = "+-*/"

// parseAssertions decodes the assertions block.
func parseAssertions(n *Node) ([]Assertion, error) {
	if n.Kind != SeqNode {
		return nil, fmt.Errorf("line %d: assertions must be a sequence", n.Line)
	}
	var out []Assertion
	for _, it := range n.Items {
		src, err := it.Str()
		if err != nil {
			return nil, err
		}
		a, err := ParseAssertion(src)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", it.Line, err)
		}
		a.Line = it.Line
		out = append(out, a)
	}
	return out, nil
}

// ParseAssertion parses one assertion expression.
func ParseAssertion(src string) (Assertion, error) {
	a := Assertion{Source: src}
	lhsText, rhsText := "", ""
	for _, op := range cmpOps {
		if i := strings.Index(src, op); i >= 0 {
			lhsText, rhsText = src[:i], src[i+len(op):]
			a.cmp = op
			break
		}
	}
	if a.cmp == "" {
		return a, fmt.Errorf("assertion %q has no comparison (valid: %s)", src, strings.Join(cmpOps, " "))
	}
	if strings.ContainsAny(rhsText, "<>=") {
		return a, fmt.Errorf("assertion %q has more than one comparison", src)
	}
	var err error
	if a.lhs, err = parseExpr(lhsText, src); err != nil {
		return a, err
	}
	if a.rhs, err = parseExpr(rhsText, src); err != nil {
		return a, err
	}
	return a, nil
}

func parseExpr(text, src string) (expr, error) {
	var e expr
	fields := strings.Fields(text)
	var parts []string
	// Accept both "a / b" and "a/b" by re-splitting around arith operators.
	for _, f := range fields {
		parts = append(parts, splitArith(f)...)
	}
	switch len(parts) {
	case 1:
		t, err := parseTerm(parts[0], src)
		if err != nil {
			return e, err
		}
		e.terms = []term{t}
		return e, nil
	case 3:
		if len(parts[1]) != 1 || !strings.Contains(arithOps, parts[1]) {
			return e, fmt.Errorf("assertion %q: %q is not an operator (valid: + - * /)", src, parts[1])
		}
		t1, err := parseTerm(parts[0], src)
		if err != nil {
			return e, err
		}
		t2, err := parseTerm(parts[2], src)
		if err != nil {
			return e, err
		}
		e.terms = []term{t1, t2}
		e.op = parts[1]
		return e, nil
	}
	return e, fmt.Errorf("assertion %q: expected \"term\" or \"term op term\", got %q", src, strings.TrimSpace(text))
}

// splitArith splits a token like "a/b" at arithmetic operators, keeping the
// operators. A leading '-' sticks to its number ("-1.5").
func splitArith(tok string) []string {
	var out []string
	start := 0
	for i := 0; i < len(tok); i++ {
		if strings.ContainsRune(arithOps, rune(tok[i])) {
			if tok[i] == '-' && i == start && (i == 0 || out != nil && len(out)%2 == 1) {
				continue // sign, not operator
			}
			if i > start {
				out = append(out, tok[start:i])
			}
			out = append(out, string(tok[i]))
			start = i + 1
		}
	}
	if start < len(tok) {
		out = append(out, tok[start:])
	}
	if len(out) == 0 {
		out = append(out, tok)
	}
	return out
}

func parseTerm(tok, src string) (term, error) {
	if v, err := strconv.ParseFloat(tok, 64); err == nil {
		return term{literal: v, metric: ""}, nil
	}
	for _, r := range tok {
		if !(r == '.' || r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
			return term{}, fmt.Errorf("assertion %q: %q is neither a number nor a metric name", src, tok)
		}
	}
	if !strings.Contains(tok, ".") {
		return term{}, fmt.Errorf("assertion %q: metric %q must be run-qualified (e.g. riptide.%s)", src, tok, tok)
	}
	return term{metric: tok}, nil
}

// Metrics returns every metric name the assertion references.
func (a Assertion) Metrics() []string {
	var out []string
	for _, e := range []expr{a.lhs, a.rhs} {
		for _, t := range e.terms {
			if t.metric != "" {
				out = append(out, t.metric)
			}
		}
	}
	return out
}

// Eval computes both sides against the metric map and compares them. A
// missing metric or a division by zero fails the assertion with an
// explanatory detail rather than erroring the whole run.
func (a Assertion) Eval(metrics map[string]float64) AssertionResult {
	res := AssertionResult{Source: a.Source}
	lhs, err := a.lhs.eval(metrics)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	rhs, err := a.rhs.eval(metrics)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	res.LHS, res.RHS = lhs, rhs
	switch a.cmp {
	case "<":
		res.Pass = lhs < rhs
	case "<=":
		res.Pass = lhs <= rhs
	case ">":
		res.Pass = lhs > rhs
	case ">=":
		res.Pass = lhs >= rhs
	case "==":
		res.Pass = lhs == rhs
	}
	if !res.Pass && res.Detail == "" {
		res.Detail = fmt.Sprintf("%s: %v %s %v is false", a.Source, lhs, a.cmp, rhs)
	}
	return res
}

func (e expr) eval(metrics map[string]float64) (float64, error) {
	vals := make([]float64, len(e.terms))
	for i, t := range e.terms {
		if t.metric == "" {
			vals[i] = t.literal
			continue
		}
		v, ok := metrics[t.metric]
		if !ok {
			return 0, fmt.Errorf("metric %q not produced by this run (close: %s)", t.metric, closestMetrics(t.metric, metrics))
		}
		vals[i] = v
	}
	if len(vals) == 1 {
		return vals[0], nil
	}
	switch e.op {
	case "+":
		return vals[0] + vals[1], nil
	case "-":
		return vals[0] - vals[1], nil
	case "*":
		return vals[0] * vals[1], nil
	case "/":
		if vals[1] == 0 {
			return math.NaN(), fmt.Errorf("division by zero evaluating %v / %v", vals[0], vals[1])
		}
		return vals[0] / vals[1], nil
	}
	return 0, fmt.Errorf("unknown operator %q", e.op)
}

// closestMetrics suggests up to three produced metrics sharing the longest
// prefix with the missing one.
func closestMetrics(want string, metrics map[string]float64) string {
	names := make([]string, 0, len(metrics))
	for k := range metrics {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := commonPrefix(want, names[i]), commonPrefix(want, names[j])
		if pi != pj {
			return pi > pj
		}
		return names[i] < names[j]
	})
	if len(names) > 3 {
		names = names[:3]
	}
	return strings.Join(names, " ")
}

func commonPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// AssertionResult is one evaluated assertion in the report.
type AssertionResult struct {
	// Source is the assertion as written.
	Source string `json:"source"`
	// LHS and RHS are the evaluated sides.
	LHS float64 `json:"lhs"`
	RHS float64 `json:"rhs"`
	// Pass reports whether the comparison held.
	Pass bool `json:"pass"`
	// Detail explains a failure (empty on pass).
	Detail string `json:"detail,omitempty"`
}
