package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"riptide/internal/cdn"
)

// Spec is a fully parsed and validated scenario file.
type Spec struct {
	// Name identifies the scenario in reports.
	Name string
	// Description is free-form operator documentation.
	Description string
	// Fleet defines the simulated deployment.
	Fleet FleetSpec
	// Duration is the total simulated run length.
	Duration time.Duration
	// Window, when set, overrides the event-derived "during" phase.
	Window *Window
	// Compare, when set, adds a control run differing in the named knobs.
	Compare *CompareSpec
	// Events is the timed incident stream, in non-decreasing At order.
	Events []Event
	// ProbeFilter restricts which probes feed the phase CDFs.
	ProbeFilter ProbeFilter
	// Assertions are checked against the runs' metrics after execution.
	Assertions []Assertion
}

// FleetSpec selects the deployment and its knobs.
type FleetSpec struct {
	// PoPs names a subset of the 34-PoP default topology; empty (together
	// with Regions) means the full deployment.
	PoPs []string
	// Regions selects whole continents by name (europe, north-america,
	// south-america, asia, oceania); unioned with PoPs.
	Regions []string
	// HostsPerPoP is machines per PoP (default 1).
	HostsPerPoP int
	// Seed drives all randomness.
	Seed int64
	// LossRate / RTTJitter / CapacitySegments mirror cdn.Config.
	LossRate         float64
	RTTJitter        float64
	CapacitySegments int
	// Riptide configures the per-host agents.
	Riptide RiptideSpec
	// Traffic shapes probes and organic load.
	Traffic TrafficSpec
}

// RiptideSpec mirrors cdn.RiptideOptions.
type RiptideSpec struct {
	Enabled        bool
	CMax, CMin     int
	Alpha          float64
	UpdateInterval time.Duration
	TTL            time.Duration
	PrefixBits     int
	// Guard, when set, gives every agent a safety governor.
	Guard *GuardSpec
}

// GuardSpec mirrors the guard.Config knobs a scenario may set.
type GuardSpec struct {
	Holdback        float64
	MinSegments     int64
	HysteresisTicks int
	QuarantineTTL   time.Duration
}

// OrganicRate is one PoP's background-traffic rate, kept as an ordered list
// so runs never depend on map iteration order.
type OrganicRate struct {
	PoP  string
	Rate float64
}

// TrafficSpec mirrors cdn.TrafficOptions.
type TrafficSpec struct {
	ProbeInterval          time.Duration
	ProbeSizesKB           []int
	CloseAfterTransferProb float64
	IdleTimeout            time.Duration
	Organic                []OrganicRate
	// OrganicSizeKB fixes organic object sizes; 0 keeps the paper's
	// Figure 2 mix.
	OrganicSizeKB float64
}

// Window bounds the "during" phase for before/during/after analysis.
type Window struct {
	Start, End time.Duration
}

// CompareSpec derives the control run from the main run.
type CompareSpec struct {
	// Riptide, when set, overrides RiptideSpec.Enabled in the control run.
	Riptide *bool
	// Guard, when set false, strips the safety governor in the control run.
	Guard *bool
	// Gossip, when set false, downgrades the control run's gossip mode to
	// "full" — same sync schedule, whole tables every round — so the
	// assertions can price the anti-entropy ladder against the legacy
	// full-snapshot cost model.
	Gossip *bool
}

// ProbeFilter restricts the probe population feeding the phase CDFs.
type ProbeFilter struct {
	// SizeKB keeps only probes of this payload (0 = all sizes).
	SizeKB int
	// FreshOnly keeps only probes that opened a new connection — the
	// population Riptide affects.
	FreshOnly bool
}

// Event is one timed incident.
type Event struct {
	// Line is the source line, for error reporting.
	Line int
	// At is when the event fires.
	At time.Duration
	// Kind names the event type.
	Kind string
	// Payload holds the kind-specific parameters.
	Payload EventPayload
}

// EventPayload is the kind-specific part of an event.
type EventPayload interface {
	// validate checks semantics against the resolved PoP set. at is the
	// event's fire time, total the run duration.
	validate(pops map[string]bool, at, total time.Duration) error
	// window reports the disruption window the event contributes to the
	// "during" phase ([0,0) = none). total is the run duration, for
	// open-ended events.
	window(at, total time.Duration) (start, end time.Duration)
	// affected names the PoPs the event touches (nil = none).
	affected() []string
}

// CapacityCutEvent collapses path capacity around a PoP (or one pair).
type CapacityCutEvent struct {
	PoP             string
	From            string
	For             time.Duration
	Segments        int
	RestoreSegments int
}

// HostRebootEvent reboots one machine of a PoP. For bounds the disruption
// window for phase analysis (0 = rest of run). TrackRecovery, when > 0,
// records how many 1 s ticks the fleet needs to regain that fraction of its
// pre-reboot learned routes.
type HostRebootEvent struct {
	PoP           string
	Host          int
	For           time.Duration
	TrackRecovery float64
}

// RollingRebootsEvent reboots whole PoPs one after another.
type RollingRebootsEvent struct {
	PoPs          []string
	Interval      time.Duration
	TrackRecovery float64
}

// FlashCrowdEvent mirrors cdn.FlashCrowd.
type FlashCrowdEvent struct {
	Target     string
	For        time.Duration
	RatePerPoP float64
	SizeKB     int
}

// PathFlapEvent mirrors cdn.PathFlap.
type PathFlapEvent struct {
	A, B     string
	For      time.Duration
	RTTScale float64
}

// PeerPartitionEvent mirrors cdn.PeerPartition.
type PeerPartitionEvent struct {
	A, B string
	For  time.Duration
}

// DegradationEvent mirrors cdn.RegionalDegradation.
type DegradationEvent struct {
	PoP      string
	For      time.Duration
	LossRate float64
}

// FleetSharingEvent enables periodic same-PoP snapshot exchange.
type FleetSharingEvent struct {
	Interval time.Duration
}

// GossipSharingEvent enables cross-PoP anti-entropy table sync with full
// wire-cost accounting (cdn.EnableGossipSharing). Mode is "ladder"
// (digest/delta anti-entropy) or "full" (every round ships whole tables —
// the legacy cost model). SeedEntries, when > 0, pre-populates every
// agent's table with that many synthetic warm destinations, modeling a
// long-lived back-office fleet whose table size a short run cannot grow.
type GossipSharingEvent struct {
	Interval    time.Duration
	Mode        string
	SeedEntries int
}

// Raw knob names for KnobEvent.
const (
	KnobPoPLoss      = "pop_loss"
	KnobPoPCapacity  = "pop_capacity"
	KnobPairCapacity = "pair_capacity"
	KnobPairRTTMs    = "pair_rtt_ms"
)

// KnobEvent is a raw override of one network knob at a point in time, for
// incident shapes the structured events do not cover.
type KnobEvent struct {
	Knob  string
	PoP   string
	A, B  string
	Value float64
}

// Parse decodes, schema-checks, and semantically validates a scenario file.
// It does everything `riptide-sim validate` needs without running anything.
func Parse(src []byte) (*Spec, error) {
	root, err := DecodeYAML(src)
	if err != nil {
		return nil, err
	}
	if root.Kind != MapNode {
		return nil, fmt.Errorf("line %d: scenario document must be a mapping", root.Line)
	}
	if err := checkKeys(root, "name", "description", "fleet", "duration", "window", "compare", "events", "probe_filter", "assertions"); err != nil {
		return nil, err
	}
	sp := &Spec{}
	if n := root.Get("name"); n != nil {
		if sp.Name, err = n.Str(); err != nil {
			return nil, err
		}
	}
	if sp.Name == "" {
		return nil, fmt.Errorf("line %d: scenario needs a name", root.Line)
	}
	if n := root.Get("description"); n != nil {
		if sp.Description, err = n.Str(); err != nil {
			return nil, err
		}
	}
	fleetNode := root.Get("fleet")
	if fleetNode == nil {
		return nil, fmt.Errorf("line %d: scenario needs a fleet block", root.Line)
	}
	if err := parseFleet(fleetNode, &sp.Fleet); err != nil {
		return nil, err
	}
	durNode := root.Get("duration")
	if durNode == nil {
		return nil, fmt.Errorf("line %d: scenario needs a duration", root.Line)
	}
	if sp.Duration, err = durNode.Duration(); err != nil {
		return nil, err
	}
	if sp.Duration <= 0 {
		return nil, fmt.Errorf("line %d: duration %v must be positive", durNode.Line, sp.Duration)
	}
	if n := root.Get("window"); n != nil {
		if sp.Window, err = parseWindow(n, sp.Duration); err != nil {
			return nil, err
		}
	}
	if n := root.Get("compare"); n != nil {
		if sp.Compare, err = parseCompare(n); err != nil {
			return nil, err
		}
	}
	if n := root.Get("probe_filter"); n != nil {
		if err := parseProbeFilter(n, &sp.ProbeFilter); err != nil {
			return nil, err
		}
	}
	pops, err := sp.Fleet.ResolvePoPs()
	if err != nil {
		return nil, err
	}
	popSet := make(map[string]bool, len(pops))
	for _, p := range pops {
		popSet[p.Name] = true
	}
	for _, o := range sp.Fleet.Traffic.Organic {
		if !popSet[o.PoP] {
			return nil, fmt.Errorf("fleet: organic rate for unknown PoP %q", o.PoP)
		}
	}
	if n := root.Get("events"); n != nil {
		if sp.Events, err = parseEvents(n, popSet, sp.Duration); err != nil {
			return nil, err
		}
	}
	if n := root.Get("assertions"); n != nil {
		if sp.Assertions, err = parseAssertions(n); err != nil {
			return nil, err
		}
	}
	if sp.Compare != nil && sp.Compare.Guard != nil && !*sp.Compare.Guard && sp.Fleet.Riptide.Guard == nil {
		return nil, fmt.Errorf("compare: guard: false needs fleet.riptide.guard configured")
	}
	if sp.Compare != nil && sp.Compare.Gossip != nil {
		found := false
		for _, ev := range sp.Events {
			if _, ok := ev.Payload.(*GossipSharingEvent); ok {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("compare: gossip needs an enable_gossip_sharing event")
		}
	}
	return sp, nil
}

// ResolvePoPs returns the scenario's deployment, in default-topology order.
func (f *FleetSpec) ResolvePoPs() ([]cdn.PoP, error) {
	all := cdn.DefaultTopology()
	if len(f.PoPs) == 0 && len(f.Regions) == 0 {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range f.PoPs {
		found := false
		for _, p := range all {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fleet: unknown PoP %q (valid: %s)", name, popNames(all))
		}
		want[name] = true
	}
	for _, region := range f.Regions {
		cont, err := continentByName(region)
		if err != nil {
			return nil, err
		}
		for _, p := range all {
			if p.Continent == cont {
				want[p.Name] = true
			}
		}
	}
	var out []cdn.PoP
	for _, p := range all {
		if want[p.Name] {
			out = append(out, p)
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("fleet: needs at least two PoPs, selected %d", len(out))
	}
	return out, nil
}

func popNames(pops []cdn.PoP) string {
	names := make([]string, len(pops))
	for i, p := range pops {
		names[i] = p.Name
	}
	return strings.Join(names, " ")
}

func continentByName(name string) (cdn.Continent, error) {
	switch name {
	case "europe":
		return cdn.Europe, nil
	case "north-america":
		return cdn.NorthAmerica, nil
	case "south-america":
		return cdn.SouthAmerica, nil
	case "asia":
		return cdn.Asia, nil
	case "oceania":
		return cdn.Oceania, nil
	}
	return 0, fmt.Errorf("fleet: unknown region %q (valid: europe north-america south-america asia oceania)", name)
}

// checkKeys rejects unknown keys with a line-numbered error.
func checkKeys(n *Node, valid ...string) error {
	for i, k := range n.Keys {
		ok := false
		for _, v := range valid {
			if k == v {
				ok = true
				break
			}
		}
		if !ok {
			sort.Strings(valid)
			return fmt.Errorf("line %d: unknown key %q (valid: %s)", n.KeyLines[i], k, strings.Join(valid, " "))
		}
	}
	return nil
}

func needMap(n *Node, what string) error {
	if n.Kind != MapNode {
		return fmt.Errorf("line %d: %s must be a mapping", n.Line, what)
	}
	return nil
}

func parseFleet(n *Node, f *FleetSpec) error {
	if err := needMap(n, "fleet"); err != nil {
		return err
	}
	if err := checkKeys(n, "pops", "regions", "hosts_per_pop", "seed", "loss_rate", "rtt_jitter", "capacity_segments", "riptide", "traffic"); err != nil {
		return err
	}
	var err error
	if v := n.Get("pops"); v != nil {
		if f.PoPs, err = v.StrSeq(); err != nil {
			return err
		}
	}
	if v := n.Get("regions"); v != nil {
		if f.Regions, err = v.StrSeq(); err != nil {
			return err
		}
	}
	if v := n.Get("hosts_per_pop"); v != nil {
		iv, err := v.Int()
		if err != nil {
			return err
		}
		if iv < 1 || iv > 200 {
			return fmt.Errorf("line %d: hosts_per_pop %d out of [1,200]", v.Line, iv)
		}
		f.HostsPerPoP = int(iv)
	}
	if v := n.Get("seed"); v != nil {
		if f.Seed, err = v.Int(); err != nil {
			return err
		}
	}
	if v := n.Get("loss_rate"); v != nil {
		if f.LossRate, err = v.Float(); err != nil {
			return err
		}
		if f.LossRate < 0 || f.LossRate >= 1 {
			return fmt.Errorf("line %d: loss_rate %v out of [0,1)", v.Line, f.LossRate)
		}
	}
	if v := n.Get("rtt_jitter"); v != nil {
		if f.RTTJitter, err = v.Float(); err != nil {
			return err
		}
		if f.RTTJitter < 0 {
			return fmt.Errorf("line %d: rtt_jitter %v must not be negative", v.Line, f.RTTJitter)
		}
	}
	if v := n.Get("capacity_segments"); v != nil {
		iv, err := v.Int()
		if err != nil {
			return err
		}
		if iv < 0 {
			return fmt.Errorf("line %d: capacity_segments %d must not be negative", v.Line, iv)
		}
		f.CapacitySegments = int(iv)
	}
	if v := n.Get("riptide"); v != nil {
		if err := parseRiptide(v, &f.Riptide); err != nil {
			return err
		}
	}
	if v := n.Get("traffic"); v != nil {
		if err := parseTraffic(v, &f.Traffic); err != nil {
			return err
		}
	}
	return nil
}

func parseRiptide(n *Node, r *RiptideSpec) error {
	if err := needMap(n, "riptide"); err != nil {
		return err
	}
	if err := checkKeys(n, "enabled", "cmax", "cmin", "alpha", "update_interval", "ttl", "prefix_bits", "guard"); err != nil {
		return err
	}
	var err error
	if v := n.Get("enabled"); v != nil {
		if r.Enabled, err = v.Bool(); err != nil {
			return err
		}
	}
	for _, kv := range []struct {
		key string
		dst *int
	}{{"cmax", &r.CMax}, {"cmin", &r.CMin}, {"prefix_bits", &r.PrefixBits}} {
		if v := n.Get(kv.key); v != nil {
			iv, err := v.Int()
			if err != nil {
				return err
			}
			if iv < 0 {
				return fmt.Errorf("line %d: %s %d must not be negative", v.Line, kv.key, iv)
			}
			*kv.dst = int(iv)
		}
	}
	if v := n.Get("alpha"); v != nil {
		if r.Alpha, err = v.Float(); err != nil {
			return err
		}
	}
	if v := n.Get("update_interval"); v != nil {
		if r.UpdateInterval, err = v.Duration(); err != nil {
			return err
		}
	}
	if v := n.Get("ttl"); v != nil {
		if r.TTL, err = v.Duration(); err != nil {
			return err
		}
	}
	if v := n.Get("guard"); v != nil {
		g := &GuardSpec{}
		if err := needMap(v, "guard"); err != nil {
			return err
		}
		if err := checkKeys(v, "holdback", "min_segments", "hysteresis_ticks", "quarantine_ttl"); err != nil {
			return err
		}
		if w := v.Get("holdback"); w != nil {
			if g.Holdback, err = w.Float(); err != nil {
				return err
			}
		}
		if w := v.Get("min_segments"); w != nil {
			if g.MinSegments, err = w.Int(); err != nil {
				return err
			}
		}
		if w := v.Get("hysteresis_ticks"); w != nil {
			iv, err := w.Int()
			if err != nil {
				return err
			}
			g.HysteresisTicks = int(iv)
		}
		if w := v.Get("quarantine_ttl"); w != nil {
			if g.QuarantineTTL, err = w.Duration(); err != nil {
				return err
			}
		}
		if !r.Enabled {
			return fmt.Errorf("line %d: guard needs riptide enabled", v.Line)
		}
		r.Guard = g
	}
	return nil
}

func parseTraffic(n *Node, t *TrafficSpec) error {
	if err := needMap(n, "traffic"); err != nil {
		return err
	}
	if err := checkKeys(n, "probe_interval", "probe_sizes_kb", "close_after_transfer_prob", "idle_timeout", "organic", "organic_size_kb"); err != nil {
		return err
	}
	var err error
	if v := n.Get("probe_interval"); v != nil {
		if t.ProbeInterval, err = v.Duration(); err != nil {
			return err
		}
		if t.ProbeInterval <= 0 {
			return fmt.Errorf("line %d: probe_interval %v must be positive", v.Line, t.ProbeInterval)
		}
	}
	if v := n.Get("probe_sizes_kb"); v != nil {
		if v.Kind != SeqNode {
			return fmt.Errorf("line %d: probe_sizes_kb must be a sequence", v.Line)
		}
		for _, it := range v.Items {
			iv, err := it.Int()
			if err != nil {
				return err
			}
			if iv < 1 {
				return fmt.Errorf("line %d: probe size %d KB must be >= 1", it.Line, iv)
			}
			t.ProbeSizesKB = append(t.ProbeSizesKB, int(iv))
		}
	}
	if v := n.Get("close_after_transfer_prob"); v != nil {
		if t.CloseAfterTransferProb, err = v.Float(); err != nil {
			return err
		}
		if t.CloseAfterTransferProb < 0 || t.CloseAfterTransferProb > 1 {
			return fmt.Errorf("line %d: close_after_transfer_prob %v out of [0,1]", v.Line, t.CloseAfterTransferProb)
		}
	}
	if v := n.Get("idle_timeout"); v != nil {
		if t.IdleTimeout, err = v.Duration(); err != nil {
			return err
		}
		if t.IdleTimeout <= 0 {
			return fmt.Errorf("line %d: idle_timeout %v must be positive", v.Line, t.IdleTimeout)
		}
	}
	if v := n.Get("organic"); v != nil {
		if err := needMap(v, "organic"); err != nil {
			return err
		}
		for i, pop := range v.Keys {
			rate, err := v.Vals[i].Float()
			if err != nil {
				return err
			}
			if rate <= 0 {
				return fmt.Errorf("line %d: organic rate %v for %q must be positive", v.KeyLines[i], rate, pop)
			}
			t.Organic = append(t.Organic, OrganicRate{PoP: pop, Rate: rate})
		}
	}
	if v := n.Get("organic_size_kb"); v != nil {
		if t.OrganicSizeKB, err = v.Float(); err != nil {
			return err
		}
		if t.OrganicSizeKB <= 0 {
			return fmt.Errorf("line %d: organic_size_kb %v must be positive", v.Line, t.OrganicSizeKB)
		}
	}
	return nil
}

func parseWindow(n *Node, total time.Duration) (*Window, error) {
	if err := needMap(n, "window"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "start", "end"); err != nil {
		return nil, err
	}
	w := &Window{}
	var err error
	startNode, endNode := n.Get("start"), n.Get("end")
	if startNode == nil || endNode == nil {
		return nil, fmt.Errorf("line %d: window needs start and end", n.Line)
	}
	if w.Start, err = startNode.Duration(); err != nil {
		return nil, err
	}
	if w.End, err = endNode.Duration(); err != nil {
		return nil, err
	}
	if w.Start < 0 || w.End <= w.Start || w.End > total {
		return nil, fmt.Errorf("line %d: window [%v, %v) must satisfy 0 <= start < end <= duration", n.Line, w.Start, w.End)
	}
	return w, nil
}

func parseCompare(n *Node) (*CompareSpec, error) {
	if err := needMap(n, "compare"); err != nil {
		return nil, err
	}
	if err := checkKeys(n, "riptide", "guard", "gossip"); err != nil {
		return nil, err
	}
	c := &CompareSpec{}
	if v := n.Get("riptide"); v != nil {
		b, err := v.Bool()
		if err != nil {
			return nil, err
		}
		c.Riptide = &b
	}
	if v := n.Get("guard"); v != nil {
		b, err := v.Bool()
		if err != nil {
			return nil, err
		}
		c.Guard = &b
	}
	if v := n.Get("gossip"); v != nil {
		b, err := v.Bool()
		if err != nil {
			return nil, err
		}
		c.Gossip = &b
	}
	if c.Riptide == nil && c.Guard == nil && c.Gossip == nil {
		return nil, fmt.Errorf("line %d: compare block sets no knob (valid: gossip guard riptide)", n.Line)
	}
	return c, nil
}

func parseProbeFilter(n *Node, f *ProbeFilter) error {
	if err := needMap(n, "probe_filter"); err != nil {
		return err
	}
	if err := checkKeys(n, "size_kb", "fresh_only"); err != nil {
		return err
	}
	var err error
	if v := n.Get("size_kb"); v != nil {
		iv, err := v.Int()
		if err != nil {
			return err
		}
		if iv < 0 {
			return fmt.Errorf("line %d: size_kb %d must not be negative", v.Line, iv)
		}
		f.SizeKB = int(iv)
	}
	if v := n.Get("fresh_only"); v != nil {
		if f.FreshOnly, err = v.Bool(); err != nil {
			return err
		}
	}
	return nil
}
