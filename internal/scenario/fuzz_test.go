package scenario

import (
	"strings"
	"testing"
)

// FuzzDecodeYAML asserts the decoder never panics and never silently loses
// structure: whatever it accepts must round-trip through the accessors.
func FuzzDecodeYAML(f *testing.F) {
	seeds := []string{
		"a: 1",
		"a:\n  b: c",
		"- 1\n- 2",
		"a: [1, 2, 3]",
		"a: {b: 1, c: d}",
		"a: \"x # y\"\nb: 'z'",
		"events:\n  - at: 10s\n    flash_crowd:\n      target: lhr",
		"a:\n- b: 1\n  c: 2",
		"# only a comment",
		"---\na: 1\n...",
		"key with spaces: value: with: colons",
		"a: -1.5e10",
		strings.Repeat("  ", 10) + "deep: 1",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeYAML(data)
		if err != nil {
			return
		}
		walk(t, n, 0)
	})
}

// walk exercises every accessor on every node, checking invariants.
func walk(t *testing.T, n *Node, depth int) {
	if depth > maxYAMLDepth+2 {
		t.Fatalf("decoded tree deeper than the parser's limit")
	}
	if n.Line < 1 {
		t.Fatalf("node without a source line: %+v", n)
	}
	switch n.Kind {
	case MapNode:
		if len(n.Keys) != len(n.Vals) || len(n.Keys) != len(n.KeyLines) {
			t.Fatalf("mapping with mismatched key/value/line counts")
		}
		seen := map[string]bool{}
		for i, k := range n.Keys {
			if seen[k] {
				t.Fatalf("duplicate key %q survived decoding", k)
			}
			seen[k] = true
			if n.Get(k) != n.Vals[i] {
				t.Fatalf("Get(%q) does not return the stored value", k)
			}
			walk(t, n.Vals[i], depth+1)
		}
	case SeqNode:
		for _, it := range n.Items {
			walk(t, it, depth+1)
		}
	case ScalarNode:
		// Accessors must not panic; errors are fine.
		_, _ = n.Str()
		_, _ = n.Bool()
		_, _ = n.Int()
		_, _ = n.Float()
		_, _ = n.Duration()
	default:
		t.Fatalf("node with invalid kind %d", n.Kind)
	}
}

// FuzzParseScenario asserts the full schema layer never panics, and that
// whatever parses also re-parses (stability under acceptance).
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(validScenario))
	f.Add([]byte(quickScenario))
	f.Add([]byte("name: x\nfleet:\n  pops: [lhr, fra]\nduration: 1m"))
	f.Add([]byte("name: x\nfleet: {}\nduration: -1s"))
	f.Add([]byte("name: x\nfleet:\n  regions: [asia]\nduration: 1m\nassertions:\n  - riptide.a / riptide.b <= 1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return
		}
		if sp.Name == "" || sp.Duration <= 0 {
			t.Fatalf("accepted scenario with empty name or non-positive duration: %+v", sp)
		}
		if _, err := Parse(data); err != nil {
			t.Fatalf("accepted once, rejected on re-parse: %v", err)
		}
	})
}
