// Package scenario is the declarative experiment engine: it parses a YAML
// scenario file — a fleet definition, a timed event stream of operational
// incidents, and an assertions block — and executes it deterministically on
// the simulated CDN, emitting a stable machine-readable report. The same
// file with the same seed always produces a byte-identical report, so a
// scenario is a one-variable controlled experiment in a text file.
//
// The repo carries no dependencies, so the package includes its own decoder
// for the YAML subset the format needs: block mappings and sequences,
// flow-style `[a, b]` / `{k: v}` collections, quoted and plain scalars, and
// comments. It is not a general YAML parser and rejects what it does not
// understand rather than guessing.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// NodeKind discriminates the decoded node tree.
type NodeKind int

// Node kinds.
const (
	ScalarNode NodeKind = iota + 1
	MapNode
	SeqNode
)

// Node is one decoded YAML value, annotated with its source line so schema
// errors can point back into the file.
type Node struct {
	// Line is the 1-based source line the node starts on.
	Line int
	// Kind selects which of the remaining fields are meaningful.
	Kind NodeKind
	// Value is the scalar text (quotes stripped).
	Value string
	// Keys and Vals hold a mapping's entries in file order.
	Keys []string
	Vals []*Node
	// KeyLines holds the line of each key, parallel to Keys.
	KeyLines []int
	// Items holds a sequence's elements in order.
	Items []*Node
}

// Get returns the value mapped under key, or nil.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != MapNode {
		return nil
	}
	for i, k := range n.Keys {
		if k == key {
			return n.Vals[i]
		}
	}
	return nil
}

// decode limits, sized for scenario files while keeping the fuzzer safe
// from pathological inputs.
const (
	maxYAMLBytes = 1 << 20
	maxYAMLDepth = 32
	maxFlowItems = 1024
)

type yamlLine struct {
	num    int // 1-based source line
	indent int // leading spaces
	text   string
}

// DecodeYAML parses src into a node tree.
func DecodeYAML(src []byte) (*Node, error) {
	if len(src) > maxYAMLBytes {
		return nil, fmt.Errorf("yaml: input %d bytes exceeds the %d-byte limit", len(src), maxYAMLBytes)
	}
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	root, next, err := parseBlock(lines, 0, lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml: line %d: content indented left of the document root", lines[next].num)
	}
	return root, nil
}

// splitLines strips comments and blanks, records indentation, and rejects
// constructs outside the supported subset.
func splitLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.HasPrefix(raw, "---") || strings.HasPrefix(raw, "...") {
			continue // document markers are tolerated and ignored
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("yaml: line %d: tab in indentation", num)
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \t\r")
		if text == "" {
			continue
		}
		out = append(out, yamlLine{num: num, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing comment, respecting quoted scalars.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly the given indent starting at
// index i, returning the node and the index of the first unconsumed line.
func parseBlock(lines []yamlLine, i, indent, depth int) (*Node, int, error) {
	if depth > maxYAMLDepth {
		return nil, i, fmt.Errorf("yaml: line %d: nesting deeper than %d levels", lines[i].num, maxYAMLDepth)
	}
	if isSeqItem(lines[i].text) {
		return parseSeq(lines, i, indent, depth)
	}
	if _, _, ok := splitKey(lines[i].text); ok {
		return parseMap(lines, i, indent, depth)
	}
	// A lone scalar is only valid as a whole single-line document.
	if len(lines) == 1 {
		n, err := parseFlow(lines[i].text, lines[i].num, depth)
		return n, i + 1, err
	}
	return nil, i, fmt.Errorf("yaml: line %d: expected \"key: value\" or \"- item\"", lines[i].num)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// splitKey splits "key: rest" at the first top-level colon. ok is false when
// the line is not a mapping entry.
func splitKey(text string) (key, rest string, ok bool) {
	var quote byte
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':' && (i+1 == len(text) || text[i+1] == ' '):
			key = strings.TrimSpace(unquote(text[:i]))
			rest = strings.TrimSpace(text[i+1:])
			return key, rest, key != ""
		}
	}
	return "", "", false
}

func parseMap(lines []yamlLine, i, indent, depth int) (*Node, int, error) {
	n := &Node{Line: lines[i].num, Kind: MapNode}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if isSeqItem(ln.text) {
			return nil, i, fmt.Errorf("yaml: line %d: sequence item inside a mapping", ln.num)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("yaml: line %d: expected \"key: value\"", ln.num)
		}
		for _, k := range n.Keys {
			if k == key {
				return nil, i, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
			}
		}
		var val *Node
		var err error
		if rest != "" {
			val, err = parseFlow(rest, ln.num, depth)
			if err != nil {
				return nil, i, err
			}
			i++
		} else if i+1 < len(lines) && lines[i+1].indent > indent {
			val, i, err = parseBlock(lines, i+1, lines[i+1].indent, depth+1)
			if err != nil {
				return nil, i, err
			}
		} else {
			val = &Node{Line: ln.num, Kind: ScalarNode, Value: ""}
			i++
		}
		n.Keys = append(n.Keys, key)
		n.KeyLines = append(n.KeyLines, ln.num)
		n.Vals = append(n.Vals, val)
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", lines[i].num)
	}
	return n, i, nil
}

func parseSeq(lines []yamlLine, i, indent, depth int) (*Node, int, error) {
	n := &Node{Line: lines[i].num, Kind: SeqNode}
	for i < len(lines) && lines[i].indent == indent && isSeqItem(lines[i].text) {
		ln := lines[i]
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		var item *Node
		var err error
		switch {
		case rest == "":
			if i+1 < len(lines) && lines[i+1].indent > indent {
				item, i, err = parseBlock(lines, i+1, lines[i+1].indent, depth+1)
				if err != nil {
					return nil, i, err
				}
			} else {
				item = &Node{Line: ln.num, Kind: ScalarNode, Value: ""}
				i++
			}
		default:
			// "- key: value": the item content starts mid-line; re-parse it
			// as a block whose first line sits at the content's column.
			if _, _, ok := splitKey(rest); ok {
				col := ln.indent + (len(ln.text) - len(rest))
				rewritten := append([]yamlLine{{num: ln.num, indent: col, text: rest}}, lines[i+1:]...)
				var consumed int
				item, consumed, err = parseBlock(rewritten, 0, col, depth+1)
				if err != nil {
					return nil, i, err
				}
				i += consumed
			} else {
				item, err = parseFlow(rest, ln.num, depth)
				if err != nil {
					return nil, i, err
				}
				i++
			}
		}
		n.Items = append(n.Items, item)
		if len(n.Items) > maxFlowItems {
			return nil, i, fmt.Errorf("yaml: line %d: sequence longer than %d items", ln.num, maxFlowItems)
		}
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", lines[i].num)
	}
	return n, i, nil
}

// parseFlow parses an inline value: a flow sequence, a flow mapping, or a
// scalar.
func parseFlow(text string, line, depth int) (*Node, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("yaml: line %d: nesting deeper than %d levels", line, maxYAMLDepth)
	}
	switch {
	case strings.HasPrefix(text, "[") && strings.HasSuffix(text, "]"):
		n := &Node{Line: line, Kind: SeqNode}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return n, nil
		}
		parts, err := splitFlow(inner, line)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			item, err := parseFlow(p, line, depth+1)
			if err != nil {
				return nil, err
			}
			n.Items = append(n.Items, item)
		}
		return n, nil
	case strings.HasPrefix(text, "{") && strings.HasSuffix(text, "}"):
		n := &Node{Line: line, Kind: MapNode}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return n, nil
		}
		parts, err := splitFlow(inner, line)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			key, rest, ok := splitKey(p)
			if !ok {
				return nil, fmt.Errorf("yaml: line %d: expected \"key: value\" in flow mapping, got %q", line, p)
			}
			for _, k := range n.Keys {
				if k == key {
					return nil, fmt.Errorf("yaml: line %d: duplicate key %q", line, key)
				}
			}
			val, err := parseFlow(rest, line, depth+1)
			if err != nil {
				return nil, err
			}
			n.Keys = append(n.Keys, key)
			n.KeyLines = append(n.KeyLines, line)
			n.Vals = append(n.Vals, val)
		}
		return n, nil
	case strings.HasPrefix(text, "[") || strings.HasPrefix(text, "{"):
		return nil, fmt.Errorf("yaml: line %d: unterminated flow collection %q", line, text)
	}
	return &Node{Line: line, Kind: ScalarNode, Value: unquote(text)}, nil
}

// splitFlow splits flow-collection content at top-level commas.
func splitFlow(s string, line int) ([]string, error) {
	var out []string
	var quote byte
	nest := 0
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			nest++
		case c == ']' || c == '}':
			nest--
			if nest < 0 {
				return nil, fmt.Errorf("yaml: line %d: unbalanced brackets", line)
			}
		case c == ',' && nest == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
		if len(out) > maxFlowItems {
			return nil, fmt.Errorf("yaml: line %d: flow collection longer than %d items", line, maxFlowItems)
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("yaml: line %d: unterminated quote", line)
	}
	if nest != 0 {
		return nil, fmt.Errorf("yaml: line %d: unbalanced brackets", line)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// Typed scalar accessors. Each reports the node's line on mismatch so schema
// errors point into the source file.

func (n *Node) scalar(what string) (string, error) {
	if n.Kind != ScalarNode {
		return "", fmt.Errorf("line %d: expected %s, got a %s", n.Line, what, n.kindName())
	}
	return n.Value, nil
}

func (n *Node) kindName() string {
	switch n.Kind {
	case ScalarNode:
		return "scalar"
	case MapNode:
		return "mapping"
	case SeqNode:
		return "sequence"
	}
	return "unknown node"
}

// Str returns the node's scalar text.
func (n *Node) Str() (string, error) { return n.scalar("a string") }

// Bool parses the node as true/false.
func (n *Node) Bool() (bool, error) {
	s, err := n.scalar("a boolean")
	if err != nil {
		return false, err
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("line %d: %q is not a boolean (want true or false)", n.Line, s)
}

// Int parses the node as a decimal integer.
func (n *Node) Int() (int64, error) {
	s, err := n.scalar("an integer")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: %q is not an integer", n.Line, s)
	}
	return v, nil
}

// Float parses the node as a float.
func (n *Node) Float() (float64, error) {
	s, err := n.scalar("a number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: %q is not a number", n.Line, s)
	}
	return v, nil
}

// Duration parses the node as a Go duration ("90s", "2m", "1h30m").
func (n *Node) Duration() (time.Duration, error) {
	s, err := n.scalar("a duration")
	if err != nil {
		return 0, err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("line %d: %q is not a duration (want e.g. \"90s\", \"2m\")", n.Line, s)
	}
	return v, nil
}

// StrSeq parses the node as a sequence of strings.
func (n *Node) StrSeq() ([]string, error) {
	if n.Kind != SeqNode {
		return nil, fmt.Errorf("line %d: expected a sequence, got a %s", n.Line, n.kindName())
	}
	out := make([]string, 0, len(n.Items))
	for _, it := range n.Items {
		s, err := it.Str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
