package core

import (
	"errors"
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the lock-striped hot path: the sharded plan stage must produce
// byte-identical route programs to the single-shard serial reference, and
// the agent's public surface must stay race-free under concurrent ticks,
// snapshot traffic, and reads.

// stubGovernor is a deterministic, concurrency-safe Governor for in-package
// tests (internal/guard cannot be imported here without a cycle).
type stubGovernor struct {
	samples atomic.Uint64
	ticks   atomic.Uint64

	capAbove   int
	veto       func(netip.Prefix) bool
	quarantine func(netip.Prefix) bool
}

func (g *stubGovernor) ObserveSample(netip.Prefix, Observation) { g.samples.Add(1) }
func (g *stubGovernor) ObserveTick(time.Duration)               { g.ticks.Add(1) }

func (g *stubGovernor) Review(dst netip.Prefix, window int) (int, GuardAction) {
	if g.quarantine != nil && g.quarantine(dst) {
		return 0, GuardQuarantine
	}
	if g.veto != nil && g.veto(dst) {
		return 0, GuardVeto
	}
	if g.capAbove > 0 && window > g.capAbove {
		return g.capAbove, GuardCap
	}
	return window, GuardAllow
}

func (g *stubGovernor) Quarantines() []Quarantine { return nil }

// recordingRoutes records every route operation, in order, as a string; an
// optional fail predicate injects deterministic per-prefix failures.
type recordingRoutes struct {
	mu   sync.Mutex
	ops  []string
	fail func(netip.Prefix) bool
}

func (r *recordingRoutes) SetInitCwnd(p netip.Prefix, w int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil && r.fail(p) {
		r.ops = append(r.ops, fmt.Sprintf("set-fail %v %d", p, w))
		return errors.New("injected set failure")
	}
	r.ops = append(r.ops, fmt.Sprintf("set %v %d", p, w))
	return nil
}

func (r *recordingRoutes) ClearInitCwnd(p netip.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil && r.fail(p) {
		r.ops = append(r.ops, fmt.Sprintf("clear-fail %v", p))
		return errors.New("injected clear failure")
	}
	r.ops = append(r.ops, fmt.Sprintf("clear %v", p))
	return nil
}

func (r *recordingRoutes) recorded() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.ops))
	copy(out, r.ops)
	return out
}

// recordingBatchRoutes adds the batched surface: each batch is recorded as
// one entry listing its members in order.
type recordingBatchRoutes struct {
	recordingRoutes
}

func (r *recordingBatchRoutes) ProgramRoutes(ops []RouteOp) []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	s := "batch:"
	for i, op := range ops {
		verb := "set"
		if op.Clear {
			verb = "clear"
		}
		if r.fail != nil && r.fail(op.Prefix) {
			verb += "-fail"
			if errs == nil {
				errs = make([]error, len(ops))
			}
			errs[i] = errors.New("injected batch failure")
		}
		s += fmt.Sprintf(" %s %v %d;", verb, op.Prefix, op.Window)
	}
	r.ops = append(r.ops, s)
	return errs
}

var (
	_ RouteProgrammer      = (*recordingRoutes)(nil)
	_ BatchRouteProgrammer = (*recordingBatchRoutes)(nil)
)

// playbackSampler replays one fixed round per tick (repeating the last).
type playbackSampler struct {
	mu     sync.Mutex
	rounds [][]Observation
	next   int
}

func (s *playbackSampler) SampleConnections(buf []Observation) ([]Observation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.next
	if i >= len(s.rounds) {
		i = len(s.rounds) - 1
	}
	s.next++
	return append(buf, s.rounds[i]...), nil
}

// determinismRounds builds a deterministic multi-round observation schedule:
// hundreds of /24 groups (past the parallel-path threshold), drifting
// windows, per-round membership churn so entries expire, and a sprinkle of
// invalid samples that must be skipped identically on every path.
func determinismRounds(rounds, n int) [][]Observation {
	out := make([][]Observation, rounds)
	for r := 0; r < rounds; r++ {
		obs := make([]Observation, 0, n)
		for i := 0; i < n; i++ {
			if (i+r)%17 == 0 {
				continue // churn: this destination sits the round out
			}
			o := Observation{
				Dst:        netip.AddrFrom4([4]byte{10, byte(i / 200 % 200), byte(i % 200), byte(1 + i%3)}),
				Cwnd:       10 + (i*7+r*13)%90,
				RTT:        time.Duration(20+(i+r)%200) * time.Millisecond,
				BytesAcked: int64(i%97) * 1500,
			}
			if (i+2*r)%41 == 0 {
				o.Cwnd = 0 // invalid: must be dropped, not planned
			}
			out[r] = obs // keep the slice header fresh while appending
			obs = append(obs, o)
		}
		out[r] = obs
	}
	return out
}

// runShardedSchedule drives an agent with the given shard count over the
// schedule, advancing the clock 30s per tick so TTL expiry fires for
// destinations that churn out, and returns the final entries and stats.
func runShardedSchedule(t *testing.T, shards int, routes RouteProgrammer, gov Governor, rounds [][]Observation) ([]Entry, Stats, []string) {
	t.Helper()
	var now atomic.Int64
	cfg := Config{
		Sampler:    &playbackSampler{rounds: rounds},
		Routes:     routes,
		Clock:      func() time.Duration { return time.Duration(now.Load()) },
		PrefixBits: 24,
		Shards:     shards,
	}
	if gov != nil {
		cfg.Guard = gov
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", a.Shards(), shards)
	}
	// Route-programming failures surface as Tick errors; their rendered
	// text is part of the determinism contract, so collect rather than
	// fail on them.
	var tickErrs []string
	for range rounds {
		now.Add(int64(30 * time.Second))
		if err := a.Tick(); err != nil {
			tickErrs = append(tickErrs, err.Error())
		}
	}
	entries := a.Entries()
	stats := a.Stats()
	// Leave installed routes behind so the recorded op streams end at the
	// same point on every variant; Close ordering is covered elsewhere.
	return entries, stats, tickErrs
}

// determinismVariant checks that every shard count produces the identical
// route-op stream, learned table, and counters as the single-shard serial
// reference.
func determinismVariant(t *testing.T, newRoutes func() RouteProgrammer, newGov func() Governor) {
	t.Helper()
	rounds := determinismRounds(6, 900)
	type result struct {
		ops      []string
		entries  []Entry
		stats    Stats
		tickErrs []string
	}
	run := func(shards int) result {
		routes := newRoutes()
		var gov Governor
		if newGov != nil {
			gov = newGov()
		}
		entries, stats, tickErrs := runShardedSchedule(t, shards, routes, gov, rounds)
		var ops []string
		switch r := routes.(type) {
		case *recordingBatchRoutes:
			ops = r.recorded()
		case *recordingRoutes:
			ops = r.recorded()
		}
		return result{ops: ops, entries: entries, stats: stats, tickErrs: tickErrs}
	}
	ref := run(1)
	if len(ref.ops) == 0 || len(ref.entries) == 0 {
		t.Fatalf("serial reference did nothing: %d ops, %d entries", len(ref.ops), len(ref.entries))
	}
	for _, shards := range []int{2, 4, 8} {
		got := run(shards)
		if !reflect.DeepEqual(got.ops, ref.ops) {
			t.Errorf("shards=%d: route-op stream diverged from serial (got %d ops, want %d)",
				shards, len(got.ops), len(ref.ops))
			for i := range got.ops {
				if i < len(ref.ops) && got.ops[i] != ref.ops[i] {
					t.Errorf("first divergence at op %d:\n  got  %s\n  want %s", i, got.ops[i], ref.ops[i])
					break
				}
			}
		}
		if !reflect.DeepEqual(got.entries, ref.entries) {
			t.Errorf("shards=%d: learned table diverged (%d vs %d entries)",
				shards, len(got.entries), len(ref.entries))
		}
		if got.stats != ref.stats {
			t.Errorf("shards=%d: stats diverged:\n  got  %+v\n  want %+v", shards, got.stats, ref.stats)
		}
		if !reflect.DeepEqual(got.tickErrs, ref.tickErrs) {
			t.Errorf("shards=%d: tick errors diverged:\n  got  %q\n  want %q", shards, got.tickErrs, ref.tickErrs)
		}
	}
}

func TestShardedPlanMatchesSerial(t *testing.T) {
	determinismVariant(t, func() RouteProgrammer { return &recordingRoutes{} }, nil)
}

func TestShardedPlanMatchesSerialBatched(t *testing.T) {
	determinismVariant(t, func() RouteProgrammer { return &recordingBatchRoutes{} }, nil)
}

func TestShardedPlanMatchesSerialWithFailures(t *testing.T) {
	failer := func(p netip.Prefix) bool { return p.Addr().As4()[2]%5 == 0 }
	t.Run("per-op", func(t *testing.T) {
		determinismVariant(t, func() RouteProgrammer { return &recordingRoutes{fail: failer} }, nil)
	})
	t.Run("batch", func(t *testing.T) {
		determinismVariant(t, func() RouteProgrammer {
			return &recordingBatchRoutes{recordingRoutes: recordingRoutes{fail: failer}}
		}, nil)
	})
}

func TestShardedPlanMatchesSerialGoverned(t *testing.T) {
	determinismVariant(t,
		func() RouteProgrammer { return &recordingBatchRoutes{} },
		func() Governor {
			return &stubGovernor{
				capAbove:   40,
				veto:       func(p netip.Prefix) bool { return p.Addr().As4()[2]%11 == 0 },
				quarantine: func(p netip.Prefix) bool { return p.Addr().As4()[2]%13 == 0 },
			}
		})
}

// TestShardedAgentConcurrentAccess hammers the full public surface from
// concurrent goroutines; run under -race (make race / CI) it proves the
// striped state needs no global lock for readers.
func TestShardedAgentConcurrentAccess(t *testing.T) {
	rounds := determinismRounds(8, 600)
	gov := &stubGovernor{
		capAbove: 50,
		veto:     func(p netip.Prefix) bool { return p.Addr().As4()[2]%19 == 0 },
	}
	var now atomic.Int64
	a, err := New(Config{
		Sampler:    &playbackSampler{rounds: rounds},
		Routes:     &recordingBatchRoutes{},
		Clock:      func() time.Duration { return time.Duration(now.Load()) },
		PrefixBits: 24,
		Shards:     4,
		Guard:      gov,
	})
	if err != nil {
		t.Fatal(err)
	}

	remote := []SnapshotEntry{
		{Prefix: netip.MustParsePrefix("172.16.1.0/24"), Window: 44, Samples: 9, Age: time.Second},
		{Prefix: netip.MustParsePrefix("172.16.2.0/24"), Window: 61, Samples: 12, Age: 2 * time.Second},
		{Prefix: netip.MustParsePrefix("172.16.3.0/24"), Window: 0, Quarantined: true},
	}
	lookupAddr := netip.MustParseAddr("10.0.5.1")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 40; i++ {
			now.Add(int64(time.Second))
			if err := a.Tick(); err != nil {
				t.Errorf("tick: %v", err)
				return
			}
		}
	}()
	spin := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					f()
				}
			}
		}()
	}
	spin(func() { _ = a.ExportSnapshot() })
	spin(func() {
		if _, err := a.MergeSnapshot(remote, MergePolicy{}); err != nil {
			t.Errorf("merge: %v", err)
		}
	})
	spin(func() { _ = a.Entries() })
	spin(func() { _, _ = a.Lookup(lookupAddr) })
	spin(func() { _ = a.Stats() })
	wg.Wait()

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if gov.samples.Load() == 0 || gov.ticks.Load() == 0 {
		t.Errorf("governor unexercised: samples=%d ticks=%d", gov.samples.Load(), gov.ticks.Load())
	}
	if got := a.Stats(); got.Ticks != 40 {
		t.Errorf("ticks = %d, want 40", got.Ticks)
	}
}

// TestCloseClearsShardedRoutesSorted verifies Close withdraws every
// installed route exactly once, in sorted order, regardless of shard count.
func TestCloseClearsShardedRoutesSorted(t *testing.T) {
	for _, shards := range []int{1, 4} {
		routes := &recordingRoutes{}
		rounds := determinismRounds(2, 600)
		var now atomic.Int64
		a, err := New(Config{
			Sampler:    &playbackSampler{rounds: rounds},
			Routes:     routes,
			Clock:      func() time.Duration { return time.Duration(now.Load()) },
			PrefixBits: 24,
			Shards:     shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
		installed := len(a.Entries())
		before := len(routes.recorded())
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		ops := routes.recorded()[before:]
		if len(ops) != installed {
			t.Fatalf("shards=%d: close issued %d clears for %d entries", shards, len(ops), installed)
		}
		prefixes := make([]netip.Prefix, len(ops))
		for i, op := range ops {
			var raw string
			if _, err := fmt.Sscanf(op, "clear %s", &raw); err != nil {
				t.Fatalf("shards=%d: unexpected close op %q", shards, op)
			}
			prefixes[i] = netip.MustParsePrefix(raw)
		}
		for i := 1; i < len(prefixes); i++ {
			if !lessPrefix(prefixes[i-1], prefixes[i]) {
				t.Errorf("shards=%d: close clears not sorted at %d: %v then %v",
					shards, i, prefixes[i-1], prefixes[i])
				break
			}
		}
	}
}
