// Package core implements the Riptide algorithm (Flores, Khakpour, Bedi —
// ICDCS 2016, Algorithm 1): learn the congestion level of the paths between
// datacenters from live connections and program the initial congestion
// window of future connections accordingly.
//
// Every update interval i_u the agent:
//
//  1. samples the congestion window of every open connection (the `ss` step),
//  2. groups observations by destination (host /32 or a coarser prefix),
//  3. reduces each group to one value with a Combiner (the paper uses the
//     average; max and traffic-weighted variants are provided, matching the
//     paper's "Combination Algorithm" discussion),
//  4. folds the group value into per-destination history (EWMA with weight
//     alpha on the historical value, by default),
//  5. clamps the result to [CMin, CMax], and
//  6. programs a route to the destination with that initial window (the
//     `ip route ... initcwnd N` step), refreshing the entry's TTL.
//
// Entries that receive no observations for TTL expire: their route is
// removed, restoring the kernel default initial window — the conservative
// fallback the paper prescribes when Riptide has no information.
//
// The agent is backend-agnostic: internal/netsim + internal/kernel provide a
// simulated backend, internal/linux a real one built on ss(8) and ip(8).
//
// Each poll round runs as a three-stage pipeline (see tick.go) so backend
// I/O never blocks readers; RetryingRouteProgrammer (retry.go) adds bounded
// backoff and a conservative clear-the-route fallback around flaky route
// substrates, and a sampler circuit breaker degrades to expiry-only rounds
// when `ss` keeps failing.
package core

import (
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"riptide/internal/metrics"
)

// Defaults matching the paper's deployment (Sections III-B and IV-A).
const (
	DefaultUpdateInterval = 1 * time.Second  // i_u
	DefaultTTL            = 90 * time.Second // t
	DefaultAlpha          = 0.75             // history weight
	DefaultCMax           = 100              // best c_max per Figure 10
	DefaultCMin           = 10               // never below the kernel default
	DefaultPrefixBits     = 32               // per-host routes
)

// Adaptive prefix-aggregation defaults (Config.AggregateBits enables the
// feature; these back the remaining knobs).
const (
	// DefaultAggregateMinChildren is the number of converged child routes a
	// covering prefix needs before one broader route replaces them.
	DefaultAggregateMinChildren = 4
	// DefaultAggregateTolerance is the maximum spread, in segments, between
	// child windows considered "converged" on a shared value.
	DefaultAggregateTolerance = 2
)

// Circuit-breaker defaults: a production sampler (`ss` exec) that fails this
// many ticks in a row is almost certainly wedged; degrading to expiry-only
// ticks keeps the TTL safety net alive without hammering a broken substrate.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
)

// Common errors.
var (
	ErrClosed = errors.New("riptide/core: agent closed")
)

// Observation is one sampled connection: what one line of `ss -i` tells
// Riptide.
type Observation struct {
	// Dst is the remote address of the connection.
	Dst netip.Addr
	// Cwnd is the current congestion window in segments.
	Cwnd int
	// RTT is the connection's smoothed round-trip time (informational).
	RTT time.Duration
	// BytesAcked is cumulative payload acknowledged; the traffic-weighted
	// combiner uses it as its weight.
	BytesAcked int64

	// Loss telemetry, consumed by the safety governor (internal/guard).
	// Samplers that cannot observe a field leave it zero.

	// Retrans is the cumulative count of retransmitted segments (ss's
	// `retrans:<inflight>/<total>` total).
	Retrans int64
	// Lost is the number of segments currently marked lost (ss's `lost:N`).
	Lost int64
	// SegsOut is the cumulative count of segments sent, including
	// retransmissions (ss's `segs_out:N`). Retrans/SegsOut is the
	// connection's lifetime loss rate.
	SegsOut int64
	// LossEvents is the cumulative count of loss episodes (fast-retransmit
	// events). Real ss output does not expose this; the simulated kernel
	// does (tcpsim.Window.LossEvents).
	LossEvents uint64
}

// ConnectionSampler supplies the current set of open connections.
// Implementations: the simulated kernel's connection table, or the parsed
// output of `ss -tin`.
//
// SampleConnections appends the current observations to buf — which may be
// nil — and returns the resulting slice. The agent passes a pooled buffer it
// reuses across ticks, so a steady-state sampler performs no per-tick slice
// allocation once the buffer has grown to the working-set size. The caller
// owns the returned slice until its next SampleConnections call; samplers
// with a fixed observation set may ignore buf and return their own slice,
// but must then never mutate it between calls.
type ConnectionSampler interface {
	SampleConnections(buf []Observation) ([]Observation, error)
}

// RouteProgrammer installs and removes per-destination initcwnd overrides.
// Implementations: the simulated kernel route table, or `ip route` commands.
type RouteProgrammer interface {
	// SetInitCwnd installs (or replaces) a route for prefix with the
	// given initial window.
	SetInitCwnd(prefix netip.Prefix, cwnd int) error
	// ClearInitCwnd removes the override, restoring the default.
	ClearInitCwnd(prefix netip.Prefix) error
}

// RouteOp is one element of a batched route-programming request: install a
// window override (Clear false) or withdraw one (Clear true, Window
// ignored).
type RouteOp struct {
	Prefix netip.Prefix
	Window int
	Clear  bool
}

// BatchRouteProgrammer is an optional extension of RouteProgrammer for
// backends that can apply a whole route set in one operation — the simulated
// kernel under a single lock acquisition, or `ip -batch` with one exec for
// the entire tick. The agent prefers this path whenever the configured
// programmer implements it.
//
// ProgramRoutes applies every op, continuing past individual failures. It
// returns nil when the whole batch succeeded, otherwise a slice of exactly
// len(ops) per-op errors (nil entries mark successes). A backend that cannot
// attribute a batch failure to specific members may mark every member
// failed; decorators such as RetryingRouteProgrammer then re-drive the
// members individually to recover attribution.
type BatchRouteProgrammer interface {
	RouteProgrammer
	ProgramRoutes(ops []RouteOp) []error
}

// Prober is an optional extension of ConnectionSampler and RouteProgrammer:
// backends that can cheaply verify they will work on this host — right
// kernel interface present, sufficient privileges — implement it, and the
// daemon's backend auto-selection calls it at startup instead of discovering
// a broken backend on the first tick. Probe must not mutate host state.
type Prober interface {
	Probe() error
}

// ProbeBackend probes v when it implements Prober and reports the result;
// backends without a probe pass trivially.
func ProbeBackend(v any) error {
	if p, ok := v.(Prober); ok {
		return p.Probe()
	}
	return nil
}

// Combiner reduces one destination's observations to a single window value.
type Combiner interface {
	Name() string
	// Combine is called with at least one observation.
	Combine(obs []Observation) float64
}

// AverageCombiner is the paper's default: the mean of the observed windows.
type AverageCombiner struct{}

// Name implements Combiner.
func (AverageCombiner) Name() string { return "average" }

// Combine implements Combiner.
func (AverageCombiner) Combine(obs []Observation) float64 {
	sum := 0.0
	for _, o := range obs {
		sum += float64(o.Cwnd)
	}
	return sum / float64(len(obs))
}

// MaxCombiner is the paper's "more aggressive" variant: the maximum observed
// window, "the most the link is capable of handling".
type MaxCombiner struct{}

// Name implements Combiner.
func (MaxCombiner) Name() string { return "max" }

// Combine implements Combiner.
func (MaxCombiner) Combine(obs []Observation) float64 {
	best := 0.0
	for _, o := range obs {
		if v := float64(o.Cwnd); v > best {
			best = v
		}
	}
	return best
}

// TrafficWeightedCombiner is the paper's "more conservative" variant: each
// window weighted by the traffic the connection has carried, so lightly used
// connections (whose windows may just be untested initial values) count less.
type TrafficWeightedCombiner struct{}

// Name implements Combiner.
func (TrafficWeightedCombiner) Name() string { return "traffic-weighted" }

// Combine implements Combiner.
func (TrafficWeightedCombiner) Combine(obs []Observation) float64 {
	var weighted, total float64
	for _, o := range obs {
		w := float64(o.BytesAcked)
		if w <= 0 {
			w = 1 // connections with no traffic still count minimally
		}
		weighted += w * float64(o.Cwnd)
		total += w
	}
	return weighted / total
}

var (
	_ Combiner = AverageCombiner{}
	_ Combiner = MaxCombiner{}
	_ Combiner = TrafficWeightedCombiner{}
)

// HistoryPolicy folds each round's combined value into per-destination
// history. Implementations must be safe to call from a single goroutine.
type HistoryPolicy interface {
	Name() string
	// Update folds value into dst's history and returns the smoothed
	// result.
	Update(dst netip.Prefix, value float64) float64
	// Forget drops dst's history (called when an entry expires).
	Forget(dst netip.Prefix)
}

// EWMAHistory is the paper's default: next = alpha*prev + (1-alpha)*value.
type EWMAHistory struct {
	alpha float64
	state map[netip.Prefix]float64
}

// NewEWMAHistory returns an EWMAHistory with the given history weight.
func NewEWMAHistory(alpha float64) (*EWMAHistory, error) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("riptide/core: alpha %v out of range [0,1]", alpha)
	}
	return &EWMAHistory{alpha: alpha, state: make(map[netip.Prefix]float64)}, nil
}

// Name implements HistoryPolicy.
func (h *EWMAHistory) Name() string { return "ewma" }

// Update implements HistoryPolicy.
func (h *EWMAHistory) Update(dst netip.Prefix, value float64) float64 {
	prev, ok := h.state[dst]
	if !ok {
		h.state[dst] = value
		return value
	}
	next := h.alpha*prev + (1-h.alpha)*value
	h.state[dst] = next
	return next
}

// Forget implements HistoryPolicy.
func (h *EWMAHistory) Forget(dst netip.Prefix) { delete(h.state, dst) }

// NoHistory reacts instantly to each round's observations — the paper's
// "ignore history entirely, to more rapidly respond to changes" variant.
type NoHistory struct{}

// Name implements HistoryPolicy.
func (NoHistory) Name() string { return "none" }

// Update implements HistoryPolicy.
func (NoHistory) Update(_ netip.Prefix, value float64) float64 { return value }

// Forget implements HistoryPolicy.
func (NoHistory) Forget(netip.Prefix) {}

// WindowedHistory keeps the mean of the last N values — the paper's
// "longer-view historical analysis" variant for consistent links.
type WindowedHistory struct {
	n     int
	state map[netip.Prefix][]float64
}

// NewWindowedHistory returns a WindowedHistory over the last n values.
func NewWindowedHistory(n int) (*WindowedHistory, error) {
	if n < 1 {
		return nil, fmt.Errorf("riptide/core: window %d must be >= 1", n)
	}
	return &WindowedHistory{n: n, state: make(map[netip.Prefix][]float64)}, nil
}

// Name implements HistoryPolicy.
func (h *WindowedHistory) Name() string { return "windowed" }

// Update implements HistoryPolicy.
func (h *WindowedHistory) Update(dst netip.Prefix, value float64) float64 {
	vals := append(h.state[dst], value)
	if len(vals) > h.n {
		vals = vals[len(vals)-h.n:]
	}
	h.state[dst] = vals
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Forget implements HistoryPolicy.
func (h *WindowedHistory) Forget(dst netip.Prefix) { delete(h.state, dst) }

var (
	_ HistoryPolicy = (*EWMAHistory)(nil)
	_ HistoryPolicy = NoHistory{}
	_ HistoryPolicy = (*WindowedHistory)(nil)
)

// Config configures an Agent. Sampler and Routes are required; everything
// else has paper defaults.
type Config struct {
	// Sampler provides the observed table (the `ss` step).
	Sampler ConnectionSampler
	// Routes programs initcwnd overrides (the `ip route` step).
	Routes RouteProgrammer
	// Clock returns elapsed (monotonic) time; required. In simulation
	// this is the event engine's clock, in production time.Since(start).
	Clock func() time.Duration

	// UpdateInterval is i_u. Informational to the agent itself — the
	// caller drives Tick at this cadence — but validated and exposed.
	UpdateInterval time.Duration
	// TTL is t, the lifetime of a learned entry without fresh
	// observations.
	TTL time.Duration
	// Alpha is the EWMA history weight (ignored when History is set).
	Alpha float64
	// CMax / CMin clamp the programmed window.
	CMax, CMin int
	// PrefixBits sets destination granularity: 32 programs per-host
	// routes, smaller values aggregate whole prefixes (the paper's
	// "Destinations as Routes" discussion).
	PrefixBits int
	// Shards is the number of lock-striped shards the per-destination
	// state (entries + history) is split across, and the width of the
	// worker pool that fans out the ingest and plan stages of Tick. 0
	// means min(GOMAXPROCS, 16); 1 disables intra-tick parallelism. The
	// route plan is merged and sorted before programming, so the agent's
	// output is identical for every shard count.
	Shards int
	// FullRescan disables the delta-tick fast path: every destination is
	// re-keyed, re-grouped, and re-combined every round even when its
	// observations are byte-identical to the previous tick's. The agent's
	// output — route ops, entries, stats, error identity — is the same
	// either way (enforced by test); benchmarks use it as the baseline and
	// production agents leave it false.
	FullRescan bool

	// AggregateBits enables adaptive prefix aggregation when non-zero:
	// once AggregateMinChildren children of one /AggregateBits covering
	// prefix converge on windows within AggregateTolerance segments of
	// each other, the agent installs a single broader route at the most
	// conservative (minimum) child window and withdraws the children —
	// longest-prefix-match makes the swap safe in either order, and a
	// child whose learned window later diverges gets its specific route
	// back (it shadows the aggregate). AggregateBits must be coarser than
	// PrefixBits. Aggregate routes are never guard-reviewed themselves;
	// their children are, and a veto or quarantine of an absorbed child
	// forces the aggregate apart so the hold-back takes effect.
	AggregateBits int
	// AggregateMinChildren is the converged-children threshold; 0 means
	// DefaultAggregateMinChildren, values below 2 are rejected.
	AggregateMinChildren int
	// AggregateTolerance is the allowed child-window spread in segments;
	// 0 means DefaultAggregateTolerance, negative values are rejected.
	AggregateTolerance int

	// Combiner reduces a destination's observations; defaults to
	// AverageCombiner. It may be called from several plan workers at
	// once (on disjoint groups) and must not call back into the Agent.
	Combiner Combiner
	// History smooths across rounds. Nil means one private
	// EWMAHistory(Alpha) per state shard; a caller-supplied policy is
	// shared by every shard behind an internal lock, and must not call
	// back into the Agent.
	History HistoryPolicy
	// Advisor optionally damps programmed windows with system-level
	// knowledge, e.g. an imminent load-balancing shift (Section V). Nil
	// means no adjustment. Non-finite multipliers are rejected (treated
	// as 1) and counted in the riptide_advisor_rejects metric.
	Advisor Advisor
	// Guard is the closed-loop safety governor (internal/guard): it
	// observes per-destination loss outcomes and caps or vetoes route
	// programs. Nil disables governing.
	Guard Governor

	// BreakerThreshold is the number of consecutive sampler failures that
	// open the sampler circuit breaker, degrading subsequent ticks to
	// expiry-only passes. 0 means DefaultBreakerThreshold; a negative
	// value disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long (measured by Clock) the breaker stays
	// open before the next tick probes the sampler again. 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration

	// Metrics receives the agent's counters and latency histograms
	// (sample/program/tick durations). Nil means a private registry,
	// retrievable via Agent.Metrics; deployments share one registry
	// across the agent, the retry decorator, and the exec runner.
	Metrics *metrics.Registry
}

func (c *Config) applyDefaults() error {
	if c.Sampler == nil {
		return errors.New("riptide/core: Config.Sampler is required")
	}
	if c.Routes == nil {
		return errors.New("riptide/core: Config.Routes is required")
	}
	if c.Clock == nil {
		return errors.New("riptide/core: Config.Clock is required")
	}
	if c.UpdateInterval == 0 {
		c.UpdateInterval = DefaultUpdateInterval
	}
	if c.UpdateInterval < 0 {
		return fmt.Errorf("riptide/core: UpdateInterval %v must be positive", c.UpdateInterval)
	}
	if c.TTL == 0 {
		c.TTL = DefaultTTL
	}
	if c.TTL < 0 {
		return fmt.Errorf("riptide/core: TTL %v must be positive", c.TTL)
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("riptide/core: Alpha %v out of range [0,1]", c.Alpha)
	}
	if c.CMax == 0 {
		c.CMax = DefaultCMax
	}
	if c.CMin == 0 {
		c.CMin = DefaultCMin
	}
	if c.CMin < 1 || c.CMax < c.CMin {
		return fmt.Errorf("riptide/core: window bounds [%d,%d] invalid", c.CMin, c.CMax)
	}
	if c.PrefixBits == 0 {
		c.PrefixBits = DefaultPrefixBits
	}
	if c.PrefixBits < 1 || c.PrefixBits > 128 {
		return fmt.Errorf("riptide/core: PrefixBits %d out of range [1,128]", c.PrefixBits)
	}
	if c.Shards == 0 {
		c.Shards = defaultShards()
	}
	if c.Shards < 1 || c.Shards > maxShards {
		return fmt.Errorf("riptide/core: Shards %d out of range [1,%d]", c.Shards, maxShards)
	}
	if c.AggregateBits != 0 {
		if c.AggregateBits < 1 || c.AggregateBits > 128 {
			return fmt.Errorf("riptide/core: AggregateBits %d out of range [1,128]", c.AggregateBits)
		}
		if c.AggregateBits >= c.PrefixBits {
			return fmt.Errorf("riptide/core: AggregateBits %d must be coarser than PrefixBits %d", c.AggregateBits, c.PrefixBits)
		}
		if c.AggregateMinChildren == 0 {
			c.AggregateMinChildren = DefaultAggregateMinChildren
		}
		if c.AggregateMinChildren < 2 {
			return fmt.Errorf("riptide/core: AggregateMinChildren %d must be >= 2", c.AggregateMinChildren)
		}
		if c.AggregateTolerance == 0 {
			c.AggregateTolerance = DefaultAggregateTolerance
		}
		if c.AggregateTolerance < 0 {
			return fmt.Errorf("riptide/core: AggregateTolerance %d must be >= 0", c.AggregateTolerance)
		}
	}
	if c.Combiner == nil {
		c.Combiner = AverageCombiner{}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.BreakerCooldown < 0 {
		return fmt.Errorf("riptide/core: BreakerCooldown %v must be positive", c.BreakerCooldown)
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return nil
}

// entry is one learned destination.
type entry struct {
	window   int
	expires  time.Duration
	updated  time.Duration // when the entry was last refreshed or merged
	lastObs  int           // observations in the most recent round that refreshed it
	samples  uint64        // cumulative observations folded into the entry
	programs uint64
	// version is the agent table version at the entry's last commit (a
	// program or a fleet merge). Delta exports send only entries whose
	// version is newer than the peer's last-seen table version, so it is
	// stamped only when the exported content actually changes — TTL
	// refreshes and lazy sample credit do not touch it.
	version uint64
	// merged marks an entry seeded from a fleet snapshot that has not yet
	// been confirmed by a local observation; local observations always
	// override it.
	merged bool
	// mergedAge is the remote age the entry carried when it was merged.
	// Re-exporting adds it to the local age so gossip cannot launder a
	// stale window into a fresh-looking one by passing it between peers.
	mergedAge time.Duration
}

// Entry is a read-only snapshot of one learned destination.
type Entry struct {
	Prefix netip.Prefix `json:"prefix"`
	// Window is the initcwnd currently programmed for the destination.
	Window int `json:"window"`
	// ExpiresAt is the simulated/monotonic time the entry lapses.
	ExpiresAt time.Duration `json:"expiresAtNanos"`
	// Observations is the group size in the round that last refreshed it.
	Observations int `json:"observations"`
}

// Stats counts agent activity.
type Stats struct {
	Ticks          uint64 `json:"ticks"`
	Observations   uint64 `json:"observations"`
	RoutesSet      uint64 `json:"routesSet"`
	RoutesCleared  uint64 `json:"routesCleared"`
	EntriesExpired uint64 `json:"entriesExpired"`
	SampleErrors   uint64 `json:"sampleErrors"`
	RouteErrors    uint64 `json:"routeErrors"`
	// DegradedTicks counts expiry-only ticks run while the sampler
	// circuit breaker was open.
	DegradedTicks uint64 `json:"degradedTicks"`
	// BreakerOpens counts closed-to-open transitions of the sampler
	// circuit breaker.
	BreakerOpens uint64 `json:"breakerOpens"`
	// FleetMerged counts remote snapshot entries accepted by MergeSnapshot.
	FleetMerged uint64 `json:"fleetMerged"`
	// FleetSkippedLocal counts remote entries rejected because a local
	// entry already covered the prefix (local observations win).
	FleetSkippedLocal uint64 `json:"fleetSkippedLocal"`
	// FleetSkippedStale counts remote entries rejected as too old.
	FleetSkippedStale uint64 `json:"fleetSkippedStale"`
	// FleetSkippedQuarantined counts remote entries rejected because the
	// source quarantined the prefix or the local governor vetoed seeding.
	FleetSkippedQuarantined uint64 `json:"fleetSkippedQuarantined"`
	// GuardCapped counts route programs whose window the governor reduced.
	GuardCapped uint64 `json:"guardCapped"`
	// GuardVetoed counts route programs the governor skipped (canary
	// holdback plus quarantines).
	GuardVetoed uint64 `json:"guardVetoed"`
	// GuardQuarantined counts vetoes that were quarantine decisions
	// specifically (a subset of GuardVetoed).
	GuardQuarantined uint64 `json:"guardQuarantined"`
	// GuardCleared counts installed routes withdrawn because the governor
	// vetoed or quarantined their destination.
	GuardCleared uint64 `json:"guardCleared"`
	// CombinerRejects counts per-destination combined values dropped
	// because they were NaN or ±Inf (a custom Combiner gone wrong); the
	// destination is skipped for the round so the garbage never reaches
	// history state or a route program.
	CombinerRejects uint64 `json:"combinerRejects"`
	// AggregatesFormed counts covering routes installed after their
	// children converged (Config.AggregateBits).
	AggregatesFormed uint64 `json:"aggregatesFormed"`
	// AggregatesDissolved counts covering routes withdrawn because their
	// membership fell below the threshold or the guard forced them apart.
	AggregatesDissolved uint64 `json:"aggregatesDissolved"`
	// ChildrenAbsorbed counts specific child routes withdrawn in favour of
	// an installed covering aggregate.
	ChildrenAbsorbed uint64 `json:"childrenAbsorbed"`
	// AggregateSplits counts absorbed children that got their specific
	// route back because their learned window diverged from the aggregate.
	AggregateSplits uint64 `json:"aggregateSplits"`
}

// Agent runs Algorithm 1. Create with New, drive with Tick (one poll round
// per call), and Close to withdraw all programmed routes.
//
// Agent is safe for concurrent use. Tick and Close serialize with each
// other (including their backend I/O), but readers — Entries, Lookup,
// Stats — only synchronize on the in-memory state, so they return promptly
// even while a Tick is blocked inside a slow sampler or route programmer.
//
// Per-destination state is lock-striped across Config.Shards shards keyed by
// prefix hash; readers lock one shard at a time, so Entries and
// ExportSnapshot taken during a concurrent Tick are consistent per shard but
// not across shards (the same guarantee the TTL machinery already tolerates
// for fleet snapshots).
type Agent struct {
	cfg Config

	// tickMu serializes the mutating paths (Tick, Close, MergeSnapshot)
	// end to end, including backend I/O, so their plan/commit stages
	// cannot interleave. Each shard's mu guards that shard's entry map
	// and history; a.mu guards only the counters and the closed flag.
	// No shard or state lock is ever held across a Sampler or
	// RouteProgrammer call.
	tickMu sync.Mutex
	mu     sync.Mutex

	shards []*shard
	closed bool
	stats  Stats

	// tableVer is the monotone table version: bumped on every commit that
	// changes exported content (route programs, fleet merges, withdrawals)
	// and never on refresh-only paths. Atomic so exports can read it
	// without tickMu; it is read BEFORE an export scans the shards, so a
	// concurrent commit can only make the reported version conservative
	// (the entry is re-sent on the next delta, never lost).
	tableVer atomic.Uint64

	// digest is the incrementally maintained content digest: bucket hashes
	// XOR-patched at every commit that changes exported content, so
	// serving a gossip digest does zero table work (see digest.go).
	digest digestAccum

	// lastDeltaLen remembers the previous versioned delta's entry count —
	// the capacity hint for the next ExportDeltaAppend(since > 0) scan.
	lastDeltaLen atomic.Int64

	// Sampler circuit-breaker state; touched only under tickMu.
	sampleFailures int
	breakerOpen    bool
	breakerUntil   time.Duration

	// Per-tick scratch, reused across rounds to keep the steady-state
	// hot path allocation-free. Touched only under tickMu.
	obsBuf        []Observation
	buckets       [][]keyedObs // worker-major: buckets[w*len(shards)+s]
	ingestWorkers int
	tickSeq       uint64 // plan-stage first-touch stamp, bumped per tick (tickMu)
	planBuf       []programOp
	planKeys      []planKey
	planKeysTmp   []planKey
	clearBuf      []netip.Prefix
	opsBuf        []RouteOp

	// Delta-tick state (tickMu only): the previous round's observation
	// stream and its per-index sample cache. An observation that is
	// byte-identical at the same index as last round reuses its cached
	// route key, shard, and state pointer — no re-keying, no hashing, no
	// map lookup — and a whole stream that is literally the same slice as
	// last round's can skip the grouping passes outright (see planShard).
	// Unused when Config.FullRescan is set.
	delta     bool
	obsPrev   []Observation
	cachePrev []cachedSample
	cacheCur  []cachedSample
	havePrev  bool
	identTick bool // this round's stream is the same slice as last round's
	// quiescentOK gates the stable-round fast path (planShardQuiescent):
	// set when no per-destination visit can have side effects beyond the
	// entry itself — no Governor, no Advisor, no shared History policy, no
	// prefix aggregation — so skipping converged destinations is provably
	// unobservable.
	quiescentOK bool
	compareOK   []bool // per-worker stable-round verdicts, reused scratch

	mTick    *metrics.Histogram
	mSample  *metrics.Histogram
	mPlan    *metrics.Histogram
	mCommit  *metrics.Histogram
	mProgram *metrics.Histogram
}

// New constructs an Agent.
func New(cfg Config) (*Agent, error) {
	sharedHistory := cfg.History != nil
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:       cfg,
		delta:     !cfg.FullRescan,
		shards:    make([]*shard, cfg.Shards),
		buckets:   make([][]keyedObs, cfg.Shards*cfg.Shards),
		compareOK: make([]bool, cfg.Shards),
		mTick:     cfg.Metrics.Histogram("riptide_tick_duration"),
		mSample:   cfg.Metrics.Histogram("riptide_sample_duration"),
		mPlan:     cfg.Metrics.Histogram("riptide_plan_duration"),
		mCommit:   cfg.Metrics.Histogram("riptide_commit_duration"),
		mProgram:  cfg.Metrics.Histogram("riptide_program_duration"),
	}
	var shared *lockedHistory
	if sharedHistory {
		// A caller-supplied policy is one instance shared by every shard;
		// the wrapper serializes the shards' plan-stage updates. Updates
		// are keyed per prefix, so their cross-shard order cannot change
		// any smoothed value.
		shared = &lockedHistory{inner: cfg.History}
	}
	for i := range a.shards {
		sh := &shard{
			idx:        int32(i),
			states:     make(map[netip.Prefix]*destState),
			nextExpiry: maxDuration,
		}
		if sharedHistory {
			sh.history = shared
		}
		if cfg.AggregateBits > 0 {
			sh.aggs = make(map[netip.Prefix]*aggState)
		}
		a.shards[i] = sh
	}
	if !sharedHistory {
		// The default smoothing is the inline per-destination EWMA
		// (bit-identical to EWMAHistory); expose a detached instance
		// through Config() for introspection.
		h, err := NewEWMAHistory(cfg.Alpha)
		if err != nil {
			return nil, err
		}
		a.cfg.History = h
	}
	a.quiescentOK = a.delta && !sharedHistory && cfg.Guard == nil &&
		cfg.Advisor == nil && cfg.AggregateBits == 0
	return a, nil
}

// Shards returns the number of lock-striped state shards the agent runs.
func (a *Agent) Shards() int { return len(a.shards) }

// Config returns the agent's effective (defaulted) configuration.
func (a *Agent) Config() Config { return a.cfg }

// Metrics returns the agent's metrics registry (the one from Config, or the
// private registry created when none was supplied).
func (a *Agent) Metrics() *metrics.Registry { return a.cfg.Metrics }

// destKey maps a destination address to its route-granularity prefix.
func (a *Agent) destKey(dst netip.Addr) (netip.Prefix, error) {
	bits := a.cfg.PrefixBits
	if dst.Is4() && bits > 32 {
		bits = 32
	}
	p, err := dst.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("riptide/core: prefix %v/%d: %w", dst, bits, err)
	}
	return p, nil
}

// clamp bounds w to [CMin, CMax] and rounds to whole segments. Non-finite
// values (a custom Combiner or Advisor gone wrong) fall to CMin — the
// conservative floor — rather than reaching int(math.Round), whose result
// for NaN/±Inf is platform-dependent.
func (a *Agent) clamp(w float64) int {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return a.cfg.CMin
	}
	v := int(math.Round(w))
	if v < a.cfg.CMin {
		return a.cfg.CMin
	}
	if v > a.cfg.CMax {
		return a.cfg.CMax
	}
	return v
}

// Entries returns a snapshot of all learned destinations, sorted by prefix
// for determinism.
func (a *Agent) Entries() []Entry {
	out := make([]Entry, 0, a.entryCount())
	for _, sh := range a.shards {
		sh.mu.Lock()
		for p, st := range sh.states {
			if !st.installed {
				continue
			}
			// Converged entries carry lazily applied TTL/sample credit from
			// quiescent rounds; fold it in before exposing the fields.
			a.materializeLocked(sh, st)
			out = append(out, Entry{
				Prefix:       p,
				Window:       st.window,
				ExpiresAt:    st.expires,
				Observations: st.lastObs,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return lessPrefix(out[i].Prefix, out[j].Prefix)
	})
	return out
}

// entryCount sums the shards' entry counts (a sizing hint, not a consistent
// cross-shard snapshot).
func (a *Agent) entryCount() int {
	n := 0
	for _, sh := range a.shards {
		sh.mu.Lock()
		n += sh.installed
		sh.mu.Unlock()
	}
	return n
}

// lessPrefix orders prefixes by address then mask length, for deterministic
// snapshots and programming order.
func lessPrefix(a, b netip.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr().Less(b.Addr())
	}
	return a.Bits() < b.Bits()
}

// Lookup returns the currently programmed window for the destination, if
// Riptide has learned one. A destination whose specific route was absorbed
// into an installed covering aggregate resolves to the aggregate's window —
// the same answer the kernel's longest-prefix match would give.
func (a *Agent) Lookup(dst netip.Addr) (int, bool) {
	key, err := a.destKey(dst)
	if err != nil {
		return 0, false
	}
	sh := a.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.states[key]; ok && st.installed {
		return st.window, true
	}
	if parent, ok := a.aggKey(key); ok {
		if pst, ok := sh.states[parent]; ok && pst.installed {
			return pst.window, true
		}
	}
	return 0, false
}

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Close withdraws every programmed route and stops the agent. Further Ticks
// return ErrClosed. Close is idempotent; it returns the first withdrawal
// error but attempts all. Close waits for an in-flight Tick to finish, but
// readers stay unblocked while the withdrawals run.
func (a *Agent) Close() error {
	a.tickMu.Lock()
	defer a.tickMu.Unlock()

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()

	var targets []netip.Prefix
	for _, sh := range a.shards {
		sh.mu.Lock()
		for dst, st := range sh.states {
			if st.installed {
				targets = append(targets, dst)
			}
		}
		clear(sh.states)
		if sh.aggs != nil {
			clear(sh.aggs)
		}
		sh.dirtyAggs = sh.dirtyAggs[:0]
		sh.installed = 0
		sh.gen++
		sh.planValid = false
		sh.nextExpiry = maxDuration
		sh.touched = sh.touched[:0]
		sh.active = sh.active[:0]
		sh.creditPending = false
		sh.mu.Unlock()
	}
	a.digestReset()
	sort.Slice(targets, func(i, j int) bool { return lessPrefix(targets[i], targets[j]) })

	var firstErr error
	if bp, ok := a.cfg.Routes.(BatchRouteProgrammer); ok && len(targets) > 0 {
		ops := make([]RouteOp, len(targets))
		for i, dst := range targets {
			ops[i] = RouteOp{Prefix: dst, Clear: true}
		}
		errs := bp.ProgramRoutes(ops)
		for i, dst := range targets {
			var err error
			if errs != nil {
				err = errs[i]
			}
			if err != nil {
				a.countLocked(func(s *Stats) { s.RouteErrors++ })
				if firstErr == nil {
					firstErr = fmt.Errorf("clear initcwnd %v: %w", dst, err)
				}
				continue
			}
			a.countLocked(func(s *Stats) { s.RoutesCleared++ })
		}
		return firstErr
	}
	for _, dst := range targets {
		if err := a.cfg.Routes.ClearInitCwnd(dst); err != nil {
			a.countLocked(func(s *Stats) { s.RouteErrors++ })
			if firstErr == nil {
				firstErr = fmt.Errorf("clear initcwnd %v: %w", dst, err)
			}
			continue
		}
		a.countLocked(func(s *Stats) { s.RoutesCleared++ })
	}
	return firstErr
}

// countLocked applies a counter mutation under the state lock.
func (a *Agent) countLocked(f func(*Stats)) {
	a.mu.Lock()
	f(&a.stats)
	a.mu.Unlock()
}
