package core

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// fakeSampler returns canned observation rounds.
type fakeSampler struct {
	rounds [][]Observation
	i      int
	err    error
}

func (f *fakeSampler) SampleConnections(buf []Observation) ([]Observation, error) {
	if f.err != nil {
		return nil, f.err
	}
	if len(f.rounds) == 0 {
		return nil, nil
	}
	idx := f.i
	if idx >= len(f.rounds) {
		idx = len(f.rounds) - 1 // keep returning the final round
	}
	f.i++
	return f.rounds[idx], nil
}

// fakeRoutes records programmed windows.
type fakeRoutes struct {
	set     map[netip.Prefix]int
	setOps  int
	clrOps  int
	failSet error
	failClr error
}

func newFakeRoutes() *fakeRoutes {
	return &fakeRoutes{set: make(map[netip.Prefix]int)}
}

func (f *fakeRoutes) SetInitCwnd(p netip.Prefix, c int) error {
	if f.failSet != nil {
		return f.failSet
	}
	f.set[p] = c
	f.setOps++
	return nil
}

func (f *fakeRoutes) ClearInitCwnd(p netip.Prefix) error {
	if f.failClr != nil {
		return f.failClr
	}
	delete(f.set, p)
	f.clrOps++
	return nil
}

// fakeClock is a manually advanced monotonic clock.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration       { return c.now }
func (c *fakeClock) Advance(d time.Duration)  { c.now += d }
func (c *fakeClock) fn() func() time.Duration { return func() time.Duration { return c.now } }

func dst(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func pfx(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newAgent(t *testing.T, cfg Config) (*Agent, *fakeRoutes, *fakeClock) {
	t.Helper()
	clock := &fakeClock{}
	routes := newFakeRoutes()
	if cfg.Sampler == nil {
		cfg.Sampler = &fakeSampler{}
	}
	cfg.Routes = routes
	cfg.Clock = clock.fn()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, routes, clock
}

func TestNewValidation(t *testing.T) {
	s := &fakeSampler{}
	r := newFakeRoutes()
	clk := func() time.Duration { return 0 }
	bad := []Config{
		{Routes: r, Clock: clk},                                  // no sampler
		{Sampler: s, Clock: clk},                                 // no routes
		{Sampler: s, Routes: r},                                  // no clock
		{Sampler: s, Routes: r, Clock: clk, Alpha: 1.5},          // bad alpha
		{Sampler: s, Routes: r, Clock: clk, Alpha: -0.5},         // bad alpha
		{Sampler: s, Routes: r, Clock: clk, CMin: 50, CMax: 20},  // inverted bounds
		{Sampler: s, Routes: r, Clock: clk, CMin: -1, CMax: 100}, // negative min
		{Sampler: s, Routes: r, Clock: clk, PrefixBits: 200},     // bad bits
		{Sampler: s, Routes: r, Clock: clk, PrefixBits: -4},      // bad bits
		{Sampler: s, Routes: r, Clock: clk, TTL: -time.Second},   // bad ttl
		{Sampler: s, Routes: r, Clock: clk, UpdateInterval: -1},  // bad interval
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	a, _, _ := newAgent(t, Config{})
	cfg := a.Config()
	if cfg.UpdateInterval != time.Second {
		t.Errorf("i_u = %v, want 1s", cfg.UpdateInterval)
	}
	if cfg.TTL != 90*time.Second {
		t.Errorf("TTL = %v, want 90s (paper Section III-B)", cfg.TTL)
	}
	if cfg.CMax != 100 {
		t.Errorf("CMax = %d, want 100 (paper Figure 10)", cfg.CMax)
	}
	if cfg.CMin != 10 {
		t.Errorf("CMin = %d, want kernel default 10", cfg.CMin)
	}
	if cfg.Combiner.Name() != "average" {
		t.Errorf("combiner = %q, want average", cfg.Combiner.Name())
	}
	if cfg.History.Name() != "ewma" {
		t.Errorf("history = %q, want ewma", cfg.History.Name())
	}
}

func TestTickProgramsAverageWindow(t *testing.T) {
	d := dst(t, "10.0.0.127")
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: d, Cwnd: 60},
		{Dst: d, Cwnd: 100},
	}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	// Paper's Figure 7: average of observed windows -> initcwnd 80.
	if got := routes.set[pfx(t, "10.0.0.127/32")]; got != 80 {
		t.Errorf("programmed window = %d, want 80", got)
	}
	if w, ok := a.Lookup(d); !ok || w != 80 {
		t.Errorf("Lookup = %d,%v; want 80,true", w, ok)
	}
}

func TestTickGroupsByDestination(t *testing.T) {
	d1, d2 := dst(t, "10.0.0.1"), dst(t, "10.0.0.2")
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: d1, Cwnd: 20},
		{Dst: d1, Cwnd: 40},
		{Dst: d2, Cwnd: 90},
	}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 30 {
		t.Errorf("d1 window = %d, want 30", got)
	}
	if got := routes.set[pfx(t, "10.0.0.2/32")]; got != 90 {
		t.Errorf("d2 window = %d, want 90", got)
	}
	if len(a.Entries()) != 2 {
		t.Errorf("entries = %d, want 2", len(a.Entries()))
	}
}

func TestEWMASmoothing(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 100}},
		{{Dst: d, Cwnd: 20}},
	}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, Alpha: 0.75})
	_ = a.Tick() // history = 100
	_ = a.Tick() // 0.75*100 + 0.25*20 = 80
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 80 {
		t.Errorf("smoothed window = %d, want 80 (prevents plummeting)", got)
	}
}

func TestClampingToCMaxCMin(t *testing.T) {
	d := dst(t, "10.0.0.1")
	tests := []struct {
		name string
		cwnd int
		want int
	}{
		{"above cmax", 500, 100},
		{"below cmin", 3, 10},
		{"in range", 55, 55},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: tt.cwnd}}}}
			a, routes, _ := newAgent(t, Config{Sampler: sampler})
			if err := a.Tick(); err != nil {
				t.Fatal(err)
			}
			if got := routes.set[pfx(t, "10.0.0.1/32")]; got != tt.want {
				t.Errorf("window = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestTTLExpiryRemovesRoute(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 50}},
		{}, // connection closed: no observations from now on
	}}
	a, routes, clock := newAgent(t, Config{Sampler: sampler, TTL: 90 * time.Second})
	_ = a.Tick()
	if len(routes.set) != 1 {
		t.Fatalf("route not programmed")
	}
	// Sampler now returns empty rounds; advance within TTL.
	clock.Advance(60 * time.Second)
	_ = a.Tick()
	if len(routes.set) != 1 {
		t.Fatal("route removed before TTL")
	}
	// Past TTL: entry expires, route withdrawn, default restored.
	clock.Advance(31 * time.Second)
	_ = a.Tick()
	if len(routes.set) != 0 {
		t.Error("route not withdrawn after TTL")
	}
	if _, ok := a.Lookup(d); ok {
		t.Error("entry still present after TTL")
	}
	if s := a.Stats(); s.EntriesExpired != 1 || s.RoutesCleared != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTTLRefreshedByObservations(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, clock := newAgent(t, Config{Sampler: sampler, TTL: 90 * time.Second})
	for i := 0; i < 10; i++ {
		clock.Advance(60 * time.Second) // beyond TTL if not refreshed
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if len(routes.set) != 1 {
		t.Error("continuously observed destination expired")
	}
}

func TestHistoryForgottenOnExpiry(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 100}},
		{},
		{{Dst: d, Cwnd: 20}},
	}}
	a, routes, clock := newAgent(t, Config{Sampler: sampler, Alpha: 0.9, TTL: time.Second})
	_ = a.Tick() // learn 100
	clock.Advance(10 * time.Second)
	_ = a.Tick() // expires
	clock.Advance(10 * time.Second)
	_ = a.Tick() // relearn from scratch: should be 20, not 0.9*100+0.1*20=92
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 20 {
		t.Errorf("window after expiry+relearn = %d, want 20 (history must reset)", got)
	}
}

func TestPrefixGranularity(t *testing.T) {
	// Hosts in the same /24 aggregate into one route (paper: PoP prefixes).
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: dst(t, "10.1.2.3"), Cwnd: 40},
		{Dst: dst(t, "10.1.2.200"), Cwnd: 80},
		{Dst: dst(t, "10.9.9.9"), Cwnd: 30},
	}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, PrefixBits: 24})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(routes.set) != 2 {
		t.Fatalf("routes = %v, want 2 aggregated prefixes", routes.set)
	}
	if got := routes.set[pfx(t, "10.1.2.0/24")]; got != 60 {
		t.Errorf("aggregated window = %d, want 60 (mean of 40,80)", got)
	}
	if got := routes.set[pfx(t, "10.9.9.0/24")]; got != 30 {
		t.Errorf("second prefix window = %d, want 30", got)
	}
}

func TestRouteOnlyReprogrammedOnChange(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	for i := 0; i < 5; i++ {
		_ = a.Tick()
	}
	if routes.setOps != 1 {
		t.Errorf("setOps = %d, want 1 (stable value should not be reprogrammed)", routes.setOps)
	}
}

func TestMaxCombiner(t *testing.T) {
	obs := []Observation{{Cwnd: 10}, {Cwnd: 90}, {Cwnd: 40}}
	if got := (MaxCombiner{}).Combine(obs); got != 90 {
		t.Errorf("max = %v, want 90", got)
	}
}

func TestTrafficWeightedCombiner(t *testing.T) {
	obs := []Observation{
		{Cwnd: 100, BytesAcked: 9000},
		{Cwnd: 10, BytesAcked: 1000},
	}
	if got := (TrafficWeightedCombiner{}).Combine(obs); got != 91 {
		t.Errorf("weighted = %v, want 91", got)
	}
	// Zero-traffic connections get weight 1, not 0.
	obs = []Observation{{Cwnd: 50, BytesAcked: 0}}
	if got := (TrafficWeightedCombiner{}).Combine(obs); got != 50 {
		t.Errorf("zero-traffic weighted = %v, want 50", got)
	}
}

func TestAverageCombiner(t *testing.T) {
	obs := []Observation{{Cwnd: 1}, {Cwnd: 2}, {Cwnd: 3}}
	if got := (AverageCombiner{}).Combine(obs); got != 2 {
		t.Errorf("average = %v, want 2", got)
	}
}

func TestNoHistoryPolicy(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 100}},
		{{Dst: d, Cwnd: 20}},
	}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler, History: NoHistory{}})
	_ = a.Tick()
	_ = a.Tick()
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 20 {
		t.Errorf("no-history window = %d, want 20 (instant tracking)", got)
	}
}

func TestWindowedHistory(t *testing.T) {
	h, err := NewWindowedHistory(3)
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.0.0.1/32")
	vals := []float64{10, 20, 30, 40}
	var got float64
	for _, v := range vals {
		got = h.Update(p, v)
	}
	if got != 30 { // mean of last 3: (20+30+40)/3
		t.Errorf("windowed = %v, want 30", got)
	}
	h.Forget(p)
	if got = h.Update(p, 5); got != 5 {
		t.Errorf("after Forget = %v, want 5", got)
	}
	if _, err := NewWindowedHistory(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSamplerErrorCounted(t *testing.T) {
	sampler := &fakeSampler{err: errors.New("ss exploded")}
	a, _, _ := newAgent(t, Config{Sampler: sampler})
	if err := a.Tick(); err == nil {
		t.Error("sampler error swallowed")
	}
	if s := a.Stats(); s.SampleErrors != 1 {
		t.Errorf("SampleErrors = %d", s.SampleErrors)
	}
}

func TestSamplerErrorStillExpires(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, clock := newAgent(t, Config{Sampler: sampler, TTL: time.Second})
	_ = a.Tick()
	sampler.err = errors.New("ss exploded")
	clock.Advance(10 * time.Second)
	_ = a.Tick() // errors, but must still expire the stale entry
	if len(routes.set) != 0 {
		t.Error("stale route survived a failing sampler")
	}
}

func TestRouteErrorSurfaced(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 50}}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	routes.failSet = errors.New("ip route exploded")
	if err := a.Tick(); err == nil {
		t.Error("route error swallowed")
	}
	if s := a.Stats(); s.RouteErrors != 1 {
		t.Errorf("RouteErrors = %d", s.RouteErrors)
	}
	// The entry must not record a window that was never programmed.
	if w, ok := a.Lookup(d); ok && w != 0 {
		t.Errorf("Lookup after failed programming = %d,%v", w, ok)
	}
}

func TestInvalidObservationsSkipped(t *testing.T) {
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: netip.Addr{}, Cwnd: 50},       // invalid addr
		{Dst: dst(t, "10.0.0.1"), Cwnd: 0},  // no window
		{Dst: dst(t, "10.0.0.1"), Cwnd: -5}, // negative
	}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(routes.set) != 0 {
		t.Errorf("invalid observations programmed routes: %v", routes.set)
	}
}

func TestCloseWithdrawsRoutes(t *testing.T) {
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: dst(t, "10.0.0.1"), Cwnd: 50},
		{Dst: dst(t, "10.0.0.2"), Cwnd: 60},
	}}}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	_ = a.Tick()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if len(routes.set) != 0 {
		t.Errorf("routes remain after Close: %v", routes.set)
	}
	if err := a.Tick(); !errors.Is(err, ErrClosed) {
		t.Errorf("Tick after Close = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestStatsCounters(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{{
		{Dst: d, Cwnd: 50}, {Dst: d, Cwnd: 70},
	}}}
	a, _, _ := newAgent(t, Config{Sampler: sampler})
	_ = a.Tick()
	_ = a.Tick()
	s := a.Stats()
	if s.Ticks != 2 {
		t.Errorf("Ticks = %d", s.Ticks)
	}
	if s.Observations != 4 {
		t.Errorf("Observations = %d", s.Observations)
	}
}

// Property: the programmed window is always within [CMin, CMax], for any
// observations.
func TestProgrammedWindowBoundedProperty(t *testing.T) {
	f := func(cwnds []uint16, cminRaw, spanRaw uint8) bool {
		if len(cwnds) == 0 {
			return true
		}
		cmin := int(cminRaw%50) + 1
		cmax := cmin + int(spanRaw%100) + 1
		obs := make([]Observation, 0, len(cwnds))
		d := netip.MustParseAddr("10.0.0.1")
		for _, c := range cwnds {
			obs = append(obs, Observation{Dst: d, Cwnd: int(c)%2000 + 1})
		}
		routes := newFakeRoutes()
		a, err := New(Config{
			Sampler: &fakeSampler{rounds: [][]Observation{obs}},
			Routes:  routes,
			Clock:   func() time.Duration { return 0 },
			CMin:    cmin,
			CMax:    cmax,
		})
		if err != nil {
			return false
		}
		if err := a.Tick(); err != nil {
			return false
		}
		w := routes.set[netip.MustParsePrefix("10.0.0.1/32")]
		return w >= cmin && w <= cmax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with the average combiner and no clamping pressure, the
// programmed window never exceeds the max observed cwnd nor drops below the
// min observed cwnd (Riptide "never hops ahead of observations").
func TestNeverHopsAheadOfObservationsProperty(t *testing.T) {
	f := func(cwndsRaw []uint8) bool {
		if len(cwndsRaw) == 0 {
			return true
		}
		d := netip.MustParseAddr("10.0.0.1")
		obs := make([]Observation, 0, len(cwndsRaw))
		lo, hi := 1<<30, 0
		for _, c := range cwndsRaw {
			v := int(c)%500 + 1
			obs = append(obs, Observation{Dst: d, Cwnd: v})
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		routes := newFakeRoutes()
		a, err := New(Config{
			Sampler: &fakeSampler{rounds: [][]Observation{obs}},
			Routes:  routes,
			Clock:   func() time.Duration { return 0 },
			CMin:    1,
			CMax:    1 << 20,
		})
		if err != nil {
			return false
		}
		if err := a.Tick(); err != nil {
			return false
		}
		w := routes.set[netip.MustParsePrefix("10.0.0.1/32")]
		return w >= lo-1 && w <= hi+1 // +-1 for rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
