package core

import (
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for adaptive prefix aggregation: formation once enough children of
// a covering prefix converge, split-out when a child's window diverges,
// dissolution when the membership collapses, and the guard's power to force
// an aggregate apart.

// aggObs is one converged child observation under 10.0.0.0/24.
func aggObs(host byte, cwnd int) Observation {
	return Observation{
		Dst:  netip.AddrFrom4([4]byte{10, 0, 0, host}),
		Cwnd: cwnd,
		RTT:  50 * time.Millisecond,
	}
}

// newAggAgent builds a single-shard aggregation agent over a playback
// schedule: /32 routes, /24 covering prefixes, 4-child formation threshold,
// tolerance 2.
func newAggAgent(t *testing.T, rounds [][]Observation, gov Governor) (*Agent, *recordingRoutes, *atomic.Int64) {
	t.Helper()
	routes := &recordingRoutes{}
	var now atomic.Int64
	a, err := New(Config{
		Sampler:              &playbackSampler{rounds: rounds},
		Routes:               routes,
		Clock:                func() time.Duration { return time.Duration(now.Load()) },
		AggregateBits:        24,
		AggregateMinChildren: 4,
		AggregateTolerance:   2,
		Guard:                gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a, routes, &now
}

func tickN(t *testing.T, a *Agent, now *atomic.Int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		now.Add(int64(30 * time.Second))
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
}

func countOps(ops []string, substr string) int {
	n := 0
	for _, op := range ops {
		if strings.Contains(op, substr) {
			n++
		}
	}
	return n
}

func TestAggregateFormation(t *testing.T) {
	round := []Observation{aggObs(1, 32), aggObs(2, 32), aggObs(3, 32), aggObs(4, 32)}
	a, routes, now := newAggAgent(t, [][]Observation{round}, nil)

	// Tick 1 installs the four specific routes; the aggregate pass sees no
	// installed children yet (installation commits after planning).
	tickN(t, a, now, 1)
	if got := countOps(routes.recorded(), "set 10.0.0."); got != 4 {
		t.Fatalf("tick 1: %d child sets, want 4: %q", got, routes.recorded())
	}

	// Tick 2: four installed children at the same window → one covering
	// route at the most conservative window, children withdrawn after it.
	tickN(t, a, now, 1)
	ops := routes.recorded()[4:]
	want := []string{
		"set 10.0.0.0/24 32",
		"clear 10.0.0.1/32", "clear 10.0.0.2/32", "clear 10.0.0.3/32", "clear 10.0.0.4/32",
	}
	if len(ops) != len(want) {
		t.Fatalf("tick 2 ops = %q, want %q", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("tick 2 op %d = %q, want %q", i, ops[i], want[i])
		}
	}

	st := a.Stats()
	if st.AggregatesFormed != 1 || st.ChildrenAbsorbed != 4 {
		t.Errorf("formed=%d absorbed=%d, want 1/4", st.AggregatesFormed, st.ChildrenAbsorbed)
	}
	// The learned table is the single covering route; children resolve
	// through it.
	entries := a.Entries()
	if len(entries) != 1 || entries[0].Prefix != netip.MustParsePrefix("10.0.0.0/24") {
		t.Fatalf("entries = %+v, want only 10.0.0.0/24", entries)
	}
	if w, ok := a.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 3})); !ok || w != 32 {
		t.Errorf("absorbed child Lookup = %d,%v want 32,true", w, ok)
	}

	// Steady state: nothing further to program.
	before := len(routes.recorded())
	tickN(t, a, now, 2)
	if after := len(routes.recorded()); after != before {
		t.Errorf("steady aggregate emitted %d extra ops: %q", after-before, routes.recorded()[before:])
	}
}

func TestAggregateSplitOnDivergence(t *testing.T) {
	converged := []Observation{aggObs(1, 32), aggObs(2, 32), aggObs(3, 32), aggObs(4, 32)}
	diverged := []Observation{aggObs(1, 96), aggObs(2, 32), aggObs(3, 32), aggObs(4, 32)}
	a, routes, now := newAggAgent(t, [][]Observation{converged, converged, diverged}, nil)

	tickN(t, a, now, 2) // install + form
	base := len(routes.recorded())

	// Child .1's window moves to EWMA(32, 96) = 0.75·32 + 0.25·96 = 48,
	// far outside tolerance 2 of the covering window 32: its specific
	// route comes back and shadows the aggregate via LPM.
	tickN(t, a, now, 1)
	ops := routes.recorded()[base:]
	if len(ops) != 1 || ops[0] != "set 10.0.0.1/32 48" {
		t.Fatalf("split ops = %q, want [set 10.0.0.1/32 48]", ops)
	}
	st := a.Stats()
	if st.AggregateSplits != 1 {
		t.Errorf("AggregateSplits = %d, want 1", st.AggregateSplits)
	}
	if st.AggregatesDissolved != 0 {
		t.Errorf("AggregatesDissolved = %d, want 0 (three children remain absorbed)", st.AggregatesDissolved)
	}
	// Both the covering route and the split child are live.
	if w, ok := a.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 1})); !ok || w != 48 {
		t.Errorf("split child Lookup = %d,%v want 48,true", w, ok)
	}
	if w, ok := a.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 2})); !ok || w != 32 {
		t.Errorf("absorbed sibling Lookup = %d,%v want 32,true", w, ok)
	}
}

func TestAggregateDissolveWhenAllChildrenSplit(t *testing.T) {
	converged := []Observation{aggObs(1, 32), aggObs(2, 32), aggObs(3, 32), aggObs(4, 32)}
	scattered := []Observation{aggObs(1, 60), aggObs(2, 72), aggObs(3, 84), aggObs(4, 96)}
	rounds := [][]Observation{converged, converged, scattered, scattered, scattered}
	a, routes, now := newAggAgent(t, rounds, nil)

	tickN(t, a, now, 5)
	st := a.Stats()
	if st.AggregateSplits != 4 {
		t.Errorf("AggregateSplits = %d, want 4", st.AggregateSplits)
	}
	if st.AggregatesDissolved != 1 {
		t.Errorf("AggregatesDissolved = %d, want 1", st.AggregatesDissolved)
	}
	if st.AggregatesFormed != 1 {
		t.Errorf("AggregatesFormed = %d, want 1 (scattered windows must not re-form)", st.AggregatesFormed)
	}
	if got := countOps(routes.recorded(), "clear 10.0.0.0/24"); got != 1 {
		t.Errorf("covering-route clears = %d, want 1: %q", got, routes.recorded())
	}
	// The table is back to the four specific routes.
	for _, e := range a.Entries() {
		if e.Prefix.Bits() != 32 {
			t.Errorf("post-dissolve entry %v is not a /32", e.Prefix)
		}
	}
	if got := len(a.Entries()); got != 4 {
		t.Errorf("entries = %d, want 4", got)
	}
}

func TestGuardVetoOfAbsorbedChildForcesDissolve(t *testing.T) {
	round := []Observation{aggObs(1, 32), aggObs(2, 32), aggObs(3, 32), aggObs(4, 32)}
	vetoed := netip.MustParsePrefix("10.0.0.1/32")
	var vetoOn atomic.Bool
	gov := &stubGovernor{veto: func(p netip.Prefix) bool { return vetoOn.Load() && p == vetoed }}
	a, routes, now := newAggAgent(t, [][]Observation{round}, gov)

	tickN(t, a, now, 2) // install + form
	if st := a.Stats(); st.AggregatesFormed != 1 {
		t.Fatalf("AggregatesFormed = %d, want 1", st.AggregatesFormed)
	}
	base := len(routes.recorded())

	// The governor now holds back .1 — but its traffic is served by the
	// covering route, and a veto cannot carve a hole in a broader route:
	// the aggregate is forced apart, the surviving children get their
	// specific routes back, and .1 ends with no route at all.
	vetoOn.Store(true)
	tickN(t, a, now, 1)
	ops := routes.recorded()[base:]
	want := []string{
		"set 10.0.0.2/32 32", "set 10.0.0.3/32 32", "set 10.0.0.4/32 32",
		"clear 10.0.0.0/24",
	}
	if len(ops) != len(want) {
		t.Fatalf("force-dissolve ops = %q, want %q", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
	st := a.Stats()
	if st.GuardVetoed == 0 {
		t.Error("GuardVetoed not counted")
	}
	if st.AggregatesDissolved != 1 {
		t.Errorf("AggregatesDissolved = %d, want 1", st.AggregatesDissolved)
	}
	if _, ok := a.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 1})); ok {
		t.Error("vetoed child still resolves after force-dissolve")
	}
	if w, ok := a.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 2})); !ok || w != 32 {
		t.Errorf("surviving child Lookup = %d,%v want 32,true", w, ok)
	}
}

// TestAggregationKeepsRouteTableCompact is the convergence check behind the
// 1M-destination goal: when whole /24s of hosts learn the same window, the
// programmed table collapses to the covering prefixes.
func TestAggregationKeepsRouteTableCompact(t *testing.T) {
	const hostsPerPrefix, prefixes = 250, 4
	obs := make([]Observation, 0, hostsPerPrefix*prefixes)
	for p := 0; p < prefixes; p++ {
		for h := 1; h <= hostsPerPrefix; h++ {
			obs = append(obs, Observation{
				Dst:  netip.AddrFrom4([4]byte{10, 1, byte(p), byte(h)}),
				Cwnd: 40,
				RTT:  50 * time.Millisecond,
			})
		}
	}
	routes := &recordingRoutes{}
	var now atomic.Int64
	a, err := New(Config{
		Sampler:       &playbackSampler{rounds: [][]Observation{obs}},
		Routes:        routes,
		Clock:         func() time.Duration { return time.Duration(now.Load()) },
		AggregateBits: 24,
		Shards:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	tickN(t, a, &now, 3)

	dests := hostsPerPrefix * prefixes
	entries := a.Entries()
	if len(entries) != prefixes {
		t.Fatalf("installed routes = %d for %d destinations, want %d covering prefixes",
			len(entries), dests, prefixes)
	}
	for _, e := range entries {
		if e.Prefix.Bits() != 24 || e.Window != 40 {
			t.Errorf("entry %v window %d, want /24 at 40", e.Prefix, e.Window)
		}
	}
	st := a.Stats()
	if st.AggregatesFormed != prefixes || st.ChildrenAbsorbed != uint64(dests) {
		t.Errorf("formed=%d absorbed=%d, want %d/%d", st.AggregatesFormed, st.ChildrenAbsorbed, prefixes, dests)
	}
	// Every host still resolves through its covering route.
	if w, ok := a.Lookup(netip.AddrFrom4([4]byte{10, 1, 2, 17})); !ok || w != 40 {
		t.Errorf("Lookup = %d,%v want 40,true", w, ok)
	}
}

// TestAggregateConfigValidation pins the aggregation knob constraints.
func TestAggregateConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Sampler: &playbackSampler{rounds: [][]Observation{{}}},
			Routes:  &recordingRoutes{},
			Clock:   func() time.Duration { return 0 },
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bits out of range", func(c *Config) { c.AggregateBits = 129 }},
		{"bits not coarser than PrefixBits", func(c *Config) { c.AggregateBits = 32 }},
		{"min children below 2", func(c *Config) { c.AggregateBits = 24; c.AggregateMinChildren = 1 }},
		{"negative tolerance", func(c *Config) { c.AggregateBits = 24; c.AggregateTolerance = -1 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Defaults fill in when only the granularity is set.
	cfg := base()
	cfg.AggregateBits = 24
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("minimal aggregation config rejected: %v", err)
	}
	_ = a.Close()
	if fmt.Sprint(DefaultAggregateMinChildren, DefaultAggregateTolerance) != "4 2" {
		t.Errorf("defaults moved: %d %d", DefaultAggregateMinChildren, DefaultAggregateTolerance)
	}
}
