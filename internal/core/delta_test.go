package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the delta-driven tick: for any observation stream, the delta
// path (sample caching, clean-group reuse, identical-stream skip, next-expiry
// gating) must produce byte-identical route programs, entries, stats, and
// error text to a full rescan of the same stream.

// fixedSampler returns the same backing slice every round — the shape that
// triggers the delta tick's identical-stream fast path (perf.FixedSampler
// cannot be imported here without a cycle).
type fixedSampler []Observation

func (s fixedSampler) SampleConnections([]Observation) ([]Observation, error) {
	return s, nil
}

// modeResult captures everything the determinism contract covers.
type modeResult struct {
	ops      []string
	entries  []Entry
	stats    Stats
	tickErrs []string
}

// runModeSchedule drives one agent over the schedule with 30s tick spacing
// (so TTL expiry fires for destinations that churn out) and records its
// complete observable output.
func runModeSchedule(t *testing.T, shards int, fullRescan bool, aggBits int, rounds [][]Observation) modeResult {
	t.Helper()
	routes := &recordingBatchRoutes{}
	var now atomic.Int64
	cfg := Config{
		Sampler:    &playbackSampler{rounds: rounds},
		Routes:     routes,
		Clock:      func() time.Duration { return time.Duration(now.Load()) },
		PrefixBits: 24,
		Shards:     shards,
		FullRescan: fullRescan,
	}
	if aggBits > 0 {
		cfg.AggregateBits = aggBits
		cfg.AggregateMinChildren = 4
		cfg.AggregateTolerance = 2
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tickErrs []string
	for range rounds {
		now.Add(int64(30 * time.Second))
		if err := a.Tick(); err != nil {
			tickErrs = append(tickErrs, err.Error())
		}
	}
	return modeResult{ops: routes.recorded(), entries: a.Entries(), stats: a.Stats(), tickErrs: tickErrs}
}

// compareModes diffs the delta run against the full-rescan reference.
func compareModes(t *testing.T, label string, full, delta modeResult) {
	t.Helper()
	if !reflect.DeepEqual(delta.ops, full.ops) {
		t.Errorf("%s: route-op stream diverged (delta %d ops, full %d)", label, len(delta.ops), len(full.ops))
		for i := range delta.ops {
			if i < len(full.ops) && delta.ops[i] != full.ops[i] {
				t.Errorf("first divergence at op %d:\n  delta %s\n  full  %s", i, delta.ops[i], full.ops[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(delta.entries, full.entries) {
		t.Errorf("%s: learned table diverged (%d vs %d entries)", label, len(delta.entries), len(full.entries))
	}
	if delta.stats != full.stats {
		t.Errorf("%s: stats diverged:\n  delta %+v\n  full  %+v", label, delta.stats, full.stats)
	}
	if !reflect.DeepEqual(delta.tickErrs, full.tickErrs) {
		t.Errorf("%s: tick errors diverged:\n  delta %q\n  full  %q", label, delta.tickErrs, full.tickErrs)
	}
}

// TestDeltaTickMatchesFullRescan drives the standard determinism schedule —
// churn, drifting windows, invalid samples, expiry — through both modes at
// several shard counts and demands identical output.
func TestDeltaTickMatchesFullRescan(t *testing.T) {
	rounds := determinismRounds(6, 900)
	for _, shards := range []int{1, 2, 4, 8} {
		full := runModeSchedule(t, shards, true, 0, rounds)
		if len(full.ops) == 0 || len(full.entries) == 0 {
			t.Fatalf("full-rescan reference did nothing: %d ops, %d entries", len(full.ops), len(full.entries))
		}
		delta := runModeSchedule(t, shards, false, 0, rounds)
		compareModes(t, fmt.Sprintf("shards=%d", shards), full, delta)
	}
}

// randomRounds evolves a seeded random observation stream with persistence:
// most observations repeat byte-identically between rounds (the delta fast
// path), a slice mutate their windows, some destinations sit rounds out, and
// a few invalid samples ride along.
func randomRounds(seed int64, roundCount, n int) [][]Observation {
	r := rand.New(rand.NewSource(seed))
	cur := make([]Observation, n)
	for i := range cur {
		cur[i] = Observation{
			Dst:        netip.AddrFrom4([4]byte{10, byte(r.Intn(40)), byte(r.Intn(200)), byte(1 + r.Intn(4))}),
			Cwnd:       10 + r.Intn(90),
			RTT:        time.Duration(20+r.Intn(200)) * time.Millisecond,
			BytesAcked: int64(r.Intn(100)) * 1500,
		}
	}
	out := make([][]Observation, roundCount)
	for round := 0; round < roundCount; round++ {
		next := make([]Observation, 0, n)
		for i := range cur {
			switch {
			case r.Float64() < 0.05: // churn out this round
				continue
			case r.Float64() < 0.10: // window moves
				cur[i].Cwnd = 10 + r.Intn(90)
			case r.Float64() < 0.02: // invalid: must be skipped identically
				o := cur[i]
				o.Cwnd = 0
				next = append(next, o)
				continue
			}
			next = append(next, cur[i])
		}
		out[round] = next
	}
	return out
}

// TestDeltaTickMatchesFullRescanRandom repeats the equivalence check over
// randomized streams and seeds; run with -race to also exercise the cache
// backfill writes from parallel plan workers.
func TestDeltaTickMatchesFullRescanRandom(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rounds := randomRounds(seed, 8, 1200)
		for _, shards := range []int{1, 4} {
			full := runModeSchedule(t, shards, true, 0, rounds)
			delta := runModeSchedule(t, shards, false, 0, rounds)
			compareModes(t, fmt.Sprintf("seed=%d/shards=%d", seed, shards), full, delta)
		}
	}
}

// TestDeltaTickMatchesFullRescanWithAggregation runs the equivalence check
// with prefix aggregation enabled, so formation, absorption, splits, and
// dissolution all happen identically in both modes.
func TestDeltaTickMatchesFullRescanWithAggregation(t *testing.T) {
	rounds := determinismRounds(6, 900)
	for _, shards := range []int{1, 4} {
		full := runModeSchedule(t, shards, true, 16, rounds)
		delta := runModeSchedule(t, shards, false, 16, rounds)
		compareModes(t, fmt.Sprintf("agg/shards=%d", shards), full, delta)
	}
}

// quiescentRounds evolves a stream whose membership and positions stay
// fixed — the shape the stable-round fast path (planShardQuiescent) is
// built for. Most rounds mutate a few windows in place (some with large
// swings, some with one-segment nudges, so freeze horizons of every length
// occur); some rounds change nothing at all; a handful shuffle membership
// or inject an invalid sample, forcing a full rebuild in the middle of a
// quiescent run and exercising the lazy-credit settlement either side of it.
func quiescentRounds(seed int64, roundCount, n int) [][]Observation {
	r := rand.New(rand.NewSource(seed))
	cur := make([]Observation, n)
	for i := range cur {
		cur[i] = Observation{
			Dst:        netip.AddrFrom4([4]byte{10, byte(r.Intn(30)), byte(r.Intn(150)), byte(1 + r.Intn(4))}),
			Cwnd:       10 + r.Intn(90),
			RTT:        time.Duration(20+r.Intn(200)) * time.Millisecond,
			BytesAcked: int64(r.Intn(100)) * 1500,
		}
	}
	out := make([][]Observation, roundCount)
	for round := range out {
		switch {
		case round == 0:
			// Seed round: install the table.
		case round%11 == 0:
			// Membership change: drop the tail, add fresh destinations.
			k := 1 + r.Intn(3)
			cur = cur[:len(cur)-k]
			for j := 0; j < k; j++ {
				cur = append(cur, Observation{
					Dst:  netip.AddrFrom4([4]byte{10, 200, byte(round), byte(1 + j)}),
					Cwnd: 10 + r.Intn(90),
				})
			}
		case round%13 == 0:
			// An invalid sample surfaces at a stable position: the validity
			// change must divert to a full rebuild identically in both modes
			// (and the destination, no longer covered, must TTL out on
			// schedule unless a later mutation revives it).
			cur[r.Intn(len(cur))].Cwnd = 0
		case round%7 == 0:
			// Nothing moves: fully stable content on a fresh backing array.
		default:
			for j := 0; j < 1+n/25; j++ {
				i := r.Intn(len(cur))
				if r.Intn(2) == 0 {
					cur[i].Cwnd = 10 + r.Intn(90)
				} else if cur[i].Cwnd < 99 {
					cur[i].Cwnd++
				} else {
					cur[i].Cwnd = 10
				}
			}
		}
		out[round] = append([]Observation(nil), cur...)
	}
	return out
}

// TestQuiescentTickMatchesFullRescan pins the stable-round fast path to the
// full-rescan reference over positionally-stable streams: byte-identical
// route programs, entries (lazy TTL/sample credit included), stats, and
// errors across seeds and shard counts, through mid-run rebuilds, invalid
// injections, freeze/park drains and re-dirties.
func TestQuiescentTickMatchesFullRescan(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rounds := quiescentRounds(seed, 42, 600)
		for _, shards := range []int{1, 4, 8} {
			full := runModeSchedule(t, shards, true, 0, rounds)
			if len(full.ops) == 0 || len(full.entries) == 0 {
				t.Fatalf("full-rescan reference did nothing: %d ops, %d entries", len(full.ops), len(full.entries))
			}
			delta := runModeSchedule(t, shards, false, 0, rounds)
			compareModes(t, fmt.Sprintf("seed=%d/shards=%d", seed, shards), full, delta)
		}
	}
}

// TestStableRoundsEngageQuiescentPath guards the fast path against silent
// rot: a positionally-stable schedule must actually be planned by
// planShardQuiescent (observable as the shards' clean-round counters
// advancing), not fall back to full rebuilds — equivalence alone would hold
// either way.
func TestStableRoundsEngageQuiescentPath(t *testing.T) {
	base := make([]Observation, 400)
	for i := range base {
		base[i] = Observation{
			Dst:  netip.AddrFrom4([4]byte{10, 3, byte(i / 200), byte(1 + i%200)}),
			Cwnd: 10 + i%90,
			RTT:  50 * time.Millisecond,
		}
	}
	rounds := make([][]Observation, 9)
	for r := range rounds {
		rounds[r] = append([]Observation(nil), base...)
		if r > 0 {
			// In-place window mutations only: positions and membership fixed.
			for j := 0; j < 4; j++ {
				rounds[r][(r*37+j*101)%len(base)].Cwnd = 10 + (r*13+j)%90
			}
		}
	}
	var now atomic.Int64
	a, err := New(Config{
		Sampler: &playbackSampler{rounds: rounds},
		Routes:  nopRoutes{},
		Clock:   func() time.Duration { return time.Duration(now.Load()) },
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	for range rounds {
		now.Add(int64(time.Second))
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	var clean uint64
	for _, sh := range a.shards {
		clean += sh.cleanRounds
	}
	// Round 0 installs, round 1 is the first with a previous stream; all 8
	// subsequent rounds are positionally stable on every shard.
	if want := uint64(8 * len(a.shards)); clean != want {
		t.Fatalf("clean-round counters sum to %d, want %d: stable rounds fell back to full rebuilds", clean, want)
	}
}

// TestIdentStreamRefreshesTTL pins the identical-slice skip path: a sampler
// that returns its own backing slice every round lets the delta tick skip
// ingest and regrouping, but smoothing, TTL refresh, and guard review must
// still run — otherwise entries would expire mid-stream here.
func TestIdentStreamRefreshesTTL(t *testing.T) {
	obs := make([]Observation, 300) // past parallelThreshold
	for i := range obs {
		obs[i] = Observation{
			Dst:  netip.AddrFrom4([4]byte{10, 0, byte(i / 200), byte(1 + i%200)}),
			Cwnd: 40,
			RTT:  50 * time.Millisecond,
		}
	}
	routes := &recordingRoutes{}
	var now atomic.Int64
	a, err := New(Config{
		Sampler: fixedSampler(obs),
		Routes:  routes,
		Clock:   func() time.Duration { return time.Duration(now.Load()) },
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	// 10 ticks spaced at half the default 90s TTL: every destination is
	// re-observed each round, so nothing may expire.
	for i := 0; i < 10; i++ {
		now.Add(int64(45 * time.Second))
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(a.Entries()); got != 300 {
		t.Fatalf("entries = %d after identical-stream ticks, want 300", got)
	}
	st := a.Stats()
	if st.EntriesExpired != 0 {
		t.Errorf("EntriesExpired = %d, want 0", st.EntriesExpired)
	}
	// Steady state programs each route exactly once.
	if got := len(routes.recorded()); got != 300 {
		t.Errorf("route ops = %d, want 300 (one install per destination)", got)
	}
	if w, ok := a.Lookup(obs[0].Dst); !ok || w != 40 {
		t.Errorf("Lookup = %d,%v want 40,true", w, ok)
	}
}

// TestExpiryFiresUnderDelta verifies the next-expiry index does not sit on
// lapsed TTLs: a destination that stops being observed is withdrawn once its
// TTL passes, even though later rounds never mark its shard dirty.
func TestExpiryFiresUnderDelta(t *testing.T) {
	keep := Observation{Dst: netip.MustParseAddr("10.1.0.1"), Cwnd: 30, RTT: 40 * time.Millisecond}
	gone := Observation{Dst: netip.MustParseAddr("10.2.0.1"), Cwnd: 30, RTT: 40 * time.Millisecond}
	rounds := [][]Observation{
		{keep, gone},
		{keep},
		{keep},
		{keep},
	}
	routes := &recordingRoutes{}
	var now atomic.Int64
	a, err := New(Config{
		Sampler: &playbackSampler{rounds: rounds},
		Routes:  routes,
		Clock:   func() time.Duration { return time.Duration(now.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	for range rounds {
		now.Add(int64(30 * time.Second))
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// gone was last refreshed at t=30s; with the default 90s TTL it lapses
	// at t=120s, the final tick.
	if _, ok := a.Lookup(gone.Dst); ok {
		t.Error("expired destination still resolves")
	}
	if _, ok := a.Lookup(keep.Dst); !ok {
		t.Error("refreshed destination lost")
	}
	if st := a.Stats(); st.EntriesExpired != 1 {
		t.Errorf("EntriesExpired = %d, want 1", st.EntriesExpired)
	}
	want := fmt.Sprintf("clear %v", netip.PrefixFrom(gone.Dst, 32))
	found := false
	for _, op := range routes.recorded() {
		if op == want {
			found = true
		}
	}
	if !found {
		t.Errorf("ops %q missing %q", routes.recorded(), want)
	}
}

// BenchmarkExpirePassNoop is the regression guard for the next-expiry index:
// an expiry round where no TTL can have fired must cost O(shards), not a
// scan of every state under the shard locks.
func BenchmarkExpirePassNoop(b *testing.B) {
	const conns = 100_000
	obs := make([]Observation, conns)
	for i := range obs {
		obs[i] = Observation{
			Dst:  netip.AddrFrom4([4]byte{10, byte(i / 62500 % 250), byte(i / 250 % 250), byte(1 + i%250)}),
			Cwnd: 10 + i%90,
			RTT:  50 * time.Millisecond,
		}
	}
	a, err := New(Config{
		Sampler: fixedSampler(obs),
		Routes:  nopRoutes{},
		Clock:   func() time.Duration { return 0 },
		Shards:  8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Tick(); err != nil { // install the table
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clock is pinned at 0 and every TTL is 90s out: nothing can fire.
		if err := a.expirePass(time.Nanosecond); err != nil {
			b.Fatal(err)
		}
	}
}
