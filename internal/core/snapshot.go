package core

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"
)

// This file implements the agent side of fleet sharing (internal/fleet):
// exporting the learned table as a snapshot other agents can seed from, and
// merging a remote snapshot into this agent's state.
//
// Merge follows the same lock discipline as Tick: the plan is computed with
// no backend I/O under shard locks taken one at a time, routes are programmed
// outside any lock (batched when the backend supports it), and each accepted
// entry commits under its shard lock only after its route actually installed.
// tickMu serializes the whole merge against Tick and Close, so a merge can
// never interleave with a poll round's stages.
//
// The merge policy is deliberately conservative, per the paper's fallback
// philosophy: remote entries only seed prefixes this agent has not observed
// itself (fresh local observations always win), remote windows are
// discounted toward CMin as they age, and entries older than MaxAge are
// rejected outright. A merged entry keeps a shortened TTL — the remaining
// life it had at its source — so an unconfirmed hint expires instead of
// pinning a stale aggressive window.

// SnapshotEntry is one learned destination in transit between agents: the
// window, how much evidence backs it, and how stale it is. Ages are relative
// durations rather than timestamps so snapshots survive machines with
// different clocks (and the simulator's virtual time).
type SnapshotEntry struct {
	// Prefix is the destination the entry covers.
	Prefix netip.Prefix
	// Window is the initcwnd the source agent had programmed.
	Window int
	// Samples is the cumulative observation count behind the window.
	Samples uint64
	// Age is how long before export the entry was last refreshed (local
	// refresh time plus any age it carried when the source itself merged
	// it from a peer).
	Age time.Duration
	// Quarantined marks a destination the source's safety governor has
	// withdrawn after a loss regression. Quarantine markers carry no
	// window (Window is 0); peers must not warm-start the prefix.
	Quarantined bool
	// Version is the source agent's table version at the entry's last
	// commit. Peers that track the source's table version can ask for
	// "entries newer than V" (ExportDelta) instead of the whole table.
	// Quarantine markers are unversioned (Version 0): they ride along on
	// every delta because the governor's state is not part of the
	// versioned entry table.
	Version uint64
}

// MergePolicy tunes MergeSnapshot. The zero value gives TTL-derived
// defaults.
type MergePolicy struct {
	// MaxAge rejects remote entries older than this. 0 means the agent's
	// TTL: an entry that old would have expired locally anyway.
	MaxAge time.Duration
	// StalenessHalfLife controls the discount applied to remote windows:
	// the excess over CMin halves every half-life of age, so a stale hint
	// jump-starts conservatively rather than at its source's full
	// confidence. 0 means MaxAge/2; negative disables discounting.
	StalenessHalfLife time.Duration
	// MinSamples rejects remote entries backed by fewer observations.
	// 0 means 1.
	MinSamples uint64
}

func (p MergePolicy) withDefaults(ttl time.Duration) (MergePolicy, error) {
	if p.MaxAge == 0 {
		p.MaxAge = ttl
	}
	if p.MaxAge < 0 {
		return p, fmt.Errorf("riptide/core: MergePolicy.MaxAge %v must be positive", p.MaxAge)
	}
	if p.StalenessHalfLife == 0 {
		p.StalenessHalfLife = p.MaxAge / 2
	}
	if p.MinSamples == 0 {
		p.MinSamples = 1
	}
	return p, nil
}

// MergeStats reports what one MergeSnapshot call did.
type MergeStats struct {
	// Merged entries were accepted and their routes programmed.
	Merged int `json:"merged"`
	// SkippedLocal entries were rejected because this agent already has a
	// local entry for the prefix.
	SkippedLocal int `json:"skippedLocal"`
	// SkippedStale entries were rejected by MaxAge, MinSamples, an
	// invalid prefix/window, or no remaining TTL.
	SkippedStale int `json:"skippedStale"`
	// SkippedQuarantined entries were rejected because the remote source
	// quarantined the prefix, or because this agent's own governor vetoed
	// seeding it.
	SkippedQuarantined int `json:"skippedQuarantined"`
	// Errors counts accepted entries whose route programming failed; they
	// were not committed.
	Errors int `json:"errors"`
}

// TableVersion returns the agent's monotone table version: it advances on
// every commit that changes exported content (route programs, fleet merges,
// withdrawals) and holds still across refresh-only rounds. It is the `since`
// cursor peers pass to ExportDelta.
func (a *Agent) TableVersion() uint64 {
	return a.tableVer.Load()
}

// bumpVersion advances the table version and returns the new value.
func (a *Agent) bumpVersion() uint64 {
	return a.tableVer.Add(1)
}

// ExportSnapshot returns the agent's learned table as fleet snapshot
// entries, sorted by prefix. Ages are measured against the agent's clock; an
// entry that was itself merged from a peer exports its local age plus the
// age it carried when merged, so staleness accumulates across hops instead
// of resetting.
func (a *Agent) ExportSnapshot() []SnapshotEntry {
	entries, _ := a.ExportDelta(0)
	return entries
}

// ExportDelta returns the entries committed after table version `since`,
// plus every current quarantine marker (markers are unversioned and cheap),
// sorted by prefix, together with the table version the delta is current
// through. since 0 returns the full table. The version is read before the
// scan, so an entry committed mid-scan may be included yet not covered by
// the returned version — the peer simply re-receives it on its next delta;
// nothing is ever skipped.
func (a *Agent) ExportDelta(since uint64) ([]SnapshotEntry, uint64) {
	return a.ExportDeltaAppend(nil, since)
}

// ExportDeltaAppend is ExportDelta appending into buf (which may be nil),
// returning the extended slice. Servers that answer deltas in a loop pass a
// pooled buffer so steady-state serves do no append regrowth. The full-table
// path is sized by the live entry count; the since>0 path by the previous
// delta's length — deltas against a moving cursor are usually the same
// handful of changed entries round over round, so the last answer is the
// best available estimate of the next.
func (a *Agent) ExportDeltaAppend(buf []SnapshotEntry, since uint64) ([]SnapshotEntry, uint64) {
	version := a.tableVer.Load()
	now := a.cfg.Clock()
	capHint := a.entryCount()
	if since > 0 {
		if last := int(a.lastDeltaLen.Load()); last < capHint {
			capHint = last
		}
	}
	out := buf[:0]
	if cap(out) < capHint {
		out = make([]SnapshotEntry, 0, capHint)
	}
	for _, sh := range a.shards {
		sh.mu.Lock()
		for p, st := range sh.states {
			if !st.installed || st.version <= since {
				continue
			}
			a.materializeLocked(sh, st)
			age := now - st.updated
			if age < 0 {
				age = 0
			}
			out = append(out, SnapshotEntry{
				Prefix:  p,
				Window:  st.window,
				Samples: st.samples,
				Age:     age + st.mergedAge,
				Version: st.version,
			})
		}
		sh.mu.Unlock()
	}
	if a.cfg.Guard != nil {
		// Quarantine markers ride along so peers do not warm-start a
		// route this agent just withdrew for safety. A prefix with a
		// live entry is not marked — the governor only quarantines
		// after its route was cleared, so overlap means the quarantine
		// already recovered.
		for _, q := range a.cfg.Guard.Quarantines() {
			key := q.Prefix.Masked()
			sh := a.shardFor(key)
			sh.mu.Lock()
			st, ok := sh.states[key]
			exists := ok && st.installed
			sh.mu.Unlock()
			if exists {
				continue
			}
			age := q.Age
			if age < 0 {
				age = 0
			}
			out = append(out, SnapshotEntry{
				Prefix:      key,
				Age:         age,
				Quarantined: true,
			})
		}
	}
	if since > 0 {
		a.lastDeltaLen.Store(int64(len(out)))
	}
	sort.Slice(out, func(i, j int) bool { return lessPrefix(out[i].Prefix, out[j].Prefix) })
	return out, version
}

// discountWindow ages a remote window toward the agent's CMin: the excess
// over CMin halves every half-life. A non-positive half-life disables the
// discount.
func (a *Agent) discountWindow(window int, age, halfLife time.Duration) int {
	if halfLife <= 0 || age <= 0 {
		return a.clamp(float64(window))
	}
	excess := float64(window - a.cfg.CMin)
	if excess <= 0 {
		return a.clamp(float64(window))
	}
	decay := math.Exp2(-float64(age) / float64(halfLife))
	return a.clamp(float64(a.cfg.CMin) + excess*decay)
}

// mergeOp is one planned snapshot seed.
type mergeOp struct {
	dst     netip.Prefix
	window  int
	samples uint64
	age     time.Duration
	expires time.Duration
}

// MergeSnapshot folds remote snapshot entries into the agent: entries for
// unknown prefixes are staleness-discounted, programmed as routes, and
// recorded with the remaining TTL they had at their source. Prefixes this
// agent has local entries for are never touched — fresh local observations
// always win, no matter how confident the remote entry looks. The first
// route-programming error is returned after attempting all entries; entries
// whose programming failed are not committed.
func (a *Agent) MergeSnapshot(entries []SnapshotEntry, policy MergePolicy) (MergeStats, error) {
	var stats MergeStats
	policy, err := policy.withDefaults(a.cfg.TTL)
	if err != nil {
		return stats, err
	}

	a.tickMu.Lock()
	defer a.tickMu.Unlock()

	now := a.cfg.Clock()

	// Stage 1: plan. tickMu keeps Tick and Close out, so the per-shard
	// existence checks stay valid until the commit stage; no backend I/O
	// happens while any shard lock is held.
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return stats, ErrClosed
	}
	a.mu.Unlock()
	plan := make([]mergeOp, 0, len(entries))
	planned := make(map[netip.Prefix]int, len(entries)) // index into plan
	for _, se := range entries {
		if se.Quarantined {
			// The source withdrew this destination after a loss
			// regression; never warm-start it from a snapshot.
			stats.SkippedQuarantined++
			continue
		}
		if !se.Prefix.IsValid() || se.Window < 1 || se.Age < 0 {
			stats.SkippedStale++
			continue
		}
		if se.Age > policy.MaxAge || se.Samples < policy.MinSamples {
			stats.SkippedStale++
			continue
		}
		remaining := a.cfg.TTL - se.Age
		if remaining <= 0 {
			stats.SkippedStale++
			continue
		}
		key := se.Prefix.Masked()
		sh := a.shardFor(key)
		sh.mu.Lock()
		st, ok := sh.states[key]
		// An absorbed child counts as local: its covering aggregate route
		// serves it, and seeding a specific route under the aggregate would
		// shadow the window the child is still learning.
		exists := ok && (st.installed || st.absorbed)
		sh.mu.Unlock()
		if exists {
			stats.SkippedLocal++
			continue
		}
		window := a.discountWindow(se.Window, se.Age, policy.StalenessHalfLife)
		if a.cfg.Guard != nil {
			// A quarantined destination has no local entry (its route
			// was cleared), so the local-entry check above cannot
			// protect it; ask the governor before seeding.
			capped, action := a.cfg.Guard.Review(key, window)
			switch action {
			case GuardVeto, GuardQuarantine:
				stats.SkippedQuarantined++
				continue
			case GuardCap:
				if capped < window {
					window = capped
					if window < a.cfg.CMin {
						window = a.cfg.CMin
					}
				}
			}
		}
		op := mergeOp{
			dst:     key,
			window:  window,
			samples: se.Samples,
			age:     se.Age,
			expires: now + remaining,
		}
		if i, dup := planned[key]; dup {
			// Two remote entries for one prefix (e.g. a snapshot
			// merged from several peers): keep the fresher one.
			if op.age < plan[i].age {
				plan[i] = op
			}
			continue
		}
		planned[key] = len(plan)
		plan = append(plan, op)
	}

	sort.Slice(plan, func(i, j int) bool { return lessPrefix(plan[i].dst, plan[j].dst) })

	// Stage 2: program routes outside the locks — one batch call when the
	// backend supports it.
	bp, batch := a.cfg.Routes.(BatchRouteProgrammer)
	var batchErrs []error
	if batch && len(plan) > 0 {
		ops := make([]RouteOp, len(plan))
		for i, op := range plan {
			ops[i] = RouteOp{Prefix: op.dst, Window: op.window}
		}
		progStart := time.Now()
		batchErrs = bp.ProgramRoutes(ops)
		a.mProgram.Observe(time.Since(progStart))
	}
	var firstErr error
	for i, op := range plan {
		var err error
		if batch {
			if batchErrs != nil {
				err = batchErrs[i]
			}
		} else {
			progStart := time.Now()
			err = a.cfg.Routes.SetInitCwnd(op.dst, op.window)
			a.mProgram.Observe(time.Since(progStart))
		}
		if err != nil {
			stats.Errors++
			a.countLocked(func(s *Stats) { s.RouteErrors++ })
			if firstErr == nil {
				firstErr = fmt.Errorf("merge initcwnd %v=%d: %w", op.dst, op.window, err)
			}
			continue
		}

		// Stage 3: commit under the shard lock, only after the route
		// actually installed. tickMu is held, so no Tick interleaved
		// and the planned absence of a local entry still holds.
		sh := a.shardFor(op.dst)
		sh.mu.Lock()
		st := sh.states[op.dst]
		if st == nil {
			st = sh.newDestState()
			sh.states[op.dst] = st
			a.aggRegister(sh, op.dst, st)
		}
		wasInstalled := st.installed
		if !wasInstalled {
			st.installed = true
			sh.installed++
		}
		st.entry = entry{
			window:    op.window,
			expires:   op.expires,
			updated:   now,
			samples:   op.samples,
			programs:  1,
			merged:    true,
			mergedAge: op.age,
			version:   a.bumpVersion(),
		}
		if wasInstalled {
			a.digestRefold(op.dst, st)
		} else {
			a.digestFold(op.dst, st)
		}
		sh.noteExpiry(op.expires)
		// Seed history so the first local observation blends with the
		// fleet's estimate instead of starting from nothing.
		a.smooth(sh, st, op.dst, float64(op.window))
		sh.mu.Unlock()
		a.countLocked(func(s *Stats) { s.RoutesSet++ })
		stats.Merged++
	}

	a.countLocked(func(s *Stats) {
		s.FleetMerged += uint64(stats.Merged)
		s.FleetSkippedLocal += uint64(stats.SkippedLocal)
		s.FleetSkippedStale += uint64(stats.SkippedStale)
		s.FleetSkippedQuarantined += uint64(stats.SkippedQuarantined)
	})
	a.cfg.Metrics.Counter("riptide_fleet_merged").Add(uint64(stats.Merged))
	a.cfg.Metrics.Counter("riptide_fleet_skipped_local").Add(uint64(stats.SkippedLocal))
	a.cfg.Metrics.Counter("riptide_fleet_skipped_stale").Add(uint64(stats.SkippedStale))
	a.cfg.Metrics.Counter("riptide_fleet_skipped_quarantined").Add(uint64(stats.SkippedQuarantined))
	return stats, firstErr
}
