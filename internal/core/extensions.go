package core

import (
	"fmt"
	"math"
	"net/netip"
	"sync"
)

// This file implements the extension points sketched in the paper's
// Discussion section ("Additional Algorithms", Section V):
//
//   - Advisor: "if a cloud system were able to provide it with higher level
//     information (e.g., the need to perform immediate load balancing), it
//     could be used to set more conservative congestion windows to avoid
//     sudden crowding."
//   - TrendHistory: "a significant decrease in congestion window over a
//     short time may indicate the need to aggressively decrease the initial
//     windows, beyond what is happening to existing connections."

// Advisor supplies a system-level damping factor for a destination's
// programmed window. Implementations must be safe for concurrent use.
type Advisor interface {
	// Advise returns a multiplier in (0, 1] applied to the window before
	// clamping. Returning 1 means no adjustment.
	Advise(dst netip.Prefix) float64
}

// LoadBalanceAdvisor damps programmed windows for destinations that are
// about to receive shifted traffic, so the arrival of many new connections
// does not crowd the path (the paper's load-balancing example).
type LoadBalanceAdvisor struct {
	mu      sync.RWMutex
	damping map[netip.Prefix]float64
}

// NewLoadBalanceAdvisor returns an advisor with no active damping.
func NewLoadBalanceAdvisor() *LoadBalanceAdvisor {
	return &LoadBalanceAdvisor{damping: make(map[netip.Prefix]float64)}
}

// ExpectShift declares that the destination will soon absorb extra load;
// its windows are multiplied by factor (in (0, 1]) until ShiftComplete.
func (a *LoadBalanceAdvisor) ExpectShift(dst netip.Prefix, factor float64) error {
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		return fmt.Errorf("riptide/core: damping factor %v out of (0,1]", factor)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.damping[dst.Masked()] = factor
	return nil
}

// ShiftComplete removes damping for the destination.
func (a *LoadBalanceAdvisor) ShiftComplete(dst netip.Prefix) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.damping, dst.Masked())
}

// Advise implements Advisor: the most specific active damping entry
// covering the destination wins.
func (a *LoadBalanceAdvisor) Advise(dst netip.Prefix) float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	best := 1.0
	bestBits := -1
	for p, f := range a.damping {
		if p == dst.Masked() || (p.Bits() <= dst.Bits() && p.Contains(dst.Addr())) {
			if p.Bits() > bestBits {
				best = f
				bestBits = p.Bits()
			}
		}
	}
	return best
}

var _ Advisor = (*LoadBalanceAdvisor)(nil)

// TrendHistory wraps an EWMA with collapse detection: when the combined
// observation falls below CollapseFraction of the running average, the
// history snaps down to the new value immediately instead of gliding — the
// paper's "aggressively decrease the initial windows" variant. Recoveries
// still smooth through the EWMA, keeping the asymmetry conservative.
type TrendHistory struct {
	alpha            float64
	collapseFraction float64
	state            map[netip.Prefix]float64
	collapses        uint64
}

// NewTrendHistory builds a TrendHistory. alpha is the EWMA history weight;
// collapseFraction (in (0,1)) is the drop threshold that triggers a snap,
// e.g. 0.5 reacts to any halving of the observed windows.
func NewTrendHistory(alpha, collapseFraction float64) (*TrendHistory, error) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("riptide/core: alpha %v out of range [0,1]", alpha)
	}
	if collapseFraction <= 0 || collapseFraction >= 1 || math.IsNaN(collapseFraction) {
		return nil, fmt.Errorf("riptide/core: collapse fraction %v out of (0,1)", collapseFraction)
	}
	return &TrendHistory{
		alpha:            alpha,
		collapseFraction: collapseFraction,
		state:            make(map[netip.Prefix]float64),
	}, nil
}

// Name implements HistoryPolicy.
func (h *TrendHistory) Name() string { return "trend" }

// Update implements HistoryPolicy.
func (h *TrendHistory) Update(dst netip.Prefix, value float64) float64 {
	prev, ok := h.state[dst]
	if !ok {
		h.state[dst] = value
		return value
	}
	if value < prev*h.collapseFraction {
		// Collapse: follow the network down immediately.
		h.collapses++
		h.state[dst] = value
		return value
	}
	next := h.alpha*prev + (1-h.alpha)*value
	h.state[dst] = next
	return next
}

// Forget implements HistoryPolicy.
func (h *TrendHistory) Forget(dst netip.Prefix) { delete(h.state, dst) }

// Collapses reports how many snap-downs have fired, for observability.
func (h *TrendHistory) Collapses() uint64 { return h.collapses }

var _ HistoryPolicy = (*TrendHistory)(nil)
