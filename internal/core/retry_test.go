package core

import (
	"context"
	"errors"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"riptide/internal/metrics"
)

// flakyRoutes fails the first failN SetInitCwnd calls, then succeeds.
type flakyRoutes struct {
	*fakeRoutes
	failN   int
	setTry  int
	clrFail error
}

func newFlakyRoutes(failN int) *flakyRoutes {
	return &flakyRoutes{fakeRoutes: newFakeRoutes(), failN: failN}
}

func (f *flakyRoutes) SetInitCwnd(p netip.Prefix, c int) error {
	f.setTry++
	if f.setTry <= f.failN {
		return errors.New("transient EBUSY")
	}
	return f.fakeRoutes.SetInitCwnd(p, c)
}

func (f *flakyRoutes) ClearInitCwnd(p netip.Prefix) error {
	if f.clrFail != nil {
		return f.clrFail
	}
	return f.fakeRoutes.ClearInitCwnd(p)
}

// sleepRecorder captures backoff delays without sleeping.
type sleepRecorder struct{ delays []time.Duration }

func (s *sleepRecorder) fn() func(time.Duration) {
	return func(d time.Duration) { s.delays = append(s.delays, d) }
}

func mustRetry(t *testing.T, inner RouteProgrammer, policy RetryPolicy) *RetryingRouteProgrammer {
	t.Helper()
	r, err := NewRetryingRouteProgrammer(inner, policy)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRetryPolicyValidation(t *testing.T) {
	if _, err := NewRetryingRouteProgrammer(nil, RetryPolicy{}); err == nil {
		t.Error("nil inner accepted")
	}
	bad := []RetryPolicy{
		{MaxAttempts: -1},
		{BaseDelay: -time.Second},
		{BaseDelay: time.Second, MaxDelay: time.Millisecond},
	}
	for i, p := range bad {
		if _, err := NewRetryingRouteProgrammer(newFakeRoutes(), p); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	inner := newFlakyRoutes(2)
	rec := &sleepRecorder{}
	r := mustRetry(t, inner, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
		Sleep:       rec.fn(),
	})
	p := netip.MustParsePrefix("10.0.0.1/32")
	if err := r.SetInitCwnd(p, 40); err != nil {
		t.Fatal(err)
	}
	if inner.set[p] != 40 {
		t.Errorf("route not installed: %v", inner.set)
	}
	// Exponential backoff: 50ms then 100ms.
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(rec.delays) != 2 || rec.delays[0] != want[0] || rec.delays[1] != want[1] {
		t.Errorf("backoff delays = %v, want %v", rec.delays, want)
	}
	s := r.Stats()
	if s.Attempts != 3 || s.Retries != 2 || s.Exhausted != 0 || s.Fallbacks != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	inner := newFlakyRoutes(1 << 20) // never succeeds
	rec := &sleepRecorder{}
	r := mustRetry(t, inner, RetryPolicy{
		MaxAttempts:   6,
		BaseDelay:     100 * time.Millisecond,
		MaxDelay:      300 * time.Millisecond,
		FailureBudget: -1,
		Sleep:         rec.fn(),
	})
	_ = r.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 40)
	// 100, 200, then capped at 300 for the rest.
	want := []time.Duration{100, 200, 300, 300, 300}
	for i, w := range want {
		if rec.delays[i] != w*time.Millisecond {
			t.Fatalf("delays = %v, want %v (ms)", rec.delays, want)
		}
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	inner := newFlakyRoutes(1 << 20)
	r := mustRetry(t, inner, RetryPolicy{MaxAttempts: 2, FailureBudget: -1, Sleep: func(time.Duration) {}})
	err := r.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 40)
	if err == nil || errors.Is(err, ErrFallbackCleared) {
		t.Fatalf("err = %v, want plain exhaustion error", err)
	}
	if s := r.Stats(); s.Exhausted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFailureBudgetFallsBackToClear(t *testing.T) {
	inner := newFlakyRoutes(1 << 20)
	reg := metrics.NewRegistry()
	r := mustRetry(t, inner, RetryPolicy{
		MaxAttempts:   2,
		FailureBudget: 3,
		Sleep:         func(time.Duration) {},
		Metrics:       reg,
	})
	p := netip.MustParsePrefix("10.0.0.1/32")

	// Two exhausted calls stay plain errors; the third exhausts the
	// budget and falls back to clearing the route.
	for i := 0; i < 2; i++ {
		if err := r.SetInitCwnd(p, 40); err == nil || errors.Is(err, ErrFallbackCleared) {
			t.Fatalf("call %d: err = %v, want plain error", i, err)
		}
	}
	err := r.SetInitCwnd(p, 40)
	if !errors.Is(err, ErrFallbackCleared) {
		t.Fatalf("err = %v, want ErrFallbackCleared", err)
	}
	if inner.clrOps != 1 {
		t.Errorf("fallback clears = %d, want 1", inner.clrOps)
	}
	s := r.Stats()
	if s.Fallbacks != 1 || s.Exhausted != 3 {
		t.Errorf("stats = %+v", s)
	}
	if got := reg.Counter("riptide_route_fallbacks").Value(); got != 1 {
		t.Errorf("fallback metric = %d, want 1", got)
	}

	// The budget resets after the fallback: the next failure is 1 of 3
	// again, not an immediate re-fallback.
	if err := r.SetInitCwnd(p, 40); errors.Is(err, ErrFallbackCleared) {
		t.Error("budget did not reset after fallback")
	}
}

func TestFailureBudgetResetBySuccess(t *testing.T) {
	inner := newFlakyRoutes(0)
	r := mustRetry(t, inner, RetryPolicy{MaxAttempts: 1, FailureBudget: 2, Sleep: func(time.Duration) {}})
	p := netip.MustParsePrefix("10.0.0.1/32")

	inner.failN = 1 << 20 // fail from now on
	inner.setTry = 0
	if err := r.SetInitCwnd(p, 40); err == nil {
		t.Fatal("expected failure")
	}
	inner.failN = 0 // recover
	if err := r.SetInitCwnd(p, 40); err != nil {
		t.Fatal(err)
	}
	inner.failN = 1 << 20
	inner.setTry = 0
	// One more failure must NOT trip the budget (consecutive count reset).
	if err := r.SetInitCwnd(p, 40); errors.Is(err, ErrFallbackCleared) {
		t.Error("budget not reset by intervening success")
	}
}

func TestFallbackClearFailureIsNotFallbackCleared(t *testing.T) {
	inner := newFlakyRoutes(1 << 20)
	inner.clrFail = errors.New("clear also failed")
	r := mustRetry(t, inner, RetryPolicy{MaxAttempts: 1, FailureBudget: 1, Sleep: func(time.Duration) {}})
	err := r.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 40)
	if err == nil || errors.Is(err, ErrFallbackCleared) {
		t.Fatalf("err = %v; a failed fallback clear must not claim the route was cleared", err)
	}
	if s := r.Stats(); s.FallbackErrors != 1 || s.Fallbacks != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestClearRetriesAndSurfacesError(t *testing.T) {
	inner := newFakeRoutes()
	inner.failClr = errors.New("EBUSY")
	rec := &sleepRecorder{}
	r := mustRetry(t, inner, RetryPolicy{MaxAttempts: 3, Sleep: rec.fn()})
	if err := r.ClearInitCwnd(netip.MustParsePrefix("10.0.0.1/32")); err == nil {
		t.Fatal("clear error swallowed")
	}
	if len(rec.delays) != 2 {
		t.Errorf("clear retried %d times, want 2", len(rec.delays))
	}
}

// --- Context cancellation --------------------------------------------------

func TestRetryContextCancelledSkipsAttempts(t *testing.T) {
	inner := newFlakyRoutes(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := mustRetry(t, inner, RetryPolicy{MaxAttempts: 3, FailureBudget: 1, Context: ctx})

	err := r.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if inner.setTry != 0 {
		t.Errorf("inner called %d times after cancellation, want 0", inner.setTry)
	}
	// Abandonment must not charge the failure budget: no fallback clear,
	// no exhaustion.
	if errors.Is(err, ErrFallbackCleared) || inner.clrOps != 0 {
		t.Errorf("cancelled call triggered fallback (err=%v, clears=%d)", err, inner.clrOps)
	}
	if s := r.Stats(); s.Attempts != 0 || s.Exhausted != 0 || s.Fallbacks != 0 {
		t.Errorf("stats = %+v, want all zero", s)
	}
}

func TestRetryContextCancelInterruptsBackoff(t *testing.T) {
	inner := newFlakyRoutes(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// An hour-long backoff: only cancellation can end this call promptly.
	r := mustRetry(t, inner, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Hour,
		MaxDelay:    time.Hour,
		Context:     ctx,
	})

	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() { done <- r.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 40) }()
	time.Sleep(20 * time.Millisecond) // let the call reach the backoff wait
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SetInitCwnd did not return promptly after cancellation")
	}
	if inner.setTry != 1 {
		t.Errorf("inner called %d times, want exactly 1 (no post-cancel attempts)", inner.setTry)
	}

	// No goroutine may outlive the call (the timer wait runs inline).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d after cancelled retry", before, after)
	}
}

func TestRetryContextDeadlineBypassesBudget(t *testing.T) {
	inner := newFlakyRoutes(1 << 20)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(30*time.Millisecond))
	defer cancel()
	r := mustRetry(t, inner, RetryPolicy{
		MaxAttempts:   3,
		BaseDelay:     10 * time.Second,
		MaxDelay:      10 * time.Second,
		FailureBudget: 1,
		Context:       ctx,
	})
	err := r.SetInitCwnd(netip.MustParsePrefix("10.0.0.1/32"), 40)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrFallbackCleared) || inner.clrOps != 0 {
		t.Errorf("deadline expiry triggered fallback (err=%v, clears=%d)", err, inner.clrOps)
	}
}

func TestClearRunsOnceAfterCancel(t *testing.T) {
	inner := newFakeRoutes()
	p := netip.MustParsePrefix("10.0.0.1/32")
	if err := inner.SetInitCwnd(p, 40); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := mustRetry(t, inner, RetryPolicy{MaxAttempts: 3, Context: ctx})

	// Shutdown withdraws routes after the signal context is cancelled; the
	// clear must still reach the backend once.
	if err := r.ClearInitCwnd(p); err != nil {
		t.Fatalf("post-cancel clear failed: %v", err)
	}
	if len(inner.set) != 0 {
		t.Errorf("route survived a post-cancel clear: %v", inner.set)
	}

	// But a failing clear gets no retries once cancelled: one attempt, then
	// the context error surfaces.
	inner.failClr = errors.New("EBUSY")
	before := r.Stats()
	err := r.ClearInitCwnd(p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := r.Stats()
	if got := after.Attempts - before.Attempts; got != 1 {
		t.Errorf("clear attempted %d times post-cancel, want exactly 1", got)
	}
	if after.Retries != before.Retries {
		t.Errorf("clear retried post-cancel (retries %d -> %d)", before.Retries, after.Retries)
	}
}

// --- Agent + decorator integration ----------------------------------------

func TestAgentDropsEntryOnFallbackCleared(t *testing.T) {
	d := dst(t, "10.0.0.1")
	inner := newFakeRoutes()
	retry := mustRetry(t, inner, RetryPolicy{MaxAttempts: 1, FailureBudget: 1, Sleep: func(time.Duration) {}})
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 50}},
		{{Dst: d, Cwnd: 90}},
	}}
	clock := &fakeClock{}
	a, err := New(Config{
		Sampler: sampler,
		Routes:  retry,
		Clock:   clock.fn(),
		History: NoHistory{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if w, ok := a.Lookup(d); !ok || w != 50 {
		t.Fatalf("Lookup = %d,%v", w, ok)
	}

	// The substrate breaks; the reprogram to 90 exhausts the budget, the
	// decorator clears the route, and the agent must drop its entry.
	inner.failSet = errors.New("substrate broke")
	if err := a.Tick(); err == nil {
		t.Fatal("fallback error swallowed")
	}
	if _, ok := a.Lookup(d); ok {
		t.Error("entry survived a fallback clear; Lookup must report kernel default")
	}
	if len(inner.set) != 0 {
		t.Errorf("route still installed after fallback: %v", inner.set)
	}
	s := a.Stats()
	if s.RouteErrors != 1 || s.RoutesCleared != 1 {
		t.Errorf("stats = %+v", s)
	}

	// Recovery: the next round re-learns the destination from scratch.
	inner.failSet = nil
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if w, ok := a.Lookup(d); !ok || w != 90 {
		t.Errorf("post-recovery Lookup = %d,%v; want 90,true", w, ok)
	}
}

// batchInner wraps fakeRoutes with a scripted batch surface: members listed
// in batchFail are reported failed by the batch (like an unattributable
// `ip -batch` exit), members in setFail also fail the individual re-drive.
type batchInner struct {
	*fakeRoutes
	batchCalls int
	batchFail  map[netip.Prefix]bool
	setFail    map[netip.Prefix]bool
}

func newBatchInner() *batchInner {
	return &batchInner{
		fakeRoutes: newFakeRoutes(),
		batchFail:  make(map[netip.Prefix]bool),
		setFail:    make(map[netip.Prefix]bool),
	}
}

func (b *batchInner) SetInitCwnd(p netip.Prefix, c int) error {
	if b.setFail[p] {
		return errors.New("persistent ENETUNREACH")
	}
	return b.fakeRoutes.SetInitCwnd(p, c)
}

func (b *batchInner) ProgramRoutes(ops []RouteOp) []error {
	b.batchCalls++
	var errs []error
	for i, op := range ops {
		var err error
		switch {
		case b.batchFail[op.Prefix]:
			err = errors.New("batch member failed")
		case op.Clear:
			err = b.fakeRoutes.ClearInitCwnd(op.Prefix)
		default:
			err = b.fakeRoutes.SetInitCwnd(op.Prefix, op.Window)
		}
		if err != nil {
			if errs == nil {
				errs = make([]error, len(ops))
			}
			errs[i] = err
		}
	}
	return errs
}

func TestProgramRoutesBatchAllSuccess(t *testing.T) {
	inner := newBatchInner()
	r := mustRetry(t, inner, RetryPolicy{Sleep: func(time.Duration) {}})
	ops := []RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Window: 20},
		{Prefix: netip.MustParsePrefix("10.0.2.0/24"), Clear: true},
	}
	if errs := r.ProgramRoutes(ops); errs != nil {
		t.Fatalf("ProgramRoutes = %v, want nil", errs)
	}
	if inner.batchCalls != 1 {
		t.Errorf("batchCalls = %d, want 1 (whole set through one batch)", inner.batchCalls)
	}
	if inner.set[ops[0].Prefix] != 40 || inner.set[ops[1].Prefix] != 20 {
		t.Errorf("installed windows = %v", inner.set)
	}
	st := r.Stats()
	if st.Batches != 1 || st.Attempts != 1 || st.BatchFallbacks != 0 || st.Retries != 0 {
		t.Errorf("stats = %+v, want Batches=1 Attempts=1 no fallbacks", st)
	}
}

func TestProgramRoutesRedrivesFailedMembersIndividually(t *testing.T) {
	inner := newBatchInner()
	bad := netip.MustParsePrefix("10.0.1.0/24")
	inner.batchFail[bad] = true // batch rejects it; individual path recovers
	r := mustRetry(t, inner, RetryPolicy{Sleep: func(time.Duration) {}})
	ops := []RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: bad, Window: 28},
	}
	if errs := r.ProgramRoutes(ops); errs != nil {
		t.Fatalf("ProgramRoutes = %v, want nil after individual recovery", errs)
	}
	if inner.set[bad] != 28 {
		t.Errorf("re-driven member not installed: %v", inner.set)
	}
	st := r.Stats()
	if st.Batches != 1 || st.BatchFallbacks != 1 {
		t.Errorf("stats = %+v, want Batches=1 BatchFallbacks=1", st)
	}
	if st.Attempts != 2 { // one batch attempt + one individual attempt
		t.Errorf("Attempts = %d, want 2", st.Attempts)
	}
}

func TestProgramRoutesFallbackClearsPersistentMember(t *testing.T) {
	inner := newBatchInner()
	bad := netip.MustParsePrefix("10.0.1.0/24")
	inner.batchFail[bad] = true
	inner.setFail[bad] = true // individual re-drive fails too
	r := mustRetry(t, inner, RetryPolicy{
		MaxAttempts:   2,
		FailureBudget: 1,
		Sleep:         func(time.Duration) {},
	})
	ops := []RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: bad, Window: 28},
	}
	errs := r.ProgramRoutes(ops)
	if errs == nil {
		t.Fatal("ProgramRoutes = nil, want per-op errors")
	}
	if errs[0] != nil {
		t.Errorf("healthy member errored: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrFallbackCleared) {
		t.Errorf("errs[1] = %v, want ErrFallbackCleared", errs[1])
	}
	if _, ok := inner.set[bad]; ok {
		t.Error("fallback did not clear the failing destination")
	}
	st := r.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}
}

func TestProgramRoutesWithoutInnerBatchPath(t *testing.T) {
	inner := newFakeRoutes() // plain RouteProgrammer, no ProgramRoutes
	r := mustRetry(t, inner, RetryPolicy{Sleep: func(time.Duration) {}})
	ops := []RouteOp{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Window: 40},
		{Prefix: netip.MustParsePrefix("10.0.1.0/24"), Clear: true},
	}
	if errs := r.ProgramRoutes(ops); errs != nil {
		t.Fatalf("ProgramRoutes = %v, want nil", errs)
	}
	if inner.setOps != 1 || inner.clrOps != 1 {
		t.Errorf("setOps=%d clrOps=%d, want each op driven individually", inner.setOps, inner.clrOps)
	}
	st := r.Stats()
	if st.Batches != 1 || st.BatchFallbacks != 0 {
		t.Errorf("stats = %+v, want Batches=1 and no batch fallbacks", st)
	}
}

func TestProgramRoutesEmptySet(t *testing.T) {
	r := mustRetry(t, newFakeRoutes(), RetryPolicy{Sleep: func(time.Duration) {}})
	if errs := r.ProgramRoutes(nil); errs != nil {
		t.Fatalf("ProgramRoutes(nil) = %v, want nil", errs)
	}
	if st := r.Stats(); st.Batches != 0 {
		t.Errorf("Batches = %d, want 0 for empty set", st.Batches)
	}
}
