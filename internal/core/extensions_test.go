package core

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestLoadBalanceAdvisorValidation(t *testing.T) {
	a := NewLoadBalanceAdvisor()
	p := netip.MustParsePrefix("10.0.0.0/24")
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := a.ExpectShift(p, bad); err == nil {
			t.Errorf("factor %v accepted", bad)
		}
	}
	if err := a.ExpectShift(p, 1); err != nil {
		t.Errorf("factor 1 rejected: %v", err)
	}
}

func TestLoadBalanceAdvisorDamping(t *testing.T) {
	a := NewLoadBalanceAdvisor()
	host := netip.MustParsePrefix("10.0.0.5/32")
	if got := a.Advise(host); got != 1 {
		t.Errorf("Advise with no shifts = %v, want 1", got)
	}
	if err := a.ExpectShift(netip.MustParsePrefix("10.0.0.0/24"), 0.5); err != nil {
		t.Fatal(err)
	}
	if got := a.Advise(host); got != 0.5 {
		t.Errorf("Advise under /24 shift = %v, want 0.5", got)
	}
	// More specific entries win.
	if err := a.ExpectShift(host, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := a.Advise(host); got != 0.25 {
		t.Errorf("Advise with /32 shift = %v, want 0.25", got)
	}
	a.ShiftComplete(host)
	if got := a.Advise(host); got != 0.5 {
		t.Errorf("Advise after /32 complete = %v, want 0.5", got)
	}
	a.ShiftComplete(netip.MustParsePrefix("10.0.0.0/24"))
	if got := a.Advise(host); got != 1 {
		t.Errorf("Advise after all complete = %v, want 1", got)
	}
}

func TestLoadBalanceAdvisorUnrelatedPrefix(t *testing.T) {
	a := NewLoadBalanceAdvisor()
	_ = a.ExpectShift(netip.MustParsePrefix("10.0.0.0/24"), 0.5)
	if got := a.Advise(netip.MustParsePrefix("192.168.0.1/32")); got != 1 {
		t.Errorf("Advise for unrelated prefix = %v, want 1", got)
	}
}

func TestAgentWithAdvisorDampsWindows(t *testing.T) {
	d := dst(t, "10.0.0.127")
	sampler := &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: 80}}}}
	advisor := NewLoadBalanceAdvisor()
	clock := &fakeClock{}
	routes := newFakeRoutes()
	a, err := New(Config{
		Sampler: sampler,
		Routes:  routes,
		Clock:   clock.fn(),
		Advisor: advisor,
		CMin:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without a shift the full window programs.
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	key := pfx(t, "10.0.0.127/32")
	if routes.set[key] != 80 {
		t.Fatalf("window = %d, want 80", routes.set[key])
	}
	// Declare an imminent shift: next round damps to half.
	if err := advisor.ExpectShift(key, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if routes.set[key] != 40 {
		t.Errorf("damped window = %d, want 40", routes.set[key])
	}
	// Shift done: window recovers (EWMA glides back toward 80).
	advisor.ShiftComplete(key)
	for i := 0; i < 30; i++ {
		_ = a.Tick()
	}
	if routes.set[key] != 80 {
		t.Errorf("recovered window = %d, want 80", routes.set[key])
	}
}

func TestTrendHistoryValidation(t *testing.T) {
	if _, err := NewTrendHistory(2, 0.5); err == nil {
		t.Error("bad alpha accepted")
	}
	for _, bad := range []float64{0, 1, -0.1} {
		if _, err := NewTrendHistory(0.75, bad); err == nil {
			t.Errorf("collapse fraction %v accepted", bad)
		}
	}
}

func TestTrendHistorySnapsOnCollapse(t *testing.T) {
	h, err := NewTrendHistory(0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.0.0.1/32")
	h.Update(p, 100)
	// Mild decline smooths: 0.9*100 + 0.1*60 = 96.
	if got := h.Update(p, 60); got != 96 {
		t.Errorf("mild decline = %v, want 96 (EWMA)", got)
	}
	// Collapse below half of 96 snaps immediately.
	if got := h.Update(p, 20); got != 20 {
		t.Errorf("collapse = %v, want snap to 20", got)
	}
	if h.Collapses() != 1 {
		t.Errorf("Collapses = %d, want 1", h.Collapses())
	}
	// Recovery glides, never snaps up.
	if got := h.Update(p, 100); got != 0.9*20+0.1*100 {
		t.Errorf("recovery = %v, want EWMA glide", got)
	}
}

func TestTrendHistoryForget(t *testing.T) {
	h, err := NewTrendHistory(0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.0.0.1/32")
	h.Update(p, 100)
	h.Forget(p)
	if got := h.Update(p, 7); got != 7 {
		t.Errorf("after Forget = %v, want 7", got)
	}
}

func TestAgentWithTrendHistoryReactsFast(t *testing.T) {
	d := dst(t, "10.0.0.1")
	sampler := &fakeSampler{rounds: [][]Observation{
		{{Dst: d, Cwnd: 100}},
		{{Dst: d, Cwnd: 100}},
		{{Dst: d, Cwnd: 20}}, // sudden collapse: congestion event
	}}
	trend, err := NewTrendHistory(0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{}
	routes := newFakeRoutes()
	a, err := New(Config{
		Sampler: sampler,
		Routes:  routes,
		Clock:   clock.fn(),
		History: trend,
		CMin:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Plain EWMA(0.9) would give 0.9*100+0.1*20 = 92; trend must snap.
	if got := routes.set[pfx(t, "10.0.0.1/32")]; got != 20 {
		t.Errorf("window after collapse = %d, want 20 (aggressive decrease)", got)
	}
}

// Property: advisor output always shrinks or preserves, never grows, the
// programmed window.
func TestAdvisorNeverIncreasesWindowProperty(t *testing.T) {
	f := func(cwnd uint8, factorRaw uint8) bool {
		w := int(cwnd)%200 + 1
		factor := (float64(factorRaw%100) + 1) / 100
		advisor := NewLoadBalanceAdvisor()
		d := netip.MustParseAddr("10.0.0.1")
		key := netip.PrefixFrom(d, 32)
		if err := advisor.ExpectShift(key, factor); err != nil {
			return false
		}
		routes := newFakeRoutes()
		a, err := New(Config{
			Sampler: &fakeSampler{rounds: [][]Observation{{{Dst: d, Cwnd: w}}}},
			Routes:  routes,
			Clock:   func() time.Duration { return 0 },
			Advisor: advisor,
			CMin:    1,
			CMax:    1 << 20,
		})
		if err != nil {
			return false
		}
		if err := a.Tick(); err != nil {
			return false
		}
		return routes.set[key] <= w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TrendHistory output is bounded by the min/max of observations.
func TestTrendHistoryBoundedProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h, err := NewTrendHistory(0.8, 0.5)
		if err != nil {
			return false
		}
		p := netip.MustParsePrefix("10.0.0.1/32")
		lo, hi := 1e18, -1e18
		for _, raw := range vals {
			v := float64(raw%1000) + 1
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			got := h.Update(p, v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
