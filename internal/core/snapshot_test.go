package core

import (
	"errors"
	"net/netip"
	"testing"
	"time"
)

// tickOnce feeds one observation round through the agent.
func tickOnce(t *testing.T, a *Agent, s *fakeSampler, obs []Observation) {
	t.Helper()
	s.rounds = [][]Observation{obs}
	s.i = 0
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
}

func TestExportSnapshotAges(t *testing.T) {
	sampler := &fakeSampler{}
	a, _, clock := newAgent(t, Config{Sampler: sampler})
	tickOnce(t, a, sampler, []Observation{
		{Dst: dst(t, "10.0.0.1"), Cwnd: 40},
		{Dst: dst(t, "10.0.0.1"), Cwnd: 60},
		{Dst: dst(t, "10.0.0.2"), Cwnd: 30},
	})

	clock.Advance(7 * time.Second)
	snap := a.ExportSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Sorted by prefix.
	if snap[0].Prefix != pfx(t, "10.0.0.1/32") || snap[1].Prefix != pfx(t, "10.0.0.2/32") {
		t.Fatalf("snapshot order = %+v", snap)
	}
	if snap[0].Window != 50 {
		t.Errorf("window = %d, want combined average 50", snap[0].Window)
	}
	if snap[0].Samples != 2 || snap[1].Samples != 1 {
		t.Errorf("samples = %d,%d", snap[0].Samples, snap[1].Samples)
	}
	for _, e := range snap {
		if e.Age != 7*time.Second {
			t.Errorf("age %v, want 7s", e.Age)
		}
	}
}

func TestMergeSnapshotSeedsUnknownPrefixes(t *testing.T) {
	a, routes, _ := newAgent(t, Config{})
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 80, Samples: 12, Age: 0},
		{Prefix: pfx(t, "10.9.0.2/32"), Window: 45, Samples: 3, Age: 0},
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 2 || stats.SkippedLocal != 0 || stats.SkippedStale != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := routes.set[pfx(t, "10.9.0.1/32")]; got != 80 {
		t.Errorf("programmed %d, want 80 (fresh entry undiscounted)", got)
	}
	if w, ok := a.Lookup(dst(t, "10.9.0.2")); !ok || w != 45 {
		t.Errorf("lookup = %d,%v", w, ok)
	}
	s := a.Stats()
	if s.FleetMerged != 2 || s.RoutesSet != 2 {
		t.Errorf("agent stats = %+v", s)
	}
}

func TestMergeSnapshotLocalAlwaysWins(t *testing.T) {
	sampler := &fakeSampler{}
	a, routes, _ := newAgent(t, Config{Sampler: sampler})
	tickOnce(t, a, sampler, []Observation{{Dst: dst(t, "10.0.0.1"), Cwnd: 30}})

	// A remote entry for the same prefix — fresher, more samples, bigger
	// window — must not override the local observation.
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.0.0.1/32"), Window: 95, Samples: 1000, Age: 0},
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedLocal != 1 || stats.Merged != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if w, _ := a.Lookup(dst(t, "10.0.0.1")); w != 30 {
		t.Errorf("window = %d, local 30 should survive", w)
	}
	if routes.set[pfx(t, "10.0.0.1/32")] != 30 {
		t.Errorf("route = %d", routes.set[pfx(t, "10.0.0.1/32")])
	}
}

func TestMergeSnapshotRejectsStale(t *testing.T) {
	a, routes, _ := newAgent(t, Config{TTL: 90 * time.Second})
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 80, Samples: 5, Age: 2 * time.Minute}, // > MaxAge (TTL)
		{Prefix: pfx(t, "10.9.0.2/32"), Window: 80, Samples: 0, Age: 0},               // below MinSamples
		{Prefix: pfx(t, "10.9.0.3/32"), Window: 0, Samples: 5, Age: 0},                // invalid window
		{Window: 80, Samples: 5, Age: 0},                                              // invalid prefix
		{Prefix: pfx(t, "10.9.0.4/32"), Window: 80, Samples: 5, Age: -time.Second},    // negative age
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedStale != 5 || stats.Merged != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(routes.set) != 0 {
		t.Errorf("routes = %v", routes.set)
	}
}

func TestMergeSnapshotStalenessDiscount(t *testing.T) {
	a, routes, _ := newAgent(t, Config{TTL: 90 * time.Second, CMin: 10})
	// Age of one half-life (default half-life = TTL/2 = 45s): excess over
	// CMin halves, so 90 -> 10 + 80/2 = 50.
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 90, Samples: 5, Age: 45 * time.Second},
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := routes.set[pfx(t, "10.9.0.1/32")]; got != 50 {
		t.Errorf("discounted window = %d, want 50", got)
	}
}

func TestMergeSnapshotRemainingTTL(t *testing.T) {
	a, routes, clock := newAgent(t, Config{TTL: 90 * time.Second})
	if _, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 40, Samples: 5, Age: 60 * time.Second},
	}, MergePolicy{}); err != nil {
		t.Fatal(err)
	}
	// Remaining life is TTL - age = 30s: alive at 29s, expired at 31s.
	clock.Advance(29 * time.Second)
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup(dst(t, "10.9.0.1")); !ok {
		t.Fatal("merged entry expired too early")
	}
	clock.Advance(2 * time.Second)
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup(dst(t, "10.9.0.1")); ok {
		t.Error("merged entry outlived its remaining TTL")
	}
	if len(routes.set) != 0 {
		t.Errorf("routes = %v", routes.set)
	}
}

func TestMergeSnapshotLocalObservationConfirmsMergedEntry(t *testing.T) {
	sampler := &fakeSampler{}
	a, _, clock := newAgent(t, Config{Sampler: sampler, TTL: 90 * time.Second})
	if _, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.0.0.1/32"), Window: 80, Samples: 5, Age: 80 * time.Second},
	}, MergePolicy{}); err != nil {
		t.Fatal(err)
	}
	// A local observation takes ownership: full TTL again, and the export
	// age resets to local freshness.
	tickOnce(t, a, sampler, []Observation{{Dst: dst(t, "10.0.0.1"), Cwnd: 50}})
	sampler.rounds = nil            // the destination goes quiet after the one observation
	clock.Advance(60 * time.Second) // past the merged entry's 10s remaining life
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup(dst(t, "10.0.0.1")); !ok {
		t.Fatal("locally confirmed entry expired with merged entry's TTL")
	}
	snap := a.ExportSnapshot()
	if len(snap) != 1 || snap[0].Age != 60*time.Second {
		t.Errorf("snapshot = %+v, want local age 60s (merged age cleared)", snap)
	}
}

func TestMergeSnapshotAgeAccumulatesAcrossHops(t *testing.T) {
	a, _, clock := newAgent(t, Config{TTL: 90 * time.Second})
	if _, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.0.0.1/32"), Window: 80, Samples: 5, Age: 30 * time.Second},
	}, MergePolicy{}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	snap := a.ExportSnapshot()
	if len(snap) != 1 || snap[0].Age != 40*time.Second {
		t.Errorf("re-exported age = %+v, want 30s inherited + 10s local", snap)
	}
}

func TestMergeSnapshotDuplicatePrefixKeepsFresher(t *testing.T) {
	a, routes, _ := newAgent(t, Config{TTL: 90 * time.Second})
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 40, Samples: 5, Age: 60 * time.Second},
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 70, Samples: 5, Age: 0},
	}, MergePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := routes.set[pfx(t, "10.9.0.1/32")]; got != 70 {
		t.Errorf("window = %d, want the fresher 70", got)
	}
}

func TestMergeSnapshotProgrammingFailureNotCommitted(t *testing.T) {
	a, routes, _ := newAgent(t, Config{})
	boom := errors.New("substrate down")
	routes.failSet = boom
	stats, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 40, Samples: 5, Age: 0},
	}, MergePolicy{})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if stats.Errors != 1 || stats.Merged != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if _, ok := a.Lookup(dst(t, "10.9.0.1")); ok {
		t.Error("failed program left a phantom entry")
	}
}

func TestMergeSnapshotClosedAgent(t *testing.T) {
	a, _, _ := newAgent(t, Config{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MergeSnapshot([]SnapshotEntry{
		{Prefix: pfx(t, "10.9.0.1/32"), Window: 40, Samples: 5, Age: 0},
	}, MergePolicy{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMergePolicyValidation(t *testing.T) {
	a, _, _ := newAgent(t, Config{})
	if _, err := a.MergeSnapshot(nil, MergePolicy{MaxAge: -time.Second}); err == nil {
		t.Error("negative MaxAge accepted")
	}
}

// BenchmarkSnapshotMerge merges a 10k-prefix snapshot into an agent already
// warm with 5k overlapping entries — the fleet-join hot path.
func BenchmarkSnapshotMerge(b *testing.B) {
	const remote = 10000
	mkEntries := func(n, base int) []SnapshotEntry {
		out := make([]SnapshotEntry, 0, n)
		for i := 0; i < n; i++ {
			v := base + i
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)}), 32)
			out = append(out, SnapshotEntry{Prefix: p, Window: 40 + i%60, Samples: 8, Age: time.Duration(i%60) * time.Second})
		}
		return out
	}
	warm := mkEntries(remote/2, 0) // overlaps the first half of the remote set
	remoteSnap := mkEntries(remote, 0)

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := &fakeClock{}
		a, err := New(Config{
			Sampler: &fakeSampler{},
			Routes:  nopRoutes{},
			Clock:   clock.fn(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.MergeSnapshot(warm, MergePolicy{}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := a.MergeSnapshot(remoteSnap, MergePolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Merged != remote/2 || stats.SkippedLocal != remote/2 {
			b.Fatalf("stats = %+v", stats)
		}
	}
}

// nopRoutes accepts every programming call.
type nopRoutes struct{}

func (nopRoutes) SetInitCwnd(netip.Prefix, int) error { return nil }
func (nopRoutes) ClearInitCwnd(netip.Prefix) error    { return nil }
